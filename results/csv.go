package results

// SPARQL 1.1 Query Results CSV Format: RFC 4180 records (CRLF line
// endings, fields quoted when they contain comma, quote, CR or LF),
// header row of variable names WITHOUT the "?" prefix, and terms
// serialized as bare lexical values — IRIs without angle brackets,
// literals without quotes or lang/datatype decoration, blank nodes as
// "_:label". The format is intentionally lossy; see the package doc
// for what ReadCSV can and cannot reconstruct.

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"db2rdf"
	"db2rdf/internal/rdf"
)

// WriteCSV encodes r per the SPARQL 1.1 CSV results format. The
// records are written by a hand-rolled RFC 4180 encoder:
// encoding/csv's Writer rewrites a field-internal LF to CRLF and
// drops a field-internal CR when UseCRLF is set, both of which break
// lexical round-tripping of literals holding control characters.
func WriteCSV(w io.Writer, r *db2rdf.Results) error {
	bw := bufio.NewWriter(w)
	writeRecord := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				bw.WriteByte(',')
			}
			if strings.ContainsAny(f, ",\"\r\n") {
				bw.WriteByte('"')
				bw.WriteString(strings.ReplaceAll(f, `"`, `""`))
				bw.WriteByte('"')
			} else {
				bw.WriteString(f)
			}
		}
		bw.WriteString("\r\n")
	}
	if r.IsAsk {
		writeRecord([]string{"ask"})
		writeRecord([]string{boolLex(r.Ask)})
		return bw.Flush()
	}
	writeRecord(r.Vars)
	record := make([]string, len(r.Vars))
	for _, row := range r.Rows {
		for i := range record {
			record[i] = ""
			if i < len(row) && row[i].Bound {
				record[i] = csvLexical(row[i].Term)
			}
		}
		writeRecord(record)
	}
	return bw.Flush()
}

// csvLexical renders one term as its CSV field value.
func csvLexical(t rdf.Term) string {
	if t.Kind == rdf.Blank {
		return "_:" + t.Value
	}
	return t.Value // bare IRI or literal lexical form
}

func boolLex(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// ReadCSV decodes a SPARQL CSV result document with a strict RFC 4180
// parser. (encoding/csv is not used on the read side: its Reader
// normalizes away a bare CR inside a quoted field, which RFC 4180
// preserves.) Term kinds are reconstructed heuristically ("_:" prefix
// → blank node, absolute-IRI shape → IRI, otherwise plain literal);
// lexical values round-trip exactly, including embedded commas, quotes
// and line breaks.
func ReadCSV(rd io.Reader) (*db2rdf.Results, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("results: decoding CSV: %w", err)
	}
	all, err := parseRFC4180(string(data))
	if err != nil {
		return nil, fmt.Errorf("results: decoding CSV: %w", err)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("results: empty CSV document")
	}
	header, records := all[0], all[1:]
	if len(header) == 1 && header[0] == "ask" && len(records) == 1 {
		return &db2rdf.Results{IsAsk: true, Ask: records[0][0] == "true"}, nil
	}
	out := &db2rdf.Results{Vars: header}
	for _, rec := range records {
		row := make([]db2rdf.Binding, len(header))
		for i := range header {
			if i >= len(rec) {
				continue
			}
			// An empty field is an unbound variable. (A bound empty
			// literal is indistinguishable — inherent CSV lossiness.)
			if rec[i] == "" {
				continue
			}
			row[i] = db2rdf.Binding{Bound: true, Term: csvTerm(rec[i])}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// parseRFC4180 splits a CSV document into records per RFC 4180:
// records separated by CRLF (a lone LF is tolerated), fields by
// commas, and quoted fields preserving every byte — including bare CR,
// LF and commas — with "" unescaping to one quote. A final record
// without a trailing line break is accepted.
func parseRFC4180(in string) ([][]string, error) {
	var records [][]string
	var record []string
	var field strings.Builder
	started := false // current record has consumed a field token
	endField := func() {
		record = append(record, field.String())
		field.Reset()
	}
	endRecord := func() {
		endField()
		records = append(records, record)
		record = nil
		started = false
	}
	for i := 0; i < len(in); {
		if field.Len() == 0 && in[i] == '"' {
			// Quoted field: scan to the closing quote.
			started = true
			i++
			for {
				j := strings.IndexByte(in[i:], '"')
				if j < 0 {
					return nil, fmt.Errorf("unterminated quoted field")
				}
				field.WriteString(in[i : i+j])
				i += j + 1
				if i < len(in) && in[i] == '"' {
					field.WriteByte('"')
					i++
					continue
				}
				break
			}
			if i < len(in) && in[i] != ',' && in[i] != '\r' && in[i] != '\n' {
				return nil, fmt.Errorf("data after closing quote at offset %d", i)
			}
			continue
		}
		switch c := in[i]; c {
		case ',':
			started = true
			endField()
			i++
		case '\r':
			if i+1 < len(in) && in[i+1] == '\n' {
				endRecord()
				i += 2
			} else {
				// A bare CR outside quotes is not a record separator;
				// RFC 4180 forbids it, be lenient and keep it.
				field.WriteByte(c)
				i++
			}
		case '\n':
			endRecord()
			i++
		default:
			started = true
			field.WriteByte(c)
			i++
		}
	}
	if started || field.Len() > 0 || len(record) > 0 {
		endRecord()
	}
	return records, nil
}

// csvTerm applies the documented decode heuristic to one field.
func csvTerm(field string) rdf.Term {
	if strings.HasPrefix(field, "_:") {
		return rdf.NewBlank(field[2:])
	}
	if looksLikeIRI(field) {
		return rdf.NewIRI(field)
	}
	return rdf.NewLiteral(field)
}

// looksLikeIRI reports whether the field has the shape of an absolute
// IRI: an RFC 3986 scheme followed by ':' with no whitespace anywhere.
func looksLikeIRI(s string) bool {
	colon := strings.IndexByte(s, ':')
	if colon <= 0 {
		return false
	}
	for i := 0; i < colon; i++ {
		c := s[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		digit := c >= '0' && c <= '9'
		if i == 0 && !alpha {
			return false
		}
		if !alpha && !digit && c != '+' && c != '-' && c != '.' {
			return false
		}
	}
	return !strings.ContainsAny(s, " \t\r\n")
}
