package results

// SPARQL 1.1 Query Results JSON Format (W3C REC sparql11-results-json):
// {"head":{"vars":[...]},"results":{"bindings":[{var:{"type":...}}]}}
// for SELECT, {"head":{},"boolean":b} for ASK. Unbound variables are
// simply absent from a binding object. The decoder also accepts the
// legacy "typed-literal" type emitted by pre-1.1 endpoints.

import (
	"encoding/json"
	"fmt"
	"io"

	"db2rdf"
	"db2rdf/internal/rdf"
)

type jsonResults struct {
	Head    jsonHead   `json:"head"`
	Results *jsonSolns `json:"results,omitempty"`
	Boolean *bool      `json:"boolean,omitempty"`
}

type jsonHead struct {
	Vars []string `json:"vars,omitempty"`
}

type jsonSolns struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

// WriteJSON encodes r in the SPARQL 1.1 Query Results JSON Format.
func WriteJSON(w io.Writer, r *db2rdf.Results) error {
	doc := jsonResults{}
	if r.IsAsk {
		b := r.Ask
		doc.Boolean = &b
	} else {
		doc.Head.Vars = r.Vars
		solns := &jsonSolns{Bindings: make([]map[string]jsonTerm, 0, len(r.Rows))}
		for _, row := range r.Rows {
			b := make(map[string]jsonTerm, len(row))
			for i, cell := range row {
				if i >= len(r.Vars) || !cell.Bound {
					continue
				}
				b[r.Vars[i]] = encodeJSONTerm(cell.Term)
			}
			solns.Bindings = append(solns.Bindings, b)
		}
		doc.Results = solns
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func encodeJSONTerm(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

// ReadJSON decodes a SPARQL 1.1 JSON result document. The decode is
// lossless: it is the exact inverse of WriteJSON.
func ReadJSON(rd io.Reader) (*db2rdf.Results, error) {
	var doc jsonResults
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("results: decoding JSON: %w", err)
	}
	if doc.Boolean != nil {
		return &db2rdf.Results{IsAsk: true, Ask: *doc.Boolean}, nil
	}
	if doc.Results == nil {
		return nil, fmt.Errorf("results: JSON document has neither boolean nor results")
	}
	out := &db2rdf.Results{Vars: doc.Head.Vars}
	for _, b := range doc.Results.Bindings {
		row := make([]db2rdf.Binding, len(out.Vars))
		for i, v := range out.Vars {
			jt, ok := b[v]
			if !ok {
				continue
			}
			t, err := decodeJSONTerm(jt)
			if err != nil {
				return nil, err
			}
			row[i] = db2rdf.Binding{Bound: true, Term: t}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func decodeJSONTerm(jt jsonTerm) (rdf.Term, error) {
	switch jt.Type {
	case "uri":
		return rdf.NewIRI(jt.Value), nil
	case "bnode":
		return rdf.NewBlank(jt.Value), nil
	case "literal", "typed-literal":
		switch {
		case jt.Lang != "":
			return rdf.NewLangLiteral(jt.Value, jt.Lang), nil
		case jt.Datatype != "":
			return rdf.NewTypedLiteral(jt.Value, jt.Datatype), nil
		default:
			return rdf.NewLiteral(jt.Value), nil
		}
	}
	return rdf.Term{}, fmt.Errorf("results: unknown term type %q", jt.Type)
}
