package results_test

// Wire-boundary round-trip audit (ISSUE 10 satellite): terms leaving
// the store must survive encode→decode through each serialization —
// losslessly for JSON and TSV, lexically for CSV — including
// language-tagged and datatyped literals, blank nodes, and literals
// holding control characters, quotes, backslashes, field separators
// and multi-byte runes.

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"db2rdf"
	"db2rdf/internal/rdf"
	"db2rdf/results"
)

// hostileTerms is the adversarial corpus: every term kind crossed with
// the characters each serialization must escape.
var hostileTerms = []rdf.Term{
	rdf.NewIRI("http://example.org/simple"),
	rdf.NewIRI("http://example.org/path?q=1&r=2#frag"),
	rdf.NewBlank("b0"),
	rdf.NewBlank("gen-1.2"),
	rdf.NewLiteral("plain"),
	rdf.NewLiteral(""),
	rdf.NewLiteral(`with "quotes" inside`),
	rdf.NewLiteral(`back\slash`),
	rdf.NewLiteral("tab\there"),
	rdf.NewLiteral("new\nline"),
	rdf.NewLiteral("carriage\rreturn"),
	rdf.NewLiteral("comma,separated,values"),
	rdf.NewLiteral("\tleading and trailing\n"),
	rdf.NewLiteral("unicode: ☃ résumé 日本語"),
	rdf.NewLangLiteral("bonjour", "fr"),
	rdf.NewLangLiteral("g'day\nmate", "en-AU"),
	rdf.NewTypedLiteral("42", rdf.XSDInteger),
	rdf.NewTypedLiteral("2024-01-02", rdf.XSDDate),
	rdf.NewTypedLiteral("esc\"aped\\lex", "http://example.org/dt"),
	rdf.NewLiteral("looks://like/an/iri"),
	rdf.NewLiteral("_:not-a-bnode"),
}

// hostileResults builds a Results set with one row per hostile term
// plus an unbound middle column, exercising sparse bindings.
func hostileResults() *db2rdf.Results {
	r := &db2rdf.Results{Vars: []string{"s", "gap", "o"}}
	for i, t := range hostileTerms {
		r.Rows = append(r.Rows, []db2rdf.Binding{
			{Bound: true, Term: rdf.NewIRI(fmt.Sprintf("http://example.org/row%d", i))},
			{}, // never bound
			{Bound: true, Term: t},
		})
	}
	return r
}

func TestJSONRoundTripLossless(t *testing.T) {
	want := hostileResults()
	var buf bytes.Buffer
	if err := results.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := results.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JSON round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestTSVRoundTripLossless(t *testing.T) {
	want := hostileResults()
	var buf bytes.Buffer
	if err := results.WriteTSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	// The encoded stream must stay one line per row: every control
	// character in a literal is escaped, never emitted raw.
	if got, wantLines := strings.Count(buf.String(), "\n"), len(want.Rows)+1; got != wantLines {
		t.Fatalf("TSV emitted %d lines, want %d (unescaped newline in a field?)", got, wantLines)
	}
	got, err := results.ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TSV round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestCSVRoundTripLexical(t *testing.T) {
	want := hostileResults()
	var buf bytes.Buffer
	if err := results.WriteCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	// RFC 4180: records end with CRLF; quoted fields may hold raw
	// CR/LF/comma, so only count CRLF outside quotes via the decoder.
	if !strings.Contains(buf.String(), "\r\n") {
		t.Fatal("CSV output does not use CRLF record separators")
	}
	got, err := results.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Vars, want.Vars) {
		t.Fatalf("CSV header diverged: want %v, got %v", want.Vars, got.Vars)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("CSV row count diverged: want %d, got %d", len(want.Rows), len(got.Rows))
	}
	for i, wr := range want.Rows {
		gr := got.Rows[i]
		for c := range wr {
			// The empty literal decodes as unbound — inherent CSV loss.
			if wr[c].Bound && wr[c].Term.Value == "" && wr[c].Term.Kind == rdf.Literal {
				continue
			}
			if wr[c].Bound != gr[c].Bound {
				t.Errorf("row %d col %d: bound %v -> %v", i, c, wr[c].Bound, gr[c].Bound)
				continue
			}
			if !wr[c].Bound {
				continue
			}
			wantLex, gotLex := wr[c].Term.Value, gr[c].Term.Value
			if wr[c].Term.Kind == rdf.Blank {
				wantLex = "_:" + wantLex
			}
			if gr[c].Term.Kind == rdf.Blank {
				gotLex = "_:" + gotLex
			}
			if wantLex != gotLex {
				t.Errorf("row %d col %d: lexical %q -> %q", i, c, wantLex, gotLex)
			}
		}
	}
	// Kind heuristics: IRIs and blank nodes in the corpus decode back
	// to their kinds (they all have unambiguous shapes).
	for i, tm := range hostileTerms {
		g := got.Rows[i][2]
		if tm.Kind == rdf.IRI && g.Term.Kind != rdf.IRI {
			t.Errorf("row %d: IRI %q decoded as kind %d", i, tm.Value, g.Term.Kind)
		}
		if tm.Kind == rdf.Blank && g.Term.Kind != rdf.Blank {
			t.Errorf("row %d: blank %q decoded as kind %d", i, tm.Value, g.Term.Kind)
		}
	}
}

func TestAskRoundTrips(t *testing.T) {
	for _, ask := range []bool{true, false} {
		want := &db2rdf.Results{IsAsk: true, Ask: ask}
		for _, f := range []results.Format{results.JSON, results.CSV, results.TSV} {
			var buf bytes.Buffer
			if err := f.Write(&buf, want); err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			var got *db2rdf.Results
			var err error
			switch f {
			case results.JSON:
				got, err = results.ReadJSON(&buf)
			case results.CSV:
				got, err = results.ReadCSV(&buf)
			default:
				got, err = results.ReadTSV(&buf)
			}
			if err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			if !got.IsAsk || got.Ask != ask {
				t.Errorf("%v: ASK %v decoded as IsAsk=%v Ask=%v", f, ask, got.IsAsk, got.Ask)
			}
		}
	}
}

// TestStoreToWireRoundTrip drives hostile terms through the full
// pipeline: store load → SPARQL query → encode → decode, asserting the
// lossless formats reproduce exactly what the store returned.
func TestStoreToWireRoundTrip(t *testing.T) {
	s, err := db2rdf.Open(db2rdf.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var triples []rdf.Triple
	for i, tm := range hostileTerms {
		triples = append(triples, rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://example.org/row%d", i)),
			rdf.NewIRI("http://example.org/value"),
			tm))
	}
	if err := s.LoadTriples(triples); err != nil {
		t.Fatal(err)
	}
	want, err := s.Query(`SELECT ?s ?o WHERE { ?s <http://example.org/value> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != len(hostileTerms) {
		t.Fatalf("query returned %d rows, want %d", len(want.Rows), len(hostileTerms))
	}
	for name, codec := range map[string]struct {
		enc func(*bytes.Buffer) error
		dec func(*bytes.Buffer) (*db2rdf.Results, error)
	}{
		"json": {
			func(b *bytes.Buffer) error { return results.WriteJSON(b, want) },
			func(b *bytes.Buffer) (*db2rdf.Results, error) { return results.ReadJSON(b) },
		},
		"tsv": {
			func(b *bytes.Buffer) error { return results.WriteTSV(b, want) },
			func(b *bytes.Buffer) (*db2rdf.Results, error) { return results.ReadTSV(b) },
		},
	} {
		var buf bytes.Buffer
		if err := codec.enc(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := codec.dec(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: store→wire round trip diverged:\nwant %+v\ngot  %+v", name, want, got)
		}
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   results.Format
		ok     bool
	}{
		{"", results.JSON, true},
		{"*/*", results.JSON, true},
		{"application/sparql-results+json", results.JSON, true},
		{"application/json", results.JSON, true},
		{"text/csv", results.CSV, true},
		{"text/tab-separated-values", results.TSV, true},
		{"text/csv;q=0.5, application/sparql-results+json", results.JSON, true},
		{"text/csv;q=0.9, application/sparql-results+json;q=0.1", results.CSV, true},
		{"text/*", results.CSV, true}, // some text format; exact pick is stable
		{"text/html", results.JSON, false},
		{"application/xml;q=0.9", results.JSON, false},
		{"text/html;q=0.9, */*;q=0.1", results.JSON, true},
		{"text/csv;q=0", results.JSON, false},
	}
	for _, c := range cases {
		got, ok := results.Negotiate(c.accept)
		if ok != c.ok {
			t.Errorf("Negotiate(%q) ok = %v, want %v", c.accept, ok, c.ok)
			continue
		}
		if ok && c.accept != "text/*" && got != c.want {
			t.Errorf("Negotiate(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}
