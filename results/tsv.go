package results

// SPARQL 1.1 Query Results TSV Format: header row of variable names
// WITH the "?" prefix, one solution per line, fields separated by a
// single tab, and each bound term serialized in SPARQL/N-Triples
// syntax — <iri>, "literal"@lang, "literal"^^<dt>, _:label — with
// tab, newline, carriage return, quote and backslash escaped inside
// literals, so the format is lossless. Unbound variables are empty
// fields.

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"db2rdf"
	"db2rdf/internal/rdf"
)

// WriteTSV encodes r per the SPARQL 1.1 TSV results format.
func WriteTSV(w io.Writer, r *db2rdf.Results) error {
	bw := bufio.NewWriter(w)
	if r.IsAsk {
		fmt.Fprintf(bw, "?ask\n\"%s\"^^<%s>\n", boolLex(r.Ask), rdf.XSDBoolean)
		return bw.Flush()
	}
	for i, v := range r.Vars {
		if i > 0 {
			bw.WriteByte('\t')
		}
		bw.WriteByte('?')
		bw.WriteString(v)
	}
	bw.WriteByte('\n')
	for _, row := range r.Rows {
		for i := range r.Vars {
			if i > 0 {
				bw.WriteByte('\t')
			}
			if i < len(row) && row[i].Bound {
				// Term.String() is N-Triples syntax with \t \n \r " \
				// escaped inside literals — exactly the TSV field form.
				bw.WriteString(row[i].Term.String())
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadTSV decodes a SPARQL TSV result document losslessly: each field
// is parsed with the N-Triples term grammar (rdf.ParseTerm).
func ReadTSV(rd io.Reader) (*db2rdf.Results, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("results: decoding TSV: %w", err)
		}
		return nil, fmt.Errorf("results: empty TSV document")
	}
	header := strings.Split(strings.TrimSuffix(sc.Text(), "\r"), "\t")
	vars := make([]string, len(header))
	for i, h := range header {
		vars[i] = strings.TrimPrefix(h, "?")
	}
	var rows [][]db2rdf.Binding
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSuffix(sc.Text(), "\r")
		fields := strings.Split(text, "\t")
		row := make([]db2rdf.Binding, len(vars))
		for i := range vars {
			if i >= len(fields) || fields[i] == "" {
				continue
			}
			t, err := rdf.ParseTerm(fields[i])
			if err != nil {
				return nil, fmt.Errorf("results: TSV line %d field %d: %w", line, i+1, err)
			}
			row[i] = db2rdf.Binding{Bound: true, Term: t}
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("results: decoding TSV: %w", err)
	}
	if len(vars) == 1 && vars[0] == "ask" && len(rows) == 1 && rows[0][0].Bound {
		t := rows[0][0].Term
		if t.Kind == rdf.Literal && t.Datatype == rdf.XSDBoolean {
			return &db2rdf.Results{IsAsk: true, Ask: t.Value == "true"}, nil
		}
	}
	return &db2rdf.Results{Vars: vars, Rows: rows}, nil
}
