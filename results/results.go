// Package results implements the SPARQL query-result wire
// serializations shared by the CLI and the HTTP endpoint: the SPARQL
// 1.1 Query Results JSON Format, and the CSV and TSV formats (W3C
// "SPARQL 1.1 Query Results CSV and TSV Formats").
//
// Each format has a symmetric encoder/decoder pair so the boundary is
// testable as a round trip:
//
//   - JSON and TSV are lossless: every term kind (IRI, plain,
//     language-tagged and datatyped literals, blank nodes) survives
//     encode→decode exactly.
//   - CSV is lossy by design (the spec serializes only lexical forms):
//     ReadCSV reconstructs terms with the documented heuristic — a
//     "_:" prefix reads as a blank node, an absolute-IRI shape as an
//     IRI, anything else as a plain literal — so lexical values always
//     survive, term kinds only when the heuristic can tell them apart.
//
// ASK results have no standard CSV/TSV mapping; this package encodes
// them as a single column named "ask" holding a boolean, and the
// decoders map that shape back to an ASK result.
package results

import (
	"io"
	"mime"
	"sort"
	"strconv"
	"strings"

	"db2rdf"
)

// Content types served and negotiated. JSONContentType is the
// default when the client accepts anything.
const (
	JSONContentType = "application/sparql-results+json"
	CSVContentType  = "text/csv; charset=utf-8"
	TSVContentType  = "text/tab-separated-values; charset=utf-8"
)

// Format identifies one supported serialization.
type Format int

const (
	JSON Format = iota
	CSV
	TSV
)

// String returns the format's canonical name (the CLI flag value).
func (f Format) String() string {
	switch f {
	case CSV:
		return "csv"
	case TSV:
		return "tsv"
	default:
		return "json"
	}
}

// ContentType returns the Content-Type header value for the format.
func (f Format) ContentType() string {
	switch f {
	case CSV:
		return CSVContentType
	case TSV:
		return TSVContentType
	default:
		return JSONContentType
	}
}

// Write encodes r in this format.
func (f Format) Write(w io.Writer, r *db2rdf.Results) error {
	switch f {
	case CSV:
		return WriteCSV(w, r)
	case TSV:
		return WriteTSV(w, r)
	default:
		return WriteJSON(w, r)
	}
}

// mediaFormats maps acceptable media ranges to formats. Bare
// application/json is accepted as an alias for the SPARQL JSON type.
var mediaFormats = map[string]Format{
	"application/sparql-results+json": JSON,
	"application/json":                JSON,
	"text/csv":                        CSV,
	"text/tab-separated-values":       TSV,
}

// Negotiate picks the response format for an Accept header per RFC
// 9110 semantics: media ranges are weighted by q-value, more specific
// ranges win ties, and an empty header means "anything" (JSON). The
// second return is false when the client accepts none of the
// supported formats — an HTTP 406.
func Negotiate(accept string) (Format, bool) {
	if strings.TrimSpace(accept) == "" {
		return JSON, true
	}
	type choice struct {
		f    Format
		q    float64
		spec int // 2 = exact type, 1 = type/*, 0 = */*
		pos  int // header order breaks remaining ties
	}
	var choices []choice
	for i, part := range strings.Split(accept, ",") {
		mt, params, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil {
			continue
		}
		q := 1.0
		if qs, ok := params["q"]; ok {
			if v, err := strconv.ParseFloat(qs, 64); err == nil {
				q = v
			}
		}
		if q <= 0 {
			continue
		}
		switch {
		case mt == "*/*":
			choices = append(choices, choice{JSON, q, 0, i})
		case strings.HasSuffix(mt, "/*"):
			prefix := strings.TrimSuffix(mt, "*")
			for name, f := range mediaFormats {
				if strings.HasPrefix(name, prefix) {
					choices = append(choices, choice{f, q, 1, i})
				}
			}
		default:
			if f, ok := mediaFormats[mt]; ok {
				choices = append(choices, choice{f, q, 2, i})
			}
		}
	}
	if len(choices) == 0 {
		return JSON, false
	}
	sort.SliceStable(choices, func(i, j int) bool {
		if choices[i].q != choices[j].q {
			return choices[i].q > choices[j].q
		}
		if choices[i].spec != choices[j].spec {
			return choices[i].spec > choices[j].spec
		}
		return choices[i].pos < choices[j].pos
	})
	return choices[0].f, true
}

// ParseFormat maps a CLI flag value to a Format.
func ParseFormat(name string) (Format, bool) {
	switch strings.ToLower(name) {
	case "json":
		return JSON, true
	case "csv":
		return CSV, true
	case "tsv":
		return TSV, true
	}
	return JSON, false
}
