package db2rdf_test

// Concurrency and loader-equivalence tests for the store-level
// read/write lock discipline and the parallel bulk loader. Run with
// -race (the repo's tier-1 command does) to make the lock checks real.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"db2rdf"
	"db2rdf/internal/gen"
	"db2rdf/internal/rdf"
)

// TestConcurrentInsertQueryExport drives writers and several kinds of
// readers at the same store simultaneously. Under -race this checks
// the whole query pipeline (including property-path closure
// materialization and Export) is safe against concurrent Inserts.
func TestConcurrentInsertQueryExport(t *testing.T) {
	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(gen.Micro(2000).Triples); err != nil {
		t.Fatal(err)
	}

	const writers, rounds = 2, 50
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	report := func(err error) {
		if err != nil {
			select {
			case errc <- err:
			default:
			}
		}
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				report(s.Insert(rdf.NewTriple(
					rdf.NewIRI(fmt.Sprintf("http://conc/s%d-%d", w, i)),
					rdf.NewIRI("http://conc/linked"),
					rdf.NewIRI(fmt.Sprintf("http://conc/s%d-%d", w, i+1)),
				)))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			_, err := s.Query(`SELECT ?s ?o WHERE { ?s <http://conc/linked> ?o }`)
			report(err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Property-path queries materialize temporary closure tables;
		// concurrent runs must not collide on their names.
		for i := 0; i < rounds/5; i++ {
			_, err := s.Query(`SELECT ?s ?o WHERE { ?s <http://conc/linked>+ ?o }`)
			report(err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/10; i++ {
			_, err := s.Export(&bytes.Buffer{})
			report(err)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every written triple must be visible afterwards.
	res, err := s.Query(`SELECT ?s ?o WHERE { ?s <http://conc/linked> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Rows), writers*rounds; got != want {
		t.Fatalf("after concurrent writes: %d linked rows, want %d", got, want)
	}
}

// TestLoadParallelMatchesSequential loads the same dataset through the
// sequential and the parallel loader and requires byte-identical
// exports plus identical optimizer statistics.
func TestLoadParallelMatchesSequential(t *testing.T) {
	ds := gen.LUBM(1)
	var doc bytes.Buffer
	w := rdf.NewWriter(&doc)
	for _, tr := range ds.Triples {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	seq, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nSeq, err := seq.LoadReader(bytes.NewReader(doc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	par, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nPar, err := par.LoadParallel(bytes.NewReader(doc.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if nSeq != nPar {
		t.Fatalf("loaded counts differ: sequential %d, parallel %d", nSeq, nPar)
	}

	var seqOut, parOut bytes.Buffer
	if _, err := seq.Export(&seqOut); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Export(&parOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Fatalf("exports differ: sequential %d bytes, parallel %d bytes", seqOut.Len(), parOut.Len())
	}

	// Optimizer statistics must agree term by term.
	sv, pv := seq.Internal().StatsView(), par.Internal().StatsView()
	if sv.TotalTriples() != pv.TotalTriples() {
		t.Errorf("total: %v != %v", sv.TotalTriples(), pv.TotalTriples())
	}
	if sv.AvgPerSubject() != pv.AvgPerSubject() {
		t.Errorf("avg/subject: %v != %v", sv.AvgPerSubject(), pv.AvgPerSubject())
	}
	if sv.AvgPerObject() != pv.AvgPerObject() {
		t.Errorf("avg/object: %v != %v", sv.AvgPerObject(), pv.AvgPerObject())
	}
	terms := map[rdf.Term]bool{}
	for _, tr := range ds.Triples {
		terms[tr.S] = true
		terms[tr.P] = true
		terms[tr.O] = true
	}
	for term := range terms {
		if a, _ := sv.SubjectCount(term); a != mustCount(pv.SubjectCount(term)) {
			t.Errorf("subject count for %s differs", term)
		}
		if a, _ := sv.ObjectCount(term); a != mustCount(pv.ObjectCount(term)) {
			t.Errorf("object count for %s differs", term)
		}
		if a, _ := sv.PredicateCount(term); a != mustCount(pv.PredicateCount(term)) {
			t.Errorf("predicate count for %s differs", term)
		}
	}
}

func mustCount(n float64, ok bool) float64 { return n }

// TestLoadParallelConcurrentReaders checks queries keep answering
// while a parallel bulk load holds the write lock (they serialize, but
// must not race or deadlock).
func TestLoadParallelConcurrentReaders(t *testing.T) {
	ds := gen.Micro(5000)
	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(ds.Triples[:100]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.LoadTriplesParallel(ds.Triples[100:], 4); err != nil {
			errc <- err
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := s.Query(ds.Queries[0].SPARQL); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestEmptyPattern checks the SPARQL unit-solution semantics for empty
// group patterns: SELECT over {} yields exactly one solution with all
// projected variables unbound, and ASK {} is true.
func TestEmptyPatternUnitSolution(t *testing.T) {
	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(rdf.NewTriple(rdf.NewIRI("http://a"), rdf.NewIRI("http://p"), rdf.NewLiteral("v"))); err != nil {
		t.Fatal(err)
	}

	res, err := s.Query(`SELECT * WHERE {}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("SELECT * WHERE {}: %d solutions, want 1 (the unit solution)", len(res.Rows))
	}
	if len(res.Vars) != 0 {
		t.Fatalf("SELECT * WHERE {}: projected vars %v, want none", res.Vars)
	}

	res, err = s.Query(`SELECT ?x WHERE {}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 || res.Rows[0][0].Bound {
		t.Fatalf("SELECT ?x WHERE {}: want 1 solution with ?x unbound, got %+v", res.Rows)
	}

	res, err = s.Query(`ASK {}`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsAsk || !res.Ask {
		t.Fatalf("ASK {}: want true, got %+v", res)
	}
}

// TestDescribeExactTerms checks DESCRIBE resolves resources whose
// serialization would not survive a round trip through the SPARQL
// grammar (blank nodes cannot be written as constants in a query).
func TestDescribeExactTerms(t *testing.T) {
	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1 := rdf.NewBlank("b1")
	for _, tr := range []rdf.Triple{
		rdf.NewTriple(b1, rdf.NewIRI("http://p"), rdf.NewLiteral("v")),
		rdf.NewTriple(b1, rdf.NewIRI("http://q"), rdf.NewIRI("http://o")),
		rdf.NewTriple(rdf.NewIRI("http://x"), rdf.NewIRI("http://r"), b1),
	} {
		if err := s.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.QueryGraph(`DESCRIBE ?v WHERE { ?v <http://q> <http://o> }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("DESCRIBE of a blank node: %d triples, want 3: %v", len(got), got)
	}
}
