package db2rdf

import (
	"fmt"

	"db2rdf/internal/rdf"
	"db2rdf/internal/sparql"
)

// RDFS subclass inference — the paper's other stated future work (§6,
// "we are also planning to support inferencing"). The paper's own
// evaluation hand-expands LUBM queries (§4.1: a query over Student
// becomes a UNION over its subclasses); with Options.Inference the
// engine performs the equivalent rewrite automatically, using the
// property-path closure machinery: every `?x rdf:type C` pattern
// becomes `?x rdf:type/subClassOf* C`, so instances of subclasses
// answer queries over their superclasses.

// rdfsSubClassOf is the predicate the rewrite closes over.
const rdfsSubClassOf = "http://www.w3.org/2000/01/rdf-schema#subClassOf"

// inferenceRewrite rewrites type patterns for RDFS subclass semantics.
// For each triple pattern (s, rdf:type, C) with a constant or variable
// class position, it produces
//
//	s rdf:type ?fresh . ?fresh <marker> C
//
// where marker is a closure over subClassOf with min 0 (reflexive, so
// direct types still match).
func inferenceRewrite(q *sparql.Query) {
	n := 0
	var markers int
	var rewrite func(p *sparql.Pattern)
	rewrite = func(p *sparql.Pattern) {
		var extra []*sparql.TriplePattern
		for _, t := range p.Triples {
			if t.P.IsVar || t.P.Term.Value != rdf.RDFType {
				continue
			}
			// Fresh variable bridging the declared type and the
			// queried class.
			n++
			bridge := sparql.Variable(fmt.Sprintf("_inf%d", n))
			markers++
			marker := fmt.Sprintf("urn:db2rdf:inf#%d", markers)
			q.Closures = append(q.Closures, sparql.Closure{
				Marker: marker,
				Steps:  []sparql.PathStep{{IRI: rdfsSubClassOf}},
				Min:    0,
				Max:    -1,
			})
			queried := t.O
			t.O = bridge
			extra = append(extra, &sparql.TriplePattern{
				ID:     -1, // renumbered below
				S:      bridge,
				P:      sparql.Constant(rdf.NewIRI(marker)),
				O:      queried,
				Parent: p,
			})
		}
		p.Triples = append(p.Triples, extra...)
		for _, c := range p.Children {
			rewrite(c)
		}
	}
	rewrite(q.Where)
	// Renumber triples in document order so optimizer ids stay unique.
	id := 0
	q.Where.Walk(func(p *sparql.Pattern) {
		for _, t := range p.Triples {
			id++
			t.ID = id
		}
	})
}
