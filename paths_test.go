package db2rdf_test

import (
	"sort"
	"strings"
	"testing"

	"db2rdf"
	"db2rdf/internal/rdf"
)

// pathStore builds a small org chart plus a type hierarchy:
//
//	alice -manages-> bob -manages-> carol -manages-> dave
//	alice -knows-> eve
//	Poodle subClassOf Dog subClassOf Animal; rex a Poodle
func pathStore(t *testing.T) *db2rdf.Store {
	t.Helper()
	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	iri := rdf.NewIRI
	mk := func(s0, p, o string) rdf.Triple {
		return rdf.NewTriple(iri("http://x/"+s0), iri("http://x/"+p), iri("http://x/"+o))
	}
	triples := []rdf.Triple{
		mk("alice", "manages", "bob"),
		mk("bob", "manages", "carol"),
		mk("carol", "manages", "dave"),
		mk("alice", "knows", "eve"),
		mk("eve", "email", "eve_at_example"),
		{S: iri("http://x/Poodle"), P: iri("http://x/subClassOf"), O: iri("http://x/Dog")},
		{S: iri("http://x/Dog"), P: iri("http://x/subClassOf"), O: iri("http://x/Animal")},
		{S: iri("http://x/rex"), P: iri(rdf.RDFType), O: iri("http://x/Poodle")},
	}
	if err := s.LoadTriples(triples); err != nil {
		t.Fatal(err)
	}
	return s
}

func values(t *testing.T, s *db2rdf.Store, q, v string) []string {
	t.Helper()
	res, err := s.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	idx := -1
	for i, name := range res.Vars {
		if name == v {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("var %s not in %v", v, res.Vars)
	}
	var out []string
	for _, row := range res.Rows {
		if row[idx].Bound {
			out = append(out, strings.TrimPrefix(row[idx].Term.Value, "http://x/"))
		}
	}
	sort.Strings(out)
	return out
}

func TestPathSequence(t *testing.T) {
	s := pathStore(t)
	got := values(t, s, `PREFIX x: <http://x/> SELECT ?w WHERE { x:alice x:manages/x:manages ?w }`, "w")
	if strings.Join(got, ",") != "carol" {
		t.Fatalf("manages/manages = %v", got)
	}
	got = values(t, s, `PREFIX x: <http://x/> SELECT ?e WHERE { x:alice x:knows/x:email ?e }`, "e")
	if strings.Join(got, ",") != "eve_at_example" {
		t.Fatalf("knows/email = %v", got)
	}
}

func TestPathAlternative(t *testing.T) {
	s := pathStore(t)
	got := values(t, s, `PREFIX x: <http://x/> SELECT ?w WHERE { x:alice x:manages|x:knows ?w }`, "w")
	if strings.Join(got, ",") != "bob,eve" {
		t.Fatalf("manages|knows = %v", got)
	}
}

func TestPathInverse(t *testing.T) {
	s := pathStore(t)
	got := values(t, s, `PREFIX x: <http://x/> SELECT ?boss WHERE { x:carol ^x:manages ?boss }`, "boss")
	if strings.Join(got, ",") != "bob" {
		t.Fatalf("^manages = %v", got)
	}
	// Inverse distributes over sequences.
	got = values(t, s, `PREFIX x: <http://x/> SELECT ?b WHERE { x:dave ^(x:manages/x:manages) ?b }`, "b")
	if strings.Join(got, ",") != "bob" {
		t.Fatalf("^(manages/manages) = %v", got)
	}
}

func TestPathPlus(t *testing.T) {
	s := pathStore(t)
	got := values(t, s, `PREFIX x: <http://x/> SELECT ?r WHERE { x:alice x:manages+ ?r }`, "r")
	if strings.Join(got, ",") != "bob,carol,dave" {
		t.Fatalf("manages+ = %v", got)
	}
	// And from a variable subject: all management pairs.
	res, err := s.Query(`PREFIX x: <http://x/> SELECT ?a ?b WHERE { ?a x:manages+ ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3+2+1 pairs in a 4-chain
		t.Fatalf("manages+ pairs = %d, want 6", len(res.Rows))
	}
}

func TestPathStar(t *testing.T) {
	s := pathStore(t)
	got := values(t, s, `PREFIX x: <http://x/> SELECT ?r WHERE { x:alice x:manages* ?r }`, "r")
	// Includes alice herself (zero-length).
	if strings.Join(got, ",") != "alice,bob,carol,dave" {
		t.Fatalf("manages* = %v", got)
	}
}

func TestPathZeroOrOne(t *testing.T) {
	s := pathStore(t)
	got := values(t, s, `PREFIX x: <http://x/> SELECT ?r WHERE { x:alice x:manages? ?r }`, "r")
	if strings.Join(got, ",") != "alice,bob" {
		t.Fatalf("manages? = %v", got)
	}
}

func TestPathTypeHierarchy(t *testing.T) {
	// The classic inference-via-path query: instances of Animal through
	// rdf:type/subClassOf*.
	s := pathStore(t)
	got := values(t, s, `PREFIX x: <http://x/> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?i WHERE { ?i rdf:type/x:subClassOf* x:Animal }`, "i")
	if strings.Join(got, ",") != "rex" {
		t.Fatalf("type/subClassOf* = %v", got)
	}
}

func TestPathClosureOverAlternative(t *testing.T) {
	s := pathStore(t)
	got := values(t, s, `PREFIX x: <http://x/> SELECT ?r WHERE { x:alice (x:manages|x:knows)+ ?r }`, "r")
	if strings.Join(got, ",") != "bob,carol,dave,eve" {
		t.Fatalf("(manages|knows)+ = %v", got)
	}
}

func TestPathInChainWithPattern(t *testing.T) {
	// Closure combined with an ordinary triple pattern.
	s := pathStore(t)
	got := values(t, s, `PREFIX x: <http://x/> SELECT ?e WHERE {
		x:alice x:manages+ ?m .
		x:alice x:knows ?k .
		?k x:email ?e }`, "e")
	if len(got) != 3 || got[0] != "eve_at_example" { // one per ?m binding
		t.Fatalf("mixed closure query = %v", got)
	}
}

func TestPathTempTablesCleanedUp(t *testing.T) {
	s := pathStore(t)
	before := len(s.Internal().DB.TableNames())
	if _, err := s.Query(`PREFIX x: <http://x/> SELECT ?r WHERE { x:alice x:manages+ ?r }`); err != nil {
		t.Fatal(err)
	}
	after := len(s.Internal().DB.TableNames())
	if after != before {
		t.Fatalf("temporary path tables leaked: %d -> %d", before, after)
	}
}

func TestPathUnsupportedClosureOperand(t *testing.T) {
	s := pathStore(t)
	_, err := s.Query(`PREFIX x: <http://x/> SELECT ?r WHERE { x:alice (x:manages/x:knows)+ ?r }`)
	if err == nil || !strings.Contains(err.Error(), "closure") {
		t.Fatalf("closure over sequence must report a clear error, got %v", err)
	}
}

func TestPathExplainShowsMarkerAccess(t *testing.T) {
	s := pathStore(t)
	ex, err := s.Explain(`PREFIX x: <http://x/> SELECT ?r WHERE { x:alice x:manages+ ?r }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.SQL, "PATHTMP_") {
		t.Fatalf("explain SQL must access the closure relation:\n%s", ex.SQL)
	}
}
