package db2rdf_test

// Conformance test for the Prometheus text exposition emitted by
// Metrics.WritePrometheus (ISSUE 10 satellite): the output is parsed
// line by line and checked against the format rules a scraper relies
// on — # HELP/# TYPE precede every family's samples, histogram buckets
// are cumulative and end with le="+Inf" equal to the histogram _count,
// and label values are quoted and escaped. The store is driven with
// query, error, abort, update, and durability traffic first, so every
// family is exercised with nonzero values.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"db2rdf"
	"db2rdf/internal/rdf"
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// parsePromText parses Prometheus text exposition format strictly:
// every malformed construct is a test failure. Returns samples plus
// the HELP/TYPE declarations by family name.
func parsePromText(t *testing.T, text string) (samples []promSample, help, typ map[string]string) {
	t.Helper()
	help = make(map[string]string)
	typ = make(map[string]string)
	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, doc, ok := strings.Cut(rest, " ")
			if !ok || doc == "" {
				t.Fatalf("line %d: HELP without docstring: %q", ln, line)
			}
			if _, dup := help[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", ln, name)
			}
			help[name] = doc
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln, line)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln, kind)
			}
			if _, dup := typ[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, name)
			}
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unrecognized comment %q", ln, line)
		}
		s := parsePromSample(t, ln, line)
		samples = append(samples, s)
	}
	return samples, help, typ
}

// parsePromSample parses `name{k="v",...} value`, validating quoting
// and escape sequences in label values.
func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}, line: ln}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: sample without value: %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !isPromName(s.name) {
		t.Fatalf("line %d: invalid metric name %q", ln, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			eq := strings.Index(rest, "=")
			if eq < 0 {
				t.Fatalf("line %d: label without '=': %q", ln, line)
			}
			key := rest[:eq]
			if !isPromName(key) {
				t.Fatalf("line %d: invalid label name %q", ln, key)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				t.Fatalf("line %d: unquoted label value in %q", ln, line)
			}
			val, remain, ok := scanPromQuoted(rest[1:])
			if !ok {
				t.Fatalf("line %d: bad label value escaping in %q", ln, line)
			}
			s.labels[key] = val
			rest = remain
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			t.Fatalf("line %d: malformed label set in %q", ln, line)
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// scanPromQuoted consumes a label value after its opening quote,
// returning the unescaped value and the remainder after the closing
// quote. Only \\, \" and \n escapes are legal.
func scanPromQuoted(in string) (val, rest string, ok bool) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch in[i] {
		case '\\':
			if i+1 >= len(in) {
				return "", "", false
			}
			i++
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", false
			}
		case '"':
			return b.String(), in[i+1:], true
		case '\n':
			return "", "", false
		default:
			b.WriteByte(in[i])
		}
	}
	return "", "", false
}

func isPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// baseFamily strips histogram sample suffixes to the declared family.
func baseFamily(name string, typ map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name {
			if _, ok := typ[base]; ok {
				return base
			}
		}
	}
	return name
}

func TestPrometheusExpositionConformance(t *testing.T) {
	s, err := db2rdf.Open(db2rdf.Options{K: 4, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Drive every metric family: loads, queries, rows, a parse error,
	// governance aborts (deadline + canceled), updates with deletes.
	var triples []rdf.Triple
	for i := 0; i < 50; i++ {
		triples = append(triples, rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://conf/s%d", i)),
			rdf.NewIRI("http://conf/p"),
			rdf.NewLiteral(fmt.Sprintf("v%d", i))))
	}
	if err := s.LoadTriples(triples); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Query(`SELECT ?s WHERE { ?s <http://conf/p> ?o }`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Query(`SELECT WHERE`); err == nil {
		t.Fatal("parse error expected")
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	cancel()
	if _, err := s.QueryContext(expired, `SELECT ?s WHERE { ?s ?p ?o }`); err == nil {
		t.Fatal("deadline abort expected")
	}
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.QueryContext(canceled, `SELECT ?s WHERE { ?s ?p ?o }`); err == nil {
		t.Fatal("cancel abort expected")
	}
	if _, err := s.Update(`DELETE DATA { <http://conf/s0> <http://conf/p> "v0" }`); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, helpDecl, typDecl := parsePromText(t, text)
	if len(samples) == 0 {
		t.Fatal("no samples emitted")
	}

	// Every sample's family must have HELP and TYPE declared before any
	// of its samples; families once closed must not reopen (samples of
	// one family are contiguous).
	seenFamily := map[string]bool{}
	var lastFamily string
	for _, sm := range samples {
		fam := baseFamily(sm.name, typDecl)
		if _, ok := typDecl[fam]; !ok {
			t.Errorf("line %d: sample %s has no # TYPE declaration", sm.line, sm.name)
			continue
		}
		if _, ok := helpDecl[fam]; !ok {
			t.Errorf("line %d: sample %s has no # HELP declaration", sm.line, sm.name)
		}
		if fam != lastFamily {
			if seenFamily[fam] {
				t.Errorf("line %d: family %s reopened after other samples", sm.line, fam)
			}
			seenFamily[fam] = true
			lastFamily = fam
		}
		if typDecl[fam] == "counter" && sm.value < 0 {
			t.Errorf("line %d: counter %s is negative: %g", sm.line, sm.name, sm.value)
		}
	}
	// Declared families must all have at least one sample.
	for fam := range typDecl {
		if !seenFamily[fam] {
			t.Errorf("family %s declared but has no samples", fam)
		}
	}

	// Histogram invariants: cumulative monotone buckets, a final
	// le="+Inf" bucket, and _count equal to the +Inf bucket.
	for fam, kind := range typDecl {
		if kind != "histogram" {
			continue
		}
		var buckets []promSample
		var count, inf float64
		var haveCount, haveInf bool
		for _, sm := range samples {
			switch sm.name {
			case fam + "_bucket":
				buckets = append(buckets, sm)
				if sm.labels["le"] == "+Inf" {
					inf, haveInf = sm.value, true
				}
			case fam + "_count":
				count, haveCount = sm.value, true
			}
		}
		if len(buckets) == 0 {
			t.Errorf("histogram %s has no buckets", fam)
			continue
		}
		if !haveInf {
			t.Errorf("histogram %s missing le=\"+Inf\" bucket", fam)
		}
		if !haveCount {
			t.Errorf("histogram %s missing _count", fam)
		}
		if haveInf && haveCount && inf != count {
			t.Errorf("histogram %s: le=\"+Inf\" bucket %g != _count %g", fam, inf, count)
		}
		prev := -1.0
		prevLe := ""
		for _, b := range buckets {
			le := b.labels["le"]
			if le == "" {
				t.Errorf("line %d: %s bucket without le label", b.line, fam)
				continue
			}
			if b.value < prev {
				t.Errorf("line %d: %s buckets not cumulative: le=%q %g after le=%q %g",
					b.line, fam, le, b.value, prevLe, prev)
			}
			prev, prevLe = b.value, le
		}
		if prevLe != "+Inf" {
			t.Errorf("histogram %s: last bucket is le=%q, want +Inf", fam, prevLe)
		}
	}

	// Spot-check the traffic actually landed where expected.
	want := map[string]float64{
		"db2rdf_queries_served_total":  8, // 5 ok + parse error + 2 aborts
		"db2rdf_updates_total":         1,
		"db2rdf_deleted_triples_total": 1,
	}
	for _, sm := range samples {
		if w, ok := want[sm.name]; ok && len(sm.labels) == 0 {
			if sm.value != w {
				t.Errorf("%s = %g, want %g", sm.name, sm.value, w)
			}
			delete(want, sm.name)
		}
		if sm.name == "db2rdf_query_aborts_total" {
			switch sm.labels["type"] {
			case "deadline", "canceled":
				if sm.value != 1 {
					t.Errorf("aborts{type=%q} = %g, want 1", sm.labels["type"], sm.value)
				}
			}
		}
	}
	for name := range want {
		t.Errorf("expected sample %s not found", name)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	// The escaping helper is exercised through the exposition wire
	// format: a value with every escapable character must round-trip
	// through the strict parser above.
	for _, v := range []string{`plain`, `back\slash`, `"quoted"`, "new\nline", `mix\"` + "\n"} {
		line := fmt.Sprintf("m_total{l=\"%s\"} 1", db2rdf.PromEscapeLabelForTest(v))
		sm := parsePromSample(t, 1, line)
		if got := sm.labels["l"]; got != v {
			t.Errorf("label %q round-tripped to %q", v, got)
		}
	}
}
