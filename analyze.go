package db2rdf

import (
	"context"
	"fmt"
	"strings"
	"time"

	"db2rdf/internal/rel"
)

// EXPLAIN ANALYZE: execute a query with per-operator instrumentation
// and pair the optimizer's TMC estimates with the actual cardinalities
// the executor produced — the estimate → execute → compare loop the
// paper's §3.1 cost model leaves implicit.

// OpStat is one instrumented executor operator (re-exported from the
// relational engine): actual rows in/out, hash-build entries, columnar
// chunks scanned vs zone-skipped, morsel workers used, wall time.
type OpStat = rel.OpStat

// ExecStats is the full execution profile of one query: the operator
// list, per-CTE row counts, and totals. Re-exported from the
// relational engine.
type ExecStats = rel.ExecStats

// PatternStat pairs one translated access node — one or more triple
// patterns answered by a single table access — with its runtime
// cardinality.
type PatternStat struct {
	// Cte is the generated CTE that evaluated this access (e.g. "QT3").
	Cte string
	// Method is the access method ("sc", "acs", "aco"); Merge the merge
	// rule that built the node ("none", "and", "or", "opt").
	Method string
	Merge  string
	// TripleIDs are the pattern IDs (document order) this access
	// answers; Ests the optimizer's TMC estimate for each.
	TripleIDs []int
	Ests      []float64
	// Est is the node-level estimate and Actual the rows the CTE
	// produced (-1 when the CTE was not executed, e.g. the query
	// aborted first).
	Est    float64
	Actual int64
	// QError is the symmetric estimation error max(est/act, act/est),
	// with both sides clamped to >= 1 so empty results do not divide by
	// zero; 0 when Actual is unknown.
	QError float64
}

// Analysis is the result of EXPLAIN ANALYZE: the static explanation,
// the executed results, the operator-level profile, and the
// estimate-vs-actual comparison per access pattern.
type Analysis struct {
	Explanation *Explanation
	// Results holds the query's decoded solutions (the query really
	// ran; nil when execution failed).
	Results *Results
	// Stats is the operator-level execution profile. It is present —
	// possibly partial — even when execution failed.
	Stats *ExecStats
	// Patterns pairs each translated access node with its actual
	// cardinality, in translation order.
	Patterns []PatternStat
	// Duration is the end-to-end time of the analyzed execution
	// (compile or cache lookup + run + decode).
	Duration time.Duration
}

// String renders the analysis as a human-readable report.
func (a *Analysis) String() string {
	var b strings.Builder
	if e := a.Explanation; e != nil {
		fmt.Fprintf(&b, "flow: %s\ntree: %s\nplan: %s\n", e.Flow, e.Tree, e.Plan)
	}
	if len(a.Patterns) > 0 {
		b.WriteString("patterns (estimate vs actual):\n")
		for _, p := range a.Patterns {
			ids := make([]string, len(p.TripleIDs))
			for i, id := range p.TripleIDs {
				ids[i] = fmt.Sprintf("t%d", id)
			}
			fmt.Fprintf(&b, "  %s [%s] %s/%s: est=%.1f", p.Cte, strings.Join(ids, ","), p.Method, p.Merge, p.Est)
			if p.Actual >= 0 {
				fmt.Fprintf(&b, " actual=%d q-error=%.2f", p.Actual, p.QError)
			} else {
				b.WriteString(" actual=? (not executed)")
			}
			b.WriteString("\n")
		}
	}
	if a.Stats != nil {
		b.WriteString("operators:\n")
		b.WriteString(a.Stats.String())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "analyzed in %s", a.Duration)
	return b.String()
}

// Analyze is AnalyzeContext with a background context.
func (s *Store) Analyze(q string) (*Analysis, error) {
	return s.AnalyzeContext(context.Background(), q)
}

// AnalyzeContext is EXPLAIN ANALYZE: it executes q exactly like
// QueryContext — same governance, same plan cache, same results — with
// per-operator instrumentation turned on, and returns the profile
// attached to the static explanation, including the optimizer's TMC
// estimate next to the actual row count of every access pattern.
//
// When execution fails, the returned Analysis still carries the
// explanation and the partial profile alongside the error, so an
// aborted (deadline, budget) query can be diagnosed.
func (s *Store) AnalyzeContext(ctx context.Context, q string) (an *Analysis, err error) {
	start := time.Now()
	// An analyzed query is still a served query: observe it (after the
	// lock releases and guard normalizes panics) like QueryContext does.
	defer func() {
		var res *Results
		var stats *ExecStats
		if an != nil {
			res, stats = an.Results, an.Stats
		}
		s.observeQuery(q, time.Since(start), res, stats, err)
	}()
	defer guard(q, nil, &err)
	ctx, cancel := s.governCtx(ctx)
	defer cancel()
	// Explanation and execution run on the same snapshot, so the
	// reported plan is exactly the one that ran.
	snap := s.inner.Snapshot()
	expl, err := s.explainOn(ctx, snap, q)
	if err != nil {
		return nil, attachQuery(q, err)
	}
	res, stats, cp, err := s.queryFull(ctx, snap, q, true)
	an = &Analysis{Explanation: expl, Results: res, Stats: stats}
	if cp != nil && cp.tr != nil && stats != nil {
		an.Patterns = patternStats(cp, stats)
	}
	an.Duration = time.Since(start)
	return an, attachQuery(q, err)
}

// patternStats joins the translator's access traces (CTE name + TMC
// estimates) with the executed per-CTE row counts.
func patternStats(cp *compiledPlan, stats *ExecStats) []PatternStat {
	out := make([]PatternStat, 0, len(cp.tr.Traces))
	for _, tr := range cp.tr.Traces {
		p := PatternStat{
			Cte:       tr.Cte,
			Method:    tr.Method.String(),
			Merge:     tr.Merge.String(),
			TripleIDs: tr.TripleIDs,
			Ests:      tr.Ests,
			Est:       tr.Est,
			Actual:    -1,
		}
		// rel lowercases CTE names when executing.
		if act, ok := stats.CTERows[strings.ToLower(tr.Cte)]; ok {
			p.Actual = act
			p.QError = qError(tr.Est, float64(act))
		}
		out = append(out, p)
	}
	return out
}

// qError is the symmetric estimation error: max(est/act, act/est),
// both sides clamped to >= 1.
func qError(est, act float64) float64 {
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

// SlowQuery is the record handed to Options.SlowQueryLog for a query
// whose duration reached Options.SlowQueryThreshold.
type SlowQuery struct {
	// Query is the SPARQL text as submitted.
	Query string
	// Duration is the end-to-end serving time.
	Duration time.Duration
	// Rows is the decoded result row count (0 on failure).
	Rows int
	// Err is the error the query returned, if any.
	Err error
	// Stats is the analyzed operator tree. It is present because a
	// store with a slow-query log executes every query with
	// instrumentation on (see Options.SlowQueryThreshold); nil only for
	// queries that failed before reaching the executor.
	Stats *ExecStats
}

// String renders the slow-query record as a log line plus the operator
// profile.
func (sq SlowQuery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "slow query (%s, %d rows", sq.Duration, sq.Rows)
	if sq.Err != nil {
		fmt.Fprintf(&b, ", error: %v", sq.Err)
	}
	fmt.Fprintf(&b, "): %s", sq.Query)
	if sq.Stats != nil {
		b.WriteString("\n")
		b.WriteString(sq.Stats.String())
	}
	return b.String()
}
