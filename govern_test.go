package db2rdf_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"db2rdf"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
)

// Store-level governance tests: the typed errors cross the public API,
// aborted queries leave the store fully usable, and the Options
// deadline/budget knobs behave as documented. Mid-execution aborts are
// driven by the executor's fault-injection harness, so nothing here
// depends on real timing. Tests that arm the (global) harness must not
// run in parallel.

// chainStore loads n subject→object links so queries over two hops
// compile to a genuine join (star merging cannot collapse a
// subject-object chain into one scan).
func chainStore(t testing.TB, opts db2rdf.Options, n int) *db2rdf.Store {
	t.Helper()
	s, err := db2rdf.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://gov/e%d", i)),
			rdf.NewIRI("http://gov/linked"),
			rdf.NewIRI(fmt.Sprintf("http://gov/e%d", i+1)),
		))
	}
	if err := s.LoadTriples(ts); err != nil {
		t.Fatal(err)
	}
	return s
}

const chainJoin = `SELECT ?a ?c WHERE { ?a <http://gov/linked> ?b . ?b <http://gov/linked> ?c }`

// checkStoreUsable asserts a follow-up query on the same store returns
// correct results after an abort.
func checkStoreUsable(t *testing.T, s *db2rdf.Store, wantRows int) {
	t.Helper()
	res, err := s.Query(`SELECT ?a WHERE { ?a <http://gov/linked> <http://gov/e1> }`)
	if err != nil {
		t.Fatalf("follow-up query after abort: %v", err)
	}
	if len(res.Rows) != wantRows {
		t.Fatalf("follow-up query: want %d rows, got %d", wantRows, len(res.Rows))
	}
}

func TestQueryContextCancelMidJoin(t *testing.T) {
	s := chainStore(t, db2rdf.Options{}, 200)
	rel.InjectFault(rel.CkHashProbe, rel.FaultCancel, 1)
	defer rel.ClearFault()
	_, err := s.QueryContext(context.Background(), chainJoin)
	if !errors.Is(err, db2rdf.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !rel.FaultFired() {
		t.Fatal("hash-probe checkpoint never reached: query did not join")
	}
	rel.ClearFault()
	checkStoreUsable(t, s, 1)
}

func TestDeadlineDuringOrderBy(t *testing.T) {
	s := chainStore(t, db2rdf.Options{}, 200)
	rel.InjectFault(rel.CkOrderBy, rel.FaultDeadline, 1)
	defer rel.ClearFault()
	_, err := s.Query(chainJoin + ` ORDER BY ?a`)
	if !errors.Is(err, db2rdf.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if !rel.FaultFired() {
		t.Fatal("order-by checkpoint never reached")
	}
	rel.ClearFault()
	checkStoreUsable(t, s, 1)
}

func TestQueryContextPreCanceled(t *testing.T) {
	s := chainStore(t, db2rdf.Options{}, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryContext(ctx, chainJoin); !errors.Is(err, db2rdf.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	checkStoreUsable(t, s, 1)
}

// TestQueryTimeoutOption exercises Options.QueryTimeout: a deadline
// that has effectively already passed (1ns) aborts at the first
// checkpoint, through plain Query with no caller context at all.
func TestQueryTimeoutOption(t *testing.T) {
	s := chainStore(t, db2rdf.Options{QueryTimeout: time.Nanosecond}, 50)
	if _, err := s.Query(chainJoin); !errors.Is(err, db2rdf.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded from Options.QueryTimeout, got %v", err)
	}
}

// TestEarlierParentDeadlineWins: a caller context that is already
// expired beats a generous store timeout.
func TestEarlierParentDeadlineWins(t *testing.T) {
	s := chainStore(t, db2rdf.Options{QueryTimeout: time.Hour}, 50)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.QueryContext(ctx, chainJoin); !errors.Is(err, db2rdf.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded from parent deadline, got %v", err)
	}
}

// TestRowBudgetInsideMorselWorker trips MaxResultRows inside a
// fanned-out join, then shows a cheaper query on the same store
// passing under the same budget.
func TestRowBudgetInsideMorselWorker(t *testing.T) {
	rel.SetParallelism(4, 1)
	defer rel.SetParallelism(0, 0)
	s := chainStore(t, db2rdf.Options{MaxResultRows: 50}, 400)
	_, err := s.Query(chainJoin)
	var be *db2rdf.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if !errors.Is(err, db2rdf.ErrBudgetExceeded) {
		t.Fatalf("BudgetError must match ErrBudgetExceeded: %v", err)
	}
	if be.Budget != "rows" {
		t.Fatalf("want rows budget, got %+v", be)
	}
	checkStoreUsable(t, s, 1) // selective query fits the same budget
}

func TestMemoryBudgetStore(t *testing.T) {
	rel.SetParallelism(4, 1)
	defer rel.SetParallelism(0, 0)
	s := chainStore(t, db2rdf.Options{MaxMemoryBytes: 256}, 400)
	_, err := s.Query(chainJoin)
	var be *db2rdf.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Budget != "memory" {
		t.Fatalf("want memory budget, got %+v", be)
	}
}

// TestInjectedPanicAttachesQueryText: a panic inside a morsel worker
// comes back as *PanicError wrapped with the offending query text, and
// the store (including its plan cache) keeps working.
func TestInjectedPanicAttachesQueryText(t *testing.T) {
	rel.SetParallelism(4, 1)
	defer rel.SetParallelism(0, 0)
	s := chainStore(t, db2rdf.Options{}, 200)
	rel.InjectFault(rel.CkHashProbe, rel.FaultPanic, 1)
	defer rel.ClearFault()
	_, err := s.Query(chainJoin)
	rel.ClearFault()
	var pe *db2rdf.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if !strings.Contains(err.Error(), "http://gov/linked") {
		t.Fatalf("error should carry the query text, got %q", err.Error())
	}
	// The aborted execution must not have poisoned the cached plan.
	res, err := s.Query(chainJoin)
	if err != nil {
		t.Fatalf("rerun after contained panic: %v", err)
	}
	if len(res.Rows) != 199 {
		t.Fatalf("rerun after contained panic: want 199 rows, got %d", len(res.Rows))
	}
	checkStoreUsable(t, s, 1)
}

// TestGraphQueryGovernance: CONSTRUCT goes through the same lifecycle
// layer.
func TestGraphQueryGovernance(t *testing.T) {
	s := chainStore(t, db2rdf.Options{}, 100)
	rel.InjectFault(rel.CkHashProbe, rel.FaultCancel, 1)
	defer rel.ClearFault()
	_, err := s.QueryGraphContext(context.Background(),
		`CONSTRUCT { ?a <http://gov/hop2> ?c } WHERE { ?a <http://gov/linked> ?b . ?b <http://gov/linked> ?c }`)
	if !errors.Is(err, db2rdf.ErrCanceled) {
		t.Fatalf("want ErrCanceled from CONSTRUCT, got %v", err)
	}
	rel.ClearFault()
	checkStoreUsable(t, s, 1)
}

// TestPathClosureGovernance: property-path closure materialization is
// canceled too, and its PATHTMP temporaries are cleaned up.
func TestPathClosureGovernance(t *testing.T) {
	s := chainStore(t, db2rdf.Options{}, 100)
	before := len(s.Internal().DB.TableNames())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.QueryContext(ctx, `SELECT ?b WHERE { <http://gov/e0> <http://gov/linked>+ ?b }`)
	if !errors.Is(err, db2rdf.ErrCanceled) {
		t.Fatalf("want ErrCanceled from closure query, got %v", err)
	}
	if after := len(s.Internal().DB.TableNames()); after != before {
		t.Fatalf("aborted closure query leaked temp tables: %d -> %d", before, after)
	}
	// And the same closure query succeeds afterwards.
	res, err := s.Query(`SELECT ?b WHERE { <http://gov/e0> <http://gov/linked>+ ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 100 {
		t.Fatalf("closure rerun: want 100 rows, got %d", len(res.Rows))
	}
}

// TestExplainGovernance: Explain reports the effective deadline and
// budgets.
func TestExplainGovernance(t *testing.T) {
	s := chainStore(t, db2rdf.Options{
		QueryTimeout:   time.Hour,
		MaxResultRows:  123,
		MaxMemoryBytes: 456,
	}, 10)
	ex, err := s.Explain(chainJoin)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Deadline.IsZero() {
		t.Fatal("want nonzero effective deadline from Options.QueryTimeout")
	}
	if d := time.Until(ex.Deadline); d < 59*time.Minute || d > time.Hour {
		t.Fatalf("effective deadline off: %v away", d)
	}
	if ex.MaxResultRows != 123 || ex.MaxMemoryBytes != 456 {
		t.Fatalf("budgets not reported: %+v", ex)
	}

	plain := chainStore(t, db2rdf.Options{}, 10)
	ex, err = plain.Explain(chainJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Deadline.IsZero() || ex.MaxResultRows != 0 || ex.MaxMemoryBytes != 0 {
		t.Fatalf("ungoverned store should report no limits: %+v", ex)
	}
}
