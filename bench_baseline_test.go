package db2rdf_test

// TestBenchBaseline is the `make bench` entry point: it measures bulk
// load, cold-plan query and warm-plan (cache-hit) query latencies with
// testing.Benchmark and writes them as JSON to the file named by the
// DB2RDF_BENCH_OUT environment variable (BENCH_PR2.json from the
// Makefile). Without the variable it is skipped, so plain `go test`
// stays fast.

import (
	"encoding/json"
	"os"
	"testing"

	"db2rdf"
)

type benchPoint struct {
	Name string  `json:"name"`
	NsOp float64 `json:"ns_per_op"`
	N    int     `json:"iterations"`
}

func TestBenchBaseline(t *testing.T) {
	out := os.Getenv("DB2RDF_BENCH_OUT")
	if out == "" {
		t.Skip("set DB2RDF_BENCH_OUT=<file> to record benchmark baselines")
	}
	ds := lubmData()
	q := ds.Queries[0].SPARQL

	load := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := db2rdf.Open(db2rdf.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.LoadTriples(ds.Triples); err != nil {
				b.Fatal(err)
			}
		}
	})

	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ResetPlanCache()
			if _, err := s.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	points := []benchPoint{
		{Name: "load_lubm", NsOp: float64(load.NsPerOp()), N: load.N},
		{Name: "query_cold_plan", NsOp: float64(cold.NsPerOp()), N: cold.N},
		{Name: "query_warm_plan", NsOp: float64(warm.NsPerOp()), N: warm.N},
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
	for _, p := range points {
		t.Logf("%-18s %12.0f ns/op (n=%d)", p.Name, p.NsOp, p.N)
	}
}
