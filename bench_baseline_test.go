package db2rdf_test

// TestBenchBaseline is the `make bench` entry point: it measures bulk
// load, cold-plan query and warm-plan (cache-hit) query latencies with
// testing.Benchmark and writes them as JSON to the file named by the
// DB2RDF_BENCH_OUT environment variable (BENCH_PR10.json from the
// Makefile). Without the variable it is skipped, so plain `go test`
// stays fast.
//
// Besides ns/op each point carries bytes/op and allocs/op, and
// non-latency points record the resident size of a loaded LUBM store
// under the encoded-columnar (default), raw-columnar and legacy row
// layouts — plus the front-coded vs raw dictionary, the on-disk
// snapshot size, and after snapshot-publishing write churn — so the
// memory claims of the compressed chunks, the columnar storage and
// the COW snapshot layer are tracked across PRs. The *_ratio points
// compare warm, concurrent and selective-scan latency between the
// encoded and raw chunk layouts.
// The query_during_load_p50/p99 points record reader latency while a
// concurrent bulk load keeps publishing snapshots (the headline of the
// lock-free read path), and snapshot_publish the writer-side cost of
// one insert + publish. The http_query_* points serve the same warm
// query over the SPARQL HTTP endpoint (loopback), isolating the
// protocol + JSON-serialization overhead above the in-process path.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"db2rdf"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/server"
)

type benchPoint struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_per_op"`
	N        int     `json:"iterations"`
	BytesOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsOp int64   `json:"allocs_per_op,omitempty"`
}

func latencyPoint(name string, r testing.BenchmarkResult) benchPoint {
	return benchPoint{
		Name:     name,
		NsOp:     float64(r.NsPerOp()),
		N:        r.N,
		BytesOp:  r.AllocedBytesPerOp(),
		AllocsOp: r.AllocsPerOp(),
	}
}

func TestBenchBaseline(t *testing.T) {
	out := os.Getenv("DB2RDF_BENCH_OUT")
	if out == "" {
		t.Skip("set DB2RDF_BENCH_OUT=<file> to record benchmark baselines")
	}
	ds := lubmData()
	q := ds.Queries[0].SPARQL

	load := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := db2rdf.Open(db2rdf.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.LoadTriples(ds.Triples); err != nil {
				b.Fatal(err)
			}
		}
	})

	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ResetPlanCache()
			if _, err := s.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The same warm-plan query served over the SPARQL HTTP endpoint:
	// one ns/op point for the full request (admission, execution, JSON
	// serialization, loopback transport), plus sequential p50/p99
	// request latencies, so the endpoint's overhead above the
	// in-process warm point is tracked across PRs.
	srv := httptest.NewServer(server.New(server.Config{Store: s}))
	httpURL := srv.URL + "/sparql?query=" + url.QueryEscape(q)
	httpGet := func() error {
		resp, err := http.Get(httpURL)
		if err != nil {
			return err
		}
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("endpoint returned %d", resp.StatusCode)
		}
		return nil
	}
	if err := httpGet(); err != nil {
		t.Fatal(err)
	}
	httpWarm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := httpGet(); err != nil {
				b.Fatal(err)
			}
		}
	})
	const httpSamples = 300
	httpLat := make([]time.Duration, 0, httpSamples)
	for i := 0; i < httpSamples; i++ {
		t0 := time.Now()
		if err := httpGet(); err != nil {
			t.Fatal(err)
		}
		httpLat = append(httpLat, time.Since(t0))
	}
	sort.Slice(httpLat, func(i, j int) bool { return httpLat[i] < httpLat[j] })
	httpP50 := httpLat[len(httpLat)/2]
	httpP99 := httpLat[len(httpLat)*99/100]
	srv.Close()

	// Instrumented-vs-disabled delta: a second store whose slow-query
	// log forces per-operator profiling on every query (threshold high
	// enough that the callback never fires), against the same warm plan.
	instr, err := db2rdf.Open(db2rdf.Options{
		SlowQueryThreshold: time.Hour,
		SlowQueryLog:       func(db2rdf.SlowQuery) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := instr.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	if _, err := instr.Query(q); err != nil {
		t.Fatal(err)
	}
	warmInstr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := instr.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Resident footprints of the same LUBM dataset under three table
	// layouts — encoded columnar (the default: chunks seal into the
	// FoR bit-packed form at publish), raw columnar (encoding off),
	// and the legacy row layout — plus the dictionary under its
	// front-coded and raw []Term layouts. Tables and dictionary are
	// reported separately (TableBytes / DictBytes).
	colBytes := s.TableBytes()
	dictBytes := s.DictBytes()
	dictRawBytes := s.Internal().Dict.RawBytes()
	rel.SetChunkEncoding(false)
	rawColStore, err := db2rdf.Open(db2rdf.Options{})
	if err == nil {
		err = rawColStore.LoadTriples(ds.Triples)
	}
	rel.SetChunkEncoding(true)
	if err != nil {
		t.Fatal(err)
	}
	rawColBytes := rawColStore.TableBytes()
	rel.SetDefaultStorage(rel.StorageRows)
	rowStore, err := db2rdf.Open(db2rdf.Options{})
	rel.SetDefaultStorage(rel.StorageColumnar)
	if err != nil {
		t.Fatal(err)
	}
	if err := rowStore.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	rowBytes := rowStore.TableBytes()

	// Warm-plan and concurrent query latency against the raw-columnar
	// store: the encoded-vs-raw ratios below are the flat-scan-latency
	// acceptance numbers for the compressed chunk representation.
	if _, err := rawColStore.Query(q); err != nil {
		t.Fatal(err)
	}
	warmRaw := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rawColStore.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	concurrent := func(st *db2rdf.Store) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(4)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := st.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
	concEnc := concurrent(s)
	concRaw := concurrent(rawColStore)

	// Selective scan with zone maps defeated, at the rel level, sealed
	// (encoded) vs raw chunks — the same comparison without plan-cache
	// or dictionary work in the loop.
	relScan := func(sealed bool) testing.BenchmarkResult {
		db := rel.NewDB()
		tb, err := db.CreateTable("sf", rel.Schema{{Name: "v", Type: rel.TInt}, {Name: "pad", Type: rel.TInt}})
		if err != nil {
			t.Fatal(err)
		}
		const n = 1 << 18
		rows := make([]rel.Row, n)
		for i := range rows {
			rows[i] = rel.Row{rel.Int(int64((i*2654435761 + 12345) % n)), rel.Int(int64(i))}
		}
		if _, err := tb.AppendRows(rows); err != nil {
			t.Fatal(err)
		}
		if sealed {
			tb.Publish()
		}
		const sq = "SELECT T.pad FROM sf AS T WHERE T.v = 70000"
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := db.Query(sq)
				if err != nil || len(rs.Rows) != 1 {
					b.Fatalf("err=%v rows=%d", err, len(rs.Rows))
				}
			}
		})
	}
	scanRaw := relScan(false)
	scanSealed := relScan(true)

	// Delete throughput and post-delete scan latency: each iteration
	// deletes a batch of triples via SPARQL update from a pre-loaded
	// store (reloading outside the timer), then the scan point reruns
	// the warm query against a store that carries tombstones.
	const delBatch = 200
	var victims []rdf.Triple
	seen := map[rdf.Triple]bool{}
	for _, tr := range ds.Triples {
		if len(victims) == delBatch {
			break
		}
		if !seen[tr] {
			seen[tr] = true
			victims = append(victims, tr)
		}
	}
	deleted := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ds2, err := db2rdf.Open(db2rdf.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := ds2.LoadTriples(ds.Triples); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res, err := ds2.DeleteTriples(victims)
			if err != nil {
				b.Fatal(err)
			}
			if res != len(victims) {
				b.Fatalf("deleted %d, want %d", res, len(victims))
			}
		}
	})
	tombStore, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tombStore.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	if n := len(ds.Triples) / 10; n > 0 {
		if _, err := tombStore.DeleteTriples(ds.Triples[:n]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tombStore.Query(q); err != nil {
		t.Fatal(err)
	}
	scanAfterDelete := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tombStore.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Reader latency while a concurrent bulk load publishes snapshots,
	// plus the writer-side publish cost and the resident footprint after
	// the write churn (tracks COW memory overhead across PRs).
	churnStore, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := churnStore.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	if _, err := churnStore.Query(q); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var churnWg sync.WaitGroup
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		defer close(stop)
		loadChurn(t, churnStore, 20, 1000)
	}()
	loadP50, loadP99 := readLatencies(t, churnStore, q, stop)
	churnWg.Wait()
	churnBytes := churnStore.TableBytes()

	publish := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		inner := churnStore.Internal()
		inner.Lock()
		defer inner.Unlock()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := inner.InsertLocked(rdf.NewTriple(
				rdf.NewIRI(fmt.Sprintf("http://pub/s%d", i)),
				rdf.NewIRI("http://pub/p"),
				rdf.NewLiteral(fmt.Sprintf("v%d", i)),
			)); err != nil {
				b.Fatal(err)
			}
			inner.PublishLocked()
		}
	})

	// Durability: cold-start recovery from an epoch-aligned snapshot,
	// WAL-only replay throughput, and the WAL-on publish overhead
	// (compare against the in-memory snapshot_publish point above).
	snapDir := t.TempDir()
	durStore, err := db2rdf.Open(db2rdf.Options{DataDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	if err := durStore.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	if err := durStore.Close(); err != nil {
		t.Fatal(err)
	}
	recoverSnap := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rs, err := db2rdf.Open(db2rdf.Options{DataDir: snapDir})
			if err != nil {
				b.Fatal(err)
			}
			if err := rs.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// On-disk size of the epoch snapshot just written: tracks the
	// encoded (marker-tagged packed) table sections across PRs.
	var snapFileBytes int64
	snapFiles, err := os.ReadDir(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range snapFiles {
		if filepath.Ext(f.Name()) == ".snap" {
			fi, err := f.Info()
			if err != nil {
				t.Fatal(err)
			}
			snapFileBytes += fi.Size()
		}
	}

	// WAL-only replay: load into a durable store and "crash" (no Close,
	// so no snapshot exists); each iteration recovers a fresh copy of
	// the segment purely through replay.
	walDir := t.TempDir()
	crashStore, err := db2rdf.Open(db2rdf.Options{DataDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	if err := crashStore.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	segs, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var replayed uint64
	recoverWAL := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rdir := b.TempDir()
			for _, f := range segs {
				data, err := os.ReadFile(filepath.Join(walDir, f.Name()))
				if err != nil {
					b.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(rdir, f.Name()), data, 0o644); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			rs, err := db2rdf.Open(db2rdf.Options{DataDir: rdir})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			replayed = rs.Internal().DurabilityStats().ReplayedRecords
			if replayed == 0 {
				b.Fatal("WAL-only recovery replayed nothing")
			}
			if err := rs.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})

	// Same dataset as the in-memory snapshot_publish point above, so the
	// delta between the two is the WAL capture + append cost.
	publishWAL := testing.Benchmark(func(b *testing.B) {
		b.StopTimer()
		ws, err := db2rdf.Open(db2rdf.Options{DataDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		defer ws.Close()
		if err := ws.LoadTriples(ds.Triples); err != nil {
			b.Fatal(err)
		}
		inner := ws.Internal()
		inner.Lock()
		defer inner.Unlock()
		b.StartTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := inner.InsertLocked(rdf.NewTriple(
				rdf.NewIRI(fmt.Sprintf("http://wal/s%d", i)),
				rdf.NewIRI("http://wal/p"),
				rdf.NewLiteral(fmt.Sprintf("v%d", i)),
			)); err != nil {
				b.Fatal(err)
			}
			if err := inner.PublishLocked(); err != nil {
				b.Fatal(err)
			}
		}
	})

	points := []benchPoint{
		latencyPoint("load_lubm", load),
		latencyPoint("query_cold_plan", cold),
		latencyPoint("query_warm_plan", warm),
		latencyPoint("query_warm_plan_instrumented", warmInstr),
		latencyPoint("http_query_warm", httpWarm),
		{Name: "http_query_p50", NsOp: float64(httpP50), N: httpSamples},
		{Name: "http_query_p99", NsOp: float64(httpP99), N: httpSamples},
		latencyPoint("delete_batch_200", deleted),
		latencyPoint("query_warm_plan_after_delete", scanAfterDelete),
		latencyPoint("snapshot_publish", publish),
		latencyPoint("snapshot_publish_wal", publishWAL),
		{Name: "recover_snapshot_ms", NsOp: float64(recoverSnap.NsPerOp()) / 1e6, N: recoverSnap.N},
		{Name: "wal_replay_rate", NsOp: float64(replayed) / (float64(recoverWAL.NsPerOp()) / 1e9), N: recoverWAL.N},
		{Name: "query_during_load_p50", NsOp: float64(loadP50), N: 1},
		{Name: "query_during_load_p99", NsOp: float64(loadP99), N: 1},
		{Name: "table_resident_bytes", NsOp: float64(colBytes), N: 1},
		{Name: "table_resident_bytes_rawcolumnar", NsOp: float64(rawColBytes), N: 1},
		{Name: "table_resident_bytes_rowlayout", NsOp: float64(rowBytes), N: 1},
		{Name: "table_resident_bytes_after_write_churn", NsOp: float64(churnBytes), N: 1},
		{Name: "dict_resident_bytes", NsOp: float64(dictBytes), N: 1},
		{Name: "dict_resident_bytes_raw", NsOp: float64(dictRawBytes), N: 1},
		{Name: "encoded_chunks_total", NsOp: float64(rel.SealedChunksTotal()), N: 1},
		{Name: "snapshot_file_bytes", NsOp: float64(snapFileBytes), N: 1},
		latencyPoint("query_warm_plan_rawcolumnar", warmRaw),
		latencyPoint("concurrent_query_encoded", concEnc),
		latencyPoint("concurrent_query_rawcolumnar", concRaw),
		latencyPoint("scan_selective_encoded", scanSealed),
		latencyPoint("scan_selective_rawcolumnar", scanRaw),
	}
	if warm.NsPerOp() > 0 {
		points = append(points, benchPoint{
			Name: "instrumentation_overhead_ratio",
			NsOp: float64(warmInstr.NsPerOp()) / float64(warm.NsPerOp()),
			N:    1,
		})
	}
	// Encoded-vs-raw latency ratios (the <= 1.15x acceptance numbers
	// for the compressed chunk representation).
	if warmRaw.NsPerOp() > 0 {
		points = append(points, benchPoint{
			Name: "query_warm_encoded_vs_raw_ratio",
			NsOp: float64(warm.NsPerOp()) / float64(warmRaw.NsPerOp()),
			N:    1,
		})
	}
	if concRaw.NsPerOp() > 0 {
		points = append(points, benchPoint{
			Name: "concurrent_query_encoded_vs_raw_ratio",
			NsOp: float64(concEnc.NsPerOp()) / float64(concRaw.NsPerOp()),
			N:    1,
		})
	}
	if scanRaw.NsPerOp() > 0 {
		points = append(points, benchPoint{
			Name: "scan_selective_encoded_vs_raw_ratio",
			NsOp: float64(scanSealed.NsPerOp()) / float64(scanRaw.NsPerOp()),
			N:    1,
		})
	}
	// Per-pattern estimation quality over the corpus: one point per
	// (query, access node), NsOp carrying the q-error.
	for _, cq := range ds.Queries {
		an, err := s.Analyze(cq.SPARQL)
		if err != nil {
			t.Fatalf("analyze %s: %v", cq.Name, err)
		}
		for _, p := range an.Patterns {
			points = append(points, benchPoint{
				Name: fmt.Sprintf("qerror_%s_%s", cq.Name, p.Cte),
				NsOp: p.QError,
				N:    int(p.Actual),
			})
		}
	}
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
	for _, p := range points {
		t.Logf("%-30s %14.0f ns/op (n=%d, %d B/op, %d allocs/op)", p.Name, p.NsOp, p.N, p.BytesOp, p.AllocsOp)
	}
	if rowBytes > 0 {
		t.Logf("columnar/row resident ratio: %.2fx smaller (%d vs %d bytes)",
			float64(rowBytes)/float64(colBytes), colBytes, rowBytes)
	}
}
