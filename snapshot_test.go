package db2rdf_test

// Snapshot-isolation tests for the lock-free read path: readers load
// one published snapshot pointer and must observe exactly the content
// of some published epoch — never a half-applied update — while a
// writer keeps mutating and publishing. Run with -race (tier-1 does).

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"db2rdf"
	"db2rdf/internal/rdf"
)

// TestSnapshotIsolationReaders drives the PR 6 randomized insert/delete
// interleaving (600 steps over a 240-triple universe) with continuous
// concurrent readers. The writer records the canonical export of every
// epoch it publishes; every export a reader observes must be
// byte-identical to one of them. A torn read — a reader seeing a state
// that was never published — fails the membership check; a leaked
// reader or executor goroutine fails the leak check.
func TestSnapshotIsolationReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	universe := make([]rdf.Triple, 0, 240)
	for e := 0; e < 12; e++ {
		for p := 0; p < 5; p++ {
			for v := 0; v < 4; v++ {
				universe = append(universe, rdf.NewTriple(
					rdf.NewIRI(fmt.Sprintf("e%d", e)),
					rdf.NewIRI(fmt.Sprintf("p%d", p)),
					rdf.NewLiteral(fmt.Sprintf("v%d", v)),
				))
			}
		}
	}

	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	export := func() string {
		var buf bytes.Buffer
		if _, err := s.Export(&buf); err != nil {
			t.Errorf("export: %v", err)
		}
		return buf.String()
	}
	// One warm-up export before counting goroutines: the first query
	// through the pipeline may lazily start runtime machinery.
	published := map[string]bool{export(): true}
	baseline := runtime.NumGoroutine()

	const readers = 3
	done := make(chan struct{})
	observed := make([][]string, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var obs []string
			for {
				select {
				case <-done:
					observed[r] = obs
					return
				default:
				}
				var buf bytes.Buffer
				if _, err := s.Export(&buf); err != nil {
					t.Errorf("reader %d export: %v", r, err)
					observed[r] = obs
					return
				}
				// Consecutive duplicates carry no new information;
				// keeping only transitions bounds memory.
				if e := buf.String(); len(obs) == 0 || obs[len(obs)-1] != e {
					obs = append(obs, e)
				}
			}
		}(r)
	}

	ntFor := func(tr rdf.Triple) string {
		return fmt.Sprintf("<%s> <%s> %q", tr.S.Value, tr.P.Value, tr.O.Value)
	}
	for step := 0; step < 600; step++ {
		tr := universe[rng.Intn(len(universe))]
		var err error
		if rng.Intn(3) == 0 {
			_, err = s.Update(`DELETE DATA { ` + ntFor(tr) + ` }`)
		} else {
			_, err = s.Update(`INSERT DATA { ` + ntFor(tr) + ` }`)
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// The writer is the only mutator, so this export captures
		// exactly the epoch the update just published (or republished
		// content identical to the previous one for a no-op).
		published[export()] = true
	}
	close(done)
	wg.Wait()

	total := 0
	for r, obs := range observed {
		total += len(obs)
		for i, e := range obs {
			if !published[e] {
				t.Fatalf("reader %d observation %d (%d bytes) matches no published epoch — torn read", r, i, len(e))
			}
		}
	}
	if total == 0 {
		t.Fatal("readers observed nothing; the test exercised no concurrency")
	}
	t.Logf("%d distinct published states, %d reader state transitions verified", len(published), total)

	// Goroutine-leak check: everything the readers and the executor
	// started must wind down. Transient morsel workers need a moment.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// snapshotGateFactor bounds reader latency while a bulk load runs
// concurrently, relative to the idle warm-plan latency at the same
// percentile (median against median, p99 against p99 — comparing a
// tail against a median would gate on GC noise, not on locking).
// Reads never take the store lock, so load activity should cost
// readers at most cache pressure and GC — a multiple of idle latency,
// not the seconds a lock-coupled reader would stall waiting for the
// loader.
const snapshotGateFactor = 5.0

// TestPerfGateSnapshotReads is the ci.sh non-blocking-reads gate
// (DB2RDF_PERF_GATE=1): warm-query p50 and p99 measured during a
// concurrent bulk load must stay within snapshotGateFactor of their
// idle counterparts.
func TestPerfGateSnapshotReads(t *testing.T) {
	if os.Getenv("DB2RDF_PERF_GATE") == "" {
		t.Skip("set DB2RDF_PERF_GATE=1 to run the snapshot-read latency gate")
	}
	ds := lubmData()
	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	q := ds.Queries[0].SPARQL
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}

	idleP50, idleP99 := readLatencies(t, s, q, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		loadChurn(t, s, 30, 2000)
	}()
	loadP50, loadP99 := readLatencies(t, s, q, stop)
	wg.Wait()

	t.Logf("idle p50 %v p99 %v, during-load p50 %v p99 %v (limit %.1fx per percentile)",
		idleP50, idleP99, loadP50, loadP99, snapshotGateFactor)
	if float64(loadP50) > snapshotGateFactor*float64(idleP50) {
		t.Fatalf("reader latency under load: p50 %v > %.1f x idle p50 %v — reads are blocking on the writer",
			loadP50, snapshotGateFactor, idleP50)
	}
	if float64(loadP99) > snapshotGateFactor*float64(idleP99) {
		t.Fatalf("reader latency under load: p99 %v > %.1f x idle p99 %v — reads are blocking on the writer",
			loadP99, snapshotGateFactor, idleP99)
	}
}

// readLatencies times warm queries and returns the p50 and p99. With a
// nil stop channel it takes a fixed idle sample; otherwise it samples
// until stop closes (with a floor so the percentile is meaningful).
func readLatencies(t *testing.T, s *db2rdf.Store, q string, stop <-chan struct{}) (p50, p99 time.Duration) {
	t.Helper()
	var samples []time.Duration
	for {
		if len(samples) >= 300 {
			if stop == nil || len(samples) >= 20000 {
				break
			}
			select {
			case <-stop:
				return percentiles(samples)
			default:
			}
		}
		t0 := time.Now()
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
		samples = append(samples, time.Since(t0))
	}
	return percentiles(samples)
}

func percentiles(samples []time.Duration) (p50, p99 time.Duration) {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], samples[len(samples)*99/100]
}

// loadChurn bulk-loads batches of fresh triples, publishing a new
// snapshot per batch — the writer side of the mixed workload.
func loadChurn(t *testing.T, s *db2rdf.Store, batches, batchSize int) {
	t.Helper()
	for b := 0; b < batches; b++ {
		tris := make([]rdf.Triple, 0, batchSize)
		for i := 0; i < batchSize; i++ {
			tris = append(tris, rdf.NewTriple(
				rdf.NewIRI(fmt.Sprintf("http://churn/s%d-%d", b, i)),
				rdf.NewIRI(fmt.Sprintf("http://churn/p%d", i%7)),
				rdf.NewLiteral(fmt.Sprintf("v%d", i)),
			))
		}
		if err := s.LoadTriples(tris); err != nil {
			t.Errorf("churn batch %d: %v", b, err)
			return
		}
	}
}
