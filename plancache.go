package db2rdf

import (
	"container/list"
	"sync"
	"sync/atomic"

	"db2rdf/internal/rel"
	"db2rdf/internal/sparql"
	"db2rdf/internal/translator"
)

// The compiled-plan cache. Parsing SPARQL, running the two-step
// optimizer, generating SQL and parsing that SQL back into the
// relational AST is pure computation over (query text, store state) —
// under heavy repeated query traffic it dominates short queries. A
// Store memoizes the whole pipeline keyed by query text, validated by
// the store's write epoch: any load bumps the epoch (spill state,
// multi-value state and the predicate→column mapping view all feed
// the generated SQL), so stale plans are detected lazily and recompiled.
//
// Queries with property-path closures are not cached: their
// translation references per-query PATHTMP_n temporary relations that
// are dropped when the query finishes.

// defaultPlanCacheSize bounds the LRU cache; beyond it the least
// recently used entry is evicted.
const defaultPlanCacheSize = 256

// compiledPlan is one fully compiled query: the rewritten SPARQL AST
// (needed for projection of the unit solution), the translation
// result, and the parsed relational AST, ready for rel.DB.Exec. All
// fields are read-only after construction, so one compiledPlan may be
// executed by any number of concurrent queries.
type compiledPlan struct {
	key    string
	epoch  uint64
	parsed *sparql.Query
	tr     *translator.Result
	rq     *rel.Query // nil when tr.SQL is empty (empty-pattern query)
}

// planCache is a mutex-guarded LRU map from query text to compiled
// plan. It is a leaf lock: nothing is acquired while holding it, and
// it is taken by readers holding the store read lock.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // element value: *compiledPlan

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached plan for q if present and compiled at the
// given epoch; a stale entry is evicted and counted as a miss.
func (c *planCache) get(q string, epoch uint64) (*compiledPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[q]; ok {
		cp := el.Value.(*compiledPlan)
		if cp.epoch == epoch {
			c.order.MoveToFront(el)
			c.hits.Add(1)
			return cp, true
		}
		c.order.Remove(el)
		delete(c.entries, q)
	}
	c.misses.Add(1)
	return nil, false
}

// put inserts (or replaces) the plan, evicting the least recently used
// entries beyond capacity.
func (c *planCache) put(cp *compiledPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[cp.key]; ok {
		el.Value = cp
		c.order.MoveToFront(el)
		return
	}
	c.entries[cp.key] = c.order.PushFront(cp)
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*compiledPlan).key)
	}
}

// contains reports whether q is cached and valid at epoch, without
// touching the hit/miss counters or the LRU order.
func (c *planCache) contains(q string, epoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[q]
	return ok && el.Value.(*compiledPlan).epoch == epoch
}

// reset drops every entry (counters are kept).
func (c *planCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[string]*list.Element)
}

// stats returns the lifetime hit and miss counts.
func (c *planCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
