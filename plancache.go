package db2rdf

import (
	"container/list"
	"sync"

	"db2rdf/internal/rel"
	"db2rdf/internal/sparql"
	"db2rdf/internal/translator"
)

// The compiled-plan cache. Parsing SPARQL, running the two-step
// optimizer, generating SQL and parsing that SQL back into the
// relational AST is pure computation over (query text, store state) —
// under heavy repeated query traffic it dominates short queries. A
// Store memoizes the whole pipeline keyed by query text, validated by
// the store's write epoch: any load bumps the epoch (spill state,
// multi-value state and the predicate→column mapping view all feed
// the generated SQL), so stale plans are detected lazily and recompiled.
//
// Queries with property-path closures are not cached: their
// translation references per-query PATHTMP_n temporary relations that
// are dropped when the query finishes.

// defaultPlanCacheSize bounds the LRU cache; beyond it the least
// recently used entry is evicted.
const defaultPlanCacheSize = 256

// compiledPlan is one fully compiled query: the rewritten SPARQL AST
// (needed for projection of the unit solution), the translation
// result, and the parsed relational AST, ready for rel.DB.Exec. All
// fields are read-only after construction, so one compiledPlan may be
// executed by any number of concurrent queries.
type compiledPlan struct {
	key    string
	epoch  uint64
	parsed *sparql.Query
	tr     *translator.Result
	rq     *rel.Query // nil when tr.SQL is empty (empty-pattern query)
}

// planCache is a mutex-guarded LRU map from query text to compiled
// plan. It is a leaf lock: nothing is acquired while holding it, and
// it is taken by readers holding the store read lock.
//
// Accounting: every counter is mutated under mu, in the same critical
// section as the map/list change it describes, so a snapshot taken
// under mu is exactly consistent — the metrics registry re-exports
// these numbers and tests assert the conservation law
//
//	inserts == len(entries) + capEvictions + staleEvictions + resetDrops
//
// at any quiescent point. Every get is either a hit or a miss
// (hits + misses == gets); a stale entry found by get counts one miss
// and one staleEviction (the entry is dropped and will be recompiled),
// never a hit.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // element value: *compiledPlan

	hits           uint64
	misses         uint64
	inserts        uint64 // new keys added by put (replacements excluded)
	replacements   uint64 // put over an existing key
	capEvictions   uint64 // LRU drops beyond capacity
	staleEvictions uint64 // stale-epoch drops in get
	resetDrops     uint64 // entries dropped by reset
}

// planCacheStats is a consistent snapshot of the cache counters plus
// the current size.
type planCacheStats struct {
	Hits, Misses   uint64
	Inserts        uint64
	Replacements   uint64
	CapEvictions   uint64
	StaleEvictions uint64
	ResetDrops     uint64
	Size           int
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached plan for q if present and compiled at the
// given epoch; a stale entry is evicted and counted as a miss.
func (c *planCache) get(q string, epoch uint64) (*compiledPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[q]; ok {
		cp := el.Value.(*compiledPlan)
		if cp.epoch == epoch {
			c.order.MoveToFront(el)
			c.hits++
			return cp, true
		}
		c.order.Remove(el)
		delete(c.entries, q)
		c.staleEvictions++
	}
	c.misses++
	return nil, false
}

// put inserts (or replaces) the plan, evicting the least recently used
// entries beyond capacity.
func (c *planCache) put(cp *compiledPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[cp.key]; ok {
		el.Value = cp
		c.order.MoveToFront(el)
		c.replacements++
		return
	}
	c.entries[cp.key] = c.order.PushFront(cp)
	c.inserts++
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*compiledPlan).key)
		c.capEvictions++
	}
}

// contains reports whether q is cached and valid at epoch, without
// touching the hit/miss counters or the LRU order.
func (c *planCache) contains(q string, epoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[q]
	return ok && el.Value.(*compiledPlan).epoch == epoch
}

// reset drops every entry (counters are kept; the drops are recorded
// so the conservation law keeps holding).
func (c *planCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetDrops += uint64(c.order.Len())
	c.order.Init()
	c.entries = make(map[string]*list.Element)
}

// stats returns the lifetime hit and miss counts.
func (c *planCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// statsFull returns a consistent snapshot of all counters plus the
// current size, taken under the same lock the counters mutate under.
func (c *planCache) statsFull() planCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return planCacheStats{
		Hits: c.hits, Misses: c.misses,
		Inserts: c.inserts, Replacements: c.replacements,
		CapEvictions: c.capEvictions, StaleEvictions: c.staleEvictions,
		ResetDrops: c.resetDrops,
		Size:       len(c.entries),
	}
}
