package db2rdf

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"db2rdf/internal/rdf"
	"db2rdf/internal/wal"
)

// Durability fault-injection tests. The invariant under test (see
// DESIGN.md §9): whatever happens to the data directory — clean close,
// process kill, torn tail write, byte-level corruption of WAL or
// snapshot files — Open must succeed (or fail with a clean error for
// genuine configuration mismatch) and yield the byte-identical
// canonical Export of SOME previously published epoch: never a partial
// epoch, never a panic.

func durOpen(t *testing.T, dir string, every int) *Store {
	t.Helper()
	s, err := Open(Options{K: 2, DataDir: dir, SnapshotEvery: every})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

func exportStr(t *testing.T, s *Store) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.String()
}

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

// durTriples builds a dataset that exercises every storage shape under
// K=2: spills (entities with more predicates than columns), DS/RS
// multi-value lists (repeated subject+predicate), literals with
// language tags and datatypes, and blank nodes.
func durTriples(n int) []rdf.Triple {
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		s := iri(fmt.Sprintf("s%d", i%7))
		ts = append(ts,
			rdf.NewTriple(s, iri(fmt.Sprintf("p%d", i%5)), rdf.NewInteger(int64(i))),
			rdf.NewTriple(s, iri("name"), rdf.NewLangLiteral(fmt.Sprintf("näme %d", i), "de")),
			rdf.NewTriple(iri(fmt.Sprintf("o%d", i)), iri("ref"), rdf.NewBlank(fmt.Sprintf("b%d", i%3))),
			rdf.NewTriple(s, iri("multi"), rdf.NewTypedLiteral(fmt.Sprintf("%d.5", i), "http://www.w3.org/2001/XMLSchema#decimal")),
		)
	}
	return ts
}

// TestDurableCloseReopen round-trips the store through snapshot files:
// close writes a final snapshot, reopen must restore the identical
// Export and stay fully writable across several generations.
func TestDurableCloseReopen(t *testing.T) {
	dir := t.TempDir()
	s := durOpen(t, dir, 0)
	if err := s.LoadTriples(durTriples(40)); err != nil {
		t.Fatal(err)
	}
	want := exportStr(t, s)
	if want == "" {
		t.Fatal("empty export")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2 := durOpen(t, dir, 0)
	if got := exportStr(t, s2); got != want {
		t.Fatalf("snapshot reopen export differs:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	// The reopened store must remain fully functional: query, insert,
	// delete, update.
	res, err := s2.Query(`SELECT ?o WHERE { <http://ex/s1> <http://ex/p1> ?o }`)
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("query after reopen: %v (%d rows)", err, len(res.Rows))
	}
	if err := s2.Insert(rdf.NewTriple(iri("new"), iri("p"), rdf.NewLiteral("v"))); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Delete(rdf.NewTriple(iri("s1"), iri("name"), rdf.NewLangLiteral("näme 1", "de"))); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Update(`INSERT DATA { <http://ex/u> <http://ex/p> "upd" }`); err != nil {
		t.Fatal(err)
	}
	want2 := exportStr(t, s2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := durOpen(t, dir, 0)
	defer s3.Close()
	if got := exportStr(t, s3); got != want2 {
		t.Fatal("second-generation reopen export differs")
	}
}

// TestWALOnlyCrashReopen simulates a process crash (no Close, so no
// snapshot file exists): recovery must rebuild the exact published
// state purely by replaying the WAL through the insert/delete
// machinery, across every write entry point.
func TestWALOnlyCrashReopen(t *testing.T) {
	dir := t.TempDir()
	s := durOpen(t, dir, 0)
	if err := s.LoadTriples(durTriples(25)); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriplesParallel(durTriples(40)[60:], 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(rdf.NewTriple(iri("x"), iri("y"), rdf.NewInteger(-7))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(rdf.NewTriple(iri("s2"), iri("p2"), rdf.NewInteger(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(`DELETE DATA { <http://ex/x> <http://ex/y> "-7"^^<http://www.w3.org/2001/XMLSchema#integer> } ; INSERT DATA { <http://ex/x> <http://ex/y> "z" }`); err != nil {
		t.Fatal(err)
	}
	want := exportStr(t, s)
	// No Close: the crash. Reopen reads the same directory.
	s2 := durOpen(t, dir, 0)
	defer s2.Close()
	if got := exportStr(t, s2); got != want {
		t.Fatalf("WAL-only recovery export differs (%d vs %d bytes)", len(got), len(want))
	}
	if ds := s2.Internal().DurabilityStats(); ds.ReplayedRecords == 0 {
		t.Fatal("expected replayed WAL records, got 0")
	}
}

// TestKillPointRecovery truncates the WAL at every byte offset of the
// tail batch (and strided offsets before it): recovery must land
// exactly on the epoch whose commit marker survives — epoch k or k+1
// around the cut, with the Export byte-identical to what was published
// at that epoch.
func TestKillPointRecovery(t *testing.T) {
	dir := t.TempDir()
	s := durOpen(t, dir, 0)
	// One publish per Insert: pubExports[i] is the export after i
	// publishes (index 0 = the empty store).
	pubExports := []string{exportStr(t, s)}
	for i := 0; i < 6; i++ {
		sub := iri(fmt.Sprintf("k%d", i%2)) // shared subjects: exercise spills+lists in replay
		if err := s.Insert(rdf.NewTriple(sub, iri(fmt.Sprintf("kp%d", i)), rdf.NewInteger(int64(i)))); err != nil {
			t.Fatal(err)
		}
		pubExports = append(pubExports, exportStr(t, s))
	}
	// Crash: no Close. Grab the raw segment.
	segPath := filepath.Join(dir, wal.SegmentName(1))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	batches, valid, _ := wal.ReadSegment(data)
	if len(batches) != 6 || valid != int64(len(data)) {
		t.Fatalf("segment shape: %d batches, valid %d/%d", len(batches), valid, len(data))
	}
	tailStart := int64(0)
	if len(batches) > 1 {
		tailStart = batches[len(batches)-2].End
	}
	checkCut := func(cut int64) {
		// Surviving batch count = commit markers wholly before the cut.
		n := 0
		for _, b := range batches {
			if b.End <= cut {
				n++
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, wal.SegmentName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(Options{K: 2, DataDir: cdir})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		defer rs.Close()
		if got := exportStr(t, rs); got != pubExports[n] {
			t.Fatalf("cut=%d: recovered export is not the epoch-%d state", cut, n+1)
		}
	}
	for cut := tailStart; cut <= int64(len(data)); cut++ {
		checkCut(cut)
	}
	for cut := int64(0); cut < tailStart; cut += 11 {
		checkCut(cut)
	}
}

// TestBitFlipFaultInjection flips bytes across every file in a data
// directory holding two snapshot generations plus WAL: recovery must
// never panic and must always export some previously published epoch
// (the older snapshot + retained WAL suffix covers a corrupt newest
// snapshot).
func TestBitFlipFaultInjection(t *testing.T) {
	dir := t.TempDir()
	published := map[string]bool{}
	s := durOpen(t, dir, 0)
	published[exportStr(t, s)] = true
	for i := 0; i < 10; i++ {
		if err := s.Insert(rdf.NewTriple(iri(fmt.Sprintf("f%d", i%3)), iri(fmt.Sprintf("fp%d", i)), rdf.NewInteger(int64(i)))); err != nil {
			t.Fatal(err)
		}
		published[exportStr(t, s)] = true
	}
	if err := s.Close(); err != nil { // snapshot generation 1
		t.Fatal(err)
	}
	s = durOpen(t, dir, 0)
	for i := 10; i < 16; i++ {
		if err := s.Insert(rdf.NewTriple(iri(fmt.Sprintf("f%d", i%3)), iri(fmt.Sprintf("fp%d", i)), rdf.NewInteger(int64(i)))); err != nil {
			t.Fatal(err)
		}
		published[exportStr(t, s)] = true
	}
	if err := s.Close(); err != nil { // snapshot generation 2
		t.Fatal(err)
	}

	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".snap") {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("want 2 retained snapshots, have %d", snaps)
	}

	for _, f := range files {
		orig, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < len(orig); pos += 37 {
			fdir := t.TempDir()
			for _, g := range files { // copy the whole directory
				b, err := os.ReadFile(filepath.Join(dir, g.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if g.Name() == f.Name() {
					b = append([]byte(nil), b...)
					b[pos] ^= 0x55
				}
				if err := os.WriteFile(filepath.Join(fdir, g.Name()), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			rs, err := Open(Options{K: 2, DataDir: fdir})
			if err != nil {
				t.Fatalf("%s pos=%d: open after flip: %v", f.Name(), pos, err)
			}
			got := exportStr(t, rs)
			rs.Close()
			if !published[got] {
				t.Fatalf("%s pos=%d: recovered export matches no published epoch (%d bytes)", f.Name(), pos, len(got))
			}
		}
	}
}

// TestSnapshotReclaimsDeletedState is the delete-reclamation
// regression: a delete-heavy store must snapshot to a SMALLER file
// than its full predecessor, and both the live store (via publish-time
// marker recomputation, see snapshot.go) and a recovery round-trip
// must drop the stale spill/multi markers deletes leave behind, while
// preserving the exact Export.
func TestSnapshotReclaimsDeletedState(t *testing.T) {
	dir := t.TempDir()
	s := durOpen(t, dir, 0)
	ts := durTriples(120)
	if err := s.LoadTriples(ts); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fullSize := newestSnapSize(t, dir)

	s = durOpen(t, dir, 0)
	if !s.Internal().Snapshot().AnyMultiValued(false) {
		t.Fatal("fixture should have multi-valued predicates")
	}
	// Delete everything: the compacting publish recomputes the
	// spill/multi markers exactly, so the live store already agrees
	// with what the snapshot round-trip below reconstructs.
	if n, err := s.Internal().DeleteTriples(ts); err != nil || n == 0 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	want := exportStr(t, s)
	if n := s.Internal().SpillCount(false); n != 0 {
		t.Fatalf("live spill count not recomputed at compacting publish: %d", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	smallSize := newestSnapSize(t, dir)
	if smallSize >= fullSize {
		t.Fatalf("delete-heavy snapshot did not shrink: %d >= %d", smallSize, fullSize)
	}

	s = durOpen(t, dir, 0)
	defer s.Close()
	if got := exportStr(t, s); got != want {
		t.Fatal("post-delete recovery export differs")
	}
	sn := s.Internal().Snapshot()
	if sn.AnyMultiValued(false) || sn.AnyMultiValued(true) {
		t.Fatal("recovery kept stale multi-value markers for an empty store")
	}
	if sn.SpillCount(false) != 0 || sn.SpillCount(true) != 0 {
		t.Fatal("recovery kept stale spill counts for an empty store")
	}
}

// TestBackgroundSnapshotRotation drives enough publishes through a
// SnapshotEvery store to trigger background snapshots, WAL rotation
// and retention, then verifies recovery and the retention bound.
func TestBackgroundSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	s := durOpen(t, dir, 2)
	for i := 0; i < 40; i++ {
		if err := s.Insert(rdf.NewTriple(iri(fmt.Sprintf("r%d", i%4)), iri(fmt.Sprintf("rp%d", i)), rdf.NewInteger(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	want := exportStr(t, s)
	ds := s.Internal().DurabilityStats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if ds.WALAppends == 0 {
		t.Fatal("no WAL appends recorded")
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps, segs := 0, 0
	for _, f := range files {
		switch {
		case strings.HasSuffix(f.Name(), ".snap"):
			snaps++
		case strings.HasSuffix(f.Name(), ".log"):
			segs++
		}
	}
	if snaps == 0 || snaps > 2 {
		t.Fatalf("retention: %d snapshots on disk", snaps)
	}
	if segs == 0 {
		t.Fatal("no WAL segment on disk")
	}
	s2 := durOpen(t, dir, 2)
	defer s2.Close()
	if got := exportStr(t, s2); got != want {
		t.Fatal("rotated-store recovery export differs")
	}
}

// TestDurableConfigMismatch: reopening a data directory with different
// K must fail loudly instead of silently misreading the layout.
func TestDurableConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	s := durOpen(t, dir, 0)
	if err := s.Insert(rdf.NewTriple(iri("a"), iri("b"), iri("c"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{K: 4, DataDir: dir}); err == nil {
		t.Fatal("K mismatch not rejected")
	}
}

func newestSnapSize(t *testing.T, dir string) int64 {
	t.Helper()
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".snap") && f.Name() > name {
			name = f.Name()
		}
	}
	if name == "" {
		t.Fatal("no snapshot file")
	}
	st, err := os.Stat(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// FuzzWALReplay feeds arbitrary bytes to Open as a WAL segment: it
// must never panic, and the store (recovered from whatever committed
// prefix survives) must stay fully usable.
func FuzzWALReplay(f *testing.F) {
	var seed []byte
	for i, tr := range durTriples(2) {
		seed = wal.AppendRecord(seed, wal.Record{Op: wal.OpInsert, S: tr.S, P: tr.P, O: tr.O})
		seed = wal.AppendRecord(seed, wal.Record{Op: wal.OpCommit, Epoch: uint64(2 + i)})
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x04, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, wal.SegmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{K: 2, DataDir: dir})
		if err != nil {
			return // clean refusal is acceptable; panics are not
		}
		if err := s.Insert(rdf.NewTriple(iri("fz"), iri("p"), rdf.NewLiteral("v"))); err != nil {
			t.Fatalf("store unusable after fuzz recovery: %v", err)
		}
		if _, err := s.Query(`SELECT ?o WHERE { <http://ex/fz> <http://ex/p> ?o }`); err != nil {
			t.Fatalf("query after fuzz recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close after fuzz recovery: %v", err)
		}
	})
}
