package dict

import (
	"fmt"
	"testing"

	"db2rdf/internal/rdf"
)

// BenchmarkDictDecode compares id→term resolution through the
// front-coded block store against the pre-encoding layout (a published
// []rdf.Term indexed directly). The front-coded path pays two slices
// and at most one prefix+suffix concatenation per decode; the raw path
// is a bare slice read. The gap is the price of the ~3x resident-bytes
// saving measured by TestResidentBytesGate.
func BenchmarkDictDecode(b *testing.B) {
	const n = 100000
	d := New()
	ids := make([]int64, n)
	raw := make([]rdf.Term, n)
	for i := 0; i < n; i++ {
		t := rdf.NewIRI(fmt.Sprintf("http://example.org/university%d/department%d/person%d", i%50, i%20, i))
		ids[i] = d.Encode(t)
		raw[ids[i]-1] = t
	}
	b.Run("front_coded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if t := d.MustDecode(ids[i%n]); t.Kind != rdf.IRI {
				b.Fatalf("bad term %v", t)
			}
		}
	})
	b.Run("raw_slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if t := raw[ids[i%n]-1]; t.Kind != rdf.IRI {
				b.Fatalf("bad term %v", t)
			}
		}
	})
}
