package dict

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"db2rdf/internal/rdf"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := New()
	terms := []rdf.Term{
		rdf.NewIRI("http://a"),
		rdf.NewLiteral("x"),
		rdf.NewLangLiteral("x", "en"),
		rdf.NewTypedLiteral("1", rdf.XSDInteger),
		rdf.NewBlank("b"),
	}
	ids := make([]int64, len(terms))
	for i, term := range terms {
		ids[i] = d.Encode(term)
	}
	// Distinct terms get distinct ids.
	seen := map[int64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	for i, term := range terms {
		back, err := d.Decode(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if back != term {
			t.Fatalf("decode(%d) = %v, want %v", ids[i], back, term)
		}
	}
	if d.Len() != len(terms) {
		t.Fatalf("Len() = %d", d.Len())
	}
}

func TestEncodeIdempotent(t *testing.T) {
	d := New()
	a := d.Encode(rdf.NewIRI("x"))
	b := d.Encode(rdf.NewIRI("x"))
	if a != b {
		t.Fatalf("same term encoded twice: %d, %d", a, b)
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	d := New()
	if _, ok := d.Lookup(rdf.NewIRI("absent")); ok {
		t.Fatal("lookup of absent term must fail")
	}
	if d.Len() != 0 {
		t.Fatal("Lookup must not intern")
	}
	id := d.Encode(rdf.NewIRI("present"))
	got, ok := d.Lookup(rdf.NewIRI("present"))
	if !ok || got != id {
		t.Fatalf("lookup = %d, %v", got, ok)
	}
}

func TestDecodeErrors(t *testing.T) {
	d := New()
	d.Encode(rdf.NewIRI("x"))
	for _, id := range []int64{0, -1, 2, LidBase} {
		if _, err := d.Decode(id); err == nil {
			t.Errorf("Decode(%d) must error", id)
		}
	}
}

func TestLidsDisjointFromTermIDs(t *testing.T) {
	d := New()
	for i := 0; i < 1000; i++ {
		id := d.Encode(rdf.NewIRI(fmt.Sprintf("t%d", i)))
		if IsLid(id) {
			t.Fatalf("term id %d collides with lid space", id)
		}
	}
	l1, l2 := d.NextLid(), d.NextLid()
	if !IsLid(l1) || !IsLid(l2) || l1 == l2 {
		t.Fatalf("lids: %d, %d", l1, l2)
	}
}

func TestConcurrentEncode(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 200
	ids := make([][]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[g] = make([]int64, perG)
			for i := 0; i < perG; i++ {
				// Heavy overlap across goroutines.
				ids[g][i] = d.Encode(rdf.NewIRI(fmt.Sprintf("term%d", i%50)))
			}
		}()
	}
	wg.Wait()
	// The same term must have received the same id everywhere.
	for i := 0; i < perG; i++ {
		want := ids[0][i]
		for g := 1; g < goroutines; g++ {
			if ids[g][i] != want {
				t.Fatalf("goroutine %d got id %d for term %d, want %d", g, ids[g][i], i%50, want)
			}
		}
	}
	if d.Len() != 50 {
		t.Fatalf("Len() = %d, want 50", d.Len())
	}
}

func TestMustDecodePanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDecode must panic on unknown id")
		}
	}()
	New().MustDecode(99)
}

func TestEncodeDecodeProperty(t *testing.T) {
	d := New()
	f := func(s string) bool {
		term := rdf.NewLiteral(s)
		id := d.Encode(term)
		back, err := d.Decode(id)
		return err == nil && back == term && d.Encode(term) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
