// Package dict implements the dictionary encoding layer shared by every
// relational RDF schema in this repository. RDF terms are interned to
// dense int64 ids; the DB2RDF Direct/Reverse Secondary relations (DS/RS)
// additionally need list ids ("lid"s, the paper's lid:1, lid:2, ...)
// drawn from a disjoint id space so a val_i column can hold either a
// term id or a lid without ambiguity.
package dict

import (
	"fmt"
	"sync"
	"sync/atomic"

	"db2rdf/internal/rdf"
)

// LidBase is the first list id. Term ids grow upward from 1; lids grow
// upward from LidBase, so the two spaces never collide in practice
// (2^62 terms would be needed).
const LidBase int64 = 1 << 62

// IsLid reports whether id denotes a multi-value list id rather than a
// term id.
func IsLid(id int64) bool { return id >= LidBase }

// Dict interns RDF terms and hands out list ids. It is safe for
// concurrent use. The dictionary is append-only and versioned: every
// Encode that allocates a new id republishes the id→term slice header
// through an atomic pointer, so Decode — the hot call on every query's
// result materialization — resolves ids entirely lock-free even while
// a bulk load is interning thousands of new terms. A published header
// is len-capped by value, and ids are only handed out after the term
// lands in the slice, so a reader's header always covers every id any
// published store snapshot can contain.
type Dict struct {
	mu      sync.RWMutex
	byKey   map[string]int64
	byID    []rdf.Term // index i holds the term with id i+1
	nextLid int64

	pub atomic.Pointer[[]rdf.Term] // published byID header for lock-free Decode
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{byKey: make(map[string]int64), nextLid: LidBase}
}

// Encode interns t, returning its id (allocating one if new).
func (d *Dict) Encode(t rdf.Term) int64 {
	key := t.Key()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byKey[key]; ok {
		return id
	}
	d.byID = append(d.byID, t)
	id = int64(len(d.byID))
	d.byKey[key] = id
	// Republish the slice header. The element write above happens
	// before the atomic store, and readers load the pointer with
	// acquire semantics, so a reader that sees the new length also
	// sees the new term.
	hdr := d.byID
	d.pub.Store(&hdr)
	return id
}

// Lookup returns the id of t without interning, and whether it exists.
func (d *Dict) Lookup(t rdf.Term) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byKey[t.Key()]
	return id, ok
}

// Decode returns the term for a term id. Lock-free: it reads the
// atomically published slice header. An id allocated after the last
// publish this reader observed cannot appear in any data the reader
// sees (ids are interned before rows referencing them are written and
// published), so a miss here is a genuinely unknown id — but fall back
// to the locked slice to keep the error path exact under races.
func (d *Dict) Decode(id int64) (rdf.Term, error) {
	if p := d.pub.Load(); p != nil {
		if byID := *p; id >= 1 && id <= int64(len(byID)) {
			return byID[id-1], nil
		}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 1 || id > int64(len(d.byID)) {
		return rdf.Term{}, fmt.Errorf("dict: unknown term id %d", id)
	}
	return d.byID[id-1], nil
}

// MustDecode is Decode for callers that already validated the id.
func (d *Dict) MustDecode(id int64) rdf.Term {
	t, err := d.Decode(id)
	if err != nil {
		panic(err)
	}
	return t
}

// NextLid allocates a fresh list id.
func (d *Dict) NextLid() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	lid := d.nextLid
	d.nextLid++
	return lid
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// SnapshotState returns a copy of the interned term slice (index i
// holds the term with id i+1) and the next list id, for durability
// snapshots. Because the dictionary is append-only, a copy taken at or
// after a store snapshot's publish covers every id that snapshot's
// relations can reference; any extra trailing terms are merely unused.
func (d *Dict) SnapshotState() ([]rdf.Term, int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	terms := make([]rdf.Term, len(d.byID))
	copy(terms, d.byID)
	return terms, d.nextLid
}

// Restore replaces the dictionary contents wholesale (crash recovery).
// Term i of the slice receives id i+1, exactly as the original
// interning order assigned. Duplicate term keys or an out-of-range
// nextLid indicate a corrupt snapshot and are rejected; on error the
// dictionary is reset to empty.
func (d *Dict) Restore(terms []rdf.Term, nextLid int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	reset := func() {
		d.byKey = make(map[string]int64)
		d.byID = nil
		d.nextLid = LidBase
		d.pub.Store(nil)
	}
	if nextLid < LidBase {
		reset()
		return fmt.Errorf("dict: restore: next lid %d below lid base", nextLid)
	}
	byKey := make(map[string]int64, len(terms))
	for i, t := range terms {
		key := t.Key()
		if _, dup := byKey[key]; dup {
			reset()
			return fmt.Errorf("dict: restore: duplicate term key %q", key)
		}
		byKey[key] = int64(i + 1)
	}
	d.byKey = byKey
	d.byID = terms
	d.nextLid = nextLid
	hdr := d.byID
	d.pub.Store(&hdr)
	return nil
}
