// Package dict implements the dictionary encoding layer shared by every
// relational RDF schema in this repository. RDF terms are interned to
// dense int64 ids; the DB2RDF Direct/Reverse Secondary relations (DS/RS)
// additionally need list ids ("lid"s, the paper's lid:1, lid:2, ...)
// drawn from a disjoint id space so a val_i column can hold either a
// term id or a lid without ambiguity.
//
// The id→term direction is stored front-coded: interned term keys
// (Term.Key canonical strings) are grouped into blocks of fcBlockSize,
// every key after a block's first is stored as (shared-prefix length
// with the block head, suffix), and the suffixes of a block live in one
// contiguous string. Term keys — IRIs above all — share long prefixes,
// so this cuts the resident id→term bytes severalfold while decoding a
// key stays two slices and at most one concatenation. Decode parses the
// rebuilt key with rdf.TermFromKey, whose Terms alias the key's backing
// bytes, so no per-field copies are made either.
package dict

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"db2rdf/internal/rdf"
)

// LidBase is the first list id. Term ids grow upward from 1; lids grow
// upward from LidBase, so the two spaces never collide in practice
// (2^62 terms would be needed).
const LidBase int64 = 1 << 62

// IsLid reports whether id denotes a multi-value list id rather than a
// term id.
func IsLid(id int64) bool { return id >= LidBase }

// fcBlockSize is the number of keys per front-coded block. 16 keeps the
// per-block fixed cost (two string headers plus two offset arrays)
// around ten bytes per term while the head key a decode may copy a
// prefix from stays nearby.
const fcBlockSize = 16

// fcBlock is one sealed front-coded block of fcBlockSize term keys.
// Entry 0 is head, stored whole; entry j>0 is head[:lcp[j-1]] followed
// by the blob slice ending at end[j-1] (and starting at the previous
// entry's end). Blocks are immutable once built.
type fcBlock struct {
	head string
	blob string
	lcp  [fcBlockSize - 1]uint32
	end  [fcBlockSize - 1]uint32
}

// key returns block entry j (0 ≤ j < fcBlockSize).
func (b *fcBlock) key(j int) string {
	if j == 0 {
		return b.head
	}
	var start uint32
	if j > 1 {
		start = b.end[j-2]
	}
	suffix := b.blob[start:b.end[j-1]]
	l := b.lcp[j-1]
	if l == 0 {
		return suffix
	}
	return b.head[:l] + suffix
}

// fcStore is an immutable published view of the interned terms: the
// sealed blocks plus the raw keys that have not filled a block yet.
// Decode reads one of these lock-free via the atomic pointer.
type fcStore struct {
	blocks []fcBlock
	tail   []string
	n      int
}

func (st *fcStore) keyAt(i int) string {
	if bi := i / fcBlockSize; bi < len(st.blocks) {
		return st.blocks[bi].key(i % fcBlockSize)
	}
	return st.tail[i-len(st.blocks)*fcBlockSize]
}

// Dict interns RDF terms and hands out list ids. It is safe for
// concurrent use. The dictionary is append-only and versioned: every
// Encode that allocates a new id republishes the front-coded store
// through an atomic pointer, so Decode — the hot call on every query's
// result materialization — resolves ids entirely lock-free even while
// a bulk load is interning thousands of new terms. A published store
// is immutable by construction (the blocks slice is len-capped, the
// tail freshly copied), and ids are only handed out after the key
// lands in the store, so a reader's store always covers every id any
// published store snapshot can contain.
type Dict struct {
	mu      sync.RWMutex
	byKey   map[string]int64
	blocks  []fcBlock // sealed blocks; len-capped at every publish
	pend    []string  // keys of the partially filled last block
	n       int       // total interned terms
	nextLid int64
	rawLen  int64 // what the raw []rdf.Term layout would hold in string bytes

	pub atomic.Pointer[fcStore] // published store for lock-free Decode
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{byKey: make(map[string]int64), nextLid: LidBase}
}

func lcpLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// sealBlock front-codes fcBlockSize keys into an immutable block.
func sealBlock(keys []string) fcBlock {
	var b fcBlock
	b.head = keys[0]
	var blob []byte
	for j := 1; j < fcBlockSize; j++ {
		l := lcpLen(b.head, keys[j])
		blob = append(blob, keys[j][l:]...)
		b.lcp[j-1] = uint32(l)
		b.end[j-1] = uint32(len(blob))
	}
	b.blob = string(blob)
	return b
}

// appendLocked adds key as the next id. Caller holds the write lock,
// has checked the key is new, and republishes afterwards.
func (d *Dict) appendLocked(key string) int64 {
	d.pend = append(d.pend, key)
	if len(d.pend) == fcBlockSize {
		d.blocks = append(d.blocks, sealBlock(d.pend))
		d.pend = d.pend[:0]
	}
	d.n++
	id := int64(d.n)
	d.byKey[key] = id
	return id
}

// publishLocked republishes the lock-free store. The published blocks
// header is len-capped by value, so readers can never index past it
// even though the writer keeps appending sealed blocks to the shared
// backing array; the tail is a fresh copy because the writer reuses
// its backing in place. Readers load the pointer with acquire
// semantics, so a reader that sees the new n also sees every key that
// backs it.
func (d *Dict) publishLocked() {
	d.pub.Store(&fcStore{
		blocks: d.blocks[:len(d.blocks):len(d.blocks)],
		tail:   append([]string(nil), d.pend...),
		n:      d.n,
	})
}

// Encode interns t, returning its id (allocating one if new).
func (d *Dict) Encode(t rdf.Term) int64 {
	key := t.Key()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byKey[key]; ok {
		return id
	}
	d.rawLen += int64(len(t.Value) + len(t.Datatype) + len(t.Lang))
	id = d.appendLocked(key)
	d.publishLocked()
	return id
}

// Lookup returns the id of t without interning, and whether it exists.
func (d *Dict) Lookup(t rdf.Term) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byKey[t.Key()]
	return id, ok
}

// termFromStoredKey reparses a stored term key. The keys were produced
// by Term.Key, so reparsing cannot fail; an error here means the store
// itself is corrupt.
func termFromStoredKey(key string) rdf.Term {
	t, err := rdf.TermFromKey(key)
	if err != nil {
		panic(fmt.Sprintf("dict: corrupt stored key: %v", err))
	}
	return t
}

// Decode returns the term for a term id. Lock-free: it reads the
// atomically published store. An id allocated after the last publish
// this reader observed cannot appear in any data the reader sees (ids
// are interned before rows referencing them are written and
// published), so a miss here is a genuinely unknown id — but fall back
// to the locked state to keep the error path exact under races.
func (d *Dict) Decode(id int64) (rdf.Term, error) {
	if st := d.pub.Load(); st != nil && id >= 1 && id <= int64(st.n) {
		return termFromStoredKey(st.keyAt(int(id - 1))), nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 1 || id > int64(d.n) {
		return rdf.Term{}, fmt.Errorf("dict: unknown term id %d", id)
	}
	i := int(id - 1)
	if bi := i / fcBlockSize; bi < len(d.blocks) {
		return termFromStoredKey(d.blocks[bi].key(i % fcBlockSize)), nil
	}
	return termFromStoredKey(d.pend[i-len(d.blocks)*fcBlockSize]), nil
}

// MustDecode is Decode for callers that already validated the id.
func (d *Dict) MustDecode(id int64) rdf.Term {
	t, err := d.Decode(id)
	if err != nil {
		panic(err)
	}
	return t
}

// NextLid allocates a fresh list id.
func (d *Dict) NextLid() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	lid := d.nextLid
	d.nextLid++
	return lid
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.n
}

// ResidentBytes reports the in-process footprint of the id→term store:
// block fixed costs, head and suffix-blob contents, and the raw tail
// keys. The byKey map is excluded — it is identical across encodings
// (dict_resident_bytes measures the storage the front coding changes).
func (d *Dict) ResidentBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	const sliceHeader = 24
	const stringHeader = 16
	total := int64(2 * sliceHeader)
	blockFixed := int64(unsafe.Sizeof(fcBlock{}))
	for i := range d.blocks {
		total += blockFixed + int64(len(d.blocks[i].head)+len(d.blocks[i].blob))
	}
	total += int64(cap(d.pend)) * stringHeader
	for _, k := range d.pend {
		total += int64(len(k))
	}
	return total
}

// RawBytes reports what the pre-encoding layout (a plain []rdf.Term)
// would occupy for the same contents: one Term struct per id plus its
// string bytes. This is the baseline dict_resident_bytes is gated
// against.
func (d *Dict) RawBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(d.n)*int64(unsafe.Sizeof(rdf.Term{})) + d.rawLen
}

// SnapshotState returns a copy of the interned term slice (index i
// holds the term with id i+1) and the next list id, for durability
// snapshots. Because the dictionary is append-only, a copy taken at or
// after a store snapshot's publish covers every id that snapshot's
// relations can reference; any extra trailing terms are merely unused.
func (d *Dict) SnapshotState() ([]rdf.Term, int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	terms := make([]rdf.Term, 0, d.n)
	for i := range d.blocks {
		for j := 0; j < fcBlockSize; j++ {
			terms = append(terms, termFromStoredKey(d.blocks[i].key(j)))
		}
	}
	for _, k := range d.pend {
		terms = append(terms, termFromStoredKey(k))
	}
	return terms, d.nextLid
}

// Restore replaces the dictionary contents wholesale (crash recovery).
// Term i of the slice receives id i+1, exactly as the original
// interning order assigned. Duplicate term keys or an out-of-range
// nextLid indicate a corrupt snapshot and are rejected; on error the
// dictionary is reset to empty.
func (d *Dict) Restore(terms []rdf.Term, nextLid int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	reset := func() {
		d.byKey = make(map[string]int64)
		d.blocks = nil
		d.pend = nil
		d.n = 0
		d.rawLen = 0
		d.nextLid = LidBase
		d.pub.Store(nil)
	}
	reset()
	if nextLid < LidBase {
		return fmt.Errorf("dict: restore: next lid %d below lid base", nextLid)
	}
	d.byKey = make(map[string]int64, len(terms))
	for _, t := range terms {
		key := t.Key()
		if _, dup := d.byKey[key]; dup {
			reset()
			return fmt.Errorf("dict: restore: duplicate term key %q", key)
		}
		d.rawLen += int64(len(t.Value) + len(t.Datatype) + len(t.Lang))
		d.appendLocked(key)
	}
	d.nextLid = nextLid
	if d.n > 0 {
		d.publishLocked()
	}
	return nil
}
