// Package baselines implements the two relational RDF schemas the
// paper compares DB2RDF against (§2, §4): the classic three-column
// triple-store (Jena SDB / Virtuoso style) and the predicate-oriented
// vertical partitioning of Abadi et al. (one binary relation per
// predicate, C-Store/SW-Store style). Both run over the same embedded
// relational engine and reuse the shared SPARQL parser, optimizer and
// translation framework, so measured differences isolate the schema
// and plan quality — exactly the axes the paper's Figures 3 and 15-18
// vary.
package baselines

import (
	"fmt"
	"io"

	"db2rdf/internal/dict"
	"db2rdf/internal/optimizer"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/sparql"
	"db2rdf/internal/store"
	"db2rdf/internal/translator"
)

// TripleOptions configures a TripleStore.
type TripleOptions struct {
	// IndexSubject, IndexObject, IndexPredicate select the hash
	// indexes built on the TRIPLES relation. The paper's §2.1
	// micro-benchmark indexes subjects only; the full evaluation gives
	// comparators "all recommended indexes".
	IndexSubject   bool
	IndexObject    bool
	IndexPredicate bool
	// Naive disables the hybrid optimizer (document-order flow).
	Naive bool
}

// TripleStore is the single-relation baseline: TRIPLES(subj, pred, obj)
// with dictionary-encoded columns.
type TripleStore struct {
	DB    *rel.DB
	Dict  *dict.Dict
	table *rel.Table
	stats *store.Stats
	opts  TripleOptions
	seen  map[[3]int64]bool
}

// NewTripleStore creates an empty triple-store baseline.
func NewTripleStore(opts TripleOptions) (*TripleStore, error) {
	db := rel.NewDB()
	t, err := db.CreateTable("TRIPLES", rel.Schema{
		{Name: "subj", Type: rel.TInt},
		{Name: "pred", Type: rel.TInt},
		{Name: "obj", Type: rel.TInt},
	})
	if err != nil {
		return nil, err
	}
	if opts.IndexSubject {
		if err := t.CreateIndex("subj"); err != nil {
			return nil, err
		}
	}
	if opts.IndexObject {
		if err := t.CreateIndex("obj"); err != nil {
			return nil, err
		}
	}
	if opts.IndexPredicate {
		if err := t.CreateIndex("pred"); err != nil {
			return nil, err
		}
	}
	ts := &TripleStore{
		DB:    db,
		Dict:  dict.New(),
		table: t,
		stats: store.NewStats(1000),
		seen:  make(map[[3]int64]bool),
	}
	registerValueFuncs(db, ts.Dict)
	return ts, nil
}

// Insert adds one triple (set semantics).
func (s *TripleStore) Insert(t rdf.Triple) error {
	sid := s.Dict.Encode(t.S)
	pid := s.Dict.Encode(t.P)
	oid := s.Dict.Encode(t.O)
	key := [3]int64{sid, pid, oid}
	if s.seen[key] {
		return nil
	}
	s.seen[key] = true
	s.stats.Record(sid, pid, oid)
	return s.table.Insert(rel.Row{rel.Int(sid), rel.Int(pid), rel.Int(oid)})
}

// LoadTriples inserts a slice of triples.
func (s *TripleStore) LoadTriples(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := s.Insert(t); err != nil {
			return err
		}
	}
	return nil
}

// Load reads N-Triples from r.
func (s *TripleStore) Load(r io.Reader) (int, error) {
	rd := rdf.NewReader(r)
	n := 0
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := s.Insert(t); err != nil {
			return n, err
		}
		n++
	}
}

// Query runs a SPARQL query against the baseline.
func (s *TripleStore) Query(q string) (*Results, error) {
	return runQuery(q, s.DB, s.Dict, store.NewStatsView(s.stats, s.Dict), s, s.opts.Naive)
}

// SQLFor returns the generated SQL for a query (for tests and Fig. 2).
func (s *TripleStore) SQLFor(q string) (string, error) {
	return sqlFor(q, s.Dict, store.NewStatsView(s.stats, s.Dict), s, s.opts.Naive)
}

// LookupID implements translator.Backend.
func (s *TripleStore) LookupID(t rdf.Term) (int64, bool) { return s.Dict.Lookup(t) }

// EncodeID implements translator.Backend.
func (s *TripleStore) EncodeID(t rdf.Term) int64 { return s.Dict.Encode(t) }

// MergeSafe implements translator.Backend: the triple-store has no
// star rows, so merging never applies.
func (s *TripleStore) MergeSafe(translator.MethodT, ...*sparql.TriplePattern) bool { return false }

// Access implements translator.Backend: each triple pattern becomes a
// self-join against TRIPLES (the SQL of Figure 2(c)).
func (s *TripleStore) Access(g *translator.Gen, n *translator.PlanNode, in translator.Ctx) (translator.Ctx, error) {
	if len(n.Items) != 1 {
		return translator.Ctx{}, fmt.Errorf("baselines: triple-store plans never merge")
	}
	return translator.PositionalAccess(g, n.Items[0].Triple, in, "TRIPLES AS T", "T.subj", "T.pred", "T.obj")
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// Results mirrors the facade's decoded result shape for baselines.
type Results struct {
	Vars  []string
	Rows  [][]rdf.Term // zero Term means unbound
	Bound [][]bool
	Ask   bool
	IsAsk bool
}

// runQuery is the shared parse-optimize-plan-translate-execute-decode
// pipeline for baseline stores.
func runQuery(q string, db *rel.DB, d *dict.Dict, stats optimizer.Stats, backend translator.Backend, naive bool) (*Results, error) {
	parsed, err := sparql.Parse(q)
	if err != nil {
		return nil, err
	}
	sparql.UnifyEqualityFilters(parsed)
	tr, err := translate(parsed, stats, backend, naive)
	if err != nil {
		return nil, err
	}
	out := &Results{IsAsk: tr.Ask}
	if tr.SQL == "" {
		out.Ask = tr.Ask
		if !tr.Ask {
			out.Vars = parsed.ProjectedVars()
		}
		return out, nil
	}
	rs, err := db.Query(tr.SQL)
	if err != nil {
		return nil, fmt.Errorf("baselines: executing generated SQL: %w", err)
	}
	if tr.Ask {
		out.Ask = len(rs.Rows) > 0
		return out, nil
	}
	keep := len(tr.Columns) - tr.Hidden
	out.Vars = tr.Columns[:keep]
	for _, row := range rs.Rows {
		terms := make([]rdf.Term, keep)
		bound := make([]bool, keep)
		for i := 0; i < keep; i++ {
			if row[i].IsNull() {
				continue
			}
			t, err := d.Decode(row[i].I)
			if err != nil {
				return nil, err
			}
			terms[i] = t
			bound[i] = true
		}
		out.Rows = append(out.Rows, terms)
		out.Bound = append(out.Bound, bound)
	}
	return out, nil
}

func translate(parsed *sparql.Query, stats optimizer.Stats, backend translator.Backend, naive bool) (*translator.Result, error) {
	var exec *optimizer.ExecNode
	var err error
	if naive {
		exec, _ = optimizer.OptimizeNaive(parsed, stats)
	} else {
		exec, _, err = optimizer.Optimize(parsed, stats)
		if err != nil {
			return nil, err
		}
	}
	plan := translator.NewPlanner(backend).BuildPlan(exec)
	return translator.Translate(parsed, plan, backend)
}

func sqlFor(q string, d *dict.Dict, stats optimizer.Stats, backend translator.Backend, naive bool) (string, error) {
	parsed, err := sparql.Parse(q)
	if err != nil {
		return "", err
	}
	tr, err := translate(parsed, stats, backend, naive)
	if err != nil {
		return "", err
	}
	return tr.SQL, nil
}

// registerValueFuncs installs the same dictionary value functions the
// DB2RDF store registers, bound to the baseline's dictionary.
func registerValueFuncs(db *rel.DB, d *dict.Dict) {
	// Reuse the store implementation by constructing a lightweight
	// shim store is not possible (store owns its tables), so register
	// through a throwaway helper.
	store.RegisterValueFuncs(db, d)
}
