package baselines

import (
	"fmt"
	"io"
	"sort"

	"db2rdf/internal/dict"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/sparql"
	"db2rdf/internal/store"
	"db2rdf/internal/translator"
)

// VerticalOptions configures a VerticalStore.
type VerticalOptions struct {
	// Naive disables the hybrid optimizer.
	Naive bool
}

// VerticalStore is the predicate-oriented baseline (Abadi et al.): one
// binary relation COL_<n>(entry, val) per predicate, indexed on both
// columns. New predicates require new relations — the dynamic-schema
// weakness the paper calls out in §2.
type VerticalStore struct {
	DB    *rel.DB
	Dict  *dict.Dict
	stats *store.Stats
	opts  VerticalOptions
	// tableFor maps a predicate id to its relation name.
	tableFor map[int64]string
	seen     map[[3]int64]bool
}

// NewVerticalStore creates an empty predicate-oriented baseline.
func NewVerticalStore(opts VerticalOptions) (*VerticalStore, error) {
	db := rel.NewDB()
	vs := &VerticalStore{
		DB:       db,
		Dict:     dict.New(),
		stats:    store.NewStats(1000),
		opts:     opts,
		tableFor: make(map[int64]string),
		seen:     make(map[[3]int64]bool),
	}
	store.RegisterValueFuncs(db, vs.Dict)
	return vs, nil
}

// Insert adds one triple, creating the predicate's relation on first
// sight (the schema change the paper's §2 complains about).
func (s *VerticalStore) Insert(t rdf.Triple) error {
	sid := s.Dict.Encode(t.S)
	pid := s.Dict.Encode(t.P)
	oid := s.Dict.Encode(t.O)
	key := [3]int64{sid, pid, oid}
	if s.seen[key] {
		return nil
	}
	s.seen[key] = true
	name, ok := s.tableFor[pid]
	if !ok {
		name = fmt.Sprintf("COL_%d", pid)
		tbl, err := s.DB.CreateTable(name, rel.Schema{
			{Name: "entry", Type: rel.TInt},
			{Name: "val", Type: rel.TInt},
		})
		if err != nil {
			return err
		}
		if err := tbl.CreateIndex("entry"); err != nil {
			return err
		}
		if err := tbl.CreateIndex("val"); err != nil {
			return err
		}
		s.tableFor[pid] = name
	}
	s.stats.Record(sid, pid, oid)
	return s.DB.Table(name).Insert(rel.Row{rel.Int(sid), rel.Int(oid)})
}

// LoadTriples inserts a slice of triples.
func (s *VerticalStore) LoadTriples(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := s.Insert(t); err != nil {
			return err
		}
	}
	return nil
}

// Load reads N-Triples from r.
func (s *VerticalStore) Load(r io.Reader) (int, error) {
	rd := rdf.NewReader(r)
	n := 0
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := s.Insert(t); err != nil {
			return n, err
		}
		n++
	}
}

// TableCount returns the number of predicate relations (the paper's
// "thousands of relations" concern).
func (s *VerticalStore) TableCount() int { return len(s.tableFor) }

// Query runs a SPARQL query against the baseline.
func (s *VerticalStore) Query(q string) (*Results, error) {
	return runQuery(q, s.DB, s.Dict, store.NewStatsView(s.stats, s.Dict), s, s.opts.Naive)
}

// SQLFor returns the generated SQL for a query (Fig. 2(d)).
func (s *VerticalStore) SQLFor(q string) (string, error) {
	return sqlFor(q, s.Dict, store.NewStatsView(s.stats, s.Dict), s, s.opts.Naive)
}

// LookupID implements translator.Backend.
func (s *VerticalStore) LookupID(t rdf.Term) (int64, bool) { return s.Dict.Lookup(t) }

// EncodeID implements translator.Backend.
func (s *VerticalStore) EncodeID(t rdf.Term) int64 { return s.Dict.Encode(t) }

// MergeSafe implements translator.Backend: vertical partitions cannot
// answer stars with one access.
func (s *VerticalStore) MergeSafe(translator.MethodT, ...*sparql.TriplePattern) bool { return false }

// Access implements translator.Backend: a constant predicate accesses
// its own binary relation (Figure 2(d)); a variable predicate must
// union every relation in the store — the vertical layout's structural
// weakness.
func (s *VerticalStore) Access(g *translator.Gen, n *translator.PlanNode, in translator.Ctx) (translator.Ctx, error) {
	if len(n.Items) != 1 {
		return translator.Ctx{}, fmt.Errorf("baselines: vertical plans never merge")
	}
	t := n.Items[0].Triple
	if !t.P.IsVar {
		pid, ok := s.Dict.Lookup(t.P.Term)
		if !ok {
			// Unknown predicate: no relation exists; emit an empty
			// select over a never-matching condition against any
			// existing table, or a synthetic empty CTE.
			return s.emptyAccess(g, t, in)
		}
		from := fmt.Sprintf("%s AS T", s.tableFor[pid])
		return translator.PositionalAccess(g, t, in, from, "T.entry", "", "T.val")
	}
	// Variable predicate: UNION ALL over all predicate relations.
	return s.varPredAccess(g, t, in)
}

// emptyAccess emits a CTE with the right shape and zero rows.
func (s *VerticalStore) emptyAccess(g *translator.Gen, t *sparql.TriplePattern, in translator.Ctx) (translator.Ctx, error) {
	outVars := map[string]bool{}
	for v := range in.Vars {
		outVars[v] = true
	}
	var sel []string
	for _, v := range in.BoundVars() {
		c := g.ColFor(v)
		sel = append(sel, fmt.Sprintf("P.%s AS %s", c, c))
	}
	for _, tv := range []sparql.TermOrVar{t.S, t.P, t.O} {
		if tv.IsVar && !outVars[tv.Var] {
			sel = append(sel, fmt.Sprintf("NULL AS %s", g.ColFor(tv.Var)))
			outVars[tv.Var] = true
		}
	}
	if len(sel) == 0 {
		sel = []string{"1 AS one"}
	}
	from := "(SELECT 1 AS one FROM " + s.anyTable() + " AS Z WHERE 1 = 0) AS E"
	if in.Cte != "" {
		from = in.Cte + " AS P, " + from
	}
	body := fmt.Sprintf("SELECT %s FROM %s", joinStrings(sel, ", "), from)
	name := g.Emit(body)
	return translator.Ctx{Cte: name, Vars: outVars}, nil
}

// anyTable returns an arbitrary predicate relation name (for the
// empty-access shape); stores with no data get a dummy table.
func (s *VerticalStore) anyTable() string {
	names := make([]string, 0, len(s.tableFor))
	for _, n := range s.tableFor {
		names = append(names, n)
	}
	if len(names) == 0 {
		if s.DB.Table("COL_EMPTY") == nil {
			t, _ := s.DB.CreateTable("COL_EMPTY", rel.Schema{{Name: "entry", Type: rel.TInt}, {Name: "val", Type: rel.TInt}})
			_ = t
		}
		return "COL_EMPTY"
	}
	sort.Strings(names)
	return names[0]
}

// varPredAccess unions every predicate relation, exposing the
// predicate id as a constant per arm.
func (s *VerticalStore) varPredAccess(g *translator.Gen, t *sparql.TriplePattern, in translator.Ctx) (translator.Ctx, error) {
	if len(s.tableFor) == 0 {
		return s.emptyAccess(g, t, in)
	}
	outVars := map[string]bool{}
	for v := range in.Vars {
		outVars[v] = true
	}
	pids := make([]int64, 0, len(s.tableFor))
	for pid := range s.tableFor {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	predBound := in.Vars[t.P.Var]
	var arms []string
	for _, pid := range pids {
		sel := g.Carry(in, "P")
		var conds []string
		local := map[string]string{}
		handle := func(tv sparql.TermOrVar, col string) {
			switch {
			case !tv.IsVar:
				conds = append(conds, fmt.Sprintf("%s = %d", col, g.IDOf(tv.Term)))
			case in.Vars[tv.Var]:
				conds = append(conds, fmt.Sprintf("%s = P.%s", col, g.ColFor(tv.Var)))
			case local[tv.Var] != "":
				conds = append(conds, fmt.Sprintf("%s = %s", col, local[tv.Var]))
			default:
				local[tv.Var] = col
				sel = append(sel, fmt.Sprintf("%s AS %s", col, g.ColFor(tv.Var)))
			}
		}
		handle(t.S, "T.entry")
		handle(t.O, "T.val")
		switch {
		case predBound:
			conds = append(conds, fmt.Sprintf("%d = P.%s", pid, g.ColFor(t.P.Var)))
		case local[t.P.Var] != "":
			// The predicate variable repeats the subject or object
			// variable: an equality, not a second exposure.
			conds = append(conds, fmt.Sprintf("%d = %s", pid, local[t.P.Var]))
		default:
			sel = append(sel, fmt.Sprintf("%d AS %s", pid, g.ColFor(t.P.Var)))
		}
		from := fmt.Sprintf("%s AS T", s.tableFor[pid])
		if in.Cte != "" {
			from = fmt.Sprintf("%s AS P, %s", in.Cte, from)
		}
		if len(sel) == 0 {
			sel = []string{"1 AS one"}
		}
		arm := fmt.Sprintf("SELECT %s FROM %s", joinStrings(sel, ", "), from)
		if len(conds) > 0 {
			arm += " WHERE " + joinStrings(conds, " AND ")
		}
		arms = append(arms, arm)
	}
	name := g.Emit(joinStrings(arms, "\nUNION ALL\n"))
	for _, tv := range []sparql.TermOrVar{t.S, t.P, t.O} {
		if tv.IsVar {
			outVars[tv.Var] = true
		}
	}
	return translator.Ctx{Cte: name, Vars: outVars}, nil
}
