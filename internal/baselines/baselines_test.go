package baselines

import (
	"sort"
	"strings"
	"testing"

	"db2rdf/internal/rdf"
)

func sampleTriples() []rdf.Triple {
	iri := rdf.NewIRI
	lit := rdf.NewLiteral
	mk := func(s, p string, o rdf.Term) rdf.Triple {
		return rdf.NewTriple(iri(s), iri(p), o)
	}
	return []rdf.Triple{
		mk("Charles_Flint", "born", lit("1850")),
		mk("Charles_Flint", "died", lit("1934")),
		mk("Charles_Flint", "founder", iri("IBM")),
		mk("Larry_Page", "born", lit("1973")),
		mk("Larry_Page", "founder", iri("Google")),
		mk("Larry_Page", "board", iri("Google")),
		mk("Google", "industry", lit("Software")),
		mk("Google", "industry", lit("Internet")),
		mk("IBM", "industry", lit("Software")),
		mk("IBM", "employees", lit("433,362")),
	}
}

type queryable interface {
	Query(string) (*Results, error)
}

func col(t *testing.T, s queryable, q, v string) []string {
	t.Helper()
	rs, err := s.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	idx := -1
	for i, name := range rs.Vars {
		if name == v {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("var %s missing in %v", v, rs.Vars)
	}
	var out []string
	for r, row := range rs.Rows {
		if rs.Bound[r][idx] {
			out = append(out, row[idx].Value)
		} else {
			out = append(out, "")
		}
	}
	sort.Strings(out)
	return out
}

func newTriple(t *testing.T, opts TripleOptions) *TripleStore {
	t.Helper()
	s, err := NewTripleStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(sampleTriples()); err != nil {
		t.Fatal(err)
	}
	return s
}

func newVertical(t *testing.T, opts VerticalOptions) *VerticalStore {
	t.Helper()
	s, err := NewVerticalStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(sampleTriples()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTripleStoreBasic(t *testing.T) {
	s := newTriple(t, TripleOptions{IndexSubject: true, IndexObject: true})
	got := col(t, s, `SELECT ?x WHERE { ?x <industry> "Software" }`, "x")
	if strings.Join(got, ",") != "Google,IBM" {
		t.Fatalf("got %v", got)
	}
}

func TestTripleStoreStarSelfJoins(t *testing.T) {
	s := newTriple(t, TripleOptions{IndexSubject: true})
	sql, err := s.SQLFor(`SELECT ?x WHERE { ?x <born> ?b . ?x <founder> ?c . ?x <died> ?d }`)
	if err != nil {
		t.Fatal(err)
	}
	// The triple-store translation must access TRIPLES once per
	// pattern (the self-joins of Figure 2(c)).
	if n := strings.Count(sql, "TRIPLES"); n != 3 {
		t.Fatalf("want 3 TRIPLES accesses, got %d:\n%s", n, sql)
	}
	got := col(t, s, `SELECT ?x WHERE { ?x <born> ?b . ?x <founder> ?c . ?x <died> ?d }`, "x")
	if len(got) != 1 || got[0] != "Charles_Flint" {
		t.Fatalf("got %v", got)
	}
}

func TestTripleStoreUnionOptional(t *testing.T) {
	s := newTriple(t, TripleOptions{IndexSubject: true, IndexObject: true})
	got := col(t, s, `SELECT ?x WHERE { { ?x <founder> <Google> } UNION { ?x <board> <Google> } }`, "x")
	if len(got) != 2 {
		t.Fatalf("union results: %v", got)
	}
	rs, err := s.Query(`SELECT ?x ?e WHERE { ?x <industry> "Software" OPTIONAL { ?x <employees> ?e } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("optional rows: %d", len(rs.Rows))
	}
	boundCount := 0
	for i := range rs.Rows {
		if rs.Bound[i][1] {
			boundCount++
		}
	}
	if boundCount != 1 {
		t.Fatalf("exactly IBM has employees; bound=%d", boundCount)
	}
}

func TestTripleStoreVarPredicate(t *testing.T) {
	s := newTriple(t, TripleOptions{IndexSubject: true})
	got := col(t, s, `SELECT ?p WHERE { <Charles_Flint> ?p ?o }`, "p")
	if strings.Join(got, ",") != "born,died,founder" {
		t.Fatalf("got %v", got)
	}
}

func TestTripleStoreFilter(t *testing.T) {
	s := newTriple(t, TripleOptions{IndexSubject: true})
	got := col(t, s, `SELECT ?x WHERE { ?x <born> ?b . FILTER (?b < 1900) }`, "x")
	if len(got) != 1 || got[0] != "Charles_Flint" {
		t.Fatalf("got %v", got)
	}
}

func TestTripleStoreNaiveMode(t *testing.T) {
	s, err := NewTripleStore(TripleOptions{IndexSubject: true, Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(sampleTriples()); err != nil {
		t.Fatal(err)
	}
	got := col(t, s, `SELECT ?x WHERE { ?x <industry> "Software" . ?x <employees> ?e }`, "x")
	if len(got) != 1 || got[0] != "IBM" {
		t.Fatalf("got %v", got)
	}
}

func TestVerticalStoreBasic(t *testing.T) {
	s := newVertical(t, VerticalOptions{})
	got := col(t, s, `SELECT ?x WHERE { ?x <industry> "Software" }`, "x")
	if strings.Join(got, ",") != "Google,IBM" {
		t.Fatalf("got %v", got)
	}
	// One relation per predicate: born, died, founder, board,
	// industry, employees.
	if s.TableCount() != 6 {
		t.Fatalf("table count = %d, want 6", s.TableCount())
	}
}

func TestVerticalStoreStar(t *testing.T) {
	s := newVertical(t, VerticalOptions{})
	sql, err := s.SQLFor(`SELECT ?x WHERE { ?x <born> ?b . ?x <founder> ?c . ?x <died> ?d }`)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2(d): one COL_ relation per star member.
	if n := strings.Count(sql, "COL_"); n != 3 {
		t.Fatalf("want 3 COL_ accesses, got %d:\n%s", n, sql)
	}
	got := col(t, s, `SELECT ?x WHERE { ?x <born> ?b . ?x <founder> ?c . ?x <died> ?d }`, "x")
	if len(got) != 1 || got[0] != "Charles_Flint" {
		t.Fatalf("got %v", got)
	}
}

func TestVerticalStoreUnknownPredicate(t *testing.T) {
	s := newVertical(t, VerticalOptions{})
	rs, err := s.Query(`SELECT ?x WHERE { ?x <nosuchpred> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Fatalf("unknown predicate must yield empty result, got %v", rs.Rows)
	}
}

func TestVerticalStoreVarPredicateUnion(t *testing.T) {
	s := newVertical(t, VerticalOptions{})
	got := col(t, s, `SELECT ?p WHERE { <Charles_Flint> ?p ?o }`, "p")
	if strings.Join(got, ",") != "born,died,founder" {
		t.Fatalf("got %v", got)
	}
	sql, err := s.SQLFor(`SELECT ?p WHERE { <Charles_Flint> ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	// The structural weakness: a variable predicate unions every
	// predicate relation.
	if n := strings.Count(sql, "UNION ALL"); n != s.TableCount()-1 {
		t.Fatalf("want %d UNION ALL arms, got %d", s.TableCount()-1, n)
	}
}

func TestVerticalStoreOptional(t *testing.T) {
	s := newVertical(t, VerticalOptions{})
	rs, err := s.Query(`SELECT ?x ?e WHERE { ?x <industry> "Software" OPTIONAL { ?x <employees> ?e } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("optional rows: %d", len(rs.Rows))
	}
}

func TestBaselinesAgreeWithEachOther(t *testing.T) {
	queries := []string{
		`SELECT ?x WHERE { ?x <industry> "Software" }`,
		`SELECT ?x ?b WHERE { ?x <born> ?b }`,
		`SELECT ?x WHERE { { ?x <founder> <Google> } UNION { ?x <board> <Google> } }`,
		`SELECT ?x WHERE { ?x <born> ?b . ?x <founder> ?c }`,
		`ASK { <IBM> <industry> "Software" }`,
	}
	ts := newTriple(t, TripleOptions{IndexSubject: true, IndexObject: true})
	vs := newVertical(t, VerticalOptions{})
	for _, q := range queries {
		r1, err := ts.Query(q)
		if err != nil {
			t.Fatalf("triple %q: %v", q, err)
		}
		r2, err := vs.Query(q)
		if err != nil {
			t.Fatalf("vertical %q: %v", q, err)
		}
		if r1.IsAsk {
			if r1.Ask != r2.Ask {
				t.Errorf("ASK disagreement on %q", q)
			}
			continue
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Errorf("row count disagreement on %q: %d vs %d", q, len(r1.Rows), len(r2.Rows))
		}
	}
}

func TestTripleStoreDuplicateInsert(t *testing.T) {
	s, err := NewTripleStore(TripleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	for i := 0; i < 3; i++ {
		if err := s.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if s.table.Len() != 1 {
		t.Fatalf("want 1 row, got %d", s.table.Len())
	}
}

func TestVerticalStoreLoadNTriples(t *testing.T) {
	s, err := NewVerticalStore(VerticalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Load(strings.NewReader(`<a> <p> <b> .
<a> <q> "x" .
`))
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if s.TableCount() != 2 {
		t.Fatalf("tables = %d", s.TableCount())
	}
}

func TestRepeatedVariablePositions(t *testing.T) {
	// ?a ?a ?b and ?a ?p ?a: repeated variables across positions.
	ts := newTriple(t, TripleOptions{IndexSubject: true})
	vs := newVertical(t, VerticalOptions{})
	for _, q := range []string{
		`SELECT ?a ?b WHERE { ?a ?a ?b }`,
		`SELECT ?a ?p WHERE { ?a ?p ?a }`,
	} {
		r1, err := ts.Query(q)
		if err != nil {
			t.Fatalf("triple %q: %v", q, err)
		}
		r2, err := vs.Query(q)
		if err != nil {
			t.Fatalf("vertical %q: %v", q, err)
		}
		if len(r1.Rows) != 0 || len(r2.Rows) != 0 {
			t.Errorf("%q: no sample triple has repeated positions; got %d/%d rows", q, len(r1.Rows), len(r2.Rows))
		}
	}
}
