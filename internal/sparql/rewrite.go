package sparql

// UnifyEqualityFilters performs the classic filter-to-join rewrite:
// a top-level FILTER (?a = ?b) between two variables is replaced by
// substituting one variable for the other throughout the pattern, so
// the optimizer sees a shared variable (a join) instead of a
// cross-product followed by a selection. SP2Bench's Q5a/Q5b pair is
// designed to expose exactly this difference.
//
// The rewrite is deliberately conservative; it applies only when
//
//   - the filter sits on the root pattern (variables may not leak
//     across an enclosing scope we did not inspect),
//   - both variables are bound by required (non-OPTIONAL, non-UNION)
//     triples, so "unbound makes the filter false" semantics are
//     preserved by the substitution, and
//   - the variable being removed is neither projected nor used in
//     ORDER BY.
func UnifyEqualityFilters(q *Query) {
	root := q.Where
	if root == nil {
		return
	}
	protected := map[string]bool{}
	for _, v := range q.Vars {
		protected[v] = true
	}
	for _, k := range q.OrderBy {
		ExprVars(k.Expr, protected)
	}
	if q.Star {
		// SELECT * projects everything; removing a variable would
		// change the result shape.
		return
	}
	kept := root.Filters[:0]
	for _, f := range root.Filters {
		va, vb, ok := varEquality(f)
		if !ok {
			kept = append(kept, f)
			continue
		}
		// Decide which side to remove.
		var remove, keep string
		switch {
		case !protected[vb]:
			remove, keep = vb, va
		case !protected[va]:
			remove, keep = va, vb
		default:
			kept = append(kept, f)
			continue
		}
		if !boundByRequiredTriple(root, va) || !boundByRequiredTriple(root, vb) {
			kept = append(kept, f)
			continue
		}
		substituteVar(root, remove, keep)
		// Apply the substitution to the remaining filters as well.
		for _, g := range append(kept, root.Filters...) {
			substituteExprVar(g, remove, keep)
		}
	}
	root.Filters = kept
}

// varEquality recognizes FILTER (?a = ?b) over two distinct variables.
func varEquality(f Expr) (string, string, bool) {
	b, ok := f.(*EBin)
	if !ok || b.Op != "=" {
		return "", "", false
	}
	va, ok1 := b.L.(*EVar)
	vb, ok2 := b.R.(*EVar)
	if !ok1 || !ok2 || va.Name == vb.Name {
		return "", "", false
	}
	return va.Name, vb.Name, true
}

// boundByRequiredTriple reports whether v occurs in a triple reachable
// from p through conjunctive (AND/SIMPLE) patterns only.
func boundByRequiredTriple(p *Pattern, v string) bool {
	for _, t := range p.Triples {
		for _, tv := range t.Vars() {
			if tv == v {
				return true
			}
		}
	}
	if p.Kind == And || p.Kind == Simple {
		for _, c := range p.Children {
			if (c.Kind == And || c.Kind == Simple) && boundByRequiredTriple(c, v) {
				return true
			}
		}
	}
	return false
}

// substituteVar renames every occurrence of from to to in the pattern
// subtree (triples and filters).
func substituteVar(p *Pattern, from, to string) {
	p.Walk(func(q *Pattern) {
		for _, t := range q.Triples {
			if t.S.IsVar && t.S.Var == from {
				t.S.Var = to
			}
			if t.P.IsVar && t.P.Var == from {
				t.P.Var = to
			}
			if t.O.IsVar && t.O.Var == from {
				t.O.Var = to
			}
		}
		for _, f := range q.Filters {
			substituteExprVar(f, from, to)
		}
	})
}

// substituteExprVar renames variables inside a filter expression.
func substituteExprVar(e Expr, from, to string) {
	switch x := e.(type) {
	case *EVar:
		if x.Name == from {
			x.Name = to
		}
	case *EBin:
		substituteExprVar(x.L, from, to)
		substituteExprVar(x.R, from, to)
	case *EUn:
		substituteExprVar(x.X, from, to)
	case *ECall:
		for _, a := range x.Args {
			substituteExprVar(a, from, to)
		}
	}
}
