package sparql

import (
	"fmt"

	"db2rdf/internal/rdf"
)

// Property-path support (SPARQL 1.1, the paper's stated future work).
//
// Sequences (p1/p2), alternatives (p1|p2) and inverses (^p) are
// desugared at parse time into ordinary triple patterns, fresh
// variables and UNION patterns, so the whole optimizer/translator
// pipeline applies unchanged. Transitive closures (p+, p*, p?) cannot
// be expressed as a fixed pattern; the parser records them as Closure
// entries on the query, each standing behind a synthetic marker
// predicate that the engine materializes before translation.

type pathExpr interface{ pathNode() }

// pStep is a plain predicate: an IRI or (only at the top level of a
// verb) a variable.
type pStep struct{ tv TermOrVar }

// pInv is ^path.
type pInv struct{ x pathExpr }

// pSeq is path/path/...
type pSeq struct{ parts []pathExpr }

// pAlt is path|path|...
type pAlt struct{ arms []pathExpr }

// pRep is path with a repetition postfix: ? (0..1), * (0..∞), + (1..∞).
type pRep struct {
	x        pathExpr
	min, max int // max == -1 means unbounded
}

func (pStep) pathNode() {}
func (pInv) pathNode()  {}
func (pSeq) pathNode()  {}
func (pAlt) pathNode()  {}
func (pRep) pathNode()  {}

// verbPath parses the verb position: a variable, or a property path.
func (p *parser) verbPath() (pathExpr, error) {
	if p.peek().kind == tokVar {
		tv, err := p.varOrTerm()
		if err != nil {
			return nil, err
		}
		return pStep{tv: tv}, nil
	}
	return p.path()
}

// path := pathSeq ('|' pathSeq)*
func (p *parser) path() (pathExpr, error) {
	first, err := p.pathSeq()
	if err != nil {
		return nil, err
	}
	if !p.isPunct("|") {
		return first, nil
	}
	alt := pAlt{arms: []pathExpr{first}}
	for p.acceptPunct("|") {
		next, err := p.pathSeq()
		if err != nil {
			return nil, err
		}
		alt.arms = append(alt.arms, next)
	}
	return alt, nil
}

// pathSeq := pathEltOrInverse ('/' pathEltOrInverse)*
func (p *parser) pathSeq() (pathExpr, error) {
	first, err := p.pathEltOrInverse()
	if err != nil {
		return nil, err
	}
	if !p.isPunct("/") {
		return first, nil
	}
	seq := pSeq{parts: []pathExpr{first}}
	for p.acceptPunct("/") {
		next, err := p.pathEltOrInverse()
		if err != nil {
			return nil, err
		}
		seq.parts = append(seq.parts, next)
	}
	return seq, nil
}

func (p *parser) pathEltOrInverse() (pathExpr, error) {
	if p.acceptPunct("^") {
		x, err := p.pathElt()
		if err != nil {
			return nil, err
		}
		return pInv{x: x}, nil
	}
	return p.pathElt()
}

// pathElt := pathPrimary ('*'|'+'|'?')?
func (p *parser) pathElt() (pathExpr, error) {
	prim, err := p.pathPrimary()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptPunct("*"):
		return pRep{x: prim, min: 0, max: -1}, nil
	case p.acceptPunct("+"):
		return pRep{x: prim, min: 1, max: -1}, nil
	case p.acceptPunct("?"):
		return pRep{x: prim, min: 0, max: 1}, nil
	}
	return prim, nil
}

func (p *parser) pathPrimary() (pathExpr, error) {
	t := p.peek()
	switch t.kind {
	case tokA:
		p.pos++
		return pStep{tv: Constant(rdf.NewIRI(rdf.RDFType))}, nil
	case tokIRI:
		p.pos++
		return pStep{tv: Constant(rdf.NewIRI(t.text))}, nil
	case tokPName:
		p.pos++
		iri, err := p.expandPName(t.text)
		if err != nil {
			return nil, err
		}
		return pStep{tv: Constant(rdf.NewIRI(iri))}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			inner, err := p.path()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, p.errf("expected property path, got %q", t.text)
}

// freshVar returns a parser-generated variable for path desugaring.
func (p *parser) freshVar() TermOrVar {
	p.freshN++
	return Variable(fmt.Sprintf("_path%d", p.freshN))
}

// newTriple allocates a triple pattern with the next document-order id.
func (p *parser) newTriple(s, pred, o TermOrVar) *TriplePattern {
	p.nextTID++
	return &TriplePattern{ID: p.nextTID, S: s, P: pred, O: o}
}

// desugarPath lowers `s path o` into plain triples plus (for
// alternatives) UNION patterns; transitive closures become marker
// triples with a Closure record.
func (p *parser) desugarPath(s TermOrVar, x pathExpr, o TermOrVar) ([]*TriplePattern, []*Pattern, error) {
	switch e := x.(type) {
	case pStep:
		return []*TriplePattern{p.newTriple(s, e.tv, o)}, nil, nil
	case pInv:
		return p.desugarPath(o, e.x, s)
	case pSeq:
		var ts []*TriplePattern
		var pats []*Pattern
		cur := s
		for i, part := range e.parts {
			next := o
			if i < len(e.parts)-1 {
				next = p.freshVar()
			}
			nts, npats, err := p.desugarPath(cur, part, next)
			if err != nil {
				return nil, nil, err
			}
			ts = append(ts, nts...)
			pats = append(pats, npats...)
			cur = next
		}
		return ts, pats, nil
	case pAlt:
		or := &Pattern{Kind: Or}
		for _, arm := range e.arms {
			nts, npats, err := p.desugarPath(s, arm, o)
			if err != nil {
				return nil, nil, err
			}
			var armPat *Pattern
			switch {
			case len(npats) == 0:
				armPat = &Pattern{Kind: Simple, Triples: nts}
			case len(nts) == 0 && len(npats) == 1:
				armPat = npats[0]
			default:
				children := append([]*Pattern{{Kind: Simple, Triples: nts}}, npats...)
				armPat = &Pattern{Kind: And, Children: children}
			}
			or.Children = append(or.Children, armPat)
		}
		return nil, []*Pattern{or}, nil
	case pRep:
		steps, err := flattenSteps(e.x, false)
		if err != nil {
			return nil, nil, err
		}
		p.closureN++
		marker := fmt.Sprintf("urn:db2rdf:path#%d", p.closureN)
		p.closures = append(p.closures, Closure{Marker: marker, Steps: steps, Min: e.min, Max: e.max})
		return []*TriplePattern{p.newTriple(s, Constant(rdf.NewIRI(marker)), o)}, nil, nil
	}
	return nil, nil, p.errf("unsupported property path form %T", x)
}

// flattenSteps reduces a closure operand to a union of atomic edge
// steps; closures over sequences or nested repetitions are rejected
// (with a clear error) rather than approximated.
func flattenSteps(x pathExpr, inverse bool) ([]PathStep, error) {
	switch e := x.(type) {
	case pStep:
		if e.tv.IsVar {
			return nil, fmt.Errorf("sparql: variables are not allowed inside property paths")
		}
		return []PathStep{{IRI: e.tv.Term.Value, Inverse: inverse}}, nil
	case pInv:
		return flattenSteps(e.x, !inverse)
	case pAlt:
		var out []PathStep
		for _, arm := range e.arms {
			steps, err := flattenSteps(arm, inverse)
			if err != nil {
				return nil, err
			}
			out = append(out, steps...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("sparql: closure over this path form is not supported (use an IRI, ^IRI, or an alternative of those)")
}
