package sparql

import (
	"strings"
	"testing"

	"db2rdf/internal/rdf"
)

// fig6Query is the paper's running example (Fig. 6a): people that
// founded or are board members of companies in the software industry.
const fig6Query = `
SELECT ?x ?y ?z WHERE {
  ?x <home> "Palo Alto" .
  { ?x <founder> ?y } UNION { ?x <member> ?y }
  { ?y <industry> "Software" .
    ?z <developer> ?y .
    ?y <revenue> ?n .
    OPTIONAL { ?y <employees> ?m } }
}`

func parseOK(t *testing.T, q string) *Query {
	t.Helper()
	parsed, err := Parse(q)
	if err != nil {
		t.Fatalf("parse: %v\nquery: %s", err, q)
	}
	return parsed
}

func TestParseFig6Structure(t *testing.T) {
	q := parseOK(t, fig6Query)
	if q.Where.Kind != And {
		t.Fatalf("root should be AND, got %v", q.Where.Kind)
	}
	if len(q.Where.Children) != 3 {
		t.Fatalf("root AND should have 3 children, got %d: %s", len(q.Where.Children), q.Where.TreeString())
	}
	if q.Where.Children[1].Kind != Or {
		t.Fatalf("second child should be OR, got %v", q.Where.Children[1].Kind)
	}
	inner := q.Where.Children[2]
	if inner.Kind != And {
		t.Fatalf("third child should be AND group, got %v (%s)", inner.Kind, q.Where.TreeString())
	}
	triples := q.Where.AllTriples()
	if len(triples) != 7 {
		t.Fatalf("want 7 triple patterns, got %d", len(triples))
	}
	// IDs should be 1..7 in document order.
	for i, tp := range triples {
		if tp.ID != i+1 {
			t.Fatalf("triple %d has ID %d", i, tp.ID)
		}
	}
}

func TestLCAAndStructuralRelations(t *testing.T) {
	q := parseOK(t, fig6Query)
	ts := q.Where.AllTriples()
	t1, t2, t3, t4 := ts[0], ts[1], ts[2], ts[3]
	t6, t7 := ts[5], ts[6]

	if !OrConnected(t2, t3) {
		t.Error("t2 and t3 must be OR-connected (Def 3.6)")
	}
	if OrConnected(t1, t2) {
		t.Error("t1 and t2 must not be OR-connected")
	}
	if !OptionalGuarded(t6, t7) {
		t.Error("t7 must be OPTIONAL-guarded wrt t6 (Def 3.7)")
	}
	if OptionalGuarded(t7, t6) {
		t.Error("t6 must not be OPTIONAL-guarded wrt t7")
	}
	lca := TripleLCA(t2, t3)
	if lca == nil || lca.Kind != Or {
		t.Error("LCA(t2,t3) must be the OR node (Def 3.4)")
	}
	lca = TripleLCA(t1, t4)
	if lca == nil || lca.Kind != And {
		t.Error("LCA(t1,t4) must be the root AND")
	}
}

func TestMergeabilityDefinitions(t *testing.T) {
	q := parseOK(t, fig6Query)
	ts := q.Where.AllTriples()
	t2, t3, t4, t5, t6, t7 := ts[1], ts[2], ts[3], ts[4], ts[5], ts[6]

	if !ORMergeable(t2, t3) {
		t.Error("t2,t3 must be ORMergeable (Def 3.10)")
	}
	if ORMergeable(t2, t5) {
		t.Error("t2,t5 must not be ORMergeable")
	}
	if !ANDMergeable(t4, t5) {
		t.Error("t4,t5 must be ANDMergeable (Def 3.9)")
	}
	if ANDMergeable(t2, t4) {
		t.Error("t2,t4 must not be ANDMergeable (t2 under OR)")
	}
	if !OPTMergeable(t6, t7) {
		t.Error("t6,t7 must be OPTMergeable (Def 3.11)")
	}
	if OPTMergeable(t7, t6) {
		t.Error("OPTMergeable is ordered: (t7,t6) must fail")
	}
	if OPTMergeable(t4, t5) {
		t.Error("no OPTIONAL between t4,t5")
	}
}

func TestParsePrefixes(t *testing.T) {
	q := parseOK(t, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?p WHERE { ?p rdf:type foaf:Person . ?p foaf:name ?n }`)
	ts := q.Where.AllTriples()
	if len(ts) != 2 {
		t.Fatalf("want 2 triples, got %d", len(ts))
	}
	if ts[0].P.Term.Value != rdf.RDFType {
		t.Errorf("rdf:type not expanded: %v", ts[0].P.Term)
	}
	if ts[0].O.Term.Value != "http://xmlns.com/foaf/0.1/Person" {
		t.Errorf("foaf:Person not expanded: %v", ts[0].O.Term)
	}
}

func TestParseAKeyword(t *testing.T) {
	q := parseOK(t, `SELECT ?x WHERE { ?x a <http://example.org/C> }`)
	ts := q.Where.AllTriples()
	if ts[0].P.Term.Value != rdf.RDFType {
		t.Errorf("'a' must expand to rdf:type, got %v", ts[0].P.Term)
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	q := parseOK(t, `SELECT * WHERE { ?x <p> ?a ; <q> ?b , ?c . }`)
	ts := q.Where.AllTriples()
	if len(ts) != 3 {
		t.Fatalf("want 3 triples from ;/, lists, got %d", len(ts))
	}
	if !q.Star {
		t.Error("SELECT * must set Star")
	}
	vars := q.ProjectedVars()
	if len(vars) != 4 {
		t.Errorf("want 4 projected vars, got %v", vars)
	}
}

func TestParseLiterals(t *testing.T) {
	q := parseOK(t, `SELECT ?x WHERE {
		?x <p> "plain" .
		?x <q> "tagged"@en .
		?x <r> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
		?x <s> 42 .
		?x <t> 4.5 .
		?x <u> true .
	}`)
	ts := q.Where.AllTriples()
	if ts[0].O.Term.Value != "plain" || ts[0].O.Term.Kind != rdf.Literal {
		t.Errorf("plain literal: %v", ts[0].O.Term)
	}
	if ts[1].O.Term.Lang != "en" {
		t.Errorf("lang literal: %v", ts[1].O.Term)
	}
	if ts[2].O.Term.Datatype != rdf.XSDInteger {
		t.Errorf("typed literal: %v", ts[2].O.Term)
	}
	if ts[3].O.Term.Datatype != rdf.XSDInteger {
		t.Errorf("numeric shorthand: %v", ts[3].O.Term)
	}
	if ts[4].O.Term.Datatype != rdf.XSDDecimal {
		t.Errorf("decimal shorthand: %v", ts[4].O.Term)
	}
	if ts[5].O.Term.Datatype != rdf.XSDBoolean {
		t.Errorf("boolean shorthand: %v", ts[5].O.Term)
	}
}

func TestParseFilter(t *testing.T) {
	q := parseOK(t, `SELECT ?x WHERE { ?x <age> ?a . FILTER (?a >= 18 && ?a < 65) }`)
	fs := q.Where.AllFilters()
	if len(fs) != 1 {
		t.Fatalf("want 1 filter, got %d", len(fs))
	}
	b, ok := fs[0].(*EBin)
	if !ok || b.Op != "&&" {
		t.Fatalf("want && at top, got %#v", fs[0])
	}
	set := map[string]bool{}
	ExprVars(fs[0], set)
	if !set["a"] || len(set) != 1 {
		t.Errorf("filter vars = %v", set)
	}
}

func TestParseFilterBuiltins(t *testing.T) {
	q := parseOK(t, `SELECT ?x WHERE { ?x <name> ?n . OPTIONAL { ?x <nick> ?k } FILTER ( regex(?n, "smith") || bound(?k) ) }`)
	fs := q.Where.AllFilters()
	if len(fs) != 1 {
		t.Fatalf("want 1 filter, got %d", len(fs))
	}
	b := fs[0].(*EBin)
	l, ok := b.L.(*ECall)
	if !ok || l.Name != "regex" || len(l.Args) != 2 {
		t.Fatalf("regex call: %#v", b.L)
	}
	r, ok := b.R.(*ECall)
	if !ok || r.Name != "bound" {
		t.Fatalf("bound call: %#v", b.R)
	}
}

func TestParseOrderLimitOffset(t *testing.T) {
	q := parseOK(t, `SELECT ?x ?a WHERE { ?x <age> ?a } ORDER BY DESC(?a) ?x LIMIT 10 OFFSET 5`)
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("order keys: %+v", q.OrderBy)
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Fatalf("limit/offset: %d/%d", q.Limit, q.Offset)
	}
}

func TestParseAsk(t *testing.T) {
	q := parseOK(t, `ASK { <s> <p> <o> }`)
	if !q.Ask {
		t.Fatal("ASK not detected")
	}
	ts := q.Where.AllTriples()
	if len(ts) != 1 || ts[0].S.IsVar {
		t.Fatalf("bad ask triple: %+v", ts)
	}
}

func TestParseNestedUnions(t *testing.T) {
	q := parseOK(t, `SELECT ?x WHERE {
		{ ?x <a> <b> } UNION { ?x <c> <d> } UNION { ?x <e> <f> }
	}`)
	if q.Where.Kind != Or || len(q.Where.Children) != 3 {
		t.Fatalf("chained UNION should flatten to one OR with 3 arms: %s", q.Where.TreeString())
	}
}

func TestParseDistinct(t *testing.T) {
	q := parseOK(t, `SELECT DISTINCT ?x WHERE { ?x <p> ?y }`)
	if !q.Distinct {
		t.Fatal("DISTINCT not detected")
	}
}

func TestParseBlankNodeAsVariable(t *testing.T) {
	q := parseOK(t, `SELECT ?x WHERE { ?x <p> _:b . _:b <q> <v> }`)
	ts := q.Where.AllTriples()
	if !ts[0].O.IsVar || !ts[1].S.IsVar || ts[0].O.Var != ts[1].S.Var {
		t.Fatalf("blank node must act as a shared variable: %+v %+v", ts[0].O, ts[1].S)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT WHERE { ?x <p> ?y }",
		"SELECT ?x { ?x <p> }",
		"SELECT ?x WHERE { ?x <p> ?y ",
		"SELECT ?x WHERE { ?x foo:bar ?y }", // undeclared prefix
		"SELECT ?x WHERE { FILTER } ",
		"CONSTRUCT { ?x <p>/<q> ?y } WHERE { ?x <p> ?y }", // paths in template
		"DESCRIBE",
	}
	for _, qs := range bad {
		if _, err := Parse(qs); err == nil {
			t.Errorf("expected error for %q", qs)
		}
	}
}

func TestTreeString(t *testing.T) {
	q := parseOK(t, fig6Query)
	s := q.Where.TreeString()
	for _, want := range []string{"AND(", "OR(", "OPTIONAL("} {
		if !strings.Contains(s, want) {
			t.Errorf("tree %q missing %q", s, want)
		}
	}
}

func TestVarsHelpers(t *testing.T) {
	q := parseOK(t, fig6Query)
	vars := q.Where.Vars()
	want := []string{"m", "n", "x", "y", "z"}
	if len(vars) != len(want) {
		t.Fatalf("vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("vars = %v, want %v", vars, want)
		}
	}
	ts := q.Where.AllTriples()
	tv := ts[0].Vars()
	if len(tv) != 1 || tv[0] != "x" {
		t.Fatalf("t1 vars = %v", tv)
	}
}

func TestParseComments(t *testing.T) {
	q := parseOK(t, `# leading comment
SELECT ?x WHERE {
  ?x <p> ?y . # trailing comment
}`)
	if len(q.Where.AllTriples()) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestFilterComparisonLessThan(t *testing.T) {
	// '<' must lex as an operator inside FILTER, not an IRI opener.
	q := parseOK(t, `SELECT ?x WHERE { ?x <p> ?v . FILTER (?v < 10) }`)
	fs := q.Where.AllFilters()
	b, ok := fs[0].(*EBin)
	if !ok || b.Op != "<" {
		t.Fatalf("want < comparison, got %#v", fs[0])
	}
}

func TestUnifyEqualityFilters(t *testing.T) {
	q := parseOK(t, `SELECT ?a ?n WHERE { ?a <p> ?b . ?c <name> ?n . FILTER (?b = ?c) }`)
	UnifyEqualityFilters(q)
	if len(q.Where.AllFilters()) != 0 {
		t.Fatalf("filter should be unified away: %v", q.Where.AllFilters())
	}
	ts := q.Where.AllTriples()
	// ?c (or ?b) was substituted so the two triples now share a var.
	shared := false
	for _, v := range ts[0].Vars() {
		for _, w := range ts[1].Vars() {
			if v == w {
				shared = true
			}
		}
	}
	if !shared {
		t.Fatalf("triples should share a variable after unification: %v %v", ts[0], ts[1])
	}
}

func TestUnifySkipsProjectedPairs(t *testing.T) {
	q := parseOK(t, `SELECT ?b ?c WHERE { ?a <p> ?b . ?c <q> ?d . FILTER (?b = ?c) }`)
	UnifyEqualityFilters(q)
	if len(q.Where.AllFilters()) != 1 {
		t.Fatal("both sides projected: unification must not apply")
	}
}

func TestUnifySkipsOptionalBound(t *testing.T) {
	q := parseOK(t, `SELECT ?a WHERE { ?a <p> ?b OPTIONAL { ?a <q> ?c } FILTER (?b = ?c) }`)
	UnifyEqualityFilters(q)
	if len(q.Where.AllFilters()) != 1 {
		t.Fatal("optional-bound variable: unification must not apply")
	}
}

func TestUnifySkipsSelectStar(t *testing.T) {
	q := parseOK(t, `SELECT * WHERE { ?a <p> ?b . ?c <q> ?d . FILTER (?b = ?c) }`)
	UnifyEqualityFilters(q)
	if len(q.Where.AllFilters()) != 1 {
		t.Fatal("SELECT *: unification must not apply")
	}
}
