package sparql

import (
	"strings"

	"db2rdf/internal/rdf"
)

// SPARQL 1.1 Update grammar. An update request is a semicolon-separated
// sequence of operations, each optionally preceded by its own prologue:
//
//	INSERT DATA { ground triples }
//	DELETE DATA { ground triples }        (no blank nodes)
//	DELETE WHERE { pattern }              (pattern doubles as template)
//	DELETE { tmpl } INSERT { tmpl } WHERE { pattern }
//	DELETE { tmpl } WHERE { pattern }
//	INSERT { tmpl } WHERE { pattern }
//	CLEAR [SILENT] (DEFAULT | ALL)
//
// The store holds a single default graph, so GRAPH management clauses
// (WITH, USING, GRAPH blocks, CLEAR GRAPH/NAMED) are rejected rather
// than silently ignored.

// UpdateOpKind discriminates the operations of an update request.
type UpdateOpKind int

const (
	// OpInsertData inserts a ground triple set.
	OpInsertData UpdateOpKind = iota
	// OpDeleteData deletes a ground triple set.
	OpDeleteData
	// OpModify evaluates Where and, per solution, deletes the
	// instantiated DeleteTempl triples then inserts the InsertTempl
	// ones (SPARQL 1.1 Update §3.1.3: all deletes before all inserts).
	OpModify
	// OpClear removes every triple from the store.
	OpClear
)

func (k UpdateOpKind) String() string {
	switch k {
	case OpInsertData:
		return "INSERT DATA"
	case OpDeleteData:
		return "DELETE DATA"
	case OpModify:
		return "DELETE/INSERT"
	case OpClear:
		return "CLEAR"
	}
	return "?"
}

// UpdateOp is one operation of an update request.
type UpdateOp struct {
	Kind UpdateOpKind
	// Data holds the ground triples of INSERT DATA / DELETE DATA.
	Data []rdf.Triple
	// DeleteTempl and InsertTempl are the OpModify templates; either
	// may be empty (INSERT ... WHERE has no delete template and vice
	// versa). Variables are bound by Where; unbound instantiations are
	// skipped per the spec.
	DeleteTempl []*TriplePattern
	InsertTempl []*TriplePattern
	// Where is the OpModify pattern, nil for the other kinds.
	Where *Pattern
	// Closures are the property-path closures Where introduced.
	Closures []Closure
}

// Update is a parsed SPARQL update request.
type Update struct {
	Prefixes map[string]string
	Ops      []*UpdateOp
}

// ParseUpdate parses a SPARQL 1.1 update request string.
func ParseUpdate(in string) (*Update, error) {
	toks, err := lex(in)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	u := &Update{Prefixes: p.prefixes}
	for {
		if err := p.prologue(); err != nil {
			return nil, err
		}
		if p.peek().kind == tokEOF {
			break
		}
		op, err := p.updateOp()
		if err != nil {
			return nil, err
		}
		u.Ops = append(u.Ops, op)
		if !p.acceptPunct(";") && p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' or end of update, got %q", p.peek().text)
		}
	}
	if len(u.Ops) == 0 {
		return nil, p.errf("empty update request")
	}
	return u, nil
}

// updateOp parses one update operation.
func (p *parser) updateOp() (*UpdateOp, error) {
	switch {
	case p.acceptKeyword("INSERT"):
		if p.acceptKeyword("DATA") {
			data, err := p.groundTriples(true)
			if err != nil {
				return nil, err
			}
			return &UpdateOp{Kind: OpInsertData, Data: data}, nil
		}
		tmpl, err := p.tripleTemplate("update templates")
		if err != nil {
			return nil, err
		}
		op := &UpdateOp{Kind: OpModify, InsertTempl: tmpl}
		return op, p.modifyTail(op)
	case p.acceptKeyword("DELETE"):
		if p.acceptKeyword("DATA") {
			data, err := p.groundTriples(false)
			if err != nil {
				return nil, err
			}
			return &UpdateOp{Kind: OpDeleteData, Data: data}, nil
		}
		if p.isKeyword("WHERE") {
			// DELETE WHERE { pattern }: the pattern is the template.
			p.pos++
			op := &UpdateOp{Kind: OpModify}
			if err := p.wherePattern(op); err != nil {
				return nil, err
			}
			if op.Where.Kind != Simple || len(op.Where.Children) > 0 ||
				len(op.Where.Filters) > 0 || len(op.Closures) > 0 {
				return nil, p.errf("DELETE WHERE requires a plain triple-pattern group")
			}
			op.DeleteTempl = op.Where.Triples
			return op, checkNoBlank(p, op.DeleteTempl)
		}
		tmpl, err := p.tripleTemplate("update templates")
		if err != nil {
			return nil, err
		}
		if err := checkNoBlank(p, tmpl); err != nil {
			return nil, err
		}
		op := &UpdateOp{Kind: OpModify, DeleteTempl: tmpl}
		if p.acceptKeyword("INSERT") {
			ins, err := p.tripleTemplate("update templates")
			if err != nil {
				return nil, err
			}
			op.InsertTempl = ins
		}
		return op, p.modifyTail(op)
	case p.acceptKeyword("CLEAR"):
		p.acceptKeyword("SILENT")
		switch {
		case p.acceptKeyword("DEFAULT"), p.acceptKeyword("ALL"):
		case p.isKeyword("NAMED") || p.isKeyword("GRAPH"):
			return nil, p.errf("named graphs are not supported (single default graph)")
		default:
			return nil, p.errf("expected DEFAULT or ALL after CLEAR, got %q", p.peek().text)
		}
		return &UpdateOp{Kind: OpClear}, nil
	case p.isKeyword("WITH") || p.isKeyword("USING"):
		return nil, p.errf("named graphs are not supported (single default graph)")
	}
	return nil, p.errf("expected INSERT, DELETE or CLEAR, got %q", p.peek().text)
}

// modifyTail parses the WHERE clause of a DELETE/INSERT operation.
func (p *parser) modifyTail(op *UpdateOp) error {
	if !p.acceptKeyword("WHERE") {
		return p.errf("expected WHERE, got %q", p.peek().text)
	}
	return p.wherePattern(op)
}

// wherePattern parses a group graph pattern into op.Where, capturing
// the closures it introduced so the executor can materialize them for
// this operation only.
func (p *parser) wherePattern(op *UpdateOp) error {
	beforeClosures := len(p.closures)
	where, err := p.groupGraphPattern()
	if err != nil {
		return err
	}
	finalize(where, nil)
	op.Where = where
	op.Closures = p.closures[beforeClosures:]
	return nil
}

// groundTriples parses the braced triple block of INSERT DATA / DELETE
// DATA, requiring every position to be ground. Blank node labels are
// allowed only when allowBlank is set (INSERT DATA; DELETE DATA must
// be fully ground per the spec).
func (p *parser) groundTriples(allowBlank bool) ([]rdf.Triple, error) {
	tmpl, err := p.tripleTemplate("data blocks")
	if err != nil {
		return nil, err
	}
	out := make([]rdf.Triple, 0, len(tmpl))
	for _, tp := range tmpl {
		s, err := p.groundTerm(tp.S, allowBlank)
		if err != nil {
			return nil, err
		}
		o, err := p.groundTerm(tp.O, allowBlank)
		if err != nil {
			return nil, err
		}
		pr, err := p.groundTerm(tp.P, false)
		if err != nil {
			return nil, err
		}
		if pr.Kind != rdf.IRI {
			return nil, p.errf("predicate in data block must be an IRI, got %s", pr)
		}
		out = append(out, rdf.Triple{S: s, P: pr, O: o})
	}
	return out, nil
}

// groundTerm converts a template position to a ground term. Blank node
// labels (parsed as _bnode_-prefixed variables) become blank terms
// when allowed; any other variable is an error in a data block.
func (p *parser) groundTerm(tv TermOrVar, allowBlank bool) (rdf.Term, error) {
	if !tv.IsVar {
		return tv.Term, nil
	}
	if label, ok := strings.CutPrefix(tv.Var, "_bnode_"); ok {
		if allowBlank {
			return rdf.NewBlank(label), nil
		}
		return rdf.Term{}, p.errf("blank node _:%s not allowed in DELETE data", label)
	}
	return rdf.Term{}, p.errf("variable ?%s not allowed in a ground data block", tv.Var)
}

// checkNoBlank rejects blank node labels in DELETE templates (SPARQL
// 1.1 Update §3.1.3: blank nodes must not appear in a DeleteClause).
func checkNoBlank(p *parser, tmpl []*TriplePattern) error {
	for _, tp := range tmpl {
		for _, tv := range []TermOrVar{tp.S, tp.P, tp.O} {
			if tv.IsVar && strings.HasPrefix(tv.Var, "_bnode_") {
				return p.errf("blank nodes are not allowed in DELETE templates")
			}
		}
	}
	return nil
}
