package sparql

import (
	"fmt"
	"strings"

	"db2rdf/internal/rdf"
)

// Parse parses a SPARQL query string.
func Parse(in string) (*Query, error) {
	toks, err := lex(in)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	q.Closures = p.closures
	finalize(q.Where, nil)
	return q, nil
}

// finalize sets parent pointers throughout the pattern tree.
func finalize(p *Pattern, parent *Pattern) {
	p.Parent = parent
	for _, t := range p.Triples {
		t.Parent = p
	}
	for _, c := range p.Children {
		finalize(c, p)
	}
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
	nextTID  int
	freshN   int
	closureN int
	closures []Closure
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) isPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

// prologue consumes leading PREFIX declarations into p.prefixes. It is
// shared by the query and update grammars (an update may interleave
// prologues between operations).
func (p *parser) prologue() error {
	for p.acceptKeyword("PREFIX") {
		t := p.peek()
		if t.kind != tokPName || !strings.HasSuffix(t.text, ":") && !strings.Contains(t.text, ":") {
			return p.errf("expected prefixed name declaration, got %q", t.text)
		}
		p.pos++
		name := strings.TrimSuffix(t.text, ":")
		if i := strings.IndexByte(t.text, ':'); i >= 0 {
			name = t.text[:i]
		}
		iriTok := p.peek()
		if iriTok.kind != tokIRI {
			return p.errf("expected IRI after PREFIX %s:", name)
		}
		p.pos++
		p.prefixes[name] = iriTok.text
	}
	return nil
}

func (p *parser) query() (*Query, error) {
	q := &Query{Prefixes: p.prefixes, Limit: -1}
	if err := p.prologue(); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("SELECT"):
		if p.acceptKeyword("DISTINCT") {
			q.Distinct = true
		} else {
			p.acceptKeyword("REDUCED")
		}
		if p.acceptPunct("*") {
			q.Star = true
		} else {
			for p.peek().kind == tokVar {
				q.Vars = append(q.Vars, p.next().text)
			}
			if len(q.Vars) == 0 {
				return nil, p.errf("SELECT requires variables or *")
			}
		}
		p.acceptKeyword("WHERE")
		where, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		q.Where = where
		if err := p.solutionModifiers(q); err != nil {
			return nil, err
		}
	case p.acceptKeyword("ASK"):
		q.Ask = true
		where, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		q.Where = where
	case p.acceptKeyword("CONSTRUCT"):
		tmpl, err := p.constructTemplate()
		if err != nil {
			return nil, err
		}
		q.Construct = tmpl
		if !p.acceptKeyword("WHERE") {
			return nil, p.errf("CONSTRUCT requires WHERE")
		}
		where, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		q.Where = where
		q.Star = true // project every pattern variable for instantiation
		if err := p.solutionModifiers(q); err != nil {
			return nil, err
		}
	case p.acceptKeyword("DESCRIBE"):
		for {
			t := p.peek()
			if t.kind != tokIRI && t.kind != tokPName && t.kind != tokVar {
				break
			}
			tv, err := p.varOrTerm()
			if err != nil {
				return nil, err
			}
			q.Describe = append(q.Describe, tv)
		}
		if len(q.Describe) == 0 {
			return nil, p.errf("DESCRIBE requires at least one resource")
		}
		if p.acceptKeyword("WHERE") || p.isPunct("{") {
			where, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			q.Where = where
		} else {
			q.Where = &Pattern{Kind: Simple}
		}
		q.Star = true
	default:
		return nil, p.errf("expected SELECT, ASK, CONSTRUCT or DESCRIBE, got %q", p.peek().text)
	}
	return q, nil
}

// constructTemplate parses the CONSTRUCT template: a braced triples
// block (property paths are not allowed in templates).
func (p *parser) constructTemplate() ([]*TriplePattern, error) {
	return p.tripleTemplate("CONSTRUCT templates")
}

// tripleTemplate parses a braced triples block with no property paths;
// ctx names the construct for error messages ("CONSTRUCT templates",
// "update templates", ...).
func (p *parser) tripleTemplate(ctx string) ([]*TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []*TriplePattern
	for {
		if p.acceptPunct("}") {
			return out, nil
		}
		if p.acceptPunct(".") {
			continue
		}
		beforeClosures, beforeFresh := len(p.closures), p.freshN
		ts, pats, err := p.triplesSameSubject()
		if err != nil {
			return nil, err
		}
		if len(pats) > 0 || len(p.closures) != beforeClosures || p.freshN != beforeFresh {
			return nil, p.errf("property paths are not allowed in %s", ctx)
		}
		out = append(out, ts...)
	}
}

func (p *parser) solutionModifiers(q *Query) error {
	if p.acceptKeyword("ORDER") {
		if !p.acceptKeyword("BY") {
			return p.errf("expected BY after ORDER")
		}
		for {
			switch {
			case p.acceptKeyword("ASC"):
				e, err := p.brackettedExpr()
				if err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Expr: e})
			case p.acceptKeyword("DESC"):
				e, err := p.brackettedExpr()
				if err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Expr: e, Desc: true})
			case p.peek().kind == tokVar:
				q.OrderBy = append(q.OrderBy, OrderKey{Expr: &EVar{Name: p.next().text}})
			default:
				if len(q.OrderBy) == 0 {
					return p.errf("expected ORDER BY key")
				}
				goto done
			}
		}
	}
done:
	// LIMIT and OFFSET in either order.
	for {
		switch {
		case p.acceptKeyword("LIMIT"):
			t := p.peek()
			if t.kind != tokNumber {
				return p.errf("expected number after LIMIT")
			}
			p.pos++
			var n int64
			fmt.Sscanf(t.text, "%d", &n)
			q.Limit = n
		case p.acceptKeyword("OFFSET"):
			t := p.peek()
			if t.kind != tokNumber {
				return p.errf("expected number after OFFSET")
			}
			p.pos++
			var n int64
			fmt.Sscanf(t.text, "%d", &n)
			q.Offset = n
		default:
			return nil
		}
	}
}

func (p *parser) brackettedExpr() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return e, nil
}

// groupGraphPattern parses '{ ... }' into a pattern-tree node.
func (p *parser) groupGraphPattern() (*Pattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var elements []*Pattern
	var filters []Expr
	var run []*TriplePattern
	flushRun := func() {
		if len(run) > 0 {
			elements = append(elements, &Pattern{Kind: Simple, Triples: run})
			run = nil
		}
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokPunct && t.text == "}":
			p.pos++
			flushRun()
			return assembleGroup(elements, filters), nil
		case t.kind == tokPunct && t.text == ".":
			p.pos++
		case t.kind == tokPunct && t.text == "{":
			flushRun()
			grp, err := p.groupOrUnion()
			if err != nil {
				return nil, err
			}
			elements = append(elements, grp)
		case t.kind == tokKeyword && t.text == "OPTIONAL":
			p.pos++
			flushRun()
			child, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			elements = append(elements, &Pattern{Kind: Optional, Children: []*Pattern{child}})
		case t.kind == tokKeyword && t.text == "FILTER":
			p.pos++
			e, err := p.constraint()
			if err != nil {
				return nil, err
			}
			filters = append(filters, e)
		default:
			ts, pats, err := p.triplesSameSubject()
			if err != nil {
				return nil, err
			}
			run = append(run, ts...)
			if len(pats) > 0 {
				flushRun()
				elements = append(elements, pats...)
			}
		}
	}
}

// groupOrUnion parses '{...} (UNION {...})*'.
func (p *parser) groupOrUnion() (*Pattern, error) {
	first, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("UNION") {
		return first, nil
	}
	or := &Pattern{Kind: Or, Children: []*Pattern{first}}
	for p.acceptKeyword("UNION") {
		next, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		// Flatten nested unions produced by chained UNION keywords.
		if next.Kind == Or && len(next.Filters) == 0 {
			or.Children = append(or.Children, next.Children...)
		} else {
			or.Children = append(or.Children, next)
		}
	}
	return or, nil
}

// assembleGroup normalizes the parsed elements of one group into a
// single pattern node mirroring the paper's parse trees (Fig. 7).
func assembleGroup(elements []*Pattern, filters []Expr) *Pattern {
	switch len(elements) {
	case 0:
		return &Pattern{Kind: Simple, Filters: filters}
	case 1:
		e := elements[0]
		e.Filters = append(e.Filters, filters...)
		return e
	}
	return &Pattern{Kind: And, Children: elements, Filters: filters}
}

// triplesSameSubject parses subject + predicate-object list, where
// each predicate position may be a property path; alternatives inside
// paths desugar into extra UNION patterns.
func (p *parser) triplesSameSubject() ([]*TriplePattern, []*Pattern, error) {
	s, err := p.varOrTerm()
	if err != nil {
		return nil, nil, err
	}
	var out []*TriplePattern
	var pats []*Pattern
	for {
		pr, err := p.verbPath()
		if err != nil {
			return nil, nil, err
		}
		for {
			o, err := p.varOrTerm()
			if err != nil {
				return nil, nil, err
			}
			ts, nps, err := p.desugarPath(s, pr, o)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, ts...)
			pats = append(pats, nps...)
			if !p.acceptPunct(",") {
				break
			}
		}
		if !p.acceptPunct(";") {
			break
		}
		// allow trailing ';' before '.' or '}'
		if p.isPunct(".") || p.isPunct("}") {
			break
		}
	}
	return out, pats, nil
}

func (p *parser) varOrTerm() (TermOrVar, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.pos++
		return Variable(t.text), nil
	case tokIRI:
		p.pos++
		return Constant(rdf.NewIRI(t.text)), nil
	case tokPName:
		p.pos++
		if strings.HasPrefix(t.text, "_:") {
			// Blank nodes in query patterns act as non-projectable
			// variables.
			return Variable("_bnode_" + t.text[2:]), nil
		}
		iri, err := p.expandPName(t.text)
		if err != nil {
			return TermOrVar{}, err
		}
		return Constant(rdf.NewIRI(iri)), nil
	case tokString:
		p.pos++
		lex := t.text
		if p.peek().kind == tokLangTag {
			lang := p.next().text
			return Constant(rdf.NewLangLiteral(lex, lang)), nil
		}
		if p.peek().kind == tokDTypeMark {
			p.pos++
			dt := p.peek()
			var dtIRI string
			switch dt.kind {
			case tokIRI:
				dtIRI = dt.text
			case tokPName:
				var err error
				dtIRI, err = p.expandPName(dt.text)
				if err != nil {
					return TermOrVar{}, err
				}
			default:
				return TermOrVar{}, p.errf("expected datatype IRI")
			}
			p.pos++
			return Constant(rdf.NewTypedLiteral(lex, dtIRI)), nil
		}
		return Constant(rdf.NewLiteral(lex)), nil
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			return Constant(rdf.NewTypedLiteral(t.text, rdf.XSDDecimal)), nil
		}
		return Constant(rdf.NewTypedLiteral(t.text, rdf.XSDInteger)), nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return Constant(rdf.NewTypedLiteral("true", rdf.XSDBoolean)), nil
		case "FALSE":
			p.pos++
			return Constant(rdf.NewTypedLiteral("false", rdf.XSDBoolean)), nil
		}
	}
	return TermOrVar{}, p.errf("expected variable or RDF term, got %q", t.text)
}

func (p *parser) expandPName(pname string) (string, error) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return "", p.errf("malformed prefixed name %q", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errf("undeclared prefix %q", prefix)
	}
	return base + local, nil
}

// constraint parses FILTER's argument: a bracketted expression or a
// built-in call.
func (p *parser) constraint() (Expr, error) {
	if p.isPunct("(") {
		return p.brackettedExpr()
	}
	return p.primaryExpr()
}

// Expression grammar (SPARQL 1.0 §A.8, the operator subset).
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("||") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &EBin{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&&") {
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &EBin{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &EBin{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &EBin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := p.next().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &EBin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptPunct("!") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &EUn{Op: "!", X: x}, nil
	}
	if p.acceptPunct("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &EUn{Op: "-", X: x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			return p.brackettedExpr()
		}
	case tokVar:
		p.pos++
		return &EVar{Name: t.text}, nil
	case tokIRI:
		p.pos++
		return &ELit{Term: rdf.NewIRI(t.text)}, nil
	case tokPName:
		p.pos++
		iri, err := p.expandPName(t.text)
		if err != nil {
			return nil, err
		}
		return &ELit{Term: rdf.NewIRI(iri)}, nil
	case tokString:
		tv, err := p.varOrTerm()
		if err != nil {
			return nil, err
		}
		return &ELit{Term: tv.Term}, nil
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			return &ELit{Term: rdf.NewTypedLiteral(t.text, rdf.XSDDecimal)}, nil
		}
		return &ELit{Term: rdf.NewTypedLiteral(t.text, rdf.XSDInteger)}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return &ELit{Term: rdf.NewTypedLiteral("true", rdf.XSDBoolean)}, nil
		case "FALSE":
			p.pos++
			return &ELit{Term: rdf.NewTypedLiteral("false", rdf.XSDBoolean)}, nil
		default:
			// Built-in call: NAME(args...).
			name := strings.ToLower(t.text)
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var args []Expr
			if !p.isPunct(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.acceptPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &ECall{Name: name, Args: args}, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}
