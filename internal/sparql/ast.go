package sparql

import (
	"fmt"
	"sort"
	"strings"

	"db2rdf/internal/rdf"
)

// PatternKind enumerates the four pattern types of the paper's query
// model (§3.1.2): SIMPLE (a run of triple patterns), AND, OR (UNION)
// and OPTIONAL.
type PatternKind uint8

const (
	// Simple is a conjunction of bare triple patterns.
	Simple PatternKind = iota
	// And joins sub-patterns conjunctively.
	And
	// Or is a UNION of sub-patterns.
	Or
	// Optional guards its single child pattern.
	Optional
)

// String names the kind.
func (k PatternKind) String() string {
	switch k {
	case Simple:
		return "SIMPLE"
	case And:
		return "AND"
	case Or:
		return "OR"
	case Optional:
		return "OPTIONAL"
	}
	return fmt.Sprintf("PatternKind(%d)", uint8(k))
}

// TermOrVar is one position of a triple pattern: a variable or a
// constant RDF term.
type TermOrVar struct {
	IsVar bool
	Var   string
	Term  rdf.Term
}

// Variable constructs a variable position.
func Variable(name string) TermOrVar { return TermOrVar{IsVar: true, Var: name} }

// Constant constructs a constant position.
func Constant(t rdf.Term) TermOrVar { return TermOrVar{Term: t} }

// String renders the position in SPARQL syntax.
func (tv TermOrVar) String() string {
	if tv.IsVar {
		return "?" + tv.Var
	}
	return tv.Term.String()
}

// TriplePattern is one triple pattern with a stable id (t1, t2, ... in
// document order) and a parent pointer into the pattern tree.
type TriplePattern struct {
	ID      int
	S, P, O TermOrVar
	Parent  *Pattern
}

// Vars returns the variables of the triple in S, P, O order
// (deduplicated).
func (t *TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tv := range []TermOrVar{t.S, t.P, t.O} {
		if tv.IsVar && !seen[tv.Var] {
			seen[tv.Var] = true
			out = append(out, tv.Var)
		}
	}
	return out
}

// String renders the triple pattern.
func (t *TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s", t.S, t.P, t.O)
}

// Pattern is a node of the pattern tree.
type Pattern struct {
	Kind     PatternKind
	Triples  []*TriplePattern // Simple only
	Children []*Pattern       // And, Or; Optional has exactly one child
	Filters  []Expr           // FILTER constraints scoped to this group
	Parent   *Pattern
}

// Child returns the single child of an Optional pattern.
func (p *Pattern) Child() *Pattern {
	if len(p.Children) == 0 {
		return nil
	}
	return p.Children[0]
}

// Walk visits the pattern tree depth-first, parents before children.
func (p *Pattern) Walk(fn func(*Pattern)) {
	fn(p)
	for _, c := range p.Children {
		c.Walk(fn)
	}
}

// AllTriples returns every triple pattern under p in document order.
func (p *Pattern) AllTriples() []*TriplePattern {
	var out []*TriplePattern
	p.Walk(func(q *Pattern) { out = append(out, q.Triples...) })
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AllFilters returns every filter expression under p.
func (p *Pattern) AllFilters() []Expr {
	var out []Expr
	p.Walk(func(q *Pattern) { out = append(out, q.Filters...) })
	return out
}

// Vars returns the sorted set of variables bound under p.
func (p *Pattern) Vars() []string {
	set := map[string]bool{}
	for _, t := range p.AllTriples() {
		for _, v := range t.Vars() {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Ancestors returns ↑*(p): the chain of enclosing patterns from p's
// parent to the root.
func (p *Pattern) Ancestors() []*Pattern {
	var out []*Pattern
	for q := p.Parent; q != nil; q = q.Parent {
		out = append(out, q)
	}
	return out
}

// ancestorsSelfSet returns p plus all its ancestors as a set.
func ancestorsSelfSet(p *Pattern) map[*Pattern]bool {
	set := map[*Pattern]bool{p: true}
	for q := p.Parent; q != nil; q = q.Parent {
		set[q] = true
	}
	return set
}

// LCA implements Definition 3.4: the least common ancestor pattern of
// a and b (counting a pattern as an ancestor of itself).
func LCA(a, b *Pattern) *Pattern {
	bs := ancestorsSelfSet(b)
	for q := a; q != nil; q = q.Parent {
		if bs[q] {
			return q
		}
	}
	return nil
}

// AncestorsToLCA implements Definition 3.5 (↑↑): the ancestors of p
// strictly below the LCA of p and q, including p itself.
func AncestorsToLCA(p, q *Pattern) []*Pattern {
	lca := LCA(p, q)
	var out []*Pattern
	for r := p; r != nil && r != lca; r = r.Parent {
		out = append(out, r)
	}
	return out
}

// TripleLCA is LCA lifted to triple patterns (via their parents).
func TripleLCA(a, b *TriplePattern) *Pattern { return LCA(a.Parent, b.Parent) }

// OrConnected implements Definition 3.6 (∪): the least common ancestor
// of the two triples is an OR pattern.
func OrConnected(a, b *TriplePattern) bool {
	lca := TripleLCA(a, b)
	return lca != nil && lca.Kind == Or
}

// OptionalGuarded implements Definition 3.7 (∩): t2 is optional with
// respect to t1 — some pattern on the path from t2's group up to (but
// excluding) the LCA is an OPTIONAL.
func OptionalGuarded(t1, t2 *TriplePattern) bool {
	for _, p := range AncestorsToLCA(t2.Parent, t1.Parent) {
		if p.Kind == Optional {
			return true
		}
	}
	// The group itself may be the OPTIONAL's child; count the parent
	// chain node of kind Optional reached exactly at the boundary.
	return false
}

// ANDMergeable implements Definition 3.9: every intermediate ancestor
// up to and including the LCA is an AND (or SIMPLE, which is a
// degenerate conjunctive group).
func ANDMergeable(a, b *TriplePattern) bool {
	lca := TripleLCA(a, b)
	if lca == nil || !conjunctiveKind(lca.Kind) {
		return false
	}
	for _, p := range append(AncestorsToLCA(a.Parent, b.Parent), AncestorsToLCA(b.Parent, a.Parent)...) {
		if !conjunctiveKind(p.Kind) {
			return false
		}
	}
	return true
}

// ORMergeable implements Definition 3.10: the LCA is an OR and every
// intermediate ancestor is an OR or a degenerate single-triple group.
func ORMergeable(a, b *TriplePattern) bool {
	lca := TripleLCA(a, b)
	if lca == nil || lca.Kind != Or {
		return false
	}
	for _, p := range append(AncestorsToLCA(a.Parent, b.Parent), AncestorsToLCA(b.Parent, a.Parent)...) {
		if p.Kind != Or && p.Kind != Simple {
			return false
		}
	}
	return true
}

// OPTMergeable implements Definition 3.11: intermediate ancestors are
// ANDs except that the pattern guarding the later triple b is an
// OPTIONAL directly enclosing it.
func OPTMergeable(a, b *TriplePattern) bool {
	lca := TripleLCA(a, b)
	if lca == nil || !conjunctiveKind(lca.Kind) {
		return false
	}
	for _, p := range AncestorsToLCA(a.Parent, b.Parent) {
		if !conjunctiveKind(p.Kind) {
			return false
		}
	}
	sawOptional := false
	for _, p := range AncestorsToLCA(b.Parent, a.Parent) {
		if p.Kind == Optional {
			if sawOptional {
				return false // doubly nested optionals do not merge
			}
			sawOptional = true
			continue
		}
		if !conjunctiveKind(p.Kind) {
			return false
		}
	}
	return sawOptional
}

func conjunctiveKind(k PatternKind) bool { return k == And || k == Simple }

// Query is a parsed SPARQL query.
type Query struct {
	Prefixes map[string]string
	Ask      bool
	Distinct bool
	Star     bool
	Vars     []string // projection list when Star is false
	Where    *Pattern
	OrderBy  []OrderKey
	Limit    int64 // -1 when absent
	Offset   int64
	// Closures lists the transitive property paths in the query (see
	// Closure); empty for plain SPARQL 1.0 queries.
	Closures []Closure
	// Construct holds the template of a CONSTRUCT query (nil for
	// SELECT/ASK/DESCRIBE).
	Construct []*TriplePattern
	// Describe holds the resources of a DESCRIBE query.
	Describe []TermOrVar
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// ProjectedVars returns the variables the query answers with: the
// explicit projection, or all pattern variables for SELECT *.
func (q *Query) ProjectedVars() []string {
	if !q.Star {
		return q.Vars
	}
	return q.Where.Vars()
}

// String renders a compact single-line description of the pattern tree
// (used by tests and -explain output).
func (p *Pattern) TreeString() string {
	var b strings.Builder
	p.tree(&b)
	return b.String()
}

func (p *Pattern) tree(b *strings.Builder) {
	switch p.Kind {
	case Simple:
		b.WriteString("{")
		for i, t := range p.Triples {
			if i > 0 {
				b.WriteString(" . ")
			}
			fmt.Fprintf(b, "t%d", t.ID)
		}
		b.WriteString("}")
	default:
		b.WriteString(p.Kind.String())
		b.WriteString("(")
		for i, c := range p.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.tree(b)
		}
		b.WriteString(")")
	}
	if len(p.Filters) > 0 {
		fmt.Fprintf(b, "[%d filters]", len(p.Filters))
	}
}

// Expr is a FILTER expression node.
type Expr interface{ exprNode() }

// EVar references a SPARQL variable.
type EVar struct{ Name string }

// ELit is a constant RDF term (literal, IRI).
type ELit struct{ Term rdf.Term }

// EBin is a binary operation: || && = != < <= > >= + - * /.
type EBin struct {
	Op   string
	L, R Expr
}

// EUn is unary ! or -.
type EUn struct {
	Op string
	X  Expr
}

// ECall is a built-in call: regex, bound, str, lang, datatype, isiri,
// isliteral, isblank.
type ECall struct {
	Name string // lower-cased
	Args []Expr
}

func (*EVar) exprNode()  {}
func (*ELit) exprNode()  {}
func (*EBin) exprNode()  {}
func (*EUn) exprNode()   {}
func (*ECall) exprNode() {}

// ExprVars collects the variables referenced by e into set.
func ExprVars(e Expr, set map[string]bool) {
	switch x := e.(type) {
	case *EVar:
		set[x.Name] = true
	case *EBin:
		ExprVars(x.L, set)
		ExprVars(x.R, set)
	case *EUn:
		ExprVars(x.X, set)
	case *ECall:
		for _, a := range x.Args {
			ExprVars(a, set)
		}
	}
}

// PathStep is one atomic edge step of a property-path closure: follow
// predicate IRI forward, or backward when Inverse is set.
type PathStep struct {
	IRI     string
	Inverse bool
}

// Closure describes a transitive property path (p+, p*, p?) that the
// parser could not desugar statically (SPARQL 1.1 property paths — the
// paper's stated future work). The triple pattern carrying it uses the
// Marker IRI as its predicate; the engine materializes the closure of
// the union of Steps and maps the marker to that relation.
type Closure struct {
	// Marker is the synthetic predicate IRI standing for the closure.
	Marker string
	// Steps is the union of edge steps the closure ranges over.
	Steps []PathStep
	// Min is 0 for * and ?, 1 for +.
	Min int
	// Max is -1 for unbounded (+, *) and 1 for ?.
	Max int
}
