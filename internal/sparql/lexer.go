// Package sparql implements a lexer, parser and abstract syntax tree
// for the SPARQL 1.0 subset used by the paper (Bornea et al., SIGMOD
// 2013): SELECT/ASK queries over hierarchically nested graph patterns
// built from triple patterns with AND (juxtaposition), UNION, OPTIONAL
// and FILTER, plus DISTINCT, ORDER BY and LIMIT/OFFSET solution
// modifiers.
//
// The AST mirrors the paper's query model: a query is a tree of
// patterns (SIMPLE, AND, OR, OPTIONAL) whose leaves are triple
// patterns; the structural relations of Definitions 3.4-3.7 (least
// common ancestor, ancestors-to-LCA, OR-connected, OPTIONAL-connected)
// are provided as methods so the optimizer and translator can share
// them.
package sparql

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokEOF       tokKind = iota
	tokVar               // ?x or $x (text holds the bare name)
	tokIRI               // <...> (text holds the IRI)
	tokPName             // prefixed name pfx:local (text holds the raw form)
	tokString            // "..." (text holds the unescaped value)
	tokLangTag           // @en
	tokDTypeMark         // ^^
	tokNumber
	tokKeyword // upper-cased
	tokPunct
	tokA // the 'a' keyword (rdf:type)
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var sparqlKeywords = map[string]bool{
	"PREFIX": true, "BASE": true, "SELECT": true, "ASK": true,
	"CONSTRUCT": true, "DESCRIBE": true,
	"DISTINCT": true, "REDUCED": true, "WHERE": true, "UNION": true,
	"OPTIONAL": true, "FILTER": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"TRUE": true, "FALSE": true,
}

type lexer struct {
	in   string
	pos  int
	toks []token
}

func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	for {
		l.skipSpace()
		if l.pos >= len(l.in) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.in[l.pos]
		switch {
		case c == '?' || c == '$':
			l.pos++
			name := l.takeWhile(isNamePart)
			if name == "" {
				if c == '?' {
					// '?' with no name is the zero-or-one path operator.
					l.toks = append(l.toks, token{kind: tokPunct, text: "?", pos: start})
					continue
				}
				return nil, fmt.Errorf("sparql: empty variable name at offset %d", start)
			}
			l.toks = append(l.toks, token{kind: tokVar, text: name, pos: start})
		case c == '<':
			// '<' opens an IRI only when a '>' closes it before any
			// whitespace; otherwise it is the less-than operator
			// (e.g. FILTER (?x < 5)).
			end := -1
			for i := l.pos + 1; i < len(l.in); i++ {
				if l.in[i] == '>' {
					end = i - l.pos
					break
				}
				if l.in[i] == ' ' || l.in[i] == '\t' || l.in[i] == '\n' || l.in[i] == '\r' {
					break
				}
			}
			if end < 0 {
				l.pos++
				if l.pos < len(l.in) && l.in[l.pos] == '=' {
					l.pos++
					l.toks = append(l.toks, token{kind: tokPunct, text: "<=", pos: start})
				} else {
					l.toks = append(l.toks, token{kind: tokPunct, text: "<", pos: start})
				}
				continue
			}
			l.toks = append(l.toks, token{kind: tokIRI, text: l.in[l.pos+1 : l.pos+end], pos: start})
			l.pos += end + 1
		case c == '"' || c == '\'':
			s, err := l.stringLiteral(c)
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c == '@':
			l.pos++
			tag := l.takeWhile(func(b byte) bool { return isAlphaNum(b) || b == '-' })
			l.toks = append(l.toks, token{kind: tokLangTag, text: tag, pos: start})
		case c == '^':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '^' {
				l.pos += 2
				l.toks = append(l.toks, token{kind: tokDTypeMark, pos: start})
			} else {
				// Single '^' is the inverse path operator.
				l.pos++
				l.toks = append(l.toks, token{kind: tokPunct, text: "^", pos: start})
			}
		case c >= '0' && c <= '9' || (c == '-' || c == '+') && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9':
			l.pos++
			for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9' || l.in[l.pos] == '.' || l.in[l.pos] == 'e' || l.in[l.pos] == 'E') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.in[start:l.pos], pos: start})
		case isNameStart(c):
			word := l.takeWhile(isNamePart)
			// prefixed name? (pfx:local, possibly with empty prefix handled below)
			if l.pos < len(l.in) && l.in[l.pos] == ':' {
				l.pos++
				local := l.takeWhile(isNamePart)
				l.toks = append(l.toks, token{kind: tokPName, text: word + ":" + local, pos: start})
				continue
			}
			if word == "a" {
				l.toks = append(l.toks, token{kind: tokA, text: "a", pos: start})
				continue
			}
			up := strings.ToUpper(word)
			if sparqlKeywords[up] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
				continue
			}
			// Bare identifiers appear only as function names in FILTERs
			// (regex, bound, str, ...). Treat as keyword-like idents.
			l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
		case c == ':':
			l.pos++
			local := l.takeWhile(isNamePart)
			l.toks = append(l.toks, token{kind: tokPName, text: ":" + local, pos: start})
		default:
			switch c {
			case '{', '}', '(', ')', '.', ';', ',', '*', '+', '/':
				l.pos++
				l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: start})
			case '-':
				l.pos++
				l.toks = append(l.toks, token{kind: tokPunct, text: "-", pos: start})
			case '=':
				l.pos++
				l.toks = append(l.toks, token{kind: tokPunct, text: "=", pos: start})
			case '!':
				l.pos++
				if l.pos < len(l.in) && l.in[l.pos] == '=' {
					l.pos++
					l.toks = append(l.toks, token{kind: tokPunct, text: "!=", pos: start})
				} else {
					l.toks = append(l.toks, token{kind: tokPunct, text: "!", pos: start})
				}
			case '<':
				// handled above (IRI) — unreachable
			case '>':
				l.pos++
				if l.pos < len(l.in) && l.in[l.pos] == '=' {
					l.pos++
					l.toks = append(l.toks, token{kind: tokPunct, text: ">=", pos: start})
				} else {
					l.toks = append(l.toks, token{kind: tokPunct, text: ">", pos: start})
				}
			case '&':
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == '&' {
					l.pos += 2
					l.toks = append(l.toks, token{kind: tokPunct, text: "&&", pos: start})
				} else {
					return nil, fmt.Errorf("sparql: unexpected '&' at offset %d", start)
				}
			case '|':
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == '|' {
					l.pos += 2
					l.toks = append(l.toks, token{kind: tokPunct, text: "||", pos: start})
				} else {
					// Single '|' is the path alternative operator.
					l.pos++
					l.toks = append(l.toks, token{kind: tokPunct, text: "|", pos: start})
				}
			case '_':
				// blank node _:label
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == ':' {
					l.pos += 2
					label := l.takeWhile(isNamePart)
					l.toks = append(l.toks, token{kind: tokPName, text: "_:" + label, pos: start})
				} else {
					return nil, fmt.Errorf("sparql: unexpected '_' at offset %d", start)
				}
			default:
				return nil, fmt.Errorf("sparql: unexpected character %q at offset %d", c, start)
			}
		}
	}
}

func (l *lexer) takeWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.in) && pred(l.in[l.pos]) {
		l.pos++
	}
	return l.in[start:l.pos]
}

func (l *lexer) stringLiteral(quote byte) (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.in) {
			return "", fmt.Errorf("sparql: unterminated string literal")
		}
		c := l.in[l.pos]
		if c == quote {
			l.pos++
			return b.String(), nil
		}
		if c == '\\' {
			if l.pos+1 >= len(l.in) {
				return "", fmt.Errorf("sparql: dangling escape")
			}
			l.pos++
			switch l.in[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", fmt.Errorf("sparql: unknown escape \\%c", l.in[l.pos])
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNamePart(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '_' || c == '-'
}

func isAlphaNum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
