package rel

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Query profiling: the executor side of EXPLAIN ANALYZE. A profiled
// execution (DB.AnalyzeContext) records one OpStat per operator —
// actual rows in/out, hash-build entries, columnar chunks scanned vs
// zone-skipped, morsel workers used, wall time — plus the row count of
// every CTE, so the caller can put actual cardinalities next to the
// optimizer's estimates.
//
// The instrumentation contract: when profiling is off (exec.prof ==
// nil, the default for ExecContext), no OpStat is built, no timestamp
// is taken and no per-worker counter slice is allocated — every
// profiling hook is behind a nil check, so the hot path stays
// allocation-free and within noise of the uninstrumented executor.
// All OpStat appends happen on the coordinator goroutine after any
// morsel fan-out has joined, so the profiler needs no locking.

// OpStat records the actual runtime behavior of one executor operator.
type OpStat struct {
	Kind  string // "scan", "index-scan", "filter", "hash-join", "index-join", "cross-join", "join-on", "project", "dedup", "order-by", "limit"
	Label string // detail: table/index name, join kernel ("int", "generic"), ...
	Scope string // lower-cased CTE name the operator ran under ("" = outer query body)

	RowsIn    int64 // input rows (the probe side for joins)
	RowsOut   int64 // rows produced
	BuildRows int64 // hash-build entries / inner-side rows for joins

	Chunks        int64 // columnar chunks covered by a scan
	ChunksSkipped int64 // chunks pruned by zone maps without per-row work

	Workers   int   // morsel workers the operator fanned out across
	ElapsedNs int64 // wall time spent in the operator
}

// String renders one operator line, e.g.
// "[qt3] scan dph: in=5000 out=120 chunks=5 skipped=3 workers=4 (1.2ms)".
func (s OpStat) String() string {
	var b strings.Builder
	if s.Scope != "" {
		fmt.Fprintf(&b, "[%s] ", s.Scope)
	}
	b.WriteString(s.Kind)
	if s.Label != "" {
		b.WriteString(" " + s.Label)
	}
	fmt.Fprintf(&b, ": in=%d out=%d", s.RowsIn, s.RowsOut)
	if s.BuildRows > 0 {
		fmt.Fprintf(&b, " build=%d", s.BuildRows)
	}
	if s.Chunks > 0 {
		fmt.Fprintf(&b, " chunks=%d skipped=%d", s.Chunks, s.ChunksSkipped)
	}
	fmt.Fprintf(&b, " workers=%d (%s)", s.Workers, time.Duration(s.ElapsedNs))
	return b.String()
}

// ExecStats is the profile of one query execution.
type ExecStats struct {
	// Ops lists every instrumented operator in completion order.
	Ops []OpStat
	// CTERows maps each CTE (lower-cased name) to the rows it produced —
	// the actual cardinality the translator's access estimates are
	// compared against.
	CTERows map[string]int64
	// Rows is the final result row count.
	Rows int64
	// ElapsedNs is the total execution wall time.
	ElapsedNs int64
	// Workers is the maximum morsel parallelism any operator achieved.
	Workers int
	// BudgetRowsCharged / BudgetBytesCharged are the totals charged
	// against the row and memory budgets. They are maintained only when
	// the corresponding Limits field is set (unlimited queries skip the
	// atomic accounting entirely).
	BudgetRowsCharged  int64
	BudgetBytesCharged int64
}

// String renders the profile as one line per operator plus a summary.
func (st *ExecStats) String() string {
	var b strings.Builder
	for _, op := range st.Ops {
		b.WriteString("  " + op.String() + "\n")
	}
	if len(st.CTERows) > 0 {
		names := make([]string, 0, len(st.CTERows))
		for n := range st.CTERows {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("  cte rows:")
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, st.CTERows[n])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  total: %d rows, %d workers max, %s", st.Rows, st.Workers, time.Duration(st.ElapsedNs))
	return b.String()
}

// profiler accumulates an ExecStats during one profiled execution. It
// is owned by the coordinator goroutine; operators record their stats
// after their morsel workers (if any) have joined.
type profiler struct {
	stats ExecStats
	scope string // current CTE being evaluated
}

func (p *profiler) add(s OpStat) {
	if s.Workers > p.stats.Workers {
		p.stats.Workers = s.Workers
	}
	p.stats.Ops = append(p.stats.Ops, s)
}

// opStart returns the operator start time when profiling is on (the
// zero time otherwise, costing nothing on the disabled path).
func (ex *exec) opStart() time.Time {
	if ex.prof == nil {
		return time.Time{}
	}
	return time.Now()
}

// opEnd records one operator's stats when profiling is on. The Scope
// and ElapsedNs fields are filled in here.
func (ex *exec) opEnd(t0 time.Time, s OpStat) {
	if ex.prof == nil {
		return
	}
	s.Scope = ex.prof.scope
	s.ElapsedNs = time.Since(t0).Nanoseconds()
	ex.prof.add(s)
}

// AnalyzeContext is ExecContext with per-operator instrumentation: it
// executes q exactly like ExecContext (same governance, same results)
// and additionally returns the execution profile. The returned stats
// are valid — possibly partial — even when execution fails, so an
// aborted query can still be diagnosed.
func (db *DB) AnalyzeContext(ctx context.Context, q *Query, lim Limits) (*ResultSet, *ExecStats, error) {
	p := &profiler{}
	p.stats.CTERows = make(map[string]int64)
	start := time.Now()
	rs, err := db.execContext(ctx, q, lim, p)
	p.stats.ElapsedNs = time.Since(start).Nanoseconds()
	if rs != nil {
		p.stats.Rows = int64(len(rs.Rows))
	}
	return rs, &p.stats, err
}
