package rel

import (
	"fmt"
	"strings"
)

// relation is a materialized intermediate result during execution.
// Column names are stored lower-cased and alias-qualified
// ("alias.col"); unqualified lookups resolve by unique suffix.
type relation struct {
	cols    []string
	rows    []Row
	aliases map[string]bool
	// base points at the backing table when this relation is a full
	// scan of it; joins can then use the table's hash indexes (index
	// nested-loop) instead of building a fresh hash.
	base *Table
	// pending holds single-relation filters that have not been applied
	// yet: base scans defer them so an index nested-loop join can
	// evaluate them per probed row instead of materializing a filtered
	// copy of the whole table. Consumers must call DB.materialize (or
	// check pending per probe) before using rows.
	pending []Expr
	// scan marks an unmaterialized full scan of a columnar base table:
	// rows is nil and materialize routes through the vectorized scan
	// (vecscan.go) instead of copying the table up front. Size the
	// relation with rowCount, not len(rows).
	scan bool
}

// rowCount is the relation's input cardinality for plan sizing: the
// base table's row count for an unmaterialized columnar scan (an
// upper bound when filters are pending, exactly like the row layout's
// deferred scans), len(rows) otherwise.
func (r *relation) rowCount() int {
	if r.scan {
		return r.base.LiveLen()
	}
	return len(r.rows)
}

func newRelation(cols []string) *relation {
	return &relation{cols: cols, aliases: make(map[string]bool)}
}

// colIndex resolves an (alias, column) reference to a position, or -1.
func (r *relation) colIndex(alias, col string) int {
	alias = strings.ToLower(alias)
	col = strings.ToLower(col)
	if alias != "" {
		want := alias + "." + col
		for i, c := range r.cols {
			if c == want {
				return i
			}
		}
		return -1
	}
	// Unqualified: exact match first, then unique suffix match.
	found := -1
	for i, c := range r.cols {
		if c == col {
			return i
		}
		if strings.HasSuffix(c, "."+col) {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

// rowCtx provides the row environment for expression evaluation. The
// cache memoizes column-reference resolution across the (typically
// many) rows evaluated against one relation shape; it must not be
// shared across relations.
type rowCtx struct {
	rel   *relation
	row   Row
	db    *DB
	cache map[*ColRef]int
}

// newRowCtx returns a context with resolution caching enabled.
func newRowCtx(rel *relation, db *DB) *rowCtx {
	return &rowCtx{rel: rel, db: db, cache: make(map[*ColRef]int)}
}

// evalExpr evaluates e against ctx.
func evalExpr(e Expr, ctx *rowCtx) (Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.V, nil
	case *ColRef:
		if ctx.rel == nil {
			return Null, fmt.Errorf("sql: column reference %s outside row context", colRefString(x))
		}
		i, cached := -1, false
		if ctx.cache != nil {
			i, cached = ctx.cache[x]
			if !cached {
				i = -1
			}
		}
		if !cached {
			i = ctx.rel.colIndex(x.Alias, x.Column)
			if ctx.cache != nil {
				ctx.cache[x] = i
			}
		}
		if i < 0 {
			return Null, fmt.Errorf("sql: unknown column %s (have %v)", colRefString(x), ctx.rel.cols)
		}
		return ctx.row[i], nil
	case *BinOp:
		return evalBinOp(x, ctx)
	case *UnOp:
		v, err := evalExpr(x.X, ctx)
		if err != nil {
			return Null, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null, nil
			}
			return Bool(!v.Truth()), nil
		case "-":
			switch v.K {
			case KindInt:
				return Int(-v.I), nil
			case KindFloat:
				return Float(-v.F), nil
			case KindNull:
				return Null, nil
			}
			return Null, fmt.Errorf("sql: cannot negate %v", v.K)
		}
		return Null, fmt.Errorf("sql: unknown unary op %q", x.Op)
	case *IsNullExpr:
		v, err := evalExpr(x.X, ctx)
		if err != nil {
			return Null, err
		}
		if x.Not {
			return Bool(!v.IsNull()), nil
		}
		return Bool(v.IsNull()), nil
	case *InExpr:
		v, err := evalExpr(x.X, ctx)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		anyNull := false
		for _, item := range x.List {
			iv, err := evalExpr(item, ctx)
			if err != nil {
				return Null, err
			}
			if iv.IsNull() {
				anyNull = true
				continue
			}
			if Equal(v, iv) {
				return Bool(!x.Not), nil
			}
		}
		if anyNull {
			return Null, nil
		}
		return Bool(x.Not), nil
	case *CaseExpr:
		for _, w := range x.Whens {
			cond, err := evalExpr(w.Cond, ctx)
			if err != nil {
				return Null, err
			}
			if cond.Truth() {
				return evalExpr(w.Result, ctx)
			}
		}
		if x.Else != nil {
			return evalExpr(x.Else, ctx)
		}
		return Null, nil
	case *FuncCall:
		if x.Name == "coalesce" {
			for _, a := range x.Args {
				v, err := evalExpr(a, ctx)
				if err != nil {
					return Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return Null, nil
		}
		f, ok := ctx.db.function(x.Name)
		if !ok {
			return Null, fmt.Errorf("sql: unknown function %q", x.Name)
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalExpr(a, ctx)
			if err != nil {
				return Null, err
			}
			args[i] = v
		}
		return f(args)
	}
	return Null, fmt.Errorf("sql: unhandled expression %T", e)
}

func evalBinOp(x *BinOp, ctx *rowCtx) (Value, error) {
	switch x.Op {
	case "AND":
		l, err := evalExpr(x.L, ctx)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && !l.Truth() {
			return Bool(false), nil
		}
		r, err := evalExpr(x.R, ctx)
		if err != nil {
			return Null, err
		}
		if !r.IsNull() && !r.Truth() {
			return Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(true), nil
	case "OR":
		l, err := evalExpr(x.L, ctx)
		if err != nil {
			return Null, err
		}
		if l.Truth() {
			return Bool(true), nil
		}
		r, err := evalExpr(x.R, ctx)
		if err != nil {
			return Null, err
		}
		if r.Truth() {
			return Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(false), nil
	}
	l, err := evalExpr(x.L, ctx)
	if err != nil {
		return Null, err
	}
	r, err := evalExpr(x.R, ctx)
	if err != nil {
		return Null, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		c, ok := Compare(l, r)
		if !ok {
			return Null, nil
		}
		switch x.Op {
		case "=":
			return Bool(c == 0), nil
		case "!=":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		case ">=":
			return Bool(c >= 0), nil
		}
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		if l.K == KindInt && r.K == KindInt {
			switch x.Op {
			case "+":
				return Int(l.I + r.I), nil
			case "-":
				return Int(l.I - r.I), nil
			case "*":
				return Int(l.I * r.I), nil
			case "/":
				if r.I == 0 {
					return Null, nil
				}
				return Int(l.I / r.I), nil
			}
		}
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return Null, fmt.Errorf("sql: arithmetic on non-numeric values")
		}
		switch x.Op {
		case "+":
			return Float(lf + rf), nil
		case "-":
			return Float(lf - rf), nil
		case "*":
			return Float(lf * rf), nil
		case "/":
			if rf == 0 {
				return Null, nil
			}
			return Float(lf / rf), nil
		}
	}
	return Null, fmt.Errorf("sql: unknown binary op %q", x.Op)
}

func colRefString(c *ColRef) string {
	if c.Alias != "" {
		return c.Alias + "." + c.Column
	}
	return c.Column
}
