package rel

import "sync/atomic"

// Fault injection for the governance layer — a test-only hook that
// forces a failure at the Nth visit to a named checkpoint, so every
// abort path (cancellation, deadline, budget trip, panic containment)
// can be exercised deterministically, including inside morsel workers,
// under the race detector. Production code never arms it; the cost to
// a normal query is one atomic pointer load per checkpoint.
//
// Usage (tests only):
//
//	rel.InjectFault(rel.CkHashProbe, rel.FaultCancel, 1)
//	defer rel.ClearFault()
//	_, err := db.ExecContext(ctx, q, lim) // err == rel.ErrCanceled
//
// The harness is global: tests that arm it must not run in parallel
// with other tests of the same package.

// FaultMode selects what an injected checkpoint failure looks like.
type FaultMode uint8

// Fault modes.
const (
	// FaultNone disarms (equivalent to ClearFault).
	FaultNone FaultMode = iota
	// FaultCancel makes the checkpoint report ErrCanceled.
	FaultCancel
	// FaultDeadline makes the checkpoint report ErrDeadlineExceeded.
	FaultDeadline
	// FaultBudget makes the checkpoint report a *BudgetError.
	FaultBudget
	// FaultPanic makes the checkpoint panic, exercising containment.
	FaultPanic
)

// faultPanicMsg is the panic value used by FaultPanic; tests match it.
const faultPanicMsg = "rel: injected checkpoint panic"

type faultPlan struct {
	site  CheckSite
	mode  FaultMode
	nth   int64
	hits  atomic.Int64
	fired atomic.Bool
}

var faultState atomic.Pointer[faultPlan]

// InjectFault arms the harness: the nth visit (1-based) to a
// checkpoint at site (CkAny matches every site) fails with the given
// mode. Re-arming replaces any previous plan and resets the counters.
// Test-only; see the package comment above.
func InjectFault(site CheckSite, mode FaultMode, nth int64) {
	if mode == FaultNone {
		ClearFault()
		return
	}
	if nth < 1 {
		nth = 1
	}
	faultState.Store(&faultPlan{site: site, mode: mode, nth: nth})
}

// ClearFault disarms the harness.
func ClearFault() { faultState.Store(nil) }

// FaultFired reports whether the currently armed fault has triggered,
// letting tests assert that the targeted checkpoint was reached.
func FaultFired() bool {
	p := faultState.Load()
	return p != nil && p.fired.Load()
}

// faultCheck is consulted by every governance checkpoint.
func faultCheck(site CheckSite) error {
	p := faultState.Load()
	if p == nil {
		return nil
	}
	if p.site != CkAny && p.site != site {
		return nil
	}
	if p.hits.Add(1) != p.nth {
		return nil
	}
	p.fired.Store(true)
	switch p.mode {
	case FaultCancel:
		return ErrCanceled
	case FaultDeadline:
		return ErrDeadlineExceeded
	case FaultBudget:
		return &BudgetError{Budget: "injected", Limit: 0, Used: 1}
	case FaultPanic:
		panic(faultPanicMsg)
	}
	return nil
}
