package rel

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// Tests for EXPLAIN ANALYZE at the executor level (profile.go), the
// zone-map exception-pruning regression, and LIMIT/OFFSET equivalence
// between the pushdown and non-pushdown paths.

// TestAnalyzeContextProfile: a profiled execution must return the same
// rows as ExecContext plus a populated profile — per-CTE actuals, a
// scan operator with chunk-skip counts, totals matching the result.
func TestAnalyzeContextProfile(t *testing.T) {
	defer SetDefaultStorage(StorageColumnar)
	db := zoneDB(t, StorageColumnar)
	sql := "WITH C1 AS (SELECT z.v FROM z AS z WHERE z.v < 100) SELECT c.v FROM C1 AS c WHERE c.v > 10"
	q, err := ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := db.ExecContext(context.Background(), q, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	rs, stats, err := db.AnalyzeContext(context.Background(), q, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Rows, plain.Rows) {
		t.Fatalf("profiled execution changed results: %d vs %d rows", len(rs.Rows), len(plain.Rows))
	}
	if stats == nil || len(stats.Ops) == 0 {
		t.Fatal("no operators recorded")
	}
	if got := stats.CTERows["c1"]; got != 100 {
		t.Fatalf("CTE actual cardinality: want 100, got %d (map %v)", got, stats.CTERows)
	}
	if stats.Rows != int64(len(rs.Rows)) || stats.Rows != 89 {
		t.Fatalf("stats.Rows = %d, result rows = %d (want 89)", stats.Rows, len(rs.Rows))
	}
	if stats.ElapsedNs <= 0 {
		t.Fatal("total elapsed time not recorded")
	}
	var scan *OpStat
	for i := range stats.Ops {
		if stats.Ops[i].Kind == "scan" {
			scan = &stats.Ops[i]
		}
	}
	if scan == nil {
		t.Fatalf("no scan operator in profile: %v", stats.Ops)
	}
	// 8192 rows = 8 chunks; v < 100 keeps only chunk 0.
	if scan.Chunks != 8 || scan.ChunksSkipped != 7 {
		t.Fatalf("scan chunks=%d skipped=%d, want 8/7", scan.Chunks, scan.ChunksSkipped)
	}
	if scan.RowsIn != 8192 || scan.RowsOut != 100 {
		t.Fatalf("scan rows in=%d out=%d, want 8192/100", scan.RowsIn, scan.RowsOut)
	}
	if scan.Scope != "c1" {
		t.Fatalf("scan scope = %q, want c1", scan.Scope)
	}
	if !strings.Contains(stats.String(), "scan z") {
		t.Fatalf("stats rendering lacks the scan line:\n%s", stats.String())
	}
}

// TestAnalyzeCapturesBudgets: the profile must report the totals
// charged against row/memory budgets, and must be returned (partial)
// even when the budget aborts the query.
func TestAnalyzeCapturesBudgets(t *testing.T) {
	defer SetDefaultStorage(StorageColumnar)
	db := zoneDB(t, StorageColumnar)
	q, err := ParseQuery("SELECT z.v FROM z AS z WHERE z.v < 100")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := db.AnalyzeContext(context.Background(), q, Limits{MaxRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BudgetRowsCharged <= 0 {
		t.Fatalf("BudgetRowsCharged = %d, want > 0 under a row budget", stats.BudgetRowsCharged)
	}
	_, stats, err = db.AnalyzeContext(context.Background(), q, Limits{MaxRows: 10})
	if err == nil {
		t.Fatal("10-row budget must trip on a 100-row scan")
	}
	if stats == nil || stats.BudgetRowsCharged <= 10 {
		t.Fatalf("aborted query must still report charged budget, got %+v", stats)
	}
}

// TestExecContextRecordsNothing: the unprofiled path must not
// accumulate operator stats (the instrumentation contract).
func TestExecContextRecordsNothing(t *testing.T) {
	db := peopleDB(t)
	q, err := ParseQuery("SELECT p.name FROM people AS p WHERE p.age > 26")
	if err != nil {
		t.Fatal(err)
	}
	// Twice, to catch accidental global state.
	for i := 0; i < 2; i++ {
		if _, err := db.ExecContext(context.Background(), q, Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	_, stats, err := db.AnalyzeContext(context.Background(), q, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range stats.Ops {
		if op.ElapsedNs < 0 {
			t.Fatalf("negative elapsed in %+v", op)
		}
	}
}

// excDB builds the same table under both layouts: one chunk of int
// literals 0..n-1 in column v, plus exception cells (kind-mismatched
// values stored out of line) interleaved in the same chunk.
func excDB(t *testing.T, storage Storage) *DB {
	t.Helper()
	SetDefaultStorage(storage)
	db := NewDB()
	tbl, err := db.CreateTable("e", Schema{{Name: "id", Type: TInt}, {Name: "v", Type: TInt}})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 0, 200)
	for i := 0; i < 200; i++ {
		var v Value
		switch {
		case i == 50:
			v = Float(500) // numerically matches v = 500, far above the int zone max
		case i == 60:
			v = Float(79.5) // inside the int range, matches v > 79
		case i == 70:
			v = Str("tag") // string: matched only by kind-aware predicates
		case i == 80:
			v = Bool(true)
		case i%11 == 3:
			v = Null
		default:
			v = Int(int64(i)) // zone map: min 0, max 199
		}
		rows = append(rows, Row{Int(int64(i)), v})
	}
	if _, err := tbl.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestZoneMapExceptionPruning (regression): a chunk whose exception
// map holds kind-mismatched values must not be zone-skipped when the
// predicate could match an exception — Float(500) satisfies v = 500
// even though the chunk's int zone map tops out at 199.
func TestZoneMapExceptionPruning(t *testing.T) {
	defer SetDefaultStorage(StorageColumnar)
	colDB := excDB(t, StorageColumnar)
	rowDB := excDB(t, StorageRows)
	queries := []string{
		"SELECT e.id FROM e AS e WHERE e.v = 500",  // only the Float exception; zone map alone would skip the chunk
		"SELECT e.id FROM e AS e WHERE e.v > 300",  // ditto, range form
		"SELECT e.id FROM e AS e WHERE e.v >= 500", // boundary
		"SELECT e.id FROM e AS e WHERE e.v > 79 AND e.v < 81",  // Float 79.5 between int neighbors
		"SELECT e.id FROM e AS e WHERE e.v = 50",   // int literal at an index whose row was replaced
		"SELECT e.id FROM e AS e WHERE e.v != 0",   // inequality across exceptions
		"SELECT e.id FROM e AS e WHERE e.v < 10",   // exceptions all fail the predicate
		"SELECT e.id FROM e AS e WHERE e.v IS NULL",
		"SELECT e.id FROM e AS e WHERE e.v IS NOT NULL",
	}
	for _, q := range queries {
		a, err := colDB.Query(q)
		if err != nil {
			t.Fatalf("columnar %q: %v", q, err)
		}
		b, err := rowDB.Query(q)
		if err != nil {
			t.Fatalf("rows %q: %v", q, err)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Fatalf("%q: columnar %v vs row-layout %v", q, a.Rows, b.Rows)
		}
	}
	// The Float(500) row specifically must be found.
	rs, err := colDB.Query("SELECT e.id FROM e AS e WHERE e.v = 500")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 50 {
		t.Fatalf("v = 500 must match the Float(500) exception at id 50, got %v", rs.Rows)
	}
}

// TestZoneMapStillPrunesCleanChunks: exception awareness must not cost
// pruning on chunks without exceptions.
func TestZoneMapStillPrunesCleanChunks(t *testing.T) {
	defer SetDefaultStorage(StorageColumnar)
	db := zoneDB(t, StorageColumnar) // no exceptions anywhere
	q, err := ParseQuery("SELECT z.v FROM z AS z WHERE z.v = 100000")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := db.AnalyzeContext(context.Background(), q, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range stats.Ops {
		if op.Kind == "scan" && op.ChunksSkipped != op.Chunks {
			t.Fatalf("out-of-range predicate must skip all %d chunks, skipped %d", op.Chunks, op.ChunksSkipped)
		}
	}
}

// TestLimitOffsetPathEquivalence (regression): LIMIT 0, OFFSET past
// the result set, and OFFSET without LIMIT must agree between the
// pushdown path (plain SELECT, trimmed inside evalCore) and the
// non-pushdown paths (DISTINCT and ORDER BY force full
// materialization), and both must equal the manually trimmed full
// result.
func TestLimitOffsetPathEquivalence(t *testing.T) {
	defer SetDefaultStorage(StorageColumnar)
	db := zoneDB(t, StorageColumnar)
	base := "SELECT z.v FROM z AS z WHERE z.v < 100"
	full := queryRows(t, db, base) // 100 rows in storage (= ascending) order
	cases := []struct{ limit, offset int }{
		{0, 0},    // LIMIT 0
		{0, 50},   // LIMIT 0 with OFFSET
		{10, 0},   // plain LIMIT
		{10, 95},  // LIMIT straddling the end
		{10, 100}, // OFFSET exactly past the result set
		{10, 500}, // OFFSET far past
		{-1, 40},  // OFFSET without LIMIT
		{-1, 100}, // OFFSET without LIMIT, past the end
		{200, 0},  // LIMIT beyond the result set
	}
	for _, c := range cases {
		suffix := ""
		if c.limit >= 0 {
			suffix += " LIMIT " + itoa(c.limit)
		}
		if c.offset > 0 {
			suffix += " OFFSET " + itoa(c.offset)
		}
		want := trim(full.Rows, c.limit, c.offset)
		pushdown := queryRows(t, db, base+suffix)
		distinct := queryRows(t, db, "SELECT DISTINCT z.v FROM z AS z WHERE z.v < 100"+suffix)
		ordered := queryRows(t, db, base+" ORDER BY v"+suffix)
		if !sameRows(pushdown.Rows, want) {
			t.Fatalf("limit=%d offset=%d: pushdown %v != manual trim %v", c.limit, c.offset, pushdown.Rows, want)
		}
		if !sameRows(distinct.Rows, want) {
			t.Fatalf("limit=%d offset=%d: DISTINCT path %v != pushdown/manual %v", c.limit, c.offset, distinct.Rows, want)
		}
		if !sameRows(ordered.Rows, want) {
			t.Fatalf("limit=%d offset=%d: ORDER BY path %v != pushdown/manual %v", c.limit, c.offset, ordered.Rows, want)
		}
	}
}

// trim applies LIMIT/OFFSET semantics (limit < 0 = none) to rows.
func trim(rows []Row, limit, offset int) []Row {
	if offset >= len(rows) {
		return []Row{}
	}
	rows = rows[offset:]
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows
}

func sameRows(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
