package rel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ColumnType is the declared type of a table column.
type ColumnType uint8

const (
	// TInt is a 64-bit integer column (dictionary-encoded ids in all
	// the RDF schemas).
	TInt ColumnType = iota
	// TString is a string column.
	TString
	// TFloat is a float column.
	TFloat
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColumnType
}

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// hashIndex is an equality index on one column.
type hashIndex struct {
	col  int
	ints map[int64][]int32
	strs map[string][]int32
}

// Table is an in-memory relation with optional hash indexes.
// Concurrent readers are safe once loading has finished; writes take an
// exclusive lock.
type Table struct {
	Name   string
	Schema Schema

	mu      sync.RWMutex
	rows    []Row
	indexes map[string]*hashIndex // by lower-cased column name
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema, indexes: make(map[string]*hashIndex)}
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row; it must match the schema width.
func (t *Table) Insert(r Row) error {
	_, err := t.AppendRow(r)
	return err
}

// AppendRow appends a row and returns its index. The index is assigned
// under the table lock, so concurrent appenders each learn the true
// position of their row (Insert alone would leave Len() racy).
func (t *Table) AppendRow(r Row) (int, error) {
	if len(r) != len(t.Schema) {
		return 0, fmt.Errorf("rel: table %s: row width %d != schema width %d", t.Name, len(r), len(t.Schema))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := int32(len(t.rows))
	t.rows = append(t.rows, r)
	for _, idx := range t.indexes {
		idx.add(r, id)
	}
	return int(id), nil
}

// AppendRows appends a batch of rows under one lock acquisition and
// returns the index of the first; row i of the batch lands at index
// base+i. Used by the bulk loader to amortize locking and index
// maintenance across a whole batch.
func (t *Table) AppendRows(rs []Row) (int, error) {
	for _, r := range rs {
		if len(r) != len(t.Schema) {
			return 0, fmt.Errorf("rel: table %s: row width %d != schema width %d", t.Name, len(r), len(t.Schema))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := len(t.rows)
	t.rows = append(t.rows, rs...)
	for i, r := range rs {
		for _, idx := range t.indexes {
			idx.add(r, int32(base+i))
		}
	}
	return base, nil
}

// UpdateRow replaces row i in place (used for filling predicate columns
// of an existing entity row during RDF loading). Indexed columns must
// not change value unless reindexed by the caller.
func (t *Table) UpdateRow(i int, r Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.rows) {
		return fmt.Errorf("rel: table %s: row %d out of range", t.Name, i)
	}
	t.rows[i] = r
	return nil
}

// RowAt returns row i. The returned slice must not be modified.
func (t *Table) RowAt(i int) Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[i]
}

// Rows returns the backing row slice. The result must be treated as
// read-only.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// CreateIndex builds (or rebuilds) a hash index on the named column.
func (t *Table) CreateIndex(col string) error {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("rel: table %s has no column %q", t.Name, col)
	}
	idx := &hashIndex{col: ci}
	switch t.Schema[ci].Type {
	case TInt:
		idx.ints = make(map[int64][]int32)
	case TString:
		idx.strs = make(map[string][]int32)
	default:
		return fmt.Errorf("rel: cannot index column %q of type %v", col, t.Schema[ci].Type)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.rows {
		idx.add(r, int32(i))
	}
	t.indexes[strings.ToLower(col)] = idx
	return nil
}

// HasIndex reports whether the column has a hash index.
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(col)]
	return ok
}

// lookup returns the matching row ids for col = v, and whether an index
// was available.
func (t *Table) lookup(col string, v Value) ([]int32, bool) {
	idx := t.indexFor(col)
	if idx == nil {
		return nil, false
	}
	return idx.lookupVal(v), true
}

// indexFor resolves the hash index on col once, so probe loops can
// look values up without re-resolving (and lower-casing) the column
// name per probed row. Returns nil when the column is not indexed.
// The returned index must only be read while writers are excluded
// (the store-level lock does this for the query pipeline).
func (t *Table) indexFor(col string) *hashIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[strings.ToLower(col)]
}

// lookupVal returns the row ids matching v under join key semantics:
// an integral float probes an int index (1 joins 1.0), any other type
// mismatch matches nothing.
func (x *hashIndex) lookupVal(v Value) []int32 {
	switch {
	case x.ints != nil:
		switch v.K {
		case KindInt:
			return x.ints[v.I]
		case KindFloat:
			if v.F == float64(int64(v.F)) {
				return x.ints[int64(v.F)]
			}
		}
	case x.strs != nil:
		if v.K == KindString {
			return x.strs[v.S]
		}
	}
	return nil
}

func (x *hashIndex) add(r Row, id int32) {
	v := r[x.col]
	switch {
	case x.ints != nil:
		if v.K == KindInt {
			x.ints[v.I] = append(x.ints[v.I], id)
		}
	case x.strs != nil:
		if v.K == KindString {
			x.strs[v.S] = append(x.strs[v.S], id)
		}
	}
}

// EstimateBytes approximates the on-disk footprint of the table, used by
// the NULL-storage experiment (§2.3). NULLs cost one bit (null bitmap /
// value compression, as DB2 and Postgres do); ints cost 8, floats 8,
// strings their length plus 4.
func (t *Table) EstimateBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total, nulls int64
	for _, r := range t.rows {
		total += 8 // row header
		for _, v := range r {
			switch v.K {
			case KindNull:
				nulls++ // one bit in the null bitmap
			case KindInt, KindFloat:
				total += 8
			case KindString:
				total += int64(len(v.S)) + 4
			default:
				total++
			}
		}
	}
	return total + (nulls+7)/8
}

// DB is a named collection of tables plus the scalar-function registry
// used by generated SQL (e.g. dictionary decoding for FILTERs).
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	funcs  map[string]Func
}

// Func is a scalar SQL function.
type Func func(args []Value) (Value, error)

// NewDB returns an empty database with the built-in functions
// registered (COALESCE is handled in the expression evaluator).
func NewDB() *DB {
	db := &DB{tables: make(map[string]*Table), funcs: make(map[string]Func)}
	registerBuiltins(db)
	return db
}

// CreateTable creates and registers a new table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("rel: table %q already exists", name)
	}
	t := NewTable(name, schema)
	db.tables[key] = t
	return t, nil
}

// DropTable removes a table if present.
func (db *DB) DropTable(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, strings.ToLower(name))
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames lists all tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// RegisterFunc registers (or replaces) a scalar function.
func (db *DB) RegisterFunc(name string, f Func) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.funcs[strings.ToLower(name)] = f
}

// function resolves a scalar function by name.
func (db *DB) function(name string) (Func, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f, ok := db.funcs[strings.ToLower(name)]
	return f, ok
}

func registerBuiltins(db *DB) {
	db.RegisterFunc("abs", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, fmt.Errorf("abs: want 1 arg")
		}
		v := args[0]
		switch v.K {
		case KindInt:
			if v.I < 0 {
				return Int(-v.I), nil
			}
			return v, nil
		case KindFloat:
			if v.F < 0 {
				return Float(-v.F), nil
			}
			return v, nil
		case KindNull:
			return Null, nil
		}
		return Null, fmt.Errorf("abs: non-numeric argument")
	})
	db.RegisterFunc("length", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, fmt.Errorf("length: want 1 arg")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Int(int64(len(args[0].S))), nil
	})
	db.RegisterFunc("lower", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, fmt.Errorf("lower: want 1 arg")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Str(strings.ToLower(args[0].S)), nil
	})
	db.RegisterFunc("contains", func(args []Value) (Value, error) {
		if len(args) != 2 {
			return Null, fmt.Errorf("contains: want 2 args")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null, nil
		}
		return Bool(strings.Contains(args[0].S, args[1].S)), nil
	})
}
