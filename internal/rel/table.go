package rel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// ColumnType is the declared type of a table column.
type ColumnType uint8

const (
	// TInt is a 64-bit integer column (dictionary-encoded ids in all
	// the RDF schemas).
	TInt ColumnType = iota
	// TString is a string column.
	TString
	// TFloat is a float column.
	TFloat
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColumnType
}

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the position of the named column, or -1. This is
// the slow path (linear scan); hot callers resolve through the table's
// cached map (Table.ColumnIndex).
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Storage selects a table's backing layout.
type Storage uint8

const (
	// StorageColumnar stores one typed vector per column with null
	// bitmaps and zone maps (see column.go). The default.
	StorageColumnar Storage = iota
	// StorageRows stores []Row — the legacy layout, kept for the
	// columnar/row equivalence tests and as a fallback.
	StorageRows
)

// defaultStorage holds the Storage value new tables adopt.
var defaultStorage atomic.Uint32

// SetDefaultStorage selects the layout used by tables created after
// the call. Existing tables keep their layout. Used by the
// storage-equivalence tests to build a row-layout store next to a
// columnar one.
func SetDefaultStorage(s Storage) { defaultStorage.Store(uint32(s)) }

// DefaultStorage reports the layout new tables will use.
func DefaultStorage() Storage { return Storage(defaultStorage.Load()) }

// hashIndex is an equality index on one column. Numeric indexes key
// ints exactly and floats under join-key semantics: an integral float
// lands in (and probes) the int map — 1 joins 1.0 — and non-integral
// floats are keyed by canonicalized bit pattern. The posting maps are
// layered copy-on-write structures (see cowmap.go) so a published
// snapshot keeps a stable sealed view while the live index mutates.
type hashIndex struct {
	col    int
	ints   *postMap[int64]
	floats *postMap[uint64] // non-integral floats by bit pattern
	strs   *postMap[string]
}

// newHashIndex allocates an empty index on column ci of type typ.
func newHashIndex(ci int, typ ColumnType) *hashIndex {
	idx := &hashIndex{col: ci}
	switch typ {
	case TInt, TFloat:
		idx.ints = &postMap[int64]{}
		idx.floats = &postMap[uint64]{}
	default:
		idx.strs = &postMap[string]{}
	}
	return idx
}

// seal closes the index's dirty generation and returns the immutable
// copy for a published snapshot. Caller holds the table write lock.
func (x *hashIndex) seal() *hashIndex {
	s := &hashIndex{col: x.col}
	if x.ints != nil {
		p := x.ints.seal()
		s.ints = &p
	}
	if x.floats != nil {
		p := x.floats.seal()
		s.floats = &p
	}
	if x.strs != nil {
		p := x.strs.seal()
		s.strs = &p
	}
	return s
}

// Table is an in-memory relation with optional hash indexes.
// Concurrent readers are safe once loading has finished; writes take an
// exclusive lock. Publish freezes the current contents into an
// immutable snapshot table that shares all chunk data; from then on
// writers copy any shared chunk, bitmap or slice directory before
// mutating it (generation stamps wgen/sgen/tombGen/rowsGen track
// ownership), so snapshots never observe a mutation.
type Table struct {
	Name   string
	Schema Schema

	mu      sync.RWMutex
	storage Storage
	nrows   int
	cols    []*colVec // columnar layout
	rows    []Row     // row layout
	tomb    []*tombChunk // per-chunk tombstone bitmaps; nil entry = no deletes (see tombstone.go)
	dead    int          // total tombstoned rows
	indexes map[string]*hashIndex // by lower-cased column name
	colIdx  map[string]int        // lower-cased column name → position

	wgen        uint64 // writer generation: bumped by Publish; 0 = never published
	tombGen     uint64 // generation that owns the tomb slice
	rowsGen     uint64 // generation that owns the rows slice (row layout)
	compactions int64  // chunks compacted at publish time (metrics)
}

// NewTable creates an empty table using the current default storage
// layout. The column-name cache is built here once; Schema is
// immutable after table creation (there is no ALTER TABLE), so the
// cache can never go stale.
func NewTable(name string, schema Schema) *Table {
	t := &Table{
		Name:    name,
		Schema:  schema,
		storage: DefaultStorage(),
		indexes: make(map[string]*hashIndex),
		colIdx:  make(map[string]int, len(schema)),
	}
	for i, c := range schema {
		t.colIdx[strings.ToLower(c.Name)] = i
	}
	if t.storage == StorageColumnar {
		t.cols = make([]*colVec, len(schema))
		for i, c := range schema {
			t.cols[i] = &colVec{typ: c.Type}
		}
	}
	return t
}

// ColumnIndex returns the position of the named column, or -1, via the
// map built at table creation — O(1) instead of Schema.ColumnIndex's
// O(columns) scan, which matters on DPH/RPH tables with 2k+2 columns.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Columnar reports whether the table uses the columnar layout.
func (t *Table) Columnar() bool { return t.storage == StorageColumnar }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nrows
}

// Insert appends a row; it must match the schema width.
func (t *Table) Insert(r Row) error {
	_, err := t.AppendRow(r)
	return err
}

// AppendRow appends a row and returns its index. The index is assigned
// under the table lock, so concurrent appenders each learn the true
// position of their row (Insert alone would leave Len() racy).
func (t *Table) AppendRow(r Row) (int, error) {
	if len(r) != len(t.Schema) {
		return 0, fmt.Errorf("rel: table %s: row width %d != schema width %d", t.Name, len(r), len(t.Schema))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nrows
	if t.storage == StorageColumnar {
		for j, col := range t.cols {
			col.appendVal(t.wgen, id, r[j])
		}
	} else {
		t.rows = append(t.rows, r)
	}
	t.nrows++
	for _, idx := range t.indexes {
		idx.add(r[idx.col], int32(id))
	}
	return id, nil
}

// AppendRows appends a batch of rows under one lock acquisition and
// returns the index of the first; row i of the batch lands at index
// base+i. Used by the bulk loader to amortize locking and index
// maintenance across a whole batch. Under the columnar layout the
// batch is written column-wise, one vector at a time.
func (t *Table) AppendRows(rs []Row) (int, error) {
	for _, r := range rs {
		if len(r) != len(t.Schema) {
			return 0, fmt.Errorf("rel: table %s: row width %d != schema width %d", t.Name, len(r), len(t.Schema))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := t.nrows
	if t.storage == StorageColumnar {
		for j, col := range t.cols {
			for i, r := range rs {
				col.appendVal(t.wgen, base+i, r[j])
			}
		}
	} else {
		t.rows = append(t.rows, rs...)
	}
	t.nrows += len(rs)
	for i, r := range rs {
		for _, idx := range t.indexes {
			idx.add(r[idx.col], int32(base+i))
		}
	}
	return base, nil
}

// UpdateRow replaces row i in place (used for filling predicate columns
// of an existing entity row during RDF loading). Indexed columns must
// not change value unless reindexed by the caller.
func (t *Table) UpdateRow(i int, r Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= t.nrows {
		return fmt.Errorf("rel: table %s: row %d out of range", t.Name, i)
	}
	if len(r) != len(t.Schema) {
		return fmt.Errorf("rel: table %s: row width %d != schema width %d", t.Name, len(r), len(t.Schema))
	}
	if t.storage == StorageColumnar {
		for j, col := range t.cols {
			col.set(t.wgen, i, r[j])
		}
		return nil
	}
	t.mutableRowsLocked()
	t.rows[i] = r
	return nil
}

// mutableRowsLocked makes the rows slice writable in the current
// generation: published snapshots capture it len-capped, so appends
// are invisible to them but slot stores must copy the directory first.
func (t *Table) mutableRowsLocked() {
	if t.rowsGen != t.wgen {
		t.rows = append([]Row(nil), t.rows...)
		t.rowsGen = t.wgen
	}
}

// CellAt returns the value at (row i, column j). Cheaper than RowAt
// when only a few cells of a wide row are needed — on a columnar
// table it reads one vector instead of materializing 2k+2 columns.
func (t *Table) CellAt(i, j int) Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.storage == StorageColumnar {
		return t.cols[j].get(i)
	}
	return t.rows[i][j]
}

// SetCell updates the single cell (row i, column j). On the row layout
// the row is copied before mutation, because query results may alias
// table rows; the columnar layout mutates the vector in place (readers
// always materialize copies). Indexed columns must not change value
// unless reindexed by the caller.
func (t *Table) SetCell(i, j int, v Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= t.nrows {
		return fmt.Errorf("rel: table %s: row %d out of range", t.Name, i)
	}
	if j < 0 || j >= len(t.Schema) {
		return fmt.Errorf("rel: table %s: column %d out of range", t.Name, j)
	}
	if t.storage == StorageColumnar {
		t.cols[j].set(t.wgen, i, v)
		return nil
	}
	r := make(Row, len(t.rows[i]))
	copy(r, t.rows[i])
	r[j] = v
	t.mutableRowsLocked()
	t.rows[i] = r
	return nil
}

// RowAt returns row i. The returned slice must not be modified. On a
// columnar table this materializes a fresh row; prefer CellAt when
// only a few columns are needed.
func (t *Table) RowAt(i int) Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.storage == StorageRows {
		return t.rows[i]
	}
	r := make(Row, len(t.cols))
	for j, col := range t.cols {
		r[j] = col.get(i)
	}
	return r
}

// Rows returns every live row. Under the row layout with no deletes
// this is the backing slice and must be treated as read-only; with
// deletes it is a filtered copy. Under the columnar layout it
// materializes the whole table (the executor's scan paths read the
// vectors directly instead — see vecscan.go).
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.storage == StorageRows {
		if t.dead == 0 {
			return t.rows
		}
		out := make([]Row, 0, t.nrows-t.dead)
		for i, r := range t.rows {
			if !t.deadLocked(i) {
				out = append(out, r)
			}
		}
		return out
	}
	rows := t.materializeAllLocked()
	if t.dead == 0 {
		return rows
	}
	kept := rows[:0]
	for i, r := range rows {
		if !t.deadLocked(i) {
			kept = append(kept, r)
		}
	}
	return kept
}

func (t *Table) materializeAllLocked() []Row {
	n := t.nrows
	width := len(t.cols)
	out := make([]Row, n)
	if n == 0 {
		return out
	}
	block := make([]Value, n*width) // zero Value is Null
	for i := range out {
		out[i] = block[i*width : (i+1)*width : (i+1)*width]
	}
	nchunks := (n + chunkRows - 1) >> chunkShift
	for ci := 0; ci < nchunks; ci++ {
		lo := ci << chunkShift
		hi := lo + chunkRows
		if hi > n {
			hi = n
		}
		seg := out[lo:hi]
		for j, col := range t.cols {
			col.gatherChunk(ci, seg, j)
		}
	}
	return out
}

// reader returns a snapshot for repeated point reads (index probes).
// For a columnar table rowAt fills a single scratch buffer, so the
// returned row is valid only until the next rowAt call and must be
// copied (rowArena.combine does) before being retained. One reader
// belongs to exactly one goroutine.
func (t *Table) reader() *tableReader {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.storage == StorageRows {
		return &tableReader{rows: t.rows}
	}
	return &tableReader{columnar: true, cols: t.cols, buf: make(Row, len(t.cols))}
}

type tableReader struct {
	columnar bool
	rows     []Row
	cols     []*colVec
	buf      Row
}

// rowAt returns row i; see Table.reader for the aliasing contract.
func (rd *tableReader) rowAt(i int) Row {
	if !rd.columnar {
		return rd.rows[i]
	}
	// Hot path for index probes over wide sparse tables: compute the
	// chunk coordinates once, and settle absent cells (nil chunk or
	// cleared presence bit — the common case for DPH/RPH predicate
	// columns) without the call into colVec.get.
	ci, off := i>>chunkShift, i&chunkMask
	word, bit := uint(off)>>6, uint64(1)<<(uint(off)&63)
	for j, c := range rd.cols {
		var ck *colChunk
		if ci < len(c.chunks) {
			ck = c.chunks[ci]
		}
		if ck == nil || ck.bits[word]&bit == 0 {
			rd.buf[j] = Null
			continue
		}
		if ck.exc == nil && c.typ == TInt {
			rd.buf[j] = Int(ck.intAt(ck.rank(off)))
			continue
		}
		rd.buf[j] = c.get(i)
	}
	return rd.buf
}

// shared reports whether rowAt returns long-lived rows (row layout)
// as opposed to a reused scratch buffer.
func (rd *tableReader) shared() bool { return !rd.columnar }

// CreateIndex builds (or rebuilds) a hash index on the named column.
func (t *Table) CreateIndex(col string) error {
	ci := t.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("rel: table %s has no column %q", t.Name, col)
	}
	switch t.Schema[ci].Type {
	case TInt, TFloat, TString:
	default:
		return fmt.Errorf("rel: cannot index column %q of type %v", col, t.Schema[ci].Type)
	}
	idx := newHashIndex(ci, t.Schema[ci].Type)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.storage == StorageColumnar {
		v := t.cols[ci]
		for i := 0; i < t.nrows; i++ {
			if t.deadLocked(i) {
				continue
			}
			idx.add(v.get(i), int32(i))
		}
	} else {
		for i, r := range t.rows {
			if t.deadLocked(i) {
				continue
			}
			idx.add(r[ci], int32(i))
		}
	}
	t.indexes[strings.ToLower(col)] = idx
	return nil
}

// HasIndex reports whether the column has a hash index.
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(col)]
	return ok
}

// lookup returns the matching row ids for col = v, and whether an index
// was available.
func (t *Table) lookup(col string, v Value) ([]int32, bool) {
	idx := t.indexFor(col)
	if idx == nil {
		return nil, false
	}
	return idx.lookupVal(v), true
}

// indexFor resolves the hash index on col once, so probe loops can
// look values up without re-resolving (and lower-casing) the column
// name per probed row. Returns nil when the column is not indexed.
// On a published snapshot table the returned index is a sealed,
// immutable copy and needs no further synchronization; on a live
// table it must only be read while writers are excluded (the store
// write lock covers the writer-context query pipeline).
func (t *Table) indexFor(col string) *hashIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[strings.ToLower(col)]
}

// lookupVal returns the row ids matching v under join key semantics:
// an integral float probes the int map (1 joins 1.0), a non-integral
// float probes the bit-pattern map, any other type mismatch matches
// nothing.
func (x *hashIndex) lookupVal(v Value) []int32 {
	switch {
	case x.ints != nil:
		switch v.K {
		case KindInt:
			return x.ints.find(v.I)
		case KindFloat:
			if v.F == float64(int64(v.F)) {
				return x.ints.find(int64(v.F))
			}
			if x.floats != nil {
				return x.floats.find(floatBitsKey(v.F))
			}
		}
	case x.strs != nil:
		if v.K == KindString {
			return x.strs.find(v.S)
		}
	}
	return nil
}

// add indexes value v at row id. Numeric values are classed the same
// way lookupVal probes them, so a float stored in an indexed int
// column is found by both `col = 1` and `col = 1.0`.
func (x *hashIndex) add(v Value, id int32) {
	switch {
	case x.ints != nil:
		switch v.K {
		case KindInt:
			x.ints.add(v.I, id)
		case KindFloat:
			if v.F == float64(int64(v.F)) {
				x.ints.add(int64(v.F), id)
			} else if x.floats != nil {
				x.floats.add(floatBitsKey(v.F), id)
			}
		}
	case x.strs != nil:
		if v.K == KindString {
			x.strs.add(v.S, id)
		}
	}
}

// EstimateBytes approximates the on-disk footprint of the table, used by
// the NULL-storage experiment (§2.3). NULLs cost one bit (null bitmap /
// value compression, as DB2 and Postgres do); ints cost 8, floats 8,
// strings their length plus 4. Both storage layouts report identical
// estimates for identical logical content.
func (t *Table) EstimateBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.storage == StorageColumnar {
		return t.estimateColumnarLocked()
	}
	var total, nulls int64
	for _, r := range t.rows {
		total += 8 // row header
		for _, v := range r {
			switch v.K {
			case KindNull:
				nulls++ // one bit in the null bitmap
			case KindInt, KindFloat:
				total += 8
			case KindString:
				total += int64(len(v.S)) + 4
			default:
				total++
			}
		}
	}
	return total + (nulls+7)/8
}

func (t *Table) estimateColumnarLocked() int64 {
	total := int64(t.nrows) * 8 // row headers
	var nulls int64
	for _, col := range t.cols {
		present := 0
		for ci := range col.chunks {
			ck := col.chunks[ci]
			if ck == nil {
				continue
			}
			present += ck.n
			switch col.typ {
			case TInt, TFloat:
				// By logical value count, not physical slice length:
				// the estimate must be identical across raw and
				// sealed/bit-packed layouts (it models the row count,
				// not the encoding).
				total += int64(ck.n) * 8
			default:
				for _, s := range ck.strs {
					total += int64(len(s)) + 4
				}
			}
			// Exception values were counted as placeholders of the
			// column type above; re-count them by their actual kind.
			for _, ev := range ck.exc {
				switch col.typ {
				case TInt, TFloat:
					total -= 8
				default:
					total -= 4
				}
				switch ev.K {
				case KindInt, KindFloat:
					total += 8
				case KindString:
					total += int64(len(ev.S)) + 4
				default:
					total++
				}
			}
		}
		nulls += int64(t.nrows - present)
	}
	return total + (nulls+7)/8
}

// ResidentBytes reports the actual in-process memory footprint of the
// table's data (excluding indexes, which are layout-independent):
// slice headers, Value structs and string contents for the row layout;
// chunk directories, bitmaps, packed vectors and exception maps for
// the columnar layout. This is the number behind the
// table_resident_bytes benchmark metric.
func (t *Table) ResidentBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	const (
		sliceHeader = 24
		stringHeader = 16
		mapEntry    = 64 // rough per-entry cost of a small map
	)
	if t.storage == StorageRows {
		total := int64(sliceHeader) + int64(cap(t.rows))*sliceHeader
		for _, r := range t.rows {
			total += int64(cap(r)) * valueBytes
			for _, v := range r {
				if v.K == KindString {
					total += int64(len(v.S))
				}
			}
		}
		return total
	}
	chunkFixed := int64(unsafe.Sizeof(colChunk{}))
	var total int64
	for _, col := range t.cols {
		total += int64(unsafe.Sizeof(colVec{})) + int64(cap(col.chunks))*8
		for _, ck := range col.chunks {
			if ck == nil {
				continue
			}
			total += chunkFixed
			if ck.bits != denseBits {
				total += chunkWords * 8
			}
			total += int64(cap(ck.ints))*8 + int64(cap(ck.floats))*8
			total += int64(cap(ck.packed)) * 8
			total += int64(cap(ck.strs)) * stringHeader
			for _, s := range ck.strs {
				total += int64(len(s))
			}
			for _, ev := range ck.exc {
				total += mapEntry
				if ev.K == KindString {
					total += int64(len(ev.S))
				}
			}
		}
	}
	return total
}

// DB is a named collection of tables plus the scalar-function registry
// used by generated SQL (e.g. dictionary decoding for FILTERs).
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	funcs  map[string]Func
}

// Func is a scalar SQL function.
type Func func(args []Value) (Value, error)

// NewDB returns an empty database with the built-in functions
// registered (COALESCE is handled in the expression evaluator).
func NewDB() *DB {
	db := &DB{tables: make(map[string]*Table), funcs: make(map[string]Func)}
	registerBuiltins(db)
	return db
}

// CreateTable creates and registers a new table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("rel: table %q already exists", name)
	}
	t := NewTable(name, schema)
	db.tables[key] = t
	return t, nil
}

// DropTable removes a table if present.
func (db *DB) DropTable(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, strings.ToLower(name))
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames lists all tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// RegisterFunc registers (or replaces) a scalar function.
func (db *DB) RegisterFunc(name string, f Func) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.funcs[strings.ToLower(name)] = f
}

// function resolves a scalar function by name.
func (db *DB) function(name string) (Func, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f, ok := db.funcs[strings.ToLower(name)]
	return f, ok
}

func registerBuiltins(db *DB) {
	db.RegisterFunc("abs", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, fmt.Errorf("abs: want 1 arg")
		}
		v := args[0]
		switch v.K {
		case KindInt:
			if v.I < 0 {
				return Int(-v.I), nil
			}
			return v, nil
		case KindFloat:
			if v.F < 0 {
				return Float(-v.F), nil
			}
			return v, nil
		case KindNull:
			return Null, nil
		}
		return Null, fmt.Errorf("abs: non-numeric argument")
	})
	db.RegisterFunc("length", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, fmt.Errorf("length: want 1 arg")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Int(int64(len(args[0].S))), nil
	})
	db.RegisterFunc("lower", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Null, fmt.Errorf("lower: want 1 arg")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Str(strings.ToLower(args[0].S)), nil
	})
	db.RegisterFunc("contains", func(args []Value) (Value, error) {
		if len(args) != 2 {
			return Null, fmt.Errorf("contains: want 2 args")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null, nil
		}
		return Bool(strings.Contains(args[0].S, args[1].S)), nil
	})
}
