// Package rel implements the relational substrate that stands in for
// IBM DB2 in this reproduction: typed in-memory tables with hash
// indexes, a SQL subset (WITH/CTEs, SELECT, comma and LEFT OUTER joins,
// UNION [ALL], CASE, COALESCE, DISTINCT, ORDER BY, LIMIT/OFFSET,
// scalar functions), and a cost-aware executor that performs filter
// pushdown, index lookups, greedy join ordering and hash joins.
//
// The paper (Bornea et al., SIGMOD 2013) treats SQL as "a procedural
// implementation language" for SPARQL plans; this package supplies the
// machine that runs that language.
package rel

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime value kinds.
type Kind uint8

const (
	// KindNull is the SQL NULL.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindString is a string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is one SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truth reports whether v counts as true in a WHERE context (SQL
// three-valued logic collapses UNKNOWN to false at the filter).
func (v Value) Truth() bool { return v.K == KindBool && v.I != 0 }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	}
	return 0, false
}

// String renders the value for debugging and result printing.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// key returns a canonical representation used for hashing (joins,
// DISTINCT, UNION dedup). NULLs hash together. String keys are
// length-prefixed so a composite key built from several key() strings
// cannot collide across column boundaries whatever bytes a literal
// contains (the hot executor paths now hash canonical forms directly —
// see hash.go — but key() remains the reference definition of key
// equality and must itself be injective).
func (v Value) key() string {
	switch v.K {
	case KindNull:
		return "\x00"
	case KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		// Integral floats hash like ints so 1 joins with 1.0.
		if v.F == float64(int64(v.F)) {
			return "i" + strconv.FormatInt(int64(v.F), 10)
		}
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "s" + strconv.Itoa(len(v.S)) + ":" + v.S
	case KindBool:
		if v.I != 0 {
			return "bt"
		}
		return "bf"
	}
	return "?"
}

// Compare orders two non-null values: -1, 0, +1. Values of different
// families order by kind (numeric < string < bool). Returns false if
// either side is NULL.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	if aNum && bNum {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
	if a.K == KindString && b.K == KindString {
		return strings.Compare(a.S, b.S), true
	}
	if a.K == KindBool && b.K == KindBool {
		switch {
		case a.I < b.I:
			return -1, true
		case a.I > b.I:
			return 1, true
		}
		return 0, true
	}
	ra, rb := kindRank(a.K), kindRank(b.K)
	switch {
	case ra < rb:
		return -1, true
	case ra > rb:
		return 1, true
	}
	return 0, true
}

func kindRank(k Kind) int {
	switch k {
	case KindInt, KindFloat:
		return 0
	case KindString:
		return 1
	case KindBool:
		return 2
	}
	return 3
}

// Equal reports whether two values compare equal under join semantics
// (NULL never equals anything).
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Row is one tuple.
type Row []Value
