package rel

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Columnar snapshot serialization (DESIGN.md §9). A table's chunked
// column vectors are already a near-ideal on-disk format: EncodeSnapshot
// emits the presence bitmaps, rank-packed value slices, zone maps,
// exception maps and tombstone bitmaps directly, and DecodeSnapshot
// rebuilds them into an empty table. Integers are varint-encoded (the
// RDF schemas store dictionary ids, which are small), floats are fixed
// 8 bytes, strings length-prefixed.
//
// Dead-cell reclamation: rows tombstoned since the last compaction may
// still hold their cell values in the packed vectors ("dirty" dead
// cells). The encoder masks them out — the emitted presence bitmaps
// clear every tombstoned row's bit, the dead values are dropped from
// the packed slices and exception maps, and the int zone maps are
// recomputed over the surviving values — while the tombstone bitmaps
// themselves are preserved so physical row indices stay stable and a
// cleared cell never resurfaces as a live NULL. A decoded table is
// therefore equivalent to the source table with every chunk fully
// compacted, and delete-heavy snapshots shrink accordingly.
//
// Chunk payloads are marker-tagged (chunkAbsent..chunkDensePacked): a
// sealed bit-packed int chunk with no dead cells writes its packed
// words verbatim (no per-value varint work on either side, and the
// decoder rebuilds the sealed form directly), a fully dense presence
// bitmap is elided entirely (the decoder shares the global denseBits),
// and everything else falls back to the raw bitmap+values layout.
//
// The format carries no checksums of its own: the store-level snapshot
// file wraps every table section in a whole-file CRC32C, so the
// decoder's bounds checks only need to guarantee that arbitrary bytes
// never panic or over-allocate, not that corruption goes undetected.

// Chunk payload markers.
const (
	chunkAbsent      = 0 // nil / all-NULL / fully dead chunk
	chunkRaw         = 1 // presence bitmap + raw values
	chunkDenseRaw    = 2 // dense (bitmap elided) + raw values
	chunkPacked      = 3 // presence bitmap + FoR bit-packed ints
	chunkDensePacked = 4 // dense + FoR bit-packed ints
)

// EncodeSnapshot appends the table's serialized contents to buf and
// returns the extended slice. The table must use the columnar layout.
// It is intended for frozen (published) tables but takes the read lock
// so it is safe on any table with no concurrent writers.
func (t *Table) EncodeSnapshot(buf []byte) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.storage != StorageColumnar {
		return nil, fmt.Errorf("rel: table %s: snapshot serialization requires the columnar layout", t.Name)
	}
	buf = binary.AppendUvarint(buf, uint64(t.nrows))
	buf = binary.AppendUvarint(buf, uint64(len(t.cols)))
	// Tombstone bitmaps (bits only; counts are recomputed on decode).
	buf = binary.AppendUvarint(buf, uint64(len(t.tomb)))
	for _, tc := range t.tomb {
		if tc == nil || tc.dead == 0 {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		for _, w := range tc.bits {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	for _, col := range t.cols {
		buf = binary.AppendUvarint(buf, uint64(len(col.chunks)))
		for ci, ck := range col.chunks {
			buf = t.encodeChunkLocked(buf, col, ck, ci)
		}
	}
	return buf, nil
}

// encodeChunkLocked emits one column chunk with the chunk's tombstoned
// cells masked out.
func (t *Table) encodeChunkLocked(buf []byte, col *colVec, ck *colChunk, ci int) []byte {
	if ck == nil || ck.n == 0 {
		return append(buf, 0)
	}
	var tombBits *[chunkWords]uint64
	if ci < len(t.tomb) && t.tomb[ci] != nil && t.tomb[ci].dead > 0 {
		tombBits = &t.tomb[ci].bits
	}
	var clean [chunkWords]uint64
	live := 0
	for w := range ck.bits {
		clean[w] = ck.bits[w]
		if tombBits != nil {
			clean[w] &^= tombBits[w]
		}
		live += bits.OnesCount64(clean[w])
	}
	if live == 0 {
		return append(buf, 0) // every present cell was dead: all-NULL chunk
	}
	dense := live == chunkRows
	// A bit-packed chunk with no dead cells round-trips verbatim: the
	// packed words are copied as-is and the decoder rebuilds the same
	// sealed chunk, so neither side pays per-value varint work.
	if ck.packed != nil && live == ck.n {
		if dense {
			buf = append(buf, chunkDensePacked)
		} else {
			buf = append(buf, chunkPacked)
			for _, w := range clean {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		}
		buf = binary.AppendVarint(buf, ck.ref)
		buf = append(buf, ck.packedW)
		buf = binary.AppendUvarint(buf, uint64(len(ck.packed)))
		for _, w := range ck.packed {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		z := byte(0)
		if ck.zoneInit {
			z = 1
		}
		buf = append(buf, z)
		buf = binary.AppendVarint(buf, ck.min)
		buf = binary.AppendVarint(buf, ck.max)
		excOut := make([]uint16, 0, len(ck.exc))
		for off := range ck.exc {
			excOut = append(excOut, off)
		}
		sort.Slice(excOut, func(i, j int) bool { return excOut[i] < excOut[j] })
		buf = binary.AppendUvarint(buf, uint64(len(excOut)))
		for _, off := range excOut {
			buf = binary.AppendUvarint(buf, uint64(off))
			buf = appendValue(buf, ck.exc[off])
		}
		return buf
	}
	if dense {
		buf = append(buf, chunkDenseRaw)
	} else {
		buf = append(buf, chunkRaw)
		for _, w := range clean {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	// Walk the ORIGINAL presence bits in order, advancing the packed
	// cursor, and emit only surviving cells. Zone bounds are recomputed
	// over the emitted packed values (exception placeholders included —
	// loose but sound, matching compactChunkLocked).
	var zmin, zmax int64
	zoneInit := false
	var excOut []uint16
	k := 0
	for w := 0; w < chunkWords; w++ {
		word := ck.bits[w]
		for word != 0 {
			off := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := k
			k++
			if tombBits != nil && tombBits[off>>6]>>(uint(off)&63)&1 == 1 {
				continue
			}
			isExc := false
			if ck.exc != nil {
				_, isExc = ck.exc[uint16(off)]
			}
			if isExc {
				excOut = append(excOut, uint16(off))
			}
			switch col.typ {
			case TInt:
				x := ck.intAt(r)
				buf = binary.AppendVarint(buf, x)
				if !zoneInit {
					zmin, zmax, zoneInit = x, x, true
				} else if x < zmin {
					zmin = x
				} else if x > zmax {
					zmax = x
				}
			case TFloat:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ck.floats[r]))
			default:
				s := ck.strs[r]
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
		}
	}
	if col.typ == TInt {
		z := byte(0)
		if zoneInit {
			z = 1
		}
		buf = append(buf, z)
		buf = binary.AppendVarint(buf, zmin)
		buf = binary.AppendVarint(buf, zmax)
	}
	buf = binary.AppendUvarint(buf, uint64(len(excOut)))
	for _, off := range excOut {
		buf = binary.AppendUvarint(buf, uint64(off))
		buf = appendValue(buf, ck.exc[off])
	}
	return buf
}

func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case KindInt:
		buf = binary.AppendVarint(buf, v.I)
	case KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	case KindBool:
		b := byte(0)
		if v.I != 0 {
			b = 1
		}
		buf = append(buf, b)
	}
	return buf
}

// cursor is a bounds-checked decoder over a byte slice. Every read
// records the first error and subsequently yields zero values, so
// decode loops stay panic-free on arbitrary input.
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

func (c *cursor) u8() byte {
	if c.err != nil || c.off >= len(c.data) {
		c.fail("rel: snapshot decode: truncated input")
		return 0
	}
	b := c.data[c.off]
	c.off++
	return b
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil || n < 0 || n > c.remaining() {
		c.fail("rel: snapshot decode: truncated input")
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.fail("rel: snapshot decode: bad uvarint")
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		c.fail("rel: snapshot decode: bad varint")
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// DecodeSnapshot rebuilds the table's contents from data produced by
// EncodeSnapshot. The table must be empty, columnar, and have the same
// schema width as the encoder's. Indexes are not rebuilt; callers
// re-run CreateIndex afterwards. Arbitrary (corrupt) input yields an
// error, never a panic; on error the table is reset to empty.
func (t *Table) DecodeSnapshot(data []byte) error {
	t.mu.Lock()
	if t.storage != StorageColumnar {
		t.mu.Unlock()
		return fmt.Errorf("rel: table %s: snapshot decode requires the columnar layout", t.Name)
	}
	if t.nrows != 0 {
		t.mu.Unlock()
		return fmt.Errorf("rel: table %s: snapshot decode into non-empty table", t.Name)
	}
	err := t.decodeSnapshotLocked(data)
	t.mu.Unlock()
	if err != nil {
		t.Clear()
		return err
	}
	return nil
}

func (t *Table) decodeSnapshotLocked(data []byte) error {
	c := &cursor{data: data}
	nrows := c.uvarint()
	ncols := c.uvarint()
	if c.err != nil {
		return c.err
	}
	if ncols != uint64(len(t.Schema)) {
		return fmt.Errorf("rel: table %s: snapshot has %d columns, schema has %d", t.Name, ncols, len(t.Schema))
	}
	maxChunks := (nrows + chunkMask) >> chunkShift
	// Each encoded chunk consumes at least one byte, so a valid chunk
	// count can never exceed the remaining input. This bounds every
	// allocation below by the input size.
	ntomb := c.uvarint()
	if ntomb > maxChunks || ntomb > uint64(c.remaining()) {
		return fmt.Errorf("rel: table %s: bad tombstone chunk count %d", t.Name, ntomb)
	}
	var tomb []*tombChunk
	dead := 0
	for i := uint64(0); i < ntomb && c.err == nil; i++ {
		if c.u8() == 0 {
			tomb = append(tomb, nil)
			continue
		}
		tc := &tombChunk{}
		for w := 0; w < chunkWords; w++ {
			tc.bits[w] = c.u64()
			tc.dead += bits.OnesCount64(tc.bits[w])
		}
		dead += tc.dead
		tomb = append(tomb, tc)
	}
	cols := make([]*colVec, len(t.Schema))
	for j := range t.Schema {
		v := &colVec{typ: t.Schema[j].Type}
		nchunks := c.uvarint()
		if nchunks > maxChunks || nchunks > uint64(c.remaining()) {
			return fmt.Errorf("rel: table %s: bad chunk count %d", t.Name, nchunks)
		}
		for ci := uint64(0); ci < nchunks && c.err == nil; ci++ {
			ck, nexc, err := decodeChunk(c, v.typ)
			if err != nil {
				return err
			}
			v.excCount += nexc
			v.chunks = append(v.chunks, ck)
		}
		if c.err != nil {
			return c.err
		}
		cols[j] = v
	}
	if c.err != nil {
		return c.err
	}
	if c.remaining() != 0 {
		return fmt.Errorf("rel: table %s: %d trailing bytes after snapshot", t.Name, c.remaining())
	}
	if dead > int(nrows) {
		return fmt.Errorf("rel: table %s: %d tombstoned rows exceed %d total", t.Name, dead, nrows)
	}
	t.nrows = int(nrows)
	t.cols = cols
	t.tomb = tomb
	t.dead = dead
	return nil
}

func decodeChunk(c *cursor, typ ColumnType) (*colChunk, int, error) {
	marker := c.u8()
	if marker == chunkAbsent {
		return nil, 0, c.err
	}
	if marker > chunkDensePacked {
		c.fail("rel: snapshot decode: bad chunk marker %d", marker)
		return nil, 0, c.err
	}
	dense := marker == chunkDenseRaw || marker == chunkDensePacked
	packed := marker == chunkPacked || marker == chunkDensePacked
	ck := &colChunk{}
	if dense {
		// Sharing the global all-ones bitmap requires immutability:
		// sealed makes the first writer mutation clone the chunk
		// (mutableChunk), exactly as for a publish-sealed chunk.
		ck.bits = denseBits
		ck.n = chunkRows
		ck.sealed = true
	} else {
		ck.bits = newBits()
		for w := 0; w < chunkWords; w++ {
			ck.bits[w] = c.u64()
			ck.n += bits.OnesCount64(ck.bits[w])
		}
	}
	if c.err != nil {
		return nil, 0, c.err
	}
	switch {
	case packed:
		if typ != TInt {
			c.fail("rel: snapshot decode: packed chunk in non-int column")
			return nil, 0, c.err
		}
		ck.sealed = true
		ck.ref = c.varint()
		w := uint(c.u8())
		nwords := c.uvarint()
		// The word count is fully determined by n and w, which bounds
		// the allocation at chunkRows words.
		if w > maxPackWidth {
			c.fail("rel: snapshot decode: bad packed chunk (width %d, %d words)", w, nwords)
			return nil, 0, c.err
		}
		if nwords != uint64(packWords(ck.n, w)) {
			c.fail("rel: snapshot decode: bad packed chunk (width %d, %d words)", w, nwords)
			return nil, 0, c.err
		}
		ck.packedW = uint8(w)
		ck.packed = make([]uint64, nwords)
		for i := range ck.packed {
			ck.packed[i] = c.u64()
		}
	case typ == TInt:
		ck.ints = make([]int64, ck.n)
		for k := range ck.ints {
			ck.ints[k] = c.varint()
		}
	case typ == TFloat:
		ck.floats = make([]float64, ck.n)
		for k := range ck.floats {
			ck.floats[k] = math.Float64frombits(c.u64())
		}
	default:
		ck.strs = make([]string, ck.n)
		for k := range ck.strs {
			ln := c.uvarint()
			if ln > uint64(c.remaining()) {
				c.fail("rel: snapshot decode: string length %d beyond input", ln)
				break
			}
			ck.strs[k] = string(c.bytes(int(ln)))
		}
	}
	if typ == TInt {
		ck.zoneInit = c.u8() == 1
		ck.min = c.varint()
		ck.max = c.varint()
	}
	nexc := c.uvarint()
	if nexc > uint64(ck.n) || nexc > uint64(c.remaining()) {
		c.fail("rel: snapshot decode: bad exception count %d", nexc)
	}
	for i := uint64(0); i < nexc && c.err == nil; i++ {
		off := c.uvarint()
		if off >= chunkRows {
			c.fail("rel: snapshot decode: exception offset %d out of range", off)
			break
		}
		v := decodeValue(c)
		if ck.exc == nil {
			ck.exc = make(map[uint16]Value, nexc)
		}
		ck.exc[uint16(off)] = v
	}
	if c.err != nil {
		return nil, 0, c.err
	}
	return ck, len(ck.exc), nil
}

func decodeValue(c *cursor) Value {
	switch Kind(c.u8()) {
	case KindNull:
		return Null
	case KindInt:
		return Int(c.varint())
	case KindFloat:
		return Float(math.Float64frombits(c.u64()))
	case KindString:
		ln := c.uvarint()
		if ln > uint64(c.remaining()) {
			c.fail("rel: snapshot decode: string length %d beyond input", ln)
			return Null
		}
		return Str(string(c.bytes(int(ln))))
	case KindBool:
		return Bool(c.u8() == 1)
	default:
		c.fail("rel: snapshot decode: unknown value kind")
		return Null
	}
}
