package rel

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseQuery parses one SQL statement into its AST.
func ParseQuery(sql string) (*Query, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks, src: sql}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return q, nil
}

type sqlParser struct {
	toks []token
	pos  int
	src  string
}

func (p *sqlParser) peek() token { return p.toks[p.pos] }
func (p *sqlParser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *sqlParser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *sqlParser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *sqlParser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *sqlParser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *sqlParser) isPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

func (p *sqlParser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *sqlParser) query() (*Query, error) {
	q := &Query{}
	if p.acceptKeyword("WITH") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			sel, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			q.CTEs = append(q.CTEs, CTE{Name: name, Select: sel})
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	body, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	q.Body = body
	return q, nil
}

// selectStmt parses a select with optional UNION chain and modifiers.
func (p *sqlParser) selectStmt() (*Select, error) {
	s := &Select{Limit: -1}
	core, err := p.selectCore()
	if err != nil {
		return nil, err
	}
	s.Cores = append(s.Cores, core)
	for p.acceptKeyword("UNION") {
		all := p.acceptKeyword("ALL")
		var next *SelectCore
		if p.acceptPunct("(") {
			inner, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if len(inner.Cores) != 1 || inner.OrderBy != nil || inner.Limit != -1 {
				return nil, p.errf("parenthesized UNION arms must be plain selects")
			}
			next = inner.Cores[0]
		} else {
			next, err = p.selectCore()
			if err != nil {
				return nil, err
			}
		}
		s.Cores = append(s.Cores, next)
		s.UnionAll = append(s.UnionAll, all)
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		s.Offset = n
	}
	return s, nil
}

func (p *sqlParser) intLiteral() (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected number, got %q", t.text)
	}
	p.pos++
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *sqlParser) selectCore() (*SelectCore, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	core.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.fromItem()
		if err != nil {
			return nil, err
		}
		core.From = append(core.From, fi)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	return core, nil
}

func (p *sqlParser) selectItem() (SelectItem, error) {
	// "*" or "alias.*"
	if p.isPunct("*") {
		p.pos++
		return SelectItem{Star: true}, nil
	}
	if p.peek().kind == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokPunct && p.toks[p.pos+2].text == "*" {
		alias := p.next().text
		p.pos += 2
		return SelectItem{Star: true, StarAlias: alias}, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		name, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *sqlParser) fromItem() (FromItem, error) {
	fi, err := p.fromPrimary()
	if err != nil {
		return FromItem{}, err
	}
	for {
		if p.isKeyword("LEFT") {
			p.pos++
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return FromItem{}, err
			}
			right, err := p.fromPrimary()
			if err != nil {
				return FromItem{}, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return FromItem{}, err
			}
			on, err := p.expr()
			if err != nil {
				return FromItem{}, err
			}
			fi.Joins = append(fi.Joins, JoinClause{Left: true, Right: right, On: on})
			continue
		}
		if p.isKeyword("INNER") || p.isKeyword("JOIN") {
			p.acceptKeyword("INNER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return FromItem{}, err
			}
			right, err := p.fromPrimary()
			if err != nil {
				return FromItem{}, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return FromItem{}, err
			}
			on, err := p.expr()
			if err != nil {
				return FromItem{}, err
			}
			fi.Joins = append(fi.Joins, JoinClause{Left: false, Right: right, On: on})
			continue
		}
		return fi, nil
	}
}

func (p *sqlParser) fromPrimary() (FromItem, error) {
	var fi FromItem
	if p.acceptPunct("(") {
		sel, err := p.selectStmt()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return FromItem{}, err
		}
		fi.Sub = sel
	} else {
		name, err := p.ident()
		if err != nil {
			return FromItem{}, err
		}
		fi.Table = name
	}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = alias
	} else if p.peek().kind == tokIdent {
		fi.Alias = p.next().text
	}
	if fi.Alias == "" {
		if fi.Table == "" {
			return FromItem{}, p.errf("derived table requires an alias")
		}
		fi.Alias = fi.Table
	}
	return fi, nil
}

// Expression grammar (highest binding last):
//   expr   := orExpr
//   orExpr := andExpr (OR andExpr)*
//   andExpr:= notExpr (AND notExpr)*
//   notExpr:= NOT notExpr | cmpExpr
//   cmpExpr:= addExpr (( = | != | <> | < | <= | > | >= ) addExpr
//           | IS [NOT] NULL | [NOT] IN (expr, ...))?
//   addExpr:= mulExpr (( + | - ) mulExpr)*
//   mulExpr:= unary (( * | / ) unary)*
//   unary  := - unary | primary
//   primary:= literal | CASE ... END | func(args) | colref | ( expr )

func (p *sqlParser) expr() (Expr, error) { return p.orExpr() }

func (p *sqlParser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *sqlParser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return &BinOp{Op: op, L: l, R: r}, nil
		}
	}
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: not}, nil
	}
	not := false
	if p.isKeyword("NOT") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "IN" {
		p.pos++
		not = true
	}
	if p.acceptKeyword("IN") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: l, Not: not, List: list}, nil
	}
	return l, nil
}

func (p *sqlParser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := p.next().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) unaryExpr() (Expr, error) {
	if p.acceptPunct("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "-", X: x}, nil
	}
	return p.primaryExpr()
}

func (p *sqlParser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Lit{V: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Lit{V: Int(n)}, nil
	case tokString:
		p.pos++
		return &Lit{V: Str(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &Lit{V: Null}, nil
		case "TRUE":
			p.pos++
			return &Lit{V: Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Lit{V: Bool(false)}, nil
		case "CASE":
			return p.caseExpr()
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q in expression", t.text)
	case tokIdent:
		name := p.next().text
		// function call?
		if p.isPunct("(") {
			p.pos++
			var args []Expr
			if !p.isPunct(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.acceptPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: strings.ToLower(name), Args: args}, nil
		}
		// qualified column?
		if p.isPunct(".") {
			p.pos++
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Alias: name, Column: col}, nil
		}
		return &ColRef{Column: name}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

func (p *sqlParser) caseExpr() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}
