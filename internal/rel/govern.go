package rel

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"unsafe"
)

// Query lifecycle governance. The optimizer can only bound a query's
// cost heuristically (optimal flow extraction is NP-hard, and even a
// good plan can blow up on skewed data), so the executor enforces hard
// limits at run time: cooperative cancellation and deadlines via
// context.Context, and row/memory budgets charged against shared
// atomic counters. Every long-running loop — hash-join build and
// probe, index probes, filters, projection, ORDER BY key extraction,
// DISTINCT/UNION dedup, cross products, and each morsel worker —
// checks the governance state at chunk granularity (checkpointRows
// rows), so an abort surfaces within one chunk of work, never per row.
//
// Violations are typed: ErrCanceled, ErrDeadlineExceeded, and
// *BudgetError (which errors.Is-matches ErrBudgetExceeded and reports
// which budget tripped and by how much). A panic anywhere in the
// executor — including compiled-expression closures and morsel
// workers — is recovered, converted to a *PanicError, and returned
// like any other error, leaving the process and the store usable.

// Typed governance errors. They are returned (possibly wrapped) by
// ExecContext; match with errors.Is.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = errors.New("rel: query canceled")
	// ErrDeadlineExceeded reports that the query's deadline passed.
	ErrDeadlineExceeded = errors.New("rel: query deadline exceeded")
	// ErrBudgetExceeded is the errors.Is target for *BudgetError.
	ErrBudgetExceeded = errors.New("rel: query budget exceeded")
)

// Limits bounds one query execution. The zero value means unlimited.
type Limits struct {
	// MaxRows bounds the total number of rows the executor
	// materializes across all operators of the query — intermediate
	// join/filter/projection outputs included — so a runaway join
	// trips the budget long before its result is complete.
	MaxRows int64
	// MaxBytes bounds the bytes the executor allocates for row storage
	// (rowArena blocks) and hash-table growth.
	MaxBytes int64
}

// BudgetError reports a tripped resource budget: which budget, the
// configured limit, and the usage that tripped it.
type BudgetError struct {
	Budget string // "rows" or "memory" (or "injected" from the fault harness)
	Limit  int64
	Used   int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("rel: query %s budget exceeded: used %d of %d (%d over)",
		e.Budget, e.Used, e.Limit, e.Used-e.Limit)
}

// Is makes errors.Is(err, ErrBudgetExceeded) true for budget errors.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// PanicError is a panic recovered during query execution, converted to
// an error so one bad query (or one bug in a compiled-expression
// closure) cannot take the process down.
type PanicError struct {
	V     any    // the recovered panic value
	Stack []byte // stack captured at the recovery site
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("rel: panic during query execution: %v", e.V)
}

// NewPanicError wraps a recovered panic value, capturing the stack.
// Exported for callers (package db2rdf) that contain panics in their
// own pipeline stages with the same error shape.
func NewPanicError(v any) *PanicError {
	return &PanicError{V: v, Stack: debug.Stack()}
}

// checkpointRows is the chunk granularity of governance checks: loops
// consult the shared state once per this many rows of work, keeping
// the per-row cost to a local counter increment.
const checkpointRows = 1024

// valueBytes is the memory footprint charged per Value slot in an
// arena block.
const valueBytes = int64(unsafe.Sizeof(Value{}))

// hashEntryBytes approximates the per-entry cost of growing a join
// hash table (bucket overhead plus the stored row header).
const hashEntryBytes = 48

// CheckSite names a governance checkpoint location. The fault
// injection harness (faultinject.go) keys on it so tests can force an
// abort at a specific point in the executor.
type CheckSite uint8

// Checkpoint sites.
const (
	// CkAny matches every site (fault injection only).
	CkAny CheckSite = iota
	// CkCore is the per-SELECT-core / per-CTE entry checkpoint.
	CkCore
	// CkFilter is the filter scan loop (filterRelation, indexed scans).
	CkFilter
	// CkHashBuild is the hash-join build loop.
	CkHashBuild
	// CkHashProbe is the hash-join probe loop (runs in morsel workers).
	CkHashProbe
	// CkIndexProbe is the index nested-loop probe (morsel workers).
	CkIndexProbe
	// CkJoinOn is the explicit JOIN ... ON loop.
	CkJoinOn
	// CkCross is the cross-product loop.
	CkCross
	// CkProject is the projection loop (morsel workers).
	CkProject
	// CkOrderBy is the ORDER BY key-extraction loop.
	CkOrderBy
	// CkDedup is the DISTINCT/UNION dedup loop.
	CkDedup
)

var ckNames = [...]string{"any", "core", "filter", "hash-build", "hash-probe",
	"index-probe", "join-on", "cross", "project", "order-by", "dedup"}

// String names the site.
func (s CheckSite) String() string {
	if int(s) < len(ckNames) {
		return ckNames[s]
	}
	return fmt.Sprintf("CheckSite(%d)", uint8(s))
}

// govern is the shared lifecycle state of one query execution: the
// cancellation signal and the atomic budget counters every worker
// charges against.
type govern struct {
	ctx      context.Context
	done     <-chan struct{}
	maxRows  int64
	maxBytes int64
	rows     atomic.Int64
	bytes    atomic.Int64
}

func newGovern(ctx context.Context, lim Limits) *govern {
	if ctx == nil {
		ctx = context.Background()
	}
	return &govern{ctx: ctx, done: ctx.Done(), maxRows: lim.MaxRows, maxBytes: lim.MaxBytes}
}

// check is one governance checkpoint: it consults the fault-injection
// hook, then the cancellation signal. With no fault armed and a
// Background context it is one atomic load and a nil-channel test.
func (g *govern) check(site CheckSite) error {
	if err := faultCheck(site); err != nil {
		return err
	}
	if g.done != nil {
		select {
		case <-g.done:
			if errors.Is(g.ctx.Err(), context.DeadlineExceeded) {
				return ErrDeadlineExceeded
			}
			return ErrCanceled
		default:
		}
	}
	return nil
}

// chargeRows charges n materialized rows against the row budget.
func (g *govern) chargeRows(n int64) error {
	if g.maxRows > 0 {
		if used := g.rows.Add(n); used > g.maxRows {
			return &BudgetError{Budget: "rows", Limit: g.maxRows, Used: used}
		}
	}
	return nil
}

// chargeBytes charges n allocated bytes against the memory budget.
func (g *govern) chargeBytes(n int64) error {
	if g.maxBytes > 0 {
		if used := g.bytes.Add(n); used > g.maxBytes {
			return &BudgetError{Budget: "memory", Limit: g.maxBytes, Used: used}
		}
	}
	return nil
}

// governAbort carries a governance error through call sites that have
// no error return (rowArena.alloc). It is thrown as a panic and
// converted back to its error by the nearest recovery point (a morsel
// worker or ExecContext itself) — it never escapes the executor.
type governAbort struct{ err error }

// mustChargeBytes is chargeBytes for no-error-return call sites.
func (g *govern) mustChargeBytes(n int64) {
	if err := g.chargeBytes(n); err != nil {
		panic(governAbort{err})
	}
}

// recoveredError converts a recovered panic value into the error the
// query should return: governance aborts unwrap to their typed error,
// anything else becomes a *PanicError.
func recoveredError(p any) error {
	if a, ok := p.(governAbort); ok {
		return a.err
	}
	return NewPanicError(p)
}

// ticker is a per-goroutine checkpoint counter: loops call step() per
// row of work (and emit() per output row), and every checkpointRows
// steps the accumulated row/byte charges are flushed to the shared
// budget and the cancellation signal is checked. One ticker belongs to
// exactly one goroutine.
type ticker struct {
	g       *govern
	site    CheckSite
	n       int   // steps since the last flush
	emitted int64 // output rows since the last flush
	bytes   int64 // bytes since the last flush
}

// step records one unit of work, flushing at chunk granularity.
func (t *ticker) step() error {
	if t.n++; t.n >= checkpointRows {
		return t.flush()
	}
	return nil
}

// stepN records n units of work at once (a vectorized batch),
// flushing when the accumulated count crosses a chunk boundary. Used
// by the columnar scan, which evaluates whole selection vectors
// between checkpoints instead of individual rows.
func (t *ticker) stepN(n int) error {
	if n <= 0 {
		return nil
	}
	if t.n += n; t.n >= checkpointRows {
		return t.flush()
	}
	return nil
}

// emit records one output row (and one unit of work).
func (t *ticker) emit() error {
	t.emitted++
	return t.step()
}

// emitN records n output rows (and n units of work) at once — the
// columnar scan's dense fast path emits a whole chunk per call, which
// never exceeds checkpointRows, so the checkpoint cadence is
// unchanged.
func (t *ticker) emitN(n int) error {
	if n <= 0 {
		return nil
	}
	t.emitted += int64(n)
	return t.stepN(n)
}

// addBytes records allocation to be charged at the next flush.
func (t *ticker) addBytes(n int64) { t.bytes += n }

// flush settles accumulated charges and runs one checkpoint. Loops
// call it on entry (so every operator checkpoints at least once, even
// on tiny inputs) and on exit (so budget accounting is exact at
// operator boundaries).
func (t *ticker) flush() error {
	t.n = 0
	if t.emitted > 0 {
		n := t.emitted
		t.emitted = 0
		if err := t.g.chargeRows(n); err != nil {
			return err
		}
	}
	if t.bytes > 0 {
		n := t.bytes
		t.bytes = 0
		if err := t.g.chargeBytes(n); err != nil {
			return err
		}
	}
	return t.g.check(t.site)
}
