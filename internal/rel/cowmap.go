package rel

// postMap is a layered copy-on-write posting map: the index structure
// behind hashIndex that lets a published table snapshot keep reading
// posting lists while the live table keeps mutating them.
//
// Layout: `dirty` holds the current unpublished generation's writes,
// `layers` holds previously sealed generations (newest first), and
// `base` holds the oldest sealed state. A lookup probes dirty, then
// each layer, then base, and the first hit wins: an entry in a newer
// generation *replaces* the older list for that key outright (writers
// clone the merged list into dirty on first touch, so a dirty entry is
// always the complete current list). An empty list is a deletion
// marker that masks the key in older generations.
//
// Sealing (Table.Publish) moves dirty into the sealed stack and hands
// the snapshot a postMap value with dirty == nil; from that point the
// sealed maps and every list they hold are immutable — later writes go
// to a fresh dirty map and re-clone any list they touch. When the
// sealed stack grows past a few layers, or the layers together carry
// as many entries as base, seal folds everything into a fresh base
// map, which keeps lookups O(1) amortized without ever mutating a map
// a snapshot can still see.
type postMap[K comparable] struct {
	dirty  map[K][]int32
	layers []map[K][]int32 // sealed generations, newest first
	base   map[K][]int32
}

// find returns the current posting list for k (nil when absent or
// deleted). Safe on sealed copies (dirty == nil) without any lock; on
// the live map the caller must exclude writers.
func (p *postMap[K]) find(k K) []int32 {
	if p.dirty != nil {
		if l, ok := p.dirty[k]; ok {
			return l
		}
	}
	return p.findSealed(k)
}

// findSealed is find restricted to the sealed layers and base.
func (p *postMap[K]) findSealed(k K) []int32 {
	for _, m := range p.layers {
		if l, ok := m[k]; ok {
			return l
		}
	}
	if p.base != nil {
		return p.base[k]
	}
	return nil
}

// add appends id to k's posting list in the dirty generation, cloning
// the sealed list on the first touch of k this generation.
func (p *postMap[K]) add(k K, id int32) {
	if p.dirty == nil {
		p.dirty = make(map[K][]int32)
	}
	if l, ok := p.dirty[k]; ok {
		p.dirty[k] = append(l, id)
		return
	}
	cur := p.findSealed(k)
	nl := make([]int32, len(cur), len(cur)+1)
	copy(nl, cur)
	p.dirty[k] = append(nl, id)
}

// remove drops the first occurrence of id from k's posting list,
// preserving order (probe determinism depends on posting-list order).
// A list that empties stays in dirty as a deletion marker masking the
// sealed generations.
func (p *postMap[K]) remove(k K, id int32) {
	if p.dirty != nil {
		if l, ok := p.dirty[k]; ok {
			p.dirty[k] = dropID(l, id)
			return
		}
	}
	cur := p.findSealed(k)
	i := -1
	for j, v := range cur {
		if v == id {
			i = j
			break
		}
	}
	if i < 0 {
		return
	}
	nl := make([]int32, 0, len(cur)-1)
	nl = append(nl, cur[:i]...)
	nl = append(nl, cur[i+1:]...)
	if p.dirty == nil {
		p.dirty = make(map[K][]int32)
	}
	p.dirty[k] = nl
}

// seal closes the dirty generation and returns an immutable copy for
// the snapshot being published. The receiver keeps writing into a
// fresh dirty map; the returned value's maps are never mutated again.
func (p *postMap[K]) seal() postMap[K] {
	if len(p.dirty) > 0 {
		if p.base == nil && len(p.layers) == 0 {
			// First publish after a bulk build: adopt dirty wholesale.
			p.base = p.dirty
		} else {
			nl := make([]map[K][]int32, 0, len(p.layers)+1)
			nl = append(nl, p.dirty)
			nl = append(nl, p.layers...)
			p.layers = nl
			p.maybeFold()
		}
		p.dirty = nil
	}
	return postMap[K]{layers: p.layers, base: p.base}
}

// maybeFold collapses the sealed layers into a fresh base map once
// they are deep or carry as many entries as base itself. The old base
// and layer maps are left untouched for snapshots that still hold
// them.
func (p *postMap[K]) maybeFold() {
	entries := 0
	for _, m := range p.layers {
		entries += len(m)
	}
	if len(p.layers) <= 3 && entries < len(p.base) {
		return
	}
	nb := make(map[K][]int32, len(p.base)+entries)
	for k, v := range p.base {
		nb[k] = v
	}
	for i := len(p.layers) - 1; i >= 0; i-- { // oldest → newest
		for k, v := range p.layers[i] {
			if len(v) == 0 {
				delete(nb, k)
			} else {
				nb[k] = v
			}
		}
	}
	p.base, p.layers = nb, nil
}

// entryCount returns the number of keys with a non-empty posting list
// (diagnostics/tests only; O(keys)).
func (p *postMap[K]) entryCount() int {
	seen := make(map[K]bool)
	n := 0
	visit := func(m map[K][]int32) {
		for k, v := range m {
			if seen[k] {
				continue
			}
			seen[k] = true
			if len(v) > 0 {
				n++
			}
		}
	}
	if p.dirty != nil {
		visit(p.dirty)
	}
	for _, m := range p.layers {
		visit(m)
	}
	if p.base != nil {
		visit(p.base)
	}
	return n
}
