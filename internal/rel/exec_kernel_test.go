package rel

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// renderSorted renders a result set's rows into canonical strings and
// sorts them, for order-insensitive comparison.
func renderSorted(rs *ResultSet) []string {
	out := make([]string, len(rs.Rows))
	for i, r := range rs.Rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += " | "
			}
			s += fmt.Sprintf("%#v", v)
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func TestJoinNullsNeverMatch(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "l", Schema{{Name: "id", Type: TInt}, {Name: "k", Type: TInt}}, []Row{
		{Int(1), Int(10)},
		{Int(2), Null},
		{Int(3), Null},
	})
	rt := mustTable(t, db, "r", Schema{{Name: "k", Type: TInt}, {Name: "v", Type: TInt}}, []Row{
		{Int(10), Int(100)},
		{Null, Int(200)},
		{Null, Int(300)},
	})
	rs := queryRows(t, db, "SELECT l.id, r.v FROM l, r WHERE l.k = r.k")
	if len(rs.Rows) != 1 {
		t.Fatalf("NULL keys must never join: want 1 row, got %d: %v", len(rs.Rows), rs.Rows)
	}
	if rs.Rows[0][0].I != 1 || rs.Rows[0][1].I != 100 {
		t.Fatalf("wrong surviving row: %v", rs.Rows[0])
	}
	// Same via the indexed path.
	if err := rt.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	rs = queryRows(t, db, "SELECT l.id, r.v FROM l, r WHERE l.k = r.k")
	if len(rs.Rows) != 1 {
		t.Fatalf("indexed: want 1 row, got %d: %v", len(rs.Rows), rs.Rows)
	}
}

func TestJoinIntMatchesIntegralFloat(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "a", Schema{{Name: "x", Type: TInt}}, []Row{
		{Int(1)},
		{Int(2)},
	})
	mustTable(t, db, "b", Schema{{Name: "y", Type: TFloat}, {Name: "tag", Type: TString}}, []Row{
		{Float(1.0), Str("one")},
		{Float(1.5), Str("one-and-a-half")},
		{Float(2.0), Str("two")},
	})
	rs := queryRows(t, db, "SELECT a.x, b.tag FROM a, b WHERE a.x = b.y")
	got := renderSorted(rs)
	if len(got) != 2 {
		t.Fatalf("1 must join 1.0 and 2 must join 2.0: got %v", got)
	}
}

func TestMultiColumnJoin(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "l", Schema{{Name: "a", Type: TInt}, {Name: "b", Type: TString}, {Name: "id", Type: TInt}}, []Row{
		{Int(1), Str("x"), Int(100)},
		{Int(1), Str("y"), Int(101)},
		{Int(2), Str("x"), Int(102)},
		{Null, Str("x"), Int(103)},
	})
	mustTable(t, db, "r", Schema{{Name: "a", Type: TInt}, {Name: "b", Type: TString}, {Name: "id", Type: TInt}}, []Row{
		{Int(1), Str("x"), Int(200)},
		{Int(2), Str("x"), Int(201)},
		{Int(2), Str("z"), Int(202)},
		{Null, Str("x"), Int(203)},
	})
	rs := queryRows(t, db, "SELECT l.id, r.id FROM l, r WHERE l.a = r.a AND l.b = r.b")
	got := renderSorted(rs)
	if len(got) != 2 {
		t.Fatalf("want exactly (100,200) and (102,201): got %v", got)
	}
}

func TestOrderByDescNulls(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "v", Schema{{Name: "id", Type: TInt}, {Name: "x", Type: TInt}}, []Row{
		{Int(1), Int(5)},
		{Int(2), Null},
		{Int(3), Int(9)},
	})
	// ASC sorts NULLs last; DESC is its exact reversal, so NULLs come
	// first.
	rs := queryRows(t, db, "SELECT id, x FROM v ORDER BY x DESC")
	var ids []int64
	for _, r := range rs.Rows {
		ids = append(ids, r[0].I)
	}
	if !reflect.DeepEqual(ids, []int64{2, 3, 1}) {
		t.Fatalf("ORDER BY x DESC: want ids [2 3 1] (NULL first), got %v", ids)
	}
}

func TestOffsetEqualsRowCount(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "v", Schema{{Name: "x", Type: TInt}}, []Row{
		{Int(1)}, {Int(2)}, {Int(3)},
	})
	rs := queryRows(t, db, "SELECT x FROM v ORDER BY x LIMIT 10 OFFSET 3")
	if len(rs.Rows) != 0 {
		t.Fatalf("OFFSET == len(rows) must yield 0 rows, got %d", len(rs.Rows))
	}
	rs = queryRows(t, db, "SELECT x FROM v ORDER BY x LIMIT 10 OFFSET 2")
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 3 {
		t.Fatalf("OFFSET 2 must keep the last row, got %v", rs.Rows)
	}
}

func TestDistinctMixedKinds(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "ints", Schema{{Name: "x", Type: TInt}}, []Row{
		{Int(1)}, {Int(1)}, {Int(2)}, {Null},
	})
	mustTable(t, db, "floats", Schema{{Name: "x", Type: TFloat}}, []Row{
		{Float(1.0)}, {Float(2.5)}, {Null},
	})
	// DISTINCT over a union of int and float rows: 1 and 1.0 are the
	// same key, both NULLs collapse, 2.5 stays.
	rs := queryRows(t, db, "SELECT x FROM ints UNION SELECT x FROM floats")
	if len(rs.Rows) != 4 {
		t.Fatalf("want 4 distinct values {NULL, 1, 2, 2.5}, got %d: %v", len(rs.Rows), renderSorted(rs))
	}
}

// TestSeparatorCollision is a regression test for the old row-key
// scheme, which concatenated raw column renderings with a \x1f
// separator: a value containing \x1f could shift the column boundary
// and alias a different row.
func TestSeparatorCollision(t *testing.T) {
	db := NewDB()
	// Old scheme: key("a\x1fb", "c") == "a" + \x1f + "b" + \x1f + "c"
	// == key("a", "b\x1fc"). The two rows are distinct and must stay so.
	mustTable(t, db, "p", Schema{{Name: "a", Type: TString}, {Name: "b", Type: TString}}, []Row{
		{Str("a\x1fb"), Str("c")},
		{Str("a"), Str("b\x1fc")},
	})
	rs := queryRows(t, db, "SELECT DISTINCT a, b FROM p")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows differing only in \\x1f placement must stay distinct, got %d: %v", len(rs.Rows), renderSorted(rs))
	}
	// Same for multi-column hash-join keys.
	mustTable(t, db, "q", Schema{{Name: "a", Type: TString}, {Name: "b", Type: TString}}, []Row{
		{Str("a\x1fb"), Str("c")},
	})
	rs = queryRows(t, db, "SELECT p.a FROM p, q WHERE p.a = q.a AND p.b = q.b")
	if len(rs.Rows) != 1 {
		t.Fatalf("multi-column join must match exactly one row, got %d: %v", len(rs.Rows), renderSorted(rs))
	}
}

// kernelCorpus builds a db with enough rows to clear a forced-low
// parallel threshold and returns queries covering the specialized
// paths: int hash join, generic hash join, indexed join, filter,
// projection and DISTINCT.
func kernelCorpus(t *testing.T) (*DB, []string) {
	t.Helper()
	db := NewDB()
	const n = 3000
	edges := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		to := Value{K: KindInt, I: int64((i*7 + 3) % 997)}
		if i%13 == 0 {
			to = Null
		}
		edges = append(edges, Row{Int(int64(i % 997)), to, Str(fmt.Sprintf("e%d", i%57))})
	}
	mustTable(t, db, "e", Schema{{Name: "src", Type: TInt}, {Name: "dst", Type: TInt}, {Name: "lbl", Type: TString}}, edges)
	nodes := make([]Row, 0, 997)
	for i := 0; i < 997; i++ {
		nodes = append(nodes, Row{Int(int64(i)), Str(fmt.Sprintf("n%d", i%31))})
	}
	nt := mustTable(t, db, "node", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}}, nodes)
	if err := nt.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT e.src, e.dst FROM e WHERE e.src < 100",
		"SELECT DISTINCT e.lbl FROM e",
		"SELECT e.src, n.name FROM e, node AS n WHERE e.dst = n.id AND e.src < 200",
		"SELECT a.src, b.dst FROM e AS a, e AS b WHERE a.dst = b.src AND a.src = 5",
		"SELECT DISTINCT a.lbl, b.lbl FROM e AS a, e AS b WHERE a.dst = b.src AND a.src < 20",
		"SELECT e.src AS s FROM e ORDER BY s DESC LIMIT 50 OFFSET 10",
	}
	return db, queries
}

// TestParallelKernelEquivalence runs the kernel corpus with morsel
// parallelism forced off and forced on and demands identical results.
func TestParallelKernelEquivalence(t *testing.T) {
	db, queries := kernelCorpus(t)
	defer SetParallelism(0, 0)
	for _, q := range queries {
		SetParallelism(1, 0) // sequential
		seq := renderSorted(queryRows(t, db, q))
		SetParallelism(4, 1) // every operator parallel
		par := renderSorted(queryRows(t, db, q))
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("query %q: sequential and parallel kernels disagree\nseq: %v\npar: %v", q, seq, par)
		}
	}
}
