package rel

import "fmt"

// Expression compilation. evalExpr walks the AST per row: every value
// costs an interface type switch, and every column reference a cache
// lookup. The translator's generated SQL evaluates the same small
// expressions (CASE WHEN pred = k THEN val, COALESCE, OR-chains of
// integer equalities) over many thousands of rows, so the executor
// compiles each expression once per relation shape into a closure
// tree: column references resolve to positions at compile time, and
// per-row evaluation is direct calls with no dispatch.
//
// Compiled closures are immutable after compilation and keep no
// per-row state, so — unlike rowCtx, whose resolution cache is a
// plain map — one compiled expression may be shared by all morsel
// workers.
//
// Error behavior matches evalExpr exactly: problems found during
// compilation (unknown column, unknown function) compile into
// closures that return the error when *evaluated*, so an erroneous
// sub-expression inside a never-taken branch stays silent, just as it
// would under lazy tree-walking.

// compiledExpr evaluates an expression against one row of the shape
// it was compiled for.
type compiledExpr func(row Row) (Value, error)

func errExpr(err error) compiledExpr {
	return func(Row) (Value, error) { return Null, err }
}

// compileExpr compiles e against rel's column shape.
func (db *DB) compileExpr(e Expr, rel *relation) compiledExpr {
	switch x := e.(type) {
	case *Lit:
		v := x.V
		return func(Row) (Value, error) { return v, nil }
	case *ColRef:
		if rel == nil {
			return errExpr(fmt.Errorf("sql: column reference %s outside row context", colRefString(x)))
		}
		i := rel.colIndex(x.Alias, x.Column)
		if i < 0 {
			return errExpr(fmt.Errorf("sql: unknown column %s (have %v)", colRefString(x), rel.cols))
		}
		return func(r Row) (Value, error) { return r[i], nil }
	case *BinOp:
		return db.compileBinOp(x, rel)
	case *UnOp:
		sub := db.compileExpr(x.X, rel)
		switch x.Op {
		case "NOT":
			return func(r Row) (Value, error) {
				v, err := sub(r)
				if err != nil || v.IsNull() {
					return Null, err
				}
				return Bool(!v.Truth()), nil
			}
		case "-":
			return func(r Row) (Value, error) {
				v, err := sub(r)
				if err != nil {
					return Null, err
				}
				switch v.K {
				case KindInt:
					return Int(-v.I), nil
				case KindFloat:
					return Float(-v.F), nil
				case KindNull:
					return Null, nil
				}
				return Null, fmt.Errorf("sql: cannot negate %v", v.K)
			}
		}
		return errExpr(fmt.Errorf("sql: unknown unary op %q", x.Op))
	case *IsNullExpr:
		sub := db.compileExpr(x.X, rel)
		not := x.Not
		return func(r Row) (Value, error) {
			v, err := sub(r)
			if err != nil {
				return Null, err
			}
			return Bool(v.IsNull() != not), nil
		}
	case *InExpr:
		sub := db.compileExpr(x.X, rel)
		items := make([]compiledExpr, len(x.List))
		for i, item := range x.List {
			items[i] = db.compileExpr(item, rel)
		}
		not := x.Not
		return func(r Row) (Value, error) {
			v, err := sub(r)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				return Null, nil
			}
			anyNull := false
			for _, item := range items {
				iv, err := item(r)
				if err != nil {
					return Null, err
				}
				if iv.IsNull() {
					anyNull = true
					continue
				}
				if Equal(v, iv) {
					return Bool(!not), nil
				}
			}
			if anyNull {
				return Null, nil
			}
			return Bool(not), nil
		}
	case *CaseExpr:
		conds := make([]compiledExpr, len(x.Whens))
		results := make([]compiledExpr, len(x.Whens))
		for i, w := range x.Whens {
			conds[i] = db.compileExpr(w.Cond, rel)
			results[i] = db.compileExpr(w.Result, rel)
		}
		var elseC compiledExpr
		if x.Else != nil {
			elseC = db.compileExpr(x.Else, rel)
		}
		return func(r Row) (Value, error) {
			for i, cond := range conds {
				v, err := cond(r)
				if err != nil {
					return Null, err
				}
				if v.Truth() {
					return results[i](r)
				}
			}
			if elseC != nil {
				return elseC(r)
			}
			return Null, nil
		}
	case *FuncCall:
		args := make([]compiledExpr, len(x.Args))
		for i, a := range x.Args {
			args[i] = db.compileExpr(a, rel)
		}
		if x.Name == "coalesce" {
			return func(r Row) (Value, error) {
				for _, a := range args {
					v, err := a(r)
					if err != nil {
						return Null, err
					}
					if !v.IsNull() {
						return v, nil
					}
				}
				return Null, nil
			}
		}
		f, ok := db.function(x.Name)
		if !ok {
			return errExpr(fmt.Errorf("sql: unknown function %q", x.Name))
		}
		return func(r Row) (Value, error) {
			vals := make([]Value, len(args))
			for i, a := range args {
				v, err := a(r)
				if err != nil {
					return Null, err
				}
				vals[i] = v
			}
			return f(vals)
		}
	}
	return errExpr(fmt.Errorf("sql: unhandled expression %T", e))
}

func (db *DB) compileBinOp(x *BinOp, rel *relation) compiledExpr {
	switch x.Op {
	case "AND":
		l, r := db.compileExpr(x.L, rel), db.compileExpr(x.R, rel)
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			if !lv.IsNull() && !lv.Truth() {
				return Bool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if !rv.IsNull() && !rv.Truth() {
				return Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return Bool(true), nil
		}
	case "OR":
		l, r := db.compileExpr(x.L, rel), db.compileExpr(x.R, rel)
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			if lv.Truth() {
				return Bool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if rv.Truth() {
				return Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return Bool(false), nil
		}
	}
	// The translator's dominant predicate is `T.predN = <int>`:
	// specialize column-vs-integer-literal comparison down to a direct
	// slot read and int compare.
	if x.Op == "=" || x.Op == "!=" {
		if ce := db.compileIntEquality(x, rel); ce != nil {
			return ce
		}
	}
	l, r := db.compileExpr(x.L, rel), db.compileExpr(x.R, rel)
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		op := x.Op
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			c, ok := Compare(lv, rv)
			if !ok {
				return Null, nil
			}
			switch op {
			case "=":
				return Bool(c == 0), nil
			case "!=":
				return Bool(c != 0), nil
			case "<":
				return Bool(c < 0), nil
			case "<=":
				return Bool(c <= 0), nil
			case ">":
				return Bool(c > 0), nil
			}
			return Bool(c >= 0), nil
		}
	case "+", "-", "*", "/":
		op := x.Op
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			return arith(op, lv, rv)
		}
	}
	return errExpr(fmt.Errorf("sql: unknown binary op %q", x.Op))
}

// compileIntEquality specializes `col = <intlit>` (either side) into a
// direct comparison; nil when the shape does not match.
func (db *DB) compileIntEquality(x *BinOp, rel *relation) compiledExpr {
	if rel == nil {
		return nil
	}
	cr, lit := x.L, x.R
	if _, ok := cr.(*ColRef); !ok {
		cr, lit = x.R, x.L
	}
	c, ok := cr.(*ColRef)
	if !ok {
		return nil
	}
	l, ok := lit.(*Lit)
	if !ok || l.V.K != KindInt {
		return nil
	}
	i := rel.colIndex(c.Alias, c.Column)
	if i < 0 {
		return nil // fall back to the generic path's lazy error
	}
	want := l.V.I
	eq := x.Op == "="
	return func(r Row) (Value, error) {
		v := r[i]
		switch v.K {
		case KindInt:
			return Bool((v.I == want) == eq), nil
		case KindNull:
			return Null, nil
		}
		c, ok := Compare(v, Value{K: KindInt, I: want})
		if !ok {
			return Null, nil
		}
		return Bool((c == 0) == eq), nil
	}
}

// arith applies a binary arithmetic op with evalBinOp's semantics.
func arith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null, nil
	}
	if l.K == KindInt && r.K == KindInt {
		switch op {
		case "+":
			return Int(l.I + r.I), nil
		case "-":
			return Int(l.I - r.I), nil
		case "*":
			return Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return Null, nil
			}
			return Int(l.I / r.I), nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return Null, fmt.Errorf("sql: arithmetic on non-numeric values")
	}
	switch op {
	case "+":
		return Float(lf + rf), nil
	case "-":
		return Float(lf - rf), nil
	case "*":
		return Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return Null, nil
		}
		return Float(lf / rf), nil
	}
	return Null, fmt.Errorf("sql: unknown binary op %q", op)
}

// compilePred compiles a conjunct list into a single keep/drop
// predicate: true iff every conjunct evaluates truthy.
func (db *DB) compilePred(conds []Expr, rel *relation) func(Row) (bool, error) {
	compiled := make([]compiledExpr, len(conds))
	for i, c := range conds {
		compiled[i] = db.compileExpr(c, rel)
	}
	return func(r Row) (bool, error) {
		for _, c := range compiled {
			v, err := c(r)
			if err != nil {
				return false, err
			}
			if !v.Truth() {
				return false, nil
			}
		}
		return true, nil
	}
}
