package rel

import (
	"fmt"
	"strings"
)

// tokKind enumerates SQL token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single/compound punctuation: , ( ) . * = <> != < <= > >= + - /
	tokKeyword
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

var sqlKeywords = map[string]bool{
	"WITH": true, "AS": true, "SELECT": true, "DISTINCT": true, "FROM": true,
	"WHERE": true, "LEFT": true, "OUTER": true, "INNER": true, "JOIN": true,
	"ON": true, "UNION": true, "ALL": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "IS": true, "IN": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"TRUE": true, "FALSE": true, "EXISTS": true,
}

type lexer struct {
	in   string
	pos  int
	toks []token
}

func lexSQL(in string) ([]token, error) {
	l := &lexer{in: in}
	for {
		l.skipSpace()
		if l.pos >= len(l.in) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.in[l.pos]
		switch {
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
				l.pos++
			}
			word := l.in[start:l.pos]
			up := strings.ToUpper(word)
			if sqlKeywords[up] {
				l.emit(token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.emit(token{kind: tokIdent, text: word, pos: start})
			}
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9' || l.in[l.pos] == '.') {
				l.pos++
			}
			l.emit(token{kind: tokNumber, text: l.in[start:l.pos], pos: start})
		case c == '\'':
			start := l.pos
			l.pos++
			var b strings.Builder
			for {
				if l.pos >= len(l.in) {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				ch := l.in[l.pos]
				if ch == '\'' {
					// '' is an escaped quote.
					if l.pos+1 < len(l.in) && l.in[l.pos+1] == '\'' {
						b.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				b.WriteByte(ch)
				l.pos++
			}
			l.emit(token{kind: tokString, text: b.String(), pos: start})
		default:
			start := l.pos
			switch c {
			case ',', '(', ')', '.', '*', '+', '-', '/', '=':
				l.pos++
				l.emit(token{kind: tokPunct, text: string(c), pos: start})
			case '<':
				l.pos++
				if l.pos < len(l.in) && (l.in[l.pos] == '=' || l.in[l.pos] == '>') {
					l.pos++
				}
				l.emit(token{kind: tokPunct, text: l.in[start:l.pos], pos: start})
			case '>':
				l.pos++
				if l.pos < len(l.in) && l.in[l.pos] == '=' {
					l.pos++
				}
				l.emit(token{kind: tokPunct, text: l.in[start:l.pos], pos: start})
			case '!':
				l.pos++
				if l.pos >= len(l.in) || l.in[l.pos] != '=' {
					return nil, fmt.Errorf("sql: unexpected '!' at offset %d", start)
				}
				l.pos++
				l.emit(token{kind: tokPunct, text: "!=", pos: start})
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '-' {
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
