package rel

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// Tests for the columnar layout (column.go, vecscan.go): round-trip
// equivalence against the row layout across randomized mutation
// sequences, packed insert/delete transitions, exception values,
// zone-map pruning correctness, the cached column-name lookup, the
// float-index regression, and governance semantics of the vectorized
// scan.

// buildBoth creates the same table under both layouts.
func buildBoth(t *testing.T, schema Schema) (col, row *Table) {
	t.Helper()
	defer SetDefaultStorage(StorageColumnar)
	SetDefaultStorage(StorageColumnar)
	col = NewTable("c", schema)
	SetDefaultStorage(StorageRows)
	row = NewTable("r", schema)
	if !col.Columnar() || row.Columnar() {
		t.Fatal("SetDefaultStorage not honored")
	}
	return col, row
}

// randValue draws a value for a column of type typ; about a third are
// NULL and a few are kind-mismatched (exception-path) values.
func randValue(r *rand.Rand, typ ColumnType) Value {
	switch n := r.Intn(10); {
	case n < 3:
		return Null
	case n == 9: // kind mismatch
		switch typ {
		case TInt:
			return Bool(r.Intn(2) == 0)
		case TFloat:
			return Int(int64(r.Intn(100)))
		default:
			return Float(r.Float64())
		}
	default:
		switch typ {
		case TInt:
			return Int(int64(r.Intn(2000) - 1000))
		case TFloat:
			return Float(r.NormFloat64())
		default:
			return Str(fmt.Sprintf("s%d", r.Intn(500)))
		}
	}
}

func sameTable(t *testing.T, col, row *Table, what string) {
	t.Helper()
	if col.Len() != row.Len() {
		t.Fatalf("%s: Len %d vs %d", what, col.Len(), row.Len())
	}
	for i := 0; i < col.Len(); i++ {
		cr, rr := col.RowAt(i), row.RowAt(i)
		if !reflect.DeepEqual(cr, rr) {
			t.Fatalf("%s: RowAt(%d): %v vs %v", what, i, cr, rr)
		}
		for j := range cr {
			if cv, rv := col.CellAt(i, j), row.CellAt(i, j); !reflect.DeepEqual(cv, rv) {
				t.Fatalf("%s: CellAt(%d,%d): %v vs %v", what, i, j, cv, rv)
			}
		}
	}
	if !reflect.DeepEqual(col.Rows(), row.Rows()) && col.Len() > 0 {
		t.Fatalf("%s: Rows() diverge", what)
	}
	if cb, rb := col.EstimateBytes(), row.EstimateBytes(); cb != rb {
		t.Fatalf("%s: EstimateBytes %d vs %d (must be layout-independent)", what, cb, rb)
	}
}

// TestColumnarRoundTrip drives randomized appends, batch appends,
// cell updates and row updates through both layouts and requires
// identical logical content after every phase — including NULL↔value
// transitions that shift the packed vectors, and exception values.
func TestColumnarRoundTrip(t *testing.T) {
	schema := Schema{
		{Name: "i", Type: TInt},
		{Name: "s", Type: TString},
		{Name: "f", Type: TFloat},
	}
	col, row := buildBoth(t, schema)
	r := rand.New(rand.NewSource(42))
	mkRow := func() Row {
		out := make(Row, len(schema))
		for j, c := range schema {
			out[j] = randValue(r, c.Type)
		}
		return out
	}
	// Appends crossing several chunk boundaries.
	for i := 0; i < 2600; i++ {
		rw := mkRow()
		if err := col.Insert(rw); err != nil {
			t.Fatal(err)
		}
		if err := row.Insert(rw); err != nil {
			t.Fatal(err)
		}
	}
	sameTable(t, col, row, "after appends")

	batch := make([]Row, 1500)
	for i := range batch {
		batch[i] = mkRow()
	}
	cb, err := col.AppendRows(batch)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := row.AppendRows(batch)
	if err != nil {
		t.Fatal(err)
	}
	if cb != rb {
		t.Fatalf("AppendRows base %d vs %d", cb, rb)
	}
	sameTable(t, col, row, "after batch")

	for n := 0; n < 3000; n++ {
		i, j := r.Intn(col.Len()), r.Intn(len(schema))
		v := randValue(r, schema[j].Type)
		if err := col.SetCell(i, j, v); err != nil {
			t.Fatal(err)
		}
		if err := row.SetCell(i, j, v); err != nil {
			t.Fatal(err)
		}
	}
	sameTable(t, col, row, "after SetCell churn")

	for n := 0; n < 200; n++ {
		i := r.Intn(col.Len())
		rw := mkRow()
		if err := col.UpdateRow(i, rw); err != nil {
			t.Fatal(err)
		}
		if err := row.UpdateRow(i, rw); err != nil {
			t.Fatal(err)
		}
	}
	sameTable(t, col, row, "after UpdateRow churn")
}

// TestSetCellOutOfRange pins the error contract.
func TestSetCellOutOfRange(t *testing.T) {
	SetDefaultStorage(StorageColumnar)
	tbl := NewTable("t", Schema{{Name: "a", Type: TInt}})
	if err := tbl.Insert(Row{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetCell(1, 0, Int(2)); err == nil {
		t.Fatal("row out of range must error")
	}
	if err := tbl.SetCell(0, 1, Int(2)); err == nil {
		t.Fatal("column out of range must error")
	}
}

// TestRowLayoutSetCellCopies: on the row layout a SetCell must not
// mutate rows already handed out to readers (query results alias
// table rows there).
func TestRowLayoutSetCellCopies(t *testing.T) {
	defer SetDefaultStorage(StorageColumnar)
	SetDefaultStorage(StorageRows)
	tbl := NewTable("t", Schema{{Name: "a", Type: TInt}})
	if err := tbl.Insert(Row{Int(1)}); err != nil {
		t.Fatal(err)
	}
	seen := tbl.RowAt(0)
	if err := tbl.SetCell(0, 0, Int(2)); err != nil {
		t.Fatal(err)
	}
	if seen[0].I != 1 {
		t.Fatal("SetCell mutated a row aliased by a reader")
	}
	if got := tbl.CellAt(0, 0); got.I != 2 {
		t.Fatalf("update lost: %v", got)
	}
}

// TestTableColumnIndexCached: the per-table name cache must agree with
// the linear Schema scan, case-insensitively.
func TestTableColumnIndexCached(t *testing.T) {
	schema := Schema{{Name: "Entry", Type: TInt}, {Name: "spill", Type: TInt}, {Name: "Pred0", Type: TInt}}
	tbl := NewTable("t", schema)
	for _, name := range []string{"entry", "ENTRY", "Entry", "spill", "pred0", "PRED0", "nosuch"} {
		if got, want := tbl.ColumnIndex(name), schema.ColumnIndex(name); got != want {
			t.Fatalf("ColumnIndex(%q) = %d, Schema gives %d", name, got, want)
		}
	}
}

// TestFloatIndexRegression: hashIndex used to silently skip TFloat
// columns (CreateIndex refused them) and float values stored in
// indexed TInt columns were never indexed, so an index scan missed
// rows a full scan would find. Floats now index by class: integral
// floats in the int map (1 finds 1.0), others by bit pattern.
func TestFloatIndexRegression(t *testing.T) {
	for _, storage := range []Storage{StorageColumnar, StorageRows} {
		SetDefaultStorage(storage)
		db := NewDB()
		tbl := mustTable(t, db, "m", Schema{{Name: "id", Type: TInt}, {Name: "v", Type: TFloat}}, []Row{
			{Int(0), Float(1.5)},
			{Int(1), Float(2.0)},
			{Int(2), Null},
			{Int(3), Float(1.5)},
			{Int(4), Int(7)}, // int stored in the float column
		})
		if err := tbl.CreateIndex("v"); err != nil {
			t.Fatalf("%v: TFloat index must be supported: %v", storage, err)
		}
		lookup := func(v Value, want int) {
			t.Helper()
			ids, ok := tbl.lookup("v", v)
			if !ok {
				t.Fatalf("%v: index vanished", storage)
			}
			if len(ids) != want {
				t.Fatalf("%v: lookup(%v) = %v, want %d ids", storage, v, ids, want)
			}
		}
		lookup(Float(1.5), 2)
		lookup(Float(2.0), 1)
		lookup(Int(2), 1)     // integral float found via int probe
		lookup(Float(7), 1)   // stored int found via integral-float probe
		lookup(Float(9.9), 0) // absent
		lookup(Null, 0)       // NULL never matches

		// End-to-end: the indexed scan path must agree with a full scan.
		rs, err := db.Query("SELECT m.id FROM m AS m WHERE m.v = 1.5")
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 2 {
			t.Fatalf("%v: indexed float equality: want 2 rows, got %v", storage, rs.Rows)
		}

		// Float values inside an indexed TInt column must be indexed too.
		ti := mustTable(t, db, "n", Schema{{Name: "k", Type: TInt}}, []Row{
			{Int(1)}, {Float(1)}, {Float(2.5)},
		})
		if err := ti.CreateIndex("k"); err != nil {
			t.Fatal(err)
		}
		if ids, _ := ti.lookup("k", Int(1)); len(ids) != 2 {
			t.Fatalf("%v: int probe must see the integral float: %v", storage, ids)
		}
		if ids, _ := ti.lookup("k", Float(2.5)); len(ids) != 1 {
			t.Fatalf("%v: non-integral float must be indexed by bit pattern: %v", storage, ids)
		}
	}
	SetDefaultStorage(StorageColumnar)
}

// zoneDB builds one DB per layout holding the same 8192-row table:
// "v" is clustered (ascending, so zone maps prune aggressively), "u"
// is shuffled (no pruning), "s" is a string tag, "n" is NULL on odd
// rows.
func zoneDB(t *testing.T, storage Storage) *DB {
	t.Helper()
	SetDefaultStorage(storage)
	db := NewDB()
	tbl, err := db.CreateTable("z", Schema{
		{Name: "v", Type: TInt},
		{Name: "u", Type: TInt},
		{Name: "s", Type: TString},
		{Name: "n", Type: TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	perm := r.Perm(8192)
	rows := make([]Row, 8192)
	for i := range rows {
		nv := Value(Int(int64(i)))
		if i%2 == 1 {
			nv = Null
		}
		rows[i] = Row{Int(int64(i)), Int(int64(perm[i])), Str(fmt.Sprintf("tag%d", i%7)), nv}
	}
	if _, err := tbl.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestVectorizedScanEquivalence runs scan-shaped queries — equality,
// ranges, inequality, null tests, residual string predicates, and
// mixes — against both layouts under sequential and parallel
// execution; results must match row for row.
func TestVectorizedScanEquivalence(t *testing.T) {
	defer SetDefaultStorage(StorageColumnar)
	defer SetParallelism(0, 0)
	colDB := zoneDB(t, StorageColumnar)
	rowDB := zoneDB(t, StorageRows)
	// Publishing seals the columnar chunks (FoR bit-packing, shared
	// dense bitmaps), so the frozen DB exercises the packed scan fast
	// paths against the same queries.
	sealDB := colDB.Publish()
	queries := []string{
		"SELECT z.v FROM z AS z WHERE z.v = 5000",
		"SELECT z.v FROM z AS z WHERE z.v = 100000",    // zone-skips every chunk
		"SELECT z.v FROM z AS z WHERE z.v < 100",       // prunes all but chunk 0
		"SELECT z.v FROM z AS z WHERE z.v >= 8100",     // prunes all but the tail
		"SELECT z.v FROM z AS z WHERE z.v != 0",        // no pruning possible
		"SELECT z.v FROM z AS z WHERE 2048 <= z.v AND z.v <= 2050", // literal on the left
		"SELECT z.u FROM z AS z WHERE z.u = 5000",      // shuffled: no chunk pruned
		"SELECT z.v FROM z AS z WHERE z.n IS NULL AND z.v < 64",
		"SELECT z.v FROM z AS z WHERE z.n IS NOT NULL AND z.v > 8000",
		"SELECT z.v FROM z AS z WHERE z.v < 300 AND z.s = 'tag3'",  // residual predicate
		"SELECT z.s FROM z AS z WHERE z.s = 'tag5' AND z.u < 40",
		"SELECT z.v, z.u FROM z AS z",                   // unfiltered dense gather
		"SELECT z.v FROM z AS z WHERE z.v + 0 = 77",     // non-vectorizable arithmetic
	}
	for _, q := range queries {
		for _, workers := range []int{1, 4} {
			SetParallelism(workers, 1)
			a, err := colDB.Query(q)
			if err != nil {
				t.Fatalf("columnar %q: %v", q, err)
			}
			b, err := rowDB.Query(q)
			if err != nil {
				t.Fatalf("rows %q: %v", q, err)
			}
			if !reflect.DeepEqual(a.Rows, b.Rows) {
				t.Fatalf("workers=%d %q: columnar %d rows vs row-layout %d rows", workers, q, len(a.Rows), len(b.Rows))
			}
			c, err := sealDB.Query(q)
			if err != nil {
				t.Fatalf("sealed %q: %v", q, err)
			}
			if !reflect.DeepEqual(c.Rows, b.Rows) {
				t.Fatalf("workers=%d %q: sealed %d rows vs row-layout %d rows", workers, q, len(c.Rows), len(b.Rows))
			}
			SetParallelism(0, 0)
		}
	}
}

// TestVecScanBudgetChargesSelectedRows: a highly selective scan over a
// mostly-pruned table must charge only the selected rows against the
// row budget — never the rows of skipped chunks — while a scan that
// actually produces many rows must still trip.
func TestVecScanBudgetChargesSelectedRows(t *testing.T) {
	defer SetDefaultStorage(StorageColumnar)
	db := zoneDB(t, StorageColumnar)
	q, err := ParseQuery("SELECT z.v FROM z AS z WHERE z.v < 10")
	if err != nil {
		t.Fatal(err)
	}
	// 10 selected rows scan + 10 projected ≤ 50, even though the table
	// holds 8192 rows across 8 chunks (7 of them zone-skipped).
	if _, err := db.ExecContext(context.Background(), q, Limits{MaxRows: 50}); err != nil {
		t.Fatalf("budget must ignore pruned chunks: %v", err)
	}
	wide, err := ParseQuery("SELECT z.v FROM z AS z WHERE z.v >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecContext(context.Background(), wide, Limits{MaxRows: 50}); err == nil {
		t.Fatal("a scan emitting 8192 rows must trip a 50-row budget")
	}
}

// TestVecScanFaultInjection: the vectorized scan must keep honoring
// CkFilter checkpoints (cancellation inside the chunk loop).
func TestVecScanFaultInjection(t *testing.T) {
	defer SetDefaultStorage(StorageColumnar)
	db := zoneDB(t, StorageColumnar)
	q, err := ParseQuery("SELECT z.v FROM z AS z WHERE z.v != -1")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		SetParallelism(workers, 1)
		InjectFault(CkFilter, FaultCancel, 1)
		_, execErr := db.ExecContext(context.Background(), q, Limits{})
		fired := FaultFired()
		ClearFault()
		SetParallelism(0, 0)
		if execErr == nil || !fired {
			t.Fatalf("workers=%d: vectorized scan skipped the CkFilter checkpoint (err=%v fired=%v)", workers, execErr, fired)
		}
	}
}
