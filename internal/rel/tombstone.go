package rel

import (
	"fmt"
	"math/bits"
)

// Row deletion via per-chunk tombstone bitmaps. A deleted row keeps its
// physical index (so every row id handed out by AppendRow stays stable)
// but is marked dead in the owning chunk's tombstone bitmap and removed
// from every hash index immediately. Scans — the vectorized chunk
// pipeline (vecscan.go), Rows(), materializeAllLocked and CreateIndex —
// filter dead rows out; index probes need no check at all, because a
// dead row's ids are gone from the posting lists before the delete
// returns.
//
// The bitmap is table-level rather than per colVec chunk: the DPH/RPH
// relations carry 2k+2 columns (66 on the K=32 default), and a row is
// dead in all of them or none, so duplicating the [16]uint64 bitmap per
// column would multiply its cost 66× for no information. The table
// bitmap is indexed by the same chunk coordinates (row>>chunkShift,
// row&chunkMask) the column chunks use, so the scan consults it in the
// same loop that walks the column chunks.
//
// Zone maps stay untouched by deletes: they are widen-only, so after a
// delete they still bound every live value (possibly loosely — the
// deleted min/max witness makes the range wider than the live data,
// never narrower). That keeps skipChunk sound without rescanning: a
// chunk whose only zone witnesses are tombstoned cannot prune live
// matches, because pruning only ever uses the bounds to prove absence.
// Compaction is the one place zone maps are recomputed, and only after
// the dead cells are physically cleared.
//
// Compaction: once a chunk accumulates tombCompactDead dead-but-dirty
// rows (dirty = cells still sitting in the packed vectors), the chunk
// is rewritten at the next Publish — every dead cell is cleared
// through colVec.set (packed delete + presence-bit clear), and the
// chunk's zone map is rebuilt over the surviving packed ints. Running
// compaction at publish time means it always operates on the writer's
// private copy-on-write chunks, never on data a snapshot still reads.
// Tombstone bits persist after compaction so cleared cells do not leak
// into IS NULL results; only the dirty counter resets.

// tombCompactDead is the per-chunk dead-row threshold that triggers
// compaction (a quarter of a chunk).
const tombCompactDead = chunkRows / 4

// tombChunk tracks the dead rows of one 1024-row chunk.
type tombChunk struct {
	bits  [chunkWords]uint64 // set bit = dead row
	dead  int                // dead rows in this chunk
	dirty int                // dead rows whose cells are still in the column chunks
	gen   uint64             // writer generation that owns this bitmap (COW)
}

// has reports whether the row at in-chunk offset off is dead.
func (tc *tombChunk) has(off int) bool {
	return tc.bits[off>>6]>>(uint(off)&63)&1 == 1
}

// deadLocked reports whether row i is tombstoned; the caller holds the
// table lock (either mode).
func (t *Table) deadLocked(i int) bool {
	ci := i >> chunkShift
	if ci >= len(t.tomb) || t.tomb[ci] == nil {
		return false
	}
	return t.tomb[ci].has(i & chunkMask)
}

// LiveLen returns the number of live (non-deleted) rows.
func (t *Table) LiveLen() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nrows - t.dead
}

// DeadRows returns the number of tombstoned rows (for tests and
// diagnostics).
func (t *Table) DeadRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dead
}

// DeleteRow tombstones row i. The row id stays allocated (physical
// indices never shift), but the row is removed from every hash index
// immediately and excluded from all scans. Deleting an already-dead row
// is a no-op. Chunks that cross the dead-density threshold are
// compacted at the next Publish, on the writer's private copies.
func (t *Table) DeleteRow(i int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= t.nrows {
		return fmt.Errorf("rel: table %s: row %d out of range", t.Name, i)
	}
	ci, off := i>>chunkShift, i&chunkMask
	for len(t.tomb) <= ci {
		t.tomb = append(t.tomb, nil)
	}
	if tc := t.tomb[ci]; tc != nil && tc.has(off) {
		return nil
	}
	tc := t.mutableTombLocked(ci)
	// Unindex before the bit is set (the cell values are still intact).
	for _, idx := range t.indexes {
		var v Value
		if t.storage == StorageColumnar {
			v = t.cols[idx.col].get(i)
		} else {
			v = t.rows[i][idx.col]
		}
		idx.remove(v, int32(i))
	}
	tc.bits[off>>6] |= 1 << (uint(off) & 63)
	tc.dead++
	tc.dirty++
	t.dead++
	return nil
}

// mutableTombLocked returns tombstone chunk ci ready for mutation in
// the current generation, creating or cloning it (and COW-ing the
// tomb directory slot) as needed. The tomb slice must already cover ci.
func (t *Table) mutableTombLocked(ci int) *tombChunk {
	tc := t.tomb[ci]
	switch {
	case tc == nil:
		tc = &tombChunk{gen: t.wgen}
	case tc.gen != t.wgen:
		c := *tc
		c.gen = t.wgen
		tc = &c
	default:
		return tc
	}
	if t.tombGen != t.wgen {
		t.tomb = append([]*tombChunk(nil), t.tomb...)
		t.tombGen = t.wgen
	}
	t.tomb[ci] = tc
	return tc
}

// compactPendingLocked compacts every chunk whose dirty dead-cell
// count has crossed the threshold. Called by Publish before freezing,
// so the clears land on the writer's private chunk copies and the
// published invariant holds: no chunk carries tombCompactDead or more
// dirty cells. Caller holds the table write lock.
func (t *Table) compactPendingLocked() {
	if t.storage != StorageColumnar {
		return
	}
	for ci, tc := range t.tomb {
		if tc == nil || tc.dirty < tombCompactDead {
			continue
		}
		t.compactChunkLocked(ci, t.mutableTombLocked(ci))
		t.compactions++
	}
}

// compactChunkLocked clears every dirty dead cell of chunk ci out of
// the packed column vectors and rebuilds the columns' zone maps over
// the surviving values. The tombstone bits stay set (a cleared cell
// must not surface as a live NULL); only dirty resets.
func (t *Table) compactChunkLocked(ci int, tc *tombChunk) {
	base := ci << chunkShift
	for w := 0; w < chunkWords; w++ {
		word := tc.bits[w]
		for word != 0 {
			off := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			for _, col := range t.cols {
				col.set(t.wgen, base+off, Null)
			}
		}
	}
	tc.dirty = 0
	for _, col := range t.cols {
		if col.typ != TInt {
			continue
		}
		ck := col.chunkOf(ci)
		// Only chunks the clears above actually touched (and therefore
		// cloned into the current generation) need a zone rebuild; an
		// untouched chunk may still be shared with a snapshot and its
		// bounds are unchanged anyway.
		// A sealed chunk (same-generation after a snapshot decode) was
		// not touched either — col.set clones sealed chunks into raw
		// form — and its ints slice is empty when bit-packed, so
		// rebuilding from it would wipe the zone map.
		if ck == nil || ck.gen != t.wgen || ck.sealed {
			continue
		}
		// Re-widen from scratch: the old bounds may be witnessed only by
		// cells just cleared. Exception placeholders (zeros) may widen
		// the range past the live data, which is loose but sound.
		ck.zoneInit = false
		for _, x := range ck.ints {
			ck.widen(x)
		}
	}
}

// Compactions returns the number of chunk compactions the table has
// run at publish time (metrics).
func (t *Table) Compactions() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.compactions
}

// Clear removes every row, resetting the table to empty while keeping
// its schema and index definitions. Everything is replaced with fresh
// objects — a whole-table copy-on-write — so published snapshots keep
// reading the old column vectors and posting maps untouched.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nrows, t.dead = 0, 0
	t.rows, t.tomb = nil, nil
	t.rowsGen, t.tombGen = t.wgen, t.wgen
	if t.storage == StorageColumnar {
		t.cols = make([]*colVec, len(t.Schema))
		for i, c := range t.Schema {
			t.cols[i] = &colVec{typ: c.Type, sgen: t.wgen}
		}
	}
	for _, idx := range t.indexes {
		idx.reset()
	}
}

// IndexLookup returns the row ids matching col = v through the
// column's hash index, and whether the column is indexed. Returned ids
// are live: deleted rows are unindexed eagerly. The caller must exclude
// writers (the store-level lock does).
func (t *Table) IndexLookup(col string, v Value) ([]int32, bool) {
	return t.lookup(col, v)
}

// remove drops row id from the posting list of v, classing the value
// exactly as add did. Caller holds the table write lock.
func (x *hashIndex) remove(v Value, id int32) {
	switch {
	case x.ints != nil:
		switch v.K {
		case KindInt:
			x.ints.remove(v.I, id)
		case KindFloat:
			if v.F == float64(int64(v.F)) {
				x.ints.remove(int64(v.F), id)
			} else if x.floats != nil {
				x.floats.remove(floatBitsKey(v.F), id)
			}
		}
	case x.strs != nil:
		if v.K == KindString {
			x.strs.remove(v.S, id)
		}
	}
}

// dropID removes the first occurrence of id, preserving order (probe
// result determinism depends on posting-list order). The slice must be
// owned by the caller (postMap dirty lists are).
func dropID(ids []int32, id int32) []int32 {
	for k, v := range ids {
		if v == id {
			return append(ids[:k], ids[k+1:]...)
		}
	}
	return ids
}

// reset empties the index by allocating fresh posting maps, keeping
// its column binding. Sealed copies held by snapshots are untouched.
func (x *hashIndex) reset() {
	if x.ints != nil {
		x.ints = &postMap[int64]{}
	}
	if x.floats != nil {
		x.floats = &postMap[uint64]{}
	}
	if x.strs != nil {
		x.strs = &postMap[string]{}
	}
}
