package rel

import "strings"

// Snapshot publication. Publish freezes a table's current contents
// into an immutable copy that shares all chunk data with the live
// table: the frozen table gets its own colVec headers with len-capped
// chunk directories, a len-capped tombstone directory, sealed index
// copies, and the row/dead counters as of the freeze. Bumping the
// live table's writer generation afterwards makes every shared chunk
// stale for the writer, so the next mutation of any shared piece
// clones it first (see column.go / tombstone.go / cowmap.go).
//
// A frozen table is a plain *Table, so the whole read pipeline —
// point reads, index probes, vectorized scans, materialization — runs
// on it unchanged. Its mutex is never writer-contended (nothing
// mutates a frozen table), so reader-side lock acquisitions on it are
// uncontended atomic ops; readers never wait on a store writer.
// Memory reclamation is garbage collection: when the last query using
// an old snapshot finishes, the snapshot and any chunks superseded by
// newer generations become unreachable and are collected.

// Publish returns an immutable frozen copy of the table and opens a
// new writer generation on the receiver.
//
// Before freezing, every not-yet-sealed chunk is sealed into its
// compressed form (column.go): publish cost stays proportional to the
// chunks written since the last publish, and because the live
// directory slots are redirected to the sealed copies too, the raw
// slices become garbage once no in-flight reader holds them.
func (t *Table) Publish() *Table {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.compactPendingLocked()
	if t.storage == StorageColumnar {
		t.sealChunksLocked()
	}
	f := &Table{
		Name:    t.Name,
		Schema:  t.Schema,
		storage: t.storage,
		nrows:   t.nrows,
		dead:    t.dead,
		colIdx:  t.colIdx,
		indexes: make(map[string]*hashIndex, len(t.indexes)),

		compactions: t.compactions,
	}
	for name, idx := range t.indexes {
		f.indexes[name] = idx.seal()
	}
	if t.storage == StorageColumnar {
		f.cols = make([]*colVec, len(t.cols))
		for i, c := range t.cols {
			f.cols[i] = &colVec{
				typ:      c.typ,
				chunks:   c.chunks[:len(c.chunks):len(c.chunks)],
				excCount: c.excCount,
			}
		}
	} else {
		f.rows = t.rows[:len(t.rows):len(t.rows)]
	}
	f.tomb = t.tomb[:len(t.tomb):len(t.tomb)]
	t.wgen++
	return f
}

// sealChunksLocked replaces every unsealed chunk with a sealed
// (compressed, immutable) copy via a COW directory-slot store. The raw
// chunk objects are never mutated — a concurrent reader that captured
// the directory earlier keeps reading its raw versions safely. An
// unsealed chunk implies the directory was already made private to the
// current generation by the mutation that created it, so the slot
// stores are invisible to every published snapshot; mutableDir covers
// the remaining first-publish / encoding-toggled cases.
func (t *Table) sealChunksLocked() {
	if !ChunkEncoding() {
		return
	}
	for _, c := range t.cols {
		for ci, ck := range c.chunks {
			if ck == nil || ck.sealed {
				continue
			}
			c.mutableDir(t.wgen)
			c.chunks[ci] = ck.seal(c.typ, t.wgen)
		}
	}
}

// Publish freezes every table of the database into a new read-only DB
// sharing chunk data with the live tables. The returned DB is safe
// for unlimited concurrent readers while the live DB keeps mutating;
// per-query temp tables (property-path closures) may still be created
// in and dropped from it under its own mutex.
func (db *DB) Publish() *DB {
	db.mu.RLock()
	live := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		live = append(live, t)
	}
	funcs := make(map[string]Func, len(db.funcs))
	for k, f := range db.funcs {
		funcs[k] = f
	}
	db.mu.RUnlock()
	out := &DB{tables: make(map[string]*Table, len(live)), funcs: funcs}
	for _, t := range live {
		out.tables[strings.ToLower(t.Name)] = t.Publish()
	}
	return out
}
