package rel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Morsel-style parallelism for the executor's inner loops. The probe
// side of hash joins and the inputs of filters and projections are
// partitioned into contiguous chunks across worker goroutines above a
// row threshold; each worker appends to its own output slice and the
// slices are concatenated in chunk order, so parallel execution
// produces exactly the rows, in exactly the order, of the sequential
// loop. Per-row state (rowCtx expression caches) is per worker.

// defaultParallelThreshold is the minimum number of input rows before
// a loop fans out. Below it, goroutine startup dominates any win.
const defaultParallelThreshold = 4096

var (
	parWorkers   atomic.Int32 // 0 = GOMAXPROCS; 1 disables parallelism
	parThreshold atomic.Int32 // 0 = defaultParallelThreshold
)

// SetParallelism configures executor parallelism. workers is the
// maximum worker count (0 restores the default of GOMAXPROCS, 1 forces
// sequential execution); threshold is the minimum input rows before a
// loop fans out (0 restores the default). Safe to call concurrently
// with running queries; tests use it to force the parallel kernels on
// (workers > 1, threshold 1) and off (workers 1).
func SetParallelism(workers, threshold int) {
	parWorkers.Store(int32(workers))
	parThreshold.Store(int32(threshold))
}

// planWorkers returns the number of workers to fan n rows across.
func planWorkers(n int) int {
	th := int(parThreshold.Load())
	if th <= 0 {
		th = defaultParallelThreshold
	}
	if n < th {
		return 1
	}
	w := int(parWorkers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// parallelChunks partitions [0, n) into w contiguous ranges and runs
// fn(chunk, lo, hi) for each on its own goroutine (inline when w <= 1).
// The first non-nil error (by chunk order) is returned. A panic inside
// a chunk — worker goroutine or inline — is contained by runChunk and
// surfaces as that chunk's error, so one bad row (or a tripped memory
// budget unwinding out of rowArena.alloc) cannot take the process down
// or strand sibling workers: every worker always reaches wg.Done.
func parallelChunks(n, w int, fn func(chunk, lo, hi int) error) error {
	if w <= 1 {
		return runChunk(fn, 0, 0, n)
	}
	errs := make([]error, w)
	var wg sync.WaitGroup
	lo := 0
	for c := 0; c < w; c++ {
		hi := lo + n/w
		if c < n%w {
			hi++
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			errs[c] = runChunk(fn, c, lo, hi)
		}(c, lo, hi)
		lo = hi
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runChunk runs one chunk with panic containment: governance aborts
// unwrap to their typed error, any other panic becomes a *PanicError.
func runChunk(fn func(chunk, lo, hi int) error, c, lo, hi int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = recoveredError(p)
		}
	}()
	return fn(c, lo, hi)
}
