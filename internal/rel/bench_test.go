package rel

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := NewDB()
	t, err := db.CreateTable("t", Schema{
		{Name: "id", Type: TInt},
		{Name: "grp", Type: TInt},
		{Name: "val", Type: TInt},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := t.CreateIndex("id"); err != nil {
		b.Fatal(err)
	}
	if err := t.CreateIndex("grp"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := t.Insert(Row{Int(int64(i)), Int(int64(i % 100)), Int(int64(i * 3))}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkSQLParse(b *testing.B) {
	q := `WITH a AS (SELECT T.id AS id, T.val AS v FROM t AS T WHERE T.grp = 5)
SELECT a.id, COALESCE(a.v, 0), CASE WHEN a.v > 10 THEN 1 ELSE 0 END FROM a AS a ORDER BY a.id LIMIT 10`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexPointLookup(b *testing.B) {
	db := benchDB(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(fmt.Sprintf("SELECT T.val FROM t AS T WHERE T.id = %d", i%100000))
		if err != nil || len(rs.Rows) != 1 {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexGroupLookup(b *testing.B) {
	db := benchDB(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT T.val FROM t AS T WHERE T.grp = 7")
		if err != nil || len(rs.Rows) != 1000 {
			b.Fatalf("err=%v rows=%d", err, len(rs.Rows))
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 20000)
	q := "SELECT a.id FROM t AS a, t AS b WHERE a.val = b.val AND a.grp = 3"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexNestedLoopJoin(b *testing.B) {
	db := benchDB(b, 100000)
	// Selective left side drives an indexed probe into the base table.
	q := "SELECT a.id, b.val FROM t AS a, t AS b WHERE a.grp = 3 AND b.id = a.val"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullScanFilter(b *testing.B) {
	db := benchDB(b, 100000)
	q := "SELECT T.id FROM t AS T WHERE T.val = 300"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanFilter measures the vectorized scan path (vecscan.go)
// over a 256k-row unindexed table, crossing selectivity with zone-map
// effectiveness: "clustered" data is ascending so min/max pruning can
// skip almost every chunk, "shuffled" data defeats the zone maps and
// forces the selection-vector kernels to evaluate every chunk.
func BenchmarkScanFilter(b *testing.B) {
	const n = 1 << 18
	build := func(b *testing.B, clustered bool) *DB {
		b.Helper()
		db := NewDB()
		t, err := db.CreateTable("sf", Schema{{Name: "v", Type: TInt}, {Name: "pad", Type: TInt}})
		if err != nil {
			b.Fatal(err)
		}
		rows := make([]Row, n)
		for i := range rows {
			v := int64(i)
			if !clustered {
				// Spread values across the whole domain per chunk so
				// every chunk's [min,max] covers every literal.
				v = int64((i*2654435761 + 12345) % n)
			}
			rows[i] = Row{Int(v), Int(int64(i))}
		}
		if _, err := t.AppendRows(rows); err != nil {
			b.Fatal(err)
		}
		return db
	}
	cases := []struct {
		name      string
		clustered bool
		query     string
		rows      int
	}{
		{"selective_zoneskip", true, "SELECT T.pad FROM sf AS T WHERE T.v = 70000", 1},
		{"selective_noskip", false, "SELECT T.pad FROM sf AS T WHERE T.v = 70000", 1},
		{"range_zoneskip", true, "SELECT T.pad FROM sf AS T WHERE T.v < 1000", 1000},
		{"range_noskip", false, "SELECT T.pad FROM sf AS T WHERE T.v < 1000", 1000},
		{"nonselective", true, "SELECT T.pad FROM sf AS T WHERE T.v >= 0", n},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			db := build(b, c.clustered)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs, err := db.Query(c.query)
				if err != nil || len(rs.Rows) != c.rows {
					b.Fatalf("err=%v rows=%d want %d", err, len(rs.Rows), c.rows)
				}
			}
		})
	}
}

// BenchmarkScanFilterLarge measures the same scan kernels at 1M+ rows
// in both chunk layouts: "raw" is the writer-side typed-slice form,
// "sealed" is the FoR bit-packed form every chunk assumes after a
// publish, where col-cmp-intlit selection compares the rebased literal
// against packed deltas in place. This is the flat-latency claim of
// the compressed representation, measured where it matters.
func BenchmarkScanFilterLarge(b *testing.B) {
	const n = 1 << 20
	build := func(b *testing.B, clustered, sealed bool) *DB {
		b.Helper()
		db := NewDB()
		t, err := db.CreateTable("sf", Schema{{Name: "v", Type: TInt}, {Name: "pad", Type: TInt}})
		if err != nil {
			b.Fatal(err)
		}
		rows := make([]Row, n)
		for i := range rows {
			v := int64(i)
			if !clustered {
				v = int64((i*2654435761 + 12345) % n)
			}
			rows[i] = Row{Int(v), Int(int64(i))}
		}
		if _, err := t.AppendRows(rows); err != nil {
			b.Fatal(err)
		}
		if sealed {
			t.Publish() // live directory now points at sealed chunks
		}
		return db
	}
	cases := []struct {
		name      string
		clustered bool
		query     string
		rows      int
	}{
		{"selective_zoneskip", true, "SELECT T.pad FROM sf AS T WHERE T.v = 700000", 1},
		{"selective_noskip", false, "SELECT T.pad FROM sf AS T WHERE T.v = 700000", 1},
		{"range_noskip", false, "SELECT T.pad FROM sf AS T WHERE T.v < 1000", 1000},
	}
	for _, c := range cases {
		for _, layout := range []string{"raw", "sealed"} {
			b.Run(c.name+"/"+layout, func(b *testing.B) {
				db := build(b, c.clustered, layout == "sealed")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rs, err := db.Query(c.query)
					if err != nil || len(rs.Rows) != c.rows {
						b.Fatalf("err=%v rows=%d want %d", err, len(rs.Rows), c.rows)
					}
				}
			})
		}
	}
}

func BenchmarkLeftOuterJoin(b *testing.B) {
	db := benchDB(b, 20000)
	q := "SELECT a.id, b.val FROM t AS a LEFT OUTER JOIN t AS b ON b.id = a.val"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertIndexed(b *testing.B) {
	db := NewDB()
	t, err := db.CreateTable("ins", Schema{{Name: "a", Type: TInt}, {Name: "b", Type: TInt}})
	if err != nil {
		b.Fatal(err)
	}
	if err := t.CreateIndex("a"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Insert(Row{Int(int64(i)), Int(int64(i * 2))}); err != nil {
			b.Fatal(err)
		}
	}
}
