package rel

import (
	"fmt"
	"testing"
)

// Tests for row deletion (tombstone.go): scan/index/Rows visibility,
// double-delete idempotence, compaction, Clear, zone-map soundness
// when a chunk's min/max witnesses are tombstoned, and row-layout
// parity.

func tombTable(t *testing.T, storage Storage, n int) (*DB, *Table) {
	t.Helper()
	defer SetDefaultStorage(StorageColumnar)
	SetDefaultStorage(storage)
	db := NewDB()
	tbl, err := db.CreateTable("t", Schema{{Name: "id", Type: TInt}, {Name: "v", Type: TInt}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), Int(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	return db, tbl
}

func TestDeleteRowVisibility(t *testing.T) {
	for _, storage := range []Storage{StorageColumnar, StorageRows} {
		t.Run(fmt.Sprintf("storage=%d", storage), func(t *testing.T) {
			db, tbl := tombTable(t, storage, 100)
			if err := tbl.DeleteRow(7); err != nil {
				t.Fatal(err)
			}
			if err := tbl.DeleteRow(7); err != nil { // idempotent
				t.Fatal(err)
			}
			if tbl.Len() != 100 || tbl.LiveLen() != 99 || tbl.DeadRows() != 1 {
				t.Fatalf("len=%d live=%d dead=%d", tbl.Len(), tbl.LiveLen(), tbl.DeadRows())
			}
			if err := tbl.DeleteRow(100); err == nil {
				t.Fatal("out-of-range delete succeeded")
			}
			// Index probe: the deleted id is gone, neighbours remain.
			if ids, _ := tbl.IndexLookup("id", Int(7)); len(ids) != 0 {
				t.Fatalf("deleted row still indexed: %v", ids)
			}
			if ids, _ := tbl.IndexLookup("id", Int(8)); len(ids) != 1 {
				t.Fatalf("live row lost from index")
			}
			// Full scan through the executor sees 99 rows.
			rs, err := db.Query("SELECT id FROM t")
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Rows) != 99 {
				t.Fatalf("scan returned %d rows, want 99", len(rs.Rows))
			}
			// Predicate scan must not resurrect the dead row.
			rs, err = db.Query("SELECT id FROM t WHERE id = 7")
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Rows) != 0 {
				t.Fatalf("dead row matched a filter: %v", rs.Rows)
			}
			if got := len(tbl.Rows()); got != 99 {
				t.Fatalf("Rows() returned %d, want 99", got)
			}
		})
	}
}

// TestDeleteZoneWitness tombstones exactly the rows carrying a chunk's
// zone-map min and max, then scans for the surviving values: the chunk
// must not be pruned (the widen-only bounds still cover live data) and
// the dead extremes must not match.
func TestDeleteZoneWitness(t *testing.T) {
	db, tbl := tombTable(t, StorageColumnar, 0)
	// One chunk: v in [0, 990]; min witness row 0, max witness row 99.
	for i := 0; i < 100; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), Int(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.DeleteRow(0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.DeleteRow(99); err != nil {
		t.Fatal(err)
	}
	// The live maximum (980) sits inside the stale zone range; pruning
	// on the stale bounds must still admit the chunk.
	rs, err := db.Query("SELECT id FROM t WHERE v >= 980")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 98 {
		t.Fatalf("live max not found after witness delete: %v", rs.Rows)
	}
	// And the dead witnesses do not match even though the zone range
	// still includes them.
	for _, v := range []int{0, 990} {
		rs, err := db.Query(fmt.Sprintf("SELECT id FROM t WHERE v = %d", v))
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 0 {
			t.Fatalf("dead zone witness v=%d matched: %v", v, rs.Rows)
		}
	}
}

// TestDeleteCompaction crosses the per-chunk compaction threshold and
// checks the chunk is rewritten correctly at the next publish: dead
// cells cleared, zone map rebuilt over survivors, scans unchanged.
func TestDeleteCompaction(t *testing.T) {
	db, tbl := tombTable(t, StorageColumnar, chunkRows)
	// Delete the top quarter of the chunk — the rows carrying the
	// largest v values — to push dirty past tombCompactDead.
	for i := chunkRows - tombCompactDead; i < chunkRows; i++ {
		if err := tbl.DeleteRow(i); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction runs at publish time, on the writer's private chunks.
	snap := tbl.Publish()
	if got := tbl.Compactions(); got != 1 {
		t.Fatalf("compactions=%d want 1", got)
	}
	live := chunkRows - tombCompactDead
	if snap.LiveLen() != live {
		t.Fatalf("snapshot live=%d want %d", snap.LiveLen(), live)
	}
	if tbl.LiveLen() != live {
		t.Fatalf("live=%d want %d", tbl.LiveLen(), live)
	}
	// After compaction the zone max shrank to the live maximum, so a
	// range above it prunes the chunk (and returns nothing).
	rs, err := db.Query(fmt.Sprintf("SELECT id FROM t WHERE v >= %d", live*10))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Fatalf("compacted chunk matched dead values: %d rows", len(rs.Rows))
	}
	ck := tbl.cols[1].chunkOf(0)
	if ck == nil || ck.max >= int64(live*10) {
		t.Fatalf("zone map not tightened by compaction: max=%v", ck.max)
	}
	// Cleared cells must not surface as NULLs in scans.
	rs, err = db.Query("SELECT id FROM t WHERE v IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Fatalf("compacted cells leaked as NULL: %d rows", len(rs.Rows))
	}
	rs, err = db.Query("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != live {
		t.Fatalf("scan after compaction returned %d rows, want %d", len(rs.Rows), live)
	}
}

// TestDeleteFullChunkSkip kills a whole chunk and verifies the scan
// still returns the other chunks' rows.
func TestDeleteFullChunkSkip(t *testing.T) {
	db, tbl := tombTable(t, StorageColumnar, 3*chunkRows)
	for i := chunkRows; i < 2*chunkRows; i++ {
		if err := tbl.DeleteRow(i); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := db.Query("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2*chunkRows {
		t.Fatalf("got %d rows, want %d", len(rs.Rows), 2*chunkRows)
	}
}

func TestTableClear(t *testing.T) {
	for _, storage := range []Storage{StorageColumnar, StorageRows} {
		t.Run(fmt.Sprintf("storage=%d", storage), func(t *testing.T) {
			db, tbl := tombTable(t, storage, 50)
			if err := tbl.DeleteRow(3); err != nil {
				t.Fatal(err)
			}
			tbl.Clear()
			if tbl.Len() != 0 || tbl.LiveLen() != 0 || tbl.DeadRows() != 0 {
				t.Fatalf("not empty after Clear: len=%d live=%d dead=%d", tbl.Len(), tbl.LiveLen(), tbl.DeadRows())
			}
			if ids, _ := tbl.IndexLookup("id", Int(5)); len(ids) != 0 {
				t.Fatalf("index survived Clear: %v", ids)
			}
			// Table is reusable: insert and query again.
			if err := tbl.Insert(Row{Int(1), Int(2)}); err != nil {
				t.Fatal(err)
			}
			rs, err := db.Query("SELECT v FROM t WHERE id = 1")
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Rows) != 1 || rs.Rows[0][0].I != 2 {
				t.Fatalf("reuse after Clear failed: %v", rs.Rows)
			}
		})
	}
}

// TestCreateIndexAfterDelete builds an index on a table that already
// has tombstones: dead rows must not enter the posting lists.
func TestCreateIndexAfterDelete(t *testing.T) {
	for _, storage := range []Storage{StorageColumnar, StorageRows} {
		t.Run(fmt.Sprintf("storage=%d", storage), func(t *testing.T) {
			_, tbl := tombTable(t, storage, 20)
			if err := tbl.DeleteRow(4); err != nil {
				t.Fatal(err)
			}
			if err := tbl.CreateIndex("v"); err != nil {
				t.Fatal(err)
			}
			if ids, ok := tbl.IndexLookup("v", Int(40)); !ok || len(ids) != 0 {
				t.Fatalf("dead row indexed by late CreateIndex: %v", ids)
			}
			if ids, _ := tbl.IndexLookup("v", Int(50)); len(ids) != 1 {
				t.Fatalf("live row missing from late index")
			}
		})
	}
}
