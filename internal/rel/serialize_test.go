package rel

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

func snapshotRoundTrip(t *testing.T, src *Table) *Table {
	t.Helper()
	buf, err := src.EncodeSnapshot(nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dst := NewTable(src.Name, src.Schema)
	if err := dst.DecodeSnapshot(buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return dst
}

func rowsEqual(t *testing.T, a, b []Row) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("row count %d != %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("row %d width %d != %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			av, bv := a[i][j], b[i][j]
			if av.K != bv.K || av.I != bv.I || av.S != bv.S ||
				(av.F != bv.F && !(math.IsNaN(av.F) && math.IsNaN(bv.F))) {
				t.Fatalf("row %d col %d: %v != %v", i, j, av, bv)
			}
		}
	}
}

func buildMixedTable(t *testing.T) *Table {
	t.Helper()
	tb := NewTable("T", Schema{
		{Name: "a", Type: TInt},
		{Name: "b", Type: TString},
		{Name: "c", Type: TFloat},
	})
	for i := 0; i < 2600; i++ {
		r := Row{Int(int64(i * 7)), Str(fmt.Sprintf("s%d", i)), Float(float64(i) / 3)}
		switch i % 5 {
		case 1:
			r[0] = Null
		case 2:
			r[1] = Null
		case 3:
			r[0] = Str("exc") // kind mismatch → exception map
			r[2] = Null
		case 4:
			r[2] = Bool(true) // exception in a float column
		}
		if err := tb.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := buildMixedTable(t)
	dst := snapshotRoundTrip(t, src)
	rowsEqual(t, src.Rows(), dst.Rows())
	if dst.Len() != src.Len() || dst.DeadRows() != 0 {
		t.Fatalf("len=%d dead=%d", dst.Len(), dst.DeadRows())
	}
	if err := dst.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	ids, ok := dst.IndexLookup("a", Int(35))
	if !ok || len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("index probe after decode: %v %v", ids, ok)
	}
}

// TestSnapshotReclaimsDeadCells deletes most rows and checks that the
// encoding shrinks while the decoded table is row-identical (and keeps
// stable physical indices via the preserved tombstone bitmaps).
func TestSnapshotReclaimsDeadCells(t *testing.T) {
	src := buildMixedTable(t)
	full, err := src.EncodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.Len(); i++ {
		if i%8 != 0 {
			if err := src.DeleteRow(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	small, err := src.EncodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) >= len(full) {
		t.Fatalf("delete-heavy encoding did not shrink: %d >= %d", len(small), len(full))
	}
	dst := snapshotRoundTrip(t, src)
	rowsEqual(t, src.Rows(), dst.Rows())
	if dst.DeadRows() != src.DeadRows() || dst.Len() != src.Len() {
		t.Fatalf("dead=%d/%d len=%d/%d", dst.DeadRows(), src.DeadRows(), dst.Len(), src.Len())
	}
	// Physical indices must be preserved: live row 40 still reads back.
	r := dst.RowAt(40)
	if r[0].I != 280 {
		t.Fatalf("row 40 after round trip: %v", r)
	}
	if dst.CellAt(1, 0).K != KindNull {
		t.Fatalf("dead row 1 cell resurfaced: %v", dst.CellAt(1, 0))
	}
}

// TestSnapshotDecodeCorruption feeds truncations and bit flips of a
// valid encoding to the decoder: it must error or succeed, never panic,
// and the table must remain usable (empty) after a failed decode.
func TestSnapshotDecodeCorruption(t *testing.T) {
	src := buildMixedTable(t)
	for i := 0; i < 40; i++ {
		src.DeleteRow(i * 3)
	}
	buf, err := src.EncodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut += 17 {
		dst := NewTable("T", src.Schema)
		if err := dst.DecodeSnapshot(buf[:cut]); err == nil {
			// A truncation that still parses must at least be
			// self-consistent.
			_ = dst.Rows()
		}
		if dst.Len() != 0 && dst.Len() != src.Len() {
			_ = dst.Rows() // must not panic regardless
		}
		if err := dst.Insert(make(Row, len(src.Schema))); err != nil {
			t.Fatalf("cut=%d: table unusable after decode: %v", cut, err)
		}
	}
	for pos := 0; pos < len(buf); pos += 13 {
		mut := append([]byte(nil), buf...)
		mut[pos] ^= 0x55
		dst := NewTable("T", src.Schema)
		if err := dst.DecodeSnapshot(mut); err == nil {
			_ = dst.Rows()
		}
	}
}

func TestSnapshotDecodeGuards(t *testing.T) {
	src := NewTable("T", Schema{{Name: "a", Type: TInt}})
	src.Insert(Row{Int(1)})
	buf, err := src.EncodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	wrong := NewTable("W", Schema{{Name: "a", Type: TInt}, {Name: "b", Type: TInt}})
	if err := wrong.DecodeSnapshot(buf); err == nil {
		t.Fatal("schema-width mismatch not rejected")
	}
	nonEmpty := NewTable("T", src.Schema)
	nonEmpty.Insert(Row{Int(2)})
	if err := nonEmpty.DecodeSnapshot(buf); err == nil {
		t.Fatal("decode into non-empty table not rejected")
	}
	if err := NewTable("T", src.Schema).DecodeSnapshot(append(buf, 0)); err == nil {
		t.Fatal("trailing bytes not rejected")
	}
	// Encoding must be deterministic for identical content.
	buf2, _ := src.EncodeSnapshot(nil)
	if !bytes.Equal(buf, buf2) {
		t.Fatal("encoding not deterministic")
	}
}
