package rel

import (
	"fmt"
	"sort"
	"strings"
)

// ResultSet is the outcome of a query.
type ResultSet struct {
	Columns []string
	Rows    []Row
}

// Query parses and executes one SQL statement.
func (db *DB) Query(sql string) (*ResultSet, error) {
	q, err := ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	return db.Exec(q)
}

// Exec executes a parsed query.
func (db *DB) Exec(q *Query) (*ResultSet, error) {
	env := make(map[string]*relation)
	for _, cte := range q.CTEs {
		rs, err := db.evalSelect(cte.Select, env)
		if err != nil {
			return nil, fmt.Errorf("in CTE %s: %w", cte.Name, err)
		}
		env[strings.ToLower(cte.Name)] = resultToRelation(rs)
	}
	return db.evalSelect(q.Body, env)
}

// resultToRelation wraps a result set as an unqualified relation.
func resultToRelation(rs *ResultSet) *relation {
	cols := make([]string, len(rs.Columns))
	for i, c := range rs.Columns {
		cols[i] = strings.ToLower(c)
	}
	r := newRelation(cols)
	r.rows = rs.Rows
	return r
}

// aliased returns a copy of base with columns qualified by alias.
func aliased(base *relation, alias string) *relation {
	alias = strings.ToLower(alias)
	cols := make([]string, len(base.cols))
	for i, c := range base.cols {
		// Strip any existing qualification.
		if j := strings.LastIndexByte(c, '.'); j >= 0 {
			c = c[j+1:]
		}
		cols[i] = alias + "." + c
	}
	r := newRelation(cols)
	r.rows = base.rows
	r.aliases[alias] = true
	return r
}

func (db *DB) evalSelect(s *Select, env map[string]*relation) (*ResultSet, error) {
	var out *ResultSet
	for i, core := range s.Cores {
		rs, err := db.evalCore(core, env)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = rs
			continue
		}
		if len(rs.Columns) != len(out.Columns) {
			return nil, fmt.Errorf("sql: UNION arms have %d vs %d columns", len(out.Columns), len(rs.Columns))
		}
		out.Rows = append(out.Rows, rs.Rows...)
		if !s.UnionAll[i-1] {
			out.Rows = dedupRows(out.Rows)
		}
	}
	if len(s.OrderBy) > 0 {
		if err := db.applyOrderBy(out, s.OrderBy); err != nil {
			return nil, err
		}
	}
	if s.Offset > 0 {
		if s.Offset >= int64(len(out.Rows)) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[s.Offset:]
		}
	}
	if s.Limit >= 0 && int64(len(out.Rows)) > s.Limit {
		out.Rows = out.Rows[:s.Limit]
	}
	return out, nil
}

func (db *DB) applyOrderBy(rs *ResultSet, items []OrderItem) error {
	rel := resultToRelation(rs)
	type keyed struct {
		row  Row
		keys []Value
	}
	ks := make([]keyed, len(rs.Rows))
	ctx := newRowCtx(rel, db)
	for i, row := range rs.Rows {
		ctx.row = row
		keys := make([]Value, len(items))
		for j, it := range items {
			v, err := evalExpr(it.Expr, ctx)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		ks[i] = keyed{row: row, keys: keys}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j, it := range items {
			ka, kb := ks[a].keys[j], ks[b].keys[j]
			// NULLs sort last (first under DESC).
			if ka.IsNull() || kb.IsNull() {
				if ka.IsNull() && kb.IsNull() {
					continue
				}
				less := kb.IsNull()
				if it.Desc {
					less = !less
				}
				return less
			}
			c, _ := Compare(ka, kb)
			if c == 0 {
				continue
			}
			if it.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range ks {
		rs.Rows[i] = ks[i].row
	}
	return nil
}

func dedupRows(rows []Row) []Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	var b strings.Builder
	for _, r := range rows {
		b.Reset()
		for _, v := range r {
			b.WriteString(v.key())
			b.WriteByte('\x1f')
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func (db *DB) evalCore(core *SelectCore, env map[string]*relation) (*ResultSet, error) {
	// Split WHERE into conjuncts.
	var conjs []Expr
	if core.Where != nil {
		conjs = conjuncts(core.Where, nil)
	}
	applied := make([]bool, len(conjs))

	// Build each FROM unit, pushing single-alias filters into pure base scans.
	units := make([]*relation, 0, len(core.From))
	for _, fi := range core.From {
		u, err := db.buildUnit(fi, conjs, applied, env)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}

	cur, err := db.joinUnits(units, conjs, applied)
	if err != nil {
		return nil, err
	}
	cur, err = db.materialize(cur)
	if err != nil {
		return nil, err
	}

	// Any unapplied conjunct must now be fully bound.
	var residual []Expr
	for i, c := range conjs {
		if !applied[i] {
			residual = append(residual, c)
			applied[i] = true
		}
	}
	if len(residual) > 0 {
		cur, err = db.filterRelation(cur, residual)
		if err != nil {
			return nil, err
		}
	}

	return db.project(core, cur)
}

// buildUnit materializes one FROM item including its explicit join chain.
func (db *DB) buildUnit(fi FromItem, conjs []Expr, applied []bool, env map[string]*relation) (*relation, error) {
	pushable := len(fi.Joins) == 0
	left, err := db.buildPrimary(fi, conjs, applied, env, pushable)
	if err != nil {
		return nil, err
	}
	for _, jc := range fi.Joins {
		right, err := db.buildPrimary(jc.Right, nil, nil, env, false)
		if err != nil {
			return nil, err
		}
		left, err = db.joinOn(left, right, jc.On, jc.Left)
		if err != nil {
			return nil, err
		}
	}
	return left, nil
}

// buildPrimary resolves a table name, CTE, or derived table. When push
// is true and the item is a base table, single-alias equality filters
// from conjs are pushed into the scan (index-accelerated) and marked
// applied.
func (db *DB) buildPrimary(fi FromItem, conjs []Expr, applied []bool, env map[string]*relation, push bool) (*relation, error) {
	alias := strings.ToLower(fi.Alias)
	if fi.Sub != nil {
		rs, err := db.evalSelect(fi.Sub, env)
		if err != nil {
			return nil, err
		}
		return aliased(resultToRelation(rs), alias), nil
	}
	if cte, ok := env[strings.ToLower(fi.Table)]; ok {
		r := aliased(cte, alias)
		if push {
			return db.pushFilters(r, alias, conjs, applied, nil)
		}
		return r, nil
	}
	t := db.Table(fi.Table)
	if t == nil {
		return nil, fmt.Errorf("sql: unknown table %q", fi.Table)
	}
	cols := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		cols[i] = alias + "." + strings.ToLower(c.Name)
	}
	r := newRelation(cols)
	r.aliases[alias] = true
	if push {
		return db.scanWithFilters(t, r, alias, conjs, applied)
	}
	r.rows = t.Rows()
	r.base = t
	return r, nil
}

// scanWithFilters scans a base table applying this alias's conjuncts,
// using a hash index for the first "col = constant" conjunct if any.
func (db *DB) scanWithFilters(t *Table, shape *relation, alias string, conjs []Expr, applied []bool) (*relation, error) {
	var mine []Expr
	var mineIdx []int
	for i, c := range conjs {
		if applied[i] {
			continue
		}
		set := map[string]bool{}
		exprAliases(c, set)
		ok := len(set) == 1 && set[alias]
		if len(set) == 0 {
			// Unqualified references: claim the conjunct when every
			// bare column resolves in this table's schema.
			bare := bareCols(c, nil)
			ok = len(bare) > 0
			for _, col := range bare {
				if t.Schema.ColumnIndex(col) < 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			mine = append(mine, c)
			mineIdx = append(mineIdx, i)
		}
	}
	// Look for an index-usable equality.
	indexCol, indexVal := "", Null
	indexConj := -1
	for k, c := range mine {
		b, ok := c.(*BinOp)
		if !ok || b.Op != "=" {
			continue
		}
		col, lit, ok := constEquality(b, alias, db)
		if !ok {
			continue
		}
		if t.HasIndex(col) {
			indexCol, indexVal, indexConj = col, lit, k
			break
		}
	}
	var rest []Expr
	for k := range mine {
		if k != indexConj {
			rest = append(rest, mine[k])
		}
	}
	out := newRelation(shape.cols)
	out.aliases[alias] = true
	ctx := newRowCtx(out, db)
	emit := func(row Row) error {
		ctx.row = row
		for _, c := range rest {
			v, err := evalExpr(c, ctx)
			if err != nil {
				return err
			}
			if !v.Truth() {
				return nil
			}
		}
		out.rows = append(out.rows, row)
		return nil
	}
	if indexConj >= 0 {
		ids, _ := t.lookup(indexCol, indexVal)
		for _, id := range ids {
			if err := emit(t.RowAt(int(id))); err != nil {
				return nil, err
			}
		}
	} else {
		// Defer the filters: a later index nested-loop join can apply
		// them per probed row, avoiding a filtered copy of the table.
		out.rows = t.Rows()
		out.base = t
		out.pending = rest
	}
	for _, i := range mineIdx {
		applied[i] = true
	}
	return out, nil
}

// bareCols collects unqualified column names referenced by e.
func bareCols(e Expr, out []string) []string {
	switch x := e.(type) {
	case *ColRef:
		if x.Alias == "" {
			out = append(out, x.Column)
		}
	case *BinOp:
		out = bareCols(x.L, out)
		out = bareCols(x.R, out)
	case *UnOp:
		out = bareCols(x.X, out)
	case *IsNullExpr:
		out = bareCols(x.X, out)
	case *InExpr:
		out = bareCols(x.X, out)
		for _, a := range x.List {
			out = bareCols(a, out)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			out = bareCols(w.Cond, out)
			out = bareCols(w.Result, out)
		}
		if x.Else != nil {
			out = bareCols(x.Else, out)
		}
	case *FuncCall:
		for _, a := range x.Args {
			out = bareCols(a, out)
		}
	}
	return out
}

// constEquality recognizes "alias.col = <constant expr>" (either side,
// the column possibly unqualified) and returns the column and value.
func constEquality(b *BinOp, alias string, db *DB) (string, Value, bool) {
	try := func(l, r Expr) (string, Value, bool) {
		cr, ok := l.(*ColRef)
		if !ok || (cr.Alias != "" && !strings.EqualFold(cr.Alias, alias)) {
			return "", Null, false
		}
		set := map[string]bool{}
		exprAliases(r, set)
		if len(set) != 0 {
			return "", Null, false
		}
		v, err := evalExpr(r, &rowCtx{db: db})
		if err != nil {
			return "", Null, false
		}
		return cr.Column, v, true
	}
	if col, v, ok := try(b.L, b.R); ok {
		return col, v, true
	}
	return try(b.R, b.L)
}

// pushFilters applies this alias's single-alias conjuncts to an already
// materialized relation (CTE reference).
func (db *DB) pushFilters(r *relation, alias string, conjs []Expr, applied []bool, _ any) (*relation, error) {
	var mine []Expr
	for i, c := range conjs {
		if applied[i] {
			continue
		}
		set := map[string]bool{}
		exprAliases(c, set)
		if len(set) == 1 && set[alias] {
			mine = append(mine, c)
			applied[i] = true
		}
	}
	if len(mine) == 0 {
		return r, nil
	}
	return db.filterRelation(r, mine)
}

func (db *DB) filterRelation(r *relation, conds []Expr) (*relation, error) {
	out := newRelation(r.cols)
	for a := range r.aliases {
		out.aliases[a] = true
	}
	ctx := newRowCtx(r, db)
	for _, row := range r.rows {
		ctx.row = row
		keep := true
		for _, c := range conds {
			v, err := evalExpr(c, ctx)
			if err != nil {
				return nil, err
			}
			if !v.Truth() {
				keep = false
				break
			}
		}
		if keep {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// joinUnits combines the comma-separated FROM units using the WHERE
// conjuncts: greedy ordering, hash joins on equality predicates,
// cross products as a last resort.
func (db *DB) joinUnits(units []*relation, conjs []Expr, applied []bool) (*relation, error) {
	if len(units) == 1 {
		return units[0], nil
	}
	used := make([]bool, len(units))
	// Start from the smallest unit.
	start := 0
	for i := 1; i < len(units); i++ {
		if len(units[i].rows) < len(units[start].rows) {
			start = i
		}
	}
	cur := units[start]
	used[start] = true
	for joined := 1; joined < len(units); joined++ {
		best, bestEq := -1, 0
		for i, u := range units {
			if used[i] {
				continue
			}
			eq := countEqLinks(cur, u, conjs, applied)
			switch {
			case best < 0,
				eq > bestEq,
				eq == bestEq && len(u.rows) < len(units[best].rows):
				best, bestEq = i, eq
			}
		}
		next := units[best]
		used[best] = true
		var err error
		cur, err = db.joinPair(cur, next, conjs, applied)
		if err != nil {
			return nil, err
		}
		// Apply any conjunct now fully bound.
		var ready []Expr
		for i, c := range conjs {
			if applied[i] {
				continue
			}
			if boundIn(c, cur) {
				ready = append(ready, c)
				applied[i] = true
			}
		}
		if len(ready) > 0 {
			cur, err = db.filterRelation(cur, ready)
			if err != nil {
				return nil, err
			}
		}
	}
	return cur, nil
}

func boundIn(c Expr, r *relation) bool {
	set := map[string]bool{}
	exprAliases(c, set)
	for a := range set {
		if !r.aliases[a] {
			return false
		}
	}
	return true
}

// eqLink describes an equality conjunct joining two relations.
type eqLink struct {
	conj int
	li   int // column position in left
	ri   int // column position in right
}

func eqLinks(l, r *relation, conjs []Expr, applied []bool) []eqLink {
	var out []eqLink
	for i, c := range conjs {
		if applied != nil && applied[i] {
			continue
		}
		b, ok := c.(*BinOp)
		if !ok || b.Op != "=" {
			continue
		}
		lc, lok := b.L.(*ColRef)
		rc, rok := b.R.(*ColRef)
		if !lok || !rok {
			continue
		}
		if li := l.colIndex(lc.Alias, lc.Column); li >= 0 {
			if ri := r.colIndex(rc.Alias, rc.Column); ri >= 0 {
				out = append(out, eqLink{conj: i, li: li, ri: ri})
				continue
			}
		}
		if li := l.colIndex(rc.Alias, rc.Column); li >= 0 {
			if ri := r.colIndex(lc.Alias, lc.Column); ri >= 0 {
				out = append(out, eqLink{conj: i, li: li, ri: ri})
			}
		}
	}
	return out
}

func countEqLinks(l, r *relation, conjs []Expr, applied []bool) int {
	return len(eqLinks(l, r, conjs, applied))
}

// materialize applies any pending filters, detaching the relation from
// its base table.
func (db *DB) materialize(r *relation) (*relation, error) {
	if len(r.pending) == 0 {
		return r, nil
	}
	out, err := db.filterRelation(r, r.pending)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pendingOK evaluates a relation's pending filters against one row,
// reusing the given cached context (created once per probe loop).
func pendingOK(ctx *rowCtx, r *relation, row Row) (bool, error) {
	if len(r.pending) == 0 {
		return true, nil
	}
	ctx.row = row
	for _, c := range r.pending {
		v, err := evalExpr(c, ctx)
		if err != nil {
			return false, err
		}
		if !v.Truth() {
			return false, nil
		}
	}
	return true, nil
}

// indexLink finds a join link whose probe side is an indexed column of
// a base-scan relation, returning the link index and column name.
func indexLink(r *relation, links []eqLink, right bool) (int, string) {
	if r.base == nil {
		return -1, ""
	}
	for i, lk := range links {
		pos := lk.ri
		if !right {
			pos = lk.li
		}
		col := r.cols[pos]
		if j := strings.LastIndexByte(col, '.'); j >= 0 {
			col = col[j+1:]
		}
		if r.base.HasIndex(col) {
			return i, col
		}
	}
	return -1, ""
}

// joinPair joins cur with next using the available equality conjuncts
// (hash join) or a cross product when none apply.
func (db *DB) joinPair(cur, next *relation, conjs []Expr, applied []bool) (*relation, error) {
	links := eqLinks(cur, next, conjs, applied)
	out := combineShape(cur, next)
	if len(links) == 0 {
		var err error
		if cur, err = db.materialize(cur); err != nil {
			return nil, err
		}
		if next, err = db.materialize(next); err != nil {
			return nil, err
		}
		for _, lr := range cur.rows {
			for _, rr := range next.rows {
				out.rows = append(out.rows, combineRows(lr, rr))
			}
		}
		return out, nil
	}
	for _, lk := range links {
		applied[lk.conj] = true
	}
	// Index nested-loop when one side is an indexed base table and the
	// other side is smaller: probe the index per row instead of
	// hashing the whole table. Pending filters of the probed side are
	// evaluated per probe.
	if li, col := indexLink(next, links, true); li >= 0 && len(cur.rows) < len(next.rows) {
		mcur, err := db.materialize(cur)
		if err != nil {
			return nil, err
		}
		pctx := newRowCtx(next, db)
		for _, lr := range mcur.rows {
			v := lr[links[li].li]
			if v.IsNull() {
				continue
			}
			ids, _ := next.base.lookup(col, v)
		probeNext:
			for _, id := range ids {
				rr := next.base.RowAt(int(id))
				for _, lk := range links {
					if !Equal(lr[lk.li], rr[lk.ri]) {
						continue probeNext
					}
				}
				ok, err := pendingOK(pctx, next, rr)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue probeNext
				}
				out.rows = append(out.rows, combineRows(lr, rr))
			}
		}
		return out, nil
	}
	if li, col := indexLink(cur, links, false); li >= 0 && len(next.rows) < len(cur.rows) {
		mnext, err := db.materialize(next)
		if err != nil {
			return nil, err
		}
		pctx := newRowCtx(cur, db)
		for _, rr := range mnext.rows {
			v := rr[links[li].ri]
			if v.IsNull() {
				continue
			}
			ids, _ := cur.base.lookup(col, v)
		probeCur:
			for _, id := range ids {
				lr := cur.base.RowAt(int(id))
				for _, lk := range links {
					if !Equal(lr[lk.li], rr[lk.ri]) {
						continue probeCur
					}
				}
				ok, err := pendingOK(pctx, cur, lr)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue probeCur
				}
				out.rows = append(out.rows, combineRows(lr, rr))
			}
		}
		return out, nil
	}
	// Build hash on next.
	var err error
	if cur, err = db.materialize(cur); err != nil {
		return nil, err
	}
	if next, err = db.materialize(next); err != nil {
		return nil, err
	}
	build := make(map[string][]Row, len(next.rows))
	var b strings.Builder
	for _, rr := range next.rows {
		k, ok := joinKey(&b, rr, links, false)
		if !ok {
			continue
		}
		build[k] = append(build[k], rr)
	}
	for _, lr := range cur.rows {
		k, ok := joinKey(&b, lr, links, true)
		if !ok {
			continue
		}
		for _, rr := range build[k] {
			out.rows = append(out.rows, combineRows(lr, rr))
		}
	}
	return out, nil
}

// joinKey builds the composite hash key for a row; left selects li/ri.
// Rows with a NULL key column never join.
func joinKey(b *strings.Builder, row Row, links []eqLink, left bool) (string, bool) {
	b.Reset()
	for _, lk := range links {
		i := lk.ri
		if left {
			i = lk.li
		}
		v := row[i]
		if v.IsNull() {
			return "", false
		}
		b.WriteString(v.key())
		b.WriteByte('\x1f')
	}
	return b.String(), true
}

func combineShape(l, r *relation) *relation {
	cols := make([]string, 0, len(l.cols)+len(r.cols))
	cols = append(cols, l.cols...)
	cols = append(cols, r.cols...)
	out := newRelation(cols)
	for a := range l.aliases {
		out.aliases[a] = true
	}
	for a := range r.aliases {
		out.aliases[a] = true
	}
	return out
}

func combineRows(l, r Row) Row {
	row := make(Row, 0, len(l)+len(r))
	row = append(row, l...)
	return append(row, r...)
}

// joinOn implements explicit [LEFT OUTER] JOIN ... ON.
func (db *DB) joinOn(left, right *relation, on Expr, outer bool) (*relation, error) {
	out := combineShape(left, right)
	onConjs := conjuncts(on, nil)
	// Equality links usable for hashing.
	var links []eqLink
	var residual []Expr
	for _, c := range onConjs {
		b, ok := c.(*BinOp)
		if ok && b.Op == "=" {
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if lok && rok {
				if li := left.colIndex(lc.Alias, lc.Column); li >= 0 {
					if ri := right.colIndex(rc.Alias, rc.Column); ri >= 0 {
						links = append(links, eqLink{li: li, ri: ri})
						continue
					}
				}
				if li := left.colIndex(rc.Alias, rc.Column); li >= 0 {
					if ri := right.colIndex(lc.Alias, lc.Column); ri >= 0 {
						links = append(links, eqLink{li: li, ri: ri})
						continue
					}
				}
			}
		}
		residual = append(residual, c)
	}
	ctx := newRowCtx(out, db)
	matchResidual := func(row Row) (bool, error) {
		ctx.row = row
		for _, c := range residual {
			v, err := evalExpr(c, ctx)
			if err != nil {
				return false, err
			}
			if !v.Truth() {
				return false, nil
			}
		}
		return true, nil
	}
	nulls := make(Row, len(right.cols))
	if li, col := indexLink(right, links, true); li >= 0 && len(left.rows) < len(right.rows) {
		for _, lr := range left.rows {
			matched := false
			v := lr[links[li].li]
			if !v.IsNull() {
				ids, _ := right.base.lookup(col, v)
			probeOn:
				for _, id := range ids {
					rr := right.base.RowAt(int(id))
					for _, lk := range links {
						if !Equal(lr[lk.li], rr[lk.ri]) {
							continue probeOn
						}
					}
					row := combineRows(lr, rr)
					ok, err := matchResidual(row)
					if err != nil {
						return nil, err
					}
					if ok {
						out.rows = append(out.rows, row)
						matched = true
					}
				}
			}
			if outer && !matched {
				out.rows = append(out.rows, combineRows(lr, nulls))
			}
		}
		return out, nil
	}
	if len(links) > 0 {
		build := make(map[string][]Row, len(right.rows))
		var b strings.Builder
		for _, rr := range right.rows {
			k, ok := joinKey(&b, rr, links, false)
			if !ok {
				continue
			}
			build[k] = append(build[k], rr)
		}
		for _, lr := range left.rows {
			matched := false
			if k, ok := joinKey(&b, lr, links, true); ok {
				for _, rr := range build[k] {
					row := combineRows(lr, rr)
					ok, err := matchResidual(row)
					if err != nil {
						return nil, err
					}
					if ok {
						out.rows = append(out.rows, row)
						matched = true
					}
				}
			}
			if outer && !matched {
				out.rows = append(out.rows, combineRows(lr, nulls))
			}
		}
		return out, nil
	}
	// Nested loop.
	for _, lr := range left.rows {
		matched := false
		for _, rr := range right.rows {
			row := combineRows(lr, rr)
			ok, err := matchResidual(row)
			if err != nil {
				return nil, err
			}
			if ok {
				out.rows = append(out.rows, row)
				matched = true
			}
		}
		if outer && !matched {
			out.rows = append(out.rows, combineRows(lr, nulls))
		}
	}
	return out, nil
}

// project evaluates the SELECT list over the joined relation.
func (db *DB) project(core *SelectCore, r *relation) (*ResultSet, error) {
	var names []string
	var exprs []Expr // nil entry means direct column copy at positions[i]
	var positions []int
	for _, item := range core.Items {
		if item.Star {
			alias := strings.ToLower(item.StarAlias)
			for i, c := range r.cols {
				if alias != "" && !strings.HasPrefix(c, alias+".") {
					continue
				}
				name := c
				if j := strings.LastIndexByte(c, '.'); j >= 0 {
					name = c[j+1:]
				}
				names = append(names, name)
				exprs = append(exprs, nil)
				positions = append(positions, i)
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*ColRef); ok {
				name = cr.Column
			} else {
				name = fmt.Sprintf("col%d", len(names)+1)
			}
		}
		names = append(names, strings.ToLower(name))
		if cr, ok := item.Expr.(*ColRef); ok {
			if i := r.colIndex(cr.Alias, cr.Column); i >= 0 {
				exprs = append(exprs, nil)
				positions = append(positions, i)
				continue
			}
		}
		exprs = append(exprs, item.Expr)
		positions = append(positions, -1)
	}
	rs := &ResultSet{Columns: names}
	ctx := newRowCtx(r, db)
	for _, row := range r.rows {
		ctx.row = row
		outRow := make(Row, len(names))
		for i := range names {
			if exprs[i] == nil {
				outRow[i] = row[positions[i]]
				continue
			}
			v, err := evalExpr(exprs[i], ctx)
			if err != nil {
				return nil, err
			}
			outRow[i] = v
		}
		rs.Rows = append(rs.Rows, outRow)
	}
	if core.Distinct {
		rs.Rows = dedupRows(rs.Rows)
	}
	return rs, nil
}
