package rel

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ResultSet is the outcome of a query.
type ResultSet struct {
	Columns []string
	Rows    []Row
}

// Query parses and executes one SQL statement.
func (db *DB) Query(sql string) (*ResultSet, error) {
	q, err := ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	return db.Exec(q)
}

// Exec executes a parsed query with no deadline and no budgets.
func (db *DB) Exec(q *Query) (*ResultSet, error) {
	return db.ExecContext(context.Background(), q, Limits{})
}

// exec is one statement execution: the database plus the query's
// governance state (cancellation signal and budget counters), threaded
// through every operator so long-running loops can checkpoint. prof is
// nil unless the execution is profiled (AnalyzeContext); every
// instrumentation hook is behind a nil check so the unprofiled path
// does no profiling work at all.
type exec struct {
	db   *DB
	gov  *govern
	prof *profiler
}

// ExecContext executes a parsed query under ctx and lim (see govern.go
// for the governance model). Cancellation and deadline expiry surface
// as ErrCanceled / ErrDeadlineExceeded, budget trips as *BudgetError,
// each within one chunk (checkpointRows rows) of work. Any panic
// raised during execution — in an operator, a compiled-expression
// closure, or a morsel worker — is recovered and returned as a
// *PanicError, leaving the DB fully usable.
func (db *DB) ExecContext(ctx context.Context, q *Query, lim Limits) (*ResultSet, error) {
	return db.execContext(ctx, q, lim, nil)
}

// execContext is the shared body of ExecContext (prof == nil) and
// AnalyzeContext (prof records per-operator and per-CTE actuals).
func (db *DB) execContext(ctx context.Context, q *Query, lim Limits, prof *profiler) (rs *ResultSet, err error) {
	defer func() {
		if p := recover(); p != nil {
			rs, err = nil, recoveredError(p)
		}
	}()
	ex := &exec{db: db, gov: newGovern(ctx, lim), prof: prof}
	if prof != nil {
		defer func() {
			prof.stats.BudgetRowsCharged = ex.gov.rows.Load()
			prof.stats.BudgetBytesCharged = ex.gov.bytes.Load()
		}()
	}
	env := make(map[string]*relation)
	live := cteLiveColumns(q)
	for i, cte := range q.CTEs {
		if err := ex.gov.check(CkCore); err != nil {
			return nil, err
		}
		name := strings.ToLower(cte.Name)
		if prof != nil {
			prof.scope = name
		}
		rs, err := ex.evalSelectLive(cte.Select, env, live[i])
		if err != nil {
			return nil, fmt.Errorf("in CTE %s: %w", cte.Name, err)
		}
		if prof != nil {
			prof.stats.CTERows[name] = int64(len(rs.Rows))
		}
		env[name] = resultToRelation(rs)
	}
	if prof != nil {
		prof.scope = ""
	}
	return ex.evalSelect(q.Body, env)
}

// resultToRelation wraps a result set as an unqualified relation.
func resultToRelation(rs *ResultSet) *relation {
	cols := make([]string, len(rs.Columns))
	for i, c := range rs.Columns {
		cols[i] = strings.ToLower(c)
	}
	r := newRelation(cols)
	r.rows = rs.Rows
	return r
}

// aliased returns a copy of base with columns qualified by alias.
func aliased(base *relation, alias string) *relation {
	alias = strings.ToLower(alias)
	cols := make([]string, len(base.cols))
	for i, c := range base.cols {
		// Strip any existing qualification.
		if j := strings.LastIndexByte(c, '.'); j >= 0 {
			c = c[j+1:]
		}
		cols[i] = alias + "." + c
	}
	r := newRelation(cols)
	r.rows = base.rows
	r.aliases[alias] = true
	return r
}

func (ex *exec) evalSelect(s *Select, env map[string]*relation) (*ResultSet, error) {
	return ex.evalSelectLive(s, env, nil)
}

// evalSelectLive is evalSelect with a live-output-column set (nil =
// all): expression items outside it are skipped, their slots left
// NULL. Pruning is only sound when the select cannot observe its own
// dead columns, so it is disabled under UNION, DISTINCT and ORDER BY.
func (ex *exec) evalSelectLive(s *Select, env map[string]*relation, live map[string]bool) (*ResultSet, error) {
	if len(s.Cores) > 1 || s.Cores[0].Distinct || len(s.OrderBy) > 0 {
		live = nil
	}
	var out *ResultSet
	// LIMIT pushdown: with a single core, no ORDER BY and no DISTINCT,
	// projection is an order-preserving 1:1 row map, so only the first
	// OFFSET+LIMIT input rows can reach the output.
	rowCap := int64(-1)
	if len(s.Cores) == 1 && len(s.OrderBy) == 0 && !s.Cores[0].Distinct && s.Limit >= 0 {
		rowCap = s.Limit
		if s.Offset > 0 {
			rowCap += s.Offset
		}
	}
	for i, core := range s.Cores {
		rs, err := ex.evalCore(core, env, rowCap, live)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = rs
			continue
		}
		if len(rs.Columns) != len(out.Columns) {
			return nil, fmt.Errorf("sql: UNION arms have %d vs %d columns", len(out.Columns), len(rs.Columns))
		}
		out.Rows = append(out.Rows, rs.Rows...)
		if !s.UnionAll[i-1] {
			if out.Rows, err = ex.dedup(out.Rows); err != nil {
				return nil, err
			}
		}
	}
	if len(s.OrderBy) > 0 {
		if err := ex.applyOrderBy(out, s.OrderBy); err != nil {
			return nil, err
		}
	}
	if s.Offset > 0 || s.Limit >= 0 {
		before := len(out.Rows)
		if s.Offset > 0 {
			if s.Offset >= int64(len(out.Rows)) {
				out.Rows = nil
			} else {
				out.Rows = out.Rows[s.Offset:]
			}
		}
		if s.Limit >= 0 && int64(len(out.Rows)) > s.Limit {
			out.Rows = out.Rows[:s.Limit]
		}
		if ex.prof != nil {
			ex.opEnd(time.Now(), OpStat{Kind: "limit", RowsIn: int64(before), RowsOut: int64(len(out.Rows)), Workers: 1})
		}
	}
	return out, nil
}

// dedup is dedupRows recorded as a "dedup" operator when profiling.
func (ex *exec) dedup(rows []Row) ([]Row, error) {
	t0 := ex.opStart()
	out, err := dedupRows(rows, ex.gov)
	if err != nil {
		return nil, err
	}
	ex.opEnd(t0, OpStat{Kind: "dedup", RowsIn: int64(len(rows)), RowsOut: int64(len(out)), Workers: 1})
	return out, nil
}

func (ex *exec) applyOrderBy(rs *ResultSet, items []OrderItem) error {
	t0 := ex.opStart()
	rel := resultToRelation(rs)
	type keyed struct {
		row  Row
		keys []Value
	}
	ks := make([]keyed, len(rs.Rows))
	ctx := newRowCtx(rel, ex.db)
	t := ticker{g: ex.gov, site: CkOrderBy}
	if err := t.flush(); err != nil {
		return err
	}
	for i, row := range rs.Rows {
		if err := t.step(); err != nil {
			return err
		}
		ctx.row = row
		keys := make([]Value, len(items))
		for j, it := range items {
			v, err := evalExpr(it.Expr, ctx)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		ks[i] = keyed{row: row, keys: keys}
	}
	// The comparison sort itself is not interruptible; the checkpoint
	// above bounds the uncancellable stretch to O(n log n) compares over
	// rows that already fit in (and were charged against) the budget.
	if err := t.flush(); err != nil {
		return err
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j, it := range items {
			ka, kb := ks[a].keys[j], ks[b].keys[j]
			// NULLs sort last (first under DESC).
			if ka.IsNull() || kb.IsNull() {
				if ka.IsNull() && kb.IsNull() {
					continue
				}
				less := kb.IsNull()
				if it.Desc {
					less = !less
				}
				return less
			}
			c, _ := Compare(ka, kb)
			if c == 0 {
				continue
			}
			if it.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range ks {
		rs.Rows[i] = ks[i].row
	}
	ex.opEnd(t0, OpStat{Kind: "order-by", RowsIn: int64(len(rs.Rows)), RowsOut: int64(len(rs.Rows)), Workers: 1})
	return nil
}

// dedupRows removes duplicate rows under key semantics, keeping first
// occurrences in order. Rows are bucketed by hash and candidates are
// verified exactly, so no key strings are built and no separator
// collision can conflate distinct rows.
func dedupRows(rows []Row, g *govern) ([]Row, error) {
	if len(rows) < 2 {
		return rows, nil
	}
	t := ticker{g: g, site: CkDedup}
	if err := t.flush(); err != nil {
		return nil, err
	}
	seen := make(map[uint64][]int32, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		if err := t.step(); err != nil {
			return nil, err
		}
		h := rowKeyHash(r)
		dup := false
		for _, j := range seen[h] {
			if rowKeyEqual(out[j], r) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], int32(len(out)))
			out = append(out, r)
		}
	}
	return out, nil
}

// evalCore evaluates one SELECT core. rowCap >= 0 bounds the number of
// projected rows (LIMIT pushdown); the caller guarantees projection
// order is final (no ORDER BY, no DISTINCT), so only the first rowCap
// joined rows can appear in the result. live (nil = all) names the
// output columns any later select can observe; projection skips the
// expression items outside it.
func (ex *exec) evalCore(core *SelectCore, env map[string]*relation, rowCap int64, live map[string]bool) (*ResultSet, error) {
	if err := ex.gov.check(CkCore); err != nil {
		return nil, err
	}
	// Split WHERE into conjuncts.
	var conjs []Expr
	if core.Where != nil {
		conjs = conjuncts(core.Where, nil)
	}
	applied := make([]bool, len(conjs))

	// Build each FROM unit, pushing single-alias filters into pure base scans.
	units := make([]*relation, 0, len(core.From))
	for _, fi := range core.From {
		u, err := ex.buildUnit(fi, conjs, applied, env)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}

	cur, err := ex.joinUnits(units, conjs, applied)
	if err != nil {
		return nil, err
	}
	cur, err = ex.materialize(cur)
	if err != nil {
		return nil, err
	}

	// Any unapplied conjunct must now be fully bound.
	var residual []Expr
	for i, c := range conjs {
		if !applied[i] {
			residual = append(residual, c)
			applied[i] = true
		}
	}
	if len(residual) > 0 {
		cur, err = ex.filterRelation(cur, residual)
		if err != nil {
			return nil, err
		}
	}

	if rowCap >= 0 && int64(len(cur.rows)) > rowCap {
		if ex.prof != nil {
			ex.opEnd(time.Now(), OpStat{Kind: "limit", Label: "pushdown", RowsIn: int64(len(cur.rows)), RowsOut: rowCap, Workers: 1})
		}
		trimmed := *cur
		trimmed.rows = cur.rows[:rowCap]
		cur = &trimmed
	}
	return ex.project(core, cur, live)
}

// buildUnit materializes one FROM item including its explicit join chain.
func (ex *exec) buildUnit(fi FromItem, conjs []Expr, applied []bool, env map[string]*relation) (*relation, error) {
	pushable := len(fi.Joins) == 0
	left, err := ex.buildPrimary(fi, conjs, applied, env, pushable)
	if err != nil {
		return nil, err
	}
	for _, jc := range fi.Joins {
		right, err := ex.buildPrimary(jc.Right, nil, nil, env, false)
		if err != nil {
			return nil, err
		}
		left, err = ex.joinOn(left, right, jc.On, jc.Left)
		if err != nil {
			return nil, err
		}
	}
	return left, nil
}

// buildPrimary resolves a table name, CTE, or derived table. When push
// is true and the item is a base table, single-alias equality filters
// from conjs are pushed into the scan (index-accelerated) and marked
// applied.
func (ex *exec) buildPrimary(fi FromItem, conjs []Expr, applied []bool, env map[string]*relation, push bool) (*relation, error) {
	alias := strings.ToLower(fi.Alias)
	if fi.Sub != nil {
		rs, err := ex.evalSelect(fi.Sub, env)
		if err != nil {
			return nil, err
		}
		return aliased(resultToRelation(rs), alias), nil
	}
	if cte, ok := env[strings.ToLower(fi.Table)]; ok {
		r := aliased(cte, alias)
		if push {
			return ex.pushFilters(r, alias, conjs, applied)
		}
		return r, nil
	}
	t := ex.db.Table(fi.Table)
	if t == nil {
		return nil, fmt.Errorf("sql: unknown table %q", fi.Table)
	}
	cols := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		cols[i] = alias + "." + strings.ToLower(c.Name)
	}
	r := newRelation(cols)
	r.aliases[alias] = true
	if push {
		return ex.scanWithFilters(t, r, alias, conjs, applied)
	}
	r.base = t
	if t.Columnar() {
		r.scan = true
	} else {
		r.rows = t.Rows()
	}
	return r, nil
}

// scanWithFilters scans a base table applying this alias's conjuncts,
// using a hash index for the first "col = constant" conjunct if any.
func (ex *exec) scanWithFilters(t *Table, shape *relation, alias string, conjs []Expr, applied []bool) (*relation, error) {
	var mine []Expr
	var mineIdx []int
	for i, c := range conjs {
		if applied[i] {
			continue
		}
		set := map[string]bool{}
		exprAliases(c, set)
		ok := len(set) == 1 && set[alias]
		if len(set) == 0 {
			// Unqualified references: claim the conjunct when every
			// bare column resolves in this table's schema.
			bare := bareCols(c, nil)
			ok = len(bare) > 0
			for _, col := range bare {
				if t.ColumnIndex(col) < 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			mine = append(mine, c)
			mineIdx = append(mineIdx, i)
		}
	}
	// Look for an index-usable equality.
	indexCol, indexVal := "", Null
	indexConj := -1
	for k, c := range mine {
		b, ok := c.(*BinOp)
		if !ok || b.Op != "=" {
			continue
		}
		col, lit, ok := constEquality(b, alias, ex.db)
		if !ok {
			continue
		}
		if t.HasIndex(col) {
			indexCol, indexVal, indexConj = col, lit, k
			break
		}
	}
	var rest []Expr
	for k := range mine {
		if k != indexConj {
			rest = append(rest, mine[k])
		}
	}
	out := newRelation(shape.cols)
	out.aliases[alias] = true
	if indexConj >= 0 {
		t0 := ex.opStart()
		pred := ex.db.compilePred(rest, out)
		ids, _ := t.lookup(indexCol, indexVal)
		rd := t.reader()
		arena := rowArena{gov: ex.gov}
		tk := ticker{g: ex.gov, site: CkFilter}
		if err := tk.flush(); err != nil {
			return nil, err
		}
		for _, id := range ids {
			row := rd.rowAt(int(id))
			ok, err := pred(row)
			if err != nil {
				return nil, err
			}
			if ok {
				if !rd.shared() {
					// Columnar reads land in the reader's scratch
					// buffer; copy survivors into the arena.
					row = arena.clone(row)
				}
				out.rows = append(out.rows, row)
				if err := tk.emit(); err != nil {
					return nil, err
				}
			} else if err := tk.step(); err != nil {
				return nil, err
			}
		}
		if err := tk.flush(); err != nil {
			return nil, err
		}
		ex.opEnd(t0, OpStat{Kind: "index-scan", Label: t.Name + "." + indexCol, RowsIn: int64(len(ids)), RowsOut: int64(len(out.rows)), Workers: 1})
	} else {
		// Defer the filters: a later index nested-loop join can apply
		// them per probed row, avoiding a filtered copy of the table —
		// and on a columnar table the whole scan stays unmaterialized
		// until the vectorized path runs it.
		out.base = t
		out.pending = rest
		if t.Columnar() {
			out.scan = true
		} else {
			out.rows = t.Rows()
		}
	}
	for _, i := range mineIdx {
		applied[i] = true
	}
	return out, nil
}

// bareCols collects unqualified column names referenced by e.
func bareCols(e Expr, out []string) []string {
	switch x := e.(type) {
	case *ColRef:
		if x.Alias == "" {
			out = append(out, x.Column)
		}
	case *BinOp:
		out = bareCols(x.L, out)
		out = bareCols(x.R, out)
	case *UnOp:
		out = bareCols(x.X, out)
	case *IsNullExpr:
		out = bareCols(x.X, out)
	case *InExpr:
		out = bareCols(x.X, out)
		for _, a := range x.List {
			out = bareCols(a, out)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			out = bareCols(w.Cond, out)
			out = bareCols(w.Result, out)
		}
		if x.Else != nil {
			out = bareCols(x.Else, out)
		}
	case *FuncCall:
		for _, a := range x.Args {
			out = bareCols(a, out)
		}
	}
	return out
}

// constEquality recognizes "alias.col = <constant expr>" (either side,
// the column possibly unqualified) and returns the column and value.
func constEquality(b *BinOp, alias string, db *DB) (string, Value, bool) {
	try := func(l, r Expr) (string, Value, bool) {
		cr, ok := l.(*ColRef)
		if !ok || (cr.Alias != "" && !strings.EqualFold(cr.Alias, alias)) {
			return "", Null, false
		}
		set := map[string]bool{}
		exprAliases(r, set)
		if len(set) != 0 {
			return "", Null, false
		}
		v, err := evalExpr(r, &rowCtx{db: db})
		if err != nil {
			return "", Null, false
		}
		return cr.Column, v, true
	}
	if col, v, ok := try(b.L, b.R); ok {
		return col, v, true
	}
	return try(b.R, b.L)
}

// pushFilters applies this alias's single-alias conjuncts to an already
// materialized relation (CTE reference).
func (ex *exec) pushFilters(r *relation, alias string, conjs []Expr, applied []bool) (*relation, error) {
	var mine []Expr
	for i, c := range conjs {
		if applied[i] {
			continue
		}
		set := map[string]bool{}
		exprAliases(c, set)
		if len(set) == 1 && set[alias] {
			mine = append(mine, c)
			applied[i] = true
		}
	}
	if len(mine) == 0 {
		return r, nil
	}
	return ex.filterRelation(r, mine)
}

func (ex *exec) filterRelation(r *relation, conds []Expr) (*relation, error) {
	if r.scan {
		// Fold the conjuncts into the scan's pending set and run the
		// vectorized scan once instead of materializing first.
		s := *r
		s.pending = append(append([]Expr(nil), r.pending...), conds...)
		return ex.vecScan(&s)
	}
	t0 := ex.opStart()
	out := newRelation(r.cols)
	for a := range r.aliases {
		out.aliases[a] = true
	}
	pred := ex.db.compilePred(conds, r)
	w := planWorkers(len(r.rows))
	parts := make([][]Row, w)
	err := parallelChunks(len(r.rows), w, func(chunk, lo, hi int) error {
		tk := ticker{g: ex.gov, site: CkFilter}
		if err := tk.flush(); err != nil {
			return err
		}
		var local []Row
		for _, row := range r.rows[lo:hi] {
			keep, err := pred(row)
			if err != nil {
				return err
			}
			if keep {
				local = append(local, row)
				err = tk.emit()
			} else {
				err = tk.step()
			}
			if err != nil {
				return err
			}
		}
		parts[chunk] = local
		return tk.flush()
	})
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		out.rows = append(out.rows, p...)
	}
	ex.opEnd(t0, OpStat{Kind: "filter", RowsIn: int64(len(r.rows)), RowsOut: int64(len(out.rows)), Workers: w})
	return out, nil
}

// joinUnits combines the comma-separated FROM units using the WHERE
// conjuncts: greedy ordering, hash joins on equality predicates,
// cross products as a last resort.
func (ex *exec) joinUnits(units []*relation, conjs []Expr, applied []bool) (*relation, error) {
	if len(units) == 1 {
		return units[0], nil
	}
	used := make([]bool, len(units))
	// Start from the smallest unit.
	start := 0
	for i := 1; i < len(units); i++ {
		if units[i].rowCount() < units[start].rowCount() {
			start = i
		}
	}
	cur := units[start]
	used[start] = true
	for joined := 1; joined < len(units); joined++ {
		best, bestEq := -1, 0
		for i, u := range units {
			if used[i] {
				continue
			}
			eq := countEqLinks(cur, u, conjs, applied)
			switch {
			case best < 0,
				eq > bestEq,
				eq == bestEq && u.rowCount() < units[best].rowCount():
				best, bestEq = i, eq
			}
		}
		next := units[best]
		used[best] = true
		var err error
		cur, err = ex.joinPair(cur, next, conjs, applied)
		if err != nil {
			return nil, err
		}
		// Apply any conjunct now fully bound.
		var ready []Expr
		for i, c := range conjs {
			if applied[i] {
				continue
			}
			if boundIn(c, cur) {
				ready = append(ready, c)
				applied[i] = true
			}
		}
		if len(ready) > 0 {
			cur, err = ex.filterRelation(cur, ready)
			if err != nil {
				return nil, err
			}
		}
	}
	return cur, nil
}

func boundIn(c Expr, r *relation) bool {
	set := map[string]bool{}
	exprAliases(c, set)
	for a := range set {
		if !r.aliases[a] {
			return false
		}
	}
	return true
}

// eqLink describes an equality conjunct joining two relations.
type eqLink struct {
	conj int
	li   int // column position in left
	ri   int // column position in right
}

func eqLinks(l, r *relation, conjs []Expr, applied []bool) []eqLink {
	var out []eqLink
	for i, c := range conjs {
		if applied != nil && applied[i] {
			continue
		}
		b, ok := c.(*BinOp)
		if !ok || b.Op != "=" {
			continue
		}
		lc, lok := b.L.(*ColRef)
		rc, rok := b.R.(*ColRef)
		if !lok || !rok {
			continue
		}
		if li := l.colIndex(lc.Alias, lc.Column); li >= 0 {
			if ri := r.colIndex(rc.Alias, rc.Column); ri >= 0 {
				out = append(out, eqLink{conj: i, li: li, ri: ri})
				continue
			}
		}
		if li := l.colIndex(rc.Alias, rc.Column); li >= 0 {
			if ri := r.colIndex(lc.Alias, lc.Column); ri >= 0 {
				out = append(out, eqLink{conj: i, li: li, ri: ri})
			}
		}
	}
	return out
}

func countEqLinks(l, r *relation, conjs []Expr, applied []bool) int {
	return len(eqLinks(l, r, conjs, applied))
}

// materialize applies any pending filters, detaching the relation from
// its base table. Columnar scans run the vectorized path (zone-map
// pruning, selection vectors) whether or not filters are pending.
func (ex *exec) materialize(r *relation) (*relation, error) {
	if r.scan {
		return ex.vecScan(r)
	}
	if len(r.pending) == 0 {
		return r, nil
	}
	out, err := ex.filterRelation(r, r.pending)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// indexLink finds a join link whose probe side is an indexed column of
// a base-scan relation, returning the link index and column name.
func indexLink(r *relation, links []eqLink, right bool) (int, string) {
	if r.base == nil {
		return -1, ""
	}
	for i, lk := range links {
		pos := lk.ri
		if !right {
			pos = lk.li
		}
		col := r.cols[pos]
		if j := strings.LastIndexByte(col, '.'); j >= 0 {
			col = col[j+1:]
		}
		if r.base.HasIndex(col) {
			return i, col
		}
	}
	return -1, ""
}

// joinPair joins cur with next using the available equality conjuncts
// (hash join) or a cross product when none apply.
func (ex *exec) joinPair(cur, next *relation, conjs []Expr, applied []bool) (*relation, error) {
	links := eqLinks(cur, next, conjs, applied)
	out := combineShape(cur, next)
	if len(links) == 0 {
		var err error
		if cur, err = ex.materialize(cur); err != nil {
			return nil, err
		}
		if next, err = ex.materialize(next); err != nil {
			return nil, err
		}
		t0 := ex.opStart()
		tk := ticker{g: ex.gov, site: CkCross}
		if err := tk.flush(); err != nil {
			return nil, err
		}
		arena := rowArena{gov: ex.gov}
		for _, lr := range cur.rows {
			for _, rr := range next.rows {
				out.rows = append(out.rows, arena.combine(lr, rr))
				if err := tk.emit(); err != nil {
					return nil, err
				}
			}
		}
		if err := tk.flush(); err != nil {
			return nil, err
		}
		ex.opEnd(t0, OpStat{Kind: "cross-join", RowsIn: int64(len(cur.rows)), BuildRows: int64(len(next.rows)), RowsOut: int64(len(out.rows)), Workers: 1})
		return out, nil
	}
	for _, lk := range links {
		applied[lk.conj] = true
	}
	// Index nested-loop when one side is an indexed base table and the
	// other side is smaller: probe the index per row instead of hashing
	// the whole table. The side sizing compares post-filter
	// cardinalities: the probing side is materialized before the
	// comparison (its pending filters would otherwise overstate it,
	// and it must be materialized to probe anyway); the indexed side's
	// raw row count is an upper bound, since materializing it would
	// destroy the very index access under consideration — its pending
	// filters are instead evaluated per probed row.
	var mcur, mnext *relation
	var err error
	if li, col := indexLink(next, links, true); li >= 0 {
		if mcur, err = ex.materialize(cur); err != nil {
			return nil, err
		}
		if len(mcur.rows) < next.rowCount() {
			if err := ex.indexProbe(out, mcur, next, links, li, col, true); err != nil {
				return nil, err
			}
			return out, nil
		}
	}
	if li, col := indexLink(cur, links, false); li >= 0 {
		if mnext, err = ex.materialize(next); err != nil {
			return nil, err
		}
		if len(mnext.rows) < cur.rowCount() {
			if err := ex.indexProbe(out, mnext, cur, links, li, col, false); err != nil {
				return nil, err
			}
			return out, nil
		}
	}
	// Hash join: build on next, probe cur.
	if mcur == nil {
		if mcur, err = ex.materialize(cur); err != nil {
			return nil, err
		}
	}
	if mnext == nil {
		if mnext, err = ex.materialize(next); err != nil {
			return nil, err
		}
	}
	if err := ex.hashJoinInto(out, mcur, mnext, links); err != nil {
		return nil, err
	}
	return out, nil
}

// indexProbe joins by probing indexed's base-table hash index with
// every probe row, verifying all links and indexed's pending filters
// per candidate. indexedIsRight states whether indexed's columns
// follow probe's in out. Probe rows are partitioned across workers;
// per-worker outputs are concatenated in input order, so the result
// is deterministic and identical to the sequential loop.
func (ex *exec) indexProbe(out *relation, probe, indexed *relation, links []eqLink, li int, col string, indexedIsRight bool) error {
	t0 := ex.opStart()
	idx := indexed.base.indexFor(col)
	if idx == nil {
		return fmt.Errorf("sql: internal: index on %q vanished", col)
	}
	keyPos := links[li].li
	if !indexedIsRight {
		keyPos = links[li].ri
	}
	pendOK := ex.db.compilePred(indexed.pending, indexed)
	w := planWorkers(len(probe.rows))
	parts := make([][]Row, w)
	err := parallelChunks(len(probe.rows), w, func(chunk, lo, hi int) error {
		tk := ticker{g: ex.gov, site: CkIndexProbe}
		if err := tk.flush(); err != nil {
			return err
		}
		var local []Row
		arena := rowArena{gov: ex.gov}
		// Each worker owns its reader: columnar reads share a per-reader
		// scratch row, consumed before the next rowAt (combine copies).
		rd := indexed.base.reader()
		for _, pr := range probe.rows[lo:hi] {
			if err := tk.step(); err != nil {
				return err
			}
			v := pr[keyPos]
			if v.IsNull() {
				continue
			}
		cand:
			for _, id := range idx.lookupVal(v) {
				if err := tk.step(); err != nil {
					return err
				}
				ir := rd.rowAt(int(id))
				for _, lk := range links {
					lv, rv := pr[lk.li], ir[lk.ri]
					if !indexedIsRight {
						lv, rv = ir[lk.li], pr[lk.ri]
					}
					if !Equal(lv, rv) {
						continue cand
					}
				}
				ok, err := pendOK(ir)
				if err != nil {
					return err
				}
				if !ok {
					continue cand
				}
				if indexedIsRight {
					local = append(local, arena.combine(pr, ir))
				} else {
					local = append(local, arena.combine(ir, pr))
				}
				if err := tk.emit(); err != nil {
					return err
				}
			}
		}
		parts[chunk] = local
		return tk.flush()
	})
	if err != nil {
		return err
	}
	for _, p := range parts {
		out.rows = append(out.rows, p...)
	}
	ex.opEnd(t0, OpStat{Kind: "index-join", Label: indexed.base.Name + "." + col, RowsIn: int64(len(probe.rows)), RowsOut: int64(len(out.rows)), Workers: w})
	return nil
}

// hashJoinInto builds a hash table on next's link columns and probes
// it with cur's rows, appending combined rows to out in probe order.
// A single int-typed link — the common case: every DPH/DS/RPH/RS join
// runs over dictionary ids — uses an exact map[int64] kernel; other
// shapes bucket by FNV-mixed uint64 hashes verified per candidate.
// The probe loop fans out across workers above the row threshold.
func (ex *exec) hashJoinInto(out *relation, cur, next *relation, links []eqLink) error {
	if len(links) == 1 {
		handled, err := ex.intHashJoin(out, cur, next, links[0])
		if err != nil {
			return err
		}
		if handled {
			return nil
		}
	}
	t0 := ex.opStart()
	bt := ticker{g: ex.gov, site: CkHashBuild}
	if err := bt.flush(); err != nil {
		return err
	}
	var built int64
	build := make(map[uint64][]Row, len(next.rows))
	for _, rr := range next.rows {
		if err := bt.step(); err != nil {
			return err
		}
		h, ok := linkKeyHash(rr, links, false)
		if !ok {
			continue
		}
		build[h] = append(build[h], rr)
		built++
		bt.addBytes(hashEntryBytes)
	}
	if err := bt.flush(); err != nil {
		return err
	}
	w := planWorkers(len(cur.rows))
	parts := make([][]Row, w)
	err := parallelChunks(len(cur.rows), w, func(chunk, lo, hi int) error {
		tk := ticker{g: ex.gov, site: CkHashProbe}
		if err := tk.flush(); err != nil {
			return err
		}
		var local []Row
		arena := rowArena{gov: ex.gov}
		for _, lr := range cur.rows[lo:hi] {
			if err := tk.step(); err != nil {
				return err
			}
			h, ok := linkKeyHash(lr, links, true)
			if !ok {
				continue
			}
			for _, rr := range build[h] {
				if linkKeyEqual(lr, rr, links) {
					local = append(local, arena.combine(lr, rr))
					if err := tk.emit(); err != nil {
						return err
					}
				}
			}
		}
		parts[chunk] = local
		return tk.flush()
	})
	if err != nil {
		return err
	}
	for _, p := range parts {
		out.rows = append(out.rows, p...)
	}
	ex.opEnd(t0, OpStat{Kind: "hash-join", Label: "generic", RowsIn: int64(len(cur.rows)), BuildRows: built, RowsOut: int64(len(out.rows)), Workers: w})
	return nil
}

// intHashJoin is the type-specialized single-link kernel: an exact
// map[int64][]Row keyed by dictionary-encoded ids, no hashing of
// formatted strings and no candidate verification. Returns false
// without joining when a build-side key value belongs to a non-int
// class (the caller then falls back to the hashed kernel); probe
// values of other classes can never equal an int key and are skipped.
func (ex *exec) intHashJoin(out *relation, cur, next *relation, link eqLink) (bool, error) {
	t0 := ex.opStart()
	bt := ticker{g: ex.gov, site: CkHashBuild}
	if err := bt.flush(); err != nil {
		return false, err
	}
	var built int64
	build := make(map[int64][]Row, len(next.rows))
	for _, rr := range next.rows {
		if err := bt.step(); err != nil {
			return false, err
		}
		k, st := intLinkKey(rr[link.ri])
		if st < 0 {
			return false, nil
		}
		if st == 0 {
			continue // NULLs never join
		}
		build[k] = append(build[k], rr)
		built++
		bt.addBytes(hashEntryBytes)
	}
	if err := bt.flush(); err != nil {
		return false, err
	}
	w := planWorkers(len(cur.rows))
	parts := make([][]Row, w)
	err := parallelChunks(len(cur.rows), w, func(chunk, lo, hi int) error {
		tk := ticker{g: ex.gov, site: CkHashProbe}
		if err := tk.flush(); err != nil {
			return err
		}
		var local []Row
		arena := rowArena{gov: ex.gov}
		for _, lr := range cur.rows[lo:hi] {
			if err := tk.step(); err != nil {
				return err
			}
			k, st := intLinkKey(lr[link.li])
			if st != 1 {
				continue
			}
			for _, rr := range build[k] {
				local = append(local, arena.combine(lr, rr))
				if err := tk.emit(); err != nil {
					return err
				}
			}
		}
		parts[chunk] = local
		return tk.flush()
	})
	if err != nil {
		return true, err
	}
	for _, p := range parts {
		out.rows = append(out.rows, p...)
	}
	ex.opEnd(t0, OpStat{Kind: "hash-join", Label: "int", RowsIn: int64(len(cur.rows)), BuildRows: built, RowsOut: int64(len(out.rows)), Workers: w})
	return true, nil
}

func combineShape(l, r *relation) *relation {
	cols := make([]string, 0, len(l.cols)+len(r.cols))
	cols = append(cols, l.cols...)
	cols = append(cols, r.cols...)
	out := newRelation(cols)
	for a := range l.aliases {
		out.aliases[a] = true
	}
	for a := range r.aliases {
		out.aliases[a] = true
	}
	return out
}

func combineRows(l, r Row) Row {
	row := make(Row, 0, len(l)+len(r))
	row = append(row, l...)
	return append(row, r...)
}

// rowArena carves output rows out of large value blocks: the join and
// projection kernels emit one row per match, and one allocation per
// row is the dominant cost of wide scans. An arena is single-goroutine
// state — each morsel worker owns its own. Block growth is charged
// against the query's memory budget (gov may be nil in governance-free
// contexts); a trip aborts via mustChargeBytes, unwound to a typed
// error at the worker or ExecContext recovery point.
type rowArena struct {
	buf  []Value
	next int // size of the next block, grown geometrically
	gov  *govern
}

func (a *rowArena) alloc(n int) Row {
	if n > len(a.buf) {
		// Start small (selective joins emit a handful of rows) and
		// double per block so bulk operators converge on large blocks.
		sz := a.next
		if sz < 64 {
			sz = 64
		}
		if sz < n {
			sz = n
		}
		if a.gov != nil {
			a.gov.mustChargeBytes(int64(sz) * valueBytes)
		}
		a.buf = make([]Value, sz)
		if sz < 16384 {
			a.next = sz * 2
		}
	}
	r := a.buf[:n:n]
	a.buf = a.buf[n:]
	return r
}

// combine is combineRows out of the arena.
func (a *rowArena) combine(l, r Row) Row {
	out := a.alloc(len(l) + len(r))
	copy(out, l)
	copy(out[len(l):], r)
	return out
}

// clone copies r into the arena.
func (a *rowArena) clone(r Row) Row {
	out := a.alloc(len(r))
	copy(out, r)
	return out
}

// allocRows allocates n zeroed rows (every cell Null) of the given
// width. Arena blocks are freshly made and never recycled, so the
// zero guarantee holds.
func (a *rowArena) allocRows(n, width int) []Row {
	out := make([]Row, n)
	for i := range out {
		out[i] = a.alloc(width)
	}
	return out
}

// joinOn implements explicit [LEFT OUTER] JOIN ... ON.
func (ex *exec) joinOn(left, right *relation, on Expr, outer bool) (*relation, error) {
	var err error
	// The left side is always iterated row-by-row; the right side stays
	// unmaterialized only on the index path below.
	if left, err = ex.materialize(left); err != nil {
		return nil, err
	}
	t0 := ex.opStart()
	out := combineShape(left, right)
	onConjs := conjuncts(on, nil)
	// Equality links usable for hashing.
	var links []eqLink
	var residual []Expr
	for _, c := range onConjs {
		b, ok := c.(*BinOp)
		if ok && b.Op == "=" {
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if lok && rok {
				if li := left.colIndex(lc.Alias, lc.Column); li >= 0 {
					if ri := right.colIndex(rc.Alias, rc.Column); ri >= 0 {
						links = append(links, eqLink{li: li, ri: ri})
						continue
					}
				}
				if li := left.colIndex(rc.Alias, rc.Column); li >= 0 {
					if ri := right.colIndex(lc.Alias, lc.Column); ri >= 0 {
						links = append(links, eqLink{li: li, ri: ri})
						continue
					}
				}
			}
		}
		residual = append(residual, c)
	}
	nulls := make(Row, len(right.cols))
	resOK := ex.db.compilePred(residual, out)
	if li, col := indexLink(right, links, true); li >= 0 && len(left.rows) < right.rowCount() {
		idx := right.base.indexFor(col)
		rd := right.base.reader()
		tk := ticker{g: ex.gov, site: CkJoinOn}
		if err := tk.flush(); err != nil {
			return nil, err
		}
		arena := rowArena{gov: ex.gov}
		for _, lr := range left.rows {
			if err := tk.step(); err != nil {
				return nil, err
			}
			matched := false
			v := lr[links[li].li]
			if !v.IsNull() && idx != nil {
			probeOn:
				for _, id := range idx.lookupVal(v) {
					if err := tk.step(); err != nil {
						return nil, err
					}
					rr := rd.rowAt(int(id))
					for _, lk := range links {
						if !Equal(lr[lk.li], rr[lk.ri]) {
							continue probeOn
						}
					}
					row := arena.combine(lr, rr)
					ok, err := resOK(row)
					if err != nil {
						return nil, err
					}
					if ok {
						out.rows = append(out.rows, row)
						matched = true
						if err := tk.emit(); err != nil {
							return nil, err
						}
					}
				}
			}
			if outer && !matched {
				out.rows = append(out.rows, arena.combine(lr, nulls))
				if err := tk.emit(); err != nil {
					return nil, err
				}
			}
		}
		if err := tk.flush(); err != nil {
			return nil, err
		}
		ex.opEnd(t0, OpStat{Kind: "join-on", Label: "index " + right.base.Name + "." + col, RowsIn: int64(len(left.rows)), RowsOut: int64(len(out.rows)), Workers: 1})
		return out, nil
	}
	if right, err = ex.materialize(right); err != nil {
		return nil, err
	}
	if len(links) > 0 {
		bt := ticker{g: ex.gov, site: CkHashBuild}
		if err := bt.flush(); err != nil {
			return nil, err
		}
		var built int64
		build := make(map[uint64][]Row, len(right.rows))
		for _, rr := range right.rows {
			if err := bt.step(); err != nil {
				return nil, err
			}
			h, ok := linkKeyHash(rr, links, false)
			if !ok {
				continue
			}
			build[h] = append(build[h], rr)
			built++
			bt.addBytes(hashEntryBytes)
		}
		if err := bt.flush(); err != nil {
			return nil, err
		}
		w := planWorkers(len(left.rows))
		parts := make([][]Row, w)
		err := parallelChunks(len(left.rows), w, func(chunk, lo, hi int) error {
			tk := ticker{g: ex.gov, site: CkJoinOn}
			if err := tk.flush(); err != nil {
				return err
			}
			var local []Row
			arena := rowArena{gov: ex.gov}
			for _, lr := range left.rows[lo:hi] {
				if err := tk.step(); err != nil {
					return err
				}
				matched := false
				if h, ok := linkKeyHash(lr, links, true); ok {
					for _, rr := range build[h] {
						if !linkKeyEqual(lr, rr, links) {
							continue
						}
						row := arena.combine(lr, rr)
						ok, err := resOK(row)
						if err != nil {
							return err
						}
						if ok {
							local = append(local, row)
							matched = true
							if err := tk.emit(); err != nil {
								return err
							}
						}
					}
				}
				if outer && !matched {
					local = append(local, arena.combine(lr, nulls))
					if err := tk.emit(); err != nil {
						return err
					}
				}
			}
			parts[chunk] = local
			return tk.flush()
		})
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			out.rows = append(out.rows, p...)
		}
		ex.opEnd(t0, OpStat{Kind: "join-on", Label: "hash", RowsIn: int64(len(left.rows)), BuildRows: built, RowsOut: int64(len(out.rows)), Workers: w})
		return out, nil
	}
	// Nested loop.
	tk := ticker{g: ex.gov, site: CkJoinOn}
	if err := tk.flush(); err != nil {
		return nil, err
	}
	arena := rowArena{gov: ex.gov}
	for _, lr := range left.rows {
		matched := false
		for _, rr := range right.rows {
			if err := tk.step(); err != nil {
				return nil, err
			}
			row := arena.combine(lr, rr)
			ok, err := resOK(row)
			if err != nil {
				return nil, err
			}
			if ok {
				out.rows = append(out.rows, row)
				matched = true
				if err := tk.emit(); err != nil {
					return nil, err
				}
			}
		}
		if outer && !matched {
			out.rows = append(out.rows, arena.combine(lr, nulls))
			if err := tk.emit(); err != nil {
				return nil, err
			}
		}
	}
	if err := tk.flush(); err != nil {
		return nil, err
	}
	ex.opEnd(t0, OpStat{Kind: "join-on", Label: "nested", RowsIn: int64(len(left.rows)), BuildRows: int64(len(right.rows)), RowsOut: int64(len(out.rows)), Workers: 1})
	return out, nil
}

// project evaluates the SELECT list over the joined relation. live
// (nil = all) is the set of output columns any downstream select can
// observe: dead expression items are not evaluated, their slot left
// NULL, which is indistinguishable to consumers of the live columns.
func (ex *exec) project(core *SelectCore, r *relation, live map[string]bool) (*ResultSet, error) {
	var names []string
	var exprs []Expr // nil entry means direct column copy at positions[i]
	var positions []int
	for _, item := range core.Items {
		if item.Star {
			alias := strings.ToLower(item.StarAlias)
			for i, c := range r.cols {
				if alias != "" && !strings.HasPrefix(c, alias+".") {
					continue
				}
				name := c
				if j := strings.LastIndexByte(c, '.'); j >= 0 {
					name = c[j+1:]
				}
				names = append(names, name)
				exprs = append(exprs, nil)
				positions = append(positions, i)
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*ColRef); ok {
				name = cr.Column
			} else {
				name = fmt.Sprintf("col%d", len(names)+1)
			}
		}
		names = append(names, strings.ToLower(name))
		if cr, ok := item.Expr.(*ColRef); ok {
			if i := r.colIndex(cr.Alias, cr.Column); i >= 0 {
				exprs = append(exprs, nil)
				positions = append(positions, i)
				continue
			}
		}
		exprs = append(exprs, item.Expr)
		positions = append(positions, -1)
	}
	if live != nil {
		// Dead-column pruning (see deadcols.go). Only expression items
		// are worth skipping — direct copies are a pointer move — and
		// only when no star item shifted the positional names the
		// analysis computed. positions[i] = -2 marks a dead slot: never
		// read from the input row, left NULL in the output.
		star := false
		for _, item := range core.Items {
			if item.Star {
				star = true
			}
		}
		if !star {
			for i := range names {
				if exprs[i] != nil && !live[names[i]] {
					exprs[i] = nil
					positions[i] = -2
				}
			}
		}
	}
	rs := &ResultSet{Columns: names}
	t0 := ex.opStart()
	if n := len(r.rows); n > 0 {
		// Compile the non-trivial projection expressions once; direct
		// column copies stay nil.
		compiled := make([]compiledExpr, len(names))
		identity := len(names) == len(r.cols)
		for i := range names {
			if exprs[i] != nil {
				compiled[i] = ex.db.compileExpr(exprs[i], r)
				identity = false
			} else if positions[i] != i {
				identity = false
			}
		}
		if identity {
			// Pure column-preserving rename (e.g. the translator's
			// `SELECT A.r0 AS v_x FROM QT2 AS A` CTE hops): reuse the
			// input rows, copying only the row-pointer slice so later
			// in-place reordering (ORDER BY) cannot alias table storage.
			if err := ex.gov.check(CkProject); err != nil {
				return nil, err
			}
			rs.Rows = append([]Row(nil), r.rows...)
			ex.opEnd(t0, OpStat{Kind: "project", Label: "identity", RowsIn: int64(n), RowsOut: int64(len(rs.Rows)), Workers: 1})
		} else {
			// One output row per input row, written in place by index, so
			// the parallel fan-out is deterministic by construction.
			rows := make([]Row, n)
			w := planWorkers(n)
			width := len(names)
			err := parallelChunks(n, w, func(chunk, lo, hi int) error {
				tk := ticker{g: ex.gov, site: CkProject}
				if err := tk.flush(); err != nil {
					return err
				}
				arena := rowArena{gov: ex.gov}
				for ri := lo; ri < hi; ri++ {
					if err := tk.emit(); err != nil {
						return err
					}
					row := r.rows[ri]
					outRow := arena.alloc(width)
					for i := range names {
						if compiled[i] == nil {
							if p := positions[i]; p >= 0 {
								outRow[i] = row[p]
							}
							continue
						}
						v, err := compiled[i](row)
						if err != nil {
							return err
						}
						outRow[i] = v
					}
					rows[ri] = outRow
				}
				return tk.flush()
			})
			if err != nil {
				return nil, err
			}
			rs.Rows = rows
			ex.opEnd(t0, OpStat{Kind: "project", RowsIn: int64(n), RowsOut: int64(len(rs.Rows)), Workers: w})
		}
	}
	if core.Distinct {
		var err error
		if rs.Rows, err = ex.dedup(rs.Rows); err != nil {
			return nil, err
		}
	}
	return rs, nil
}
