package rel

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T, db *DB, name string, schema Schema, rows []Row) *Table {
	t.Helper()
	tbl, err := db.CreateTable(name, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func peopleDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustTable(t, db, "people", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}, {Name: "age", Type: TInt}, {Name: "city", Type: TInt}}, []Row{
		{Int(1), Str("alice"), Int(30), Int(10)},
		{Int(2), Str("bob"), Int(25), Int(10)},
		{Int(3), Str("carol"), Int(35), Int(20)},
		{Int(4), Str("dan"), Null, Int(30)},
	})
	mustTable(t, db, "cities", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}}, []Row{
		{Int(10), Str("nyc")},
		{Int(20), Str("sfo")},
	})
	return db
}

func queryRows(t *testing.T, db *DB, sql string) *ResultSet {
	t.Helper()
	rs, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return rs
}

func TestSelectWhere(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT name FROM people WHERE age > 26")
	if len(rs.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d: %v", len(rs.Rows), rs.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT * FROM people")
	if len(rs.Columns) != 4 || len(rs.Rows) != 4 {
		t.Fatalf("got cols=%v rows=%d", rs.Columns, len(rs.Rows))
	}
}

func TestQualifiedStar(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT p.* FROM people AS p, cities AS c WHERE p.city = c.id")
	if len(rs.Columns) != 4 {
		t.Fatalf("want 4 columns, got %v", rs.Columns)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("want 3 rows (dan's city unmatched), got %d", len(rs.Rows))
	}
}

func TestCommaJoin(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT p.name, c.name FROM people AS p, cities AS c WHERE p.city = c.id AND c.name = 'nyc'")
	if len(rs.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d: %v", len(rs.Rows), rs.Rows)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT p.name, c.name FROM people AS p LEFT OUTER JOIN cities AS c ON p.city = c.id")
	if len(rs.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rs.Rows))
	}
	nulls := 0
	for _, r := range rs.Rows {
		if r[1].IsNull() {
			nulls++
		}
	}
	if nulls != 1 {
		t.Fatalf("want exactly 1 null-extended row, got %d", nulls)
	}
}

func TestUnionDedup(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT city FROM people UNION SELECT city FROM people")
	if len(rs.Rows) != 3 {
		t.Fatalf("want 3 distinct cities, got %d", len(rs.Rows))
	}
	rs = queryRows(t, db, "SELECT city FROM people UNION ALL SELECT city FROM people")
	if len(rs.Rows) != 8 {
		t.Fatalf("want 8 rows under UNION ALL, got %d", len(rs.Rows))
	}
}

func TestOrderLimitOffset(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT name, age FROM people ORDER BY age DESC LIMIT 2")
	if len(rs.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rs.Rows))
	}
	// NULL age sorts first under DESC per our NULLS LAST (ASC) rule inverted.
	if rs.Rows[0][0].S != "dan" && rs.Rows[0][0].S != "carol" {
		t.Fatalf("unexpected first row %v", rs.Rows[0])
	}
	rs = queryRows(t, db, "SELECT name, age FROM people ORDER BY age LIMIT 2 OFFSET 1")
	if len(rs.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rs.Rows))
	}
	if rs.Rows[0][0].S != "alice" {
		t.Fatalf("want alice second-youngest, got %v", rs.Rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT DISTINCT city FROM people")
	if len(rs.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rs.Rows))
	}
}

func TestCTE(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, `WITH adults AS (SELECT id, name FROM people WHERE age >= 30),
		named AS (SELECT a.name AS nm FROM adults AS a)
		SELECT nm FROM named ORDER BY nm`)
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "alice" || rs.Rows[1][0].S != "carol" {
		t.Fatalf("unexpected result %v", rs.Rows)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT s.name FROM (SELECT name, age FROM people WHERE age < 31) AS s WHERE s.age > 26")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "alice" {
		t.Fatalf("unexpected result %v", rs.Rows)
	}
}

func TestCaseCoalesce(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT name, CASE WHEN age IS NULL THEN 'unknown' ELSE 'known' END AS k, COALESCE(age, 0 - 1) AS a FROM people WHERE name = 'dan'")
	if len(rs.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(rs.Rows))
	}
	if rs.Rows[0][1].S != "unknown" || rs.Rows[0][2].I != -1 {
		t.Fatalf("unexpected row %v", rs.Rows[0])
	}
}

func TestInExpr(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT name FROM people WHERE city IN (10, 20)")
	if len(rs.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rs.Rows))
	}
	rs = queryRows(t, db, "SELECT name FROM people WHERE city NOT IN (10)")
	if len(rs.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rs.Rows))
	}
}

func TestIsNull(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT name FROM people WHERE age IS NULL")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "dan" {
		t.Fatalf("unexpected %v", rs.Rows)
	}
	rs = queryRows(t, db, "SELECT name FROM people WHERE age IS NOT NULL")
	if len(rs.Rows) != 3 {
		t.Fatalf("want 3, got %d", len(rs.Rows))
	}
}

func TestIndexLookupMatchesScan(t *testing.T) {
	db := NewDB()
	tbl := mustTable(t, db, "t", Schema{{Name: "k", Type: TInt}, {Name: "v", Type: TInt}}, nil)
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert(Row{Int(int64(i % 37)), Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	scan := queryRows(t, db, "SELECT v FROM t WHERE k = 5")
	if err := tbl.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	idx := queryRows(t, db, "SELECT v FROM t WHERE k = 5")
	if len(scan.Rows) != len(idx.Rows) || len(idx.Rows) == 0 {
		t.Fatalf("index lookup rows %d != scan rows %d", len(idx.Rows), len(scan.Rows))
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	db := NewDB()
	tbl := mustTable(t, db, "t", Schema{{Name: "k", Type: TInt}}, nil)
	if err := tbl.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(Row{Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	rs := queryRows(t, db, "SELECT k FROM t WHERE k = 7")
	if len(rs.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(rs.Rows))
	}
}

func TestStringIndex(t *testing.T) {
	db := NewDB()
	tbl := mustTable(t, db, "t", Schema{{Name: "s", Type: TString}}, []Row{{Str("a")}, {Str("b")}, {Str("a")}})
	if err := tbl.CreateIndex("s"); err != nil {
		t.Fatal(err)
	}
	rs := queryRows(t, db, "SELECT s FROM t WHERE s = 'a'")
	if len(rs.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rs.Rows))
	}
}

func TestThreeWayJoinOrdering(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "a", Schema{{Name: "x", Type: TInt}}, []Row{{Int(1)}, {Int(2)}, {Int(3)}})
	mustTable(t, db, "b", Schema{{Name: "x", Type: TInt}, {Name: "y", Type: TInt}}, []Row{{Int(1), Int(10)}, {Int(2), Int(20)}})
	mustTable(t, db, "c", Schema{{Name: "y", Type: TInt}, {Name: "z", Type: TString}}, []Row{{Int(10), Str("ten")}, {Int(30), Str("thirty")}})
	rs := queryRows(t, db, "SELECT a.x, c.z FROM a AS a, b AS b, c AS c WHERE a.x = b.x AND b.y = c.y")
	if len(rs.Rows) != 1 || rs.Rows[0][1].S != "ten" {
		t.Fatalf("unexpected %v", rs.Rows)
	}
}

func TestCrossJoinFallback(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "a", Schema{{Name: "x", Type: TInt}}, []Row{{Int(1)}, {Int(2)}})
	mustTable(t, db, "b", Schema{{Name: "y", Type: TInt}}, []Row{{Int(3)}, {Int(4)}})
	rs := queryRows(t, db, "SELECT a.x, b.y FROM a AS a, b AS b")
	if len(rs.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rs.Rows))
	}
}

func TestNullNeverJoins(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "a", Schema{{Name: "x", Type: TInt}}, []Row{{Null}, {Int(1)}})
	mustTable(t, db, "b", Schema{{Name: "x", Type: TInt}}, []Row{{Null}, {Int(1)}})
	rs := queryRows(t, db, "SELECT a.x FROM a AS a, b AS b WHERE a.x = b.x")
	if len(rs.Rows) != 1 {
		t.Fatalf("null keys must not join; got %d rows", len(rs.Rows))
	}
}

func TestScalarFunctions(t *testing.T) {
	db := peopleDB(t)
	db.RegisterFunc("double", func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].K != KindInt {
			return Null, fmt.Errorf("double: want one int")
		}
		return Int(args[0].I * 2), nil
	})
	rs := queryRows(t, db, "SELECT double(age) FROM people WHERE name = 'bob'")
	if rs.Rows[0][0].I != 50 {
		t.Fatalf("want 50, got %v", rs.Rows[0][0])
	}
	rs = queryRows(t, db, "SELECT name FROM people WHERE contains(name, 'aro')")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "carol" {
		t.Fatalf("unexpected %v", rs.Rows)
	}
}

func TestArithmetic(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT age + 1, age * 2, age - 5, age / 5 FROM people WHERE name = 'alice'")
	r := rs.Rows[0]
	if r[0].I != 31 || r[1].I != 60 || r[2].I != 25 || r[3].I != 6 {
		t.Fatalf("unexpected %v", r)
	}
}

func TestUnionArityMismatch(t *testing.T) {
	db := peopleDB(t)
	_, err := db.Query("SELECT id FROM people UNION SELECT id, name FROM people")
	if err == nil {
		t.Fatal("want arity error")
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	db := peopleDB(t)
	if _, err := db.Query("SELECT x FROM nosuch"); err == nil {
		t.Fatal("want unknown table error")
	}
	if _, err := db.Query("SELECT nosuch FROM people"); err == nil {
		t.Fatal("want unknown column error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"WITH x AS SELECT 1 FROM t SELECT 1 FROM x",
		"SELECT * FROM t extra garbage (",
		"SELECT 'unterminated FROM t",
	}
	for _, sql := range bad {
		if _, err := ParseQuery(sql); err == nil {
			t.Errorf("expected parse error for %q", sql)
		}
	}
}

func TestValueCompareProperties(t *testing.T) {
	// Compare is antisymmetric and consistent with Equal for ints.
	f := func(a, b int64) bool {
		c1, ok1 := Compare(Int(a), Int(b))
		c2, ok2 := Compare(Int(b), Int(a))
		if !ok1 || !ok2 {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueKeyInjectiveForInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := Int(a).key(), Int(b).key()
		return (ka == kb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNullComparisonsAreUnknown(t *testing.T) {
	db := peopleDB(t)
	// dan has NULL age: neither < nor >= matches him.
	lt := queryRows(t, db, "SELECT name FROM people WHERE age < 100")
	ge := queryRows(t, db, "SELECT name FROM people WHERE age >= 100")
	if len(lt.Rows)+len(ge.Rows) != 3 {
		t.Fatalf("NULL row leaked into comparison results: %d + %d", len(lt.Rows), len(ge.Rows))
	}
}

func TestEstimateBytesGrowsWithNulls(t *testing.T) {
	db := NewDB()
	schema := Schema{{Name: "a", Type: TInt}, {Name: "b", Type: TInt}}
	tbl := mustTable(t, db, "t", schema, []Row{{Int(1), Int(2)}})
	full := tbl.EstimateBytes()
	wide := mustTable(t, db, "w", Schema{{Name: "a", Type: TInt}, {Name: "b", Type: TInt}, {Name: "c", Type: TInt}}, []Row{{Int(1), Int(2), Null}})
	if wide.EstimateBytes() <= full {
		t.Fatal("null column must cost something")
	}
	if wide.EstimateBytes() >= full+8 {
		t.Fatal("null column must cost less than a populated int column")
	}
}

func TestOrderByExpression(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT name, age FROM people WHERE age IS NOT NULL ORDER BY 0 - age")
	if rs.Rows[0][0].S != "carol" {
		t.Fatalf("want carol first, got %v", rs.Rows[0])
	}
}

func TestResultColumnsNamed(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT name AS n, age FROM people")
	want := []string{"n", "age"}
	if !reflect.DeepEqual(rs.Columns, want) {
		t.Fatalf("columns = %v, want %v", rs.Columns, want)
	}
}

func TestTableRowWidthMismatch(t *testing.T) {
	db := NewDB()
	tbl := mustTable(t, db, "t", Schema{{Name: "a", Type: TInt}}, nil)
	if err := tbl.Insert(Row{Int(1), Int(2)}); err == nil {
		t.Fatal("want width error")
	}
}

func TestDuplicateTable(t *testing.T) {
	db := NewDB()
	mustTable(t, db, "t", Schema{{Name: "a", Type: TInt}}, nil)
	if _, err := db.CreateTable("T", Schema{{Name: "a", Type: TInt}}); err == nil {
		t.Fatal("want duplicate table error (case-insensitive)")
	}
}

func TestParenthesizedUnionArm(t *testing.T) {
	db := peopleDB(t)
	rs := queryRows(t, db, "SELECT id FROM people UNION ALL (SELECT id FROM cities)")
	if len(rs.Rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rs.Rows))
	}
}

func TestLeftJoinResidualOn(t *testing.T) {
	db := peopleDB(t)
	// ON has an extra non-equi condition restricting matches.
	rs := queryRows(t, db, "SELECT p.name, c.name FROM people AS p LEFT OUTER JOIN cities AS c ON p.city = c.id AND p.age > 28")
	nulls := 0
	for _, r := range rs.Rows {
		if r[1].IsNull() {
			nulls++
		}
	}
	// Only alice (30, nyc) and carol (35, sfo) satisfy the residual.
	if len(rs.Rows) != 4 || nulls != 2 {
		t.Fatalf("rows=%d nulls=%d, want 4/2", len(rs.Rows), nulls)
	}
}
