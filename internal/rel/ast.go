package rel

import "strings"

// The SQL abstract syntax tree. Only the subset used by the SPARQL
// translators is modeled; see the package comment for the inventory.

// Query is a full statement: optional CTEs plus a select body.
type Query struct {
	CTEs []CTE
	Body *Select
}

// CTE is one WITH entry: name AS (select).
type CTE struct {
	Name   string
	Select *Select
}

// Select is a select statement, possibly a UNION chain. Each arm of the
// union is a SelectCore; modifiers apply to the union result.
type Select struct {
	Cores    []*SelectCore
	UnionAll []bool // UnionAll[i] says whether the union joining core i and i+1 is UNION ALL
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	Offset   int64 // 0 when absent
}

// SelectCore is one SELECT ... FROM ... WHERE ... block.
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr // nil when absent
}

// SelectItem is either a star (alias may qualify it) or an expression
// with an optional alias.
type SelectItem struct {
	Star      bool
	StarAlias string // for "T.*"
	Expr      Expr
	Alias     string
}

// FromItem is a table reference or subquery, optionally followed by a
// chain of explicit joins.
type FromItem struct {
	Table string  // table or CTE name when Sub is nil
	Sub   *Select // derived table
	Alias string
	Joins []JoinClause
}

// JoinClause is an explicit join hanging off a FromItem.
type JoinClause struct {
	Left  bool // LEFT OUTER JOIN when true, INNER JOIN when false
	Right FromItem
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a SQL expression node.
type Expr interface{ exprNode() }

// ColRef references alias.column or a bare column name.
type ColRef struct {
	Alias  string // may be ""
	Column string
}

// Lit is a literal constant value.
type Lit struct{ V Value }

// BinOp is a binary operation. Op is one of: = != < <= > >= AND OR + - * /.
type BinOp struct {
	Op   string
	L, R Expr
}

// UnOp is a unary operation: NOT or - (negation).
type UnOp struct {
	Op string
	X  Expr
}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

// InExpr is "x [NOT] IN (e1, e2, ...)".
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // nil means NULL
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// FuncCall is a scalar function call; COALESCE is handled here too.
type FuncCall struct {
	Name string
	Args []Expr
}

func (*ColRef) exprNode()     {}
func (*Lit) exprNode()        {}
func (*BinOp) exprNode()      {}
func (*UnOp) exprNode()       {}
func (*IsNullExpr) exprNode() {}
func (*InExpr) exprNode()     {}
func (*CaseExpr) exprNode()   {}
func (*FuncCall) exprNode()   {}

// conjuncts splits an expression on top-level ANDs.
func conjuncts(e Expr, out []Expr) []Expr {
	if b, ok := e.(*BinOp); ok && b.Op == "AND" {
		out = conjuncts(b.L, out)
		return conjuncts(b.R, out)
	}
	return append(out, e)
}

// exprAliases collects the lower-cased FROM aliases referenced by e.
func exprAliases(e Expr, set map[string]bool) {
	switch x := e.(type) {
	case *ColRef:
		if x.Alias != "" {
			set[strings.ToLower(x.Alias)] = true
		}
	case *BinOp:
		exprAliases(x.L, set)
		exprAliases(x.R, set)
	case *UnOp:
		exprAliases(x.X, set)
	case *IsNullExpr:
		exprAliases(x.X, set)
	case *InExpr:
		exprAliases(x.X, set)
		for _, a := range x.List {
			exprAliases(a, set)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			exprAliases(w.Cond, set)
			exprAliases(w.Result, set)
		}
		if x.Else != nil {
			exprAliases(x.Else, set)
		}
	case *FuncCall:
		for _, a := range x.Args {
			exprAliases(a, set)
		}
	}
}
