package rel

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Columnar table storage (§2 of the paper motivates it): the DPH/RPH
// relations are wide and sparse by design — k (pred_i, val_i) pairs
// per row, most NULL for any given subject — so storing rows as
// []Value burns 40 bytes per absent predicate. A colVec instead keeps
// one typed vector per column, split into fixed-size chunks of 1024
// rows. Each chunk holds a presence bitmap (1 bit per row; a cleared
// bit is NULL) and a densely packed slice of the present values, so a
// NULL costs one bit and access is rank(popcount) into the packed
// slice. Chunks that are entirely NULL are nil pointers: a column a
// subject never uses costs 8 bytes per 1024 rows.
//
// Each chunk also carries zone-map statistics — min/max over packed
// int values (maintained widening-only, so they are sound bounds even
// after updates) and the presence count (null count = chunk length −
// n) — letting the vectorized scan skip whole chunks for
// `col = const`, range and IS [NOT] NULL conjuncts before any per-row
// work.
//
// Values whose kind does not match the declared column type (a Bool
// anywhere, a Float in a TInt column — possible because Insert is
// dynamically typed) are stored out of line in the chunk's exception
// map and counted on the vector. Exception handling is chunk-granular:
// a chunk with exceptions is never zone-pruned (its int min/max say
// nothing about the out-of-line values, which may still satisfy the
// predicate — e.g. Float 5.0 matches `col = 5`), and the vectorized
// comparators consult the exception map per row. Chunks without
// exceptions keep the fast packed-only path; the RDF store itself only
// writes dictionary ids into TInt columns, so production workloads
// carry zero exceptions.
//
// Concurrency: colVec methods take no locks. The owning Table
// serializes writers with its mutex; readers either hold the table
// read lock briefly to capture the chunk directory, or read a
// published snapshot table (Table.Publish) whose chunks are immutable.
// Mutations are copy-on-write at chunk granularity: every chunk and
// chunk directory carries the writer generation (Table.wgen) that
// created it, and a writer touching a chunk from an older generation —
// one that a published snapshot may still reference — first clones it
// (deep-copying the packed slices and exception map, since set() does
// in-place rank writes and memmoves into them). Chunks created in the
// current generation are private to the writer and mutate in place; a
// table that has never been published has wgen 0 and every mutation
// stays in place, so temp tables pay nothing for the machinery.
//
// Compression (DESIGN.md §10): at publish time every raw chunk is
// replaced — as a new object, never in place, since concurrent readers
// may hold the raw pointer — by a sealed copy. Sealed TInt chunks store
// their values frame-of-reference bit-packed: ref is the minimum over
// the packed slice and each value is kept as a packedW-bit delta in
// packed, so a chunk of dictionary ids costs bits proportional to its
// value spread instead of 64 per value. Fully dense sealed chunks share
// the package-global all-ones presence bitmap (the degenerate run-length
// case; all-absent chunks are already nil). A sealed chunk is immutable:
// mutableChunk clones it back into raw form before any write, so the
// insert/delete/tombstone paths never see encoded data.

const (
	chunkShift = 10
	chunkRows  = 1 << chunkShift // rows per chunk
	chunkMask  = chunkRows - 1
	chunkWords = chunkRows / 64 // bitmap words per chunk
)

// maxPackWidth caps the bit width of the FoR encoding. A chunk whose
// value spread needs more bits keeps its raw slice when sealed: with
// word-aligned lanes a width above 32 fits at most one lane per word,
// which compresses nothing over the raw slice.
const maxPackWidth = 32

// packLanes returns the number of w-bit lanes per 64-bit word in the
// aligned packed layout. Lanes never straddle a word boundary; the
// top 64 mod w bits of each word are zero padding. The alignment
// trades a few padding bits for straddle-free extraction: scans and
// point reads touch exactly one word per value, and the scan kernels
// can test a whole word of lanes at once. Callers guarantee
// 1 <= w <= maxPackWidth.
func packLanes(w uint) uint { return 64 / w }

// packWords returns the packed-slice length for n values of width w.
func packWords(n int, w uint) int {
	if w == 0 {
		return 0
	}
	lpw := int(packLanes(w))
	return (n + lpw - 1) / lpw
}

// denseBits is the shared all-ones presence bitmap referenced by sealed
// fully-dense chunks. Only sealed (immutable) chunks may point at it;
// every mutable chunk owns a private bitmap array.
var denseBits = func() *[chunkWords]uint64 {
	var b [chunkWords]uint64
	for i := range b {
		b[i] = ^uint64(0)
	}
	return &b
}()

// chunkEncodingOff disables seal-at-publish when set. The zero value
// means encoding is ON; the knob exists for the encoded-vs-raw
// equivalence tests and the resident-bytes benchmarks.
var chunkEncodingOff atomic.Bool

// SetChunkEncoding toggles sealing chunks into the compressed form at
// publish time (on by default). Affects tables published after the
// call; already-sealed chunks stay sealed.
func SetChunkEncoding(on bool) { chunkEncodingOff.Store(!on) }

// ChunkEncoding reports whether publish-time chunk encoding is enabled.
func ChunkEncoding() bool { return !chunkEncodingOff.Load() }

// sealedChunksTotal counts chunk seal events process-wide (monotonic;
// exported as the db2rdf_encoded_chunks_total metric).
var sealedChunksTotal atomic.Int64

// SealedChunksTotal returns the number of chunks sealed into encoded
// form since process start.
func SealedChunksTotal() int64 { return sealedChunksTotal.Load() }

// colChunk is 1024 rows of one column.
type colChunk struct {
	bits *[chunkWords]uint64 // presence bitmap; clear bit = NULL. Sealed dense chunks share denseBits.
	n    int                 // number of set bits (packed values)

	// Exactly one of the packed slices is used, per the column type —
	// unless the chunk is sealed with a non-nil packed, in which case
	// ints is nil and the values live bit-packed in packed.
	ints   []int64
	floats []float64
	strs   []string

	// Sealed frame-of-reference representation (TInt only): with
	// lpw = 64/packedW lanes per word, value k is ref + the
	// packedW-bit field at bit (k mod lpw)*packedW of packed[k/lpw].
	// nil packed on a sealed chunk means the values stayed raw
	// (non-int column, or spread wider than maxPackWidth).
	packed  []uint64
	packedW uint8
	ref     int64

	// sealed marks the chunk immutable (published in encoded form).
	// mutableChunk clones a sealed chunk back to raw before mutation
	// even when its generation matches the writer's.
	sealed bool

	// Zone map over packed int values: sound (possibly loose) bounds,
	// widened on write, never narrowed. Valid only when zoneInit.
	min, max int64
	zoneInit bool

	// exc holds values whose kind mismatches the column type, keyed by
	// in-chunk offset. The packed slice carries a zero placeholder at
	// the same rank so presence arithmetic stays uniform.
	exc map[uint16]Value

	// gen is the writer generation (Table.wgen) that created or cloned
	// this chunk. A writer may only mutate chunks of the current
	// generation; older chunks are shared with published snapshots.
	gen uint64
}

// newBits allocates a private presence bitmap.
func newBits() *[chunkWords]uint64 { return new([chunkWords]uint64) }

// colVec is one column of a table.
type colVec struct {
	typ      ColumnType
	chunks   []*colChunk // nil entry = all-NULL chunk
	excCount int         // total exception values across all chunks
	sgen     uint64      // generation that owns the chunks slice (slot stores require sgen == wgen)
}

// clone deep-copies the chunk for mutation in generation wgen,
// decoding a sealed chunk back into raw form. The bitmap, packed
// slices and exception map must be copied, not shared: set() memmoves
// and rank-writes into them in place, which would corrupt the
// snapshot's view of the shared backing arrays (and a sealed dense
// chunk's bitmap is the shared global).
func (c *colChunk) clone(wgen uint64) *colChunk {
	nc := &colChunk{
		bits:     newBits(),
		n:        c.n,
		min:      c.min,
		max:      c.max,
		zoneInit: c.zoneInit,
		gen:      wgen,
	}
	*nc.bits = *c.bits
	if c.packed != nil {
		nc.ints = make([]int64, c.n, c.n+1)
		c.decodeIntsInto(nc.ints)
	} else if c.ints != nil {
		nc.ints = append(make([]int64, 0, len(c.ints)+1), c.ints...)
	}
	if c.floats != nil {
		nc.floats = append(make([]float64, 0, len(c.floats)+1), c.floats...)
	}
	if c.strs != nil {
		nc.strs = append(make([]string, 0, len(c.strs)+1), c.strs...)
	}
	if c.exc != nil {
		nc.exc = make(map[uint16]Value, len(c.exc))
		for k, v := range c.exc {
			nc.exc[k] = v
		}
	}
	return nc
}

// seal returns an immutable encoded copy of the chunk for publication:
// TInt values are frame-of-reference bit-packed (reference = minimum
// over the packed slice, including exception placeholders, so every
// delta is non-negative), a fully dense presence bitmap is replaced by
// the shared global, and float/string slices are shared as-is. The
// receiver is left untouched — concurrent readers may still hold it.
func (c *colChunk) seal(typ ColumnType, gen uint64) *colChunk {
	nc := &colChunk{
		n:        c.n,
		min:      c.min,
		max:      c.max,
		zoneInit: c.zoneInit,
		exc:      c.exc,
		floats:   c.floats,
		strs:     c.strs,
		gen:      gen,
		sealed:   true,
	}
	if c.n == chunkRows {
		nc.bits = denseBits
	} else {
		nc.bits = c.bits
	}
	if typ != TInt || len(c.ints) == 0 {
		nc.ints = c.ints
		sealedChunksTotal.Add(1)
		return nc
	}
	ref, maxv := c.ints[0], c.ints[0]
	for _, x := range c.ints[1:] {
		if x < ref {
			ref = x
		}
		if x > maxv {
			maxv = x
		}
	}
	w := uint(bits.Len64(uint64(maxv) - uint64(ref)))
	if w > maxPackWidth {
		nc.ints = c.ints
		sealedChunksTotal.Add(1)
		return nc
	}
	// Widen by one bit when that changes no word count: the spare top
	// bit per lane lets the range-scan kernels answer a whole word of
	// lanes with one guarded subtraction (see firstPassPacked).
	if w > 0 && w+1 <= maxPackWidth && packLanes(w+1) == packLanes(w) {
		w++
	}
	nc.ref = ref
	nc.packedW = uint8(w)
	nc.packed = packInts(c.ints, ref, w)
	sealedChunksTotal.Add(1)
	return nc
}

// packInts bit-packs vals-ref into word-aligned w-bit lanes. Every
// delta fits in w bits by construction. The w == 0 result is a
// non-nil empty slice: non-nil packed is what marks a chunk encoded.
func packInts(vals []int64, ref int64, w uint) []uint64 {
	out := make([]uint64, packWords(len(vals), w))
	if w == 0 {
		return out
	}
	lpw := packLanes(w)
	wi, s := 0, uint(0)
	for _, x := range vals {
		out[wi] |= (uint64(x) - uint64(ref)) << s
		s += w
		if s >= lpw*w {
			wi++
			s = 0
		}
	}
	return out
}

// intAt returns the packed int value at rank k, decoding the
// frame-of-reference bit-packed form on encoded chunks. O(1): a value
// occupies one aligned lane in one word.
func (c *colChunk) intAt(k int) int64 {
	if c.packed == nil {
		return c.ints[k]
	}
	w := uint(c.packedW)
	if w == 0 {
		return c.ref
	}
	lpw := packLanes(w)
	q := uint(k) / lpw
	s := (uint(k) - q*lpw) * w
	return c.ref + int64(c.packed[q]>>s&(uint64(1)<<w-1))
}

// decodeIntsInto materializes the chunk's int values (raw or packed)
// into dst, which must have length c.n.
func (c *colChunk) decodeIntsInto(dst []int64) {
	if c.packed == nil {
		copy(dst, c.ints)
		return
	}
	w := uint(c.packedW)
	if w == 0 {
		for k := range dst {
			dst[k] = c.ref
		}
		return
	}
	lpw := int(packLanes(w))
	mask := uint64(1)<<w - 1
	k := 0
	for wi := 0; k < len(dst); wi++ {
		word := c.packed[wi]
		lanes := lpw
		if rest := len(dst) - k; rest < lanes {
			lanes = rest
		}
		for j := 0; j < lanes; j++ {
			dst[k] = c.ref + int64(word&mask)
			word >>= w
			k++
		}
	}
}

// mutableDir makes the chunk directory writable in generation wgen.
// Published snapshots capture the directory as a len-capped slice, so
// appends past the captured length are invisible to them — but a slot
// store (chunks[ci] = x) lands in the shared backing array and must be
// preceded by this copy.
func (v *colVec) mutableDir(wgen uint64) {
	if v.sgen != wgen {
		v.chunks = append([]*colChunk(nil), v.chunks...)
		v.sgen = wgen
	}
}

// mutableChunk returns chunk ci ready for mutation in generation wgen,
// creating or cloning it (and COW-ing the directory slot) as needed.
// Sealed chunks are cloned even at the current generation: their
// encoded form (and possibly shared bitmap) is immutable by contract.
func (v *colVec) mutableChunk(wgen uint64, ci int) *colChunk {
	ck := v.chunks[ci]
	switch {
	case ck == nil:
		ck = &colChunk{bits: newBits(), gen: wgen}
	case ck.gen != wgen || ck.sealed:
		ck = ck.clone(wgen)
	default:
		return ck
	}
	v.mutableDir(wgen)
	v.chunks[ci] = ck
	return ck
}

// has reports whether the row at in-chunk offset off is present.
func (c *colChunk) has(off int) bool {
	return c.bits[off>>6]>>(uint(off)&63)&1 == 1
}

// rank counts present rows strictly before in-chunk offset off — the
// packed-slice position of the value at off (when present).
func (c *colChunk) rank(off int) int {
	w := off >> 6
	r := bits.OnesCount64(c.bits[w] & (1<<(uint(off)&63) - 1))
	for i := 0; i < w; i++ {
		r += bits.OnesCount64(c.bits[i])
	}
	return r
}

// conforms reports whether v can live in the packed slice of a column
// of type typ (as opposed to the exception map).
func conforms(typ ColumnType, v Value) bool {
	switch typ {
	case TInt:
		return v.K == KindInt
	case TFloat:
		return v.K == KindFloat
	default:
		return v.K == KindString
	}
}

// widen grows the chunk's int zone map to cover x.
func (c *colChunk) widen(x int64) {
	if !c.zoneInit {
		c.min, c.max, c.zoneInit = x, x, true
		return
	}
	if x < c.min {
		c.min = x
	}
	if x > c.max {
		c.max = x
	}
}

// grow extends the chunk directory to cover row index i-1 (i rows).
func (v *colVec) grow(i int) {
	need := (i + chunkMask) >> chunkShift
	for len(v.chunks) < need {
		v.chunks = append(v.chunks, nil)
	}
}

// appendVal writes val at row i, which must be the next unwritten row
// (append order). Appending within a chunk always lands past every
// set bit, so the packed insert is a plain append. wgen is the owning
// table's writer generation (COW discipline; see the header comment).
func (v *colVec) appendVal(wgen uint64, i int, val Value) {
	v.grow(i + 1)
	if val.IsNull() {
		return
	}
	ci := i >> chunkShift
	ck := v.mutableChunk(wgen, ci)
	off := i & chunkMask
	ck.bits[off>>6] |= 1 << (uint(off) & 63)
	ck.n++
	if !conforms(v.typ, val) {
		v.appendPlaceholder(ck)
		if ck.exc == nil {
			ck.exc = make(map[uint16]Value)
		}
		ck.exc[uint16(off)] = val
		v.excCount++
		return
	}
	switch v.typ {
	case TInt:
		ck.widen(val.I)
		ck.ints = append(ck.ints, val.I)
	case TFloat:
		ck.floats = append(ck.floats, val.F)
	default:
		ck.strs = append(ck.strs, val.S)
	}
}

func (v *colVec) appendPlaceholder(ck *colChunk) {
	switch v.typ {
	case TInt:
		ck.ints = append(ck.ints, 0)
	case TFloat:
		ck.floats = append(ck.floats, 0)
	default:
		ck.strs = append(ck.strs, "")
	}
}

// get returns the value at row i (Null when absent). Lock-free; see
// the concurrency note at the top of the file.
func (v *colVec) get(i int) Value {
	ci := i >> chunkShift
	if ci >= len(v.chunks) {
		return Null
	}
	ck := v.chunks[ci]
	if ck == nil {
		return Null
	}
	off := i & chunkMask
	if !ck.has(off) {
		return Null
	}
	if ck.exc != nil {
		if ev, ok := ck.exc[uint16(off)]; ok {
			return ev
		}
	}
	switch v.typ {
	case TInt:
		return Int(ck.intAt(ck.rank(off)))
	case TFloat:
		return Float(ck.floats[ck.rank(off)])
	default:
		return Str(ck.strs[ck.rank(off)])
	}
}

// set replaces the value at row i, handling NULL↔value transitions
// with a packed insert/delete at the row's rank. The memmove is
// bounded by the chunk's packed size (≤1024 values). wgen is the
// owning table's writer generation (COW discipline).
func (v *colVec) set(wgen uint64, i int, val Value) {
	v.grow(i + 1)
	ci := i >> chunkShift
	off := i & chunkMask
	if ck := v.chunks[ci]; ck == nil {
		if val.IsNull() {
			return
		}
	} else if val.IsNull() && !ck.has(off) {
		// NULL→NULL no-op: don't clone a shared chunk for nothing.
		return
	}
	ck := v.mutableChunk(wgen, ci)
	present := ck.has(off)
	if val.IsNull() {
		if !present {
			return
		}
		v.deletePacked(ck, ck.rank(off))
		ck.bits[off>>6] &^= 1 << (uint(off) & 63)
		ck.n--
		if ck.exc != nil {
			if _, ok := ck.exc[uint16(off)]; ok {
				delete(ck.exc, uint16(off))
				v.excCount--
			}
		}
		return
	}
	r := ck.rank(off)
	if !present {
		v.insertPacked(ck, r)
		ck.bits[off>>6] |= 1 << (uint(off) & 63)
		ck.n++
	} else if ck.exc != nil {
		if _, ok := ck.exc[uint16(off)]; ok {
			delete(ck.exc, uint16(off))
			v.excCount--
		}
	}
	if !conforms(v.typ, val) {
		v.zeroPacked(ck, r)
		if ck.exc == nil {
			ck.exc = make(map[uint16]Value)
		}
		ck.exc[uint16(off)] = val
		v.excCount++
		return
	}
	switch v.typ {
	case TInt:
		ck.widen(val.I)
		ck.ints[r] = val.I
	case TFloat:
		ck.floats[r] = val.F
	default:
		ck.strs[r] = val.S
	}
}

func (v *colVec) insertPacked(ck *colChunk, r int) {
	switch v.typ {
	case TInt:
		ck.ints = append(ck.ints, 0)
		copy(ck.ints[r+1:], ck.ints[r:])
	case TFloat:
		ck.floats = append(ck.floats, 0)
		copy(ck.floats[r+1:], ck.floats[r:])
	default:
		ck.strs = append(ck.strs, "")
		copy(ck.strs[r+1:], ck.strs[r:])
	}
}

func (v *colVec) deletePacked(ck *colChunk, r int) {
	switch v.typ {
	case TInt:
		ck.ints = append(ck.ints[:r], ck.ints[r+1:]...)
	case TFloat:
		ck.floats = append(ck.floats[:r], ck.floats[r+1:]...)
	default:
		copy(ck.strs[r:], ck.strs[r+1:])
		ck.strs[len(ck.strs)-1] = "" // release the string for GC
		ck.strs = ck.strs[:len(ck.strs)-1]
	}
}

func (v *colVec) zeroPacked(ck *colChunk, r int) {
	switch v.typ {
	case TInt:
		ck.ints[r] = 0
	case TFloat:
		ck.floats[r] = 0
	default:
		ck.strs[r] = ""
	}
}

// chunkOf returns chunk ci, or nil when the chunk is all-NULL (or past
// the directory, which only happens on an empty vector).
func (v *colVec) chunkOf(ci int) *colChunk {
	if ci >= len(v.chunks) {
		return nil
	}
	return v.chunks[ci]
}

// gatherChunk materializes the full chunk ci into rows[*][colPos],
// walking set bits in order with a running packed cursor — the dense
// fast path used when a scan selects an entire chunk. Absent rows are
// left untouched (the caller's rows start zeroed, and the Value zero
// value is Null).
func (v *colVec) gatherChunk(ci int, rows []Row, colPos int) {
	ck := v.chunkOf(ci)
	if ck == nil {
		return
	}
	k := 0
	for w := 0; w < chunkWords; w++ {
		word := ck.bits[w]
		for word != 0 {
			off := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			var val Value
			switch v.typ {
			case TInt:
				val = Int(ck.intAt(k))
			case TFloat:
				val = Float(ck.floats[k])
			default:
				val = Str(ck.strs[k])
			}
			k++
			if ck.exc != nil {
				if ev, ok := ck.exc[uint16(off)]; ok {
					val = ev
				}
			}
			rows[off][colPos] = val
		}
	}
}

// floatBitsKey canonicalizes a float for bit-pattern hashing: all NaN
// payloads collapse to one key, mirroring keyCanon in hash.go.
func floatBitsKey(f float64) uint64 {
	if math.IsNaN(f) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(f)
}
