package rel

import "math/bits"

// Vectorized scan over a columnar base table. Instead of materializing
// every row and filtering row-at-a-time, the scan works one chunk
// (1024 rows) at a time per morsel worker:
//
//  1. zone-map check — per-chunk min/max (TInt) and presence counts
//     can prove no row of the chunk satisfies a conjunct, skipping the
//     chunk before any per-row work;
//  2. selection vector — the vectorizable conjuncts (`col <cmp> int
//     literal` on TInt columns, `col IS [NOT] NULL` on any type) are
//     evaluated directly against the packed vectors, producing the
//     in-chunk offsets of surviving rows;
//  3. residual predicates — conjuncts the vectorizer cannot express
//     (string comparisons, functions, multi-column arithmetic) run the
//     ordinary compiled-closure path over a scratch-materialized row,
//     but only for rows that survived step 2;
//  4. gather — survivors are materialized into arena rows.
//
// Governance (see govern.go): selected rows are emitted — charged
// against the row budget — exactly like the row-at-a-time filter;
// evaluated-but-rejected rows tick the checkpoint counter without
// charging, and a zone-skipped chunk counts as a single unit of work,
// so a scan that skips everything stays cancelable but a budget can
// never be tripped by rows the query never produced.

// vecOp is a vectorizable comparison.
type vecOp uint8

const (
	vecEq vecOp = iota
	vecNe
	vecLt
	vecLe
	vecGt
	vecGe
	vecIsNull
	vecNotNull
)

// vecFilter is one vectorizable conjunct: schema column `col`
// compared against the int literal `val` (unused for the null tests).
type vecFilter struct {
	col int
	op  vecOp
	val int64
}

var cmpFlip = map[string]vecOp{"=": vecEq, "!=": vecNe, "<": vecGt, "<=": vecGe, ">": vecLt, ">=": vecLe}
var cmpFwd = map[string]vecOp{"=": vecEq, "!=": vecNe, "<": vecLt, "<=": vecLe, ">": vecGt, ">=": vecGe}

// compileVecFilters splits conds into vectorizable filters and the
// residual row-at-a-time predicates. r must be a scan relation over t
// (column positions == schema positions). Exception values
// (kind-mismatched cells; see column.go) are handled per chunk: a
// chunk carrying exceptions is never zone-pruned by a comparison
// (the zone map only bounds the conforming ints) and its exception
// cells are evaluated with full cross-kind Compare semantics, so the
// vectorized result is row-for-row identical to the compiled
// row-predicate fallback.
func compileVecFilters(t *Table, r *relation, conds []Expr) (vfs []vecFilter, residual []Expr) {
	for _, c := range conds {
		switch x := c.(type) {
		case *IsNullExpr:
			if cr, ok := x.X.(*ColRef); ok {
				if pos := r.colIndex(cr.Alias, cr.Column); pos >= 0 {
					op := vecIsNull
					if x.Not {
						op = vecNotNull
					}
					vfs = append(vfs, vecFilter{col: pos, op: op})
					continue
				}
			}
		case *BinOp:
			if op, ok := cmpFwd[x.Op]; ok {
				if vf, ok2 := vecCompare(t, r, x.L, x.R, op, cmpFlip[x.Op]); ok2 {
					vfs = append(vfs, vf)
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return vfs, residual
}

// vecCompare recognizes `col <cmp> intLit` with the column on either
// side of a TInt column.
func vecCompare(t *Table, r *relation, l, rhs Expr, fwd, flip vecOp) (vecFilter, bool) {
	if cr, ok := l.(*ColRef); ok {
		if lit, ok2 := rhs.(*Lit); ok2 && lit.V.K == KindInt {
			if pos := vecIntCol(t, r, cr); pos >= 0 {
				return vecFilter{col: pos, op: fwd, val: lit.V.I}, true
			}
		}
	}
	if cr, ok := rhs.(*ColRef); ok {
		if lit, ok2 := l.(*Lit); ok2 && lit.V.K == KindInt {
			if pos := vecIntCol(t, r, cr); pos >= 0 {
				return vecFilter{col: pos, op: flip, val: lit.V.I}, true
			}
		}
	}
	return vecFilter{}, false
}

func vecIntCol(t *Table, r *relation, cr *ColRef) int {
	pos := r.colIndex(cr.Alias, cr.Column)
	if pos < 0 || t.Schema[pos].Type != TInt {
		return -1
	}
	return pos
}

// matchExc evaluates the comparison against an exception value (a cell
// whose kind mismatches the column type) with the executor's
// cross-kind Compare semantics — numerics compare numerically, other
// kinds order by kind rank — exactly what the compiled row-predicate
// fallback computes for the same cell. A Float exception can therefore
// satisfy `col = intLit`, and a String exception `col > intLit`.
func (f vecFilter) matchExc(v Value) bool {
	c, ok := Compare(v, Int(f.val))
	if !ok {
		return false
	}
	switch f.op {
	case vecEq:
		return c == 0
	case vecNe:
		return c != 0
	case vecLt:
		return c < 0
	case vecLe:
		return c <= 0
	case vecGt:
		return c > 0
	default: // vecGe
		return c >= 0
	}
}

func cmpInt(op vecOp, v, lit int64) bool {
	switch op {
	case vecEq:
		return v == lit
	case vecNe:
		return v != lit
	case vecLt:
		return v < lit
	case vecLe:
		return v <= lit
	case vecGt:
		return v > lit
	default:
		return v >= lit
	}
}

// skipChunk consults the chunk's zone map: true means no row in the
// chunk can satisfy the filter. ck == nil is an all-NULL chunk; n is
// the number of table rows the chunk covers.
func (f vecFilter) skipChunk(ck *colChunk, n int) bool {
	switch f.op {
	case vecIsNull:
		return ck != nil && ck.n == n // no NULLs present
	case vecNotNull:
		return ck == nil || ck.n == 0
	default:
		if ck == nil || ck.n == 0 {
			return true // comparisons never match NULL
		}
		if len(ck.exc) > 0 {
			// Exception values live outside the zone map (widen only
			// covers conforming ints) and can match under cross-kind
			// Compare semantics — e.g. a Float 5.0 satisfies `col = 5`,
			// any String satisfies `col > 5`. The chunk cannot be proved
			// empty, so it must be scanned.
			return false
		}
		if !ck.zoneInit {
			return true
		}
		switch f.op {
		case vecEq:
			return f.val < ck.min || f.val > ck.max
		case vecNe:
			return ck.min == ck.max && ck.min == f.val
		case vecLt:
			return ck.min >= f.val
		case vecLe:
			return ck.min > f.val
		case vecGt:
			return ck.max <= f.val
		default: // vecGe
			return ck.max < f.val
		}
	}
}

// firstPass evaluates the filter over the whole chunk, appending the
// in-chunk offsets of matching rows to sel. For comparisons it walks
// the presence bitmap's set bits with a running packed cursor, so each
// value is read sequentially — no per-row rank.
func (f vecFilter) firstPass(ck *colChunk, n int, sel []int32) []int32 {
	switch f.op {
	case vecIsNull:
		if ck == nil {
			for off := 0; off < n; off++ {
				sel = append(sel, int32(off))
			}
			return sel
		}
		for off := 0; off < n; off++ {
			if !ck.has(off) {
				sel = append(sel, int32(off))
			}
		}
		return sel
	case vecNotNull:
		if ck == nil {
			return sel
		}
		for w := 0; w < chunkWords; w++ {
			word := ck.bits[w]
			for word != 0 {
				sel = append(sel, int32(w<<6+bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
		return sel
	default:
		if ck == nil {
			return sel
		}
		if len(ck.exc) > 0 {
			return f.firstPassExc(ck, sel)
		}
		if ck.packed != nil {
			return f.firstPassPacked(ck, sel)
		}
		k := 0
		for w := 0; w < chunkWords; w++ {
			word := ck.bits[w]
			for word != 0 {
				off := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if cmpInt(f.op, ck.ints[k], f.val) {
					sel = append(sel, int32(off))
				}
				k++
			}
		}
		return sel
	}
}

// packedRebase translates the filter's int literal into the chunk's
// frame-of-reference delta domain. When the literal lies outside the
// chunk's representable delta range the comparison degenerates to
// all-present-match or no-match; otherwise dl is the rebased literal
// and deltas compare against it with plain unsigned semantics (both
// sides are non-negative offsets from the same reference).
func (f vecFilter) packedRebase(ck *colChunk) (dl uint64, all, none bool) {
	w := uint(ck.packedW)
	if w == 0 { // every value equals the reference
		if cmpInt(f.op, ck.ref, f.val) {
			return 0, true, false
		}
		return 0, false, true
	}
	if f.val < ck.ref { // literal below every stored value
		switch f.op {
		case vecNe, vecGt, vecGe:
			return 0, true, false
		default: // vecEq, vecLt, vecLe
			return 0, false, true
		}
	}
	d := uint64(f.val) - uint64(ck.ref)
	if d >= uint64(1)<<w { // literal above every representable value
		switch f.op {
		case vecNe, vecLt, vecLe:
			return 0, true, false
		default: // vecEq, vecGt, vecGe
			return 0, false, true
		}
	}
	return d, false, false
}

func cmpU64(op vecOp, v, lit uint64) bool {
	switch op {
	case vecEq:
		return v == lit
	case vecNe:
		return v != lit
	case vecLt:
		return v < lit
	case vecLe:
		return v <= lit
	case vecGt:
		return v > lit
	default:
		return v >= lit
	}
}

// firstPassPacked is the comparison first pass over a sealed FoR
// bit-packed chunk: the literal is rebased into the delta domain once,
// the comparison op is lowered to a single unsigned range test (every
// vecOp is "delta in [lo,hi]" or its complement), and each packed
// field is tested in place — no value is ever decoded back to int64
// and no per-element op dispatch remains in the loop.
func (f vecFilter) firstPassPacked(ck *colChunk, sel []int32) []int32 {
	dl, all, none := f.packedRebase(ck)
	if none {
		return sel
	}
	if all {
		for w := 0; w < chunkWords; w++ {
			word := ck.bits[w]
			for word != 0 {
				sel = append(sel, int32(w<<6+bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
		return sel
	}
	w := uint(ck.packedW)
	mask := uint64(1)<<w - 1
	lpw := packLanes(w)
	packed := ck.packed
	if ck.n == chunkRows {
		// Dense chunk: rank == offset, so the lanes stream word by
		// word with a constant lpw-trip inner loop — one load per
		// word, shift+mask per lane, no straddle handling.
		if f.op == vecEq {
			// Equality gets a word-at-a-time skip: XOR the word with
			// the literal replicated into every lane, then detect a
			// zero lane with the carry trick ((x-ones)&^x&highs is
			// nonzero iff some lane of x is zero — exact for
			// existence). A non-matching word retires in ~5 ops for
			// lpw lanes; only matching words rescan per lane.
			var pat, ones, highs uint64
			for j := uint(0); j < lpw; j++ {
				pat |= dl << (j * w)
				ones |= 1 << (j * w)
				highs |= 1 << (j*w + w - 1)
			}
			k := 0
			full := chunkRows / int(lpw) // words with all lpw lanes in use
			for wi := 0; wi < full; wi++ {
				x := packed[wi] ^ pat
				if (x-ones)&^x&highs == 0 {
					k += int(lpw)
					continue
				}
				word := packed[wi]
				for j := uint(0); j < lpw; j++ {
					if word&mask == dl {
						sel = append(sel, int32(k))
					}
					word >>= w
					k++
				}
			}
			if k < chunkRows {
				// Tail word: its unused upper lanes are zero and would
				// false-match the skip test, so scan it per lane.
				word := packed[full]
				for ; k < chunkRows; k++ {
					if word&mask == dl {
						sel = append(sel, int32(k))
					}
					word >>= w
				}
			}
			return sel
		}
		// Range ops get the same word-at-a-time skip when every lane
		// has a spare top bit (seal widens w by one whenever that is
		// free, and the zone map bounds the deltas soundly): with the
		// guard bit OR-ed into each lane of the replicated literal,
		// (pat - word) & guards keeps the guard exactly in lanes
		// where d <= lit, and no borrow crosses lanes because each
		// lane's minuend is at least its subtrahend. Every op except
		// Ne is "d <= b" or its complement for some threshold b.
		if ck.zoneInit && dl < uint64(1)<<(w-1) && uint64(ck.max-ck.ref) < uint64(1)<<(w-1) {
			spare := uint64(1) << (w - 1)
			var b uint64
			comp, swar := false, true
			switch f.op {
			case vecLt:
				if dl == 0 {
					return sel // no delta is below zero
				}
				b = dl - 1
			case vecLe:
				b = dl
			case vecGt:
				b, comp = dl, true
			case vecGe:
				if dl == 0 {
					b = spare - 1 // every lane matches: le(spare-1) is all-ones
				} else {
					b, comp = dl-1, true
				}
			default: // vecNe: needs two thresholds, not worth a skip
				swar = false
			}
			if swar {
				var pat, highs uint64
				for j := uint(0); j < lpw; j++ {
					pat |= (b | spare) << (j * w)
					highs |= spare << (j * w)
				}
				k := 0
				full := chunkRows / int(lpw)
				for wi := 0; wi < full; wi++ {
					m := (pat - packed[wi]) & highs
					if comp {
						m ^= highs
					}
					if m == 0 {
						k += int(lpw)
						continue
					}
					word := packed[wi]
					for j := uint(0); j < lpw; j++ {
						if cmpU64(f.op, word&mask, dl) {
							sel = append(sel, int32(k))
						}
						word >>= w
						k++
					}
				}
				if k < chunkRows {
					word := packed[full]
					for ; k < chunkRows; k++ {
						if cmpU64(f.op, word&mask, dl) {
							sel = append(sel, int32(k))
						}
						word >>= w
					}
				}
				return sel
			}
		}
		k := 0
		for wi := 0; k < chunkRows; wi++ {
			word := packed[wi]
			lanes := int(lpw)
			if rest := chunkRows - k; rest < lanes {
				lanes = rest
			}
			for j := 0; j < lanes; j++ {
				if cmpU64(f.op, word&mask, dl) {
					sel = append(sel, int32(k))
				}
				word >>= w
				k++
			}
		}
		return sel
	}
	// Sparse chunk: walk the presence bitmap for offsets while the
	// lane cursor advances sequentially through the packed words —
	// rank k is consumed in order, so no division is needed.
	cur := uint64(0)
	consumed := lpw // forces a load on the first lane
	pi := 0
	for wi := 0; wi < chunkWords; wi++ {
		word := ck.bits[wi]
		for word != 0 {
			off := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if consumed == lpw {
				cur = packed[pi]
				pi++
				consumed = 0
			}
			d := cur & mask
			cur >>= w
			consumed++
			if cmpU64(f.op, d, dl) {
				sel = append(sel, int32(off))
			}
		}
	}
	return sel
}

// firstPassExc is the comparison first pass for a chunk carrying
// exception values: the packed slice holds a zero placeholder at an
// exception's rank, so each set bit is checked against the exception
// map before the int compare. The exception-free fast path above never
// pays for this lookup.
func (f vecFilter) firstPassExc(ck *colChunk, sel []int32) []int32 {
	k := 0
	for w := 0; w < chunkWords; w++ {
		word := ck.bits[w]
		for word != 0 {
			off := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if ev, ok := ck.exc[uint16(off)]; ok {
				if f.matchExc(ev) {
					sel = append(sel, int32(off))
				}
			} else if cmpInt(f.op, ck.intAt(k), f.val) {
				sel = append(sel, int32(off))
			}
			k++
		}
	}
	return sel
}

// refine keeps only the rows of sel that also satisfy the filter,
// compacting in place.
func (f vecFilter) refine(ck *colChunk, sel []int32) []int32 {
	kept := sel[:0]
	for _, off := range sel {
		present := ck != nil && ck.has(int(off))
		switch f.op {
		case vecIsNull:
			if !present {
				kept = append(kept, off)
			}
		case vecNotNull:
			if present {
				kept = append(kept, off)
			}
		default:
			if !present {
				break
			}
			if ck.exc != nil {
				if ev, ok := ck.exc[uint16(off)]; ok {
					if f.matchExc(ev) {
						kept = append(kept, off)
					}
					break
				}
			}
			if cmpInt(f.op, ck.intAt(ck.rank(int(off))), f.val) {
				kept = append(kept, off)
			}
		}
	}
	return kept
}

// vecScan materializes a columnar scan relation (r.scan), applying its
// pending conjuncts with the chunk pipeline described at the top of
// the file. Chunks are partitioned across morsel workers and the
// per-worker outputs concatenated in chunk order, so the result is
// row-for-row identical to the sequential row-layout scan.
func (ex *exec) vecScan(r *relation) (*relation, error) {
	t0 := ex.opStart()
	t := r.base
	out := newRelation(r.cols)
	for a := range r.aliases {
		out.aliases[a] = true
	}
	t.mu.RLock()
	cols := t.cols
	nrows := t.nrows
	tomb := t.tomb
	t.mu.RUnlock()
	vfs, residual := compileVecFilters(t, r, r.pending)
	var rowPred func(Row) (bool, error)
	if len(residual) > 0 {
		rowPred = ex.db.compilePred(residual, r)
	}
	nchunks := (nrows + chunkRows - 1) >> chunkShift
	w := planWorkers(nrows)
	if w > nchunks && nchunks > 0 {
		w = nchunks
	}
	width := len(cols)
	parts := make([][]Row, w)
	// Per-worker zone-skip counters, allocated only when profiling so
	// the disabled path stays allocation-free.
	var skips []int64
	if ex.prof != nil {
		skips = make([]int64, w)
	}
	err := parallelChunks(nchunks, w, func(chunk, clo, chi int) error {
		tk := ticker{g: ex.gov, site: CkFilter}
		if err := tk.flush(); err != nil {
			return err
		}
		var local []Row
		arena := rowArena{gov: ex.gov}
		var sel []int32
		var scratch Row
	chunks:
		for ci := clo; ci < chi; ci++ {
			base := ci << chunkShift
			n := nrows - base
			if n > chunkRows {
				n = chunkRows
			}
			var tc *tombChunk
			if ci < len(tomb) {
				tc = tomb[ci]
			}
			if tc != nil && tc.dead >= n {
				// Fully tombstoned chunk: skip it exactly like a
				// zone-pruned one — a single unit of work, no charge.
				if skips != nil {
					skips[chunk]++
				}
				if err := tk.step(); err != nil {
					return err
				}
				continue
			}
			for _, f := range vfs {
				if f.skipChunk(cols[f.col].chunkOf(ci), n) {
					// The whole chunk is pruned: one unit of work, no
					// budget charge — the query produced nothing here.
					if skips != nil {
						skips[chunk]++
					}
					if err := tk.step(); err != nil {
						return err
					}
					continue chunks
				}
			}
			sel = sel[:0]
			if len(vfs) == 0 {
				if rowPred == nil && (tc == nil || tc.dead == 0) {
					// Unfiltered scan over a fully live chunk: gather it
					// column-wise. (A chunk with dead rows falls through
					// to the selection-vector path so the tombstone
					// filter below applies.)
					rows := arena.allocRows(n, width)
					for j, col := range cols {
						col.gatherChunk(ci, rows, j)
					}
					local = append(local, rows...)
					if err := tk.emitN(n); err != nil {
						return err
					}
					continue
				}
				for off := 0; off < n; off++ {
					sel = append(sel, int32(off))
				}
			} else {
				sel = vfs[0].firstPass(cols[vfs[0].col].chunkOf(ci), n, sel)
				for _, f := range vfs[1:] {
					if len(sel) == 0 {
						break
					}
					sel = f.refine(cols[f.col].chunkOf(ci), sel)
				}
			}
			if tc != nil && tc.dead > 0 && len(sel) > 0 {
				// Drop tombstoned rows before any residual predicate
				// work: dead rows must neither match nor cost per-row
				// evaluation.
				kept := sel[:0]
				for _, off := range sel {
					if !tc.has(int(off)) {
						kept = append(kept, off)
					}
				}
				sel = kept
			}
			if rowPred != nil && len(sel) > 0 {
				if scratch == nil {
					scratch = make(Row, width)
				}
				kept := sel[:0]
				for _, off := range sel {
					for j, col := range cols {
						scratch[j] = col.get(base + int(off))
					}
					ok, err := rowPred(scratch)
					if err != nil {
						return err
					}
					if ok {
						kept = append(kept, off)
					}
				}
				sel = kept
			}
			for _, off := range sel {
				row := arena.alloc(width)
				for j, col := range cols {
					row[j] = col.get(base + int(off))
				}
				local = append(local, row)
				if err := tk.emit(); err != nil {
					return err
				}
			}
			// Rejected rows are work done but not rows produced: tick
			// the checkpoint cadence without charging the row budget.
			if err := tk.stepN(n - len(sel)); err != nil {
				return err
			}
		}
		parts[chunk] = local
		return tk.flush()
	})
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		out.rows = append(out.rows, p...)
	}
	if ex.prof != nil {
		var skipped int64
		for _, s := range skips {
			skipped += s
		}
		ex.opEnd(t0, OpStat{Kind: "scan", Label: t.Name, RowsIn: int64(nrows), RowsOut: int64(len(out.rows)),
			Chunks: int64(nchunks), ChunksSkipped: skipped, Workers: w})
	}
	return out, nil
}
