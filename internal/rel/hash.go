package rel

import "math"

// Hash kernels for the executor. Joins, DISTINCT and UNION dedup used
// to build composite keys by formatting every value into a string
// (Value.key() concatenated with separators); over the dictionary-
// encoded RDF schemas every hot key is an int64 id, so that meant an
// allocation and an integer-to-decimal conversion per row per key.
// The kernels here bucket rows by FNV-mixed uint64 hashes of the
// canonical value forms and verify candidates exactly, which is both
// allocation-free on the int fast path and immune to separator
// collisions by construction.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Canonical key classes, mirroring Value.key(): NULLs key together,
// and an integral float takes the int class so 1 joins 1.0.
const (
	keyClassNull uint8 = iota
	keyClassInt
	keyClassFloat
	keyClassString
	keyClassBool
)

// keyCanon returns the canonical class and payload of v under key
// semantics. Exactly one of i, f, s is meaningful, selected by cls.
func keyCanon(v Value) (cls uint8, i int64, f float64, s string) {
	switch v.K {
	case KindInt:
		return keyClassInt, v.I, 0, ""
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return keyClassInt, int64(v.F), 0, ""
		}
		f = v.F
		if math.IsNaN(f) {
			f = math.NaN() // one canonical NaN, whatever the payload
		}
		return keyClassFloat, 0, f, ""
	case KindString:
		return keyClassString, 0, 0, v.S
	case KindBool:
		return keyClassBool, v.I, 0, ""
	}
	return keyClassNull, 0, 0, ""
}

// mix64 is the splitmix64 finalizer: full-avalanche mixing for the
// dense small integers that dictionary ids are.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashValue folds v into the running hash state h.
func hashValue(h uint64, v Value) uint64 {
	cls, i, f, s := keyCanon(v)
	h = (h ^ uint64(cls)) * fnvPrime64
	switch cls {
	case keyClassInt, keyClassBool:
		h = (h ^ mix64(uint64(i))) * fnvPrime64
	case keyClassFloat:
		h = (h ^ mix64(math.Float64bits(f))) * fnvPrime64
	case keyClassString:
		for j := 0; j < len(s); j++ {
			h = (h ^ uint64(s[j])) * fnvPrime64
		}
		h = (h ^ uint64(len(s))) * fnvPrime64
	}
	return h
}

// keyEqual reports whether two values are identical under key
// semantics — the exact relation the old composite key strings
// encoded: NULL equals NULL, an integral float equals its int, other
// classes never cross.
func keyEqual(a, b Value) bool {
	ca, ia, fa, sa := keyCanon(a)
	cb, ib, fb, sb := keyCanon(b)
	if ca != cb {
		return false
	}
	switch ca {
	case keyClassInt, keyClassBool:
		return ia == ib
	case keyClassFloat:
		return fa == fb || (math.IsNaN(fa) && math.IsNaN(fb))
	case keyClassString:
		return sa == sb
	}
	return true // both NULL
}

// rowKeyHash hashes a whole row (DISTINCT / UNION dedup).
func rowKeyHash(r Row) uint64 {
	h := fnvOffset64
	for _, v := range r {
		h = hashValue(h, v)
	}
	return h
}

// rowKeyEqual verifies a dedup bucket candidate.
func rowKeyEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !keyEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// linkKeyHash hashes the link columns of a row for a hash join; ok is
// false when any link value is NULL (NULLs never join).
func linkKeyHash(row Row, links []eqLink, left bool) (uint64, bool) {
	h := fnvOffset64
	for _, lk := range links {
		i := lk.ri
		if left {
			i = lk.li
		}
		v := row[i]
		if v.IsNull() {
			return 0, false
		}
		h = hashValue(h, v)
	}
	return h, true
}

// linkKeyEqual verifies a join bucket candidate on every link column.
func linkKeyEqual(l, r Row, links []eqLink) bool {
	for _, lk := range links {
		if !keyEqual(l[lk.li], r[lk.ri]) {
			return false
		}
	}
	return true
}

// intLinkKey extracts an exact int64 join key from v. Status is 1 when
// v keys as an int (int or integral float), 0 when v is NULL (skip the
// row: NULLs never join), and -1 when v belongs to another class (the
// int kernel does not apply).
func intLinkKey(v Value) (int64, int) {
	switch v.K {
	case KindInt:
		return v.I, 1
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return int64(v.F), 1
		}
		return 0, -1
	case KindNull:
		return 0, 0
	}
	return 0, -1
}
