package rel

import (
	"fmt"
	"strings"
)

// Dead-column pruning across a query's CTE chain. The SPARQL
// translator builds queries as pipelines of CTEs, and intermediate
// columns (extracted predicate values, spill-resolved lids) often go
// unused by the final SELECT — but each costs a compiled CASE or
// COALESCE evaluation per row. Before executing, Exec computes which
// output columns of each CTE any later select can actually observe;
// the projection step then skips dead expression items, leaving NULL
// in their slot. Row counts, join multiplicities and column shapes
// are untouched, so the pruned execution is indistinguishable to any
// consumer of the live columns.
//
// The analysis over-approximates uses: anything it cannot resolve
// precisely (unqualified references, star projections, UNION /
// DISTINCT / ORDER BY selects, forward references) marks the relevant
// CTEs fully live. The Query AST is never mutated — plans stay
// shareable across concurrent executions.

// liveAll is the nil map meaning "keep every column".

// cteLiveColumns returns one live-column set per CTE, aligned with
// q.CTEs; a nil entry keeps everything.
func cteLiveColumns(q *Query) []map[string]bool {
	if len(q.CTEs) == 0 {
		return nil
	}
	type state struct {
		all  bool
		cols map[string]bool
	}
	used := make(map[string]*state, len(q.CTEs))
	index := make(map[string]int, len(q.CTEs))
	for i, cte := range q.CTEs {
		name := strings.ToLower(cte.Name)
		used[name] = &state{cols: map[string]bool{}}
		index[name] = i
	}
	markAll := func(name string) {
		if s, ok := used[name]; ok {
			s.all = true
		}
	}
	markCol := func(name, col string) {
		if s, ok := used[name]; ok {
			s.cols[strings.ToLower(col)] = true
		}
	}

	// collect records every CTE column the given select can observe.
	// live bounds which of the select's own output items are
	// evaluated (nil = all); minIndex guards against forward
	// references — a referenced CTE at or past it is marked fully
	// live, since its pruning decision has already been taken.
	var collect func(s *Select, live map[string]bool, minIndex int)
	collect = func(s *Select, live map[string]bool, minIndex int) {
		if s == nil {
			return
		}
		if len(s.Cores) > 1 || s.Cores[0].Distinct || len(s.OrderBy) > 0 {
			live = nil // dedup/ordering observe every column
		}
		for _, core := range s.Cores {
			for _, item := range core.Items {
				if item.Star {
					// Star expansion shifts positional fallback names;
					// treat every item of this select as live.
					live = nil
				}
			}
		}
		for _, core := range s.Cores {
			// alias -> referenced CTE name, for this core's FROM units.
			aliases := map[string]string{}
			var walkFrom func(fi FromItem)
			walkFrom = func(fi FromItem) {
				if fi.Sub != nil {
					collect(fi.Sub, nil, minIndex)
				} else {
					tbl := strings.ToLower(fi.Table)
					if _, ok := used[tbl]; ok {
						a := strings.ToLower(fi.Alias)
						if a == "" {
							a = tbl
						}
						aliases[a] = tbl
						if idx, ok := index[tbl]; ok && idx >= minIndex {
							markAll(tbl)
						}
					}
				}
				for _, j := range fi.Joins {
					walkFrom(j.Right)
				}
			}
			for _, fi := range core.From {
				walkFrom(fi)
			}
			useExpr := func(e Expr) {
				walkColRefs(e, func(c *ColRef) {
					if c.Alias == "" {
						// Unqualified: could resolve into any unit.
						for _, cte := range aliases {
							markAll(cte)
						}
						return
					}
					if cte, ok := aliases[strings.ToLower(c.Alias)]; ok {
						markCol(cte, c.Column)
					}
				})
			}
			for i, item := range core.Items {
				if item.Star {
					// Star observes whole units.
					sa := strings.ToLower(item.StarAlias)
					for a, cte := range aliases {
						if sa == "" || sa == a {
							markAll(cte)
						}
					}
					continue
				}
				if live != nil && !live[itemName(item, i)] {
					continue // dead item: its inputs are not uses
				}
				useExpr(item.Expr)
			}
			if core.Where != nil {
				useExpr(core.Where)
			}
			var walkOn func(fi FromItem)
			walkOn = func(fi FromItem) {
				for _, j := range fi.Joins {
					if j.On != nil {
						useExpr(j.On)
					}
					walkOn(j.Right)
				}
			}
			for _, fi := range core.From {
				walkOn(fi)
			}
		}
	}

	// Body first (everything it projects is live), then CTEs from last
	// to first so liveness propagates transitively up the chain.
	collect(q.Body, nil, len(q.CTEs))
	for i := len(q.CTEs) - 1; i >= 0; i-- {
		name := strings.ToLower(q.CTEs[i].Name)
		st := used[name]
		var live map[string]bool
		if !st.all {
			live = st.cols
		}
		collect(q.CTEs[i].Select, live, i)
	}

	out := make([]map[string]bool, len(q.CTEs))
	for i, cte := range q.CTEs {
		st := used[strings.ToLower(cte.Name)]
		if st.all {
			out[i] = nil
		} else {
			out[i] = st.cols
		}
	}
	return out
}

// itemName computes the output column name of a non-star select item,
// mirroring project's naming (lower-cased; positional fallback).
func itemName(item SelectItem, pos int) string {
	if item.Alias != "" {
		return strings.ToLower(item.Alias)
	}
	if cr, ok := item.Expr.(*ColRef); ok {
		return strings.ToLower(cr.Column)
	}
	return fmt.Sprintf("col%d", pos+1)
}

// walkColRefs visits every column reference in e.
func walkColRefs(e Expr, fn func(*ColRef)) {
	switch x := e.(type) {
	case *ColRef:
		fn(x)
	case *BinOp:
		walkColRefs(x.L, fn)
		walkColRefs(x.R, fn)
	case *UnOp:
		walkColRefs(x.X, fn)
	case *IsNullExpr:
		walkColRefs(x.X, fn)
	case *InExpr:
		walkColRefs(x.X, fn)
		for _, a := range x.List {
			walkColRefs(a, fn)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			walkColRefs(w.Cond, fn)
			walkColRefs(w.Result, fn)
		}
		if x.Else != nil {
			walkColRefs(x.Else, fn)
		}
	case *FuncCall:
		for _, a := range x.Args {
			walkColRefs(a, fn)
		}
	}
}
