package rel

import "testing"

// FuzzChunkRoundTrip drives random tables — mixed column kinds, NULLs,
// exception values, tombstones, all-NULL stretches, wide int spreads
// that defeat bit-packing, sealed and raw chunks — through
// EncodeSnapshot → DecodeSnapshot and requires the decoded table to be
// logically identical, then re-publishes and round-trips the decoded
// table again so the verbatim packed re-emit path is covered too.
func FuzzChunkRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 250, 0, 17, 96}, uint16(2600), true)
	f.Add([]byte{0xff, 0x10, 0x42}, uint16(1100), false)
	f.Add([]byte{0, 0, 0, 0}, uint16(5000), true)
	f.Fuzz(func(t *testing.T, data []byte, nrows uint16, seal bool) {
		if len(data) == 0 {
			data = []byte{0}
		}
		n := int(nrows) % 5000
		at := func(i int) byte { return data[i%len(data)] }
		src := NewTable("F", Schema{
			{Name: "a", Type: TInt},
			{Name: "b", Type: TString},
			{Name: "c", Type: TFloat},
		})
		for i := 0; i < n; i++ {
			d := at(i)
			r := Row{Int(int64(d) + int64(i)), Str(string(rune('a' + d%26))), Float(float64(d) / 2)}
			switch d % 8 {
			case 0:
				r[0] = Null
			case 1:
				r[0] = Int(int64(d) << 55) // wide spread: seal keeps raw ints
			case 2:
				r[0] = Str("exc") // exception in the int column
			case 3:
				r[1] = Null
			case 4:
				r[2] = Bool(d&1 == 0) // exception in the float column
			case 5:
				r[1], r[2] = Null, Null
			}
			if at(i/chunkRows)&3 == 0 {
				r[1] = Null // whole-chunk all-NULL stretches
			}
			if err := src.Insert(r); err != nil {
				t.Fatal(err)
			}
			if seal && i == n/2 {
				src.Publish() // seal the first half; the rest stays raw
			}
		}
		for i := 0; i < n; i++ {
			if at(i)&0x10 != 0 {
				if err := src.DeleteRow(i); err != nil {
					t.Fatal(err)
				}
			}
		}
		if seal {
			src.Publish() // seal everything, including post-delete clones
		}
		buf, err := src.EncodeSnapshot(nil)
		if err != nil {
			t.Fatal(err)
		}
		dst := NewTable("F", src.Schema)
		if err := dst.DecodeSnapshot(buf); err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, src.Rows(), dst.Rows())
		if dst.Len() != src.Len() || dst.DeadRows() != src.DeadRows() {
			t.Fatalf("len %d/%d dead %d/%d", dst.Len(), src.Len(), dst.DeadRows(), src.DeadRows())
		}
		// Second trip through the decoded (sealed/dense-shared) chunks.
		dst.Publish()
		buf2, err := dst.EncodeSnapshot(nil)
		if err != nil {
			t.Fatal(err)
		}
		dst2 := NewTable("F", src.Schema)
		if err := dst2.DecodeSnapshot(buf2); err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, src.Rows(), dst2.Rows())
	})
}
