package rel

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Governance tests: typed abort errors, budget accounting, fault
// injection at named checkpoints (including inside morsel workers),
// panic containment, and DB-usable-after-abort. None of these use
// timing-dependent deadlines — contexts are pre-canceled or already
// expired, and mid-execution aborts go through the fault harness — so
// they are deterministic under -race and arbitrary scheduling.

// govQuery joins, filters, projects and sorts, touching most
// checkpoint sites in one statement.
const govQuery = "SELECT p.name AS pname, c.name AS cname FROM people AS p, cities AS c WHERE p.city = c.id AND p.age > 20 ORDER BY pname"

func mustParse(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// checkUsable asserts the DB still answers queries correctly.
func checkUsable(t *testing.T, db *DB) {
	t.Helper()
	rs, err := db.Query(govQuery)
	if err != nil {
		t.Fatalf("follow-up query after abort: %v", err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("follow-up query after abort: want 3 rows, got %d", len(rs.Rows))
	}
}

func TestExecContextCanceled(t *testing.T) {
	db := peopleDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecContext(ctx, mustParse(t, govQuery), Limits{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	checkUsable(t, db)
}

func TestExecContextExpiredDeadline(t *testing.T) {
	db := peopleDB(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	_, err := db.ExecContext(ctx, mustParse(t, govQuery), Limits{})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	checkUsable(t, db)
}

func TestRowBudget(t *testing.T) {
	db := peopleDB(t)
	_, err := db.ExecContext(context.Background(), mustParse(t, govQuery), Limits{MaxRows: 2})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("BudgetError must match ErrBudgetExceeded, got %v", err)
	}
	if be.Budget != "rows" || be.Used <= be.Limit {
		t.Fatalf("bad budget report: %+v", be)
	}
	if !strings.Contains(be.Error(), "over") {
		t.Fatalf("error should report overage: %q", be.Error())
	}
	checkUsable(t, db)
}

func TestMemoryBudget(t *testing.T) {
	db := peopleDB(t)
	_, err := db.ExecContext(context.Background(), mustParse(t, govQuery), Limits{MaxBytes: 64})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Budget != "memory" {
		t.Fatalf("want memory budget, got %+v", be)
	}
	checkUsable(t, db)
}

func TestUnlimitedByDefault(t *testing.T) {
	db := peopleDB(t)
	rs, err := db.ExecContext(context.Background(), mustParse(t, govQuery), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rs.Rows))
	}
}

// TestFaultInjectionSites forces each fault mode at several distinct
// checkpoints — hash build, hash probe (a morsel worker), projection
// (a morsel worker), ORDER BY, filter — and asserts the typed error
// surfaces and the DB remains usable.
func TestFaultInjectionSites(t *testing.T) {
	db := peopleDB(t)
	q := mustParse(t, govQuery)
	sites := []CheckSite{CkHashBuild, CkHashProbe, CkProject, CkOrderBy, CkFilter}
	modes := []struct {
		mode FaultMode
		want error
	}{
		{FaultCancel, ErrCanceled},
		{FaultDeadline, ErrDeadlineExceeded},
		{FaultBudget, ErrBudgetExceeded},
	}
	for _, site := range sites {
		for _, m := range modes {
			t.Run(site.String()+"/"+m.want.Error(), func(t *testing.T) {
				InjectFault(site, m.mode, 1)
				defer ClearFault()
				_, err := db.ExecContext(context.Background(), q, Limits{})
				if !errors.Is(err, m.want) {
					t.Fatalf("site %v mode %v: want %v, got %v", site, m.mode, m.want, err)
				}
				if !FaultFired() {
					t.Fatalf("site %v never reached", site)
				}
				ClearFault()
				checkUsable(t, db)
			})
		}
	}
}

// TestFaultInsideMorselWorker pins parallelism on (every loop fans
// out) and injects deep enough that the failing checkpoint runs on a
// spawned worker goroutine, not the coordinating one.
func TestFaultInsideMorselWorker(t *testing.T) {
	SetParallelism(4, 1)
	defer SetParallelism(0, 0)
	db := peopleDB(t)
	q := mustParse(t, govQuery)

	before := runtime.NumGoroutine()
	for _, m := range []struct {
		mode FaultMode
		want error
	}{
		{FaultCancel, ErrCanceled},
		{FaultBudget, ErrBudgetExceeded},
	} {
		// nth=2: the first visit to CkHashProbe is another worker's
		// entry flush, so the fault lands mid-fan-out.
		InjectFault(CkHashProbe, m.mode, 2)
		_, err := db.ExecContext(context.Background(), q, Limits{})
		ClearFault()
		if !errors.Is(err, m.want) {
			t.Fatalf("mode %v: want %v, got %v", m.mode, m.want, err)
		}
		checkUsable(t, db)
	}
	waitForGoroutines(t, before)
}

// TestFaultPanicContained injects a panic at a worker checkpoint and in
// sequential code, asserting it converts to *PanicError, no goroutine
// leaks, and the DB still works.
func TestFaultPanicContained(t *testing.T) {
	SetParallelism(4, 1)
	defer SetParallelism(0, 0)
	db := peopleDB(t)
	q := mustParse(t, govQuery)
	before := runtime.NumGoroutine()
	for _, site := range []CheckSite{CkHashProbe, CkOrderBy, CkHashBuild} {
		InjectFault(site, FaultPanic, 1)
		_, err := db.ExecContext(context.Background(), q, Limits{})
		ClearFault()
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("site %v: want *PanicError, got %v", site, err)
		}
		if pe.V != faultPanicMsg {
			t.Fatalf("site %v: wrong panic value %v", site, pe.V)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("site %v: no stack captured", site)
		}
		checkUsable(t, db)
	}
	waitForGoroutines(t, before)
}

// TestPanicInCompiledExpr panics inside a registered scalar function —
// the compiled-expression closure path — under both sequential and
// parallel projection.
func TestPanicInCompiledExpr(t *testing.T) {
	db := peopleDB(t)
	db.RegisterFunc("boom", func(args []Value) (Value, error) { panic("boom function") })
	q := mustParse(t, "SELECT boom(age) FROM people")
	for _, workers := range []int{1, 4} {
		SetParallelism(workers, 1)
		_, err := db.ExecContext(context.Background(), q, Limits{})
		SetParallelism(0, 0)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		checkUsable(t, db)
	}
}

// TestAbortEquivalenceParallelSequential asserts the same injected
// fault yields the same typed error whether the executor runs
// sequentially or fanned out.
func TestAbortEquivalenceParallelSequential(t *testing.T) {
	db := peopleDB(t)
	q := mustParse(t, govQuery)
	for _, site := range []CheckSite{CkFilter, CkHashBuild, CkProject} {
		var errs [2]error
		for i, workers := range []int{1, 4} {
			SetParallelism(workers, 1)
			InjectFault(site, FaultCancel, 1)
			_, errs[i] = db.ExecContext(context.Background(), q, Limits{})
			ClearFault()
			SetParallelism(0, 0)
		}
		if !errors.Is(errs[0], ErrCanceled) || !errors.Is(errs[1], ErrCanceled) {
			t.Fatalf("site %v: sequential err %v vs parallel err %v", site, errs[0], errs[1])
		}
	}
	checkUsable(t, db)
}

// TestBudgetTripInArena drives the memory budget through the
// rowArena.alloc panic path specifically: parallel projection of a
// wide row with a budget smaller than one arena block.
func TestBudgetTripInArena(t *testing.T) {
	SetParallelism(4, 1)
	defer SetParallelism(0, 0)
	db := peopleDB(t)
	q := mustParse(t, "SELECT p.name, c.name FROM people AS p, cities AS c WHERE p.city = c.id")
	_, err := db.ExecContext(context.Background(), q, Limits{MaxBytes: 8})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError from arena growth, got %v", err)
	}
	if be.Budget != "memory" {
		t.Fatalf("want memory budget, got %+v", be)
	}
	checkUsable(t, db)
}

// TestExecNilContext ensures a nil context behaves like Background.
func TestExecNilContext(t *testing.T) {
	db := peopleDB(t)
	//lint:ignore SA1012 deliberate nil-context robustness check
	rs, err := db.ExecContext(nil, mustParse(t, govQuery), Limits{}) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rs.Rows))
	}
}

// waitForGoroutines polls until the goroutine count settles back to
// (or below) the baseline, tolerating a small slack for runtime
// helpers; it fails the test on timeout — i.e. a leak.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
