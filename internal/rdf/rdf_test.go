package rdf

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	cases := []struct {
		term      Term
		isIRI     bool
		isLiteral bool
		isBlank   bool
		rendered  string
	}{
		{NewIRI("http://a/b"), true, false, false, "<http://a/b>"},
		{NewLiteral("hi"), false, true, false, `"hi"`},
		{NewLangLiteral("hi", "en"), false, true, false, `"hi"@en`},
		{NewTypedLiteral("5", XSDInteger), false, true, false, `"5"^^<` + XSDInteger + `>`},
		{NewBlank("b0"), false, false, true, "_:b0"},
		{NewInteger(-7), false, true, false, `"-7"^^<` + XSDInteger + `>`},
	}
	for _, c := range cases {
		if c.term.IsIRI() != c.isIRI || c.term.IsLiteral() != c.isLiteral || c.term.IsBlank() != c.isBlank {
			t.Errorf("%v: kind predicates wrong", c.term)
		}
		if got := c.term.String(); got != c.rendered {
			t.Errorf("String() = %q, want %q", got, c.rendered)
		}
	}
}

func TestLiteralEscaping(t *testing.T) {
	term := NewLiteral("line1\nline2\t\"quoted\" back\\slash")
	s := term.String()
	want := `"line1\nline2\t\"quoted\" back\\slash"`
	if s != want {
		t.Fatalf("escaped = %q, want %q", s, want)
	}
	// Round-trip through the parser.
	tr, err := ParseTripleLine("<s> <p> " + s + " .")
	if err != nil {
		t.Fatal(err)
	}
	if tr.O.Value != term.Value {
		t.Fatalf("round trip: %q != %q", tr.O.Value, term.Value)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	terms := []Term{
		NewIRI("http://x"),
		NewLiteral("plain"),
		NewLangLiteral("bonjour", "fr"),
		NewTypedLiteral("3.14", XSDDecimal),
		NewBlank("n1"),
		NewLiteral(""), // empty literal
	}
	for _, term := range terms {
		back, err := TermFromKey(term.Key())
		if err != nil {
			t.Fatalf("%v: %v", term, err)
		}
		if back != term {
			t.Fatalf("round trip: %#v != %#v", back, term)
		}
	}
	if _, err := TermFromKey(""); err == nil {
		t.Fatal("empty key must error")
	}
	if _, err := TermFromKey("@en-missing-separator"); err == nil {
		t.Fatal("malformed lang key must error")
	}
}

func TestKeyDistinguishesKinds(t *testing.T) {
	// The same lexical value as IRI, literal and blank must have
	// different keys.
	keys := map[string]bool{}
	for _, term := range []Term{NewIRI("x"), NewLiteral("x"), NewBlank("x"), NewLangLiteral("x", "en"), NewTypedLiteral("x", "dt")} {
		k := term.Key()
		if keys[k] {
			t.Fatalf("duplicate key %q", k)
		}
		keys[k] = true
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	f := func(val, lang string) bool {
		lang = strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return -1
		}, lang)
		var term Term
		if lang != "" {
			term = NewLangLiteral(val, lang)
		} else {
			term = NewLiteral(val)
		}
		back, err := TermFromKey(term.Key())
		return err == nil && back == term
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntegerFloat(t *testing.T) {
	n, ok := NewInteger(42).Integer()
	if !ok || n != 42 {
		t.Fatalf("Integer() = %d, %v", n, ok)
	}
	f, ok := NewTypedLiteral("2.5", XSDDecimal).Float()
	if !ok || f != 2.5 {
		t.Fatalf("Float() = %f, %v", f, ok)
	}
	if _, ok := NewIRI("x").Integer(); ok {
		t.Fatal("IRI must not convert to integer")
	}
	if _, ok := NewLiteral("abc").Float(); ok {
		t.Fatal("non-numeric literal must not convert")
	}
}

func TestParseTripleLineForms(t *testing.T) {
	cases := []struct {
		line  string
		s, p  string
		oKind TermKind
	}{
		{`<http://a> <http://p> <http://b> .`, "http://a", "http://p", IRI},
		{`_:x <http://p> "lit" .`, "x", "http://p", Literal},
		{`<http://a> <http://p> "v"@en .`, "http://a", "http://p", Literal},
		{`<http://a> <http://p> "1"^^<` + XSDInteger + `> .`, "http://a", "http://p", Literal},
		{`<http://a> <http://p> _:y .`, "http://a", "http://p", Blank},
	}
	for _, c := range cases {
		tr, err := ParseTripleLine(c.line)
		if err != nil {
			t.Fatalf("%q: %v", c.line, err)
		}
		if tr.S.Value != c.s || tr.P.Value != c.p || tr.O.Kind != c.oKind {
			t.Errorf("%q parsed to %v", c.line, tr)
		}
	}
}

func TestParseTripleLineErrors(t *testing.T) {
	bad := []string{
		``,
		`<s> <p> .`,
		`<s> <p> <o>`,     // missing dot
		`"lit" <p> <o> .`, // literal subject
		`<s> "lit" <o> .`, // literal predicate
		`<s> _:b <o> .`,   // blank predicate
		`<s> <p> "unterminated .`,
		`<s <p> <o> .`,       // unterminated IRI
		`<s> <p> "v"^^bad .`, // malformed datatype
	}
	for _, line := range bad {
		if _, err := ParseTripleLine(line); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

func TestUnicodeEscapes(t *testing.T) {
	tr, err := ParseTripleLine(`<s> <p> "café \U0001F600" .`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.O.Value != "café 😀" {
		t.Fatalf("unicode unescape = %q", tr.O.Value)
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	input := `# header comment

<a> <p> <b> .
   # indented comment
<a> <q> "v" .
`
	r := NewReader(strings.NewReader(input))
	ts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("want 2 triples, got %d", len(ts))
	}
}

func TestReaderErrorsCarryLineNumbers(t *testing.T) {
	r := NewReader(strings.NewReader("<a> <p> <b> .\ngarbage\n"))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	triples := []Triple{
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLangLiteral("x\ny", "de")),
		NewTriple(NewBlank("b"), NewIRI("http://p"), NewTypedLiteral("9", XSDInteger)),
	}
	var sb strings.Builder
	w := NewWriter(&sb)
	for _, tr := range triples {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(triples) {
		t.Fatalf("round trip count %d != %d", len(back), len(triples))
	}
	for i := range back {
		if back[i] != triples[i] {
			t.Errorf("triple %d: %v != %v", i, back[i], triples[i])
		}
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("s"), NewIRI("p"), NewLiteral("o"))
	if tr.String() != `<s> <p> "o" .` {
		t.Fatalf("got %q", tr.String())
	}
}
