package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Reader parses N-Triples (with the common Turtle niceties of '#'
// comments and blank lines) from an io.Reader, one triple at a time.
type Reader struct {
	scan *bufio.Scanner
	line int
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{scan: s}
}

// Read returns the next triple. It returns io.EOF when the input is
// exhausted.
func (r *Reader) Read() (Triple, error) {
	for r.scan.Scan() {
		r.line++
		line := strings.TrimSpace(r.scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			return Triple{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return t, nil
	}
	if err := r.scan.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll reads every remaining triple.
func (r *Reader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseTripleLine parses a single N-Triples statement terminated by '.'.
func ParseTripleLine(line string) (Triple, error) {
	// NUL is not a legal character anywhere in an N-Triples statement
	// (terms or whitespace); accepting one would silently embed it in
	// an interned term and corrupt round-tripping. Reject it up front
	// so the Reader reports it with the offending line number.
	if i := strings.IndexByte(line, 0); i >= 0 {
		return Triple{}, fmt.Errorf("NUL byte at offset %d", i)
	}
	p := &ntParser{in: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.ws()
	if p.pos >= len(p.in) || p.in[p.pos] != '.' {
		return Triple{}, fmt.Errorf("expected '.' terminator in %q", line)
	}
	if s.IsLiteral() {
		return Triple{}, fmt.Errorf("subject cannot be a literal in %q", line)
	}
	if !pr.IsIRI() {
		return Triple{}, fmt.Errorf("predicate must be an IRI in %q", line)
	}
	return Triple{S: s, P: pr, O: o}, nil
}

// ParseTerm parses one N-Triples term — <iri>, _:label, or a literal
// with optional @lang / ^^<datatype> suffix — and requires the input
// to contain nothing else. The wire serializations (SPARQL TSV
// results, the database/sql driver) decode terms with it.
func ParseTerm(s string) (Term, error) {
	if i := strings.IndexByte(s, 0); i >= 0 {
		return Term{}, fmt.Errorf("NUL byte at offset %d", i)
	}
	p := &ntParser{in: s}
	t, err := p.term()
	if err != nil {
		return Term{}, err
	}
	p.ws()
	if p.pos != len(p.in) {
		return Term{}, fmt.Errorf("trailing data %q after term", s[p.pos:])
	}
	return t, nil
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) ws() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) term() (Term, error) {
	p.ws()
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.in[p.pos] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	}
	return Term{}, fmt.Errorf("unexpected character %q at offset %d", p.in[p.pos], p.pos)
}

func (p *ntParser) iri() (Term, error) {
	end := strings.IndexByte(p.in[p.pos:], '>')
	if end < 0 {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.in[p.pos+1 : p.pos+end]
	p.pos += end + 1
	return NewIRI(iri), nil
}

func (p *ntParser) blank() (Term, error) {
	if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
		return Term{}, fmt.Errorf("malformed blank node")
	}
	start := p.pos + 2
	i := start
	for i < len(p.in) && !isNTWhitespace(p.in[i]) {
		i++
	}
	label := p.in[start:i]
	if label == "" {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	p.pos = i
	return NewBlank(label), nil
}

func (p *ntParser) literal() (Term, error) {
	var b strings.Builder
	i := p.pos + 1
	for {
		if i >= len(p.in) {
			return Term{}, fmt.Errorf("unterminated literal")
		}
		c := p.in[i]
		if c == '"' {
			i++
			break
		}
		if c == '\\' {
			if i+1 >= len(p.in) {
				return Term{}, fmt.Errorf("dangling escape in literal")
			}
			i++
			switch p.in[i] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				width := 4
				if p.in[i] == 'U' {
					width = 8
				}
				if i+width >= len(p.in) {
					return Term{}, fmt.Errorf("truncated unicode escape")
				}
				var r rune
				for j := 1; j <= width; j++ {
					d := hexVal(p.in[i+j])
					if d < 0 {
						return Term{}, fmt.Errorf("bad unicode escape")
					}
					r = r<<4 | rune(d)
				}
				if !utf8.ValidRune(r) {
					r = utf8.RuneError
				}
				b.WriteRune(r)
				i += width
			default:
				return Term{}, fmt.Errorf("unknown escape \\%c", p.in[i])
			}
			i++
			continue
		}
		b.WriteByte(c)
		i++
	}
	lex := b.String()
	// Optional language tag or datatype suffix.
	if i < len(p.in) && p.in[i] == '@' {
		start := i + 1
		j := start
		for j < len(p.in) && !isNTWhitespace(p.in[j]) && p.in[j] != '.' {
			j++
		}
		p.pos = j
		return NewLangLiteral(lex, p.in[start:j]), nil
	}
	if i+1 < len(p.in) && p.in[i] == '^' && p.in[i+1] == '^' {
		p.pos = i + 2
		if p.pos >= len(p.in) || p.in[p.pos] != '<' {
			return Term{}, fmt.Errorf("expected datatype IRI")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	p.pos = i
	return NewLiteral(lex), nil
}

func isNTWhitespace(c byte) bool { return c == ' ' || c == '\t' }

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// Writer serializes triples as N-Triples.
type Writer struct {
	w *bufio.Writer
}

// NewWriter returns a Writer targeting w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one triple.
func (w *Writer) Write(t Triple) error {
	if _, err := w.w.WriteString(t.String()); err != nil {
		return err
	}
	return w.w.WriteByte('\n')
}

// WriteLine emits one already-serialized N-Triples line. Export uses
// it to write pre-sorted lines without re-parsing them into Triples.
func (w *Writer) WriteLine(line string) error {
	if _, err := w.w.WriteString(line); err != nil {
		return err
	}
	return w.w.WriteByte('\n')
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }
