// Package rdf implements the RDF data model: terms (IRIs, literals and
// blank nodes), triples, and readers/writers for the N-Triples syntax
// plus the Turtle subset needed by the workload generators.
//
// The model follows the RDF 1.0 abstract syntax referenced by the paper
// (Bornea et al., SIGMOD 2013, section 1): a dataset is a set of
// (subject, predicate, object) triples where subjects are IRIs or blank
// nodes, predicates are IRIs and objects are IRIs, blank nodes or
// literals.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRI is an internationalized resource identifier, e.g.
	// <http://dbpedia.org/resource/IBM>.
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) literal value.
	Literal
	// Blank is a blank node with a document-scoped label.
	Blank
)

// Common XSD datatype IRIs used by the generators and FILTER evaluation.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate    = "http://www.w3.org/2001/XMLSchema#date"
	RDFType    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	// RDFLangString is the datatype of language-tagged literals
	// (RDF 1.1); datatype("x"@en) must return it, not xsd:string.
	RDFLangString = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"
)

// Term is one RDF term. The zero Term is invalid; construct terms with
// NewIRI, NewLiteral, NewTypedLiteral, NewLangLiteral or NewBlank.
type Term struct {
	// Kind says which of the three RDF term kinds this is.
	Kind TermKind
	// Value is the IRI string, the literal lexical form, or the blank
	// node label (without the "_:" prefix).
	Value string
	// Datatype is the datatype IRI for typed literals ("" otherwise).
	Datatype string
	// Lang is the language tag for language-tagged literals ("" otherwise).
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewInteger returns an xsd:integer literal for n.
func NewInteger(n int64) Term {
	return Term{Kind: Literal, Value: strconv.FormatInt(n, 10), Datatype: XSDInteger}
}

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// Integer returns the literal interpreted as an int64 and whether the
// conversion succeeded.
func (t Term) Integer() (int64, bool) {
	if t.Kind != Literal {
		return 0, false
	}
	n, err := strconv.ParseInt(t.Value, 10, 64)
	return n, err == nil
}

// Float returns the literal interpreted as a float64 and whether the
// conversion succeeded.
func (t Term) Float() (float64, bool) {
	if t.Kind != Literal {
		return 0, false
	}
	f, err := strconv.ParseFloat(t.Value, 64)
	return f, err == nil
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		escapeLiteral(&b, t.Value)
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

// Key returns a canonical string key that uniquely identifies the term
// across kinds; it is the encoding stored in the dictionary.
func (t Term) Key() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value
	case Blank:
		return "_" + t.Value
	default:
		switch {
		case t.Lang != "":
			return "@" + t.Lang + "\x00" + t.Value
		case t.Datatype != "":
			return "^" + t.Datatype + "\x00" + t.Value
		default:
			return "\"" + t.Value
		}
	}
}

// TermFromKey is the inverse of Term.Key.
func TermFromKey(key string) (Term, error) {
	if key == "" {
		return Term{}, fmt.Errorf("rdf: empty term key")
	}
	rest := key[1:]
	switch key[0] {
	case '<':
		return NewIRI(rest), nil
	case '_':
		return NewBlank(rest), nil
	case '"':
		return NewLiteral(rest), nil
	case '@':
		i := strings.IndexByte(rest, 0)
		if i < 0 {
			return Term{}, fmt.Errorf("rdf: malformed lang literal key %q", key)
		}
		return NewLangLiteral(rest[i+1:], rest[:i]), nil
	case '^':
		i := strings.IndexByte(rest, 0)
		if i < 0 {
			return Term{}, fmt.Errorf("rdf: malformed typed literal key %q", key)
		}
		return NewTypedLiteral(rest[i+1:], rest[:i]), nil
	}
	return Term{}, fmt.Errorf("rdf: malformed term key %q", key)
}

func escapeLiteral(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
}

// Triple is one RDF statement.
type Triple struct {
	S, P, O Term
}

// NewTriple is a convenience constructor.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}
