package translator

import (
	"fmt"
	"sort"
	"strings"

	"db2rdf/internal/rdf"
	"db2rdf/internal/sparql"
)

// Backend abstracts the relational schema a plan is translated onto.
// The DB2RDF backend lives in this package; the triple-store and
// predicate-oriented (vertical) baselines implement it in
// internal/baselines. Everything except access-node generation —
// UNION, OPTIONAL, FILTER handling and the final select — is shared.
type Backend interface {
	// Access translates one PlanAccess node, returning the output
	// context.
	Access(g *Gen, n *PlanNode, in Ctx) (Ctx, error)
	// LookupID resolves a constant term without interning; absent
	// terms report false (they can match nothing).
	LookupID(t rdf.Term) (int64, bool)
	// EncodeID interns a constant (FILTER constants must be decodable
	// by the value functions even when absent from the data).
	EncodeID(t rdf.Term) int64
	// MergeSafe reports whether the given triples may be answered by a
	// single row access (§3.2.1); backends without star storage return
	// false.
	MergeSafe(m MethodT, ts ...*sparql.TriplePattern) bool
}

// Result is a translated query: the SQL text plus the metadata the
// caller needs to decode the relational result back into SPARQL
// bindings.
type Result struct {
	// SQL is the full statement (WITH ... SELECT ...). Empty when the
	// query has no triple patterns.
	SQL string
	// Columns holds the projected variable names, in result-column
	// order. Trailing hidden columns (ORDER BY keys that are not
	// projected) follow them.
	Columns []string
	// Hidden is the number of trailing hidden columns to drop.
	Hidden int
	// Ask marks an ASK query (one row means true).
	Ask bool
	// Plan is the query plan the SQL was generated from.
	Plan *PlanNode
	// Traces records, per access node, the CTE it emitted and the
	// optimizer's TMC estimates for the triples it answers. EXPLAIN
	// ANALYZE joins Cte against executed per-CTE row counts to put
	// estimates next to actual cardinalities.
	Traces []AccessTrace
}

// AccessTrace links one translated access node to its generated CTE.
type AccessTrace struct {
	// Cte is the name of the CTE the access emitted (before any FILTER
	// wrapping), as produced by Gen.Emit (e.g. "QT3").
	Cte    string
	Method MethodT
	Merge  MergeKind
	// TripleIDs and Ests are aligned: the pattern IDs answered by this
	// access and the optimizer's TMC estimate for each.
	TripleIDs []int
	Ests      []float64
	// Est is the node-level estimate: the max member estimate for
	// star-merged (AND/OPT) accesses — the merged row set is keyed by
	// the shared entity — and the sum for OR merges.
	Est float64
}

// Translate generates SQL for a query plan over the given backend.
func Translate(q *sparql.Query, plan *PlanNode, backend Backend) (*Result, error) {
	g := &Gen{backend: backend, varCol: map[string]string{}, colTaken: map[string]bool{}}
	res := &Result{Ask: q.Ask, Plan: plan}
	if len(q.Where.AllTriples()) == 0 {
		return res, nil
	}
	out, err := g.Node(plan, Ctx{Vars: map[string]bool{}})
	if err != nil {
		return nil, err
	}
	final, err := g.finalSelect(q, out, res)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	if len(g.ctes) > 0 {
		b.WriteString("WITH ")
		for i, c := range g.ctes {
			if i > 0 {
				b.WriteString(",\n")
			}
			b.WriteString(c.name)
			b.WriteString(" AS (")
			b.WriteString(c.body)
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	b.WriteString(final)
	res.SQL = b.String()
	res.Traces = g.traces
	return res, nil
}

type cteDef struct{ name, body string }

// Ctx tracks the translation context: the current CTE and the set of
// SPARQL variables bound in it (stored under their column names).
type Ctx struct {
	Cte  string
	Vars map[string]bool
}

// BoundVars returns the bound variables in sorted order.
func (c Ctx) BoundVars() []string {
	out := make([]string, 0, len(c.Vars))
	for v := range c.Vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Gen is the SQL generation state shared across backends.
type Gen struct {
	backend  Backend
	ctes     []cteDef
	cteN     int
	varCol   map[string]string
	colTaken map[string]bool
	traces   []AccessTrace
}

// ColFor returns the stable column name of a SPARQL variable.
func (g *Gen) ColFor(v string) string {
	if c, ok := g.varCol[v]; ok {
		return c
	}
	base := "v_"
	for _, r := range v {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_':
			base += string(r)
		case r >= 'A' && r <= 'Z':
			base += string(r - 'A' + 'a')
		default:
			base += "_"
		}
	}
	name := base
	for i := 2; g.colTaken[name]; i++ {
		name = fmt.Sprintf("%s_%d", base, i)
	}
	g.colTaken[name] = true
	g.varCol[v] = name
	return name
}

// Emit registers a new CTE body and returns its name.
func (g *Gen) Emit(body string) string {
	g.cteN++
	name := fmt.Sprintf("QT%d", g.cteN)
	g.ctes = append(g.ctes, cteDef{name: name, body: body})
	return name
}

// IDOf resolves a constant term to its dictionary id; absent terms get
// -1, which matches no row (the paper's empty-result fast path).
func (g *Gen) IDOf(t rdf.Term) int64 {
	id, ok := g.backend.LookupID(t)
	if !ok {
		return -1
	}
	return id
}

// Carry renders "alias.col AS col" projections for every bound
// variable.
func (g *Gen) Carry(in Ctx, alias string) []string {
	var out []string
	for _, v := range in.BoundVars() {
		c := g.ColFor(v)
		out = append(out, fmt.Sprintf("%s.%s AS %s", alias, c, c))
	}
	return out
}

// Node translates one plan node, returning the output context.
func (g *Gen) Node(n *PlanNode, in Ctx) (Ctx, error) {
	switch n.Kind {
	case PlanAnd:
		cur := in
		var err error
		for _, c := range n.Children {
			cur, err = g.Node(c, cur)
			if err != nil {
				return Ctx{}, err
			}
		}
		return g.ApplyFilters(n.Filters, cur)
	case PlanOr:
		return g.orNode(n, in)
	case PlanOpt:
		return g.optNode(n, in)
	case PlanAccess:
		out, err := g.backend.Access(g, n, in)
		if err != nil {
			return Ctx{}, err
		}
		if out.Cte != "" {
			tr := AccessTrace{Cte: out.Cte, Method: n.Method, Merge: n.Merge}
			for _, it := range n.Items {
				tr.TripleIDs = append(tr.TripleIDs, it.Triple.ID)
				tr.Ests = append(tr.Ests, it.Est)
				if n.Merge == OrMerge {
					tr.Est += it.Est
				} else if it.Est > tr.Est {
					tr.Est = it.Est
				}
			}
			g.traces = append(g.traces, tr)
		}
		return g.ApplyFilters(n.Filters, out)
	}
	return Ctx{}, fmt.Errorf("translator: unknown plan node kind %d", n.Kind)
}

// orNode translates a UNION: arms evaluated from the same input
// context, results aligned on the union of their variables.
func (g *Gen) orNode(n *PlanNode, in Ctx) (Ctx, error) {
	var arms []Ctx
	allVars := map[string]bool{}
	for v := range in.Vars {
		allVars[v] = true
	}
	for _, c := range n.Children {
		ac, err := g.Node(c, in)
		if err != nil {
			return Ctx{}, err
		}
		for v := range ac.Vars {
			allVars[v] = true
		}
		arms = append(arms, ac)
	}
	ordered := make([]string, 0, len(allVars))
	for v := range allVars {
		ordered = append(ordered, v)
	}
	sort.Strings(ordered)
	var parts []string
	for _, a := range arms {
		var sel []string
		for _, v := range ordered {
			col := g.ColFor(v)
			if a.Vars[v] {
				sel = append(sel, fmt.Sprintf("A.%s AS %s", col, col))
			} else {
				sel = append(sel, fmt.Sprintf("NULL AS %s", col))
			}
		}
		if len(sel) == 0 {
			sel = []string{"1 AS one"}
		}
		parts = append(parts, fmt.Sprintf("SELECT %s FROM %s AS A", strings.Join(sel, ", "), a.Cte))
	}
	name := g.Emit(strings.Join(parts, "\nUNION ALL\n"))
	out := Ctx{Cte: name, Vars: allVars}
	return g.ApplyFilters(n.Filters, out)
}

// optNode translates OPTIONAL as a left outer join of the input with
// the independently translated optional block on their shared
// variables.
func (g *Gen) optNode(n *PlanNode, in Ctx) (Ctx, error) {
	child := n.Children[0]
	// Translate the optional block standalone (unbound entity lookups
	// degrade to scans inside the backend's Access).
	oc, err := g.Node(child, Ctx{Vars: map[string]bool{}})
	if err != nil {
		return Ctx{}, err
	}
	oc, err = g.ApplyFilters(n.Filters, oc)
	if err != nil {
		return Ctx{}, err
	}
	if in.Cte == "" {
		// OPTIONAL with no required part: it degenerates to the block
		// itself (every solution of the block).
		return oc, nil
	}
	var shared, optOnly []string
	for v := range oc.Vars {
		if in.Vars[v] {
			shared = append(shared, v)
		} else {
			optOnly = append(optOnly, v)
		}
	}
	sort.Strings(shared)
	sort.Strings(optOnly)
	var on []string
	for _, v := range shared {
		c := g.ColFor(v)
		on = append(on, fmt.Sprintf("P.%s = O.%s", c, c))
	}
	if len(on) == 0 {
		on = append(on, "1 = 1")
	}
	sel := g.Carry(in, "P")
	for _, v := range optOnly {
		c := g.ColFor(v)
		sel = append(sel, fmt.Sprintf("O.%s AS %s", c, c))
	}
	if len(sel) == 0 {
		sel = []string{"1 AS one"}
	}
	body := fmt.Sprintf("SELECT %s FROM %s AS P LEFT OUTER JOIN %s AS O ON %s",
		strings.Join(sel, ", "), in.Cte, oc.Cte, strings.Join(on, " AND "))
	name := g.Emit(body)
	outVars := map[string]bool{}
	for v := range in.Vars {
		outVars[v] = true
	}
	for v := range oc.Vars {
		outVars[v] = true
	}
	return Ctx{Cte: name, Vars: outVars}, nil
}

// ApplyFilters wraps the current CTE in a filtering select.
func (g *Gen) ApplyFilters(filters []sparql.Expr, in Ctx) (Ctx, error) {
	if len(filters) == 0 || in.Cte == "" {
		return in, nil
	}
	varExpr := map[string]string{}
	for v := range in.Vars {
		varExpr[v] = "P." + g.ColFor(v)
	}
	var conds []string
	for _, f := range filters {
		c, err := g.filterSQL(f, varExpr)
		if err != nil {
			return Ctx{}, err
		}
		conds = append(conds, c)
	}
	sel := g.Carry(in, "P")
	if len(sel) == 0 {
		sel = []string{"1 AS one"}
	}
	body := fmt.Sprintf("SELECT %s FROM %s AS P WHERE %s",
		strings.Join(sel, ", "), in.Cte, strings.Join(conds, " AND "))
	name := g.Emit(body)
	return Ctx{Cte: name, Vars: in.Vars}, nil
}

// ValPos returns the value position of a triple under a method (the
// object for subject-keyed access, the subject for object-keyed).
func ValPos(t *sparql.TriplePattern, m MethodT) sparql.TermOrVar {
	if m == MethodACO {
		return t.S
	}
	return t.O
}

// finalSelect renders the outer SELECT: projection, DISTINCT, ORDER
// BY, LIMIT/OFFSET.
func (g *Gen) finalSelect(q *sparql.Query, out Ctx, res *Result) (string, error) {
	if q.Ask {
		res.Columns = []string{"ok"}
		return fmt.Sprintf("SELECT 1 AS ok FROM %s AS P LIMIT 1", out.Cte), nil
	}
	proj := q.ProjectedVars()
	var sel []string
	for _, v := range proj {
		c := g.ColFor(v)
		if out.Vars[v] {
			sel = append(sel, fmt.Sprintf("P.%s AS %s", c, c))
		} else {
			sel = append(sel, fmt.Sprintf("NULL AS %s", c))
		}
		res.Columns = append(res.Columns, v)
	}
	// ORDER BY keys that reference unprojected variables become hidden
	// trailing columns.
	projSet := map[string]bool{}
	for _, v := range proj {
		projSet[v] = true
	}
	var orderExprs []string
	for _, k := range q.OrderBy {
		vars := map[string]bool{}
		sparql.ExprVars(k.Expr, vars)
		for v := range vars {
			if !projSet[v] && out.Vars[v] {
				c := g.ColFor(v)
				sel = append(sel, fmt.Sprintf("P.%s AS %s", c, c))
				res.Columns = append(res.Columns, v)
				res.Hidden++
				projSet[v] = true
			}
		}
		varExpr := map[string]string{}
		for v := range out.Vars {
			varExpr[v] = g.ColFor(v)
		}
		e, err := g.orderKeySQL(k.Expr, varExpr)
		if err != nil {
			return "", err
		}
		if k.Desc {
			e += " DESC"
		}
		orderExprs = append(orderExprs, e)
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	b.WriteString(strings.Join(sel, ", "))
	fmt.Fprintf(&b, " FROM %s AS P", out.Cte)
	if len(orderExprs) > 0 {
		b.WriteString(" ORDER BY ")
		b.WriteString(strings.Join(orderExprs, ", "))
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String(), nil
}

// orderKeySQL renders an ORDER BY key over the projected columns.
func (g *Gen) orderKeySQL(e sparql.Expr, varExpr map[string]string) (string, error) {
	if v, ok := e.(*sparql.EVar); ok {
		c, bound := varExpr[v.Name]
		if !bound {
			return "NULL", nil
		}
		return fmt.Sprintf("dsort(%s)", c), nil
	}
	return g.numSQL(e, varExpr)
}
