package translator

import (
	"fmt"
	"sort"
	"strings"

	"db2rdf/internal/coloring"
	"db2rdf/internal/optimizer"
	"db2rdf/internal/rdf"
	"db2rdf/internal/sparql"
)

// MethodT aliases the optimizer's access method type for backends.
type MethodT = optimizer.Method

// Method constants re-exported for backends.
const (
	MethodSC  = optimizer.SC
	MethodACS = optimizer.ACS
	MethodACO = optimizer.ACO
)

// StoreView is the read-side store surface the backend translates
// against: either the live *store.Store (writer-context translation,
// under the store write lock — the SPARQL Update WHERE path) or a
// *store.Snapshot (lock-free query translation against one published
// version). Keeping it an interface means the generated SQL is always
// derived from exactly the state it will execute against.
type StoreView interface {
	TableName(base string) string
	Mapping(reverse bool) coloring.Mapping
	K(reverse bool) int
	LookupID(t rdf.Term) (int64, bool)
	EncodeID(t rdf.Term) int64
	SpillPredicates(reverse bool) map[int64]bool
	MultiValued(pid int64, reverse bool) bool
	AnyMultiValued(reverse bool) bool
}

// DB2RDF is the translator backend for the entity-oriented DB2RDF
// schema (DPH/DS/RPH/RS), emitting the CTE templates of Figures 12-13.
type DB2RDF struct {
	St StoreView
	// Virtual maps synthetic predicate IRIs (property-path closure
	// markers) to the name of the materialized (entry, val) relation
	// holding their pairs.
	Virtual map[string]string
}

// NewDB2RDF wraps a store view as a translation backend.
func NewDB2RDF(st StoreView) *DB2RDF { return &DB2RDF{St: st} }

// LookupID implements Backend.
func (b *DB2RDF) LookupID(t rdf.Term) (int64, bool) { return b.St.LookupID(t) }

// EncodeID implements Backend.
func (b *DB2RDF) EncodeID(t rdf.Term) int64 { return b.St.EncodeID(t) }

// MergeSafe implements Backend: constant predicates only, none
// involved in spills on the relevant side (§3.2.1). Scans read DPH
// like subject-keyed access does, so SC merges are allowed (the single
// DPH scan of Figure 2(b)).
func (b *DB2RDF) MergeSafe(m MethodT, triples ...*sparql.TriplePattern) bool {
	reverse := m == MethodACO
	spills := b.St.SpillPredicates(reverse)
	for _, t := range triples {
		if t.P.IsVar {
			return false
		}
		if _, virtual := b.Virtual[t.P.Term.Value]; virtual {
			return false
		}
		id, ok := b.St.LookupID(t.P.Term)
		if ok && spills[id] {
			return false
		}
	}
	return true
}

// itemInfo is the per-triple state inside an access node translation.
type itemInfo struct {
	item     PlanItem
	pid      int64
	cols     []int
	raw      string // phase-1 expression over T
	rawName  string // r<i> column name in phase 1
	multival bool
}

// Access implements Backend: a (possibly merged) star lookup against
// DPH or RPH, with DS/RS joins for multi-valued predicates.
func (b *DB2RDF) Access(g *Gen, n *PlanNode, in Ctx) (Ctx, error) {
	method := n.Method
	reverse := method == MethodACO
	primary := b.St.TableName("DPH")
	secondary := b.St.TableName("DS")
	if reverse {
		primary = b.St.TableName("RPH")
		secondary = b.St.TableName("RS")
	}
	mapping := b.St.Mapping(reverse)
	k := b.St.K(reverse)

	if n.Items[0].Triple.P.IsVar {
		if len(n.Items) != 1 {
			return Ctx{}, fmt.Errorf("translator: variable-predicate triples cannot be merged")
		}
		return b.varPredNode(g, n, in, primary, secondary, reverse, k)
	}
	if table, ok := b.Virtual[n.Items[0].Triple.P.Term.Value]; ok {
		// A property-path closure marker: access its materialized
		// pair relation directly.
		if len(n.Items) != 1 {
			return Ctx{}, fmt.Errorf("translator: closure predicates cannot be merged")
		}
		return PositionalAccess(g, n.Items[0].Triple, in, table+" AS T", "T.entry", "", "T.val")
	}

	entity := entityOf(n.Items[0].Triple, method)
	outVars := map[string]bool{}
	for v := range in.Vars {
		outVars[v] = true
	}

	// ---- Phase 1: primary relation access with predicate conditions.
	sel := g.Carry(in, "P")
	var conds []string
	switch {
	case !entity.IsVar:
		conds = append(conds, fmt.Sprintf("T.entry = %d", g.IDOf(entity.Term)))
	case in.Vars[entity.Var]:
		conds = append(conds, fmt.Sprintf("T.entry = P.%s", g.ColFor(entity.Var)))
	default:
		// Unbound entity: scan with the entry exposed.
		col := g.ColFor(entity.Var)
		sel = append(sel, fmt.Sprintf("T.entry AS %s", col))
		outVars[entity.Var] = true
	}

	infos := make([]*itemInfo, len(n.Items))
	anyMulti := false
	for i, it := range n.Items {
		pid := g.IDOf(it.Triple.P.Term)
		cols := clipCols(mapping.Columns(it.Triple.P.Term.Value), k)
		info := &itemInfo{
			item:     it,
			pid:      pid,
			cols:     cols,
			rawName:  fmt.Sprintf("r%d", i),
			multival: b.St.MultiValued(pid, reverse),
		}
		pc := predCond("T", cols, pid)
		raw := rawVal("T", cols, pid)
		switch {
		case it.Optional:
			if len(cols) == 1 {
				raw = fmt.Sprintf("CASE WHEN %s THEN %s ELSE NULL END", pc, raw)
			}
			// multi-column raw is already a CASE guarded by predicate
			// conditions.
		case n.Merge == OrMerge:
			// Disjunctive members: each value is guarded so the flip
			// phase can test presence.
			if len(cols) == 1 {
				raw = fmt.Sprintf("CASE WHEN %s THEN %s ELSE NULL END", pc, raw)
			}
		default:
			conds = append(conds, pc)
		}
		info.raw = raw
		if info.multival {
			anyMulti = true
		}
		sel = append(sel, fmt.Sprintf("%s AS %s", raw, info.rawName))
		infos[i] = info
	}
	if n.Merge == OrMerge {
		var alts []string
		for _, info := range infos {
			alts = append(alts, predCond("T", info.cols, info.pid))
		}
		conds = append(conds, "("+strings.Join(alts, " OR ")+")")
	}

	from := fmt.Sprintf("%s AS T", primary)
	if in.Cte != "" {
		from = fmt.Sprintf("%s AS P, %s AS T", in.Cte, primary)
	}
	body := fmt.Sprintf("SELECT %s FROM %s", strings.Join(sel, ", "), from)
	if len(conds) > 0 {
		body += " WHERE " + strings.Join(conds, " AND ")
	}
	cur := g.Emit(body)

	// Columns now available in cur: carried cols, maybe entity col,
	// r0..rn.
	availCols := func(alias string) []string {
		var out []string
		for v := range outVars {
			c := g.ColFor(v)
			out = append(out, fmt.Sprintf("%s.%s AS %s", alias, c, c))
		}
		sort.Strings(out)
		return out
	}

	// OR-merged disjuncts resolve their DS lists per flip arm: a
	// shared secondary join would cross-join the lists of different
	// disjuncts.
	if n.Merge == OrMerge {
		return b.orFlip(g, n, infos, cur, outVars, secondary)
	}

	// ---- Phase 2: DS/RS joins for multi-valued members.
	finalVal := make([]string, len(infos))
	if anyMulti {
		var joins []string
		sel2 := availCols("A")
		for i, info := range infos {
			var expr string
			if info.multival {
				sAlias := fmt.Sprintf("S%d", i)
				joins = append(joins, fmt.Sprintf("LEFT OUTER JOIN %s AS %s ON A.%s = %s.lid", secondary, sAlias, info.rawName, sAlias))
				expr = fmt.Sprintf("COALESCE(%s.elm, A.%s)", sAlias, info.rawName)
			} else {
				expr = "A." + info.rawName
			}
			sel2 = append(sel2, fmt.Sprintf("%s AS %s", expr, info.rawName))
		}
		body2 := fmt.Sprintf("SELECT %s FROM %s AS A %s", strings.Join(sel2, ", "), cur, strings.Join(joins, " "))
		cur = g.Emit(body2)
	}
	for i := range infos {
		finalVal[i] = "A." + infos[i].rawName
	}

	// ---- Phase 3: value bindings and conditions.
	sel3 := availCols("A")
	var conds3 []string
	localNew := map[string]string{} // var -> expression bound in this phase
	for i, info := range infos {
		tv := ValPos(info.item.Triple, method)
		expr := finalVal[i]
		switch {
		case !tv.IsVar:
			conds3 = append(conds3, fmt.Sprintf("%s = %d", expr, g.IDOf(tv.Term)))
		case outVars[tv.Var]:
			c := fmt.Sprintf("%s = A.%s", expr, g.ColFor(tv.Var))
			if info.item.Optional {
				c = fmt.Sprintf("(%s OR %s IS NULL)", c, expr)
			}
			conds3 = append(conds3, c)
		case localNew[tv.Var] != "":
			conds3 = append(conds3, fmt.Sprintf("%s = %s", expr, localNew[tv.Var]))
		default:
			localNew[tv.Var] = expr
			sel3 = append(sel3, fmt.Sprintf("%s AS %s", expr, g.ColFor(tv.Var)))
		}
	}
	for v := range localNew {
		outVars[v] = true
	}
	if len(sel3) == 0 {
		sel3 = []string{"1 AS one"}
	}
	body3 := fmt.Sprintf("SELECT %s FROM %s AS A", strings.Join(sel3, ", "), cur)
	if len(conds3) > 0 {
		body3 += " WHERE " + strings.Join(conds3, " AND ")
	}
	name := g.Emit(body3)
	return Ctx{Cte: name, Vars: outVars}, nil
}

// orFlip implements the paper's "flip" of an OR-merged access (the
// lateral TABLE(...) of Figure 13) as a UNION ALL with one arm per
// disjunct, guarded by presence of that disjunct's value. Each arm
// joins DS/RS for its own disjunct only — a shared join would
// cross-join the member lists of different disjuncts.
func (b *DB2RDF) orFlip(g *Gen, n *PlanNode, infos []*itemInfo, cur string, outVars map[string]bool, secondary string) (Ctx, error) {
	method := n.Method
	// Variables newly bound by arms.
	armVar := make([]string, len(infos))
	newVars := map[string]bool{}
	for i, info := range infos {
		tv := ValPos(info.item.Triple, method)
		if tv.IsVar && !outVars[tv.Var] {
			armVar[i] = tv.Var
			newVars[tv.Var] = true
		}
	}
	ordered := make([]string, 0, len(newVars))
	for v := range newVars {
		ordered = append(ordered, v)
	}
	sort.Strings(ordered)

	shared := make([]string, 0, len(outVars))
	for v := range outVars {
		shared = append(shared, v)
	}
	sort.Strings(shared)

	var arms []string
	for i, info := range infos {
		raw := "A." + info.rawName
		val := raw
		from := fmt.Sprintf("%s AS A", cur)
		if info.multival {
			from += fmt.Sprintf(" LEFT OUTER JOIN %s AS S0 ON %s = S0.lid", secondary, raw)
			val = fmt.Sprintf("COALESCE(S0.elm, %s)", raw)
		}
		var sel []string
		for _, v := range shared {
			c := g.ColFor(v)
			sel = append(sel, fmt.Sprintf("A.%s AS %s", c, c))
		}
		for _, v := range ordered {
			c := g.ColFor(v)
			if v == armVar[i] {
				sel = append(sel, fmt.Sprintf("%s AS %s", val, c))
			} else {
				sel = append(sel, fmt.Sprintf("NULL AS %s", c))
			}
		}
		conds := []string{fmt.Sprintf("%s IS NOT NULL", raw)}
		tv := ValPos(info.item.Triple, method)
		switch {
		case !tv.IsVar:
			conds = append(conds, fmt.Sprintf("%s = %d", val, g.IDOf(tv.Term)))
		case outVars[tv.Var]:
			conds = append(conds, fmt.Sprintf("%s = A.%s", val, g.ColFor(tv.Var)))
		}
		if len(sel) == 0 {
			sel = []string{"1 AS one"}
		}
		arms = append(arms, fmt.Sprintf("SELECT %s FROM %s WHERE %s",
			strings.Join(sel, ", "), from, strings.Join(conds, " AND ")))
	}
	name := g.Emit(strings.Join(arms, "\nUNION ALL\n"))
	for v := range newVars {
		outVars[v] = true
	}
	return Ctx{Cte: name, Vars: outVars}, nil
}

// varPredNode translates a triple whose predicate is a variable: a
// UNION ALL over all k predicate columns.
func (b *DB2RDF) varPredNode(g *Gen, n *PlanNode, in Ctx, primary, secondary string, reverse bool, k int) (Ctx, error) {
	t := n.Items[0].Triple
	method := n.Method
	entity := entityOf(t, method)
	tv := ValPos(t, method)
	pv := t.P.Var

	outVars := map[string]bool{}
	for v := range in.Vars {
		outVars[v] = true
	}

	entityCond := ""
	exposeEntity := false
	switch {
	case !entity.IsVar:
		entityCond = fmt.Sprintf("T.entry = %d", g.IDOf(entity.Term))
	case in.Vars[entity.Var]:
		entityCond = fmt.Sprintf("T.entry = P.%s", g.ColFor(entity.Var))
	default:
		exposeEntity = true
	}

	predBound := in.Vars[pv]
	// "?a ?a ?b": the predicate variable repeats the entity variable,
	// which becomes an equality on the row rather than a second
	// exposure.
	predSameAsEntity := entity.IsVar && entity.Var == pv
	var arms []string
	for c := 0; c < k; c++ {
		sel := g.Carry(in, "P")
		if exposeEntity {
			sel = append(sel, fmt.Sprintf("T.entry AS %s", g.ColFor(entity.Var)))
		}
		if !predBound && !predSameAsEntity {
			sel = append(sel, fmt.Sprintf("T.pred%d AS %s", c, g.ColFor(pv)))
		}
		sel = append(sel, fmt.Sprintf("T.val%d AS r0", c))
		conds := []string{fmt.Sprintf("T.pred%d IS NOT NULL", c)}
		if entityCond != "" {
			conds = append(conds, entityCond)
		}
		if predBound {
			conds = append(conds, fmt.Sprintf("T.pred%d = P.%s", c, g.ColFor(pv)))
		} else if predSameAsEntity {
			conds = append(conds, fmt.Sprintf("T.pred%d = T.entry", c))
		}
		from := fmt.Sprintf("%s AS T", primary)
		if in.Cte != "" {
			from = fmt.Sprintf("%s AS P, %s AS T", in.Cte, primary)
		}
		arms = append(arms, fmt.Sprintf("SELECT %s FROM %s WHERE %s",
			strings.Join(sel, ", "), from, strings.Join(conds, " AND ")))
	}
	cur := g.Emit(strings.Join(arms, "\nUNION ALL\n"))
	if exposeEntity {
		outVars[entity.Var] = true
	}
	if !predBound && !predSameAsEntity {
		outVars[pv] = true
	}

	availCols := func(alias string) []string {
		var out []string
		for v := range outVars {
			c := g.ColFor(v)
			out = append(out, fmt.Sprintf("%s.%s AS %s", alias, c, c))
		}
		sort.Strings(out)
		return out
	}

	valExpr := "A.r0"
	if b.St.AnyMultiValued(reverse) {
		sel2 := availCols("A")
		sel2 = append(sel2, "COALESCE(S0.elm, A.r0) AS r0")
		body := fmt.Sprintf("SELECT %s FROM %s AS A LEFT OUTER JOIN %s AS S0 ON A.r0 = S0.lid",
			strings.Join(sel2, ", "), cur, secondary)
		cur = g.Emit(body)
	}

	sel3 := availCols("A")
	var conds3 []string
	switch {
	case !tv.IsVar:
		conds3 = append(conds3, fmt.Sprintf("%s = %d", valExpr, g.IDOf(tv.Term)))
	case outVars[tv.Var]:
		conds3 = append(conds3, fmt.Sprintf("%s = A.%s", valExpr, g.ColFor(tv.Var)))
	default:
		sel3 = append(sel3, fmt.Sprintf("%s AS %s", valExpr, g.ColFor(tv.Var)))
		outVars[tv.Var] = true
	}
	if len(sel3) == 0 {
		sel3 = []string{"1 AS one"}
	}
	body3 := fmt.Sprintf("SELECT %s FROM %s AS A", strings.Join(sel3, ", "), cur)
	if len(conds3) > 0 {
		body3 += " WHERE " + strings.Join(conds3, " AND ")
	}
	name := g.Emit(body3)
	return Ctx{Cte: name, Vars: outVars}, nil
}

// clipCols drops candidate columns beyond the physical budget.
func clipCols(cols []int, k int) []int {
	out := cols[:0:0]
	for _, c := range cols {
		if c < k {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{0}
	}
	return out
}

// predCond renders the predicate membership condition over the
// candidate columns (Figure 12 box 3).
func predCond(alias string, cols []int, pid int64) string {
	if len(cols) == 1 {
		return fmt.Sprintf("%s.pred%d = %d", alias, cols[0], pid)
	}
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%s.pred%d = %d", alias, c, pid)
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// rawVal renders the value expression over the candidate columns; with
// several candidates a CASE selects the column actually holding the
// predicate (the paper's CASE statements of §3.2.2).
func rawVal(alias string, cols []int, pid int64) string {
	if len(cols) == 1 {
		return fmt.Sprintf("%s.val%d", alias, cols[0])
	}
	var b strings.Builder
	b.WriteString("CASE")
	for _, c := range cols {
		fmt.Fprintf(&b, " WHEN %s.pred%d = %d THEN %s.val%d", alias, c, pid, alias, c)
	}
	b.WriteString(" ELSE NULL END")
	return b.String()
}
