// Package translator implements the SPARQL-to-SQL translation of
// Bornea et al. (SIGMOD 2013, §3.2) for the DB2RDF schema: the query
// plan builder that merges execution-tree nodes into star lookups
// (Definitions 3.9-3.11, spill-aware), and the SQL generator that emits
// a chain of common table expressions over DPH/DS/RPH/RS (Figures
// 12-13).
package translator

import (
	"fmt"
	"strings"

	"db2rdf/internal/optimizer"
	"db2rdf/internal/sparql"
)

// MergeKind records which merge rule produced a plan node.
type MergeKind uint8

const (
	// NoMerge marks an unmerged single-triple access.
	NoMerge MergeKind = iota
	// AndMerge marks a conjunctive star merge (Definition 3.9).
	AndMerge
	// OrMerge marks a disjunctive merge (Definition 3.10).
	OrMerge
	// OptMerge marks a merge with optional members (Definition 3.11).
	OptMerge
)

// String names the merge kind.
func (m MergeKind) String() string {
	switch m {
	case NoMerge:
		return "none"
	case AndMerge:
		return "and"
	case OrMerge:
		return "or"
	case OptMerge:
		return "opt"
	}
	return fmt.Sprintf("MergeKind(%d)", uint8(m))
}

// PlanKind enumerates query plan node kinds.
type PlanKind uint8

const (
	// PlanAccess evaluates one or more triples with a single table
	// access (a merged star when len(Items) > 1).
	PlanAccess PlanKind = iota
	// PlanAnd joins children in order.
	PlanAnd
	// PlanOr unions children.
	PlanOr
	// PlanOpt left-outer-joins its single child.
	PlanOpt
)

// PlanItem is one triple inside an access node.
type PlanItem struct {
	Triple   *sparql.TriplePattern
	Optional bool
	// Est is the optimizer's TMC estimate for this triple, carried
	// through planning so EXPLAIN ANALYZE can show it next to the
	// actual cardinality.
	Est float64
}

// PlanNode is a node of the storage-specific query plan (Figure 11).
type PlanNode struct {
	Kind     PlanKind
	Items    []PlanItem
	Method   optimizer.Method
	Merge    MergeKind
	Children []*PlanNode
	Filters  []sparql.Expr
}

// String renders the plan compactly, e.g.
// AND[(t4,aco), ({t2,t3},aco:or), (t1,acs), (t5,aco), ({t6,t7},acs:opt)].
func (n *PlanNode) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *PlanNode) render(b *strings.Builder) {
	switch n.Kind {
	case PlanAccess:
		if len(n.Items) == 1 {
			fmt.Fprintf(b, "(t%d,%s)", n.Items[0].Triple.ID, n.Method)
		} else {
			b.WriteString("({")
			for i, it := range n.Items {
				if i > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(b, "t%d", it.Triple.ID)
				if it.Optional {
					b.WriteString("?")
				}
			}
			fmt.Fprintf(b, "},%s:%s)", n.Method, n.Merge)
		}
	case PlanAnd:
		b.WriteString("AND[")
		n.renderChildren(b)
		b.WriteString("]")
	case PlanOr:
		b.WriteString("OR[")
		n.renderChildren(b)
		b.WriteString("]")
	case PlanOpt:
		b.WriteString("OPT[")
		n.renderChildren(b)
		b.WriteString("]")
	}
	if len(n.Filters) > 0 {
		fmt.Fprintf(b, "{%df}", len(n.Filters))
	}
}

func (n *PlanNode) renderChildren(b *strings.Builder) {
	for i, c := range n.Children {
		if i > 0 {
			b.WriteString(", ")
		}
		c.render(b)
	}
}

// MergeCount returns the number of merged access nodes in the plan
// (for tests and EXPLAIN output).
func (n *PlanNode) MergeCount() int {
	count := 0
	if n.Kind == PlanAccess && len(n.Items) > 1 {
		count++
	}
	for _, c := range n.Children {
		count += c.MergeCount()
	}
	return count
}

// entityOf returns the entity position of a triple under a method:
// the subject for acs/sc, the object for aco.
func entityOf(t *sparql.TriplePattern, m optimizer.Method) sparql.TermOrVar {
	if m == optimizer.ACO {
		return t.O
	}
	return t.S
}

// methodsCompatible reports whether two access methods can share one
// row access: equal methods always, and SC with ACS (both read the
// subject-keyed primary relation; a scan is just an unkeyed lookup —
// Figure 2(b) merges a constant-free star into one DPH scan).
func methodsCompatible(a, b optimizer.Method) bool {
	if a == b {
		return true
	}
	return (a == optimizer.SC && b == optimizer.ACS) || (a == optimizer.ACS && b == optimizer.SC)
}

// sameEntity reports whether two positions denote the same entity
// (same variable, or equal constant terms).
func sameEntity(a, b sparql.TermOrVar) bool {
	if a.IsVar != b.IsVar {
		return false
	}
	if a.IsVar {
		return a.Var == b.Var
	}
	return a.Term == b.Term
}

// Planner builds storage-specific query plans for a backend.
type Planner struct {
	backend Backend
	noMerge bool
}

// NewPlanner returns a planner bound to a backend (which supplies the
// spill and multi-value metadata merge decisions need).
func NewPlanner(b Backend) *Planner { return &Planner{backend: b} }

// SetMerging enables or disables star merging (the ablation of the
// paper's join-elimination claim); merging is on by default.
func (p *Planner) SetMerging(enabled bool) { p.noMerge = !enabled }

// mergeSafe defers to the backend (§3.2.1).
func (p *Planner) mergeSafe(m optimizer.Method, triples ...*sparql.TriplePattern) bool {
	if p.noMerge {
		return false
	}
	return p.backend.MergeSafe(m, triples...)
}

// BuildPlan converts an execution tree into a query plan, applying the
// structural and semantic merge rules.
func (p *Planner) BuildPlan(exec *optimizer.ExecNode) *PlanNode {
	switch exec.Kind {
	case optimizer.ExecLeaf:
		return &PlanNode{
			Kind:    PlanAccess,
			Items:   []PlanItem{{Triple: exec.Triple, Est: exec.Cost}},
			Method:  exec.Method,
			Filters: exec.Filters,
		}
	case optimizer.ExecOr:
		or := &PlanNode{Kind: PlanOr, Filters: exec.Filters}
		for _, c := range exec.Children {
			or.Children = append(or.Children, p.BuildPlan(c))
		}
		if merged := p.tryOrMerge(or); merged != nil {
			return merged
		}
		return or
	case optimizer.ExecOpt:
		return &PlanNode{Kind: PlanOpt, Children: []*PlanNode{p.BuildPlan(exec.Children[0])}, Filters: exec.Filters}
	}
	// ExecAnd: build children then run the merge pass.
	and := &PlanNode{Kind: PlanAnd, Filters: exec.Filters}
	for _, c := range exec.Children {
		child := p.BuildPlan(c)
		and.Children = append(and.Children, p.mergeInto(and.Children, child))
	}
	// mergeInto returns nil when the child was absorbed; compact.
	out := and.Children[:0]
	for _, c := range and.Children {
		if c != nil {
			out = append(out, c)
		}
	}
	and.Children = out
	if len(and.Children) == 1 && len(and.Filters) == 0 {
		return and.Children[0]
	}
	return and
}

// mergeInto tries to absorb child into one of the already planned
// siblings; it returns child when no merge applies and nil when the
// child was absorbed.
func (p *Planner) mergeInto(siblings []*PlanNode, child *PlanNode) *PlanNode {
	switch child.Kind {
	case PlanAccess:
		if len(child.Items) != 1 || len(child.Filters) > 0 {
			return child
		}
		t := child.Items[0].Triple
		for _, s := range siblings {
			if s == nil || s.Kind != PlanAccess || !methodsCompatible(s.Method, child.Method) {
				continue
			}
			if s.Merge != NoMerge && s.Merge != AndMerge && s.Merge != OptMerge {
				continue
			}
			if len(s.Filters) > 0 {
				continue
			}
			if !sameEntity(entityOf(s.Items[0].Triple, s.Method), entityOf(t, child.Method)) {
				continue
			}
			ok := true
			for _, it := range s.Items {
				if !sparql.ANDMergeable(it.Triple, t) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			all := []*sparql.TriplePattern{t}
			for _, it := range s.Items {
				all = append(all, it.Triple)
			}
			if !p.mergeSafe(s.Method, all...) {
				continue
			}
			s.Items = append(s.Items, PlanItem{Triple: t, Est: child.Items[0].Est})
			if s.Merge == NoMerge {
				s.Merge = AndMerge
			}
			return nil
		}
		return child
	case PlanOpt:
		// Definition 3.11: a single-triple OPTIONAL merges into a
		// compatible required access node.
		inner := child.Children[0]
		if inner.Kind != PlanAccess || len(inner.Items) != 1 || len(inner.Filters) > 0 || len(child.Filters) > 0 {
			return child
		}
		t := inner.Items[0].Triple
		for _, s := range siblings {
			if s == nil || s.Kind != PlanAccess || !methodsCompatible(s.Method, inner.Method) {
				continue
			}
			if s.Merge != NoMerge && s.Merge != AndMerge && s.Merge != OptMerge {
				continue
			}
			if len(s.Filters) > 0 {
				continue
			}
			if !sameEntity(entityOf(s.Items[0].Triple, s.Method), entityOf(t, inner.Method)) {
				continue
			}
			ok := true
			for _, it := range s.Items {
				if it.Optional {
					continue
				}
				if !sparql.OPTMergeable(it.Triple, t) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			all := []*sparql.TriplePattern{t}
			for _, it := range s.Items {
				all = append(all, it.Triple)
			}
			if !p.mergeSafe(s.Method, all...) {
				continue
			}
			s.Items = append(s.Items, PlanItem{Triple: t, Optional: true, Est: inner.Items[0].Est})
			s.Merge = OptMerge
			return nil
		}
		return child
	}
	return child
}

// tryOrMerge converts an OR of single-triple accesses on the same
// entity and method into one disjunctive access node (Definition 3.10).
func (p *Planner) tryOrMerge(or *PlanNode) *PlanNode {
	var items []PlanItem
	var method optimizer.Method
	var entity sparql.TermOrVar
	var triples []*sparql.TriplePattern
	for i, c := range or.Children {
		if c.Kind != PlanAccess || len(c.Items) != 1 || len(c.Filters) > 0 {
			return nil
		}
		t := c.Items[0].Triple
		if i == 0 {
			method = c.Method
			entity = entityOf(t, method)
		} else {
			if c.Method != method || !sameEntity(entityOf(t, method), entity) {
				return nil
			}
			if !sparql.ORMergeable(triples[0], t) {
				return nil
			}
		}
		items = append(items, PlanItem{Triple: t, Est: c.Items[0].Est})
		triples = append(triples, t)
	}
	if len(items) < 2 || !p.mergeSafe(method, triples...) {
		return nil
	}
	return &PlanNode{Kind: PlanAccess, Items: items, Method: method, Merge: OrMerge, Filters: or.Filters}
}
