package translator

import (
	"fmt"
	"strings"

	"db2rdf/internal/sparql"
)

// PositionalAccess emits the generic one-triple access over a binary
// or ternary relation: equality conditions for every constant or
// previously bound position, projections for every newly bound
// variable. It is shared by the baseline backends (TRIPLES and COL_*
// relations) and by property-path closure tables. Pass "" for predCol
// when the relation is predicate-specific.
func PositionalAccess(g *Gen, t *sparql.TriplePattern, in Ctx, from, subjCol, predCol, objCol string) (Ctx, error) {
	outVars := map[string]bool{}
	for v := range in.Vars {
		outVars[v] = true
	}
	sel := g.Carry(in, "P")
	var conds []string
	local := map[string]string{}
	handle := func(tv sparql.TermOrVar, col string) {
		if col == "" {
			return
		}
		switch {
		case !tv.IsVar:
			conds = append(conds, fmt.Sprintf("%s = %d", col, g.IDOf(tv.Term)))
		case in.Vars[tv.Var]:
			conds = append(conds, fmt.Sprintf("%s = P.%s", col, g.ColFor(tv.Var)))
		case local[tv.Var] != "":
			conds = append(conds, fmt.Sprintf("%s = %s", col, local[tv.Var]))
		default:
			local[tv.Var] = col
			sel = append(sel, fmt.Sprintf("%s AS %s", col, g.ColFor(tv.Var)))
			outVars[tv.Var] = true
		}
	}
	handle(t.S, subjCol)
	handle(t.P, predCol)
	handle(t.O, objCol)
	if in.Cte != "" {
		from = fmt.Sprintf("%s AS P, %s", in.Cte, from)
	}
	if len(sel) == 0 {
		sel = []string{"1 AS one"}
	}
	body := fmt.Sprintf("SELECT %s FROM %s", strings.Join(sel, ", "), from)
	if len(conds) > 0 {
		body += " WHERE " + strings.Join(conds, " AND ")
	}
	name := g.Emit(body)
	return Ctx{Cte: name, Vars: outVars}, nil
}
