package translator

import (
	"fmt"
	"strings"

	"db2rdf/internal/rdf"
	"db2rdf/internal/sparql"
)

// filterSQL translates a SPARQL FILTER expression into a SQL boolean
// expression. varExpr maps bound variables to SQL expressions holding
// their dictionary ids; unbound variables become NULL (SPARQL type
// errors collapse to false at the filter, matching our engine's
// three-valued WHERE).
func (g *Gen) filterSQL(e sparql.Expr, varExpr map[string]string) (string, error) {
	switch x := e.(type) {
	case *sparql.EBin:
		switch x.Op {
		case "&&":
			l, err := g.filterSQL(x.L, varExpr)
			if err != nil {
				return "", err
			}
			r, err := g.filterSQL(x.R, varExpr)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("(%s AND %s)", l, r), nil
		case "||":
			l, err := g.filterSQL(x.L, varExpr)
			if err != nil {
				return "", err
			}
			r, err := g.filterSQL(x.R, varExpr)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("(%s OR %s)", l, r), nil
		case "=", "!=":
			return g.equalitySQL(x, varExpr)
		case "<", "<=", ">", ">=":
			return g.comparisonSQL(x, varExpr)
		}
		return "", fmt.Errorf("translator: unsupported filter operator %q", x.Op)
	case *sparql.EUn:
		if x.Op == "!" {
			inner, err := g.filterSQL(x.X, varExpr)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("NOT (%s)", inner), nil
		}
		return "", fmt.Errorf("translator: unary %q not boolean", x.Op)
	case *sparql.ECall:
		return g.callSQL(x, varExpr)
	case *sparql.EVar:
		// Effective boolean value of a bare variable: bound and not
		// the false literal.
		c, ok := varExpr[x.Name]
		if !ok {
			return "FALSE", nil
		}
		return fmt.Sprintf("(%s IS NOT NULL AND dstr(%s) != 'false')", c, c), nil
	}
	return "", fmt.Errorf("translator: unsupported filter expression %T", e)
}

// equalitySQL handles = and != with three strategies: id equality for
// plain term operands, numeric comparison when a numeric literal or
// arithmetic is involved, and string comparison when a
// string-returning builtin is involved.
func (g *Gen) equalitySQL(x *sparql.EBin, varExpr map[string]string) (string, error) {
	op := x.Op
	if stringish(x.L) || stringish(x.R) {
		l, err := g.strSQL(x.L, varExpr)
		if err != nil {
			return "", err
		}
		r, err := g.strSQL(x.R, varExpr)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %s %s", l, op, r), nil
	}
	if numericish(x.L) || numericish(x.R) {
		l, err := g.numSQL(x.L, varExpr)
		if err != nil {
			return "", err
		}
		r, err := g.numSQL(x.R, varExpr)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %s %s", l, op, r), nil
	}
	l, err := g.idSQL(x.L, varExpr)
	if err != nil {
		return "", err
	}
	r, err := g.idSQL(x.R, varExpr)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s %s %s", l, op, r), nil
}

// comparisonSQL handles the ordering operators: numeric mode when
// arithmetic or numeric literals are involved, term ordering (dcmp)
// otherwise.
func (g *Gen) comparisonSQL(x *sparql.EBin, varExpr map[string]string) (string, error) {
	if stringish(x.L) || stringish(x.R) {
		l, err := g.strSQL(x.L, varExpr)
		if err != nil {
			return "", err
		}
		r, err := g.strSQL(x.R, varExpr)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %s %s", l, x.Op, r), nil
	}
	if numericish(x.L) || numericish(x.R) {
		l, err := g.numSQL(x.L, varExpr)
		if err != nil {
			return "", err
		}
		r, err := g.numSQL(x.R, varExpr)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %s %s", l, x.Op, r), nil
	}
	l, err := g.idSQL(x.L, varExpr)
	if err != nil {
		return "", err
	}
	r, err := g.idSQL(x.R, varExpr)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("dcmp(%s, %s) %s 0", l, r, x.Op), nil
}

func (g *Gen) callSQL(x *sparql.ECall, varExpr map[string]string) (string, error) {
	switch x.Name {
	case "bound":
		if len(x.Args) != 1 {
			return "", fmt.Errorf("translator: bound() wants 1 argument")
		}
		v, ok := x.Args[0].(*sparql.EVar)
		if !ok {
			return "", fmt.Errorf("translator: bound() wants a variable")
		}
		c, bound := varExpr[v.Name]
		if !bound {
			return "FALSE", nil
		}
		return fmt.Sprintf("%s IS NOT NULL", c), nil
	case "regex":
		if len(x.Args) < 2 || len(x.Args) > 3 {
			return "", fmt.Errorf("translator: regex() wants 2 or 3 arguments")
		}
		s, err := g.strSQL(x.Args[0], varExpr)
		if err != nil {
			return "", err
		}
		pat, err := g.strSQL(x.Args[1], varExpr)
		if err != nil {
			return "", err
		}
		if len(x.Args) == 3 {
			flags, err := g.strSQL(x.Args[2], varExpr)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("regexmatch(%s, %s, %s)", s, pat, flags), nil
		}
		return fmt.Sprintf("regexmatch(%s, %s)", s, pat), nil
	case "isiri", "isuri", "isliteral", "isblank":
		if len(x.Args) != 1 {
			return "", fmt.Errorf("translator: %s() wants 1 argument", x.Name)
		}
		id, err := g.idSQL(x.Args[0], varExpr)
		if err != nil {
			return "", err
		}
		fn := map[string]string{"isiri": "disiri", "isuri": "disiri", "isliteral": "disliteral", "isblank": "disblank"}[x.Name]
		return fmt.Sprintf("%s(%s)", fn, id), nil
	case "sameterm":
		if len(x.Args) != 2 {
			return "", fmt.Errorf("translator: sameterm() wants 2 arguments")
		}
		l, err := g.idSQL(x.Args[0], varExpr)
		if err != nil {
			return "", err
		}
		r, err := g.idSQL(x.Args[1], varExpr)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s = %s", l, r), nil
	case "langmatches":
		if len(x.Args) != 2 {
			return "", fmt.Errorf("translator: langmatches() wants 2 arguments")
		}
		l, err := g.strSQL(x.Args[0], varExpr)
		if err != nil {
			return "", err
		}
		lit, ok := x.Args[1].(*sparql.ELit)
		if !ok {
			return "", fmt.Errorf("translator: langmatches() wants a literal range")
		}
		if lit.Term.Value == "*" {
			return fmt.Sprintf("%s != ''", l), nil
		}
		return fmt.Sprintf("lower(%s) = '%s'", l, escapeSQL(strings.ToLower(lit.Term.Value))), nil
	}
	return "", fmt.Errorf("translator: unsupported builtin %q", x.Name)
}

// idSQL renders the dictionary id of a term-valued operand.
func (g *Gen) idSQL(e sparql.Expr, varExpr map[string]string) (string, error) {
	switch x := e.(type) {
	case *sparql.EVar:
		c, ok := varExpr[x.Name]
		if !ok {
			return "NULL", nil
		}
		return c, nil
	case *sparql.ELit:
		// Encode (not Lookup): dcmp/disiri must be able to decode the
		// constant even when it does not occur in the data.
		return fmt.Sprintf("%d", g.backend.EncodeID(x.Term)), nil
	}
	return "", fmt.Errorf("translator: operand %T is not term-valued", e)
}

// strSQL renders the string value of an operand.
func (g *Gen) strSQL(e sparql.Expr, varExpr map[string]string) (string, error) {
	switch x := e.(type) {
	case *sparql.EVar:
		c, ok := varExpr[x.Name]
		if !ok {
			return "NULL", nil
		}
		return fmt.Sprintf("dstr(%s)", c), nil
	case *sparql.ELit:
		return "'" + escapeSQL(x.Term.Value) + "'", nil
	case *sparql.ECall:
		switch x.Name {
		case "str":
			id, err := g.idSQL(x.Args[0], varExpr)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("dstr(%s)", id), nil
		case "lang":
			id, err := g.idSQL(x.Args[0], varExpr)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("dlang(%s)", id), nil
		case "datatype":
			id, err := g.idSQL(x.Args[0], varExpr)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("ddt(%s)", id), nil
		}
	}
	return "", fmt.Errorf("translator: operand %T is not string-valued", e)
}

// numSQL renders the numeric value of an operand, including filter
// arithmetic.
func (g *Gen) numSQL(e sparql.Expr, varExpr map[string]string) (string, error) {
	switch x := e.(type) {
	case *sparql.EVar:
		c, ok := varExpr[x.Name]
		if !ok {
			return "NULL", nil
		}
		return fmt.Sprintf("dnum(%s)", c), nil
	case *sparql.ELit:
		if _, ok := x.Term.Float(); ok {
			return x.Term.Value, nil
		}
		return "", fmt.Errorf("translator: literal %s is not numeric", x.Term)
	case *sparql.EBin:
		switch x.Op {
		case "+", "-", "*", "/":
			l, err := g.numSQL(x.L, varExpr)
			if err != nil {
				return "", err
			}
			r, err := g.numSQL(x.R, varExpr)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("(%s %s %s)", l, x.Op, r), nil
		}
	case *sparql.EUn:
		if x.Op == "-" {
			inner, err := g.numSQL(x.X, varExpr)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("(0 - %s)", inner), nil
		}
	}
	return "", fmt.Errorf("translator: operand %T is not numeric", e)
}

// stringish reports whether the operand forces string-mode comparison.
func stringish(e sparql.Expr) bool {
	c, ok := e.(*sparql.ECall)
	if !ok {
		return false
	}
	switch c.Name {
	case "str", "lang", "datatype":
		return true
	}
	return false
}

// numericish reports whether the operand forces numeric-mode
// comparison: arithmetic, numeric negation, or a numeric literal.
func numericish(e sparql.Expr) bool {
	switch x := e.(type) {
	case *sparql.EBin:
		switch x.Op {
		case "+", "-", "*", "/":
			return true
		}
	case *sparql.EUn:
		return x.Op == "-"
	case *sparql.ELit:
		if x.Term.Kind != rdf.Literal {
			return false
		}
		switch x.Term.Datatype {
		case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
			return true
		}
	}
	return false
}

// escapeSQL doubles single quotes for SQL string literals.
func escapeSQL(s string) string { return strings.ReplaceAll(s, "'", "''") }
