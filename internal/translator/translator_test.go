package translator

import (
	"strings"
	"testing"

	"db2rdf/internal/optimizer"
	"db2rdf/internal/rdf"
	"db2rdf/internal/sparql"
	"db2rdf/internal/store"
)

// fig1Store loads the paper's Figure 1(a) data.
func fig1Store(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(nil, store.Options{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	iri := rdf.NewIRI
	lit := rdf.NewLiteral
	mk := func(s, p string, o rdf.Term) rdf.Triple {
		return rdf.NewTriple(iri(s), iri(p), o)
	}
	triples := []rdf.Triple{
		mk("Charles_Flint", "born", lit("1850")),
		mk("Charles_Flint", "died", lit("1934")),
		mk("Charles_Flint", "founder", iri("IBM")),
		mk("Larry_Page", "born", lit("1973")),
		mk("Larry_Page", "founder", iri("Google")),
		mk("Larry_Page", "board", iri("Google")),
		mk("Larry_Page", "home", lit("Palo Alto")),
		mk("Google", "industry", lit("Software")),
		mk("Google", "industry", lit("Internet")),
		mk("Google", "employees", lit("54,604")),
		mk("Google", "revenue", lit("50B")),
		mk("Android", "developer", iri("Google")),
		mk("IBM", "industry", lit("Software")),
	}
	if err := st.LoadTriples(triples); err != nil {
		t.Fatal(err)
	}
	return st
}

func planFor(t *testing.T, st *store.Store, q string) (*sparql.Query, *PlanNode, *DB2RDF) {
	t.Helper()
	parsed, err := sparql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	exec, _, err := optimizer.Optimize(parsed, st.StatsView())
	if err != nil {
		t.Fatal(err)
	}
	backend := NewDB2RDF(st)
	plan := NewPlanner(backend).BuildPlan(exec)
	return parsed, plan, backend
}

const fig6 = `
SELECT ?x ?y ?z WHERE {
  ?x <home> "Palo Alto" .
  { ?x <founder> ?y } UNION { ?x <board> ?y }
  { ?y <industry> "Software" .
    ?z <developer> ?y .
    ?y <revenue> ?n .
    OPTIONAL { ?y <employees> ?m } }
}`

func TestFig11PlanMerges(t *testing.T) {
	st := fig1Store(t)
	_, plan, _ := planFor(t, st, fig6)
	s := plan.String()
	if !strings.Contains(s, "{t2,t3}") {
		t.Errorf("OR merge missing: %s", s)
	}
	if !strings.Contains(s, "{t6,t7?}") {
		t.Errorf("OPT merge missing: %s", s)
	}
	if plan.MergeCount() != 2 {
		t.Errorf("MergeCount = %d, want 2 (Fig. 11)", plan.MergeCount())
	}
}

func TestStarMergesIntoOneAccess(t *testing.T) {
	st := fig1Store(t)
	_, plan, _ := planFor(t, st, `SELECT ?x WHERE { ?x <born> ?b . ?x <died> ?d . ?x <founder> ?f }`)
	if plan.Kind != PlanAccess || len(plan.Items) != 3 {
		t.Fatalf("3-star must merge into one access: %s", plan)
	}
	if plan.Merge != AndMerge {
		t.Fatalf("merge kind = %v", plan.Merge)
	}
}

func TestNoMergeAcrossDifferentEntities(t *testing.T) {
	st := fig1Store(t)
	// Two different subjects joined through a shared object variable:
	// nothing merges.
	_, plan, _ := planFor(t, st, `SELECT ?x ?y WHERE { ?x <born> ?b . ?y <died> ?b }`)
	if plan.MergeCount() != 0 {
		t.Fatalf("different-entity triples must not merge: %s", plan)
	}
	// t1 and t3 share ?x and merge; t2 (?y) stays separate.
	_, plan, _ = planFor(t, st, `SELECT ?x ?y WHERE { ?x <born> ?b . ?y <died> ?d . ?x <founder> ?y }`)
	if plan.MergeCount() != 1 {
		t.Fatalf("want exactly the {t1,t3} merge: %s", plan)
	}
}

func TestSpillBlocksMerge(t *testing.T) {
	// A store with K=2 spills; predicates involved in spills must not
	// merge (§3.2.1).
	st, err := store.New(nil, store.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	iri := rdf.NewIRI
	for i, p := range []string{"p1", "p2", "p3", "p4", "p5"} {
		tr := rdf.NewTriple(iri("e"), iri(p), rdf.NewInteger(int64(i)))
		if err := st.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if st.SpillCount(false) == 0 {
		t.Skip("no spills at this layout")
	}
	parsed, err := sparql.Parse(`SELECT ?x WHERE { ?x <p1> ?a . ?x <p2> ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, _, err := optimizer.Optimize(parsed, st.StatsView())
	if err != nil {
		t.Fatal(err)
	}
	backend := NewDB2RDF(st)
	plan := NewPlanner(backend).BuildPlan(exec)
	if plan.MergeCount() != 0 {
		t.Fatalf("spilled predicates must not merge: %s", plan)
	}
}

func TestSetMergingOff(t *testing.T) {
	st := fig1Store(t)
	parsed, err := sparql.Parse(`SELECT ?x WHERE { ?x <born> ?b . ?x <died> ?d }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, _, err := optimizer.Optimize(parsed, st.StatsView())
	if err != nil {
		t.Fatal(err)
	}
	backend := NewDB2RDF(st)
	p := NewPlanner(backend)
	p.SetMerging(false)
	plan := p.BuildPlan(exec)
	if plan.MergeCount() != 0 {
		t.Fatalf("merging disabled but got merges: %s", plan)
	}
}

func TestGeneratedSQLParses(t *testing.T) {
	st := fig1Store(t)
	queries := []string{
		fig6,
		`SELECT ?x WHERE { ?x <born> ?b }`,
		`SELECT ?p ?o WHERE { <Google> ?p ?o }`,
		`SELECT ?x WHERE { ?x <industry> "Software" . ?x <employees> ?e } ORDER BY ?e LIMIT 5`,
		`ASK { <IBM> <industry> "Software" }`,
		`SELECT DISTINCT ?x WHERE { { ?x <founder> ?y } UNION { ?x <board> ?y } }`,
		`SELECT ?x ?d WHERE { ?x <born> ?b OPTIONAL { ?x <died> ?d } FILTER (bound(?d) || ?b < 1900) }`,
	}
	for _, q := range queries {
		parsed, plan, backend := planFor(t, st, q)
		res, err := Translate(parsed, plan, backend)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.SQL == "" {
			t.Fatalf("%s: empty SQL", q)
		}
		// The generated SQL must execute on the engine.
		if _, err := st.DB.Query(res.SQL); err != nil {
			t.Fatalf("%s: generated SQL failed: %v\n%s", q, err, res.SQL)
		}
	}
}

func TestSQLUsesSecondaryForMultiValued(t *testing.T) {
	st := fig1Store(t)
	parsed, plan, backend := planFor(t, st, `SELECT ?i WHERE { <Google> <industry> ?i }`)
	res, err := Translate(parsed, plan, backend)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.SQL, "DS") || !strings.Contains(res.SQL, "COALESCE") {
		t.Fatalf("multi-valued predicate must join DS with COALESCE:\n%s", res.SQL)
	}
}

func TestSQLSkipsSecondaryForSingleValued(t *testing.T) {
	st := fig1Store(t)
	parsed, plan, backend := planFor(t, st, `SELECT ?b WHERE { <Charles_Flint> <born> ?b }`)
	res, err := Translate(parsed, plan, backend)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.SQL, " DS ") {
		t.Fatalf("single-valued predicate must not join DS:\n%s", res.SQL)
	}
}

func TestUnknownConstantGetsMinusOne(t *testing.T) {
	st := fig1Store(t)
	parsed, plan, backend := planFor(t, st, `SELECT ?x WHERE { ?x <founder> <Martian> }`)
	res, err := Translate(parsed, plan, backend)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.SQL, "= -1") {
		t.Fatalf("absent constant must translate to -1:\n%s", res.SQL)
	}
}

func TestHiddenOrderColumns(t *testing.T) {
	st := fig1Store(t)
	parsed, plan, backend := planFor(t, st, `SELECT ?x WHERE { ?x <born> ?b } ORDER BY ?b`)
	res, err := Translate(parsed, plan, backend)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hidden != 1 || len(res.Columns) != 2 {
		t.Fatalf("hidden = %d, columns = %v", res.Hidden, res.Columns)
	}
}

func TestFilterTranslationModes(t *testing.T) {
	st := fig1Store(t)
	cases := []struct {
		filter string
		expect string
	}{
		{`?b < 1900`, "dnum("},                  // numeric literal comparison
		{`?b = ?d`, "="},                        // id equality
		{`regex(?b, "18")`, "regexmatch(dstr("}, // regex over string value
		{`str(?b) = "1850"`, "dstr("},           // string builtin
		{`lang(?b) = "en"`, "dlang("},           // lang builtin
		{`isIRI(?x)`, "disiri("},                // type test
		{`!bound(?d)`, "IS NOT NULL"},           // bound
		{`?b + 10 < 1900`, "(dnum("},            // arithmetic
	}
	for _, c := range cases {
		q := `SELECT ?x WHERE { ?x <born> ?b OPTIONAL { ?x <died> ?d } FILTER (` + c.filter + `) }`
		parsed, plan, backend := planFor(t, st, q)
		res, err := Translate(parsed, plan, backend)
		if err != nil {
			t.Fatalf("filter %q: %v", c.filter, err)
		}
		if !strings.Contains(res.SQL, c.expect) {
			t.Errorf("filter %q: SQL missing %q:\n%s", c.filter, c.expect, res.SQL)
		}
		if _, err := st.DB.Query(res.SQL); err != nil {
			t.Errorf("filter %q: SQL failed: %v", c.filter, err)
		}
	}
}

func TestUnsupportedFilterErrors(t *testing.T) {
	st := fig1Store(t)
	parsed, err := sparql.Parse(`SELECT ?x WHERE { ?x <born> ?b . FILTER (nosuchfn(?b)) }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, _, err := optimizer.Optimize(parsed, st.StatsView())
	if err != nil {
		t.Fatal(err)
	}
	backend := NewDB2RDF(st)
	plan := NewPlanner(backend).BuildPlan(exec)
	if _, err := Translate(parsed, plan, backend); err == nil {
		t.Fatal("unknown builtin must fail translation")
	}
}

func TestVarPredicateUnionOverColumns(t *testing.T) {
	st := fig1Store(t)
	parsed, plan, backend := planFor(t, st, `SELECT ?p ?o WHERE { <Charles_Flint> ?p ?o }`)
	res, err := Translate(parsed, plan, backend)
	if err != nil {
		t.Fatal(err)
	}
	// One UNION arm per predicate column (K=16).
	if got := strings.Count(res.SQL, "UNION ALL"); got != 15 {
		t.Fatalf("want 15 UNION ALL separators for K=16, got %d", got)
	}
}

func TestPlanStringShapes(t *testing.T) {
	st := fig1Store(t)
	_, plan, _ := planFor(t, st, fig6)
	s := plan.String()
	for _, want := range []string{"AND[", ":or)", ":opt)"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan %q missing %q", s, want)
		}
	}
}

func TestMergeKindStrings(t *testing.T) {
	for k, want := range map[MergeKind]string{NoMerge: "none", AndMerge: "and", OrMerge: "or", OptMerge: "opt"} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
}
