package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"db2rdf/internal/gen"
)

func fastOpts() RunOptions { return RunOptions{Reps: 1, Timeout: 30 * time.Second} }

func TestBuildAllSystems(t *testing.T) {
	ds := gen.Micro(1500)
	for _, name := range SystemNames {
		sys, err := BuildSystem(name, ds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := sys.Run(ds.Queries[0].SPARQL)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rows < 0 {
			t.Fatalf("%s: negative rows", name)
		}
	}
	if _, err := BuildSystem("nosuch", ds); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestSystemsAgreeOnMicro(t *testing.T) {
	ds := gen.Micro(1500)
	refs, err := ReferenceCounts(ds, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SystemNames {
		sys, err := BuildSystem(name, ds)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range ds.Queries {
			m := RunQuery(sys, q, refs[q.Name], fastOpts())
			if m.Outcome != Complete {
				t.Errorf("%s %s: outcome %v (rows %d, want %d)", name, q.Name, m.Outcome, m.Rows, refs[q.Name])
			}
		}
	}
}

func TestRunQueryClassifiesErrors(t *testing.T) {
	ds := gen.Micro(1000)
	sys, err := BuildSystem("db2rdf", ds)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong reference count -> Error.
	m := RunQuery(sys, ds.Queries[0], 999999, fastOpts())
	if m.Outcome != Error {
		t.Fatalf("outcome = %v, want error", m.Outcome)
	}
	// Unparsable query -> Error.
	m = RunQuery(sys, gen.Query{Name: "bad", SPARQL: "NOT SPARQL"}, -1, fastOpts())
	if m.Outcome != Error {
		t.Fatalf("outcome = %v, want error", m.Outcome)
	}
	// Timeout classification.
	slow := System{Name: "slow", Run: func(string) (int, error) {
		time.Sleep(50 * time.Millisecond)
		return 0, nil
	}}
	m = RunQuery(slow, ds.Queries[0], -1, RunOptions{Reps: 1, Timeout: 5 * time.Millisecond})
	if m.Outcome != Timeout {
		t.Fatalf("outcome = %v, want timeout", m.Outcome)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{Complete: "complete", Error: "error", Timeout: "timeout", Unsupported: "unsupported"} {
		if o.String() != want {
			t.Errorf("%v", o)
		}
	}
}

// TestExperimentsRunAtSmallScale executes every experiment end to end
// at tiny scale and sanity-checks the output tables.
func TestExperimentsRunAtSmallScale(t *testing.T) {
	sc := Scales{Micro: 1500, LUBMUnis: 1, SP2B: 1500, DBpedia: 1500, PRBench: 1500, NullsRows: 500}
	opts := fastOpts()
	cases := []struct {
		name string
		run  func(*bytes.Buffer) error
		want []string
	}{
		{"fig3", func(b *bytes.Buffer) error { return ExpFig3(b, sc, opts) }, []string{"Q1", "Q10", "entity(ms)"}},
		{"table3", func(b *bytes.Buffer) error { return ExpTable3(b) }, []string{"graphics", "spill"}},
		{"table4", func(b *bytes.Buffer) error { return ExpTable4(b, sc) }, []string{"SP2Bench", "DBpedia", "DPH cols"}},
		{"spills", func(b *bytes.Buffer) error { return ExpSpills(b, sc) }, []string{"LUBM", "spills(full)"}},
		{"nulls", func(b *bytes.Buffer) error { return ExpNulls(b, sc) }, []string{"95", "bytes"}},
		{"fig16", func(b *bytes.Buffer) error { return ExpFig16(b, sc, opts) }, []string{"LQ1", "LQ14"}},
		{"fig17", func(b *bytes.Buffer) error { return ExpFig17(b, sc, opts) }, []string{"PQ10", "PQ26"}},
		{"fig18", func(b *bytes.Buffer) error { return ExpFig18(b, sc, opts) }, []string{"PQ14", "PQ29"}},
		{"ablation-mapping", func(b *bytes.Buffer) error { return ExpAblationMapping(b, sc) }, []string{"hash-1", "colored"}},
		{"ablation-k", func(b *bytes.Buffer) error { return ExpAblationK(b, sc, opts) }, []string{"K", "spill rows"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.run(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestFig15SmallScale runs the summary experiment (slowest) once.
func TestFig15SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := Scales{Micro: 1000, LUBMUnis: 1, SP2B: 1200, DBpedia: 1200, PRBench: 1200, NullsRows: 500}
	var buf bytes.Buffer
	if err := ExpFig15(&buf, sc, fastOpts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{"LUBM", "PRBench", "db2rdf", "complete"} {
		if !strings.Contains(out, w) {
			t.Errorf("fig15 output missing %q", w)
		}
	}
	// db2rdf must complete every LUBM query (12 of 12, Main Result 1).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "LUBM") && strings.Contains(line, "db2rdf") && !strings.Contains(line, "12") {
			t.Errorf("db2rdf must complete all 12 LUBM queries: %s", line)
		}
	}
}
