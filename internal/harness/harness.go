// Package harness builds the systems-under-test and runs the query
// workloads for every table and figure in the paper's evaluation (§4),
// following the paper's methodology: queries are run warm (the first
// run is discarded), averaged over repetitions, classified as
// complete / error / timeout against an independently computed
// reference answer count, and reported per system.
package harness

import (
	"fmt"
	"runtime"
	"time"

	"db2rdf"
	"db2rdf/internal/baselines"
	"db2rdf/internal/gen"
)

// System is one store configuration under test.
type System struct {
	// Name identifies the configuration, e.g. "db2rdf",
	// "triple-naive".
	Name string
	// Run executes a SPARQL query and returns the solution count.
	Run func(q string) (int, error)
	// ResetPlans drops the system's compiled-plan cache, when it has
	// one (nil otherwise). Used to measure cold-plan latencies.
	ResetPlans func()
}

// SystemNames lists the available configurations and the paper systems
// they stand in for (see DESIGN.md §2 for the substitution argument).
var SystemNames = []string{
	"db2rdf",          // the paper's DB2RDF (entity schema + hybrid optimizer)
	"db2rdf-noopt",    // DB2RDF schema, naive document-order flow (§3.3 comparator)
	"db2rdf-nomerge",  // DB2RDF schema, hybrid flow, star merging off (ablation)
	"triple-hybrid",   // triple-store schema, hybrid flow (Virtuoso/RDF-3X-like)
	"triple-naive",    // triple-store schema, naive flow (Jena-like)
	"vertical-hybrid", // predicate-oriented schema, hybrid flow (C-store-like)
	"vertical-naive",  // predicate-oriented schema, naive flow (Sesame-like)
}

// BuildSystem loads the dataset into the named configuration.
func BuildSystem(name string, ds *gen.Dataset) (System, error) {
	switch name {
	case "db2rdf", "db2rdf-noopt", "db2rdf-nomerge":
		opts := db2rdf.Options{
			DisableHybridOptimizer: name == "db2rdf-noopt",
			DisableMerging:         name == "db2rdf-nomerge",
		}
		s, err := db2rdf.Open(opts)
		if err != nil {
			return System{}, err
		}
		if err := s.LoadTriplesParallel(ds.Triples, runtime.GOMAXPROCS(0)); err != nil {
			return System{}, err
		}
		return System{Name: name, ResetPlans: s.ResetPlanCache, Run: func(q string) (int, error) {
			r, err := s.Query(q)
			if err != nil {
				return 0, err
			}
			if r.IsAsk {
				return boolCount(r.Ask), nil
			}
			return len(r.Rows), nil
		}}, nil
	case "triple-hybrid", "triple-naive":
		s, err := baselines.NewTripleStore(baselines.TripleOptions{
			IndexSubject: true,
			IndexObject:  true,
			Naive:        name == "triple-naive",
		})
		if err != nil {
			return System{}, err
		}
		if err := s.LoadTriples(ds.Triples); err != nil {
			return System{}, err
		}
		return System{Name: name, Run: baselineRunner(s.Query)}, nil
	case "vertical-hybrid", "vertical-naive":
		s, err := baselines.NewVerticalStore(baselines.VerticalOptions{Naive: name == "vertical-naive"})
		if err != nil {
			return System{}, err
		}
		if err := s.LoadTriples(ds.Triples); err != nil {
			return System{}, err
		}
		return System{Name: name, Run: baselineRunner(s.Query)}, nil
	}
	return System{}, fmt.Errorf("harness: unknown system %q", name)
}

func baselineRunner(query func(string) (*baselines.Results, error)) func(string) (int, error) {
	return func(q string) (int, error) {
		r, err := query(q)
		if err != nil {
			return 0, err
		}
		if r.IsAsk {
			return boolCount(r.Ask), nil
		}
		return len(r.Rows), nil
	}
}

func boolCount(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Outcome classifies one query run (the categories of Figure 15).
type Outcome uint8

const (
	// Complete means the query ran and returned the reference count.
	Complete Outcome = iota
	// Error means the query ran but returned a wrong count, or failed.
	Error
	// Timeout means the query exceeded the deadline.
	Timeout
	// Unsupported means the query did not parse/translate.
	Unsupported
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Complete:
		return "complete"
	case Error:
		return "error"
	case Timeout:
		return "timeout"
	case Unsupported:
		return "unsupported"
	}
	return "?"
}

// Measurement is one query's result on one system.
type Measurement struct {
	Query   string
	System  string
	Rows    int
	Mean    time.Duration
	Outcome Outcome
}

// RunOptions tunes workload execution.
type RunOptions struct {
	// Reps is the number of timed repetitions after the discarded
	// warm-up run (the paper discards 1 of 8; default 3).
	Reps int
	// Timeout bounds one query execution (the paper uses 10 minutes;
	// default 10s at laptop scale).
	Timeout time.Duration
	// ColdPlans drops the system's compiled-plan cache before every
	// run (including the warm-up), so each measurement pays the full
	// compile pipeline. The default measures warm (cached) plans,
	// matching the paper's discard-first-run methodology.
	ColdPlans bool
}

func (o *RunOptions) fill() {
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
}

// timedRun executes fn under a deadline. The goroutine is abandoned on
// timeout (the engine has no cancellation), so timeouts should be rare
// at the scales the harness uses.
func timedRun(fn func() (int, error), timeout time.Duration) (rows int, dur time.Duration, err error, timedOut bool) {
	type res struct {
		rows int
		err  error
		dur  time.Duration
	}
	ch := make(chan res, 1)
	start := time.Now()
	go func() {
		n, err := fn()
		ch <- res{rows: n, err: err, dur: time.Since(start)}
	}()
	select {
	case r := <-ch:
		return r.rows, r.dur, r.err, false
	case <-time.After(timeout):
		return 0, timeout, nil, true
	}
}

// RunQuery measures one query on one system against a reference count
// (pass a negative reference to skip validation).
func RunQuery(sys System, q gen.Query, refRows int, opts RunOptions) Measurement {
	opts.fill()
	m := Measurement{Query: q.Name, System: sys.Name}
	resetPlans := func() {
		if opts.ColdPlans && sys.ResetPlans != nil {
			sys.ResetPlans()
		}
	}
	// Warm-up (also the correctness check).
	resetPlans()
	rows, _, err, timedOut := timedRun(func() (int, error) { return sys.Run(q.SPARQL) }, opts.Timeout)
	switch {
	case timedOut:
		m.Outcome = Timeout
		m.Mean = opts.Timeout
		return m
	case err != nil:
		m.Outcome = Error
		return m
	}
	m.Rows = rows
	if refRows >= 0 && rows != refRows {
		m.Outcome = Error
		return m
	}
	var total time.Duration
	for i := 0; i < opts.Reps; i++ {
		resetPlans()
		_, dur, err, timedOut := timedRun(func() (int, error) { return sys.Run(q.SPARQL) }, opts.Timeout)
		if timedOut {
			m.Outcome = Timeout
			m.Mean = opts.Timeout
			return m
		}
		if err != nil {
			m.Outcome = Error
			return m
		}
		total += dur
	}
	m.Mean = total / time.Duration(opts.Reps)
	m.Outcome = Complete
	return m
}

// ReferenceCounts computes the reference answer count for every query
// using the triple-store baseline (an independent code path from the
// system under test).
func ReferenceCounts(ds *gen.Dataset, opts RunOptions) (map[string]int, error) {
	opts.fill()
	ref, err := BuildSystem("triple-hybrid", ds)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(ds.Queries))
	for _, q := range ds.Queries {
		rows, _, err, timedOut := timedRun(func() (int, error) { return ref.Run(q.SPARQL) }, opts.Timeout)
		if err != nil || timedOut {
			out[q.Name] = -1 // no reference available (e.g. SQ4 by design)
			continue
		}
		out[q.Name] = rows
	}
	return out, nil
}
