package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"db2rdf"
	"db2rdf/internal/baselines"
	"db2rdf/internal/coloring"
	"db2rdf/internal/gen"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/store"
)

// Scales sets the dataset sizes. The paper runs 60-333M triples on a
// DB2 testbed; the defaults here regenerate every figure's *shape* in
// seconds on a laptop.
type Scales struct {
	Micro     int // triples (paper: 1M)
	LUBMUnis  int // universities (paper: ~130 for 100M triples)
	SP2B      int // triples (paper: 100M)
	DBpedia   int // triples (paper: 333M)
	PRBench   int // triples (paper: 60M)
	NullsRows int // rows for the §2.3 NULL experiment (paper: 1M)
}

// DefaultScales returns the standard laptop-scale configuration.
func DefaultScales() Scales {
	return Scales{Micro: 60000, LUBMUnis: 12, SP2B: 40000, DBpedia: 40000, PRBench: 40000, NullsRows: 60000}
}

// SmallScales returns a fast configuration for tests.
func SmallScales() Scales {
	return Scales{Micro: 5000, LUBMUnis: 2, SP2B: 5000, DBpedia: 5000, PRBench: 5000, NullsRows: 5000}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// ExpFig3 reproduces §2.1 Tables 1-2 and Figure 3: the ten
// micro-benchmark star queries across the entity-oriented (DB2RDF),
// triple-store and predicate-oriented schemas. Per the paper, only
// subjects are indexed in all three stores.
func ExpFig3(w io.Writer, sc Scales, opts RunOptions) error {
	ds := gen.Micro(sc.Micro)
	fmt.Fprintf(w, "Figure 3 / Tables 1-2: schema micro-benchmark (%d triples)\n", len(ds.Triples))

	entity, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		return err
	}
	if err := entity.LoadTriples(ds.Triples); err != nil {
		return err
	}
	triple, err := baselines.NewTripleStore(baselines.TripleOptions{IndexSubject: true})
	if err != nil {
		return err
	}
	if err := triple.LoadTriples(ds.Triples); err != nil {
		return err
	}
	vertical, err := baselines.NewVerticalStore(baselines.VerticalOptions{})
	if err != nil {
		return err
	}
	if err := vertical.LoadTriples(ds.Triples); err != nil {
		return err
	}
	systems := []System{
		{Name: "entity-oriented", Run: func(q string) (int, error) {
			r, err := entity.Query(q)
			if err != nil {
				return 0, err
			}
			return len(r.Rows), nil
		}},
		{Name: "triple-store", Run: baselineRunner(triple.Query)},
		{Name: "predicate-oriented", Run: baselineRunner(vertical.Query)},
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\tresults\tentity(ms)\ttriple(ms)\tpredicate(ms)\n")
	for _, q := range ds.Queries {
		var cells [3]string
		results := -1
		for i, sys := range systems {
			m := RunQuery(sys, q, -1, opts)
			if m.Outcome != Complete {
				cells[i] = m.Outcome.String()
				continue
			}
			cells[i] = ms(m.Mean)
			results = m.Rows
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", q.Name, results, cells[0], cells[1], cells[2])
	}
	return tw.Flush()
}

// colorReport summarizes coloring one dataset (one Table 4 row).
type colorReport struct {
	name     string
	triples  int
	preds    int
	dphCols  int
	dphCover float64
	rphCols  int
	rphCover float64
}

func colorDataset(name string, triples []rdf.Triple, budget int) colorReport {
	subjPreds := map[string][]string{}
	objPreds := map[string][]string{}
	predSet := map[string]bool{}
	for _, t := range triples {
		subjPreds[t.S.Key()] = append(subjPreds[t.S.Key()], t.P.Value)
		objPreds[t.O.Key()] = append(objPreds[t.O.Key()], t.P.Value)
		predSet[t.P.Value] = true
	}
	dg := coloring.NewInterference()
	for _, ps := range subjPreds {
		dg.AddEntity(ps)
	}
	rg := coloring.NewInterference()
	for _, ps := range objPreds {
		rg.AddEntity(ps)
	}
	dc := coloring.Greedy(dg, budget)
	rc := coloring.Greedy(rg, budget)
	return colorReport{
		name:     name,
		triples:  len(triples),
		preds:    len(predSet),
		dphCols:  dc.NumColors,
		dphCover: dc.Coverage(dg) * 100,
		rphCols:  rc.NumColors,
		rphCover: rc.Coverage(rg) * 100,
	}
}

// ExpTable4 reproduces Table 4: graph coloring results for the four
// datasets — columns required in DPH/RPH and the percentage of the
// data covered by the coloring.
func ExpTable4(w io.Writer, sc Scales) error {
	fmt.Fprintln(w, "Table 4: graph coloring results")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "dataset\ttriples\tpredicates\tDPH cols\tDPH cover%%\tRPH cols\tRPH cover%%\n")
	budget := 80
	for _, d := range []struct {
		name    string
		triples []rdf.Triple
	}{
		{"SP2Bench", gen.SP2B(sc.SP2B).Triples},
		{"PRBench", gen.PRBench(sc.PRBench).Triples},
		{"LUBM", gen.LUBM(sc.LUBMUnis).Triples},
		{"DBpedia", gen.DBpedia(sc.DBpedia).Triples},
	} {
		r := colorDataset(d.name, d.triples, budget)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\t%d\t%.1f\n",
			r.name, r.triples, r.preds, r.dphCols, r.dphCover, r.rphCols, r.rphCover)
	}
	return tw.Flush()
}

// ExpSpills reproduces the §2.3 spill study: spills when coloring the
// full dataset versus coloring only a 10%% sample and loading the rest
// through the colored mapping.
func ExpSpills(w io.Writer, sc Scales) error {
	fmt.Fprintln(w, "§2.3: spills under full vs 10% sample coloring (budget 80, DPH side)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "dataset\ttriples\tspills(full)\tspills(10%% sample)\n")
	for _, d := range []struct {
		name    string
		triples []rdf.Triple
	}{
		{"SP2Bench", gen.SP2B(sc.SP2B).Triples},
		{"LUBM", gen.LUBM(sc.LUBMUnis).Triples},
		{"DBpedia", gen.DBpedia(sc.DBpedia).Triples},
	} {
		full, err := spillsUnderColoring(d.triples, d.triples)
		if err != nil {
			return err
		}
		sample := d.triples[:len(d.triples)/10]
		partial, err := spillsUnderColoring(d.triples, sample)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", d.name, len(d.triples), full, partial)
	}
	return tw.Flush()
}

func spillsUnderColoring(all, sample []rdf.Triple) (int, error) {
	direct, reverse, _, _ := store.BuildMappings(sample, 80, 80)
	st, err := store.New(nil, store.Options{K: 80, KReverse: 80, Mapping: direct, ReverseMapping: reverse})
	if err != nil {
		return 0, err
	}
	if err := st.LoadTriples(all); err != nil {
		return 0, err
	}
	return st.SpillCount(false), nil
}

// ExpNulls reproduces the §2.3 NULL experiment: a 5-predicate uniform
// dataset stored in tables widened with 5, 45 and 95 all-NULL columns;
// storage grows by ~10%% at 20x width while fast-query times degrade
// noticeably.
func ExpNulls(w io.Writer, sc Scales) error {
	rows := sc.NullsRows
	fmt.Fprintf(w, "§2.3: NULL columns, %d rows with 5 populated predicate columns\n", rows)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "extra null cols\ttotal cols\tbytes\tpoint query(ms)\tscan query(ms)\n")
	for _, extra := range []int{0, 5, 45, 95} {
		db := rel.NewDB()
		schema := rel.Schema{{Name: "entry", Type: rel.TInt}}
		total := 5 + extra
		for i := 0; i < total; i++ {
			schema = append(schema, rel.Column{Name: fmt.Sprintf("pred%d", i), Type: rel.TInt})
			schema = append(schema, rel.Column{Name: fmt.Sprintf("val%d", i), Type: rel.TInt})
		}
		t, err := db.CreateTable("DPH", schema)
		if err != nil {
			return err
		}
		if err := t.CreateIndex("entry"); err != nil {
			return err
		}
		for i := 0; i < rows; i++ {
			row := make(rel.Row, 1+2*total)
			row[0] = rel.Int(int64(i))
			for c := 0; c < 5; c++ {
				row[1+2*c] = rel.Int(int64(c + 1))
				row[1+2*c+1] = rel.Int(int64(i*5 + c))
			}
			if err := t.Insert(row); err != nil {
				return err
			}
		}
		point := fmt.Sprintf("SELECT val0 FROM DPH WHERE entry = %d", rows/2)
		scan := "SELECT entry FROM DPH WHERE val3 = 17"
		pointMS := timeQuery(db, point, 20)
		scanMS := timeQuery(db, scan, 3)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%s\n", extra, total, t.EstimateBytes(), ms(pointMS), ms(scanMS))
	}
	return tw.Flush()
}

func timeQuery(db *rel.DB, q string, reps int) time.Duration {
	if _, err := db.Query(q); err != nil {
		return -1
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		_, _ = db.Query(q)
	}
	return time.Since(start) / time.Duration(reps)
}

// ExpFig14 reproduces §3.3 / Figure 14: the same query evaluated with
// the hybrid optimizer's flow versus the alternative (sub-optimal)
// flow direction, on the micro data and on PRBench PQ1.
func ExpFig14(w io.Writer, sc Scales, opts RunOptions) error {
	// Sub-optimal flows are orders of magnitude slower by design (the
	// paper's PQ1 went from 4ms to 22.66s); give them room to finish
	// so the table reports true times rather than the timeout.
	if opts.Timeout < 120*time.Second {
		opts.Timeout = 120 * time.Second
	}
	if opts.Reps == 0 || opts.Reps > 2 {
		opts.Reps = 1
	}
	fmt.Fprintln(w, "Figure 14 / §3.3: optimized vs sub-optimal flow")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\toptimized(ms)\tsub-optimal(ms)\tspeedup\n")
	run := func(name string, ds *gen.Dataset, q gen.Query) error {
		hybrid, err := BuildSystem("db2rdf", ds)
		if err != nil {
			return err
		}
		naive, err := BuildSystem("db2rdf-noopt", ds)
		if err != nil {
			return err
		}
		a := RunQuery(hybrid, q, -1, opts)
		b := RunQuery(naive, q, -1, opts)
		speed := float64(b.Mean) / float64(a.Mean)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1fx\n", name, ms(a.Mean), ms(b.Mean), speed)
		return nil
	}
	flow := gen.MicroFlowData(sc.Micro)
	if err := run("FQ1 (micro)", flow, flow.Queries[0]); err != nil {
		return err
	}
	pr := gen.PRBench(sc.PRBench)
	for _, name := range []string{"PQ5", "PQ27"} {
		for _, q := range pr.Queries {
			if q.Name == name {
				if err := run(name+" (PRBench)", pr, q); err != nil {
					return err
				}
			}
		}
	}
	return tw.Flush()
}

// fig15Systems maps our configurations to the paper's comparators.
var fig15Systems = []struct{ name, standsFor string }{
	{"db2rdf", "DB2RDF"},
	{"triple-naive", "Jena-like"},
	{"triple-hybrid", "Virtuoso/RDF-3X-like"},
	{"vertical-naive", "Sesame-like"},
	{"vertical-hybrid", "C-store-like"},
}

// ExpFig15 reproduces Figure 15: the summary table — queries
// complete / timeout / error and mean evaluation time per system per
// dataset.
func ExpFig15(w io.Writer, sc Scales, opts RunOptions) error {
	// This experiment materializes every dataset in five schema
	// configurations plus a reference store; cap the per-dataset size
	// so the whole sweep stays within laptop memory.
	if sc.LUBMUnis > 6 {
		sc.LUBMUnis = 6
	}
	capTo := func(v *int, max int) {
		if *v > max {
			*v = max
		}
	}
	capTo(&sc.SP2B, 15000)
	capTo(&sc.DBpedia, 15000)
	capTo(&sc.PRBench, 15000)
	fmt.Fprintln(w, "Figure 15: summary results for all systems and datasets")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "dataset\tsystem\t(stands for)\tcomplete\ttimeout\terror\tmean(ms)\n")
	for _, d := range []struct {
		name string
		ds   *gen.Dataset
	}{
		{"LUBM", gen.LUBM(sc.LUBMUnis)},
		{"SP2Bench", gen.SP2B(sc.SP2B)},
		{"DBpedia", gen.DBpedia(sc.DBpedia)},
		{"PRBench", gen.PRBench(sc.PRBench)},
	} {
		refs, err := ReferenceCounts(d.ds, opts)
		if err != nil {
			return err
		}
		for _, sysDef := range fig15Systems {
			sys, err := BuildSystem(sysDef.name, d.ds)
			if err != nil {
				return err
			}
			var complete, timeout, errs int
			var total time.Duration
			var timed int
			for _, q := range d.ds.Queries {
				m := RunQuery(sys, q, refs[q.Name], opts)
				switch m.Outcome {
				case Complete:
					complete++
					total += m.Mean
					timed++
				case Timeout:
					timeout++
					total += m.Mean
					timed++
				default:
					errs++
				}
			}
			mean := time.Duration(0)
			if timed > 0 {
				mean = total / time.Duration(timed)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%s\n",
				d.name, sysDef.name, sysDef.standsFor, complete, timeout, errs, ms(mean))
		}
	}
	return tw.Flush()
}

// perQueryTable renders one Figure 16/17/18-style table: per-query
// times for DB2RDF and the comparators.
func perQueryTable(w io.Writer, title string, ds *gen.Dataset, queryNames []string, opts RunOptions) error {
	fmt.Fprintln(w, title)
	sysNames := []string{"db2rdf", "triple-naive", "triple-hybrid", "vertical-hybrid"}
	systems := make([]System, len(sysNames))
	for i, n := range sysNames {
		s, err := BuildSystem(n, ds)
		if err != nil {
			return err
		}
		systems[i] = s
	}
	want := map[string]bool{}
	for _, n := range queryNames {
		want[n] = true
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\trows\tdb2rdf(ms)\ttriple-naive(ms)\ttriple-hybrid(ms)\tvertical(ms)\n")
	for _, q := range ds.Queries {
		if len(want) > 0 && !want[q.Name] {
			continue
		}
		cells := make([]string, len(systems))
		rows := -1
		for i, sys := range systems {
			m := RunQuery(sys, q, -1, opts)
			if m.Outcome != Complete {
				cells[i] = m.Outcome.String()
				continue
			}
			cells[i] = ms(m.Mean)
			rows = m.Rows
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n", q.Name, rows, cells[0], cells[1], cells[2], cells[3])
	}
	return tw.Flush()
}

// ExpFig16 reproduces Figure 16: per-query LUBM results.
func ExpFig16(w io.Writer, sc Scales, opts RunOptions) error {
	return perQueryTable(w, "Figure 16: LUBM benchmark results", gen.LUBM(sc.LUBMUnis), nil, opts)
}

// ExpFig17 reproduces Figure 17: PRBench long-running queries.
func ExpFig17(w io.Writer, sc Scales, opts RunOptions) error {
	return perQueryTable(w, "Figure 17: PRBench long-running queries",
		gen.PRBench(sc.PRBench), []string{"PQ10", "PQ26", "PQ27", "PQ28"}, opts)
}

// ExpFig18 reproduces Figure 18: PRBench medium-running queries.
func ExpFig18(w io.Writer, sc Scales, opts RunOptions) error {
	return perQueryTable(w, "Figure 18: PRBench medium-running queries",
		gen.PRBench(sc.PRBench), []string{"PQ14", "PQ15", "PQ16", "PQ17", "PQ24", "PQ29"}, opts)
}

// ExpAblationMapping compares predicate-to-column policies (§2.2):
// spill rows under 1-, 2- and 3-way composed hashing versus coloring.
func ExpAblationMapping(w io.Writer, sc Scales) error {
	fmt.Fprintln(w, "Ablation: predicate mapping policy vs spills (budget 32, DPH side)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "dataset\thash-1\thash-2\thash-3\tcolored\n")
	for _, d := range []struct {
		name    string
		triples []rdf.Triple
	}{
		{"LUBM", gen.LUBM(sc.LUBMUnis).Triples},
		{"SP2Bench", gen.SP2B(sc.SP2B).Triples},
		{"DBpedia", gen.DBpedia(sc.DBpedia).Triples},
	} {
		var cells []string
		for n := 1; n <= 3; n++ {
			st, err := store.New(nil, store.Options{K: 32, Mapping: coloring.NewHashMapping(32, n)})
			if err != nil {
				return err
			}
			if err := st.LoadTriples(d.triples); err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%d", st.SpillCount(false)))
		}
		direct, reverse, _, _ := store.BuildMappings(d.triples, 32, 32)
		st, err := store.New(nil, store.Options{K: 32, Mapping: direct, ReverseMapping: reverse})
		if err != nil {
			return err
		}
		if err := st.LoadTriples(d.triples); err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\n", d.name, cells[0], cells[1], cells[2], st.SpillCount(false))
	}
	return tw.Flush()
}

// ExpAblationMerge quantifies the star-merging contribution (§2.1's
// join elimination): micro-benchmark times with merging on and off.
func ExpAblationMerge(w io.Writer, sc Scales, opts RunOptions) error {
	ds := gen.Micro(sc.Micro)
	fmt.Fprintf(w, "Ablation: star merging on/off (micro benchmark, %d triples)\n", len(ds.Triples))
	on, err := BuildSystem("db2rdf", ds)
	if err != nil {
		return err
	}
	off, err := BuildSystem("db2rdf-nomerge", ds)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\tmerged(ms)\tunmerged(ms)\tspeedup\n")
	for _, q := range ds.Queries {
		a := RunQuery(on, q, -1, opts)
		b := RunQuery(off, q, -1, opts)
		if a.Outcome != Complete || b.Outcome != Complete {
			fmt.Fprintf(tw, "%s\t%s\t%s\t-\n", q.Name, a.Outcome, b.Outcome)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1fx\n", q.Name, ms(a.Mean), ms(b.Mean), float64(b.Mean)/float64(a.Mean))
	}
	return tw.Flush()
}

// ExpAblationK sweeps the DPH column budget K: spill rows and Q6 (the
// widest star) time.
func ExpAblationK(w io.Writer, sc Scales, opts RunOptions) error {
	ds := gen.Micro(sc.Micro)
	fmt.Fprintf(w, "Ablation: column budget K (micro benchmark, %d triples)\n", len(ds.Triples))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "K\tspill rows\tQ6(ms)\tQ1(ms)\n")
	q6 := ds.Queries[5]
	q1 := ds.Queries[0]
	for _, k := range []int{4, 8, 16, 32, 64} {
		s, err := db2rdf.Open(db2rdf.Options{K: k, KReverse: k})
		if err != nil {
			return err
		}
		if err := s.LoadTriples(ds.Triples); err != nil {
			return err
		}
		sys := System{Name: "db2rdf", Run: func(q string) (int, error) {
			r, err := s.Query(q)
			if err != nil {
				return 0, err
			}
			return len(r.Rows), nil
		}}
		a := RunQuery(sys, q6, -1, opts)
		b := RunQuery(sys, q1, -1, opts)
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\n", k, s.Internal().SpillCount(false), ms(a.Mean), ms(b.Mean))
	}
	return tw.Flush()
}

// ExpTable3 prints the composed-hash walkthrough of §2.2 / Table 3
// (also verified by TestComposedHashAndroidExample).
func ExpTable3(w io.Writer) error {
	fmt.Fprintln(w, "Table 3 / §2.2: composed hashing walkthrough (Android triples)")
	fmt.Fprintln(w, `  developer -> pred1 (h1)
  version   -> pred2 (h1)
  kernel    -> pred3 (h2; h1 slot taken by developer)
  preceded  -> predk (h1)
  graphics  -> spill (h1=pred3 and h2=pred2 both taken)`)
	return nil
}
