package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"db2rdf/internal/sparql"
)

// Node is one (triple, method) pair in the data flow graph
// (Definition 3.8).
type Node struct {
	Triple *sparql.TriplePattern
	Method Method
	Cost   float64
	req    map[string]bool
	prod   map[string]bool
}

// Edge is a directed data-flow edge; From == nil denotes an edge from
// the artificial root (the target requires no variables).
type Edge struct {
	From, To *Node
	W        float64
}

// Graph is the weighted data flow graph of Definition 3.8.
type Graph struct {
	Nodes []*Node
	Edges []*Edge // sorted ascending by weight
	n     int     // number of distinct triples
}

// BuildDataFlow constructs the data flow graph for a query.
func BuildDataFlow(q *sparql.Query, stats Stats) *Graph {
	triples := q.Where.AllTriples()
	g := &Graph{n: len(triples)}
	for _, t := range triples {
		for _, m := range []Method{ACS, ACO, SC} {
			node := &Node{
				Triple: t,
				Method: m,
				Cost:   TMC(t, m, stats),
				req:    Required(t, m),
				prod:   Produced(t, m),
			}
			g.Nodes = append(g.Nodes, node)
		}
	}
	for _, n := range g.Nodes {
		if len(n.req) == 0 {
			g.Edges = append(g.Edges, &Edge{To: n, W: n.Cost})
		}
	}
	for _, a := range g.Nodes {
		for _, b := range g.Nodes {
			if a.Triple == b.Triple || len(b.req) == 0 {
				continue
			}
			if !produces(a.prod, b.req) {
				continue
			}
			// Definition 3.8 exclusions: no flow between OR-connected
			// triples; no flow out of an OPTIONAL into its guard's
			// scope (∩(t', t): a is optional with respect to b).
			if sparql.OrConnected(a.Triple, b.Triple) || sparql.OptionalGuarded(b.Triple, a.Triple) {
				continue
			}
			g.Edges = append(g.Edges, &Edge{From: a, To: b, W: b.Cost})
		}
	}
	sort.SliceStable(g.Edges, func(i, j int) bool { return g.Edges[i].W < g.Edges[j].W })
	return g
}

func produces(prod, req map[string]bool) bool {
	for v := range req {
		if !prod[v] {
			return false
		}
	}
	return true
}

// FlowNode is one step of the optimal flow tree.
type FlowNode struct {
	Triple *sparql.TriplePattern
	Method Method
	Cost   float64
	Parent *FlowNode // nil for root-fed nodes
}

// Flow is the optimal flow tree: an access method and evaluation rank
// for every triple in the query.
type Flow struct {
	Order []*FlowNode
	rank  map[*sparql.TriplePattern]int
}

// Rank returns the position of t in the flow (lower evaluates first).
func (f *Flow) Rank(t *sparql.TriplePattern) int { return f.rank[t] }

// MethodFor returns the access method chosen for t.
func (f *Flow) MethodFor(t *sparql.TriplePattern) Method {
	return f.Order[f.rank[t]].Method
}

// CostFor returns the TMC estimate the flow assigned to t — the edge
// weight that won t its place in the tree.
func (f *Flow) CostFor(t *sparql.TriplePattern) float64 {
	return f.Order[f.rank[t]].Cost
}

// String renders the flow as "(t4,aco) (t2,aco) ...".
func (f *Flow) String() string {
	var b strings.Builder
	for i, n := range f.Order {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "(t%d,%s)", n.Triple.ID, n.Method)
	}
	return b.String()
}

// TotalCost sums the edge weights of the flow tree.
func (f *Flow) TotalCost() float64 {
	var c float64
	for _, n := range f.Order {
		c += n.Cost
	}
	return c
}

// OptimalFlowTree implements the greedy algorithm of Figure 9: grow a
// tree from the root, always taking the cheapest edge that reaches a
// triple not yet covered. The underlying minimal-cover problem is
// NP-hard (Theorem 3.1), so greedy it is.
func (g *Graph) OptimalFlowTree() (*Flow, error) {
	inTree := map[*Node]*FlowNode{}
	covered := map[*sparql.TriplePattern]bool{}
	flow := &Flow{rank: make(map[*sparql.TriplePattern]int)}
	for len(flow.Order) < g.n {
		var chosen *Edge
		for _, e := range g.Edges {
			if covered[e.To.Triple] {
				continue
			}
			if e.From != nil {
				if _, ok := inTree[e.From]; !ok {
					continue
				}
			}
			chosen = e
			break
		}
		if chosen == nil {
			return nil, fmt.Errorf("optimizer: data flow graph disconnected (%d of %d triples covered)", len(flow.Order), g.n)
		}
		fn := &FlowNode{Triple: chosen.To.Triple, Method: chosen.To.Method, Cost: chosen.W}
		if chosen.From != nil {
			fn.Parent = inTree[chosen.From]
		}
		inTree[chosen.To] = fn
		covered[chosen.To.Triple] = true
		flow.rank[chosen.To.Triple] = len(flow.Order)
		flow.Order = append(flow.Order, fn)
	}
	return flow, nil
}

// NaiveFlow returns the document-order flow a non-optimizing system
// would use: each triple takes its cheapest *constant-driven* method if
// one exists, then any variable-driven method whose variable was bound
// by an earlier triple, and a full scan otherwise. It is the
// "sub-optimal flow" comparator of §3.3 and the db2rdf-noopt system of
// the benchmark harness.
func NaiveFlow(q *sparql.Query, stats Stats) *Flow {
	triples := q.Where.AllTriples()
	flow := &Flow{rank: make(map[*sparql.TriplePattern]int)}
	bound := map[string]bool{}
	for _, t := range triples {
		m := SC
		switch {
		case !t.S.IsVar:
			m = ACS
		case !t.O.IsVar:
			m = ACO
		case t.S.IsVar && bound[t.S.Var]:
			m = ACS
		case t.O.IsVar && bound[t.O.Var]:
			m = ACO
		}
		fn := &FlowNode{Triple: t, Method: m, Cost: TMC(t, m, stats)}
		flow.rank[t] = len(flow.Order)
		flow.Order = append(flow.Order, fn)
		for _, v := range t.Vars() {
			bound[v] = true
		}
	}
	return flow
}
