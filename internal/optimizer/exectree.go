package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"db2rdf/internal/sparql"
)

// ExecKind enumerates execution tree node kinds.
type ExecKind uint8

const (
	// ExecLeaf evaluates one triple pattern with one access method.
	ExecLeaf ExecKind = iota
	// ExecAnd joins its children in order (the order is the plan).
	ExecAnd
	// ExecOr unions its children.
	ExecOr
	// ExecOpt left-outer-joins its single child into the surrounding
	// conjunction.
	ExecOpt
)

// ExecNode is a node of the storage-independent execution tree
// produced by the Query Plan Builder (Figure 10).
type ExecNode struct {
	Kind     ExecKind
	Triple   *sparql.TriplePattern // ExecLeaf only
	Method   Method                // ExecLeaf only
	Cost     float64               // ExecLeaf only: the flow's TMC estimate for Triple
	Children []*ExecNode
	// Filters are evaluated once every child of this node is joined.
	Filters []sparql.Expr
}

// Leaves returns the leaf nodes beneath n in plan order.
func (n *ExecNode) Leaves() []*ExecNode {
	if n.Kind == ExecLeaf {
		return []*ExecNode{n}
	}
	var out []*ExecNode
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Vars returns the set of variables bound beneath n.
func (n *ExecNode) Vars() map[string]bool {
	set := map[string]bool{}
	for _, l := range n.Leaves() {
		for _, v := range l.Triple.Vars() {
			set[v] = true
		}
	}
	return set
}

// String renders the tree compactly, e.g.
// AND[(t4,aco), OR[(t2,aco), (t3,aco)], (t1,acs), (t5,aco), (t6,acs), OPT[(t7,acs)]].
func (n *ExecNode) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *ExecNode) render(b *strings.Builder) {
	switch n.Kind {
	case ExecLeaf:
		fmt.Fprintf(b, "(t%d,%s)", n.Triple.ID, n.Method)
	case ExecAnd:
		b.WriteString("AND[")
		n.renderChildren(b)
		b.WriteString("]")
	case ExecOr:
		b.WriteString("OR[")
		n.renderChildren(b)
		b.WriteString("]")
	case ExecOpt:
		b.WriteString("OPT[")
		n.renderChildren(b)
		b.WriteString("]")
	}
	if len(n.Filters) > 0 {
		fmt.Fprintf(b, "{%df}", len(n.Filters))
	}
}

func (n *ExecNode) renderChildren(b *strings.Builder) {
	for i, c := range n.Children {
		if i > 0 {
			b.WriteString(", ")
		}
		c.render(b)
	}
}

// minRank returns the earliest flow rank beneath n.
func (n *ExecNode) minRank(f *Flow) int {
	if n.Kind == ExecLeaf {
		return f.Rank(n.Triple)
	}
	best := int(^uint(0) >> 1)
	for _, c := range n.Children {
		if r := c.minRank(f); r < best {
			best = r
		}
	}
	return best
}

// BuildExecTree implements the ExecTree algorithm with late fusing:
// conjunctive contexts are flattened into units (triples, OR blocks,
// OPTIONAL blocks), units are fused in optimal-flow order, and
// OPTIONAL units are fused after every required unit so that left-join
// semantics are preserved while the flow still dictates order within
// each class. Filters scoped to purely conjunctive levels float up to
// the enclosing conjunctive unit list.
func BuildExecTree(f *Flow, p *sparql.Pattern) *ExecNode {
	return buildAny(f, p)
}

func buildAny(f *Flow, p *sparql.Pattern) *ExecNode {
	if p.Kind == sparql.Or {
		or := &ExecNode{Kind: ExecOr, Filters: p.Filters}
		for _, arm := range p.Children {
			or.Children = append(or.Children, buildAny(f, arm))
		}
		return or
	}
	units, filters := conjunctiveUnits(f, p)
	var required, optional []*ExecNode
	for _, u := range units {
		if u.Kind == ExecOpt {
			optional = append(optional, u)
		} else {
			required = append(required, u)
		}
	}
	sort.SliceStable(required, func(i, j int) bool { return required[i].minRank(f) < required[j].minRank(f) })
	sort.SliceStable(optional, func(i, j int) bool { return optional[i].minRank(f) < optional[j].minRank(f) })
	ordered := append(required, optional...)
	if len(ordered) == 1 && len(filters) == 0 {
		return ordered[0]
	}
	if len(ordered) == 1 {
		// Attach the filters to the single unit.
		u := ordered[0]
		u.Filters = append(u.Filters, filters...)
		return u
	}
	return &ExecNode{Kind: ExecAnd, Children: ordered, Filters: filters}
}

// conjunctiveUnits flattens nested pure-AND structure (AND is
// associative, §3.1.2) into a flat unit list plus the filters declared
// at those levels.
func conjunctiveUnits(f *Flow, p *sparql.Pattern) ([]*ExecNode, []sparql.Expr) {
	var units []*ExecNode
	filters := append([]sparql.Expr(nil), p.Filters...)
	for _, t := range p.Triples {
		units = append(units, &ExecNode{Kind: ExecLeaf, Triple: t, Method: f.MethodFor(t), Cost: f.CostFor(t)})
	}
	switch p.Kind {
	case sparql.Simple:
		// triples only, handled above
	case sparql.And:
		for _, c := range p.Children {
			switch c.Kind {
			case sparql.Simple, sparql.And:
				u, fs := conjunctiveUnits(f, c)
				units = append(units, u...)
				filters = append(filters, fs...)
			case sparql.Or:
				units = append(units, buildAny(f, c))
			case sparql.Optional:
				units = append(units, &ExecNode{Kind: ExecOpt, Children: []*ExecNode{buildAny(f, c.Child())}, Filters: c.Filters})
			}
		}
	case sparql.Optional:
		// An OPTIONAL with no sibling context: treat its child as the
		// conjunctive content wrapped in an OPT unit.
		units = append(units, &ExecNode{Kind: ExecOpt, Children: []*ExecNode{buildAny(f, p.Child())}})
	}
	return units, filters
}

// Optimize runs the full pipeline: data flow graph, greedy optimal
// flow tree, execution tree.
func Optimize(q *sparql.Query, stats Stats) (*ExecNode, *Flow, error) {
	g := BuildDataFlow(q, stats)
	flow, err := g.OptimalFlowTree()
	if err != nil {
		return nil, nil, err
	}
	return BuildExecTree(flow, q.Where), flow, nil
}

// OptimizeNaive builds the execution tree from the document-order
// naive flow (the no-hybrid-optimizer baseline).
func OptimizeNaive(q *sparql.Query, stats Stats) (*ExecNode, *Flow) {
	flow := NaiveFlow(q, stats)
	return BuildExecTree(flow, q.Where), flow
}
