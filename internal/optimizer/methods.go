// Package optimizer implements the hybrid two-step SPARQL optimizer of
// Bornea et al. (SIGMOD 2013, §3.1): the Data Flow Builder (DFB), which
// turns the query parse tree plus dataset statistics into a weighted
// data flow graph over (triple pattern, access method) pairs and
// extracts a greedy optimal flow tree (Figure 9); and the Query Plan
// Builder (QPB), whose ExecTree algorithm (Figure 10) weaves the flow
// order back through the query's AND/OR/OPTIONAL structure with late
// fusing into a storage-independent execution tree.
//
// Both steps are deliberately independent of the DB2RDF schema — the
// paper notes the optimizer applies to any SPARQL evaluation system —
// and the translator packages consume the execution tree.
package optimizer

import (
	"fmt"

	"db2rdf/internal/rdf"
	"db2rdf/internal/sparql"
)

// Method is an access method (§3.1 input 3): full scan, access by
// subject, or access by object.
type Method uint8

const (
	// SC is a full data scan.
	SC Method = iota
	// ACS retrieves the triples of a given subject.
	ACS
	// ACO retrieves the triples of a given object.
	ACO
)

// String names the method as in the paper.
func (m Method) String() string {
	switch m {
	case SC:
		return "sc"
	case ACS:
		return "acs"
	case ACO:
		return "aco"
	}
	return fmt.Sprintf("Method(%d)", uint8(m))
}

// Stats supplies the dataset statistics of §3.1 (input 2): aggregate
// sizes plus exact counts for constants (the paper's top-k lists).
// The boolean result reports whether a count is known; unknown
// constants fall back to the averages.
type Stats interface {
	TotalTriples() float64
	AvgPerSubject() float64
	AvgPerObject() float64
	SubjectCount(t rdf.Term) (float64, bool)
	ObjectCount(t rdf.Term) (float64, bool)
	PredicateCount(t rdf.Term) (float64, bool)
}

// TMC implements Definition 3.1 (Triple Method Cost): the estimated
// cost of evaluating triple t with access method m under stats s.
func TMC(t *sparql.TriplePattern, m Method, s Stats) float64 {
	switch m {
	case SC:
		return s.TotalTriples()
	case ACS:
		if !t.S.IsVar {
			if n, ok := s.SubjectCount(t.S.Term); ok {
				return n
			}
			// A constant outside the statistics (the paper's top-k
			// lists) gets the pessimistic scan estimate; this is what
			// makes the Fig. 8 flow prefer (t1,acs) over (t1,aco).
			return s.TotalTriples()
		}
		return s.AvgPerSubject()
	case ACO:
		if !t.O.IsVar {
			if n, ok := s.ObjectCount(t.O.Term); ok {
				return n
			}
			return s.TotalTriples()
		}
		return s.AvgPerObject()
	}
	return s.TotalTriples()
}

// Required implements Definition 3.3: the variables that must be bound
// before evaluating t with m.
func Required(t *sparql.TriplePattern, m Method) map[string]bool {
	req := map[string]bool{}
	switch m {
	case ACS:
		if t.S.IsVar {
			req[t.S.Var] = true
		}
	case ACO:
		if t.O.IsVar {
			req[t.O.Var] = true
		}
	}
	return req
}

// Produced implements Definition 3.2: the variables newly bound by the
// lookup (the triple's variables minus the required ones).
func Produced(t *sparql.TriplePattern, m Method) map[string]bool {
	req := Required(t, m)
	prod := map[string]bool{}
	for _, v := range t.Vars() {
		if !req[v] {
			prod[v] = true
		}
	}
	return prod
}
