package optimizer

import (
	"strings"
	"testing"

	"db2rdf/internal/rdf"
	"db2rdf/internal/sparql"
)

// paperStats reproduces Figure 6(b): top-k constants with counts IBM=7,
// industry=6, Google=5, Software=2; 5 triples per subject on average,
// 1 per object, 26 triples total. Constants not listed are unknown.
type paperStats struct{}

var paperCounts = map[string]float64{
	"IBM": 7, "industry": 6, "Google": 5, "Software": 2,
}

func (paperStats) TotalTriples() float64  { return 26 }
func (paperStats) AvgPerSubject() float64 { return 5 }
func (paperStats) AvgPerObject() float64  { return 1 }

func lookupPaper(t rdf.Term) (float64, bool) {
	n, ok := paperCounts[t.Value]
	return n, ok
}
func (paperStats) SubjectCount(t rdf.Term) (float64, bool)   { return lookupPaper(t) }
func (paperStats) ObjectCount(t rdf.Term) (float64, bool)    { return lookupPaper(t) }
func (paperStats) PredicateCount(t rdf.Term) (float64, bool) { return lookupPaper(t) }

const fig6Query = `
SELECT ?x ?y ?z WHERE {
  ?x <home> "Palo Alto" .
  { ?x <founder> ?y } UNION { ?x <member> ?y }
  { ?y <industry> "Software" .
    ?z <developer> ?y .
    ?y <revenue> ?n .
    OPTIONAL { ?y <employees> ?m } }
}`

func parseFig6(t *testing.T) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(fig6Query)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestTMCExamples(t *testing.T) {
	// §3.1: TMC(t4, aco) = 2, TMC(t4, sc) = 26, TMC(t4, acs) = 5.
	q := parseFig6(t)
	t4 := q.Where.AllTriples()[3]
	if got := TMC(t4, ACO, paperStats{}); got != 2 {
		t.Errorf("TMC(t4,aco) = %v, want 2", got)
	}
	if got := TMC(t4, SC, paperStats{}); got != 26 {
		t.Errorf("TMC(t4,sc) = %v, want 26", got)
	}
	if got := TMC(t4, ACS, paperStats{}); got != 5 {
		t.Errorf("TMC(t4,acs) = %v, want 5", got)
	}
}

func TestProducedRequired(t *testing.T) {
	q := parseFig6(t)
	ts := q.Where.AllTriples()
	t4, t5 := ts[3], ts[4]
	// P(t4, aco) = {y}: the object is the constant Software.
	prod := Produced(t4, ACO)
	if len(prod) != 1 || !prod["y"] {
		t.Errorf("Produced(t4,aco) = %v, want {y}", prod)
	}
	// R(t5, aco) = {y}.
	req := Required(t5, ACO)
	if len(req) != 1 || !req["y"] {
		t.Errorf("Required(t5,aco) = %v, want {y}", req)
	}
	if len(Required(t4, ACO)) != 0 {
		t.Error("Required(t4,aco) must be empty (constant object)")
	}
}

func TestDataFlowGraphEdges(t *testing.T) {
	q := parseFig6(t)
	g := BuildDataFlow(q, paperStats{})
	ts := q.Where.AllTriples()
	find := func(tp *sparql.TriplePattern, m Method) *Node {
		for _, n := range g.Nodes {
			if n.Triple == tp && n.Method == m {
				return n
			}
		}
		t.Fatalf("node (t%d,%s) missing", tp.ID, m)
		return nil
	}
	hasEdge := func(from, to *Node) bool {
		for _, e := range g.Edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	hasRootEdge := func(to *Node) bool {
		for _, e := range g.Edges {
			if e.From == nil && e.To == to {
				return true
			}
		}
		return false
	}
	t2aco := find(ts[1], ACO)
	t3aco := find(ts[2], ACO)
	t4aco := find(ts[3], ACO)
	t1acs := find(ts[0], ACS)
	if !hasRootEdge(t4aco) {
		t.Error("root -> (t4,aco) must exist (§3.1.1)")
	}
	if !hasEdge(t4aco, t2aco) {
		t.Error("(t4,aco) -> (t2,aco) must exist")
	}
	if !hasEdge(t2aco, t1acs) {
		t.Error("(t2,aco) -> (t1,acs) must exist")
	}
	// OR-connected triples never exchange bindings.
	if hasEdge(t2aco, t3aco) || hasEdge(t3aco, t2aco) {
		t.Error("edges between OR-connected t2,t3 are forbidden")
	}
	// No flow out of the OPTIONAL into required triples.
	t7acs := find(ts[6], ACS)
	t6acs := find(ts[5], ACS)
	if hasEdge(t7acs, t6acs) {
		t.Error("flow out of OPTIONAL (t7 -> t6) is forbidden")
	}
	if !hasEdge(t4aco, t7acs) {
		t.Error("flow into OPTIONAL (t4 -> t7) is allowed")
	}
}

func TestOptimalFlowMatchesFig8(t *testing.T) {
	q := parseFig6(t)
	g := BuildDataFlow(q, paperStats{})
	flow, err := g.OptimalFlowTree()
	if err != nil {
		t.Fatal(err)
	}
	ts := q.Where.AllTriples()
	if len(flow.Order) != 7 {
		t.Fatalf("flow must cover all 7 triples, got %d: %s", len(flow.Order), flow)
	}
	// The blue nodes of Figure 8.
	want := map[int]Method{1: ACS, 2: ACO, 3: ACO, 4: ACO, 5: ACO, 6: ACS, 7: ACS}
	for _, tp := range ts {
		if got := flow.MethodFor(tp); got != want[tp.ID] {
			t.Errorf("method for t%d = %s, want %s (flow: %s)", tp.ID, got, want[tp.ID], flow)
		}
	}
	// (t4,aco) is the cheapest root edge and evaluates first.
	if flow.Order[0].Triple.ID != 4 {
		t.Errorf("flow must start at t4: %s", flow)
	}
	// t2 follows immediately (the paper's T2).
	if flow.Order[1].Triple.ID != 2 {
		t.Errorf("second step must be t2: %s", flow)
	}
}

func TestExecTreeShapeMatchesFig10(t *testing.T) {
	q := parseFig6(t)
	tree, flow, err := Optimize(q, paperStats{})
	if err != nil {
		t.Fatal(err)
	}
	_ = flow
	if tree.Kind != ExecAnd {
		t.Fatalf("root must be AND: %s", tree)
	}
	// t4 evaluates first; the OPTIONAL unit fuses last.
	first := tree.Children[0]
	if first.Kind != ExecLeaf || first.Triple.ID != 4 {
		t.Errorf("first unit must be leaf t4, got %s", tree)
	}
	last := tree.Children[len(tree.Children)-1]
	if last.Kind != ExecOpt {
		t.Errorf("last unit must be the OPTIONAL, got %s", tree)
	}
	// The OR block stays intact with both arms.
	var orNode *ExecNode
	for _, c := range tree.Children {
		if c.Kind == ExecOr {
			orNode = c
		}
	}
	if orNode == nil || len(orNode.Children) != 2 {
		t.Fatalf("OR block missing or malformed: %s", tree)
	}
	// The OR block fuses right after t4 (it is the cheapest feeder of x).
	if tree.Children[1].Kind != ExecOr {
		t.Errorf("OR should fuse second: %s", tree)
	}
	// All 7 leaves present exactly once.
	if got := len(tree.Leaves()); got != 7 {
		t.Errorf("leaves = %d, want 7: %s", got, tree)
	}
}

func TestNaiveFlowDocumentOrder(t *testing.T) {
	q := parseFig6(t)
	flow := NaiveFlow(q, paperStats{})
	for i, n := range flow.Order {
		if n.Triple.ID != i+1 {
			t.Fatalf("naive flow must follow document order: %s", flow)
		}
	}
	// t1 has a constant object -> aco.
	if flow.Order[0].Method != ACO {
		t.Errorf("naive t1 should use aco, got %s", flow.Order[0].Method)
	}
	// t2 (?x founder ?y): x was bound by t1 -> acs.
	if flow.Order[1].Method != ACS {
		t.Errorf("naive t2 should use acs, got %s", flow.Order[1].Method)
	}
	// The naive flow is more expensive than the optimal one.
	g := BuildDataFlow(q, paperStats{})
	opt, err := g.OptimalFlowTree()
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalCost() >= flow.TotalCost() {
		t.Errorf("optimal cost %f must beat naive cost %f", opt.TotalCost(), flow.TotalCost())
	}
}

func TestStarQueryFlow(t *testing.T) {
	// A pure star: all four triples share ?s; one has a selective
	// constant object. The flow must start there and fan out by
	// subject.
	q, err := sparql.Parse(`SELECT ?s WHERE { ?s <p1> "rare" . ?s <p2> ?a . ?s <p3> ?b . ?s <p4> ?c }`)
	if err != nil {
		t.Fatal(err)
	}
	st := fixedStats{total: 1000, avgS: 4, avgO: 2, counts: map[string]float64{"rare": 3}}
	tree, flow, err := Optimize(q, st)
	if err != nil {
		t.Fatal(err)
	}
	if flow.Order[0].Triple.ID != 1 || flow.Order[0].Method != ACO {
		t.Fatalf("star flow must start at the selective constant: %s", flow)
	}
	for _, n := range flow.Order[1:] {
		if n.Method != ACS {
			t.Errorf("star members must use acs: %s", flow)
		}
	}
	if tree.Kind != ExecAnd || len(tree.Children) != 4 {
		t.Fatalf("unexpected tree %s", tree)
	}
}

// fixedStats is a configurable Stats for tests.
type fixedStats struct {
	total, avgS, avgO float64
	counts            map[string]float64
}

func (f fixedStats) TotalTriples() float64  { return f.total }
func (f fixedStats) AvgPerSubject() float64 { return f.avgS }
func (f fixedStats) AvgPerObject() float64  { return f.avgO }
func (f fixedStats) SubjectCount(t rdf.Term) (float64, bool) {
	n, ok := f.counts[t.Value]
	return n, ok
}
func (f fixedStats) ObjectCount(t rdf.Term) (float64, bool) {
	n, ok := f.counts[t.Value]
	return n, ok
}
func (f fixedStats) PredicateCount(t rdf.Term) (float64, bool) {
	n, ok := f.counts[t.Value]
	return n, ok
}

func TestCartesianProductStillCovered(t *testing.T) {
	// Two disconnected triples: the flow must still cover both (via
	// root edges), not error out.
	q, err := sparql.Parse(`SELECT * WHERE { ?a <p> ?b . ?c <q> ?d }`)
	if err != nil {
		t.Fatal(err)
	}
	st := fixedStats{total: 100, avgS: 2, avgO: 2}
	_, flow, err := Optimize(q, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(flow.Order) != 2 {
		t.Fatalf("flow: %s", flow)
	}
	for _, n := range flow.Order {
		if n.Method != SC {
			t.Errorf("unbound triples must scan: %s", flow)
		}
	}
}

func TestVariablePredicate(t *testing.T) {
	q, err := sparql.Parse(`SELECT ?p WHERE { <s> ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	st := fixedStats{total: 100, avgS: 2, avgO: 2, counts: map[string]float64{"s": 5}}
	_, flow, err := Optimize(q, st)
	if err != nil {
		t.Fatal(err)
	}
	if flow.Order[0].Method != ACS {
		t.Fatalf("constant subject should drive access: %s", flow)
	}
}

func TestExecTreeFiltersFloatToConjunctiveLevel(t *testing.T) {
	q, err := sparql.Parse(`SELECT ?x WHERE { ?x <p> ?v . { ?x <q> ?w . FILTER(?w > 5) } }`)
	if err != nil {
		t.Fatal(err)
	}
	st := fixedStats{total: 100, avgS: 2, avgO: 2}
	tree, _, err := Optimize(q, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Filters) != 1 {
		t.Fatalf("filter must float to the conjunctive root: %s", tree)
	}
}

func TestFlowString(t *testing.T) {
	q := parseFig6(t)
	_, flow, err := Optimize(q, paperStats{})
	if err != nil {
		t.Fatal(err)
	}
	s := flow.String()
	if !strings.Contains(s, "(t4,aco)") {
		t.Errorf("flow string %q missing (t4,aco)", s)
	}
}

func TestOptionalOnlyPattern(t *testing.T) {
	q, err := sparql.Parse(`SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z } }`)
	if err != nil {
		t.Fatal(err)
	}
	st := fixedStats{total: 50, avgS: 2, avgO: 2}
	tree, _, err := Optimize(q, st)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Kind != ExecAnd || len(tree.Children) != 2 {
		t.Fatalf("tree: %s", tree)
	}
	if tree.Children[1].Kind != ExecOpt {
		t.Fatalf("optional must be second: %s", tree)
	}
}

// TestFlowProducerBeforeConsumerProperty: in every greedy flow, a
// node's required variables are produced by its ancestors in the flow
// tree (the guarantee that makes the translation's bound-variable
// lookups valid).
func TestFlowProducerBeforeConsumerProperty(t *testing.T) {
	shapes := []string{
		`SELECT * WHERE { ?a <p> ?b . ?b <q> ?c . ?c <r> ?d }`,
		`SELECT * WHERE { ?a <p> "k" . ?a <q> ?b . { ?b <r> ?c } UNION { ?b <s> ?c } }`,
		`SELECT * WHERE { ?a <p> ?b OPTIONAL { ?b <q> ?c . ?c <r> ?d } }`,
		`SELECT * WHERE { ?a <p> ?b . ?c <q> ?b . ?c <r> "x" . OPTIONAL { ?a <s> ?e } }`,
	}
	st := fixedStats{total: 500, avgS: 3, avgO: 2, counts: map[string]float64{"k": 2, "x": 4}}
	for _, q := range shapes {
		parsed, err := sparql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		g := BuildDataFlow(parsed, st)
		flow, err := g.OptimalFlowTree()
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		triples := parsed.Where.AllTriples()
		if len(flow.Order) != len(triples) {
			t.Fatalf("%s: flow covers %d of %d", q, len(flow.Order), len(triples))
		}
		seen := map[*sparql.TriplePattern]bool{}
		for _, n := range flow.Order {
			if seen[n.Triple] {
				t.Fatalf("%s: triple t%d appears twice in flow", q, n.Triple.ID)
			}
			seen[n.Triple] = true
			req := Required(n.Triple, n.Method)
			if len(req) == 0 {
				continue
			}
			// Walk ancestors and collect produced vars.
			produced := map[string]bool{}
			for p := n.Parent; p != nil; p = p.Parent {
				for v := range Produced(p.Triple, p.Method) {
					produced[v] = true
				}
			}
			for v := range req {
				if !produced[v] {
					t.Errorf("%s: t%d requires ?%s but no flow ancestor produces it", q, n.Triple.ID, v)
				}
			}
		}
	}
}

// TestExecTreeCoversAllTriplesOnce: the execution tree contains every
// triple exactly once for a variety of shapes.
func TestExecTreeCoversAllTriplesOnce(t *testing.T) {
	shapes := []string{
		fig6Query,
		`SELECT * WHERE { { ?a <p> ?b } UNION { ?a <q> ?b } UNION { ?a <r> ?b } }`,
		`SELECT * WHERE { ?a <p> ?b . { ?a <q> ?c OPTIONAL { ?c <r> ?d } } }`,
	}
	for _, q := range shapes {
		parsed, err := sparql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		tree, _, err := Optimize(parsed, paperStats{})
		if err != nil {
			t.Fatal(err)
		}
		want := parsed.Where.AllTriples()
		got := tree.Leaves()
		if len(got) != len(want) {
			t.Fatalf("%s: %d leaves for %d triples: %s", q, len(got), len(want), tree)
		}
		seen := map[int]bool{}
		for _, l := range got {
			if seen[l.Triple.ID] {
				t.Fatalf("%s: duplicate leaf t%d", q, l.Triple.ID)
			}
			seen[l.Triple.ID] = true
		}
	}
}
