package wal

import (
	"os"
	"path/filepath"
	"testing"

	"db2rdf/internal/rdf"
)

func sampleBatch(i int) []Record {
	return []Record{
		{Op: OpInsert, S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewInteger(int64(i))},
		{Op: OpInsert, S: rdf.NewBlank("b1"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewLangLiteral("héllo\nworld", "en")},
		{Op: OpDelete, S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewTypedLiteral("3.14", rdf.XSDDecimal)},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(1))
	l, err := OpenSegment(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var want []Batch
	for i := 0; i < 5; i++ {
		recs := sampleBatch(i)
		if i == 3 {
			recs = []Record{{Op: OpClear}}
		}
		if _, _, err := l.AppendBatch(recs, uint64(2+i)); err != nil {
			t.Fatal(err)
		}
		want = append(want, Batch{Epoch: uint64(2 + i), Recs: recs})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, valid, discarded := ReadSegment(data)
	if discarded != 0 || valid != int64(len(data)) {
		t.Fatalf("valid=%d len=%d discarded=%d", valid, len(data), discarded)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d batches, want %d", len(got), len(want))
	}
	for i, b := range got {
		if b.Epoch != want[i].Epoch || len(b.Recs) != len(want[i].Recs) {
			t.Fatalf("batch %d: epoch %d recs %d", i, b.Epoch, len(b.Recs))
		}
		for j, r := range b.Recs {
			w := want[i].Recs[j]
			if r.Op != w.Op || r.S != w.S || r.P != w.P || r.O != w.O {
				t.Fatalf("batch %d rec %d: got %+v want %+v", i, j, r, w)
			}
		}
	}
}

// TestTornTail truncates a segment at every byte boundary and checks
// that ReadSegment returns exactly the batches whose commit markers
// survive intact, with the valid offset at the last surviving commit.
func TestTornTail(t *testing.T) {
	var data []byte
	var commits []int64 // offset just past batch i's commit record
	for i := 0; i < 4; i++ {
		for _, r := range sampleBatch(i) {
			data = AppendRecord(data, r)
		}
		data = AppendRecord(data, Record{Op: OpCommit, Epoch: uint64(2 + i)})
		commits = append(commits, int64(len(data)))
	}
	for cut := 0; cut <= len(data); cut++ {
		batches, valid, _ := ReadSegment(data[:cut])
		wantN := 0
		var wantValid int64
		for i, end := range commits {
			if int64(cut) >= end {
				wantN = i + 1
				wantValid = end
			}
		}
		if len(batches) != wantN || valid != wantValid {
			t.Fatalf("cut=%d: got %d batches valid=%d, want %d valid=%d",
				cut, len(batches), valid, wantN, wantValid)
		}
	}
}

// TestBitFlip flips each byte of a segment and checks parsing stops at
// or before the corrupted record without panicking, and that batches
// before the flip survive.
func TestBitFlip(t *testing.T) {
	var data []byte
	for i := 0; i < 3; i++ {
		for _, r := range sampleBatch(i) {
			data = AppendRecord(data, r)
		}
		data = AppendRecord(data, Record{Op: OpCommit, Epoch: uint64(2 + i)})
	}
	clean, _, _ := ReadSegment(data)
	if len(clean) != 3 {
		t.Fatalf("clean parse: %d batches", len(clean))
	}
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x41
		batches, valid, _ := ReadSegment(mut)
		if valid > int64(len(mut)) {
			t.Fatalf("pos=%d: valid=%d beyond len=%d", pos, valid, len(mut))
		}
		// Every surviving batch before the flip must be byte-identical
		// territory: its End must not extend past the flipped byte
		// unless the checksum still covers it (flips inside a later
		// record leave earlier batches intact).
		for _, b := range batches {
			if b.End <= int64(pos) {
				continue // committed strictly before the corruption
			}
			// A batch spanning the flip can only survive if the flip
			// did not change parsed bytes — impossible with XOR 0x41
			// inside the batch's framed region, unless the flip is in
			// a later region. So surviving spans mean mis-sync; verify
			// the epoch is one we actually wrote.
			if b.Epoch < 2 || b.Epoch > 4 {
				t.Fatalf("pos=%d: surviving batch has foreign epoch %d", pos, b.Epoch)
			}
		}
	}
}

func TestListSegments(t *testing.T) {
	dir := t.TempDir()
	for _, base := range []uint64{7, 1, 300} {
		if err := os.WriteFile(filepath.Join(dir, SegmentName(base)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Noise that must be ignored.
	os.WriteFile(filepath.Join(dir, "snap-1.snap"), nil, 0o644)
	os.WriteFile(filepath.Join(dir, "wal-bogus.log"), nil, 0o644)
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || segs[0].Base != 1 || segs[1].Base != 7 || segs[2].Base != 300 {
		t.Fatalf("segments: %+v", segs)
	}
}

func FuzzReadSegment(f *testing.F) {
	var seed []byte
	for _, r := range sampleBatch(0) {
		seed = AppendRecord(seed, r)
	}
	seed = AppendRecord(seed, Record{Op: OpCommit, Epoch: 2})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		batches, valid, _ := ReadSegment(data)
		if valid > int64(len(data)) {
			t.Fatalf("valid=%d beyond input", valid)
		}
		for _, b := range batches {
			if b.End > int64(len(data)) {
				t.Fatalf("batch end beyond input")
			}
		}
	})
}
