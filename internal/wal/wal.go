// Package wal implements the write-ahead log backing the store's
// durability layer (see DESIGN.md §9). The log is a sequence of
// length-prefixed, CRC32C-checksummed records grouped into batches:
// one batch per published epoch, consisting of the epoch's triple
// deltas (inserts/deletes/clear) followed by a commit marker carrying
// the epoch number. A batch whose commit marker is missing or whose
// records fail the checksum is a torn write and is discarded wholesale
// on replay, so recovery always lands on some previously published
// epoch — never a partial state.
//
// On-disk record framing:
//
//	[u32 payload length][u32 CRC32C(payload)][payload]
//
// both integers little-endian. The payload starts with a one-byte op:
//
//	OpInsert/OpDelete: 3 × (uvarint key length + rdf.Term.Key bytes)
//	OpClear:           empty
//	OpCommit:          u64 epoch (little-endian)
//
// Log files ("segments") are named wal-<base>.log where <base> is the
// store epoch at the moment the segment was opened; every batch inside
// a segment has epoch > base of its own segment and ≤ base of the next.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"db2rdf/internal/rdf"
)

// Op enumerates WAL record types.
type Op uint8

const (
	// OpInsert records one inserted triple.
	OpInsert Op = 1
	// OpDelete records one deleted triple.
	OpDelete Op = 2
	// OpClear records a whole-store CLEAR.
	OpClear Op = 3
	// OpCommit terminates a batch and names the epoch it publishes.
	OpCommit Op = 4
)

// MaxRecordBytes caps a single record's payload. Anything larger is
// treated as corruption: the largest legitimate record is three term
// keys, and terms are far below this bound in practice.
const MaxRecordBytes = 1 << 28

const recHeader = 8 // u32 length + u32 crc32c

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded WAL record.
type Record struct {
	Op    Op
	Epoch uint64 // OpCommit only
	S     rdf.Term
	P     rdf.Term
	O     rdf.Term // OpInsert/OpDelete only
}

// AppendRecord appends the framed encoding of r to buf.
func AppendRecord(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = append(buf, byte(r.Op))
	switch r.Op {
	case OpInsert, OpDelete:
		for _, t := range [3]rdf.Term{r.S, r.P, r.O} {
			k := t.Key()
			buf = binary.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
		}
	case OpCommit:
		buf = binary.LittleEndian.AppendUint64(buf, r.Epoch)
	}
	payload := buf[start+recHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeRecord decodes one framed record from the front of data. It
// returns the record and the total number of bytes consumed. Any
// framing, checksum, or payload violation yields an error; the caller
// treats every error as the torn/corrupt tail of the log.
func decodeRecord(data []byte) (Record, int, error) {
	if len(data) < recHeader {
		return Record{}, 0, fmt.Errorf("wal: short header (%d bytes)", len(data))
	}
	ln := int(binary.LittleEndian.Uint32(data))
	if ln == 0 || ln > MaxRecordBytes || ln > len(data)-recHeader {
		return Record{}, 0, fmt.Errorf("wal: bad record length %d", ln)
	}
	payload := data[recHeader : recHeader+ln]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:]) {
		return Record{}, 0, fmt.Errorf("wal: checksum mismatch")
	}
	r := Record{Op: Op(payload[0])}
	body := payload[1:]
	switch r.Op {
	case OpInsert, OpDelete:
		terms := [3]*rdf.Term{&r.S, &r.P, &r.O}
		for _, t := range terms {
			kl, n := binary.Uvarint(body)
			if n <= 0 || kl > uint64(len(body)-n) {
				return Record{}, 0, fmt.Errorf("wal: bad term key length")
			}
			term, err := rdf.TermFromKey(string(body[n : n+int(kl)]))
			if err != nil {
				return Record{}, 0, err
			}
			*t = term
			body = body[n+int(kl):]
		}
	case OpClear:
	case OpCommit:
		if len(body) != 8 {
			return Record{}, 0, fmt.Errorf("wal: bad commit payload")
		}
		r.Epoch = binary.LittleEndian.Uint64(body)
		body = body[8:]
	default:
		return Record{}, 0, fmt.Errorf("wal: unknown op %d", r.Op)
	}
	if r.Op != OpCommit && len(body) != 0 {
		return Record{}, 0, fmt.Errorf("wal: trailing payload bytes")
	}
	return r, recHeader + ln, nil
}

// Batch is one committed group of deltas publishing Epoch. End is the
// byte offset just past the batch's commit record within its segment —
// the truncation point that keeps the batch intact.
type Batch struct {
	Epoch uint64
	Recs  []Record // deltas only; the commit marker is not included
	End   int64
}

// ReadSegment parses one segment's bytes into committed batches. It
// returns the batches, the offset just past the last committed batch
// (the segment's valid prefix), and the number of records that were
// read but discarded because no commit marker followed them (a torn
// tail). Parsing stops at the first framing or checksum violation;
// nothing after it is trusted. ReadSegment never panics on arbitrary
// input.
func ReadSegment(data []byte) (batches []Batch, valid int64, discarded int) {
	var cur []Record
	off := 0
	for off < len(data) {
		r, n, err := decodeRecord(data[off:])
		if err != nil {
			break
		}
		off += n
		if r.Op == OpCommit {
			batches = append(batches, Batch{Epoch: r.Epoch, Recs: cur, End: int64(off)})
			valid = int64(off)
			cur = nil
			continue
		}
		cur = append(cur, r)
	}
	return batches, valid, len(cur)
}

// SegmentName returns the file name of the segment whose batches all
// have epoch greater than base. The zero-padded fixed width makes
// lexical order equal numeric order.
func SegmentName(base uint64) string {
	return fmt.Sprintf("wal-%020d.log", base)
}

// SegmentInfo describes one on-disk segment.
type SegmentInfo struct {
	Path string
	Base uint64
}

// ListSegments returns the segments in dir ordered by base epoch.
// Files that do not match the segment naming scheme are ignored.
func ListSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		var base uint64
		if _, err := fmt.Sscanf(name, "wal-%020d.log", &base); err != nil {
			continue
		}
		segs = append(segs, SegmentInfo{Path: filepath.Join(dir, name), Base: base})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Base < segs[j].Base })
	return segs, nil
}

// Log is the append side of the WAL: one open segment file. It is not
// safe for concurrent use; the store serializes appends under its
// write lock.
type Log struct {
	f     *os.File
	dir   string
	fsync bool
	buf   []byte // reused encode buffer
}

// OpenSegment opens (creating if absent) the segment file at path for
// appending. Appends go to the end of any valid prefix already
// present — recovery truncates the file to that prefix first.
func OpenSegment(path string, fsync bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, dir: filepath.Dir(path), fsync: fsync}, nil
}

// AppendBatch encodes deltas plus a commit marker for epoch and writes
// them in a single Write call, then fsyncs if the log was opened with
// fsync enabled. It returns the bytes written and the time spent in
// fsync. On any error the batch must be considered torn; the commit
// marker may not be durable and recovery will discard the batch.
func (l *Log) AppendBatch(deltas []Record, epoch uint64) (int64, time.Duration, error) {
	buf := l.buf[:0]
	for _, r := range deltas {
		buf = AppendRecord(buf, r)
	}
	buf = AppendRecord(buf, Record{Op: OpCommit, Epoch: epoch})
	if cap(buf) <= 1<<20 {
		l.buf = buf // keep small buffers; let bulk-load-sized ones go
	} else {
		l.buf = nil
	}
	n, err := l.f.Write(buf)
	if err != nil {
		return int64(n), 0, err
	}
	var d time.Duration
	if l.fsync {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return int64(n), time.Since(start), err
		}
		d = time.Since(start)
	}
	return int64(n), d, nil
}

// Sync forces the segment to stable storage regardless of the fsync
// setting (used for the final flush on Close).
func (l *Log) Sync() error { return l.f.Sync() }

// Close syncs and closes the segment file.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
