package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"db2rdf/internal/dict"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/wal"
)

// Durability (DESIGN.md §9). The PR 7 publish discipline makes the
// store's commit points explicit: every content change is exactly one
// publishLocked, which bumps the epoch and swaps in an immutable
// snapshot. The durability layer hooks that point — the epoch's triple
// deltas are appended to the WAL (and optionally fsynced) BEFORE the
// snapshot pointer swap makes the state visible, so the invariant
// "visible ⇒ logged" holds for every published epoch. Epoch-aligned
// snapshot files serialize the columnar state from a frozen *Snapshot
// in a background goroutine, so snapshotting never blocks readers or
// writers; after a snapshot lands, the WAL rotates to a new segment
// and obsolete files are retired (the newest two snapshots are
// retained, so a corrupt newest snapshot still recovers from the older
// one plus its WAL suffix).
//
// Recovery loads the newest snapshot whose whole-file CRC32C and
// structure validate, rebuilds the derived in-memory state (entity row
// registries, lid sets, spill markers, statistics, hash indexes) by
// scanning the decoded relations, and replays the WAL suffix through
// the ordinary insert/delete machinery. Replay consumes whole batches
// only (a batch = one published epoch, terminated by a commit marker)
// and requires epochs to be contiguous, so a torn tail, a flipped bit,
// or a truncation at any byte offset lands the store on some
// previously published epoch — never a partial state. The log is then
// repaired in place (truncated at the last committed boundary, later
// segments removed) so post-recovery appends continue consistently.

// Durability configures the optional persistence layer. The zero value
// disables it entirely: no deltas are captured and publish costs
// nothing extra.
type Durability struct {
	// Dir is the data directory for WAL segments and snapshot files.
	// Empty disables durability.
	Dir string
	// Fsync forces an fsync of the WAL segment on every publish. Off,
	// the OS page cache decides when batches reach disk: a process
	// crash loses nothing, a machine crash may lose recent epochs (but
	// never atomicity).
	Fsync bool
	// SnapshotEvery writes a background snapshot every n epochs; 0
	// means snapshots are written only on Close.
	SnapshotEvery int
}

// walDelta is one captured mutation, held as dictionary ids until the
// publish encodes them to terms (the dictionary is append-only, so the
// ids stay decodable).
type walDelta struct {
	op      wal.Op
	s, p, o int64
}

// FsyncBuckets are the upper bounds (seconds) of the WAL fsync
// latency histogram; a final +Inf bucket follows implicitly.
var FsyncBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1}

// durMetrics holds the durability counters (atomics: read lock-free by
// the metrics endpoint while writers append).
type durMetrics struct {
	walAppends   atomic.Uint64
	walBytes     atomic.Int64
	fsyncCount   atomic.Uint64
	fsyncNanos   atomic.Int64
	fsyncHist    [6]atomic.Uint64 // len(FsyncBuckets)+1
	snapWrites   atomic.Uint64
	snapErrors   atomic.Uint64
	snapNanos    atomic.Int64
	truncated    atomic.Uint64
	recoverNanos atomic.Int64
	replayRecs   atomic.Uint64
}

// DurabilityStats is a point-in-time copy of the durability counters.
type DurabilityStats struct {
	Enabled                  bool
	WALAppends               uint64
	WALBytes                 int64
	FsyncCount               uint64
	FsyncSeconds             float64
	FsyncHist                [6]uint64 // cumulative-style raw bucket counts (per FsyncBuckets + Inf)
	SnapshotWrites           uint64
	SnapshotErrors           uint64
	SnapshotWriteSeconds     float64
	RecoveryTruncatedRecords uint64
	RecoverSeconds           float64
	ReplayedRecords          uint64
	LastSnapshotEpoch        uint64
}

// durableState is the store's durability runtime: the open WAL
// segment, the deltas pending for the next publish, and the background
// snapshot coordination. All fields except the atomics are guarded by
// the store write lock.
type durableState struct {
	dir   string
	fsync bool
	every int

	log     *wal.Log
	pending []walDelta

	lastSnapEpoch atomic.Uint64
	snapInFlight  atomic.Bool
	doneMu        sync.Mutex
	doneEpoch     uint64 // completed background snapshot awaiting WAL rotation
	wg            sync.WaitGroup
	closed        bool

	met durMetrics
}

// DurabilityStats returns the durability counters (zero when the store
// runs without a data directory).
func (s *Store) DurabilityStats() DurabilityStats {
	d := s.dur
	if d == nil {
		return DurabilityStats{}
	}
	st := DurabilityStats{
		Enabled:                  true,
		WALAppends:               d.met.walAppends.Load(),
		WALBytes:                 d.met.walBytes.Load(),
		FsyncCount:               d.met.fsyncCount.Load(),
		FsyncSeconds:             float64(d.met.fsyncNanos.Load()) / 1e9,
		SnapshotWrites:           d.met.snapWrites.Load(),
		SnapshotErrors:           d.met.snapErrors.Load(),
		SnapshotWriteSeconds:     float64(d.met.snapNanos.Load()) / 1e9,
		RecoveryTruncatedRecords: d.met.truncated.Load(),
		RecoverSeconds:           float64(d.met.recoverNanos.Load()) / 1e9,
		ReplayedRecords:          d.met.replayRecs.Load(),
		LastSnapshotEpoch:        d.lastSnapEpoch.Load(),
	}
	for i := range st.FsyncHist {
		st.FsyncHist[i] = d.met.fsyncHist[i].Load()
	}
	return st
}

// logDelta captures one mutation for the next WAL batch. Caller holds
// the store write lock (never called from the parallel bulk workers,
// which collect per-worker slices instead).
func (s *Store) logDelta(op wal.Op, sid, pid, oid int64) {
	if d := s.dur; d != nil {
		d.pending = append(d.pending, walDelta{op: op, s: sid, p: pid, o: oid})
	}
}

// walCommitLocked appends the pending deltas plus a commit marker for
// epoch as one batch, fsyncing when configured. It runs BEFORE the
// snapshot swap in publishLocked: a state must be logged before it can
// become visible.
func (s *Store) walCommitLocked(epoch uint64) error {
	d := s.dur
	if len(d.pending) == 0 {
		return nil
	}
	recs := make([]wal.Record, len(d.pending))
	for i, del := range d.pending {
		recs[i] = wal.Record{Op: del.op}
		if del.op == wal.OpInsert || del.op == wal.OpDelete {
			var err error
			if recs[i].S, err = s.Dict.Decode(del.s); err != nil {
				return fmt.Errorf("store: wal encode: %w", err)
			}
			if recs[i].P, err = s.Dict.Decode(del.p); err != nil {
				return fmt.Errorf("store: wal encode: %w", err)
			}
			if recs[i].O, err = s.Dict.Decode(del.o); err != nil {
				return fmt.Errorf("store: wal encode: %w", err)
			}
		}
	}
	d.pending = d.pending[:0]
	n, fsyncDur, err := d.log.AppendBatch(recs, epoch)
	d.met.walAppends.Add(1)
	d.met.walBytes.Add(n)
	if d.fsync {
		d.met.fsyncCount.Add(1)
		d.met.fsyncNanos.Add(int64(fsyncDur))
		sec := fsyncDur.Seconds()
		bi := len(FsyncBuckets)
		for i, ub := range FsyncBuckets {
			if sec <= ub {
				bi = i
				break
			}
		}
		d.met.fsyncHist[bi].Add(1)
	}
	if err != nil {
		return fmt.Errorf("store: wal append (epoch %d): %w", epoch, err)
	}
	return nil
}

// maybeSnapshotLocked finishes a completed background snapshot (WAL
// rotation + file retirement) and starts a new one when the epoch
// interval has elapsed. Caller holds the store write lock.
func (s *Store) maybeSnapshotLocked(epoch uint64) {
	d := s.dur
	d.doneMu.Lock()
	done := d.doneEpoch
	d.doneEpoch = 0
	d.doneMu.Unlock()
	if done != 0 {
		s.rotateLocked(epoch)
	}
	if d.every <= 0 || epoch-d.lastSnapEpoch.Load() < uint64(d.every) {
		return
	}
	if !d.snapInFlight.CompareAndSwap(false, true) {
		return
	}
	sn := s.snap.Load()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		err := s.writeSnapshot(sn)
		if err == nil {
			d.doneMu.Lock()
			d.doneEpoch = sn.Epoch()
			d.doneMu.Unlock()
		}
		d.snapInFlight.Store(false)
	}()
}

// rotateLocked closes the current WAL segment and opens a fresh one
// based at the current epoch (every batch in the old segment has epoch
// ≤ the new base), then retires files made obsolete by the snapshot.
func (s *Store) rotateLocked(epoch uint64) {
	d := s.dur
	nl, err := wal.OpenSegment(filepath.Join(d.dir, wal.SegmentName(epoch)), d.fsync)
	if err != nil {
		return // keep appending to the old segment; retry after the next snapshot
	}
	_ = d.log.Close()
	d.log = nl
	s.cleanupLocked()
}

// cleanupLocked retires obsolete files: all but the newest two
// snapshots, and every WAL segment whose batches are all covered by
// the OLDER retained snapshot (a segment's batches all have epoch ≤
// the next segment's base). Keeping two snapshots plus that WAL suffix
// makes recovery single-fault tolerant: if the newest snapshot file is
// corrupt, the older one plus the retained segments still reach the
// same epochs.
func (s *Store) cleanupLocked() {
	d := s.dur
	snaps, err := listSnapshots(d.dir)
	if err != nil {
		return
	}
	for len(snaps) > 2 {
		_ = os.Remove(snaps[0].path)
		snaps = snaps[1:]
	}
	if len(snaps) < 2 {
		return // one snapshot only: keep the full WAL as its fallback
	}
	older := snaps[len(snaps)-2].epoch
	segs, err := wal.ListSegments(d.dir)
	if err != nil {
		return
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].Base <= older {
			_ = os.Remove(segs[i].Path)
		}
	}
}

// Close flushes and closes the durability layer: waits for any
// in-flight background snapshot, writes a final snapshot when the
// published epoch is newer than the last on disk, retires obsolete
// files and closes the WAL. A store without durability returns nil
// immediately. Close is idempotent; writers after Close keep mutating
// memory but their publishes return an error.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	s.dur.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dur
	if d.closed {
		return nil
	}
	d.closed = true
	var firstErr error
	if sn := s.snap.Load(); sn != nil && sn.Epoch() > d.lastSnapEpoch.Load() {
		if err := s.writeSnapshot(sn); err != nil {
			firstErr = err
		}
	}
	s.cleanupLocked()
	if err := d.log.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ---------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------

// snapMagic heads every snapshot file; a version bump changes it.
const snapMagic = "D2RSNAP2" // v2: marker-tagged (packed/dense) chunk payloads in table sections

func snapName(epoch uint64) string { return fmt.Sprintf("snap-%020d.snap", epoch) }

type snapInfo struct {
	path  string
	epoch uint64
}

// listSnapshots returns the snapshot files in dir ordered by epoch.
func listSnapshots(dir string) ([]snapInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		var epoch uint64
		if _, err := fmt.Sscanf(name, "snap-%020d.snap", &epoch); err != nil {
			continue
		}
		snaps = append(snaps, snapInfo{path: filepath.Join(dir, name), epoch: epoch})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].epoch < snaps[j].epoch })
	return snaps, nil
}

// writeSnapshot serializes the frozen snapshot sn (plus the dictionary
// and config header) and writes it atomically as snap-<epoch>.snap:
// temp file, fsync, rename, directory fsync. Safe off the store lock —
// sn's tables are immutable and the dictionary is append-only.
func (s *Store) writeSnapshot(sn *Snapshot) error {
	d := s.dur
	start := time.Now()
	buf, err := s.encodeSnapshotFile(sn)
	if err == nil {
		err = writeFileAtomic(d.dir, snapName(sn.Epoch()), buf)
	}
	if err != nil {
		d.met.snapErrors.Add(1)
		return fmt.Errorf("store: snapshot (epoch %d): %w", sn.Epoch(), err)
	}
	d.met.snapWrites.Add(1)
	d.met.snapNanos.Add(int64(time.Since(start)))
	d.lastSnapEpoch.Store(sn.Epoch())
	return nil
}

func (s *Store) encodeSnapshotFile(sn *Snapshot) ([]byte, error) {
	buf := []byte(snapMagic)
	buf = binary.LittleEndian.AppendUint64(buf, sn.Epoch())
	buf = binary.AppendUvarint(buf, uint64(s.Opts.K))
	buf = binary.AppendUvarint(buf, uint64(s.Opts.KReverse))
	terms, nextLid := s.Dict.SnapshotState()
	buf = binary.AppendUvarint(buf, uint64(len(terms)))
	for _, t := range terms {
		k := t.Key()
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	buf = binary.AppendUvarint(buf, uint64(nextLid-dict.LidBase))
	for _, t := range []*rel.Table{sn.dph, sn.ds, sn.rph, sn.rs} {
		blob, err := t.EncodeSnapshot(nil)
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	crc := crc32.Checksum(buf, crc32.MakeTable(crc32.Castagnoli))
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf, nil
}

// writeFileAtomic writes data to dir/name via a temp file + rename so
// a crash mid-write never leaves a half-written file under the final
// name, and fsyncs both file and directory.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	if df, err := os.Open(dir); err == nil {
		_ = df.Sync()
		_ = df.Close()
	}
	return nil
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

// openDurableLocked brings the store up from the data directory:
// newest valid snapshot, WAL replay, log repair, and the open append
// segment. Called from New with the write lock held, before the dur
// handle is installed (so replay's inserts/deletes don't re-log).
func (s *Store) openDurableLocked(opts Durability) error {
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return err
	}
	start := time.Now()
	snapEpoch, err := s.loadNewestSnapshotLocked(opts.Dir)
	if err != nil {
		return err
	}
	if snapEpoch > 0 {
		s.epoch.Store(snapEpoch)
	} else {
		// Base state: the empty store at epoch 1 (what New's initial
		// publish establishes), so WAL batches start at epoch 2.
		s.epoch.Store(1)
	}
	replayed, truncated, lastSegPath, err := s.replayWALLocked(opts.Dir)
	if err != nil {
		return err
	}
	s.installLocked(s.epoch.Load())
	if lastSegPath == "" {
		lastSegPath = filepath.Join(opts.Dir, wal.SegmentName(s.epoch.Load()))
	}
	log, err := wal.OpenSegment(lastSegPath, opts.Fsync)
	if err != nil {
		return err
	}
	d := &durableState{dir: opts.Dir, fsync: opts.Fsync, every: opts.SnapshotEvery, log: log}
	d.lastSnapEpoch.Store(snapEpoch)
	d.met.truncated.Store(truncated)
	d.met.replayRecs.Store(replayed)
	d.met.recoverNanos.Store(int64(time.Since(start)))
	s.dur = d
	return nil
}

// loadNewestSnapshotLocked tries snapshot files newest-first, fully
// validating each (whole-file CRC32C plus structural decode) before
// installing it, and returns the epoch of the one installed (0 when
// none). Invalid files are deleted so the retention accounting stays
// truthful; a CRC-valid file whose config disagrees with the store
// options is a hard error, not corruption.
func (s *Store) loadNewestSnapshotLocked(dir string) (uint64, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return 0, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		ok, err := s.tryLoadSnapshotLocked(snaps[i])
		if err != nil {
			return 0, err
		}
		if ok {
			return snaps[i].epoch, nil
		}
		s.resetContentLocked()
		_ = os.Remove(snaps[i].path)
	}
	return 0, nil
}

// tryLoadSnapshotLocked validates and installs one snapshot file.
// Returns (false, nil) for corruption (caller falls back), and a
// non-nil error only for environmental problems or config mismatch.
func (s *Store) tryLoadSnapshotLocked(si snapInfo) (bool, error) {
	data, err := os.ReadFile(si.path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if len(data) < len(snapMagic)+8+4 || string(data[:len(snapMagic)]) != snapMagic {
		return false, nil
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != binary.LittleEndian.Uint32(tail) {
		return false, nil
	}
	c := &snapCursor{data: body, off: len(snapMagic)}
	epoch := c.u64()
	k := c.uvarint()
	kRev := c.uvarint()
	if c.err != nil || epoch != si.epoch {
		return false, nil
	}
	if k != uint64(s.Opts.K) || kRev != uint64(s.Opts.KReverse) {
		return false, fmt.Errorf("store: snapshot %s was written with K=%d/KReverse=%d; store opened with K=%d/KReverse=%d",
			filepath.Base(si.path), k, kRev, s.Opts.K, s.Opts.KReverse)
	}
	nterms := c.uvarint()
	if nterms > uint64(c.remaining()) {
		return false, nil
	}
	terms := make([]rdf.Term, 0, nterms)
	for i := uint64(0); i < nterms && c.err == nil; i++ {
		kl := c.uvarint()
		if kl > uint64(c.remaining()) {
			return false, nil
		}
		t, terr := rdf.TermFromKey(string(c.bytes(int(kl))))
		if terr != nil {
			return false, nil
		}
		terms = append(terms, t)
	}
	nextLid := int64(c.uvarint()) + dict.LidBase
	if c.err != nil || nextLid < dict.LidBase {
		return false, nil
	}
	if err := s.Dict.Restore(terms, nextLid); err != nil {
		return false, nil
	}
	for _, t := range []*rel.Table{s.dph, s.ds, s.rph, s.rs} {
		bl := c.uvarint()
		if c.err != nil || bl > uint64(c.remaining()) {
			return false, nil
		}
		if err := t.DecodeSnapshot(c.bytes(int(bl))); err != nil {
			return false, nil
		}
	}
	if c.err != nil || c.remaining() != 0 {
		return false, nil
	}
	for _, idx := range []struct {
		t    *rel.Table
		cols []string
	}{
		{s.dph, []string{"entry"}},
		{s.rph, []string{"entry"}},
		{s.ds, []string{"lid", "elm"}},
		{s.rs, []string{"lid", "elm"}},
	} {
		for _, col := range idx.cols {
			if err := idx.t.CreateIndex(col); err != nil {
				return false, err
			}
		}
	}
	if err := s.rebuildDerivedLocked(); err != nil {
		return false, nil // structurally inconsistent content: treat as corrupt
	}
	return true, nil
}

// snapCursor is the snapshot-file twin of rel's decode cursor.
type snapCursor struct {
	data []byte
	off  int
	err  error
}

func (c *snapCursor) remaining() int { return len(c.data) - c.off }

func (c *snapCursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("store: snapshot truncated")
	}
}

func (c *snapCursor) u64() uint64 {
	if c.err != nil || c.remaining() < 8 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v
}

func (c *snapCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *snapCursor) bytes(n int) []byte {
	if c.err != nil || n < 0 || n > c.remaining() {
		c.fail()
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

// resetContentLocked returns the store to empty after a failed
// snapshot install so the next candidate decodes into clean tables.
func (s *Store) resetContentLocked() {
	for _, t := range []*rel.Table{s.dph, s.ds, s.rph, s.rs} {
		t.Clear()
	}
	s.direct.resetState()
	s.reverse.resetState()
	s.stats.reset()
	_ = s.Dict.Restore(nil, dict.LidBase)
}

// rebuildDerivedLocked reconstructs every piece of in-memory state the
// snapshot file does not persist, by scanning the decoded relations:
// per-entity row registries, spill flags, lid membership sets,
// statistics, and the exact-live spill/multi predicate markers. The
// last point is the delete-reclamation half of the snapshot path: the
// live store keeps those markers conservatively stale across deletes
// (see delete.go), but a snapshot round-trip recomputes them from the
// surviving rows, so dead spill entries do not persist forever.
func (s *Store) rebuildDerivedLocked() error {
	if err := s.rebuildSideLocked(s.direct, true); err != nil {
		return err
	}
	return s.rebuildSideLocked(s.reverse, false)
}

func (s *Store) rebuildSideLocked(d *side, recordStats bool) error {
	// lid → member set from the secondary relation. Dead (tombstoned)
	// rows were masked to all-NULL by the snapshot encoder.
	lidMembers := make(map[int64]map[int64]bool)
	for i, n := 0, d.secondary.Len(); i < n; i++ {
		lv := d.secondary.CellAt(i, 0)
		if lv.K != rel.KindInt {
			continue
		}
		ev := d.secondary.CellAt(i, 1)
		if ev.K != rel.KindInt {
			return fmt.Errorf("store: recovery: %s row %d has lid without member", d.secondary.Name, i)
		}
		m := lidMembers[lv.I]
		if m == nil {
			m = make(map[int64]bool)
			lidMembers[lv.I] = m
		}
		m[ev.I] = true
	}
	for i, n := 0, d.primary.Len(); i < n; i++ {
		ev := d.primary.CellAt(i, 0)
		if ev.K != rel.KindInt {
			continue // dead row
		}
		entity := ev.I
		sh := d.shard(entity)
		sh.entityRows[entity] = append(sh.entityRows[entity], i)
		if sv := d.primary.CellAt(i, 1); sv.K == rel.KindInt && sv.I == 1 {
			sh.spilled[entity] = true
		}
		for c := 0; c < d.k; c++ {
			pv := d.primary.CellAt(i, 2+2*c)
			if pv.K != rel.KindInt {
				continue
			}
			vv := d.primary.CellAt(i, 2+2*c+1)
			if vv.K != rel.KindInt {
				return fmt.Errorf("store: recovery: %s row %d has predicate without value", d.primary.Name, i)
			}
			if dict.IsLid(vv.I) {
				members := lidMembers[vv.I]
				if len(members) == 0 {
					return fmt.Errorf("store: recovery: %s row %d references empty lid %d", d.primary.Name, i, vv.I)
				}
				sh.lidSets[vv.I] = members
				d.multiPreds[pv.I] = true
				if recordStats {
					for m := range members {
						s.stats.record(entity, pv.I, m)
					}
				}
			} else if recordStats {
				s.stats.record(entity, pv.I, vv.I)
			}
		}
	}
	// Exact-live spill state from the rebuilt registries.
	spillCount := 0
	for _, sh := range d.shards {
		for entity, rows := range sh.entityRows {
			if len(rows) > 1 {
				spillCount += len(rows) - 1
			}
			if !sh.spilled[entity] {
				continue
			}
			for _, ri := range rows {
				for c := 0; c < d.k; c++ {
					if pv := d.primary.CellAt(ri, 2+2*c); pv.K == rel.KindInt {
						d.spillPreds[pv.I] = true
					}
				}
			}
		}
	}
	d.spillCount = spillCount
	return nil
}

// replayWALLocked replays committed WAL batches with epochs after the
// recovered snapshot, in segment order, requiring epoch contiguity.
// The first torn record, checksum failure, or epoch gap ends replay;
// the log is repaired there (the segment truncated at the last
// consumed batch boundary, later segments removed). Returns the number
// of replayed records, the number of discarded (truncated) records,
// and the path of the last retained segment ("" when none).
func (s *Store) replayWALLocked(dir string) (replayed, truncated uint64, lastSegPath string, err error) {
	segs, err := wal.ListSegments(dir)
	if err != nil || len(segs) == 0 {
		return 0, 0, "", err
	}
	cur := s.epoch.Load()
	stopSeg, stopOff := -1, int64(0)
	// Runs of contiguous insert-only batches are coalesced and flushed
	// through the partitioned bulk-load path (parallel.go) instead of
	// one insertLocked per record: recovery of an insert-heavy log
	// becomes a sequence of entity-sharded parallel loads. This is
	// sound because an insert is only ever logged when it was fresh, so
	// within a run (no deletes, no clears) the triples are distinct and
	// absent from the store — exactly the bulk-load contract — and a
	// flush happens before any non-insert batch is applied, preserving
	// operation order. Epochs still advance batch by batch.
	var pending []rdf.Triple
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if len(pending) >= replayBulkMin {
			w := normWorkers(0)
			if _, err := s.bulkLoadLocked(s.encodeSlice(pending, w), w); err != nil {
				return err
			}
		} else {
			for _, t := range pending {
				if _, err := s.insertLocked(t); err != nil {
					return err
				}
			}
		}
		pending = pending[:0]
		return nil
	}
	for si, seg := range segs {
		data, rerr := os.ReadFile(seg.Path)
		if rerr != nil {
			return replayed, truncated, "", rerr
		}
		batches, valid, disc := wal.ReadSegment(data)
		var consumed int64
		stopped := false
		for bi, b := range batches {
			if b.Epoch <= cur {
				consumed = b.End
				continue
			}
			if b.Epoch != cur+1 {
				for _, rb := range batches[bi:] {
					truncated += uint64(len(rb.Recs))
				}
				stopped = true
				break
			}
			if batchInsertOnly(b) {
				for _, r := range b.Recs {
					pending = append(pending, rdf.Triple{S: r.S, P: r.P, O: r.O})
				}
			} else {
				if aerr := flush(); aerr != nil {
					return replayed, truncated, "", aerr
				}
				if aerr := s.applyBatchLocked(b); aerr != nil {
					return replayed, truncated, "", aerr
				}
			}
			replayed += uint64(len(b.Recs))
			cur++
			consumed = b.End
		}
		if !stopped && valid < int64(len(data)) {
			truncated += uint64(disc)
			stopped = true
		}
		if stopped {
			stopSeg, stopOff = si, consumed
			// Everything in later segments is unreachable once this
			// one stops; count it as discarded.
			for _, later := range segs[si+1:] {
				if ld, lerr := os.ReadFile(later.Path); lerr == nil {
					lb, _, ldisc := wal.ReadSegment(ld)
					truncated += uint64(ldisc)
					for _, rb := range lb {
						truncated += uint64(len(rb.Recs))
					}
				}
			}
			break
		}
	}
	if ferr := flush(); ferr != nil {
		return replayed, truncated, "", ferr
	}
	s.epoch.Store(cur)
	if stopSeg >= 0 {
		if terr := os.Truncate(segs[stopSeg].Path, stopOff); terr != nil {
			return replayed, truncated, "", terr
		}
		for _, seg := range segs[stopSeg+1:] {
			if rerr := os.Remove(seg.Path); rerr != nil {
				return replayed, truncated, "", rerr
			}
		}
		segs = segs[:stopSeg+1]
	}
	return replayed, truncated, segs[len(segs)-1].Path, nil
}

// replayBulkMin is the coalesced-insert run length below which replay
// falls back to sequential insertLocked calls: sharding and worker
// startup don't pay for themselves under a chunk of rows.
const replayBulkMin = 1024

// batchInsertOnly reports whether every record of the batch is an
// insert, making it eligible for replay coalescing.
func batchInsertOnly(b wal.Batch) bool {
	for _, r := range b.Recs {
		if r.Op != wal.OpInsert {
			return false
		}
	}
	return true
}

// applyBatchLocked replays one committed batch through the ordinary
// insert/delete machinery. The dur handle is not yet installed, so
// nothing is re-logged.
func (s *Store) applyBatchLocked(b wal.Batch) error {
	for _, r := range b.Recs {
		switch r.Op {
		case wal.OpInsert:
			if _, err := s.insertLocked(rdf.Triple{S: r.S, P: r.P, O: r.O}); err != nil {
				return err
			}
		case wal.OpDelete:
			if _, err := s.deleteLocked(rdf.Triple{S: r.S, P: r.P, O: r.O}); err != nil {
				return err
			}
		case wal.OpClear:
			s.ClearLocked()
		default:
			return fmt.Errorf("store: wal replay: unexpected op %d", r.Op)
		}
	}
	return nil
}
