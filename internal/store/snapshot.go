package store

import (
	"fmt"

	"db2rdf/internal/coloring"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
)

// Snapshot publication (DESIGN.md §8). Every successful writer, while
// still holding the store write lock, freezes the current state into a
// Snapshot — an immutable bundle of the frozen relational database
// (rel.DB.Publish), the predicate-keyed translator inputs (spill and
// multi-value sets), the entity counts, and the new epoch — and
// publishes it with one atomic pointer swap. Readers load the pointer
// once and run the whole query against that snapshot without ever
// touching the store-level lock: a bulk load on another goroutine can
// proceed concurrently and its partial state is invisible until its
// own publish.
//
// The captured spill/multi maps are shared with the live side until a
// writer next mutates them; the predShared flag makes that mutation
// clone first (copy-on-write under predMu), so a published map is
// never written again.
//
// Memory reclamation is garbage collection: when the last query using
// an old snapshot returns, the snapshot — and every chunk version
// superseded since — becomes unreachable.

// Snapshot is one immutable published version of the store. All
// methods are safe for unlimited concurrent use without any store
// locking. The zero-db ("live") variant returned by LiveSnapshot
// instead reads the live state and is only for callers already
// holding the store write lock (the SPARQL Update WHERE path).
type Snapshot struct {
	store *Store
	epoch uint64
	db    *rel.DB // frozen database; nil = live fallback

	dph, ds, rph, rs *rel.Table // frozen relations (nil on live)

	dirSpill, revSpill           map[int64]bool
	dirMulti, revMulti           map[int64]bool
	dirSpillCount, revSpillCount int
	dirEntities, revEntities     int
}

// Snapshot returns the most recently published snapshot. It never
// blocks and never returns nil once New has run.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// LiveSnapshot returns a pass-through snapshot reading the live store
// state. The caller must hold the store write lock for its whole
// lifetime: the SPARQL Update path uses it so DELETE/INSERT ... WHERE
// evaluation sees its own earlier mutations within one request.
func (s *Store) LiveSnapshot() *Snapshot {
	return &Snapshot{store: s, epoch: s.epoch.Load()}
}

// publishLocked advances the epoch and publishes a fresh snapshot of
// the current state. The caller holds the store write lock and has
// actually changed store content (the epoch-iff-changed discipline: a
// no-op write publishes nothing, so cached plans and the snapshot both
// stay valid).
//
// With durability enabled the epoch's captured deltas are appended to
// the WAL — and fsynced, when configured — BEFORE the snapshot swap,
// so any state a reader can observe is already logged. A WAL failure
// still publishes (the memory mutation has happened and must become
// visible) and surfaces the error to the writer; durability is
// degraded from that epoch until the append path recovers.
func (s *Store) publishLocked() error {
	epoch := s.epoch.Add(1)
	var werr error
	if d := s.dur; d != nil {
		if d.closed {
			d.pending = d.pending[:0]
			werr = fmt.Errorf("store: publish at epoch %d: store is closed", epoch)
		} else {
			werr = s.walCommitLocked(epoch)
		}
	}
	s.installLocked(epoch)
	if d := s.dur; d != nil && !d.closed {
		s.maybeSnapshotLocked(epoch)
	}
	return werr
}

// installLocked freezes the current state into a Snapshot at the given
// epoch and publishes it with one atomic pointer swap. Recovery calls
// it directly (the recovered epoch is re-published, not advanced).
func (s *Store) installLocked(epoch uint64) {
	preCompactions := s.Compactions()
	db := s.DB.Publish()
	if s.markerDeletes > 0 && s.Compactions() > preCompactions {
		// This publish compacted chunks after delete churn: recompute
		// the conservatively-stale spill/multi markers exactly, so the
		// snapshot (and every plan compiled against its epoch) sees the
		// same translator inputs a restarted store would.
		s.direct.recomputeMarkersLocked()
		s.reverse.recomputeMarkersLocked()
		s.markerDeletes = 0
	}
	sn := &Snapshot{store: s, epoch: epoch, db: db}
	sn.dph = sn.db.Table(s.TableName("DPH"))
	sn.ds = sn.db.Table(s.TableName("DS"))
	sn.rph = sn.db.Table(s.TableName("RPH"))
	sn.rs = sn.db.Table(s.TableName("RS"))
	sn.dirSpill, sn.dirMulti, sn.dirSpillCount = s.direct.capturePreds()
	sn.revSpill, sn.revMulti, sn.revSpillCount = s.reverse.capturePreds()
	sn.dirEntities = s.direct.entityCount()
	sn.revEntities = s.reverse.entityCount()
	s.snap.Store(sn)
}

// PublishLocked is publishLocked for package db2rdf's update path,
// which batches many mutations under one Lock/Unlock and publishes
// exactly once iff anything changed.
func (s *Store) PublishLocked() error { return s.publishLocked() }

// capturePreds hands out the side's predicate-keyed maps for a
// snapshot, marking them shared so the next writer mutation clones
// them first.
func (d *side) capturePreds() (spill, multi map[int64]bool, spillCount int) {
	d.predMu.Lock()
	defer d.predMu.Unlock()
	d.predShared = true
	return d.spillPreds, d.multiPreds, d.spillCount
}

// entityCount counts distinct entities across the side's shards; the
// caller holds the store write lock.
func (d *side) entityCount() int {
	n := 0
	for _, sh := range d.shards {
		n += len(sh.entityRows)
	}
	return n
}

// Live reports whether this is a pass-through snapshot of the live
// store (write-lock callers only). Live results must not be cached
// against the snapshot epoch: mid-update content is newer than the
// published state of the same epoch.
func (sn *Snapshot) Live() bool { return sn.db == nil }

// Epoch returns the store epoch this snapshot was published at.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// DB returns the relational database to execute against: the frozen
// copy, or the live database for a write-lock pass-through. Per-query
// temp tables (property-path closures) may be created in and dropped
// from a frozen DB under its own mutex; its store relations are
// immutable.
func (sn *Snapshot) DB() *rel.DB {
	if sn.db == nil {
		return sn.store.DB
	}
	return sn.db
}

// TableName returns the prefixed name of one of the store's relations.
func (sn *Snapshot) TableName(base string) string { return sn.store.TableName(base) }

// Mapping returns the predicate-to-column mapping of one side (fixed
// at store creation, never mutated).
func (sn *Snapshot) Mapping(reverse bool) coloring.Mapping { return sn.store.Mapping(reverse) }

// K returns the column-pair budget of one side.
func (sn *Snapshot) K(reverse bool) int { return sn.store.K(reverse) }

// LookupID resolves a term against the store dictionary (internally
// synchronized and append-only: an id interned after this snapshot
// cannot occur in the snapshot's relations, so a hit merely yields an
// id matching nothing — a correct empty result).
func (sn *Snapshot) LookupID(t rdf.Term) (int64, bool) { return sn.store.Dict.Lookup(t) }

// EncodeID interns a term (the dictionary is shared and append-only,
// so interning from the read path is safe and ids are stable).
func (sn *Snapshot) EncodeID(t rdf.Term) int64 { return sn.store.Dict.Encode(t) }

// Decode resolves an id from this snapshot's relations to its term
// (lock-free on the published dictionary version).
func (sn *Snapshot) Decode(id int64) (rdf.Term, error) { return sn.store.Dict.Decode(id) }

// SpillPredicates returns the spill-involved predicate set of one side
// as of this snapshot. The returned map is immutable (copy-on-write on
// the writer side).
func (sn *Snapshot) SpillPredicates(reverse bool) map[int64]bool {
	if sn.db == nil {
		return sn.store.SpillPredicates(reverse)
	}
	if reverse {
		return sn.revSpill
	}
	return sn.dirSpill
}

// MultiValued reports whether the predicate held a DS/RS list on the
// given side as of this snapshot.
func (sn *Snapshot) MultiValued(pid int64, reverse bool) bool {
	if sn.db == nil {
		return sn.store.MultiValued(pid, reverse)
	}
	if reverse {
		return sn.revMulti[pid]
	}
	return sn.dirMulti[pid]
}

// AnyMultiValued reports whether any predicate on the given side was
// multi-valued as of this snapshot.
func (sn *Snapshot) AnyMultiValued(reverse bool) bool {
	if sn.db == nil {
		return sn.store.AnyMultiValued(reverse)
	}
	if reverse {
		return len(sn.revMulti) > 0
	}
	return len(sn.dirMulti) > 0
}

// SpillCount returns the number of spill rows on one side as of this
// snapshot.
func (sn *Snapshot) SpillCount(reverse bool) int {
	if sn.db == nil {
		return sn.store.SpillCount(reverse)
	}
	if reverse {
		return sn.revSpillCount
	}
	return sn.dirSpillCount
}

// EntityCount returns the number of distinct entities on one side as
// of this snapshot.
func (sn *Snapshot) EntityCount(reverse bool) int {
	if sn.db == nil {
		return sn.store.EntityCount(reverse)
	}
	if reverse {
		return sn.revEntities
	}
	return sn.dirEntities
}

// TableBytes returns the resident size of the four frozen relations
// (shared chunk data is counted once — the frozen directories point at
// the same chunks the live table serves).
func (sn *Snapshot) TableBytes() int64 {
	if sn.db == nil {
		return sn.store.TableBytes()
	}
	var total int64
	for _, t := range []*rel.Table{sn.dph, sn.ds, sn.rph, sn.rs} {
		if t != nil {
			total += t.ResidentBytes()
		}
	}
	return total
}

// DictBytes returns the resident size of the dictionary's id→term
// store. The dictionary is shared (append-only) rather than frozen, so
// this reads the live store's dictionary.
func (sn *Snapshot) DictBytes() int64 { return sn.store.Dict.ResidentBytes() }

// StorageBytes returns the total resident data footprint as of this
// snapshot: the four relations plus the dictionary's id→term store.
func (sn *Snapshot) StorageBytes() int64 {
	return sn.TableBytes() + sn.DictBytes()
}

// StatsView returns the optimizer statistics view. Statistics guide
// plan choice only, never correctness, so they read the live
// (internally synchronized) collector.
func (sn *Snapshot) StatsView() *StatsView { return sn.store.StatsView() }
