package store

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"db2rdf/internal/dict"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/wal"
)

// Parallel bulk loading. The loader is a three-stage pipeline:
//
//  1. parse + dictionary-encode on worker goroutines (the dictionary is
//     internally synchronized, so workers intern terms concurrently);
//  2. partition the encoded triples by entity id — the direct side by
//     subject, the reverse side by object — so that all triples of one
//     entity land in exactly one bucket;
//  3. insert the buckets concurrently: one goroutine per bucket per
//     side. Because a bucket owns whole entity shards, entity-keyed
//     state needs no locking; predicate-keyed state goes through the
//     side's predMu, and the shared tables are appended to in batches.
//
// Entities not seen before the load are built as rows in worker-local
// memory (filled in place, no per-update row cloning) and appended to
// DPH/RPH in one batch per bucket, which is also what makes the bulk
// path faster than the incremental path on a single core.
//
// Per-worker statistics collectors are merged at the end; duplicates
// are detected on the direct side exactly as in Insert, so a parallel
// load of already-loaded data leaves the statistics untouched.

// encTriple is a dictionary-encoded triple plus the predicate URI the
// column mapping is keyed by.
type encTriple struct {
	s, p, o int64
	pred    string
}

// encodeChunk is the number of input lines handed to an encode worker
// at a time.
const encodeChunk = 1024

// normWorkers clamps a worker count to [1, 4*GOMAXPROCS].
func normWorkers(w int) int {
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if max := 4 * runtime.GOMAXPROCS(0); w > max && w > 4 {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// LoadParallel reads N-Triples from r and bulk-loads them using the
// given number of workers (<=0 means GOMAXPROCS). It returns the
// number of triples parsed. Unlike Load, a parse error aborts the load
// before any triple is inserted. The resulting store state is
// equivalent to a sequential Load of the same data: identical
// statistics and identical (canonically sorted) export.
func (s *Store) LoadParallel(r io.Reader, workers int) (int, error) {
	workers = normWorkers(workers)
	s.mu.Lock()
	defer s.mu.Unlock()
	enc, err := s.encodeStream(r, workers)
	if err != nil {
		return 0, err
	}
	fresh, err := s.bulkLoadLocked(enc, workers)
	if fresh > 0 {
		if perr := s.publishLocked(); perr != nil && err == nil {
			err = perr
		}
	}
	return len(enc), err
}

// LoadTriplesParallel bulk-loads a slice of triples with the given
// number of workers (<=0 means GOMAXPROCS).
func (s *Store) LoadTriplesParallel(ts []rdf.Triple, workers int) error {
	workers = normWorkers(workers)
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := s.encodeSlice(ts, workers)
	fresh, err := s.bulkLoadLocked(enc, workers)
	if fresh > 0 {
		if perr := s.publishLocked(); perr != nil && err == nil {
			err = perr
		}
	}
	return err
}

// lineChunk is one dispatch unit of the encode pipeline: a run of
// input lines plus the 1-based line number of the first, so a worker
// can report errors by absolute input position.
type lineChunk struct {
	base  int
	lines []string
}

// encodeErrs tracks the earliest parse error across encode workers.
// minLine doubles as the cheap abort signal: the scanner polls it to
// stop dispatching, and workers use it to skip queued chunks that lie
// entirely after the known-first error.
type encodeErrs struct {
	minLine atomic.Int64 // math.MaxInt64 = no error yet
	mu      sync.Mutex
	line    int
	err     error
}

func (e *encodeErrs) record(line int, err error) {
	e.mu.Lock()
	if e.err == nil || line < e.line {
		e.line, e.err = line, err
	}
	e.mu.Unlock()
	for {
		cur := e.minLine.Load()
		if int64(line) >= cur || e.minLine.CompareAndSwap(cur, int64(line)) {
			return
		}
	}
}

// encodeStream parses and encodes N-Triples concurrently. Lines are
// scanned sequentially (the scanner is the only stage that must be
// serial) and dispatched to workers in chunks.
//
// Error handling: the first parse error (by input line, not by which
// worker happened to hit it first) aborts the load. The scanner stops
// dispatching, already-queued chunks positioned after the error are
// drained without parsing, and the channel is closed so every worker
// exits — no goroutine outlives the call. Chunks before the error are
// still parsed, which is what makes "first" deterministic: an earlier
// error in a slower worker's queue always wins.
func (s *Store) encodeStream(r io.Reader, workers int) ([]encTriple, error) {
	in := make(chan lineChunk, workers)
	parts := make([][]encTriple, workers)
	ee := &encodeErrs{}
	ee.minLine.Store(math.MaxInt64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]encTriple, 0, encodeChunk)
			for chunk := range in {
				if int64(chunk.base) > ee.minLine.Load() {
					continue // wholly after the first known error: drain
				}
				for i, line := range chunk.lines {
					line = strings.TrimSpace(line)
					if line == "" || strings.HasPrefix(line, "#") {
						continue
					}
					t, err := rdf.ParseTripleLine(line)
					if err != nil {
						ee.record(chunk.base+i, err)
						break
					}
					local = append(local, s.encodeTriple(t))
				}
			}
			parts[w] = local
		}(w)
	}

	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	chunk := make([]string, 0, encodeChunk)
	base, lineNo := 1, 0
	aborted := false
	for scan.Scan() {
		if ee.minLine.Load() != math.MaxInt64 {
			aborted = true
			break
		}
		lineNo++
		if len(chunk) == 0 {
			base = lineNo
		}
		chunk = append(chunk, scan.Text())
		if len(chunk) == encodeChunk {
			in <- lineChunk{base: base, lines: chunk}
			chunk = make([]string, 0, encodeChunk)
		}
	}
	if len(chunk) > 0 && !aborted {
		in <- lineChunk{base: base, lines: chunk}
	}
	close(in)
	wg.Wait()
	if ee.err != nil {
		return nil, fmt.Errorf("line %d: %w", ee.line, ee.err)
	}
	if err := scan.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	enc := make([]encTriple, 0, total)
	for _, p := range parts {
		enc = append(enc, p...)
	}
	return enc, nil
}

// encodeSlice encodes a triple slice in parallel over index ranges.
func (s *Store) encodeSlice(ts []rdf.Triple, workers int) []encTriple {
	enc := make([]encTriple, len(ts))
	if len(ts) == 0 {
		return enc
	}
	var wg sync.WaitGroup
	stride := (len(ts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * stride
		if lo >= len(ts) {
			break
		}
		hi := lo + stride
		if hi > len(ts) {
			hi = len(ts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				enc[i] = s.encodeTriple(ts[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return enc
}

func (s *Store) encodeTriple(t rdf.Triple) encTriple {
	return encTriple{
		s:    s.Dict.Encode(t.S),
		p:    s.Dict.Encode(t.P),
		o:    s.Dict.Encode(t.O),
		pred: t.P.Value,
	}
}

// bulkLoadLocked partitions encoded triples by entity and inserts the
// buckets concurrently, returning the number of fresh (non-duplicate)
// triples so the caller can decide whether to bump the epoch. The
// caller holds the store write lock. The count may overstate what
// landed when a bucket errors mid-append — a spurious epoch bump is
// harmless, a missed one is not.
func (s *Store) bulkLoadLocked(enc []encTriple, workers int) (int, error) {
	if len(enc) == 0 {
		return 0, nil
	}
	// Partition by state shard, then assign shards to workers: two
	// entities in the same shard always land in the same bucket, so a
	// shard is owned by exactly one goroutine per side.
	directBuckets := make([][]encTriple, workers)
	reverseBuckets := make([][]encTriple, workers)
	for _, e := range enc {
		dw := shardIndex(e.s) % workers
		rw := shardIndex(e.o) % workers
		directBuckets[dw] = append(directBuckets[dw], e)
		reverseBuckets[rw] = append(reverseBuckets[rw], e)
	}

	// A failed bucket sets abort so sibling workers stop at their next
	// entity-group boundary instead of loading on; all of them still
	// drain through wg.Wait, so no goroutine leaks. The per-worker
	// stats are merged only when every bucket succeeded, so a failed
	// load never leaves partially merged statistics behind (the first
	// error, in deterministic bucket order, is returned).
	statsParts := make([]*Stats, workers)
	freshParts := make([]int, workers)
	errs := make([]error, 2*workers)
	// Per-worker WAL delta capture (nil slots when durability is off).
	// The direct side owns capture — it is the side that detects
	// freshness — and the parts are merged in worker order below, so
	// the pending batch is deterministic for a given partition.
	var deltaParts [][]walDelta
	if s.dur != nil {
		deltaParts = make([][]walDelta, workers)
	}
	var abort atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			st := newStats(s.Opts.TopK)
			statsParts[w] = st
			var deltas *[]walDelta
			if deltaParts != nil {
				deltas = &deltaParts[w]
			}
			freshParts[w], errs[w] = s.direct.bulkInsert(s, directBuckets[w], st, false, &abort, deltas)
		}(w)
		go func(w int) {
			defer wg.Done()
			_, errs[workers+w] = s.reverse.bulkInsert(s, reverseBuckets[w], nil, true, &abort, nil)
		}(w)
	}
	wg.Wait()
	fresh := 0
	for _, f := range freshParts {
		fresh += f
	}
	// Merge captured deltas even when a bucket errored: whatever landed
	// in the tables is about to be published, so it must be logged.
	if s.dur != nil {
		for _, part := range deltaParts {
			s.dur.pending = append(s.dur.pending, part...)
		}
	}
	for _, err := range errs {
		if err != nil {
			return fresh, err
		}
	}
	for _, st := range statsParts {
		s.stats.merge(st)
	}
	return fresh, nil
}

// bulkAgg accumulates a bucket's predicate-keyed side effects so the
// side's predMu is taken once per bucket instead of once per triple.
type bulkAgg struct {
	spillPreds map[int64]bool
	multiPreds map[int64]bool
	spillCount int
}

// entityRange remembers where a freshly built entity's rows sit inside
// the bucket's pending primary-row batch.
type entityRange struct {
	entity     int64
	start, end int // indices into pending primary rows
}

// bulkInsert loads one bucket into the side, returning the number of
// fresh (non-duplicate) triples it placed. Triples of entities the
// store has never seen (the common bulk case) are built as rows in
// local memory and batch-appended; entities with existing rows fall
// back to the incremental insert path. abort is the load-wide failure
// flag: set on the first error, polled at entity-group boundaries so
// sibling buckets stop early instead of completing a doomed load.
func (d *side) bulkInsert(s *Store, bucket []encTriple, stats *Stats, reverse bool, abort *atomic.Bool, deltas *[]walDelta) (int, error) {
	if len(bucket) == 0 {
		return 0, nil
	}
	colCache := make(map[string][]int)
	colsFor := func(pred string) []int {
		cols, ok := colCache[pred]
		if !ok {
			cols = d.mapping.Columns(pred)
			colCache[pred] = cols
		}
		return cols
	}

	// Group the bucket by entity, preserving first-seen order.
	order := make([]int64, 0, len(bucket)/2)
	byEntity := make(map[int64][]encTriple, len(bucket)/2)
	for _, e := range bucket {
		ent := e.s
		if reverse {
			ent = e.o
		}
		if _, seen := byEntity[ent]; !seen {
			order = append(order, ent)
		}
		byEntity[ent] = append(byEntity[ent], e)
	}

	var pendingPrimary []rel.Row
	var pendingSecondary []rel.Row
	var ranges []entityRange
	agg := &bulkAgg{spillPreds: make(map[int64]bool), multiPreds: make(map[int64]bool)}
	freshTotal := 0

	for gi, ent := range order {
		if gi&63 == 0 && abort.Load() {
			return freshTotal, nil // a sibling bucket failed; its error is reported
		}
		encs := byEntity[ent]
		sh := d.shard(ent)
		if len(sh.entityRows[ent]) > 0 {
			// Entity already has table rows: incremental path.
			for _, e := range encs {
				entity, member := e.s, e.o
				if reverse {
					entity, member = e.o, e.s
				}
				fresh, err := d.insert(s, entity, e.p, member, e.pred)
				if err != nil {
					abort.Store(true)
					return freshTotal, err
				}
				if fresh {
					freshTotal++
					if stats != nil {
						stats.record(e.s, e.p, e.o)
					}
					if deltas != nil {
						*deltas = append(*deltas, walDelta{op: wal.OpInsert, s: e.s, p: e.p, o: e.o})
					}
				}
			}
			continue
		}
		start := len(pendingPrimary)
		for _, e := range encs {
			entity, member := e.s, e.o
			if reverse {
				entity, member = e.o, e.s
			}
			fresh, rows := d.insertLocal(s, pendingPrimary, start, sh, agg, &pendingSecondary, entity, e.p, member, colsFor(e.pred))
			pendingPrimary = rows
			if fresh {
				freshTotal++
				if stats != nil {
					stats.record(e.s, e.p, e.o)
				}
				if deltas != nil {
					*deltas = append(*deltas, walDelta{op: wal.OpInsert, s: e.s, p: e.p, o: e.o})
				}
			}
		}
		ranges = append(ranges, entityRange{entity: ent, start: start, end: len(pendingPrimary)})
	}

	// Batch-append the locally built rows and register their indices.
	if len(pendingPrimary) > 0 {
		base, err := d.primary.AppendRows(pendingPrimary)
		if err != nil {
			abort.Store(true)
			return freshTotal, err
		}
		for _, r := range ranges {
			sh := d.shard(r.entity)
			indices := make([]int, 0, r.end-r.start)
			for i := r.start; i < r.end; i++ {
				indices = append(indices, base+i)
			}
			sh.entityRows[r.entity] = indices
		}
	}
	if len(pendingSecondary) > 0 {
		if _, err := d.secondary.AppendRows(pendingSecondary); err != nil {
			abort.Store(true)
			return freshTotal, err
		}
	}

	// Fold the bucket's predicate-keyed effects into the side.
	if len(agg.spillPreds) > 0 || len(agg.multiPreds) > 0 || agg.spillCount > 0 {
		d.predMu.Lock()
		d.mutablePredsLocked()
		for pid := range agg.spillPreds {
			d.spillPreds[pid] = true
		}
		for pid := range agg.multiPreds {
			d.multiPreds[pid] = true
		}
		d.spillCount += agg.spillCount
		d.predMu.Unlock()
	}
	return freshTotal, nil
}

// insertLocal is the bulk twin of side.insert: it places
// (entity, pred) -> member into the entity's pending rows
// (rows[start:]), which live in worker-local memory and can therefore
// be filled in place. It returns whether the triple was new and the
// (possibly grown) pending row slice.
func (d *side) insertLocal(s *Store, rows []rel.Row, start int, sh *sideShard, agg *bulkAgg, secondary *[]rel.Row, entity, pid, member int64, cols []int) (bool, []rel.Row) {
	ent := rows[start:]

	// Already present? Then extend to (or within) a multi-value list.
	for _, row := range ent {
		for _, c := range cols {
			pc, vc := 2+2*c, 2+2*c+1
			if row[pc].K == rel.KindInt && row[pc].I == pid {
				cur := row[vc]
				if cur.K == rel.KindInt && dict.IsLid(cur.I) {
					lid := cur.I
					if sh.lidSets[lid][member] {
						return false, rows // duplicate triple
					}
					sh.lidSets[lid][member] = true
					*secondary = append(*secondary, rel.Row{rel.Int(lid), rel.Int(member)})
					return true, rows
				}
				if cur.K == rel.KindInt && cur.I == member {
					return false, rows // duplicate triple
				}
				// Convert single value to a list.
				agg.multiPreds[pid] = true
				lid := s.Dict.NextLid()
				sh.lidSets[lid] = map[int64]bool{cur.I: true, member: true}
				*secondary = append(*secondary, rel.Row{rel.Int(lid), cur}, rel.Row{rel.Int(lid), rel.Int(member)})
				row[vc] = rel.Int(lid)
				return true, rows
			}
		}
	}

	// Not present: find a free candidate column in an existing row.
	for _, row := range ent {
		for _, c := range cols {
			pc, vc := 2+2*c, 2+2*c+1
			if row[pc].IsNull() {
				row[pc] = rel.Int(pid)
				row[vc] = rel.Int(member)
				if sh.spilled[entity] {
					agg.spillPreds[pid] = true
				}
				return true, rows
			}
		}
	}

	// Spill: add a fresh row for the entity.
	spillFlag := int64(0)
	if len(ent) > 0 {
		spillFlag = 1
		agg.spillCount++
		agg.spillPreds[pid] = true
		if !sh.spilled[entity] {
			sh.spilled[entity] = true
			for _, row := range ent {
				for c := 0; c < d.k; c++ {
					if pv := row[2+2*c]; pv.K == rel.KindInt {
						agg.spillPreds[pv.I] = true
					}
				}
				row[1] = rel.Int(1)
			}
		}
	}
	newRow := make(rel.Row, 2+2*d.k)
	newRow[0] = rel.Int(entity)
	newRow[1] = rel.Int(spillFlag)
	c := cols[0]
	newRow[2+2*c] = rel.Int(pid)
	newRow[2+2*c+1] = rel.Int(member)
	return true, append(rows, newRow)
}
