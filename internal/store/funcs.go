package store

import (
	"fmt"
	"regexp"
	"strconv"
	"sync"

	"db2rdf/internal/dict"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
)

// RegisterSPARQLFuncs installs the dictionary-decoding scalar functions
// that generated SQL uses to evaluate SPARQL FILTER expressions and
// ORDER BY keys over dictionary-encoded columns:
//
//	dstr(id)      lexical form (IRI string, literal value, blank label)
//	dnum(id)      numeric value of a literal, NULL if non-numeric
//	dcmp(a, b)    SPARQL-ish ordering: -1/0/1, numeric before string
//	dsort(id)     sort key: numeric value when numeric, else string
//	dlang(id)     language tag ("" when absent)
//	ddt(id)       datatype IRI ("" when absent)
//	disiri(id), disliteral(id), disblank(id)  type tests
//	regexmatch(s, pattern [, flags])          regex over strings
//
// Functions return NULL on NULL input, mirroring SPARQL error
// propagation.
func (s *Store) RegisterSPARQLFuncs() { RegisterValueFuncs(s.DB, s.Dict) }

// RegisterValueFuncs installs the value functions on an arbitrary
// database/dictionary pair (shared with the baseline stores).
func RegisterValueFuncs(db *rel.DB, d *dict.Dict) {
	decode := func(v rel.Value) (rdf.Term, bool) {
		if v.K != rel.KindInt || dict.IsLid(v.I) {
			return rdf.Term{}, false
		}
		t, err := d.Decode(v.I)
		return t, err == nil
	}
	db.RegisterFunc("dstr", func(args []rel.Value) (rel.Value, error) {
		if len(args) != 1 {
			return rel.Null, fmt.Errorf("dstr: want 1 arg")
		}
		t, ok := decode(args[0])
		if !ok {
			return rel.Null, nil
		}
		return rel.Str(t.Value), nil
	})
	db.RegisterFunc("dnum", func(args []rel.Value) (rel.Value, error) {
		if len(args) != 1 {
			return rel.Null, fmt.Errorf("dnum: want 1 arg")
		}
		if args[0].K == rel.KindInt && !dict.IsLid(args[0].I) {
			t, err := d.Decode(args[0].I)
			if err != nil {
				return rel.Null, nil
			}
			if f, ok := t.Float(); ok {
				return rel.Float(f), nil
			}
			return rel.Null, nil
		}
		// Already numeric (arithmetic on literals).
		if f, ok := args[0].AsFloat(); ok {
			return rel.Float(f), nil
		}
		return rel.Null, nil
	})
	db.RegisterFunc("dsort", func(args []rel.Value) (rel.Value, error) {
		if len(args) != 1 {
			return rel.Null, fmt.Errorf("dsort: want 1 arg")
		}
		t, ok := decode(args[0])
		if !ok {
			return rel.Null, nil
		}
		if t.Kind == rdf.Literal {
			if f, err := strconv.ParseFloat(t.Value, 64); err == nil {
				return rel.Float(f), nil
			}
		}
		return rel.Str(t.Value), nil
	})
	db.RegisterFunc("dcmp", func(args []rel.Value) (rel.Value, error) {
		if len(args) != 2 {
			return rel.Null, fmt.Errorf("dcmp: want 2 args")
		}
		a, aok := decode(args[0])
		b, bok := decode(args[1])
		if !aok || !bok {
			return rel.Null, nil
		}
		return compareTerms(a, b)
	})
	db.RegisterFunc("dlang", func(args []rel.Value) (rel.Value, error) {
		t, ok := decode(args[0])
		if !ok {
			return rel.Null, nil
		}
		return rel.Str(t.Lang), nil
	})
	db.RegisterFunc("ddt", func(args []rel.Value) (rel.Value, error) {
		t, ok := decode(args[0])
		if !ok {
			return rel.Null, nil
		}
		// SPARQL 1.1 §17.4.2.7: a plain literal's datatype is
		// xsd:string; a language-tagged literal's is rdf:langString.
		dt := t.Datatype
		if t.Kind == rdf.Literal && dt == "" {
			if t.Lang != "" {
				dt = rdf.RDFLangString
			} else {
				dt = rdf.XSDString
			}
		}
		return rel.Str(dt), nil
	})
	typeTest := func(k rdf.TermKind) rel.Func {
		return func(args []rel.Value) (rel.Value, error) {
			t, ok := decode(args[0])
			if !ok {
				return rel.Null, nil
			}
			return rel.Bool(t.Kind == k), nil
		}
	}
	db.RegisterFunc("disiri", typeTest(rdf.IRI))
	db.RegisterFunc("disliteral", typeTest(rdf.Literal))
	db.RegisterFunc("disblank", typeTest(rdf.Blank))
	db.RegisterFunc("regexmatch", regexMatchFunc())
}

// compareTerms orders two terms: numbers numerically, then strings
// lexically; mixed numeric/non-numeric orders numeric first.
func compareTerms(a, b rdf.Term) (rel.Value, error) {
	af, aNum := a.Float()
	bf, bNum := b.Float()
	switch {
	case aNum && bNum:
		switch {
		case af < bf:
			return rel.Int(-1), nil
		case af > bf:
			return rel.Int(1), nil
		}
		return rel.Int(0), nil
	case aNum:
		return rel.Int(-1), nil
	case bNum:
		return rel.Int(1), nil
	}
	switch {
	case a.Value < b.Value:
		return rel.Int(-1), nil
	case a.Value > b.Value:
		return rel.Int(1), nil
	}
	return rel.Int(0), nil
}

// regexMatchFunc compiles patterns once and caches them.
func regexMatchFunc() rel.Func {
	var mu sync.Mutex
	cache := map[string]*regexp.Regexp{}
	return func(args []rel.Value) (rel.Value, error) {
		if len(args) < 2 || len(args) > 3 {
			return rel.Null, fmt.Errorf("regexmatch: want 2 or 3 args")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return rel.Null, nil
		}
		pat := args[1].S
		if len(args) == 3 && !args[2].IsNull() && args[2].S == "i" {
			pat = "(?i)" + pat
		}
		mu.Lock()
		re, ok := cache[pat]
		mu.Unlock()
		if !ok {
			var err error
			re, err = regexp.Compile(pat)
			if err != nil {
				return rel.Null, fmt.Errorf("regexmatch: %w", err)
			}
			mu.Lock()
			cache[pat] = re
			mu.Unlock()
		}
		return rel.Bool(re.MatchString(args[0].S)), nil
	}
}
