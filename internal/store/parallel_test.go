package store

import (
	"strings"
	"testing"

	"db2rdf/internal/rdf"
)

// statsByTerm renames a count map's dictionary ids to term strings, so
// collectors from stores with different id assignment orders compare.
func statsByTerm(t *testing.T, s *Store, m map[int64]int64) map[string]int64 {
	t.Helper()
	out := make(map[string]int64, len(m))
	for id, n := range m {
		term, err := s.Dict.Decode(id)
		if err != nil {
			t.Fatalf("decode %d: %v", id, err)
		}
		out[term.String()] = n
	}
	return out
}

// statsEqual compares two stores' collectors term by term (ids are
// store-local, so raw maps are not comparable).
func statsEqual(t *testing.T, label string, a, b *Store) {
	t.Helper()
	as, bs := a.Stats(), b.Stats()
	if as.total != bs.total {
		t.Errorf("%s: total %d != %d", label, as.total, bs.total)
	}
	cmp := func(name string, am, bm map[int64]int64) {
		at, bt := statsByTerm(t, a, am), statsByTerm(t, b, bm)
		if len(at) != len(bt) {
			t.Errorf("%s: %s size %d != %d", label, name, len(at), len(bt))
		}
		for term, n := range at {
			if bt[term] != n {
				t.Errorf("%s: %s[%s] = %d != %d", label, name, term, bt[term], n)
			}
		}
	}
	cmp("bySubj", as.bySubj, bs.bySubj)
	cmp("byObj", as.byObj, bs.byObj)
	cmp("byPred", as.byPred, bs.byPred)
}

// TestDuplicateLoadStats checks that re-inserting triples the store
// already holds does not skew the statistics: a triple counts once, no
// matter how many times (or through which loader) it arrives.
func TestDuplicateLoadStats(t *testing.T) {
	ts := fig1Triples()

	once := newTestStore(t, Options{K: 16})
	if err := once.LoadTriples(ts); err != nil {
		t.Fatal(err)
	}
	if got, want := once.Stats().TotalTriples(), float64(len(ts)); got != want {
		t.Fatalf("single load: total = %v, want %v", got, want)
	}

	twice := newTestStore(t, Options{K: 16})
	if err := twice.LoadTriples(ts); err != nil {
		t.Fatal(err)
	}
	if err := twice.LoadTriples(ts); err != nil {
		t.Fatal(err)
	}
	statsEqual(t, "sequential twice", once, twice)

	par := newTestStore(t, Options{K: 16})
	for i := 0; i < 2; i++ {
		if err := par.LoadTriplesParallel(ts, 4); err != nil {
			t.Fatal(err)
		}
	}
	statsEqual(t, "parallel twice", once, par)
}

// TestLoadParallelStats checks the parallel loader's merged per-worker
// statistics match a sequential load of the same triples.
func TestLoadParallelStats(t *testing.T) {
	ts := fig1Triples()
	seq := newTestStore(t, Options{K: 16})
	if err := seq.LoadTriples(ts); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		par := newTestStore(t, Options{K: 16})
		if err := par.LoadTriplesParallel(ts, workers); err != nil {
			t.Fatal(err)
		}
		statsEqual(t, "workers", seq, par)
		if got, want := par.EntityCount(false), seq.EntityCount(false); got != want {
			t.Errorf("workers=%d: direct entities %d, want %d", workers, got, want)
		}
		if got, want := par.EntityCount(true), seq.EntityCount(true); got != want {
			t.Errorf("workers=%d: reverse entities %d, want %d", workers, got, want)
		}
	}
}

// TestLoadParallelSpills drives the parallel loader through the spill
// path: more distinct predicates on one entity than k column pairs.
func TestLoadParallelSpills(t *testing.T) {
	iri := rdf.NewIRI
	var ts []rdf.Triple
	for _, subj := range []string{"e1", "e2"} {
		for _, p := range []string{"p1", "p2", "p3", "p4", "p5", "p6"} {
			ts = append(ts, rdf.NewTriple(iri(subj), iri(p), rdf.NewLiteral(subj+"-"+p)))
		}
	}
	seq := newTestStore(t, Options{K: 3})
	if err := seq.LoadTriples(ts); err != nil {
		t.Fatal(err)
	}
	par := newTestStore(t, Options{K: 3})
	if err := par.LoadTriplesParallel(ts, 4); err != nil {
		t.Fatal(err)
	}
	if seq.SpillCount(false) == 0 {
		t.Fatal("test data should spill with K=3")
	}
	if got, want := par.SpillCount(false), seq.SpillCount(false); got != want {
		t.Errorf("parallel spill count %d, want %d", got, want)
	}
	if got, want := len(par.SpillPredicates(false)), len(seq.SpillPredicates(false)); got != want {
		t.Errorf("parallel spill predicates %d, want %d", got, want)
	}
}

// TestLoadParallelBadInput checks a parse error aborts the load without
// inserting anything.
func TestLoadParallelBadInput(t *testing.T) {
	s := newTestStore(t, Options{K: 16})
	doc := "<http://a> <http://p> <http://b> .\nthis is not a triple\n"
	if _, err := s.LoadParallel(strings.NewReader(doc), 4); err == nil {
		t.Fatal("want parse error")
	}
	if got := s.Stats().TotalTriples(); got != 0 {
		t.Fatalf("failed load must not insert; stats total = %v", got)
	}
	if got := s.EntityCount(false); got != 0 {
		t.Fatalf("failed load must not insert; entities = %d", got)
	}
}
