// Package store implements the DB2RDF entity-oriented RDF store of
// Bornea et al. (SIGMOD 2013, §2): the Direct Primary Hash (DPH) and
// Direct Secondary Hash (DS) relations keyed by subject, their reverse
// twins RPH and RS keyed by object, spill handling, multi-valued
// predicate lists, predicate-to-column mappings (hash or coloring
// based), and the dataset statistics the SPARQL optimizer consumes.
package store

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"db2rdf/internal/coloring"
	"db2rdf/internal/dict"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/wal"
)

// Options configures a Store.
type Options struct {
	// K is the number of (pred_i, val_i) column pairs in DPH.
	K int
	// KReverse is the number of pairs in RPH (the paper's k'); 0 means
	// same as K.
	KReverse int
	// Mapping assigns predicates to DPH columns; nil means a 2-way
	// composed hash over K columns.
	Mapping coloring.Mapping
	// ReverseMapping assigns predicates to RPH columns; nil means a
	// 2-way composed hash over KReverse columns.
	ReverseMapping coloring.Mapping
	// TopK bounds the per-constant statistics kept for the optimizer.
	TopK int
	// TablePrefix prefixes the relation names so several stores can
	// share one rel.DB (used by the benchmark harness).
	TablePrefix string
	// Durability enables the WAL + snapshot persistence layer (see
	// persist.go); the zero value keeps the store purely in-memory.
	Durability Durability
}

func (o *Options) fill() {
	if o.K <= 0 {
		o.K = 32
	}
	if o.KReverse <= 0 {
		o.KReverse = o.K
	}
	if o.Mapping == nil {
		o.Mapping = coloring.NewHashMapping(o.K, 2)
	}
	if o.ReverseMapping == nil {
		o.ReverseMapping = coloring.NewHashMapping(o.KReverse, 2)
	}
	if o.TopK <= 0 {
		o.TopK = 1000
	}
}

// Store is a DB2RDF store over a relational database.
//
// Concurrency model (see DESIGN.md §8): writers (Insert, Load,
// LoadTriples, LoadParallel, Delete, Clear, the Update path) serialize
// on the store mutex, mutate through copy-on-write at chunk
// granularity, and — iff anything changed — publish a frozen Snapshot
// with one atomic pointer swap while still holding the lock. Readers
// (the query pipeline in package db2rdf) call Snapshot() once and run
// entirely against the frozen state: no store-level lock appears on
// the read path, so query latency is decoupled from concurrent bulk
// loads. The fine-grained live accessors (SpillPredicates,
// MultiValued, ...) do NOT lock themselves — they serve write-lock
// holders (via LiveSnapshot) and tools that otherwise exclude writers;
// lock-free readers use the Snapshot methods of the same names.
type Store struct {
	DB   *rel.DB
	Dict *dict.Dict
	Opts Options

	dph, ds, rph, rs *rel.Table

	direct  *side
	reverse *side

	mu    sync.RWMutex
	stats *Stats

	// epoch counts publishes. Every writer that changed content bumps
	// it (inside publishLocked) while holding the write lock, so two
	// readers observing the same Snapshot().Epoch() saw byte-identical
	// store content. The compiled-plan cache in package db2rdf keys its
	// entries on it: loads can change spill and multi-value state and
	// the predicate→column mapping view, all of which are baked into
	// generated SQL.
	epoch atomic.Uint64

	// snap is the atomically published snapshot readers run against;
	// see snapshot.go.
	snap atomic.Pointer[Snapshot]

	// markerDeletes counts triple removals since the spill/multi
	// predicate markers were last recomputed exactly. Deletes leave the
	// markers conservatively stale (see delete.go); the next publish
	// that also compacts chunks recomputes them from the surviving rows
	// (recomputeMarkersLocked), so a long-running server converges to
	// the same translator inputs a restarted (snapshot-recovered) store
	// would compute. Guarded by the store write lock.
	markerDeletes int

	// dur is the durability runtime (nil when persistence is off). It
	// is installed after recovery completes, so replay's inserts and
	// deletes never re-capture deltas; see persist.go.
	dur *durableState
}

// Epoch returns the store's write epoch (see the field comment). A
// cached artifact derived at epoch E remains valid exactly for data
// read from a snapshot whose Epoch() is E.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// RLock takes the store-wide read lock, excluding writers. The query
// pipeline no longer uses it (queries run on published snapshots);
// it remains for tools that inspect live loading state directly.
func (s *Store) RLock() { s.mu.RLock() }

// RUnlock releases the store-wide read lock.
func (s *Store) RUnlock() { s.mu.RUnlock() }

// numShards is the number of entity-keyed state shards per side. The
// parallel bulk loader partitions work by shard (entity id modulo
// numShards), so per-entity state never needs a lock: one worker owns
// each shard for the duration of a load.
const numShards = 64

// side holds the loading state for one direction (subject-keyed DPH/DS
// or object-keyed RPH/RS). Entity-keyed state is sharded by entity id;
// predicate-keyed state (which any worker may touch, since a predicate
// is not confined to one entity shard) sits behind predMu.
type side struct {
	primary   *rel.Table
	secondary *rel.Table
	mapping   coloring.Mapping
	k         int

	shards [numShards]*sideShard

	predMu     sync.Mutex
	spillPreds map[int64]bool // predicate ids involved in spills
	multiPreds map[int64]bool // predicate ids that own at least one lid
	spillCount int
	predShared bool // maps captured by a snapshot: clone before mutating
}

// mutablePredsLocked makes the predicate maps private to the writer
// before an in-place mutation: if the current maps were captured by a
// published snapshot they are cloned first, so the snapshot's copies
// are never written again. The caller holds predMu.
func (d *side) mutablePredsLocked() {
	if !d.predShared {
		return
	}
	sp := make(map[int64]bool, len(d.spillPreds))
	for pid := range d.spillPreds {
		sp[pid] = true
	}
	mp := make(map[int64]bool, len(d.multiPreds))
	for pid := range d.multiPreds {
		mp[pid] = true
	}
	d.spillPreds, d.multiPreds = sp, mp
	d.predShared = false
}

// sideShard is the entity-keyed loading state for one shard of a side.
type sideShard struct {
	entityRows map[int64][]int          // entity id -> primary row indices
	lidSets    map[int64]map[int64]bool // lid -> member ids (dedup)
	spilled    map[int64]bool           // entities with >1 rows
}

// shardIndex maps an entity id to its state shard.
func shardIndex(entity int64) int { return int(uint64(entity) % numShards) }

// shard returns the state shard owning entity.
func (d *side) shard(entity int64) *sideShard { return d.shards[shardIndex(entity)] }

// New creates an empty store backed by db (a fresh rel.DB when nil).
func New(db *rel.DB, opts Options) (*Store, error) {
	opts.fill()
	if db == nil {
		db = rel.NewDB()
	}
	s := &Store{DB: db, Dict: dict.New(), Opts: opts, stats: newStats(opts.TopK)}

	mk := func(name string, k int) (*rel.Table, error) {
		schema := rel.Schema{{Name: "entry", Type: rel.TInt}, {Name: "spill", Type: rel.TInt}}
		for i := 0; i < k; i++ {
			schema = append(schema, rel.Column{Name: fmt.Sprintf("pred%d", i), Type: rel.TInt})
			schema = append(schema, rel.Column{Name: fmt.Sprintf("val%d", i), Type: rel.TInt})
		}
		t, err := db.CreateTable(opts.TablePrefix+name, schema)
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("entry"); err != nil {
			return nil, err
		}
		return t, nil
	}
	var err error
	if s.dph, err = mk("DPH", opts.K); err != nil {
		return nil, err
	}
	if s.rph, err = mk("RPH", opts.KReverse); err != nil {
		return nil, err
	}
	mkSec := func(name string) (*rel.Table, error) {
		t, err := db.CreateTable(opts.TablePrefix+name, rel.Schema{{Name: "lid", Type: rel.TInt}, {Name: "elm", Type: rel.TInt}})
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("lid"); err != nil {
			return nil, err
		}
		if err := t.CreateIndex("elm"); err != nil {
			return nil, err
		}
		return t, nil
	}
	if s.ds, err = mkSec("DS"); err != nil {
		return nil, err
	}
	if s.rs, err = mkSec("RS"); err != nil {
		return nil, err
	}

	s.direct = newSide(s.dph, s.ds, opts.Mapping, opts.K)
	s.reverse = newSide(s.rph, s.rs, opts.ReverseMapping, opts.KReverse)
	s.RegisterSPARQLFuncs()
	if opts.Durability.Dir != "" {
		if rel.DefaultStorage() != rel.StorageColumnar {
			return nil, fmt.Errorf("store: durability requires the columnar storage layout")
		}
		// Recover from the data directory (or initialize it) and
		// publish the recovered state as the initial snapshot.
		s.mu.Lock()
		err := s.openDurableLocked(opts.Durability)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return s, nil
	}
	// Publish the initial (empty) snapshot so readers never see nil.
	s.mu.Lock()
	s.installLocked(s.epoch.Add(1))
	s.mu.Unlock()
	return s, nil
}

func newSide(primary, secondary *rel.Table, m coloring.Mapping, k int) *side {
	d := &side{
		primary:    primary,
		secondary:  secondary,
		mapping:    m,
		k:          k,
		spillPreds: make(map[int64]bool),
		multiPreds: make(map[int64]bool),
	}
	for i := range d.shards {
		d.shards[i] = &sideShard{
			entityRows: make(map[int64][]int),
			lidSets:    make(map[int64]map[int64]bool),
			spilled:    make(map[int64]bool),
		}
	}
	return d
}

// TableName returns the prefixed name of one of the store's relations
// ("DPH", "DS", "RPH", "RS").
func (s *Store) TableName(base string) string { return s.Opts.TablePrefix + base }

// Insert adds one triple (idempotent under RDF set semantics). The
// epoch advances only when the triple was new: a duplicate insert is a
// no-op and must not invalidate cached query plans.
func (s *Store) Insert(t rdf.Triple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh, err := s.insertLocked(t)
	if fresh {
		if perr := s.publishLocked(); perr != nil && err == nil {
			err = perr
		}
	}
	return err
}

// insertLocked adds one triple, reporting whether it was new; the
// caller holds the store write lock. Statistics are recorded once per
// distinct triple: the direct side detects duplicates, so a re-load of
// the same data leaves every count unchanged.
func (s *Store) insertLocked(t rdf.Triple) (bool, error) {
	sid := s.Dict.Encode(t.S)
	pid := s.Dict.Encode(t.P)
	oid := s.Dict.Encode(t.O)
	fresh, err := s.direct.insert(s, sid, pid, oid, t.P.Value)
	if err != nil {
		return fresh, err
	}
	if _, err := s.reverse.insert(s, oid, pid, sid, t.P.Value); err != nil {
		return fresh, err
	}
	if fresh {
		s.stats.record(sid, pid, oid)
		s.logDelta(wal.OpInsert, sid, pid, oid)
	}
	return fresh, nil
}

// insert places (entity, pred) -> member on one side, reporting whether
// the triple was new (false for an exact duplicate).
func (d *side) insert(s *Store, entity, pid, member int64, predURI string) (bool, error) {
	cols := d.mapping.Columns(predURI)
	sh := d.shard(entity)
	rows := sh.entityRows[entity]

	// Already present? Then extend to (or within) a multi-value list.
	// Cell-level access (CellAt/SetCell) reads just the candidate
	// predicate columns instead of materializing the 2k+2-wide row —
	// on the columnar layout a RowAt here would cost ~66 vector reads
	// per probed row on the K=32 default schema.
	for _, ri := range rows {
		for _, c := range cols {
			pc, vc := 2+2*c, 2+2*c+1
			if pv := d.primary.CellAt(ri, pc); pv.K == rel.KindInt && pv.I == pid {
				cur := d.primary.CellAt(ri, vc)
				if cur.K == rel.KindInt && dict.IsLid(cur.I) {
					lid := cur.I
					if sh.lidSets[lid][member] {
						return false, nil // duplicate triple
					}
					sh.lidSets[lid][member] = true
					return true, d.secondary.Insert(rel.Row{rel.Int(lid), rel.Int(member)})
				}
				if cur.K == rel.KindInt && cur.I == member {
					return false, nil // duplicate triple
				}
				// Convert single value to a list.
				d.setMultiPred(pid)
				lid := s.Dict.NextLid()
				sh.lidSets[lid] = map[int64]bool{cur.I: true, member: true}
				if err := d.secondary.Insert(rel.Row{rel.Int(lid), cur}); err != nil {
					return false, err
				}
				if err := d.secondary.Insert(rel.Row{rel.Int(lid), rel.Int(member)}); err != nil {
					return false, err
				}
				return true, d.primary.SetCell(ri, vc, rel.Int(lid))
			}
		}
	}

	// Not present: find a free candidate column in an existing row.
	for _, ri := range rows {
		for _, c := range cols {
			pc, vc := 2+2*c, 2+2*c+1
			if d.primary.CellAt(ri, pc).IsNull() {
				if err := d.primary.SetCell(ri, pc, rel.Int(pid)); err != nil {
					return false, err
				}
				if err := d.primary.SetCell(ri, vc, rel.Int(member)); err != nil {
					return false, err
				}
				if sh.spilled[entity] {
					d.setSpillPred(pid)
				}
				return true, nil
			}
		}
	}

	// Spill: add a fresh row for the entity.
	spillFlag := int64(0)
	if len(rows) > 0 {
		spillFlag = 1
		d.predMu.Lock()
		d.mutablePredsLocked()
		d.spillCount++
		d.spillPreds[pid] = true
		d.predMu.Unlock()
		if !sh.spilled[entity] {
			sh.spilled[entity] = true
			// Every predicate already stored for this entity is now
			// involved in spills: a merged star lookup could miss it.
			d.predMu.Lock()
			d.mutablePredsLocked()
			for _, ri := range rows {
				for c := 0; c < d.k; c++ {
					if pv := d.primary.CellAt(ri, 2+2*c); pv.K == rel.KindInt {
						d.spillPreds[pv.I] = true
					}
				}
			}
			d.predMu.Unlock()
			// Flag prior rows as spilled.
			for _, ri := range rows {
				if err := d.primary.SetCell(ri, 1, rel.Int(1)); err != nil {
					return false, err
				}
			}
		}
	}
	newRow := make(rel.Row, 2+2*d.k)
	newRow[0] = rel.Int(entity)
	newRow[1] = rel.Int(spillFlag)
	c := cols[0]
	newRow[2+2*c] = rel.Int(pid)
	newRow[2+2*c+1] = rel.Int(member)
	ri, err := d.primary.AppendRow(newRow)
	if err != nil {
		return false, err
	}
	sh.entityRows[entity] = append(rows, ri)
	return true, nil
}

// setMultiPred marks a predicate as multi-valued (lock-protected: any
// loader worker may reach this for any predicate).
func (d *side) setMultiPred(pid int64) {
	d.predMu.Lock()
	d.mutablePredsLocked()
	d.multiPreds[pid] = true
	d.predMu.Unlock()
}

// setSpillPred marks a predicate as spill-involved.
func (d *side) setSpillPred(pid int64) {
	d.predMu.Lock()
	d.mutablePredsLocked()
	d.spillPreds[pid] = true
	d.predMu.Unlock()
}

// Load reads N-Triples from r and inserts every triple. The store
// write lock is held for the whole load.
func (s *Store) Load(r io.Reader) (n int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	freshTotal := 0
	// Publish once if any triple landed, even when a later line errors:
	// the partial load is visible, so readers and cached plans must see
	// the new state.
	defer func() {
		if freshTotal > 0 {
			if perr := s.publishLocked(); perr != nil && err == nil {
				err = perr
			}
		}
	}()
	rd := rdf.NewReader(r)
	for {
		t, rerr := rd.Read()
		if rerr == io.EOF {
			return n, nil
		}
		if rerr != nil {
			return n, rerr
		}
		fresh, ierr := s.insertLocked(t)
		if fresh {
			freshTotal++
		}
		if ierr != nil {
			return n, ierr
		}
		n++
	}
}

// LoadTriples inserts a slice of triples under one write lock. The
// epoch advances once iff any triple was new.
func (s *Store) LoadTriples(ts []rdf.Triple) (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	freshTotal := 0
	defer func() {
		if freshTotal > 0 {
			if perr := s.publishLocked(); perr != nil && err == nil {
				err = perr
			}
		}
	}()
	for _, t := range ts {
		fresh, ierr := s.insertLocked(t)
		if fresh {
			freshTotal++
		}
		if ierr != nil {
			return ierr
		}
	}
	return nil
}

// Stats returns the dataset statistics collected during loading. The
// collector carries its own lock, so reads are safe while a load is in
// progress on another goroutine.
func (s *Store) Stats() *Stats { return s.stats }

// SpillPredicates returns the set of predicate ids involved in spills
// on the direct (subject) or reverse (object) side; the translator
// consults it to decide whether star merging is safe (§3.2.1). The
// caller must exclude writers (hold the store lock in either mode);
// lock-free readers use Snapshot.SpillPredicates instead.
func (s *Store) SpillPredicates(reverse bool) map[int64]bool {
	if reverse {
		return s.reverse.spillPreds
	}
	return s.direct.spillPreds
}

// MultiValued reports whether the predicate id holds a lid (a DS/RS
// list) for at least one entity on the given side; the translator uses
// it to decide when the secondary relation must be joined. Caller
// excludes writers; lock-free readers use Snapshot.MultiValued.
func (s *Store) MultiValued(pid int64, reverse bool) bool {
	if reverse {
		return s.reverse.multiPreds[pid]
	}
	return s.direct.multiPreds[pid]
}

// AnyMultiValued reports whether any predicate on the given side is
// multi-valued (used by variable-predicate translations that must be
// conservative). Caller excludes writers; lock-free readers use
// Snapshot.AnyMultiValued.
func (s *Store) AnyMultiValued(reverse bool) bool {
	if reverse {
		return len(s.reverse.multiPreds) > 0
	}
	return len(s.direct.multiPreds) > 0
}

// SpillCount returns the number of spill rows on one side. Caller holds
// the store read lock or otherwise excludes writers.
func (s *Store) SpillCount(reverse bool) int {
	if reverse {
		return s.reverse.spillCount
	}
	return s.direct.spillCount
}

// EntityCount returns the number of distinct entities on one side
// (rows in DPH or RPH net of spills). Caller holds the store read lock
// or otherwise excludes writers.
func (s *Store) EntityCount(reverse bool) int {
	d := s.direct
	if reverse {
		d = s.reverse
	}
	n := 0
	for _, sh := range d.shards {
		n += len(sh.entityRows)
	}
	return n
}

// TableBytes returns the resident in-memory size of the four DB2RDF
// relations (DPH, DS, RPH, RS): row headers and value slots under the
// row layout, or packed column vectors, null bitmaps and exception
// maps under the columnar layout, plus string contents in either case.
// Caller holds the store read lock or otherwise excludes writers.
func (s *Store) TableBytes() int64 {
	var total int64
	for _, t := range []*rel.Table{s.dph, s.ds, s.rph, s.rs} {
		total += t.ResidentBytes()
	}
	return total
}

// DictBytes returns the resident in-memory size of the dictionary's
// id→term store (front-coded blocks plus the unsealed tail).
func (s *Store) DictBytes() int64 { return s.Dict.ResidentBytes() }

// StorageBytes returns the total resident data footprint: relations
// plus dictionary.
func (s *Store) StorageBytes() int64 { return s.TableBytes() + s.DictBytes() }

// EncodedChunks returns the process-wide count of column chunks sealed
// into the compressed representation (metrics).
func EncodedChunks() int64 { return rel.SealedChunksTotal() }

// Mapping returns the predicate-to-column mapping of one side.
func (s *Store) Mapping(reverse bool) coloring.Mapping {
	if reverse {
		return s.reverse.mapping
	}
	return s.direct.mapping
}

// K returns the column-pair budget of one side.
func (s *Store) K(reverse bool) int {
	if reverse {
		return s.reverse.k
	}
	return s.direct.k
}

// LookupID returns the dictionary id of a term, or (-1, false) if the
// term does not occur in the store.
func (s *Store) LookupID(t rdf.Term) (int64, bool) {
	return s.Dict.Lookup(t)
}

// EncodeID interns a term, returning its id (the translator backend
// hook; the dictionary is internally synchronized).
func (s *Store) EncodeID(t rdf.Term) int64 { return s.Dict.Encode(t) }

// Compactions returns the total number of publish-time chunk
// compactions across the four relations (metrics).
func (s *Store) Compactions() int64 {
	var total int64
	for _, t := range []*rel.Table{s.dph, s.ds, s.rph, s.rs} {
		total += t.Compactions()
	}
	return total
}

// DeadRows returns the current number of tombstoned rows across the
// four relations (metrics).
func (s *Store) DeadRows() int {
	n := 0
	for _, t := range []*rel.Table{s.dph, s.ds, s.rph, s.rs} {
		n += t.DeadRows()
	}
	return n
}

// BuildMappings scans a sample of triples, builds interference graphs
// for both sides, colors them greedily within the given budgets, and
// returns hybrid colored mappings plus the colorings themselves (for
// reporting, Table 4).
func BuildMappings(triples []rdf.Triple, k, kRev int) (direct, reverse coloring.Mapping, dc, rc *coloring.Coloring) {
	subjPreds := make(map[string][]string)
	objPreds := make(map[string][]string)
	for _, t := range triples {
		sk := t.S.Key()
		subjPreds[sk] = append(subjPreds[sk], t.P.Value)
		objPreds[t.O.Key()] = append(objPreds[t.O.Key()], t.P.Value)
	}
	dg := coloring.NewInterference()
	for _, preds := range subjPreds {
		dg.AddEntity(preds)
	}
	rg := coloring.NewInterference()
	for _, preds := range objPreds {
		rg.AddEntity(preds)
	}
	dc = coloring.Greedy(dg, k)
	rc = coloring.Greedy(rg, kRev)
	direct = coloring.NewColoredMapping(dc, k, nil)
	reverse = coloring.NewColoredMapping(rc, kRev, nil)
	return direct, reverse, dc, rc
}

// Stats holds the dataset statistics of §3.1 (input 2 to the
// optimizer): total triples, average triples per subject and object,
// and top-k constants with exact counts. A Stats carries its own lock
// and is safe for concurrent use; the parallel loader additionally
// accumulates per-worker collectors and merges them at the end to keep
// the lock out of the hot path.
type Stats struct {
	mu     sync.RWMutex
	topK   int
	total  int64
	bySubj map[int64]int64
	byObj  map[int64]int64
	byPred map[int64]int64
}

// NewStats returns an empty statistics collector (exported for the
// baseline stores, which share the optimizer and need the same
// statistics shape).
func NewStats(topK int) *Stats { return newStats(topK) }

// Record adds one triple's ids to the statistics.
func (st *Stats) Record(sid, pid, oid int64) { st.record(sid, pid, oid) }

func newStats(topK int) *Stats {
	return &Stats{
		topK:   topK,
		bySubj: make(map[int64]int64),
		byObj:  make(map[int64]int64),
		byPred: make(map[int64]int64),
	}
}

func (st *Stats) record(sid, pid, oid int64) {
	st.mu.Lock()
	st.total++
	st.bySubj[sid]++
	st.byObj[oid]++
	st.byPred[pid]++
	st.mu.Unlock()
}

// merge folds another collector into st (used to combine the parallel
// loader's per-worker statistics).
func (st *Stats) merge(o *Stats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.total += o.total
	for id, n := range o.bySubj {
		st.bySubj[id] += n
	}
	for id, n := range o.byObj {
		st.byObj[id] += n
	}
	for id, n := range o.byPred {
		st.byPred[id] += n
	}
}

// TotalTriples returns the dataset size.
func (st *Stats) TotalTriples() float64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return float64(st.total)
}

// AvgPerSubject returns the average number of triples per subject.
func (st *Stats) AvgPerSubject() float64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.bySubj) == 0 {
		return 1
	}
	return float64(st.total) / float64(len(st.bySubj))
}

// AvgPerObject returns the average number of triples per object.
func (st *Stats) AvgPerObject() float64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.byObj) == 0 {
		return 1
	}
	return float64(st.total) / float64(len(st.byObj))
}

// countIn looks up an id in one of st's count maps under the lock.
func (st *Stats) countIn(m map[int64]int64, id int64, ok bool) (float64, bool) {
	if !ok {
		return 0, true // term absent from data: exact count 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	n, present := m[id]
	if !present {
		return 0, true
	}
	return float64(n), true
}

// StatsView returns an optimizer-facing view of the statistics that
// resolves terms through the store's dictionary.
func (s *Store) StatsView() *StatsView {
	return &StatsView{st: s.stats, dict: s.Dict}
}

// NewStatsView builds a StatsView from a collector and a dictionary
// (exported for the baseline stores).
func NewStatsView(st *Stats, d *dict.Dict) *StatsView {
	return &StatsView{st: st, dict: d}
}

// StatsView resolves rdf.Terms against collected statistics.
type StatsView struct {
	st   *Stats
	dict *dict.Dict
}

// TotalTriples implements optimizer.Stats.
func (v *StatsView) TotalTriples() float64 { return v.st.TotalTriples() }

// AvgPerSubject implements optimizer.Stats.
func (v *StatsView) AvgPerSubject() float64 { return v.st.AvgPerSubject() }

// AvgPerObject implements optimizer.Stats.
func (v *StatsView) AvgPerObject() float64 { return v.st.AvgPerObject() }

// SubjectCount implements optimizer.Stats.
func (v *StatsView) SubjectCount(t rdf.Term) (float64, bool) {
	id, ok := v.dict.Lookup(t)
	return v.st.countIn(v.st.bySubj, id, ok)
}

// ObjectCount implements optimizer.Stats.
func (v *StatsView) ObjectCount(t rdf.Term) (float64, bool) {
	id, ok := v.dict.Lookup(t)
	return v.st.countIn(v.st.byObj, id, ok)
}

// PredicateCount implements optimizer.Stats.
func (v *StatsView) PredicateCount(t rdf.Term) (float64, bool) {
	id, ok := v.dict.Lookup(t)
	return v.st.countIn(v.st.byPred, id, ok)
}

// TopConstants returns the k most frequent constants (by triple count)
// across subjects and objects, for diagnostic output.
func (st *Stats) TopConstants(k int, d *dict.Dict) []string {
	type pair struct {
		id int64
		n  int64
	}
	st.mu.RLock()
	var all []pair
	for id, n := range st.bySubj {
		all = append(all, pair{id, n})
	}
	for id, n := range st.byObj {
		all = append(all, pair{id, n})
	}
	st.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	var out []string
	seen := map[int64]bool{}
	for _, p := range all {
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		t, err := d.Decode(p.id)
		if err == nil {
			out = append(out, fmt.Sprintf("%s: %d", t, p.n))
		}
		if len(out) >= k {
			break
		}
	}
	return out
}
