// Package store implements the DB2RDF entity-oriented RDF store of
// Bornea et al. (SIGMOD 2013, §2): the Direct Primary Hash (DPH) and
// Direct Secondary Hash (DS) relations keyed by subject, their reverse
// twins RPH and RS keyed by object, spill handling, multi-valued
// predicate lists, predicate-to-column mappings (hash or coloring
// based), and the dataset statistics the SPARQL optimizer consumes.
package store

import (
	"fmt"
	"io"
	"sort"

	"db2rdf/internal/coloring"
	"db2rdf/internal/dict"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
)

// Options configures a Store.
type Options struct {
	// K is the number of (pred_i, val_i) column pairs in DPH.
	K int
	// KReverse is the number of pairs in RPH (the paper's k'); 0 means
	// same as K.
	KReverse int
	// Mapping assigns predicates to DPH columns; nil means a 2-way
	// composed hash over K columns.
	Mapping coloring.Mapping
	// ReverseMapping assigns predicates to RPH columns; nil means a
	// 2-way composed hash over KReverse columns.
	ReverseMapping coloring.Mapping
	// TopK bounds the per-constant statistics kept for the optimizer.
	TopK int
	// TablePrefix prefixes the relation names so several stores can
	// share one rel.DB (used by the benchmark harness).
	TablePrefix string
}

func (o *Options) fill() {
	if o.K <= 0 {
		o.K = 32
	}
	if o.KReverse <= 0 {
		o.KReverse = o.K
	}
	if o.Mapping == nil {
		o.Mapping = coloring.NewHashMapping(o.K, 2)
	}
	if o.ReverseMapping == nil {
		o.ReverseMapping = coloring.NewHashMapping(o.KReverse, 2)
	}
	if o.TopK <= 0 {
		o.TopK = 1000
	}
}

// Store is a DB2RDF store over a relational database.
type Store struct {
	DB   *rel.DB
	Dict *dict.Dict
	Opts Options

	dph, ds, rph, rs *rel.Table

	direct  *side
	reverse *side

	stats *Stats
}

// side holds the loading state for one direction (subject-keyed DPH/DS
// or object-keyed RPH/RS).
type side struct {
	primary   *rel.Table
	secondary *rel.Table
	mapping   coloring.Mapping
	k         int

	entityRows map[int64][]int          // entity id -> primary row indices
	lidSets    map[int64]map[int64]bool // lid -> member ids (dedup)
	spilled    map[int64]bool           // entities with >1 rows
	spillPreds map[int64]bool           // predicate ids involved in spills
	multiPreds map[int64]bool           // predicate ids that own at least one lid
	spillCount int
}

// New creates an empty store backed by db (a fresh rel.DB when nil).
func New(db *rel.DB, opts Options) (*Store, error) {
	opts.fill()
	if db == nil {
		db = rel.NewDB()
	}
	s := &Store{DB: db, Dict: dict.New(), Opts: opts, stats: newStats(opts.TopK)}

	mk := func(name string, k int) (*rel.Table, error) {
		schema := rel.Schema{{Name: "entry", Type: rel.TInt}, {Name: "spill", Type: rel.TInt}}
		for i := 0; i < k; i++ {
			schema = append(schema, rel.Column{Name: fmt.Sprintf("pred%d", i), Type: rel.TInt})
			schema = append(schema, rel.Column{Name: fmt.Sprintf("val%d", i), Type: rel.TInt})
		}
		t, err := db.CreateTable(opts.TablePrefix+name, schema)
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("entry"); err != nil {
			return nil, err
		}
		return t, nil
	}
	var err error
	if s.dph, err = mk("DPH", opts.K); err != nil {
		return nil, err
	}
	if s.rph, err = mk("RPH", opts.KReverse); err != nil {
		return nil, err
	}
	mkSec := func(name string) (*rel.Table, error) {
		t, err := db.CreateTable(opts.TablePrefix+name, rel.Schema{{Name: "lid", Type: rel.TInt}, {Name: "elm", Type: rel.TInt}})
		if err != nil {
			return nil, err
		}
		if err := t.CreateIndex("lid"); err != nil {
			return nil, err
		}
		if err := t.CreateIndex("elm"); err != nil {
			return nil, err
		}
		return t, nil
	}
	if s.ds, err = mkSec("DS"); err != nil {
		return nil, err
	}
	if s.rs, err = mkSec("RS"); err != nil {
		return nil, err
	}

	s.direct = newSide(s.dph, s.ds, opts.Mapping, opts.K)
	s.reverse = newSide(s.rph, s.rs, opts.ReverseMapping, opts.KReverse)
	s.RegisterSPARQLFuncs()
	return s, nil
}

func newSide(primary, secondary *rel.Table, m coloring.Mapping, k int) *side {
	return &side{
		primary:    primary,
		secondary:  secondary,
		mapping:    m,
		k:          k,
		entityRows: make(map[int64][]int),
		lidSets:    make(map[int64]map[int64]bool),
		spilled:    make(map[int64]bool),
		spillPreds: make(map[int64]bool),
		multiPreds: make(map[int64]bool),
	}
}

// TableName returns the prefixed name of one of the store's relations
// ("DPH", "DS", "RPH", "RS").
func (s *Store) TableName(base string) string { return s.Opts.TablePrefix + base }

// Insert adds one triple (idempotent under RDF set semantics).
func (s *Store) Insert(t rdf.Triple) error {
	sid := s.Dict.Encode(t.S)
	pid := s.Dict.Encode(t.P)
	oid := s.Dict.Encode(t.O)
	if err := s.direct.insert(s, sid, pid, oid, t.P.Value); err != nil {
		return err
	}
	if err := s.reverse.insert(s, oid, pid, sid, t.P.Value); err != nil {
		return err
	}
	s.stats.record(sid, pid, oid)
	return nil
}

// insert places (entity, pred) -> member on one side.
func (d *side) insert(s *Store, entity, pid, member int64, predURI string) error {
	cols := d.mapping.Columns(predURI)
	rows := d.entityRows[entity]

	// Already present? Then extend to (or within) a multi-value list.
	for _, ri := range rows {
		row := d.primary.RowAt(ri)
		for _, c := range cols {
			pc, vc := 2+2*c, 2+2*c+1
			if row[pc].K == rel.KindInt && row[pc].I == pid {
				cur := row[vc]
				if cur.K == rel.KindInt && dict.IsLid(cur.I) {
					lid := cur.I
					if d.lidSets[lid][member] {
						return nil // duplicate triple
					}
					d.lidSets[lid][member] = true
					return d.secondary.Insert(rel.Row{rel.Int(lid), rel.Int(member)})
				}
				if cur.K == rel.KindInt && cur.I == member {
					return nil // duplicate triple
				}
				// Convert single value to a list.
				d.multiPreds[pid] = true
				lid := s.Dict.NextLid()
				d.lidSets[lid] = map[int64]bool{cur.I: true, member: true}
				if err := d.secondary.Insert(rel.Row{rel.Int(lid), cur}); err != nil {
					return err
				}
				if err := d.secondary.Insert(rel.Row{rel.Int(lid), rel.Int(member)}); err != nil {
					return err
				}
				newRow := cloneRow(row)
				newRow[vc] = rel.Int(lid)
				return d.primary.UpdateRow(ri, newRow)
			}
		}
	}

	// Not present: find a free candidate column in an existing row.
	for _, ri := range rows {
		row := d.primary.RowAt(ri)
		for _, c := range cols {
			pc, vc := 2+2*c, 2+2*c+1
			if row[pc].IsNull() {
				newRow := cloneRow(row)
				newRow[pc] = rel.Int(pid)
				newRow[vc] = rel.Int(member)
				if err := d.primary.UpdateRow(ri, newRow); err != nil {
					return err
				}
				if d.spilled[entity] {
					d.spillPreds[pid] = true
				}
				return nil
			}
		}
	}

	// Spill: add a fresh row for the entity.
	spillFlag := int64(0)
	if len(rows) > 0 {
		spillFlag = 1
		d.spillCount++
		if !d.spilled[entity] {
			d.spilled[entity] = true
			// Every predicate already stored for this entity is now
			// involved in spills: a merged star lookup could miss it.
			for _, ri := range rows {
				row := d.primary.RowAt(ri)
				for c := 0; c < d.k; c++ {
					if pv := row[2+2*c]; pv.K == rel.KindInt {
						d.spillPreds[pv.I] = true
					}
				}
			}
			// Flag prior rows as spilled.
			for _, ri := range rows {
				row := cloneRow(d.primary.RowAt(ri))
				row[1] = rel.Int(1)
				if err := d.primary.UpdateRow(ri, row); err != nil {
					return err
				}
			}
		}
		d.spillPreds[pid] = true
	}
	newRow := make(rel.Row, 2+2*d.k)
	newRow[0] = rel.Int(entity)
	newRow[1] = rel.Int(spillFlag)
	c := cols[0]
	newRow[2+2*c] = rel.Int(pid)
	newRow[2+2*c+1] = rel.Int(member)
	if err := d.primary.Insert(newRow); err != nil {
		return err
	}
	d.entityRows[entity] = append(rows, d.primary.Len()-1)
	return nil
}

func cloneRow(r rel.Row) rel.Row {
	out := make(rel.Row, len(r))
	copy(out, r)
	return out
}

// Load reads N-Triples from r and inserts every triple.
func (s *Store) Load(r io.Reader) (int, error) {
	rd := rdf.NewReader(r)
	n := 0
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := s.Insert(t); err != nil {
			return n, err
		}
		n++
	}
}

// LoadTriples inserts a slice of triples.
func (s *Store) LoadTriples(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := s.Insert(t); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the dataset statistics collected during loading.
func (s *Store) Stats() *Stats { return s.stats }

// SpillPredicates returns the set of predicate ids involved in spills
// on the direct (subject) or reverse (object) side; the translator
// consults it to decide whether star merging is safe (§3.2.1).
func (s *Store) SpillPredicates(reverse bool) map[int64]bool {
	if reverse {
		return s.reverse.spillPreds
	}
	return s.direct.spillPreds
}

// MultiValued reports whether the predicate id holds a lid (a DS/RS
// list) for at least one entity on the given side; the translator uses
// it to decide when the secondary relation must be joined.
func (s *Store) MultiValued(pid int64, reverse bool) bool {
	if reverse {
		return s.reverse.multiPreds[pid]
	}
	return s.direct.multiPreds[pid]
}

// AnyMultiValued reports whether any predicate on the given side is
// multi-valued (used by variable-predicate translations that must be
// conservative).
func (s *Store) AnyMultiValued(reverse bool) bool {
	if reverse {
		return len(s.reverse.multiPreds) > 0
	}
	return len(s.direct.multiPreds) > 0
}

// SpillCount returns the number of spill rows on one side.
func (s *Store) SpillCount(reverse bool) int {
	if reverse {
		return s.reverse.spillCount
	}
	return s.direct.spillCount
}

// EntityCount returns the number of distinct entities on one side
// (rows in DPH or RPH net of spills).
func (s *Store) EntityCount(reverse bool) int {
	if reverse {
		return len(s.reverse.entityRows)
	}
	return len(s.direct.entityRows)
}

// Mapping returns the predicate-to-column mapping of one side.
func (s *Store) Mapping(reverse bool) coloring.Mapping {
	if reverse {
		return s.reverse.mapping
	}
	return s.direct.mapping
}

// K returns the column-pair budget of one side.
func (s *Store) K(reverse bool) int {
	if reverse {
		return s.reverse.k
	}
	return s.direct.k
}

// LookupID returns the dictionary id of a term, or (-1, false) if the
// term does not occur in the store.
func (s *Store) LookupID(t rdf.Term) (int64, bool) {
	return s.Dict.Lookup(t)
}

// BuildMappings scans a sample of triples, builds interference graphs
// for both sides, colors them greedily within the given budgets, and
// returns hybrid colored mappings plus the colorings themselves (for
// reporting, Table 4).
func BuildMappings(triples []rdf.Triple, k, kRev int) (direct, reverse coloring.Mapping, dc, rc *coloring.Coloring) {
	subjPreds := make(map[string][]string)
	objPreds := make(map[string][]string)
	for _, t := range triples {
		sk := t.S.Key()
		subjPreds[sk] = append(subjPreds[sk], t.P.Value)
		objPreds[t.O.Key()] = append(objPreds[t.O.Key()], t.P.Value)
	}
	dg := coloring.NewInterference()
	for _, preds := range subjPreds {
		dg.AddEntity(preds)
	}
	rg := coloring.NewInterference()
	for _, preds := range objPreds {
		rg.AddEntity(preds)
	}
	dc = coloring.Greedy(dg, k)
	rc = coloring.Greedy(rg, kRev)
	direct = coloring.NewColoredMapping(dc, k, nil)
	reverse = coloring.NewColoredMapping(rc, kRev, nil)
	return direct, reverse, dc, rc
}

// Stats holds the dataset statistics of §3.1 (input 2 to the
// optimizer): total triples, average triples per subject and object,
// and top-k constants with exact counts.
type Stats struct {
	topK   int
	total  int64
	bySubj map[int64]int64
	byObj  map[int64]int64
	byPred map[int64]int64
}

// NewStats returns an empty statistics collector (exported for the
// baseline stores, which share the optimizer and need the same
// statistics shape).
func NewStats(topK int) *Stats { return newStats(topK) }

// Record adds one triple's ids to the statistics.
func (st *Stats) Record(sid, pid, oid int64) { st.record(sid, pid, oid) }

func newStats(topK int) *Stats {
	return &Stats{
		topK:   topK,
		bySubj: make(map[int64]int64),
		byObj:  make(map[int64]int64),
		byPred: make(map[int64]int64),
	}
}

func (st *Stats) record(sid, pid, oid int64) {
	st.total++
	st.bySubj[sid]++
	st.byObj[oid]++
	st.byPred[pid]++
}

// TotalTriples returns the dataset size.
func (st *Stats) TotalTriples() float64 { return float64(st.total) }

// AvgPerSubject returns the average number of triples per subject.
func (st *Stats) AvgPerSubject() float64 {
	if len(st.bySubj) == 0 {
		return 1
	}
	return float64(st.total) / float64(len(st.bySubj))
}

// AvgPerObject returns the average number of triples per object.
func (st *Stats) AvgPerObject() float64 {
	if len(st.byObj) == 0 {
		return 1
	}
	return float64(st.total) / float64(len(st.byObj))
}

// countIn looks up an id in a count map.
func countIn(m map[int64]int64, id int64, ok bool) (float64, bool) {
	if !ok {
		return 0, true // term absent from data: exact count 0
	}
	n, present := m[id]
	if !present {
		return 0, true
	}
	return float64(n), true
}

// StatsView returns an optimizer-facing view of the statistics that
// resolves terms through the store's dictionary.
func (s *Store) StatsView() *StatsView {
	return &StatsView{st: s.stats, dict: s.Dict}
}

// NewStatsView builds a StatsView from a collector and a dictionary
// (exported for the baseline stores).
func NewStatsView(st *Stats, d *dict.Dict) *StatsView {
	return &StatsView{st: st, dict: d}
}

// StatsView resolves rdf.Terms against collected statistics.
type StatsView struct {
	st   *Stats
	dict *dict.Dict
}

// TotalTriples implements optimizer.Stats.
func (v *StatsView) TotalTriples() float64 { return v.st.TotalTriples() }

// AvgPerSubject implements optimizer.Stats.
func (v *StatsView) AvgPerSubject() float64 { return v.st.AvgPerSubject() }

// AvgPerObject implements optimizer.Stats.
func (v *StatsView) AvgPerObject() float64 { return v.st.AvgPerObject() }

// SubjectCount implements optimizer.Stats.
func (v *StatsView) SubjectCount(t rdf.Term) (float64, bool) {
	id, ok := v.dict.Lookup(t)
	return countIn(v.st.bySubj, id, ok)
}

// ObjectCount implements optimizer.Stats.
func (v *StatsView) ObjectCount(t rdf.Term) (float64, bool) {
	id, ok := v.dict.Lookup(t)
	return countIn(v.st.byObj, id, ok)
}

// PredicateCount implements optimizer.Stats.
func (v *StatsView) PredicateCount(t rdf.Term) (float64, bool) {
	id, ok := v.dict.Lookup(t)
	return countIn(v.st.byPred, id, ok)
}

// TopConstants returns the k most frequent constants (by triple count)
// across subjects and objects, for diagnostic output.
func (st *Stats) TopConstants(k int, d *dict.Dict) []string {
	type pair struct {
		id int64
		n  int64
	}
	var all []pair
	for id, n := range st.bySubj {
		all = append(all, pair{id, n})
	}
	for id, n := range st.byObj {
		all = append(all, pair{id, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	var out []string
	seen := map[int64]bool{}
	for _, p := range all {
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		t, err := d.Decode(p.id)
		if err == nil {
			out = append(out, fmt.Sprintf("%s: %d", t, p.n))
		}
		if len(out) >= k {
			break
		}
	}
	return out
}
