package store

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"db2rdf/internal/coloring"
	"db2rdf/internal/dict"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
)

// fig1Triples is the paper's Figure 1(a) sample DBpedia data.
func fig1Triples() []rdf.Triple {
	iri := rdf.NewIRI
	lit := rdf.NewLiteral
	mk := func(s, p string, o rdf.Term) rdf.Triple {
		return rdf.NewTriple(iri(s), iri(p), o)
	}
	return []rdf.Triple{
		mk("Charles_Flint", "born", lit("1850")),
		mk("Charles_Flint", "died", lit("1934")),
		mk("Charles_Flint", "founder", iri("IBM")),
		mk("Larry_Page", "born", lit("1973")),
		mk("Larry_Page", "founder", iri("Google")),
		mk("Larry_Page", "board", iri("Google")),
		mk("Larry_Page", "home", lit("Palo Alto")),
		mk("Android", "developer", iri("Google")),
		mk("Android", "version", lit("4.1")),
		mk("Android", "kernel", iri("Linux")),
		mk("Android", "preceded", lit("4.0")),
		mk("Android", "graphics", iri("OpenGL")),
		mk("Google", "industry", lit("Software")),
		mk("Google", "industry", lit("Internet")),
		mk("Google", "employees", lit("54,604")),
		mk("Google", "HQ", lit("Mountain View")),
		mk("IBM", "industry", lit("Software")),
		mk("IBM", "industry", lit("Hardware")),
		mk("IBM", "industry", lit("Services")),
		mk("IBM", "employees", lit("433,362")),
		mk("IBM", "HQ", lit("Armonk")),
	}
}

func newTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := New(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadFig1(t *testing.T) {
	s := newTestStore(t, Options{K: 16})
	if err := s.LoadTriples(fig1Triples()); err != nil {
		t.Fatal(err)
	}
	// 5 subjects -> 5 DPH entity groups, no spills with k=8.
	if got := s.EntityCount(false); got != 5 {
		t.Fatalf("want 5 direct entities, got %d", got)
	}
	if s.SpillCount(false) != 0 {
		t.Fatalf("no spills expected with k=16, got %d", s.SpillCount(false))
	}
	// industry is multi-valued for Google and IBM: DS must hold
	// 2 (Google) + 3 (IBM) = 5 rows.
	ds := s.DB.Table(s.TableName("DS"))
	if ds.Len() != 5 {
		t.Fatalf("DS rows = %d, want 5", ds.Len())
	}
	// founder on the reverse side: Google has founder Larry Page only;
	// but born (reverse) has two distinct subjects per year? No: each
	// year is a distinct object. Check reverse multi-value: industry
	// "Software" has two subjects (Google, IBM) -> RS gets 2 rows.
	rs := s.DB.Table(s.TableName("RS"))
	if rs.Len() < 2 {
		t.Fatalf("RS rows = %d, want >= 2", rs.Len())
	}
}

func TestDuplicateTripleIdempotent(t *testing.T) {
	s := newTestStore(t, Options{K: 4})
	tr := rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	for i := 0; i < 3; i++ {
		if err := s.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	dph := s.DB.Table(s.TableName("DPH"))
	if dph.Len() != 1 {
		t.Fatalf("DPH rows = %d, want 1", dph.Len())
	}
	ds := s.DB.Table(s.TableName("DS"))
	if ds.Len() != 0 {
		t.Fatalf("duplicate insert must not create DS rows, got %d", ds.Len())
	}
}

func TestMultiValueConversion(t *testing.T) {
	s := newTestStore(t, Options{K: 4})
	subj := rdf.NewIRI("Google")
	pred := rdf.NewIRI("industry")
	for _, o := range []string{"Software", "Internet", "Cloud"} {
		if err := s.Insert(rdf.NewTriple(subj, pred, rdf.NewLiteral(o))); err != nil {
			t.Fatal(err)
		}
	}
	// One DPH row whose industry val is a lid; DS has 3 members.
	dph := s.DB.Table(s.TableName("DPH"))
	if dph.Len() != 1 {
		t.Fatalf("DPH rows = %d, want 1", dph.Len())
	}
	ds := s.DB.Table(s.TableName("DS"))
	if ds.Len() != 3 {
		t.Fatalf("DS rows = %d, want 3", ds.Len())
	}
	row := dph.RowAt(0)
	foundLid := false
	for i := 2; i < len(row); i += 2 {
		if v := row[i+1]; v.K == rel.KindInt && dict.IsLid(v.I) {
			foundLid = true
		}
	}
	if !foundLid {
		t.Fatal("DPH val must hold a lid after multi-value conversion")
	}
	// Re-inserting an existing member is a no-op.
	if err := s.Insert(rdf.NewTriple(subj, pred, rdf.NewLiteral("Cloud"))); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Fatalf("duplicate member extended DS: %d", ds.Len())
	}
}

func TestSpills(t *testing.T) {
	// k=2 with a single-column mapping forces spills for an entity
	// with more than 2 predicates.
	m := &coloring.FuncMapping{M: 2, Fn: func(p string) []int {
		// Map predicates round-robin over both columns.
		return []int{int(p[len(p)-1]) % 2}
	}}
	s := newTestStore(t, Options{K: 2, Mapping: m})
	subj := rdf.NewIRI("e")
	for i := 0; i < 6; i++ {
		p := rdf.NewIRI(fmt.Sprintf("p%d", i))
		if err := s.Insert(rdf.NewTriple(subj, p, rdf.NewInteger(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if s.SpillCount(false) == 0 {
		t.Fatal("expected spills")
	}
	dph := s.DB.Table(s.TableName("DPH"))
	if dph.Len() < 3 {
		t.Fatalf("DPH rows = %d, want >= 3 for 6 preds over 2 columns", dph.Len())
	}
	// Every row of the spilled entity must carry spill=1.
	for i := 0; i < dph.Len(); i++ {
		if dph.RowAt(i)[1].I != 1 {
			t.Fatalf("row %d missing spill flag", i)
		}
	}
	// All 6 predicates participate in spills.
	if got := len(s.SpillPredicates(false)); got != 6 {
		t.Fatalf("spill predicates = %d, want 6", got)
	}
}

func TestStats(t *testing.T) {
	s := newTestStore(t, Options{K: 8})
	if err := s.LoadTriples(fig1Triples()); err != nil {
		t.Fatal(err)
	}
	v := s.StatsView()
	if v.TotalTriples() != 21 {
		t.Fatalf("total = %f", v.TotalTriples())
	}
	// 5 subjects, 21 triples -> 4.2 avg.
	if got := v.AvgPerSubject(); got != 4.2 {
		t.Fatalf("avg per subject = %f", got)
	}
	// Software appears as object twice.
	n, ok := v.ObjectCount(rdf.NewLiteral("Software"))
	if !ok || n != 2 {
		t.Fatalf("ObjectCount(Software) = %f, %v", n, ok)
	}
	// Unknown constants have exact count 0.
	n, ok = v.ObjectCount(rdf.NewLiteral("Nowhere"))
	if !ok || n != 0 {
		t.Fatalf("ObjectCount(unknown) = %f, %v", n, ok)
	}
	n, ok = v.PredicateCount(rdf.NewIRI("industry"))
	if !ok || n != 5 {
		t.Fatalf("PredicateCount(industry) = %f, %v", n, ok)
	}
}

func TestLoadNTriples(t *testing.T) {
	s := newTestStore(t, Options{K: 4})
	input := `<http://e/s1> <http://e/p> "v1" .
# comment
<http://e/s1> <http://e/q> <http://e/o> .
<http://e/s2> <http://e/p> "v2"@en .
`
	n, err := s.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d, want 3", n)
	}
	if s.EntityCount(false) != 2 {
		t.Fatalf("entities = %d", s.EntityCount(false))
	}
}

func TestBuildMappings(t *testing.T) {
	triples := fig1Triples()
	direct, reverse, dc, rc := BuildMappings(triples, 13, 13)
	if len(dc.Uncolored) != 0 {
		t.Fatalf("fig1 must be fully colorable: %v", dc.Uncolored)
	}
	// Figure 4: 13 predicates need only 5 colors.
	if dc.NumColors > 5 {
		t.Errorf("direct coloring used %d colors, paper needs 5", dc.NumColors)
	}
	if direct.NumColumns() != 13 || reverse.NumColumns() != 13 {
		t.Fatal("budget mismatch")
	}
	_ = rc
	// Colored store: loading with coloring must not spill.
	s, err := New(nil, Options{K: 13, Mapping: direct, ReverseMapping: reverse})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(triples); err != nil {
		t.Fatal(err)
	}
	if s.SpillCount(false) != 0 {
		t.Fatalf("colored load must not spill, got %d", s.SpillCount(false))
	}
}

func TestLookupID(t *testing.T) {
	s := newTestStore(t, Options{K: 4})
	tr := rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	if err := s.Insert(tr); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupID(rdf.NewIRI("s")); !ok {
		t.Fatal("s must be in dictionary")
	}
	if _, ok := s.LookupID(rdf.NewIRI("absent")); ok {
		t.Fatal("absent must not be in dictionary")
	}
}

func TestTwoStoresShareDB(t *testing.T) {
	db := rel.NewDB()
	a, err := New(db, Options{K: 4, TablePrefix: "A_"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(db, Options{K: 4, TablePrefix: "B_"})
	if err != nil {
		t.Fatal(err)
	}
	tr := rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	if err := a.Insert(tr); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(tr); err != nil {
		t.Fatal(err)
	}
	if db.Table("A_DPH").Len() != 1 || db.Table("B_DPH").Len() != 1 {
		t.Fatal("prefixed stores must coexist in one DB")
	}
}

func TestTopConstants(t *testing.T) {
	s := newTestStore(t, Options{K: 8})
	if err := s.LoadTriples(fig1Triples()); err != nil {
		t.Fatal(err)
	}
	top := s.Stats().TopConstants(3, s.Dict)
	if len(top) != 3 {
		t.Fatalf("want 3 top constants, got %v", top)
	}
}

// TestRandomLoadRetrievable: every inserted triple is findable through
// the raw relations (DPH row with the predicate, or its DS list), for
// random data and tight column budgets that force spills and
// multi-values.
func TestRandomLoadRetrievable(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		k := 2 + r.Intn(6)
		s := newTestStore(t, Options{K: k, KReverse: k})
		var triples []rdf.Triple
		seen := map[rdf.Triple]bool{}
		for i := 0; i < 60; i++ {
			tr := rdf.NewTriple(
				rdf.NewIRI(fmt.Sprintf("s%d", r.Intn(6))),
				rdf.NewIRI(fmt.Sprintf("p%d", r.Intn(10))),
				rdf.NewIRI(fmt.Sprintf("o%d", r.Intn(8))),
			)
			if seen[tr] {
				continue
			}
			seen[tr] = true
			triples = append(triples, tr)
			if err := s.Insert(tr); err != nil {
				t.Fatal(err)
			}
		}
		for _, tr := range triples {
			if !tripleStored(t, s, tr) {
				t.Fatalf("trial %d (k=%d): triple %v not retrievable", trial, k, tr)
			}
		}
		// Statistics agree with the load.
		if got := s.Stats().TotalTriples(); got != float64(len(triples)) {
			t.Fatalf("stats total = %f, want %d", got, len(triples))
		}
	}
}

// tripleStored scans the DPH rows of the subject for (pred, obj),
// resolving DS lists.
func tripleStored(t *testing.T, s *Store, tr rdf.Triple) bool {
	t.Helper()
	sid, ok := s.LookupID(tr.S)
	if !ok {
		return false
	}
	pid, _ := s.LookupID(tr.P)
	oid, _ := s.LookupID(tr.O)
	dph := s.DB.Table(s.TableName("DPH"))
	ds := s.DB.Table(s.TableName("DS"))
	for i := 0; i < dph.Len(); i++ {
		row := dph.RowAt(i)
		if row[0].I != sid {
			continue
		}
		for c := 0; c < s.K(false); c++ {
			pv, vv := row[2+2*c], row[2+2*c+1]
			if pv.K != rel.KindInt || pv.I != pid {
				continue
			}
			if vv.I == oid {
				return true
			}
			if dict.IsLid(vv.I) {
				for j := 0; j < ds.Len(); j++ {
					dr := ds.RowAt(j)
					if dr[0].I == vv.I && dr[1].I == oid {
						return true
					}
				}
			}
		}
	}
	return false
}
