package store

import (
	"fmt"

	"db2rdf/internal/dict"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/wal"
)

// Triple deletion. Removal is the mirror of side.insert: the (entity,
// predicate) cell is located through the mapping's candidate columns
// (the invariant that a pair lives in exactly one primary cell makes
// the probe terminate at the first hit), and the value is removed from
// whichever shape it is stored in — a direct cell, or a DS/RS
// multi-value list. A two-element list collapses back to a direct
// value; a row left with no predicates is tombstoned out of the
// primary table (rel.Table.DeleteRow) and unregistered from the
// entity's row list, so subsequent inserts rebuild it from scratch.
//
// Conservative state: spillPreds, multiPreds and spillCount are NOT
// decremented on delete. They only feed translator merge decisions and
// DS/RS join insertion, where a stale-true answer costs an unnecessary
// LEFT OUTER JOIN (COALESCE falls back to the direct value) or a
// skipped merge — never a wrong result. Dictionary entries are likewise
// retained; ids stay decodable so cached plans that embed them remain
// valid. The staleness is bounded: a publish that compacts chunks
// recomputes the markers exactly (recomputeMarkersLocked, triggered
// from installLocked), matching what snapshot recovery would rebuild.

// Delete removes one triple, reporting whether it was present. The
// epoch advances only when a triple was actually removed.
func (s *Store) Delete(t rdf.Triple) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed, err := s.deleteLocked(t)
	if removed {
		if perr := s.publishLocked(); perr != nil && err == nil {
			err = perr
		}
	}
	return removed, err
}

// DeleteTriples removes a slice of triples under one write lock,
// returning the number actually removed. The epoch advances once if
// any removal happened, even when a later triple errors.
func (s *Store) DeleteTriples(ts []rdf.Triple) (n int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		if n > 0 {
			if perr := s.publishLocked(); perr != nil && err == nil {
				err = perr
			}
		}
	}()
	for _, t := range ts {
		removed, derr := s.deleteLocked(t)
		if removed {
			n++
		}
		if derr != nil {
			return n, derr
		}
	}
	return n, nil
}

// Clear removes every triple, returning the count removed. Table
// shells, index definitions, mappings and the dictionary survive; the
// epoch advances only when the store was non-empty.
func (s *Store) Clear() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.ClearLocked()
	if n > 0 {
		_ = s.publishLocked() // memory state is cleared regardless of WAL health
	}
	return n
}

// Lock takes the store-wide write lock. It is exported for the SPARQL
// Update path in package db2rdf, which must evaluate a WHERE clause
// and apply its delta under one exclusive section; pair with Unlock.
func (s *Store) Lock() { s.mu.Lock() }

// Unlock releases the store-wide write lock.
func (s *Store) Unlock() { s.mu.Unlock() }

// InsertLocked adds one triple with the write lock already held
// (taken via Lock), reporting whether it was new. The caller is
// responsible for publishing (PublishLocked) when anything changed.
func (s *Store) InsertLocked(t rdf.Triple) (bool, error) {
	return s.insertLocked(t)
}

// DeleteLocked removes one triple with the write lock already held,
// reporting whether it was present. The caller is responsible for
// publishing (PublishLocked) when anything changed.
func (s *Store) DeleteLocked(t rdf.Triple) (bool, error) {
	return s.deleteLocked(t)
}

// ClearLocked is Clear with the write lock already held; it returns
// the number of triples removed and does not publish.
func (s *Store) ClearLocked() int {
	n := int(s.stats.TotalTriples())
	for _, t := range []*rel.Table{s.dph, s.ds, s.rph, s.rs} {
		t.Clear()
	}
	s.direct.resetState()
	s.reverse.resetState()
	s.stats.reset()
	s.markerDeletes = 0 // resetState made every marker exact again
	if n > 0 {
		// One clear op supersedes any deltas captured earlier in this
		// locked section; keeping them preserves replay order anyway.
		s.logDelta(wal.OpClear, 0, 0, 0)
	}
	return n
}

// deleteLocked removes one triple from both sides; caller holds the
// write lock. A term absent from the dictionary proves the triple was
// never stored.
func (s *Store) deleteLocked(t rdf.Triple) (bool, error) {
	sid, ok := s.Dict.Lookup(t.S)
	if !ok {
		return false, nil
	}
	pid, ok := s.Dict.Lookup(t.P)
	if !ok {
		return false, nil
	}
	oid, ok := s.Dict.Lookup(t.O)
	if !ok {
		return false, nil
	}
	removed, err := s.direct.remove(sid, pid, oid, t.P.Value)
	if err != nil || !removed {
		return removed, err
	}
	if _, err := s.reverse.remove(oid, pid, sid, t.P.Value); err != nil {
		return true, err
	}
	s.stats.unrecord(sid, pid, oid)
	s.markerDeletes++
	s.logDelta(wal.OpDelete, sid, pid, oid)
	return true, nil
}

// recomputeMarkersLocked rebuilds one side's spill/multi predicate
// markers and spill count exactly from the live registries — the same
// state rebuildSideLocked derives after a snapshot recovery. The
// entity-keyed registries (entityRows, spilled, lidSets) are maintained
// exactly across deletes, so only the predicate-keyed aggregates need
// the rescan. The caller holds the store write lock.
func (d *side) recomputeMarkersLocked() {
	spill := make(map[int64]bool)
	multi := make(map[int64]bool)
	spillCount := 0
	for _, sh := range d.shards {
		for entity, rows := range sh.entityRows {
			if len(rows) > 1 {
				spillCount += len(rows) - 1
			}
			spilled := sh.spilled[entity]
			for _, ri := range rows {
				for c := 0; c < d.k; c++ {
					pv := d.primary.CellAt(ri, 2+2*c)
					if pv.K != rel.KindInt {
						continue
					}
					if spilled {
						spill[pv.I] = true
					}
					if vv := d.primary.CellAt(ri, 2+2*c+1); vv.K == rel.KindInt && dict.IsLid(vv.I) {
						multi[pv.I] = true
					}
				}
			}
		}
	}
	d.predMu.Lock()
	// Fresh maps replace the (possibly snapshot-shared) old ones, so a
	// published snapshot's captured copies are never written.
	d.spillPreds, d.multiPreds, d.spillCount = spill, multi, spillCount
	d.predShared = false
	d.predMu.Unlock()
}

// remove deletes (entity, pid) -> member from one side, reporting
// whether the triple was stored there.
func (d *side) remove(entity, pid, member int64, predURI string) (bool, error) {
	cols := d.mapping.Columns(predURI)
	sh := d.shard(entity)
	rows := sh.entityRows[entity]
	for _, ri := range rows {
		for _, c := range cols {
			pc, vc := 2+2*c, 2+2*c+1
			pv := d.primary.CellAt(ri, pc)
			if pv.K != rel.KindInt || pv.I != pid {
				continue
			}
			// The unique cell for (entity, pid) across all rows.
			cur := d.primary.CellAt(ri, vc)
			if cur.K == rel.KindInt && dict.IsLid(cur.I) {
				lid := cur.I
				set := sh.lidSets[lid]
				if !set[member] {
					return false, nil // not in the list
				}
				delete(set, member)
				if err := d.removeSecondary(lid, member); err != nil {
					return true, err
				}
				if len(set) == 1 {
					// Collapse the one-element list to a direct value,
					// mirroring the single→list conversion on insert.
					var last int64
					for m := range set {
						last = m
					}
					if err := d.removeSecondary(lid, last); err != nil {
						return true, err
					}
					delete(sh.lidSets, lid)
					return true, d.primary.SetCell(ri, vc, rel.Int(last))
				}
				if len(set) == 0 {
					// Defensive: lists always hold ≥2 members, but an
					// empty set must still clear the cell.
					delete(sh.lidSets, lid)
					return true, d.clearCell(sh, entity, ri, pc, vc)
				}
				return true, nil
			}
			if cur.K == rel.KindInt && cur.I == member {
				return true, d.clearCell(sh, entity, ri, pc, vc)
			}
			return false, nil // predicate present with a different value
		}
	}
	return false, nil
}

// clearCell nulls the (pred, val) cell pair at row ri; a row left with
// no predicates at all is tombstoned and unregistered.
func (d *side) clearCell(sh *sideShard, entity int64, ri, pc, vc int) error {
	if err := d.primary.SetCell(ri, pc, rel.Null); err != nil {
		return err
	}
	if err := d.primary.SetCell(ri, vc, rel.Null); err != nil {
		return err
	}
	for c := 0; c < d.k; c++ {
		if !d.primary.CellAt(ri, 2+2*c).IsNull() {
			return nil
		}
	}
	if err := d.primary.DeleteRow(ri); err != nil {
		return err
	}
	rows := sh.entityRows[entity]
	kept := rows[:0]
	for _, r := range rows {
		if r != ri {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(sh.entityRows, entity)
		delete(sh.spilled, entity)
	} else {
		sh.entityRows[entity] = kept
	}
	return nil
}

// removeSecondary deletes the (lid, member) row from the DS/RS table
// via the lid index.
func (d *side) removeSecondary(lid, member int64) error {
	ids, ok := d.secondary.IndexLookup("lid", rel.Int(lid))
	if !ok {
		return fmt.Errorf("store: table %s has no lid index", d.secondary.Name)
	}
	for _, id := range ids {
		if v := d.secondary.CellAt(int(id), 1); v.K == rel.KindInt && v.I == member {
			return d.secondary.DeleteRow(int(id))
		}
	}
	return nil
}

// resetState reinitializes a side's loading state (Clear support).
func (d *side) resetState() {
	for i := range d.shards {
		d.shards[i] = &sideShard{
			entityRows: make(map[int64][]int),
			lidSets:    make(map[int64]map[int64]bool),
			spilled:    make(map[int64]bool),
		}
	}
	d.predMu.Lock()
	// Fresh maps, so snapshot-captured copies are left untouched.
	d.spillPreds = make(map[int64]bool)
	d.multiPreds = make(map[int64]bool)
	d.spillCount = 0
	d.predShared = false
	d.predMu.Unlock()
}

// unrecord reverses one record call; zero-count keys are dropped so
// per-constant estimates for fully deleted terms report exact zero.
func (st *Stats) unrecord(sid, pid, oid int64) {
	st.mu.Lock()
	st.total--
	decrCount(st.bySubj, sid)
	decrCount(st.byObj, oid)
	decrCount(st.byPred, pid)
	st.mu.Unlock()
}

func decrCount(m map[int64]int64, id int64) {
	if n := m[id] - 1; n > 0 {
		m[id] = n
	} else {
		delete(m, id)
	}
}

// reset empties the statistics (Clear support).
func (st *Stats) reset() {
	st.mu.Lock()
	st.total = 0
	st.bySubj = make(map[int64]int64)
	st.byObj = make(map[int64]int64)
	st.byPred = make(map[int64]int64)
	st.mu.Unlock()
}
