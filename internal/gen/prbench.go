package gen

import (
	"fmt"
	"strings"

	"db2rdf/internal/rdf"
)

// PRBench namespace.
const pr = "http://prbench/"

// PRBench generates a tool-integration dataset in the spirit of the
// paper's private benchmark: software artifacts (requirements, bugs,
// test cases, change sets, builds, comments) produced by different
// tools about the same projects, densely cross-linked (fixes,
// verifies, blockedBy, implements, partOf). The original is a quad
// dataset with one graph per artifact; as in the paper's own setup for
// triple-only systems, graphs are flattened away.
func PRBench(targetTriples int) *Dataset {
	r := rng(17)
	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.NewTriple(iri(s), iri(p), o))
	}
	typ := func(s, class string) { add(s, rdf.RDFType, iri(pr+class)) }

	statuses := []string{"open", "in-progress", "resolved", "closed", "verified"}
	severities := []string{"critical", "major", "minor", "trivial"}

	nProjects := 10
	nPersons := 120
	for i := 0; i < nPersons; i++ {
		p := fmt.Sprintf("%sperson%d", pr, i)
		typ(p, "Person")
		add(p, pr+"name", lit(fmt.Sprintf("Person %d", i)))
	}
	units := targetTriples / 40 // one unit = 1 req + 2 bugs + 1 test + 1 commit (+ extras)
	if units < 20 {
		units = 20
	}
	person := func() rdf.Term { return iri(fmt.Sprintf("%sperson%d", pr, r.Intn(nPersons))) }
	project := func(u int) rdf.Term { return iri(fmt.Sprintf("%sproject%d", pr, u%nProjects)) }

	for i := 0; i < nProjects; i++ {
		pj := fmt.Sprintf("%sproject%d", pr, i)
		typ(pj, "Project")
		add(pj, pr+"name", lit(fmt.Sprintf("Project %d", i)))
	}

	var bugs []string
	for u := 0; u < units; u++ {
		req := fmt.Sprintf("%sreq%d", pr, u)
		typ(req, "Requirement")
		add(req, pr+"belongsTo", project(u))
		add(req, pr+"title", lit(fmt.Sprintf("Requirement %d", u)))
		add(req, pr+"status", lit(statuses[r.Intn(len(statuses))]))
		add(req, pr+"createdBy", person())
		add(req, pr+"priority", rdf.NewInteger(int64(1+r.Intn(5))))

		test := fmt.Sprintf("%stest%d", pr, u)
		typ(test, "TestCase")
		add(test, pr+"belongsTo", project(u))
		add(test, pr+"verifies", iri(req))
		if r.Intn(3) == 0 && u > 0 {
			add(test, pr+"verifies", iri(fmt.Sprintf("%sreq%d", pr, r.Intn(u))))
		}
		add(test, pr+"status", lit(statuses[r.Intn(len(statuses))]))
		add(test, pr+"title", lit(fmt.Sprintf("Test %d", u)))

		build := fmt.Sprintf("%sbuild%d", pr, u/8)
		if u%8 == 0 {
			typ(build, "Build")
			add(build, pr+"status", lit([]string{"green", "red"}[r.Intn(2)]))
			add(build, pr+"belongsTo", project(u))
		}

		for b := 0; b < 2; b++ {
			bug := fmt.Sprintf("%sbug%d_%d", pr, u, b)
			bugs = append(bugs, bug)
			typ(bug, "Bug")
			add(bug, pr+"belongsTo", project(u))
			add(bug, pr+"title", lit(fmt.Sprintf("Bug %d-%d", u, b)))
			add(bug, pr+"status", lit(statuses[r.Intn(len(statuses))]))
			add(bug, pr+"severity", lit(severities[r.Intn(len(severities))]))
			add(bug, pr+"assignedTo", person())
			add(bug, pr+"reportedBy", person())
			add(bug, pr+"implements", iri(req))
			if len(bugs) > 3 && r.Intn(4) == 0 {
				add(bug, pr+"blockedBy", iri(bugs[r.Intn(len(bugs)-1)]))
			}

			// ~10% of bugs have no fixing commit yet (negation
			// queries need orphans).
			if r.Intn(10) == 0 {
				continue
			}
			commit := fmt.Sprintf("%scommit%d_%d", pr, u, b)
			typ(commit, "ChangeSet")
			add(commit, pr+"fixes", iri(bug))
			add(commit, pr+"author", person())
			add(commit, pr+"partOf", iri(build))
			add(commit, pr+"message", lit(fmt.Sprintf("fix for bug %d-%d", u, b)))
		}
	}
	return &Dataset{Name: "prbench", Triples: ts, Queries: PRBenchQueries()}
}

// PRBenchQueries returns the 29-query workload (PQ1-PQ29): selective
// artifact lookups, cross-tool joins, optional enrichments, and the
// very large disjunctive queries the paper highlights (PQ26 is a UNION
// of 100 conjunctive patterns, mirroring the 500-triple/100-OR query
// of §3.1.1).
func PRBenchQueries() []Query {
	p := fmt.Sprintf(`PREFIX pr: <%s> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> `, pr)
	var qs []Query
	addq := func(name, body string) { qs = append(qs, Query{Name: name, SPARQL: p + body}) }

	// PQ1: star lookup on one bug (the paper's 4ms query).
	addq("PQ1", `SELECT ?st ?sev ?who WHERE { <`+pr+`bug5_0> pr:status ?st . <`+pr+`bug5_0> pr:severity ?sev . <`+pr+`bug5_0> pr:assignedTo ?who }`)
	// PQ2: open bugs of one project.
	addq("PQ2", `SELECT ?b WHERE { ?b rdf:type pr:Bug . ?b pr:belongsTo pr:project0 . ?b pr:status "open" }`)
	// PQ3: critical bugs and their assignees.
	addq("PQ3", `SELECT ?b ?who WHERE { ?b rdf:type pr:Bug . ?b pr:severity "critical" . ?b pr:assignedTo ?who }`)
	// PQ4: requirements implemented by bugs assigned to person1.
	addq("PQ4", `SELECT ?r WHERE { ?b pr:assignedTo pr:person1 . ?b pr:implements ?r }`)
	// PQ5: tests verifying requirements of project0.
	addq("PQ5", `SELECT ?t ?r WHERE { ?t rdf:type pr:TestCase . ?t pr:verifies ?r . ?r pr:belongsTo pr:project0 }`)
	// PQ6: commits fixing critical bugs.
	addq("PQ6", `SELECT ?c ?b WHERE { ?c rdf:type pr:ChangeSet . ?c pr:fixes ?b . ?b pr:severity "critical" }`)
	// PQ7: bug with optional blocker.
	addq("PQ7", `SELECT ?b ?blk WHERE { ?b rdf:type pr:Bug . ?b pr:status "open" OPTIONAL { ?b pr:blockedBy ?blk } }`)
	// PQ8: who reported and who fixes (commit author) per bug.
	addq("PQ8", `SELECT ?b ?rep ?auth WHERE { ?b pr:reportedBy ?rep . ?c pr:fixes ?b . ?c pr:author ?auth }`)
	// PQ9: bug or requirement titles of project1.
	addq("PQ9", `SELECT ?a ?t WHERE { { ?a rdf:type pr:Bug } UNION { ?a rdf:type pr:Requirement } ?a pr:belongsTo pr:project1 . ?a pr:title ?t }`)
	// PQ10: full traceability chain (the Fig. 17 long-runner):
	// requirement -> bug -> commit -> build, with test verification.
	addq("PQ10", `SELECT ?r ?b ?c ?bd ?t WHERE {
		?b pr:implements ?r .
		?c pr:fixes ?b .
		?c pr:partOf ?bd .
		?t pr:verifies ?r }`)
	// PQ11: priorities of requirements with open bugs.
	addq("PQ11", `SELECT ?r ?pri WHERE { ?b pr:implements ?r . ?b pr:status "open" . ?r pr:priority ?pri }`)
	// PQ12: high priority requirements (numeric filter).
	addq("PQ12", `SELECT ?r WHERE { ?r rdf:type pr:Requirement . ?r pr:priority ?p . FILTER (?p >= 4) }`)
	// PQ13: everything about person2's assignments (var predicate).
	addq("PQ13", `SELECT ?b ?p ?o WHERE { ?b pr:assignedTo pr:person2 . ?b ?p ?o }`)
	// PQ14: bugs blocked by resolved bugs (Fig. 18 medium).
	addq("PQ14", `SELECT ?b ?blk WHERE { ?b pr:blockedBy ?blk . ?blk pr:status "resolved" }`)
	// PQ15: tests of red builds' projects.
	addq("PQ15", `SELECT ?t WHERE { ?bd rdf:type pr:Build . ?bd pr:status "red" . ?bd pr:belongsTo ?pj . ?t rdf:type pr:TestCase . ?t pr:belongsTo ?pj }`)
	// PQ16: commit messages regex.
	addq("PQ16", `SELECT ?c ?m WHERE { ?c pr:message ?m . FILTER regex(?m, "bug 1[0-9]-") }`)
	// PQ17: artifacts of project2 with optional status.
	addq("PQ17", `SELECT ?a ?st WHERE { ?a pr:belongsTo pr:project2 OPTIONAL { ?a pr:status ?st } }`)
	// PQ18: bug count proxy: distinct assignees of open bugs.
	addq("PQ18", `SELECT DISTINCT ?who WHERE { ?b pr:status "open" . ?b pr:assignedTo ?who . ?b rdf:type pr:Bug }`)
	// PQ19: person names ordered.
	addq("PQ19", `SELECT ?n WHERE { ?p rdf:type pr:Person . ?p pr:name ?n } ORDER BY ?n LIMIT 20`)
	// PQ20: ASK for a critical open bug.
	addq("PQ20", `ASK { ?b pr:severity "critical" . ?b pr:status "open" }`)
	// PQ21: requirements verified by multiple tests (self join).
	addq("PQ21", `SELECT DISTINCT ?r WHERE { ?t1 pr:verifies ?r . ?t2 pr:verifies ?r . FILTER (?t1 != ?t2) }`)
	// PQ22: chains of blocked bugs (length 2).
	addq("PQ22", `SELECT ?a ?c WHERE { ?a pr:blockedBy ?b . ?b pr:blockedBy ?c }`)
	// PQ23: union of statuses across artifact kinds.
	addq("PQ23", `SELECT ?a WHERE { { ?a pr:status "verified" } UNION { ?a pr:status "closed" } }`)
	// PQ24: cross-tool star on requirement5 (Fig. 18 medium).
	addq("PQ24", `SELECT ?b ?t ?st WHERE { ?b pr:implements <`+pr+`req5> . ?t pr:verifies <`+pr+`req5> . <`+pr+`req5> pr:status ?st }`)
	// PQ25: optional chain: bugs with optional fixing commit and its build.
	addq("PQ25", `SELECT ?b ?c ?bd WHERE { ?b rdf:type pr:Bug . ?b pr:severity "major" OPTIONAL { ?c pr:fixes ?b . ?c pr:partOf ?bd } }`)
	// PQ26: the 100-arm disjunction (50 people x 2 statuses), as in
	// the 100-OR tool-integration query of §3.1.1.
	var arms []string
	for i := 0; i < 50; i++ {
		for _, st := range []string{"open", "resolved"} {
			arms = append(arms, fmt.Sprintf(`{ ?b rdf:type pr:Bug . ?b pr:assignedTo pr:person%d . ?b pr:status "%s" . ?b pr:severity "critical" . ?b pr:belongsTo ?pj }`, i, st))
		}
	}
	addq("PQ26", `SELECT ?b ?pj WHERE { `+strings.Join(arms, " UNION ")+` }`)
	// PQ27: large multi-way join across all artifact kinds (Fig. 17).
	addq("PQ27", `SELECT ?pj ?r ?b ?t ?c WHERE {
		?r rdf:type pr:Requirement . ?r pr:belongsTo ?pj .
		?b pr:implements ?r . ?b pr:status "open" .
		?t pr:verifies ?r .
		?c pr:fixes ?b }`)
	// PQ28: union of three cross-tool traces (Fig. 17).
	addq("PQ28", `SELECT ?x WHERE {
		{ ?x pr:fixes ?b . ?b pr:severity "critical" }
		UNION { ?x pr:verifies ?r . ?r pr:priority ?p . FILTER (?p >= 4) }
		UNION { ?x pr:blockedBy ?y . ?y pr:status "open" } }`)
	// PQ29: everyone touching project3 artifacts in any role (Fig. 18).
	addq("PQ29", `SELECT DISTINCT ?who WHERE {
		?a pr:belongsTo pr:project3 .
		{ ?a pr:assignedTo ?who } UNION { ?a pr:reportedBy ?who } UNION { ?a pr:createdBy ?who } }`)
	return qs
}
