package gen

import (
	"fmt"

	"db2rdf/internal/rdf"
)

// Micro generates the §2.1 micro-benchmark: subjects drawn from the
// predicate-set distribution of Table 1 (the paper uses 1M triples;
// pass a smaller target for laptop-scale runs). Single-valued
// predicates SV1-SV8 get one object each; multi-valued predicates
// MV1-MV4 get three objects each. The predicate sets are arranged so a
// star over all of SV1-SV4 (or MV1-MV4) is highly selective while the
// individual predicates are not, and SV5-SV8 are individually
// selective (1% of subjects) — exactly the selectivity structure
// Table 1 encodes.
func Micro(targetTriples int) *Dataset {
	r := rng(42)
	// Predicate sets and relative frequencies from Table 1.
	type predSet struct {
		svs, mvs []int
		freq     float64
	}
	sets := []predSet{
		{svs: []int{1, 2, 3, 4}, mvs: []int{1, 2, 3, 4}, freq: .01},
		{svs: []int{1, 2, 3}, mvs: []int{1, 2, 3}, freq: .24},
		{svs: []int{1, 3, 4}, mvs: []int{1, 3, 4}, freq: .25},
		{svs: []int{2, 3, 4}, mvs: []int{2, 3, 4}, freq: .25},
		{svs: []int{1, 2, 4}, mvs: []int{1, 2, 4}, freq: .24},
		{svs: []int{5, 6, 7, 8}, freq: .01},
	}
	// Triples per subject: |svs| + 3*|mvs|. Expected triples per
	// subject across the distribution ~ 0.01*16 + 0.98*12 + 0.01*4 =
	// 11.96.
	const expPerSubject = 11.96
	subjects := int(float64(targetTriples) / expPerSubject)
	if subjects < 100 {
		subjects = 100
	}
	var triples []rdf.Triple
	cum := make([]float64, len(sets))
	acc := 0.0
	for i, s := range sets {
		acc += s.freq
		cum[i] = acc
	}
	objPool := 97 // small pool so individual predicates are unselective
	for i := 0; i < subjects; i++ {
		x := r.Float64()
		si := len(sets) - 1
		for j, c := range cum {
			if x < c {
				si = j
				break
			}
		}
		s := iri(fmt.Sprintf("http://micro/e%d", i))
		for _, sv := range sets[si].svs {
			o := lit(fmt.Sprintf("sv%d-o%d", sv, r.Intn(objPool)))
			triples = append(triples, rdf.NewTriple(s, iri(fmt.Sprintf("http://micro/SV%d", sv)), o))
		}
		for _, mv := range sets[si].mvs {
			for v := 0; v < 3; v++ {
				o := lit(fmt.Sprintf("mv%d-o%d", mv, r.Intn(objPool)))
				triples = append(triples, rdf.NewTriple(s, iri(fmt.Sprintf("http://micro/MV%d", mv)), o))
			}
		}
	}
	return &Dataset{Name: "micro", Triples: triples, Queries: MicroQueries()}
}

// MicroQueries returns the ten star queries of Table 2.
func MicroQueries() []Query {
	star := func(name string, preds ...string) Query {
		q := "SELECT ?s WHERE {"
		for i, p := range preds {
			q += fmt.Sprintf(" ?s <http://micro/%s> ?o%d .", p, i)
		}
		q += " }"
		return Query{Name: name, SPARQL: q}
	}
	return []Query{
		star("Q1", "SV1", "SV2", "SV3", "SV4"),
		star("Q2", "MV1", "MV2", "MV3", "MV4"),
		star("Q3", "SV1", "MV1", "MV2", "MV3", "MV4"),
		star("Q4", "SV1", "SV2", "MV1", "MV2", "MV3", "MV4"),
		star("Q5", "SV1", "SV2", "SV3", "MV1", "MV2", "MV3", "MV4"),
		star("Q6", "SV1", "SV2", "SV3", "SV4", "MV1", "MV2", "MV3", "MV4"),
		star("Q7", "SV5"),
		star("Q8", "SV5", "SV6"),
		star("Q9", "SV5", "SV6", "SV7"),
		star("Q10", "SV5", "SV6", "SV7", "SV8"),
	}
}

// MicroFlowData generates the §3.3 flow-direction experiment data: two
// constants, O1 with relative frequency ~.75 and O2 with ~.01, joined
// through shared subjects (Figure 14).
func MicroFlowData(targetTriples int) *Dataset {
	r := rng(43)
	subjects := targetTriples / 2
	if subjects < 100 {
		subjects = 100
	}
	var triples []rdf.Triple
	for i := 0; i < subjects; i++ {
		s := iri(fmt.Sprintf("http://flow/e%d", i))
		// SV1 = O1 for 75% of subjects, a scattered value otherwise.
		if r.Float64() < .75 {
			triples = append(triples, rdf.NewTriple(s, iri("http://flow/SV1"), lit("O1")))
		} else {
			triples = append(triples, rdf.NewTriple(s, iri("http://flow/SV1"), lit(fmt.Sprintf("x%d", i))))
		}
		// SV2 = O2 for 1% of subjects.
		if r.Float64() < .01 {
			triples = append(triples, rdf.NewTriple(s, iri("http://flow/SV2"), lit("O2")))
		} else {
			triples = append(triples, rdf.NewTriple(s, iri("http://flow/SV2"), lit(fmt.Sprintf("y%d", i))))
		}
	}
	return &Dataset{
		Name:    "microflow",
		Triples: triples,
		Queries: []Query{{
			Name:   "FQ1",
			SPARQL: `SELECT ?s WHERE { ?s <http://flow/SV1> "O1" . ?s <http://flow/SV2> "O2" }`,
		}},
	}
}
