package gen

import (
	"fmt"

	"db2rdf/internal/rdf"
)

// LUBM namespace.
const ub = "http://lubm/"

// LUBM generates a scaled-down LUBM universe: universities with
// departments, faculty (full/associate/assistant professors and
// lecturers), students (undergraduate and graduate), courses,
// research groups and publications, wired with the benchmark's
// predicates (memberOf, worksFor, advisor, takesCourse, teacherOf,
// publicationAuthor, degree predicates, ...). The degree distribution
// matches the benchmark's published profile: ~6 triples per subject on
// average with an 8-ish average in-degree driven by heavily shared
// objects (types, departments, courses).
func LUBM(universities int) *Dataset {
	r := rng(7)
	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.NewTriple(iri(s), iri(p), o))
	}
	typ := func(s, class string) { add(s, rdf.RDFType, iri(ub+class)) }

	for u := 0; u < universities; u++ {
		uni := fmt.Sprintf("%sUniversity%d", ub, u)
		typ(uni, "University")
		add(uni, ub+"name", lit(fmt.Sprintf("University%d", u)))
		depts := 4 + r.Intn(3)
		for d := 0; d < depts; d++ {
			dept := fmt.Sprintf("%sDept%d.U%d", ub, d, u)
			typ(dept, "Department")
			add(dept, ub+"subOrganizationOf", iri(uni))
			add(dept, ub+"name", lit(fmt.Sprintf("Department%d", d)))

			// Research groups.
			for g := 0; g < 2; g++ {
				grp := fmt.Sprintf("%sGroup%d.D%d.U%d", ub, g, d, u)
				typ(grp, "ResearchGroup")
				add(grp, ub+"subOrganizationOf", iri(dept))
			}

			// Faculty.
			var faculty []string
			mkFaculty := func(class string, n int) {
				for i := 0; i < n; i++ {
					f := fmt.Sprintf("%s%s%d.D%d.U%d", ub, class, i, d, u)
					faculty = append(faculty, f)
					typ(f, class)
					add(f, ub+"worksFor", iri(dept))
					add(f, ub+"name", lit(fmt.Sprintf("%s%d", class, i)))
					add(f, ub+"emailAddress", lit(fmt.Sprintf("%s%d@d%d.u%d.edu", class, i, d, u)))
					add(f, ub+"telephone", lit(fmt.Sprintf("555-%04d", r.Intn(10000))))
					add(f, ub+"undergraduateDegreeFrom", iri(fmt.Sprintf("%sUniversity%d", ub, r.Intn(universities))))
					add(f, ub+"mastersDegreeFrom", iri(fmt.Sprintf("%sUniversity%d", ub, r.Intn(universities))))
					add(f, ub+"doctoralDegreeFrom", iri(fmt.Sprintf("%sUniversity%d", ub, r.Intn(universities))))
					add(f, ub+"researchInterest", lit(fmt.Sprintf("Research%d", r.Intn(30))))
				}
			}
			mkFaculty("FullProfessor", 2)
			mkFaculty("AssociateProfessor", 3)
			mkFaculty("AssistantProfessor", 3)
			mkFaculty("Lecturer", 2)
			add(faculty[0], ub+"headOf", iri(dept))

			// Courses: the first half are undergraduate, the rest
			// graduate; each taught by one faculty member.
			var courses, gradCourses []string
			for c := 0; c < 10; c++ {
				course := fmt.Sprintf("%sCourse%d.D%d.U%d", ub, c, d, u)
				if c < 5 {
					typ(course, "Course")
					courses = append(courses, course)
				} else {
					typ(course, "GraduateCourse")
					gradCourses = append(gradCourses, course)
				}
				add(course, ub+"name", lit(fmt.Sprintf("Course%d", c)))
				teacher := faculty[r.Intn(len(faculty))]
				add(teacher, ub+"teacherOf", iri(course))
			}

			// Undergraduate students.
			for i := 0; i < 20+r.Intn(10); i++ {
				s := fmt.Sprintf("%sUGStudent%d.D%d.U%d", ub, i, d, u)
				typ(s, "UndergraduateStudent")
				add(s, ub+"memberOf", iri(dept))
				add(s, ub+"name", lit(fmt.Sprintf("UGStudent%d", i)))
				for c := 0; c < 2+r.Intn(2); c++ {
					add(s, ub+"takesCourse", iri(courses[r.Intn(len(courses))]))
				}
				if r.Intn(5) == 0 {
					add(s, ub+"advisor", iri(faculty[r.Intn(len(faculty))]))
				}
			}

			// Graduate students.
			for i := 0; i < 8+r.Intn(5); i++ {
				s := fmt.Sprintf("%sGradStudent%d.D%d.U%d", ub, i, d, u)
				typ(s, "GraduateStudent")
				add(s, ub+"memberOf", iri(dept))
				add(s, ub+"name", lit(fmt.Sprintf("GradStudent%d", i)))
				add(s, ub+"undergraduateDegreeFrom", iri(fmt.Sprintf("%sUniversity%d", ub, r.Intn(universities))))
				add(s, ub+"emailAddress", lit(fmt.Sprintf("grad%d@d%d.u%d.edu", i, d, u)))
				for c := 0; c < 1+r.Intn(3); c++ {
					add(s, ub+"takesCourse", iri(gradCourses[r.Intn(len(gradCourses))]))
				}
				add(s, ub+"advisor", iri(faculty[r.Intn(8)]))
				if r.Intn(4) == 0 {
					add(s, ub+"teachingAssistantOf", iri(courses[r.Intn(len(courses))]))
				}
			}

			// Publications by professors and their students.
			for i := 0; i < 15; i++ {
				pub := fmt.Sprintf("%sPub%d.D%d.U%d", ub, i, d, u)
				typ(pub, "Publication")
				add(pub, ub+"name", lit(fmt.Sprintf("Publication%d", i)))
				add(pub, ub+"publicationAuthor", iri(faculty[r.Intn(8)]))
				if r.Intn(2) == 0 {
					add(pub, ub+"publicationAuthor", iri(fmt.Sprintf("%sGradStudent%d.D%d.U%d", ub, r.Intn(8), d, u)))
				}
			}
		}
	}
	return &Dataset{Name: "lubm", Triples: ts, Queries: LUBMQueries()}
}

// LUBMQueries returns the 12 benchmark queries the paper evaluates
// (LQ1-LQ10, LQ13, LQ14), pre-expanded for inference exactly as §4.1
// describes: a query over Student becomes a UNION over
// UndergraduateStudent and GraduateStudent, Professor expands to its
// three subclasses, and so on.
func LUBMQueries() []Query {
	p := fmt.Sprintf(`PREFIX ub: <%s> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> `, ub)
	professorArms := func(v string) string {
		return fmt.Sprintf(`{ %[1]s rdf:type ub:FullProfessor } UNION { %[1]s rdf:type ub:AssociateProfessor } UNION { %[1]s rdf:type ub:AssistantProfessor }`, v)
	}
	studentArms := func(v string) string {
		return fmt.Sprintf(`{ %[1]s rdf:type ub:UndergraduateStudent } UNION { %[1]s rdf:type ub:GraduateStudent }`, v)
	}
	return []Query{
		{"LQ1", p + `SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:takesCourse <` + ub + `Course5.D0.U0> }`},
		{"LQ2", p + `SELECT ?x ?y ?z WHERE {
			?x rdf:type ub:GraduateStudent .
			?y rdf:type ub:University .
			?z rdf:type ub:Department .
			?x ub:memberOf ?z .
			?z ub:subOrganizationOf ?y .
			?x ub:undergraduateDegreeFrom ?y }`},
		{"LQ3", p + `SELECT ?x WHERE { ?x rdf:type ub:Publication . ?x ub:publicationAuthor <` + ub + `AssistantProfessor0.D0.U0> }`},
		{"LQ4", p + `SELECT ?x ?name ?email ?tel WHERE {
			` + professorArms("?x") + `
			?x ub:worksFor <` + ub + `Dept0.U0> .
			?x ub:name ?name .
			?x ub:emailAddress ?email .
			?x ub:telephone ?tel }`},
		{"LQ5", p + `SELECT ?x WHERE {
			{ ?x ub:memberOf <` + ub + `Dept0.U0> } UNION { ?x ub:worksFor <` + ub + `Dept0.U0> } }`},
		{"LQ6", p + `SELECT ?x WHERE { ` + studentArms("?x") + ` }`},
		{"LQ7", p + `SELECT ?x ?y WHERE {
			` + studentArms("?x") + `
			<` + ub + `AssociateProfessor0.D0.U0> ub:teacherOf ?y .
			?x ub:takesCourse ?y }`},
		{"LQ8", p + `SELECT ?x ?y ?email WHERE {
			?x rdf:type ub:GraduateStudent .
			?y rdf:type ub:Department .
			?x ub:memberOf ?y .
			?y ub:subOrganizationOf <` + ub + `University0> .
			?x ub:emailAddress ?email }`},
		{"LQ9", p + `SELECT ?x ?y ?z WHERE {
			?x rdf:type ub:GraduateStudent .
			?x ub:advisor ?y .
			?y ub:teacherOf ?z .
			?x ub:takesCourse ?z }`},
		{"LQ10", p + `SELECT ?x WHERE { ` + studentArms("?x") + ` ?x ub:takesCourse <` + ub + `Course5.D0.U0> }`},
		{"LQ13", p + `SELECT ?x WHERE {
			{ ?x ub:undergraduateDegreeFrom <` + ub + `University0> }
			UNION { ?x ub:mastersDegreeFrom <` + ub + `University0> }
			UNION { ?x ub:doctoralDegreeFrom <` + ub + `University0> } }`},
		{"LQ14", p + `SELECT ?x WHERE { ?x rdf:type ub:UndergraduateStudent }`},
	}
}
