// Package gen contains deterministic, scaled-down generators for the
// four workloads of the paper's evaluation (§4) — LUBM, SP2Bench, a
// DBpedia-like power-law dataset, and a PRBench-like tool-integration
// dataset — plus the §2.1 micro-benchmark. Each generator produces
// triples with the degree distributions and predicate co-occurrence
// structure that drive the paper's results, and the associated query
// workload (shapes faithful to the published benchmarks, adapted to
// SPARQL 1.0 without aggregates).
package gen

import (
	"math/rand"

	"db2rdf/internal/rdf"
)

// Query is a named benchmark query.
type Query struct {
	Name   string
	SPARQL string
}

// Dataset couples generated triples with their query workload.
type Dataset struct {
	Name    string
	Triples []rdf.Triple
	Queries []Query
}

// rng returns a deterministic random source so every run regenerates
// identical datasets.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }
