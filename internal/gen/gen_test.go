package gen

import (
	"testing"

	"db2rdf/internal/rdf"
)

func TestGeneratorsAreDeterministic(t *testing.T) {
	for _, mk := range []func() *Dataset{
		func() *Dataset { return Micro(3000) },
		func() *Dataset { return MicroFlowData(2000) },
		func() *Dataset { return LUBM(1) },
		func() *Dataset { return SP2B(3000) },
		func() *Dataset { return DBpedia(3000) },
		func() *Dataset { return PRBench(3000) },
	} {
		a, b := mk(), mk()
		if len(a.Triples) != len(b.Triples) {
			t.Fatalf("%s: nondeterministic triple count %d vs %d", a.Name, len(a.Triples), len(b.Triples))
		}
		for i := range a.Triples {
			if a.Triples[i] != b.Triples[i] {
				t.Fatalf("%s: triple %d differs between runs", a.Name, i)
			}
		}
	}
}

func TestGeneratorsProduceValidRDF(t *testing.T) {
	for _, ds := range []*Dataset{Micro(2000), LUBM(1), SP2B(2000), DBpedia(2000), PRBench(2000)} {
		for i, tr := range ds.Triples {
			if tr.S.IsLiteral() {
				t.Fatalf("%s: triple %d has literal subject", ds.Name, i)
			}
			if !tr.P.IsIRI() {
				t.Fatalf("%s: triple %d has non-IRI predicate", ds.Name, i)
			}
			if tr.S.Value == "" || tr.P.Value == "" {
				t.Fatalf("%s: triple %d has empty term", ds.Name, i)
			}
		}
	}
}

func TestMicroDistribution(t *testing.T) {
	ds := Micro(50000)
	// Count subjects per predicate.
	bySubj := map[string]map[string]bool{}
	for _, tr := range ds.Triples {
		if bySubj[tr.S.Value] == nil {
			bySubj[tr.S.Value] = map[string]bool{}
		}
		bySubj[tr.S.Value][tr.P.Value] = true
	}
	total := len(bySubj)
	withAllSV := 0
	withSV5 := 0
	for _, preds := range bySubj {
		if preds["http://micro/SV1"] && preds["http://micro/SV2"] && preds["http://micro/SV3"] && preds["http://micro/SV4"] {
			withAllSV++
		}
		if preds["http://micro/SV5"] {
			withSV5++
		}
	}
	// Table 1: the full SV1-4 set and the SV5-8 set each cover ~1%.
	frac := float64(withAllSV) / float64(total)
	if frac < 0.003 || frac > 0.03 {
		t.Errorf("SV1-4 coverage = %.4f, want ~0.01", frac)
	}
	frac = float64(withSV5) / float64(total)
	if frac < 0.003 || frac > 0.03 {
		t.Errorf("SV5 coverage = %.4f, want ~0.01", frac)
	}
	// Individual predicates are unselective: SV1 appears on ~74% of
	// subjects (rows 1, 2, 3, 5 of Table 1).
	withSV1 := 0
	for _, preds := range bySubj {
		if preds["http://micro/SV1"] {
			withSV1++
		}
	}
	frac = float64(withSV1) / float64(total)
	if frac < 0.5 || frac > 0.9 {
		t.Errorf("SV1 coverage = %.4f, want ~0.74", frac)
	}
}

func TestMicroQueriesMatchTable2(t *testing.T) {
	qs := MicroQueries()
	if len(qs) != 10 {
		t.Fatalf("want 10 queries, got %d", len(qs))
	}
	if qs[0].Name != "Q1" || qs[9].Name != "Q10" {
		t.Fatalf("query names wrong: %v, %v", qs[0].Name, qs[9].Name)
	}
}

func TestLUBMShape(t *testing.T) {
	ds := LUBM(2)
	types := map[string]int{}
	preds := map[string]bool{}
	for _, tr := range ds.Triples {
		preds[tr.P.Value] = true
		if tr.P.Value == rdf.RDFType {
			types[tr.O.Value]++
		}
	}
	for _, want := range []string{"University", "Department", "FullProfessor", "UndergraduateStudent", "GraduateStudent", "Course", "GraduateCourse", "Publication"} {
		if types[ub+want] == 0 {
			t.Errorf("no instances of %s", want)
		}
	}
	// The benchmark's 18-ish predicate vocabulary (17 + rdf:type here).
	if len(preds) < 15 || len(preds) > 20 {
		t.Errorf("LUBM predicate count = %d", len(preds))
	}
	if len(LUBMQueries()) != 12 {
		t.Errorf("want 12 LUBM queries")
	}
}

func TestSP2BShape(t *testing.T) {
	ds := SP2B(10000)
	if len(ds.Triples) < 6000 || len(ds.Triples) > 14000 {
		t.Fatalf("target badly missed: %d for 10000", len(ds.Triples))
	}
	// Paul Erdoes must exist and have coauthored articles.
	erdoesCreator := 0
	years := map[string]bool{}
	for _, tr := range ds.Triples {
		if tr.P.Value == dcNS+"creator" && tr.O.Value == dblpNS+"persons/Paul_Erdoes" {
			erdoesCreator++
		}
		if tr.P.Value == dctNS+"issued" {
			years[tr.O.Value] = true
		}
	}
	if erdoesCreator == 0 {
		t.Error("Paul Erdoes authored nothing; SQ8/SQ12a would be empty")
	}
	if len(years) < 10 {
		t.Errorf("only %d publication years; growth model broken", len(years))
	}
	if len(SP2BQueries()) != 17 {
		t.Errorf("want 17 SP2B queries")
	}
}

func TestDBpediaPowerLaw(t *testing.T) {
	ds := DBpedia(20000)
	out := map[string]int{}
	in := map[string]int{}
	for _, tr := range ds.Triples {
		out[tr.S.Value]++
		if tr.O.Kind == rdf.IRI {
			in[tr.O.Value]++
		}
	}
	// Power-law in-degree: the most popular object should absorb far
	// more than the mean.
	maxIn, totalIn := 0, 0
	for _, n := range in {
		totalIn += n
		if n > maxIn {
			maxIn = n
		}
	}
	meanIn := float64(totalIn) / float64(len(in))
	if float64(maxIn) < 20*meanIn {
		t.Errorf("in-degree not heavy-tailed: max %d vs mean %.1f", maxIn, meanIn)
	}
	if len(DBpediaQueries()) != 20 {
		t.Errorf("want 20 DBpedia queries")
	}
}

func TestPRBenchShape(t *testing.T) {
	ds := PRBench(10000)
	classes := map[string]int{}
	for _, tr := range ds.Triples {
		if tr.P.Value == rdf.RDFType {
			classes[tr.O.Value]++
		}
	}
	for _, want := range []string{"Bug", "Requirement", "TestCase", "ChangeSet", "Build", "Person", "Project"} {
		if classes[pr+want] == 0 {
			t.Errorf("no instances of %s", want)
		}
	}
	qs := PRBenchQueries()
	if len(qs) != 29 {
		t.Fatalf("want 29 PRBench queries, got %d", len(qs))
	}
	// PQ26 is the 100-arm union.
	for _, q := range qs {
		if q.Name == "PQ26" {
			unions := 0
			for i := 0; i+5 < len(q.SPARQL); i++ {
				if q.SPARQL[i:i+5] == "UNION" {
					unions++
				}
			}
			if unions != 99 {
				t.Errorf("PQ26 has %d UNIONs, want 99", unions)
			}
		}
	}
}

func TestMicroTargetsTripleCount(t *testing.T) {
	for _, target := range []int{5000, 20000} {
		ds := Micro(target)
		got := len(ds.Triples)
		if got < target*8/10 || got > target*12/10 {
			t.Errorf("Micro(%d) produced %d triples", target, got)
		}
	}
}
