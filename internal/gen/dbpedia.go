package gen

import (
	"fmt"
	"math"

	"db2rdf/internal/rdf"
)

// DBpedia namespaces.
const (
	dbr = "http://dbpedia/resource/"
	dbo = "http://dbpedia/ontology/"
)

// DBpedia generates a DBpedia-like dataset: power-law out-degrees (a
// few entities with very many predicates, a long tail with few),
// power-law in-degrees (a few celebrity objects shared by very many
// subjects), a large predicate vocabulary (scaled down from the real
// 53,976), and ~40 ontology types. This is the dataset whose
// interference graph is NOT fully colorable within a row budget, which
// exercises the hybrid coloring ⊕ hashing mapping (§2.2-2.3).
func DBpedia(targetTriples int) *Dataset {
	r := rng(13)
	nPreds := 300
	preds := make([]string, nPreds)
	for i := range preds {
		preds[i] = fmt.Sprintf("%sprop%d", dbo, i)
	}
	nTypes := 40
	// Popular objects: zipf-ish popularity.
	nObjects := targetTriples / 8
	if nObjects < 200 {
		nObjects = 200
	}
	popular := make([]string, nObjects)
	for i := range popular {
		popular[i] = fmt.Sprintf("%sentity%d", dbr, i)
	}
	zipfObj := func() string {
		// Inverse-CDF sample of a 1/x distribution.
		u := r.Float64()
		idx := int(math.Pow(float64(nObjects), u)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= nObjects {
			idx = nObjects - 1
		}
		return popular[idx]
	}
	zipfPred := func() int {
		u := r.Float64()
		idx := int(math.Pow(float64(nPreds), u)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= nPreds {
			idx = nPreds - 1
		}
		return idx
	}

	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.NewTriple(iri(s), iri(p), o))
	}
	subject := 0
	for len(ts) < targetTriples {
		s := fmt.Sprintf("%sentity%d", dbr, subject)
		subject++
		// Out-degree: power law with average ~14 (the paper's
		// reported DBpedia out-degree).
		deg := 3 + int(math.Pow(30, r.Float64()))
		add(s, rdf.RDFType, iri(fmt.Sprintf("%sType%d", dbo, r.Intn(nTypes))))
		add(s, rdfsNS+"label", lit(fmt.Sprintf("Entity %d", subject-1)))
		seen := map[int]bool{}
		for d := 0; d < deg; d++ {
			pi := zipfPred()
			if seen[pi] && r.Intn(3) != 0 {
				continue // only some predicates are multi-valued
			}
			seen[pi] = true
			if r.Intn(3) == 0 {
				add(s, preds[pi], lit(fmt.Sprintf("value-%d-%d", pi, r.Intn(1000))))
			} else {
				add(s, preds[pi], iri(zipfObj()))
			}
		}
	}
	return &Dataset{Name: "dbpedia", Triples: ts, Queries: DBpediaQueries()}
}

// DBpediaQueries returns 20 queries (DQ1-DQ20) modeled on the DBpedia
// SPARQL benchmark's template classes: entity describes, type +
// property selections, stars with OPTIONALs, UNIONs of properties,
// regex filters, chains, and reverse lookups with variable predicates
// — the query-log-derived shapes of Morsey et al. that §4.1 uses.
func DBpediaQueries() []Query {
	p := fmt.Sprintf(`PREFIX dbr: <%s> PREFIX dbo: <%s> PREFIX rdfs: <%s> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> `, dbr, dbo, rdfsNS)
	q := []Query{
		// Describe-style: all properties of one entity.
		{"DQ1", p + `SELECT ?p ?o WHERE { dbr:entity5 ?p ?o }`},
		// Reverse describe: everything pointing at a popular entity.
		{"DQ2", p + `SELECT ?s ?p WHERE { ?s ?p dbr:entity0 }`},
		// Type selection.
		{"DQ3", p + `SELECT ?s WHERE { ?s rdf:type dbo:Type1 }`},
		// Type plus property.
		{"DQ4", p + `SELECT ?s ?v WHERE { ?s rdf:type dbo:Type2 . ?s dbo:prop0 ?v }`},
		// Star with two properties.
		{"DQ5", p + `SELECT ?s ?a ?b WHERE { ?s dbo:prop0 ?a . ?s dbo:prop1 ?b }`},
		// Star with OPTIONAL.
		{"DQ6", p + `SELECT ?s ?a ?b WHERE { ?s dbo:prop0 ?a OPTIONAL { ?s dbo:prop7 ?b } }`},
		// UNION of two properties.
		{"DQ7", p + `SELECT ?s ?v WHERE { { ?s dbo:prop2 ?v } UNION { ?s dbo:prop3 ?v } }`},
		// Label regex filter.
		{"DQ8", p + `SELECT ?s WHERE { ?s rdfs:label ?l . FILTER regex(?l, "Entity 1[0-3]$") }`},
		// Chain of length 2 through a shared object (mid-tail
		// predicates: joining two hub predicates through unconstrained
		// shared objects explodes quadratically at any scale).
		{"DQ9", p + `SELECT ?a ?b WHERE { ?a dbo:prop20 ?x . ?b dbo:prop21 ?x }`},
		// Properties of entities of a type pointing at a popular hub.
		{"DQ10", p + `SELECT ?s WHERE { ?s dbo:prop0 dbr:entity0 }`},
		// Entity lookup with specific property.
		{"DQ11", p + `SELECT ?v WHERE { dbr:entity10 dbo:prop0 ?v }`},
		// Two-hop chain from a constant.
		{"DQ12", p + `SELECT ?x ?y WHERE { dbr:entity3 dbo:prop0 ?x . ?x dbo:prop0 ?y }`},
		// Type + label.
		{"DQ13", p + `SELECT ?s ?l WHERE { ?s rdf:type dbo:Type3 . ?s rdfs:label ?l }`},
		// Star of three.
		{"DQ14", p + `SELECT ?s WHERE { ?s dbo:prop0 ?a . ?s dbo:prop1 ?b . ?s dbo:prop2 ?c }`},
		// UNION with different subjects.
		{"DQ15", p + `SELECT ?s WHERE { { ?s dbo:prop4 dbr:entity1 } UNION { ?s dbo:prop5 dbr:entity1 } }`},
		// OPTIONAL + !bound negation.
		{"DQ16", p + `SELECT ?s WHERE { ?s rdf:type dbo:Type4 OPTIONAL { ?s dbo:prop0 ?v } FILTER (!bound(?v)) }`},
		// DISTINCT types of entities referencing a hub.
		{"DQ17", p + `SELECT DISTINCT ?t WHERE { ?s dbo:prop1 dbr:entity0 . ?s rdf:type ?t }`},
		// Ordered labels with limit.
		{"DQ18", p + `SELECT ?s ?l WHERE { ?s rdf:type dbo:Type5 . ?s rdfs:label ?l } ORDER BY ?l LIMIT 10`},
		// ASK for a hub link.
		{"DQ19", p + `ASK { ?s dbo:prop0 dbr:entity0 }`},
		// Variable predicate between two constants.
		{"DQ20", p + `SELECT ?p WHERE { dbr:entity5 ?p dbr:entity0 }`},
	}
	return q
}
