package gen

import (
	"fmt"

	"db2rdf/internal/rdf"
)

// SP2Bench namespaces.
const (
	benchNS = "http://localhost/vocabulary/bench/"
	dcNS    = "http://purl.org/dc/elements/1.1/"
	dctNS   = "http://purl.org/dc/terms/"
	swrcNS  = "http://swrc.ontoware.org/ontology#"
	foafNS  = "http://xmlns.com/foaf/0.1/"
	rdfsNS  = "http://www.w3.org/2000/01/rdf-schema#"
	dblpNS  = "http://dblp/"
)

// SP2B generates a scaled-down SP2Bench DBLP-like dataset: journals
// and proceedings per year starting 1940, articles and inproceedings
// with the benchmark's property profile (creator, title, issued year,
// journal, pages, abstracts, citations, seeAlso), persons with names
// and homepages, and the special author "Paul Erdoes" the benchmark
// queries single out.
func SP2B(targetTriples int) *Dataset {
	r := rng(11)
	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.NewTriple(iri(s), iri(p), o))
	}
	typ := func(s, class string) { add(s, rdf.RDFType, iri(benchNS+class)) }
	year := func(y int) rdf.Term { return rdf.NewInteger(int64(y)) }

	// Person pool, including Paul Erdoes.
	persons := []string{dblpNS + "persons/Paul_Erdoes"}
	add(persons[0], foafNS+"name", lit("Paul Erdoes"))
	typ(persons[0], "Person")
	nPersons := targetTriples / 40
	if nPersons < 50 {
		nPersons = 50
	}
	for i := 0; i < nPersons; i++ {
		p := fmt.Sprintf("%spersons/Person%d", dblpNS, i)
		persons = append(persons, p)
		typ(p, "Person")
		add(p, foafNS+"name", lit(fmt.Sprintf("Person %d", i)))
		if r.Intn(3) == 0 {
			add(p, foafNS+"homepage", iri(fmt.Sprintf("http://people/%d", i)))
		}
	}

	// Documents per year, growing like DBLP does.
	var articles []string
	y := 1940
	docBudget := targetTriples * 7 / 10
	used := 0
	docID := 0
	for used < docBudget {
		perYear := 2 + (y-1940)/3
		journal := fmt.Sprintf("%sjournals/Journal%d_%d", dblpNS, 1, y)
		typ(journal, "Journal")
		add(journal, dcNS+"title", lit(fmt.Sprintf("Journal 1 (%d)", y)))
		add(journal, dctNS+"issued", year(y))
		proc := fmt.Sprintf("%sproc/Proc%d", dblpNS, y)
		typ(proc, "Proceedings")
		add(proc, dctNS+"issued", year(y))
		add(proc, swrcNS+"editor", iri(persons[r.Intn(len(persons))]))
		for i := 0; i < perYear && used < docBudget; i++ {
			docID++
			if i%2 == 0 {
				a := fmt.Sprintf("%sarticles/Article%d", dblpNS, docID)
				articles = append(articles, a)
				typ(a, "Article")
				add(a, dcNS+"title", lit(fmt.Sprintf("Article %d", docID)))
				add(a, dcNS+"creator", iri(persons[r.Intn(len(persons))]))
				if r.Intn(4) == 0 {
					add(a, dcNS+"creator", iri(persons[r.Intn(len(persons))]))
				}
				// Paul Erdoes co-authors a slice of the literature.
				if r.Intn(20) == 0 {
					add(a, dcNS+"creator", iri(persons[0]))
				}
				add(a, dctNS+"issued", year(y))
				add(a, swrcNS+"journal", iri(journal))
				add(a, swrcNS+"pages", rdf.NewInteger(int64(1+r.Intn(300))))
				if r.Intn(2) == 0 {
					add(a, benchNS+"abstract", lit(fmt.Sprintf("abstract of article %d", docID)))
				}
				if r.Intn(3) == 0 {
					add(a, rdfsNS+"seeAlso", iri(fmt.Sprintf("http://see/%d", docID)))
				}
				// Citations: multi-valued references.
				if len(articles) > 5 && r.Intn(3) == 0 {
					for c := 0; c < 1+r.Intn(3); c++ {
						add(a, dctNS+"references", iri(articles[r.Intn(len(articles))]))
					}
				}
				used += 8
			} else {
				ip := fmt.Sprintf("%sinproc/Inproc%d", dblpNS, docID)
				typ(ip, "Inproceedings")
				add(ip, dcNS+"title", lit(fmt.Sprintf("Inproc %d", docID)))
				add(ip, dcNS+"creator", iri(persons[r.Intn(len(persons))]))
				add(ip, dctNS+"issued", year(y))
				add(ip, dctNS+"partOf", iri(proc))
				add(ip, benchNS+"booktitle", lit(fmt.Sprintf("Conference %d", y)))
				if r.Intn(2) == 0 {
					add(ip, benchNS+"abstract", lit(fmt.Sprintf("abstract of inproc %d", docID)))
				}
				used += 7
			}
		}
		y++
	}
	return &Dataset{Name: "sp2b", Triples: ts, Queries: SP2BQueries()}
}

// SP2BQueries returns the 17 SP2Bench queries (SQ1-SQ17, following the
// benchmark's Q1, Q2, Q3abc, Q4, Q5ab, Q6, Q7, Q8, Q9, Q10, Q11,
// Q12abc), adapted to the SPARQL 1.0 subset (no aggregates).
func SP2BQueries() []Query {
	p := fmt.Sprintf(`PREFIX bench: <%s> PREFIX dc: <%s> PREFIX dcterms: <%s> PREFIX swrc: <%s> PREFIX foaf: <%s> PREFIX rdfs: <%s> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> `,
		benchNS, dcNS, dctNS, swrcNS, foafNS, rdfsNS)
	erdoes := "<" + dblpNS + "persons/Paul_Erdoes>"
	return []Query{
		// Q1: the year of publication of Journal 1 (1940).
		{"SQ1", p + `SELECT ?yr WHERE { ?journal rdf:type bench:Journal . ?journal dc:title "Journal 1 (1940)" . ?journal dcterms:issued ?yr }`},
		// Q2: inproceedings with all their required properties and an
		// optional abstract, ordered by year.
		{"SQ2", p + `SELECT ?inproc ?author ?booktitle ?title ?proc ?yr ?abstract WHERE {
			?inproc rdf:type bench:Inproceedings .
			?inproc dc:creator ?author .
			?inproc bench:booktitle ?booktitle .
			?inproc dc:title ?title .
			?inproc dcterms:partOf ?proc .
			?inproc dcterms:issued ?yr
			OPTIONAL { ?inproc bench:abstract ?abstract }
		} ORDER BY ?yr`},
		// Q3a/b/c: articles with a given property.
		{"SQ3a", p + `SELECT ?article WHERE { ?article rdf:type bench:Article . ?article ?property ?value . FILTER (?property = swrc:pages) }`},
		{"SQ3b", p + `SELECT ?article WHERE { ?article rdf:type bench:Article . ?article ?property ?value . FILTER (?property = bench:abstract) }`},
		{"SQ3c", p + `SELECT ?article WHERE { ?article rdf:type bench:Article . ?article ?property ?value . FILTER (?property = rdfs:seeAlso) }`},
		// Q4: pairs of articles in the same journal by different
		// authors — the deliberate near-cross-product.
		{"SQ4", p + `SELECT DISTINCT ?name1 ?name2 WHERE {
			?article1 rdf:type bench:Article .
			?article2 rdf:type bench:Article .
			?article1 dc:creator ?author1 .
			?author1 foaf:name ?name1 .
			?article2 dc:creator ?author2 .
			?author2 foaf:name ?name2 .
			?article1 swrc:journal ?journal .
			?article2 swrc:journal ?journal
			FILTER (?name1 < ?name2)
		}`},
		// Q5a: authors of articles, joined on name equality (implicit
		// join via FILTER).
		{"SQ5a", p + `SELECT DISTINCT ?person ?name WHERE {
			?article rdf:type bench:Article .
			?article dc:creator ?person .
			?person foaf:name ?name
		}`},
		// Q5b: same with the join made explicit.
		{"SQ5b", p + `SELECT DISTINCT ?person ?name WHERE {
			?article rdf:type bench:Article .
			?article dc:creator ?person2 .
			?person foaf:name ?name .
			FILTER (?person = ?person2)
		}`},
		// Q6: documents with an optional French... adapted: documents
		// whose creator has no homepage (OPTIONAL + !bound negation).
		{"SQ6", p + `SELECT ?doc ?author WHERE {
			?doc dcterms:issued ?yr .
			?doc dc:creator ?author
			OPTIONAL { ?author foaf:homepage ?hp }
			FILTER (!bound(?hp))
		}`},
		// Q7: documents cited at least... citations of cited articles
		// (nested references).
		{"SQ7", p + `SELECT DISTINCT ?title WHERE {
			?doc dc:title ?title .
			?doc dcterms:references ?cited .
			?cited dcterms:references ?cited2
		}`},
		// Q8: people connected to Paul Erdoes via co-authorship, by
		// either direction of the union.
		{"SQ8", p + `SELECT DISTINCT ?name WHERE {
			{ ?article dc:creator ` + erdoes + ` .
			  ?article dc:creator ?author .
			  ?author foaf:name ?name }
			UNION
			{ ?article dc:creator ?author .
			  ?article dc:creator ` + erdoes + ` .
			  ?author foaf:name ?name }
		}`},
		// Q9: all predicates on persons, incoming and outgoing.
		{"SQ9", p + `SELECT DISTINCT ?predicate WHERE {
			{ ?person rdf:type bench:Person . ?subject ?predicate ?person }
			UNION
			{ ?person rdf:type bench:Person . ?person ?predicate ?object }
		}`},
		// Q10: everything pointing at Paul Erdoes (reverse variable
		// predicate).
		{"SQ10", p + `SELECT ?subject ?predicate WHERE { ?subject ?predicate ` + erdoes + ` }`},
		// Q11: seeAlso with ORDER/LIMIT/OFFSET.
		{"SQ11", p + `SELECT ?ee WHERE { ?publication rdfs:seeAlso ?ee } ORDER BY ?ee LIMIT 10 OFFSET 5`},
		// Q12a/b/c: ASK variants.
		{"SQ12a", p + `ASK { ?article rdf:type bench:Article . ?article dc:creator ?person . ?person foaf:name "Paul Erdoes" }`},
		{"SQ12b", p + `ASK { ?subject ?predicate ` + erdoes + ` }`},
		{"SQ12c", p + `ASK { ?person foaf:name "John Q. Public" }`},
	}
}
