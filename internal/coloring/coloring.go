// Package coloring implements the predicate-to-column assignment of
// the DB2RDF schema (Bornea et al., SIGMOD 2013, §2.2): predicate
// mapping functions (Definition 2.1), predicate mapping composition
// (Definition 2.2) via composed hash functions, and interference-graph
// coloring (Definition 2.3) with the greedy approximation the paper
// uses, including the hybrid c ⊕ h composition for datasets (like
// DBpedia) that are not fully colorable within the column budget.
package coloring

import (
	"hash/fnv"
	"sort"
)

// Mapping assigns a predicate to candidate column numbers, in
// preference order. Insertion tries the columns left to right; lookup
// must consider all of them.
type Mapping interface {
	// Columns returns the candidate column numbers for pred, each in
	// [0, NumColumns()).
	Columns(pred string) []int
	// NumColumns returns m, the column budget.
	NumColumns() int
}

// HashMapping is the composed-hash predicate mapping
// h^n_m = h_m1 ⊕ h_m2 ⊕ ... ⊕ h_mn of §2.2: n independent hash
// functions over the predicate URI, each restricted to [0, m).
type HashMapping struct {
	m     int
	seeds []uint64
}

// NewHashMapping returns a mapping of n composed hash functions over a
// budget of m columns.
func NewHashMapping(m, n int) *HashMapping {
	if m < 1 {
		m = 1
	}
	if n < 1 {
		n = 1
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = 0x9e3779b97f4a7c15 * uint64(i+1)
	}
	return &HashMapping{m: m, seeds: seeds}
}

// Columns implements Mapping. Duplicate column numbers produced by
// different hash functions are removed (keeping first occurrence).
func (h *HashMapping) Columns(pred string) []int {
	out := make([]int, 0, len(h.seeds))
	seen := make(map[int]bool, len(h.seeds))
	for _, seed := range h.seeds {
		f := fnv.New64a()
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(seed >> (8 * i))
		}
		f.Write(buf[:])
		f.Write([]byte(pred))
		c := int(f.Sum64() % uint64(h.m))
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// NumColumns implements Mapping.
func (h *HashMapping) NumColumns() int { return h.m }

// FuncMapping adapts an explicit function to the Mapping interface
// (used by tests reproducing the paper's Table 3 example).
type FuncMapping struct {
	M  int
	Fn func(pred string) []int
}

// Columns implements Mapping.
func (f *FuncMapping) Columns(pred string) []int { return f.Fn(pred) }

// NumColumns implements Mapping.
func (f *FuncMapping) NumColumns() int { return f.M }

// Compose implements Definition 2.2: the composition of several
// mappings tries each mapping's columns in order.
func Compose(ms ...Mapping) Mapping {
	m := 0
	for _, x := range ms {
		if x.NumColumns() > m {
			m = x.NumColumns()
		}
	}
	return &FuncMapping{M: m, Fn: func(pred string) []int {
		var out []int
		seen := map[int]bool{}
		for _, x := range ms {
			for _, c := range x.Columns(pred) {
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
		return out
	}}
}

// Interference is the predicate interference graph G_D of §2.2: nodes
// are predicates, and an edge joins every pair of predicates that
// co-occur on some entity.
type Interference struct {
	adj   map[string]map[string]bool
	count map[string]int // entity occurrences per predicate
}

// NewInterference returns an empty graph.
func NewInterference() *Interference {
	return &Interference{adj: make(map[string]map[string]bool), count: make(map[string]int)}
}

// AddEntity records one entity's predicate set, adding interference
// edges between all pairs.
func (g *Interference) AddEntity(preds []string) {
	// Deduplicate.
	uniq := preds[:0:0]
	seen := make(map[string]bool, len(preds))
	for _, p := range preds {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	for _, p := range uniq {
		g.count[p]++
		if g.adj[p] == nil {
			g.adj[p] = make(map[string]bool)
		}
	}
	for i, p := range uniq {
		for _, q := range uniq[i+1:] {
			g.adj[p][q] = true
			g.adj[q][p] = true
		}
	}
}

// Predicates returns all predicates sorted by descending degree (ties
// by descending occurrence count, then name), the greedy coloring
// order.
func (g *Interference) Predicates() []string {
	out := make([]string, 0, len(g.adj))
	for p := range g.adj {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := len(g.adj[out[i]]), len(g.adj[out[j]])
		if di != dj {
			return di > dj
		}
		ci, cj := g.count[out[i]], g.count[out[j]]
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// Degree returns the interference degree of pred.
func (g *Interference) Degree(pred string) int { return len(g.adj[pred]) }

// Len returns the number of predicates in the graph.
func (g *Interference) Len() int { return len(g.adj) }

// Coloring is the result of greedy graph coloring.
type Coloring struct {
	// Colors maps each colored predicate to its column.
	Colors map[string]int
	// NumColors is the number of distinct colors used.
	NumColors int
	// Uncolored holds predicates that could not be colored within the
	// budget (the complement of the paper's subset P).
	Uncolored map[string]bool
}

// Greedy colors the interference graph with at most maxColors colors
// using the greedy largest-degree-first heuristic the paper describes.
// Predicates whose neighborhoods exhaust the budget are left uncolored
// (to be handled by a composed hash mapping).
func Greedy(g *Interference, maxColors int) *Coloring {
	c := &Coloring{Colors: make(map[string]int), Uncolored: make(map[string]bool)}
	for _, p := range g.Predicates() {
		used := make(map[int]bool)
		for q := range g.adj[p] {
			if col, ok := c.Colors[q]; ok {
				used[col] = true
			}
		}
		assigned := -1
		for col := 0; col < maxColors; col++ {
			if !used[col] {
				assigned = col
				break
			}
		}
		if assigned < 0 {
			c.Uncolored[p] = true
			continue
		}
		c.Colors[p] = assigned
		if assigned+1 > c.NumColors {
			c.NumColors = assigned + 1
		}
	}
	return c
}

// Coverage returns the fraction of entity-predicate occurrences whose
// predicate was colored (the paper's "percent covered" in Table 4).
func (c *Coloring) Coverage(g *Interference) float64 {
	total, covered := 0, 0
	for p, n := range g.count {
		total += n
		if _, ok := c.Colors[p]; ok {
			covered += n
		}
	}
	if total == 0 {
		return 1
	}
	return float64(covered) / float64(total)
}

// ColoredMapping implements the hybrid mapping c^{D⊗P}_m ⊕ h of §2.2:
// colored predicates map to exactly one column; everything else (the
// uncolored subset and predicates first seen after coloring) falls
// back to the composed-hash mapping.
type ColoredMapping struct {
	coloring *Coloring
	fallback Mapping
	m        int
}

// NewColoredMapping builds the hybrid mapping over a budget of m
// columns with the given fallback (pass nil for a 2-way composed hash).
func NewColoredMapping(c *Coloring, m int, fallback Mapping) *ColoredMapping {
	if fallback == nil {
		fallback = NewHashMapping(m, 2)
	}
	return &ColoredMapping{coloring: c, fallback: fallback, m: m}
}

// Columns implements Mapping.
func (cm *ColoredMapping) Columns(pred string) []int {
	if col, ok := cm.coloring.Colors[pred]; ok {
		return []int{col}
	}
	return cm.fallback.Columns(pred)
}

// NumColumns implements Mapping.
func (cm *ColoredMapping) NumColumns() int { return cm.m }

// Colored reports whether pred got a dedicated column.
func (cm *ColoredMapping) Colored(pred string) bool {
	_, ok := cm.coloring.Colors[pred]
	return ok
}
