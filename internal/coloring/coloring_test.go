package coloring

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHashMappingDeterministicAndInRange(t *testing.T) {
	h := NewHashMapping(10, 3)
	f := func(pred string) bool {
		a := h.Columns(pred)
		b := h.Columns(pred)
		if len(a) == 0 || len(a) > 3 {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		seen := map[int]bool{}
		for i, c := range a {
			if c < 0 || c >= 10 || c != b[i] || seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashMappingSingleFunction(t *testing.T) {
	h := NewHashMapping(5, 1)
	if got := len(h.Columns("anything")); got != 1 {
		t.Fatalf("single hash must give one column, got %d", got)
	}
}

// TestComposedHashAndroidExample reproduces the paper's Table 3 walk
// through: predicates developer, version, kernel, preceded, graphics
// inserted one by one with two hash functions h1, h2; kernel collides
// with developer in pred1 and lands in pred3 via h2; graphics finds
// both its candidates full and must spill.
func TestComposedHashAndroidExample(t *testing.T) {
	k := 5 // columns pred1..predk, 1-based in the paper; we use 0-based
	h1 := map[string]int{"developer": 0, "version": 1, "kernel": 0, "preceded": 4, "graphics": 2}
	h2 := map[string]int{"developer": 2, "version": 0, "kernel": 2, "preceded": 0, "graphics": 1}
	m := Compose(
		&FuncMapping{M: k, Fn: func(p string) []int { return []int{h1[p]} }},
		&FuncMapping{M: k, Fn: func(p string) []int { return []int{h2[p]} }},
	)

	// Simulate insertion into one DPH row.
	row := map[int]string{}
	var spilled []string
	insert := func(pred string) {
		for _, c := range m.Columns(pred) {
			if _, occupied := row[c]; !occupied {
				row[c] = pred
				return
			}
		}
		spilled = append(spilled, pred)
	}
	for _, p := range []string{"developer", "version", "kernel", "preceded", "graphics"} {
		insert(p)
	}
	if row[0] != "developer" {
		t.Errorf("developer should land in pred1 (col 0), row=%v", row)
	}
	if row[1] != "version" {
		t.Errorf("version should land in pred2 (col 1), row=%v", row)
	}
	if row[2] != "kernel" {
		t.Errorf("kernel should land in pred3 (col 2) via h2, row=%v", row)
	}
	if row[4] != "preceded" {
		t.Errorf("preceded should land in predk (col 4), row=%v", row)
	}
	if len(spilled) != 1 || spilled[0] != "graphics" {
		t.Errorf("graphics should spill (both candidates full), spilled=%v", spilled)
	}
}

// TestFig4Coloring reproduces Figure 4: 13 predicates from the sample
// DBpedia data need only 5 colors, and board/died share a color
// because they never co-occur.
func TestFig4Coloring(t *testing.T) {
	g := NewInterference()
	// Entity predicate sets from Figure 1(a).
	g.AddEntity([]string{"born", "died", "founder"})                                // Charles Flint
	g.AddEntity([]string{"born", "founder", "board", "home"})                       // Larry Page
	g.AddEntity([]string{"developer", "version", "kernel", "preceded", "graphics"}) // Android
	g.AddEntity([]string{"industry", "employees", "headquarters"})                  // Google
	g.AddEntity([]string{"industry", "employees", "headquarters"})                  // IBM

	c := Greedy(g, 13)
	if len(c.Uncolored) != 0 {
		t.Fatalf("everything must be colorable: %v", c.Uncolored)
	}
	if c.NumColors > 5 {
		t.Errorf("paper needs only 5 colors for 13 predicates, got %d", c.NumColors)
	}
	// Coloring must be proper: no co-occurring pair shares a color.
	for p, ns := range g.adj {
		for q := range ns {
			if c.Colors[p] == c.Colors[q] {
				t.Errorf("conflict: %s and %s co-occur but share color %d", p, q, c.Colors[p])
			}
		}
	}
	if c.Coverage(g) != 1.0 {
		t.Errorf("full coloring must cover 100%%, got %f", c.Coverage(g))
	}
}

func TestGreedyProperColoringProperty(t *testing.T) {
	// Random interference graphs: greedy coloring is always proper and
	// never uses more colors than max degree + 1.
	f := func(seed uint8) bool {
		g := NewInterference()
		n := int(seed%13) + 2
		for e := 0; e < n; e++ {
			var preds []string
			for i := 0; i <= int(seed)%5; i++ {
				preds = append(preds, fmt.Sprintf("p%d", (e*7+i*int(seed+1))%n))
			}
			g.AddEntity(preds)
		}
		maxDeg := 0
		for p := range g.adj {
			if d := g.Degree(p); d > maxDeg {
				maxDeg = d
			}
		}
		c := Greedy(g, maxDeg+1)
		if len(c.Uncolored) != 0 {
			return false
		}
		if c.NumColors > maxDeg+1 {
			return false
		}
		for p, ns := range g.adj {
			for q := range ns {
				if c.Colors[p] == c.Colors[q] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyBudgetExhaustion(t *testing.T) {
	g := NewInterference()
	// A clique of 5 predicates cannot be colored with 3 colors.
	g.AddEntity([]string{"a", "b", "c", "d", "e"})
	c := Greedy(g, 3)
	if len(c.Uncolored) != 2 {
		t.Fatalf("want 2 uncolored in K5 with 3 colors, got %d", len(c.Uncolored))
	}
	if cov := c.Coverage(g); cov != 0.6 {
		t.Fatalf("coverage = %f, want 0.6", cov)
	}
}

func TestColoredMappingFallback(t *testing.T) {
	g := NewInterference()
	g.AddEntity([]string{"a", "b"})
	c := Greedy(g, 4)
	cm := NewColoredMapping(c, 4, nil)
	if cols := cm.Columns("a"); len(cols) != 1 {
		t.Fatalf("colored predicate must map to exactly one column: %v", cols)
	}
	if !cm.Colored("a") || cm.Colored("zzz") {
		t.Fatal("Colored() wrong")
	}
	// Unknown predicate goes through the hash fallback, still in range.
	for _, col := range cm.Columns("never-seen") {
		if col < 0 || col >= 4 {
			t.Fatalf("fallback column %d out of range", col)
		}
	}
}

func TestComposeDeduplicates(t *testing.T) {
	m := Compose(
		&FuncMapping{M: 8, Fn: func(string) []int { return []int{3} }},
		&FuncMapping{M: 8, Fn: func(string) []int { return []int{3, 5} }},
	)
	cols := m.Columns("x")
	if len(cols) != 2 || cols[0] != 3 || cols[1] != 5 {
		t.Fatalf("composition must deduplicate preserving order: %v", cols)
	}
	if m.NumColumns() != 8 {
		t.Fatalf("NumColumns = %d", m.NumColumns())
	}
}

func TestInterferenceDedupWithinEntity(t *testing.T) {
	g := NewInterference()
	g.AddEntity([]string{"p", "p", "q"})
	if g.count["p"] != 1 {
		t.Fatalf("duplicate predicate within entity must count once, got %d", g.count["p"])
	}
	if !g.adj["p"]["q"] || g.adj["p"]["p"] {
		t.Fatal("bad adjacency")
	}
}
