package db2rdf_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"db2rdf"
)

// Fuzz targets for the two untrusted-input surfaces: the N-Triples
// loader and the SPARQL query pipeline. Both assert the library-level
// robustness contract — no input may panic, and after an input is
// rejected the store must still answer queries correctly. ci.sh runs
// each as a short fuzz smoke pass; the checked-in seeds double as
// regression cases under plain `go test`.

const fuzzTriple = "<http://ex/s> <http://ex/p> <http://ex/o> .\n"

func FuzzLoadReader(f *testing.F) {
	f.Add([]byte(fuzzTriple))
	f.Add([]byte("<http://ex/s> <http://ex/p> \"lit\"@en .\n# comment\n"))
	f.Add([]byte("<http://ex/s> <http://ex/p> \"x\"^^<http://ex/dt> .\n"))
	f.Add([]byte("_:b <http://ex/p> \"esc \\u0041 \\n\" .\n"))
	f.Add([]byte("<http://ex/s> <http://ex/p> \"unterminated\n"))
	f.Add([]byte("<http://ex/s> <http://ex/p> \"nul\x00byte\" .\n"))
	f.Add([]byte("<truncated"))
	f.Add([]byte("no triple at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, load := range []func(*db2rdf.Store) error{
			func(s *db2rdf.Store) error { _, err := s.LoadReader(bytes.NewReader(data)); return err },
			func(s *db2rdf.Store) error { _, err := s.LoadParallel(bytes.NewReader(data), 4); return err },
		} {
			store, err := db2rdf.Open(db2rdf.Options{})
			if err != nil {
				t.Fatal(err)
			}
			_ = load(store) // may fail; must not panic
			// Store-usable-after-error: loading known-good data and
			// querying it must work regardless of what the fuzzed load did.
			if _, err := store.LoadReader(strings.NewReader(fuzzTriple)); err != nil {
				t.Fatalf("store unusable after fuzzed load: %v", err)
			}
			res, err := store.Query(`SELECT ?o WHERE { <http://ex/s> <http://ex/p> ?o }`)
			if err != nil {
				t.Fatalf("query after fuzzed load: %v", err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("known triple not found after fuzzed load")
			}
		}
	})
}

func FuzzParseUpdate(f *testing.F) {
	store, err := db2rdf.Open(db2rdf.Options{
		QueryTimeout:  2 * time.Second,
		MaxResultRows: 1 << 20,
	})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := store.LoadReader(strings.NewReader(fuzzTriple)); err != nil {
		f.Fatal(err)
	}
	f.Add(`INSERT DATA { <http://ex/a> <http://ex/b> "c" }`)
	f.Add(`DELETE DATA { <http://ex/a> <http://ex/b> "c" . <http://ex/x> <http://ex/y> <http://ex/z> }`)
	f.Add(`DELETE { ?s ?p ?o } INSERT { ?s <http://ex/q> ?o } WHERE { ?s ?p ?o FILTER(?s != ?o) }`)
	f.Add(`DELETE WHERE { ?s <http://ex/gone> ?o }`)
	f.Add(`PREFIX ex: <http://ex/> INSERT DATA { ex:s ex:p ex:o } ; CLEAR DEFAULT ; INSERT DATA { ex:s ex:p ex:o }`)
	f.Add(`INSERT { _:b <http://ex/p> ?o } WHERE { ?s ?p ?o }`)
	f.Add(`CLEAR NAMED`)
	f.Add(`INSERT DATA { ?var <p> "not ground" }`)
	f.Add(`DELETE DATA { <a> <b>`)
	f.Add("INSERT \x00 DATA")
	f.Fuzz(func(t *testing.T, u string) {
		_, _ = store.Update(u) // may fail; must not panic
		// Store-usable-after-error: whatever the fuzzed update did (it
		// may legitimately have deleted or cleared data), a fresh insert
		// and a query must still work.
		if _, err := store.Update(`INSERT DATA { <http://ex/s> <http://ex/p> <http://ex/o> }`); err != nil {
			t.Fatalf("store unusable after fuzzed update %q: %v", u, err)
		}
		res, err := store.Query(`SELECT ?o WHERE { <http://ex/s> <http://ex/p> ?o }`)
		if err != nil {
			t.Fatalf("query after fuzzed update %q: %v", u, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("known triple missing after fuzzed update %q", u)
		}
	})
}

func FuzzParseQuery(f *testing.F) {
	store, err := db2rdf.Open(db2rdf.Options{
		// Bound every fuzzed query so a pathological-but-valid input
		// cannot stall the fuzzer: governance is part of the surface
		// under test.
		QueryTimeout:  2 * time.Second,
		MaxResultRows: 1 << 20,
	})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := store.LoadReader(strings.NewReader(
		fuzzTriple + "<http://ex/s> <http://ex/q> \"v\" .\n<http://ex/o> <http://ex/p> <http://ex/s> .\n")); err != nil {
		f.Fatal(err)
	}
	f.Add(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
	f.Add(`SELECT ?s ?o WHERE { ?s ?p ?o . FILTER(?s != ?o) } ORDER BY ?s LIMIT 5`)
	f.Add(`ASK { <http://ex/s> ?p ?o }`)
	f.Add(`SELECT ?s WHERE { ?s <http://ex/p>+ ?o }`)
	f.Add(`SELECT * WHERE { { ?s ?p ?o } UNION { ?o ?p ?s } }`)
	f.Add(`SELECT (?x AS`)
	f.Add("SELECT \x00 WHERE")
	f.Fuzz(func(t *testing.T, q string) {
		_, _ = store.Query(q) // may fail; must not panic
		// Store-usable-after-error: a well-formed query still works.
		res, err := store.Query(`SELECT ?o WHERE { <http://ex/s> <http://ex/p> ?o }`)
		if err != nil {
			t.Fatalf("store unusable after fuzzed query %q: %v", q, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("store corrupted after fuzzed query %q: got %d rows", q, len(res.Rows))
		}
	})
}
