package db2rdf

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"db2rdf/internal/store"
)

// Store-level runtime metrics. Every counter is an atomic touched on
// the serving paths with single fetch-and-add instructions, so the
// registry costs a few nanoseconds per query and is always on — there
// is no enable switch to forget. Metrics cover the public query entry
// points (Query, QueryContext, AnalyzeContext, and QueryGraph count
// their top-level call once; the secondary queries they run internally
// are not double-counted) and the load paths (Insert and the Load
// family feed triple count and wall time).
//
// Export: Metrics implements expvar.Var (String returns the Snapshot
// as JSON), so `expvar.Publish("db2rdf", store.Metrics())` works
// as-is; WritePrometheus emits the same numbers in Prometheus text
// exposition format.

// latencyBuckets are the upper bounds (inclusive) of the query-duration
// histogram, in nanoseconds; the final implicit bucket is +Inf.
var latencyBuckets = []int64{
	100_000,        // 100µs
	1_000_000,      // 1ms
	10_000_000,     // 10ms
	100_000_000,    // 100ms
	1_000_000_000,  // 1s
	10_000_000_000, // 10s
}

// Metrics is the store's metrics registry. All methods are safe for
// concurrent use; the zero value is ready (a Store wires its plan
// cache in at Open).
type Metrics struct {
	queries     atomic.Uint64 // queries served (success or failure)
	queryErrors atomic.Uint64 // queries that returned any error
	rowsEmitted atomic.Uint64 // decoded result rows returned to callers
	queryNanos  atomic.Int64  // total wall time across queries
	slowQueries atomic.Uint64 // queries at or over SlowQueryThreshold

	// Governance aborts by type.
	abortCanceled  atomic.Uint64
	abortDeadline  atomic.Uint64
	abortRowBudget atomic.Uint64
	abortMemBudget atomic.Uint64
	abortPanic     atomic.Uint64

	latency [7]atomic.Uint64 // len(latencyBuckets)+1, last = +Inf

	triplesLoaded atomic.Uint64 // triples ingested by Insert/Load*
	loadNanos     atomic.Int64  // total wall time across loads

	updates        atomic.Uint64 // update requests served (success or failure)
	updateErrors   atomic.Uint64 // update requests that returned any error
	updateNanos    atomic.Int64  // total wall time across update requests
	deletedTriples atomic.Uint64 // triples removed by updates and Delete calls

	plans *planCache   // hit/miss/eviction counters re-exported
	inner *store.Store // snapshot epoch / compaction / dead-row gauges
}

// Snapshot is a point-in-time copy of the registry, suitable for JSON
// encoding. Histogram buckets are cumulative counts (Prometheus
// convention: each bucket includes all smaller ones; the last is the
// total).
type Snapshot struct {
	QueriesServed uint64  `json:"queries_served"`
	QueryErrors   uint64  `json:"query_errors"`
	RowsEmitted   uint64  `json:"rows_emitted"`
	QuerySeconds  float64 `json:"query_seconds_total"`
	SlowQueries   uint64  `json:"slow_queries"`

	AbortsCanceled     uint64 `json:"aborts_canceled"`
	AbortsDeadline     uint64 `json:"aborts_deadline"`
	AbortsRowBudget    uint64 `json:"aborts_row_budget"`
	AbortsMemoryBudget uint64 `json:"aborts_memory_budget"`
	AbortsPanic        uint64 `json:"aborts_panic"`

	// LatencyBucketsNs are the histogram bounds; LatencyCounts[i] is
	// the cumulative count of queries with duration <= bound i, with
	// one extra trailing +Inf bucket equal to QueriesServed.
	LatencyBucketsNs []int64  `json:"latency_buckets_ns"`
	LatencyCounts    []uint64 `json:"latency_counts"`

	TriplesLoaded     uint64  `json:"triples_loaded"`
	LoadSeconds       float64 `json:"load_seconds_total"`
	LoadTriplesPerSec float64 `json:"load_triples_per_sec"`

	UpdatesServed  uint64  `json:"updates_served"`
	UpdateErrors   uint64  `json:"update_errors"`
	UpdateSeconds  float64 `json:"update_seconds_total"`
	DeletedTriples uint64  `json:"deleted_triples"`

	// SnapshotEpoch is the epoch of the currently published store
	// snapshot; CompactionsTotal counts publish-time chunk compactions
	// and DeadRows the currently tombstoned rows across the four
	// relations.
	SnapshotEpoch    uint64 `json:"snapshot_epoch"`
	CompactionsTotal int64  `json:"compactions_total"`
	DeadRows         int    `json:"dead_rows"`

	// Storage gauges: resident bytes of the four relations, resident
	// bytes of the dictionary id→term store, and the process-wide count
	// of column chunks sealed into the compressed representation.
	TableResidentBytes int64 `json:"table_resident_bytes"`
	DictResidentBytes  int64 `json:"dict_resident_bytes"`
	EncodedChunksTotal int64 `json:"encoded_chunks_total"`

	PlanCacheHits           uint64 `json:"plan_cache_hits"`
	PlanCacheMisses         uint64 `json:"plan_cache_misses"`
	PlanCacheSize           int    `json:"plan_cache_size"`
	PlanCacheInserts        uint64 `json:"plan_cache_inserts"`
	PlanCacheCapEvictions   uint64 `json:"plan_cache_cap_evictions"`
	PlanCacheStaleEvictions uint64 `json:"plan_cache_stale_evictions"`

	// Durability counters (all zero when the store has no DataDir).
	DurabilityEnabled        bool      `json:"durability_enabled"`
	WALAppends               uint64    `json:"wal_appends"`
	WALBytes                 int64     `json:"wal_bytes"`
	FsyncCount               uint64    `json:"wal_fsync_count"`
	FsyncSeconds             float64   `json:"wal_fsync_seconds_total"`
	FsyncBucketsS            []float64 `json:"wal_fsync_buckets_s,omitempty"`
	FsyncCounts              []uint64  `json:"wal_fsync_counts,omitempty"`
	SnapshotWrites           uint64    `json:"snapshot_writes"`
	SnapshotErrors           uint64    `json:"snapshot_errors"`
	SnapshotWriteSeconds     float64   `json:"snapshot_write_seconds_total"`
	RecoveryTruncatedRecords uint64    `json:"recovery_truncated_records"`
	RecoverSeconds           float64   `json:"recover_seconds"`
	ReplayedRecords          uint64    `json:"replayed_records"`
	LastSnapshotEpoch        uint64    `json:"last_snapshot_epoch"`
}

// Metrics returns the store's metrics registry.
func (s *Store) Metrics() *Metrics { return s.metrics }

// observeQueryMetrics records one served query. Rows is the decoded
// result row count (0 on failure).
func (m *Metrics) observeQuery(dur time.Duration, rows int, err error) {
	m.queries.Add(1)
	m.queryNanos.Add(int64(dur))
	m.rowsEmitted.Add(uint64(rows))
	d := int64(dur)
	i := 0
	for i < len(latencyBuckets) && d > latencyBuckets[i] {
		i++
	}
	m.latency[i].Add(1)
	if err == nil {
		return
	}
	m.queryErrors.Add(1)
	var be *BudgetError
	var pe *PanicError
	switch {
	case errors.As(err, &be):
		if be.Budget == "memory" {
			m.abortMemBudget.Add(1)
		} else {
			m.abortRowBudget.Add(1)
		}
	case errors.Is(err, ErrDeadlineExceeded):
		m.abortDeadline.Add(1)
	case errors.Is(err, ErrCanceled):
		m.abortCanceled.Add(1)
	case errors.As(err, &pe):
		m.abortPanic.Add(1)
	}
}

// observeUpdate records one SPARQL update request. Update wall time is
// kept out of queryNanos: the query-duration histogram's _sum must
// cover exactly the requests its buckets count (scrape-clean
// invariant), and updates never enter those buckets.
func (m *Metrics) observeUpdate(dur time.Duration, deleted int, err error) {
	m.updates.Add(1)
	m.updateNanos.Add(int64(dur))
	if deleted > 0 {
		m.deletedTriples.Add(uint64(deleted))
	}
	if err != nil {
		m.updateErrors.Add(1)
	}
}

// observeLoad records one load call.
func (m *Metrics) observeLoad(dur time.Duration, triples int) {
	if triples > 0 {
		m.triplesLoaded.Add(uint64(triples))
	}
	m.loadNanos.Add(int64(dur))
}

// Snapshot returns a point-in-time copy of every metric. Counters are
// read individually (not under one lock), so numbers racing with live
// traffic may be off by the in-flight queries — each counter is itself
// exact.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		QueriesServed: m.queries.Load(),
		QueryErrors:   m.queryErrors.Load(),
		RowsEmitted:   m.rowsEmitted.Load(),
		QuerySeconds:  time.Duration(m.queryNanos.Load()).Seconds(),
		SlowQueries:   m.slowQueries.Load(),

		AbortsCanceled:     m.abortCanceled.Load(),
		AbortsDeadline:     m.abortDeadline.Load(),
		AbortsRowBudget:    m.abortRowBudget.Load(),
		AbortsMemoryBudget: m.abortMemBudget.Load(),
		AbortsPanic:        m.abortPanic.Load(),

		TriplesLoaded: m.triplesLoaded.Load(),
		LoadSeconds:   time.Duration(m.loadNanos.Load()).Seconds(),

		UpdatesServed:  m.updates.Load(),
		UpdateErrors:   m.updateErrors.Load(),
		UpdateSeconds:  time.Duration(m.updateNanos.Load()).Seconds(),
		DeletedTriples: m.deletedTriples.Load(),
	}
	if s.LoadSeconds > 0 {
		s.LoadTriplesPerSec = float64(s.TriplesLoaded) / s.LoadSeconds
	}
	s.LatencyBucketsNs = append([]int64(nil), latencyBuckets...)
	s.LatencyCounts = make([]uint64, len(m.latency))
	var cum uint64
	for i := range m.latency {
		cum += m.latency[i].Load()
		s.LatencyCounts[i] = cum
	}
	if m.inner != nil {
		s.SnapshotEpoch = m.inner.Epoch()
		s.CompactionsTotal = m.inner.Compactions()
		s.DeadRows = m.inner.DeadRows()
		sn := m.inner.Snapshot()
		s.TableResidentBytes = sn.TableBytes()
		s.DictResidentBytes = sn.DictBytes()
		s.EncodedChunksTotal = store.EncodedChunks()
		if ds := m.inner.DurabilityStats(); ds.Enabled {
			s.DurabilityEnabled = true
			s.WALAppends = ds.WALAppends
			s.WALBytes = ds.WALBytes
			s.FsyncCount = ds.FsyncCount
			s.FsyncSeconds = ds.FsyncSeconds
			s.FsyncBucketsS = append([]float64(nil), store.FsyncBuckets...)
			// Cumulative counts, Prometheus convention.
			s.FsyncCounts = make([]uint64, len(ds.FsyncHist))
			var fcum uint64
			for i := range ds.FsyncHist {
				fcum += ds.FsyncHist[i]
				s.FsyncCounts[i] = fcum
			}
			s.SnapshotWrites = ds.SnapshotWrites
			s.SnapshotErrors = ds.SnapshotErrors
			s.SnapshotWriteSeconds = ds.SnapshotWriteSeconds
			s.RecoveryTruncatedRecords = ds.RecoveryTruncatedRecords
			s.RecoverSeconds = ds.RecoverSeconds
			s.ReplayedRecords = ds.ReplayedRecords
			s.LastSnapshotEpoch = ds.LastSnapshotEpoch
		}
	}
	if m.plans != nil {
		ps := m.plans.statsFull()
		s.PlanCacheHits = ps.Hits
		s.PlanCacheMisses = ps.Misses
		s.PlanCacheSize = ps.Size
		s.PlanCacheInserts = ps.Inserts
		s.PlanCacheCapEvictions = ps.CapEvictions
		s.PlanCacheStaleEvictions = ps.StaleEvictions
	}
	return s
}

// String renders the snapshot as JSON, making *Metrics an expvar.Var.
func (m *Metrics) String() string {
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// promEscapeLabel escapes a label value for the Prometheus text
// exposition format: backslash, double quote and newline must be
// escaped inside the double-quoted value.
func promEscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus writes the metrics in Prometheus text exposition
// format (counters, gauges, and the query-duration histogram). The
// output is scrape-clean: every series carries # HELP and # TYPE
// lines, label values are escaped, histogram buckets are cumulative
// with a final le="+Inf" sample, and each histogram's _count equals
// its +Inf bucket (both derived from the same cumulative counts, so
// the invariant holds even while traffic races the scrape).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	counter := func(name, help string, v uint64) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	labeled := func(name, label, value string, v uint64) {
		p("%s{%s=\"%s\"} %d\n", name, label, promEscapeLabel(value), v)
	}
	counter("db2rdf_queries_served_total", "Queries served (success or failure).", s.QueriesServed)
	counter("db2rdf_query_errors_total", "Queries that returned an error.", s.QueryErrors)
	counter("db2rdf_rows_emitted_total", "Decoded result rows returned to callers.", s.RowsEmitted)
	counter("db2rdf_slow_queries_total", "Queries at or over Options.SlowQueryThreshold.", s.SlowQueries)
	p("# HELP db2rdf_query_seconds_total Total query wall time.\n# TYPE db2rdf_query_seconds_total counter\ndb2rdf_query_seconds_total %g\n", s.QuerySeconds)
	p("# HELP db2rdf_query_aborts_total Governance aborts by type.\n# TYPE db2rdf_query_aborts_total counter\n")
	labeled("db2rdf_query_aborts_total", "type", "canceled", s.AbortsCanceled)
	labeled("db2rdf_query_aborts_total", "type", "deadline", s.AbortsDeadline)
	labeled("db2rdf_query_aborts_total", "type", "row_budget", s.AbortsRowBudget)
	labeled("db2rdf_query_aborts_total", "type", "memory_budget", s.AbortsMemoryBudget)
	labeled("db2rdf_query_aborts_total", "type", "panic", s.AbortsPanic)
	p("# HELP db2rdf_query_duration_seconds Query duration histogram.\n# TYPE db2rdf_query_duration_seconds histogram\n")
	for i, b := range s.LatencyBucketsNs {
		p("db2rdf_query_duration_seconds_bucket{le=\"%g\"} %d\n", time.Duration(b).Seconds(), s.LatencyCounts[i])
	}
	histTotal := s.LatencyCounts[len(s.LatencyCounts)-1]
	p("db2rdf_query_duration_seconds_bucket{le=\"+Inf\"} %d\n", histTotal)
	p("db2rdf_query_duration_seconds_sum %g\n", s.QuerySeconds)
	p("db2rdf_query_duration_seconds_count %d\n", histTotal)
	counter("db2rdf_updates_total", "SPARQL update requests served (success or failure).", s.UpdatesServed)
	counter("db2rdf_update_errors_total", "SPARQL update requests that returned an error.", s.UpdateErrors)
	p("# HELP db2rdf_update_seconds_total Total update wall time.\n# TYPE db2rdf_update_seconds_total counter\ndb2rdf_update_seconds_total %g\n", s.UpdateSeconds)
	counter("db2rdf_deleted_triples_total", "Triples removed by SPARQL updates.", s.DeletedTriples)
	counter("db2rdf_triples_loaded_total", "Triples ingested by Insert and the Load entry points.", s.TriplesLoaded)
	p("# HELP db2rdf_snapshot_epoch Epoch of the currently published store snapshot.\n# TYPE db2rdf_snapshot_epoch gauge\ndb2rdf_snapshot_epoch %d\n", s.SnapshotEpoch)
	counter("db2rdf_compactions_total", "Publish-time chunk compactions across the four relations.", uint64(s.CompactionsTotal))
	p("# HELP db2rdf_dead_rows Currently tombstoned rows across the four relations.\n# TYPE db2rdf_dead_rows gauge\ndb2rdf_dead_rows %d\n", s.DeadRows)
	p("# HELP db2rdf_table_resident_bytes Resident bytes of the four DB2RDF relations.\n# TYPE db2rdf_table_resident_bytes gauge\ndb2rdf_table_resident_bytes %d\n", s.TableResidentBytes)
	p("# HELP db2rdf_dict_bytes Resident bytes of the dictionary id-to-term store.\n# TYPE db2rdf_dict_bytes gauge\ndb2rdf_dict_bytes %d\n", s.DictResidentBytes)
	counter("db2rdf_encoded_chunks_total", "Column chunks sealed into the compressed representation (process-wide).", uint64(s.EncodedChunksTotal))
	p("# HELP db2rdf_load_seconds_total Total load wall time.\n# TYPE db2rdf_load_seconds_total counter\ndb2rdf_load_seconds_total %g\n", s.LoadSeconds)
	counter("db2rdf_plan_cache_hits_total", "Compiled-plan cache hits.", s.PlanCacheHits)
	counter("db2rdf_plan_cache_misses_total", "Compiled-plan cache misses.", s.PlanCacheMisses)
	counter("db2rdf_plan_cache_inserts_total", "Compiled-plan cache inserts.", s.PlanCacheInserts)
	counter("db2rdf_plan_cache_cap_evictions_total", "Plan-cache LRU capacity evictions.", s.PlanCacheCapEvictions)
	counter("db2rdf_plan_cache_stale_evictions_total", "Plan-cache stale-epoch evictions.", s.PlanCacheStaleEvictions)
	p("# HELP db2rdf_plan_cache_size Cached compiled plans.\n# TYPE db2rdf_plan_cache_size gauge\ndb2rdf_plan_cache_size %d\n", s.PlanCacheSize)
	if s.DurabilityEnabled {
		counter("db2rdf_wal_appends_total", "WAL batches appended at publish.", s.WALAppends)
		counter("db2rdf_wal_bytes_total", "Bytes appended to the WAL.", uint64(s.WALBytes))
		p("# HELP db2rdf_wal_fsync_seconds WAL fsync latency histogram.\n# TYPE db2rdf_wal_fsync_seconds histogram\n")
		for i, b := range s.FsyncBucketsS {
			p("db2rdf_wal_fsync_seconds_bucket{le=\"%g\"} %d\n", b, s.FsyncCounts[i])
		}
		var fsyncTotal uint64
		if n := len(s.FsyncCounts); n > 0 {
			fsyncTotal = s.FsyncCounts[n-1]
		}
		p("db2rdf_wal_fsync_seconds_bucket{le=\"+Inf\"} %d\n", fsyncTotal)
		p("db2rdf_wal_fsync_seconds_sum %g\n", s.FsyncSeconds)
		p("db2rdf_wal_fsync_seconds_count %d\n", fsyncTotal)
		counter("db2rdf_snapshot_writes_total", "Snapshot files written.", s.SnapshotWrites)
		counter("db2rdf_snapshot_errors_total", "Snapshot writes that failed.", s.SnapshotErrors)
		p("# HELP db2rdf_snapshot_write_seconds Total snapshot serialization and write time.\n# TYPE db2rdf_snapshot_write_seconds counter\ndb2rdf_snapshot_write_seconds %g\n", s.SnapshotWriteSeconds)
		counter("db2rdf_recovery_truncated_records", "WAL records discarded as torn or unreachable at recovery.", s.RecoveryTruncatedRecords)
		counter("db2rdf_recovery_replayed_records", "WAL records replayed at recovery.", s.ReplayedRecords)
		p("# HELP db2rdf_last_snapshot_epoch Epoch of the newest on-disk snapshot.\n# TYPE db2rdf_last_snapshot_epoch gauge\ndb2rdf_last_snapshot_epoch %d\n", s.LastSnapshotEpoch)
	}
	return err
}
