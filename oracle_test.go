package db2rdf_test

// An independent correctness oracle: random small datasets and random
// basic graph patterns are evaluated both through the full DB2RDF
// pipeline (schema + optimizer + SQL translation + relational engine)
// and by a 40-line brute-force backtracking matcher that shares no code
// with it. Solution multisets must agree exactly.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"db2rdf"
	"db2rdf/internal/rdf"
	"db2rdf/internal/sparql"
)

// bruteForce evaluates a conjunctive pattern (triples only) against a
// triple list by backtracking.
func bruteForce(triples []rdf.Triple, patterns []*sparql.TriplePattern, projected []string) [][]string {
	var out [][]string
	var match func(i int, binding map[string]rdf.Term)
	unify := func(tv sparql.TermOrVar, term rdf.Term, binding map[string]rdf.Term) (bool, bool) {
		if !tv.IsVar {
			return tv.Term == term, false
		}
		if bound, ok := binding[tv.Var]; ok {
			return bound == term, false
		}
		binding[tv.Var] = term
		return true, true
	}
	match = func(i int, binding map[string]rdf.Term) {
		if i == len(patterns) {
			row := make([]string, len(projected))
			for j, v := range projected {
				if term, ok := binding[v]; ok {
					row[j] = term.String()
				}
			}
			out = append(out, row)
			return
		}
		p := patterns[i]
		for _, tr := range triples {
			added := make([]string, 0, 3)
			ok := true
			for _, pair := range []struct {
				tv   sparql.TermOrVar
				term rdf.Term
			}{{p.S, tr.S}, {p.P, tr.P}, {p.O, tr.O}} {
				matched, fresh := unify(pair.tv, pair.term, binding)
				if !matched {
					ok = false
					break
				}
				if fresh {
					added = append(added, pair.tv.Var)
				}
			}
			if ok {
				match(i+1, binding)
			}
			for _, v := range added {
				delete(binding, v)
			}
		}
	}
	match(0, map[string]rdf.Term{})
	return out
}

// randomDataset produces a small random triple set.
func randomDataset(r *rand.Rand) []rdf.Triple {
	nSubj := 3 + r.Intn(8)
	nPred := 2 + r.Intn(4)
	nObj := 3 + r.Intn(6)
	n := 5 + r.Intn(40)
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	for i := 0; i < n; i++ {
		tr := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("s%d", r.Intn(nSubj))),
			rdf.NewIRI(fmt.Sprintf("p%d", r.Intn(nPred))),
			rdf.NewIRI(fmt.Sprintf("o%d", r.Intn(nObj))),
		)
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	return out
}

// randomBGP produces a random 1-4 triple pattern over the dataset's
// vocabulary with shared variables.
func randomBGP(r *rand.Rand) ([]*sparql.TriplePattern, string) {
	nPatterns := 1 + r.Intn(4)
	vars := []string{"a", "b", "c", "d"}
	pos := func(kind int) (sparql.TermOrVar, string) {
		if r.Intn(2) == 0 {
			v := vars[r.Intn(len(vars))]
			return sparql.Variable(v), "?" + v
		}
		var name string
		switch kind {
		case 0:
			name = fmt.Sprintf("s%d", r.Intn(8))
		case 1:
			name = fmt.Sprintf("p%d", r.Intn(4))
		default:
			name = fmt.Sprintf("o%d", r.Intn(6))
		}
		return sparql.Constant(rdf.NewIRI(name)), "<" + name + ">"
	}
	var pats []*sparql.TriplePattern
	var body strings.Builder
	for i := 0; i < nPatterns; i++ {
		s, sTxt := pos(0)
		p, pTxt := pos(1)
		o, oTxt := pos(2)
		pats = append(pats, &sparql.TriplePattern{ID: i + 1, S: s, P: p, O: o})
		fmt.Fprintf(&body, " %s %s %s .", sTxt, pTxt, oTxt)
	}
	return pats, fmt.Sprintf("SELECT ?a ?b ?c ?d WHERE {%s }", body.String())
}

func canonical(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		out[i] = strings.Join(row, "|")
	}
	sort.Strings(out)
	return out
}

func TestRandomBGPsAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		data := randomDataset(r)
		pats, query := randomBGP(r)

		store, err := db2rdf.Open(db2rdf.Options{K: 4 + r.Intn(12)})
		if err != nil {
			t.Fatal(err)
		}
		if err := store.LoadTriples(data); err != nil {
			t.Fatal(err)
		}
		res, err := store.Query(query)
		if err != nil {
			t.Fatalf("trial %d: query failed: %v\n%s", trial, err, query)
		}
		got := make([][]string, len(res.Rows))
		for i, row := range res.Rows {
			cells := make([]string, len(row))
			for j, b := range row {
				if b.Bound {
					cells[j] = b.Term.String()
				}
			}
			got[i] = cells
		}
		want := bruteForce(data, pats, []string{"a", "b", "c", "d"})
		g, w := canonical(got), canonical(want)
		if len(g) != len(w) {
			t.Fatalf("trial %d: %d rows vs brute force %d\nquery: %s\ntriples: %v",
				trial, len(g), len(w), query, data)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("trial %d: row %d differs: %q vs %q\nquery: %s",
					trial, i, g[i], w[i], query)
			}
		}
	}
}

// TestRandomBGPsNaiveOptimizerAgainstBruteForce repeats the oracle test
// under the naive flow (different plans, same answers).
func TestRandomBGPsNaiveOptimizerAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		data := randomDataset(r)
		pats, query := randomBGP(r)
		store, err := db2rdf.Open(db2rdf.Options{DisableHybridOptimizer: true, DisableMerging: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		if err := store.LoadTriples(data); err != nil {
			t.Fatal(err)
		}
		res, err := store.Query(query)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce(data, pats, []string{"a", "b", "c", "d"})
		if len(res.Rows) != len(want) {
			t.Fatalf("trial %d: %d rows vs brute force %d\nquery: %s", trial, len(res.Rows), len(want), query)
		}
	}
}
