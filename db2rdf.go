// Package db2rdf is a Go reproduction of "Building an Efficient RDF
// Store Over a Relational Database" (Bornea et al., SIGMOD 2013), the
// system that became RDF support in IBM DB2 v10.1.
//
// It stores RDF triples in the entity-oriented DB2RDF relational schema
// (DPH/DS/RPH/RS) over an embedded relational engine, optimizes SPARQL
// with the paper's hybrid two-step optimizer (data flow + query plan
// builder), translates plans to SQL, and executes them.
//
// Quick start:
//
//	store, _ := db2rdf.Open(db2rdf.Options{})
//	store.LoadReader(file)                       // N-Triples
//	res, _ := store.Query(`SELECT ?s WHERE { ?s <p> "v" }`)
//	for _, row := range res.Rows { fmt.Println(row) }
package db2rdf

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"db2rdf/internal/coloring"
	"db2rdf/internal/optimizer"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/sparql"
	"db2rdf/internal/store"
	"db2rdf/internal/translator"
)

// Options configures a Store.
type Options struct {
	// K is the number of (predicate, value) column pairs in the
	// primary relations (default 32).
	K int
	// KReverse overrides K for the reverse (object-keyed) relations.
	KReverse int
	// Mapping and ReverseMapping assign predicates to columns; nil
	// means composed hashing. Use ColorTriples to build coloring-based
	// mappings from a data sample.
	Mapping        coloring.Mapping
	ReverseMapping coloring.Mapping
	// DisableHybridOptimizer switches query planning to the naive
	// document-order flow (the paper's sub-optimal comparator, §3.3).
	DisableHybridOptimizer bool
	// DisableMerging turns off star merging in the translator (the
	// ablation of the §2.1 join-elimination claim).
	DisableMerging bool
	// Inference enables RDFS subclass reasoning: type patterns match
	// instances of subclasses via a subClassOf* closure rewrite (the
	// expansion the paper applies by hand to LUBM queries in §4.1).
	Inference bool

	// QueryTimeout is the per-query deadline applied to every query on
	// this store (0 = none). A caller-supplied context deadline that is
	// earlier takes precedence. Expiry surfaces as ErrDeadlineExceeded.
	QueryTimeout time.Duration
	// MaxResultRows bounds the rows a query may materialize, counting
	// intermediate join/filter/projection outputs, not just the final
	// result (0 = unlimited). A trip surfaces as a *BudgetError
	// matching ErrBudgetExceeded.
	MaxResultRows int64
	// MaxMemoryBytes bounds the executor's row-storage and hash-table
	// allocation per query (0 = unlimited). A trip surfaces as a
	// *BudgetError matching ErrBudgetExceeded.
	MaxMemoryBytes int64

	// SlowQueryThreshold enables the slow-query log: any query whose
	// end-to-end serving time reaches the threshold is counted in the
	// metrics and reported to SlowQueryLog (0 = disabled). When both
	// the threshold and SlowQueryLog are set, every query executes with
	// operator instrumentation on — a few percent of overhead — so the
	// log can include the analyzed operator tree of the offender;
	// with a threshold but no callback only the counter is maintained
	// and execution stays uninstrumented.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives one SlowQuery record per offending query.
	// It is called after the store's read lock is released, so the
	// callback may itself query the store; it must be safe for
	// concurrent calls.
	SlowQueryLog func(SlowQuery)

	// DataDir enables durability: a write-ahead log of checksummed
	// triple deltas plus epoch-aligned snapshot files live in this
	// directory, and Open recovers the newest consistent published
	// state from it (see DESIGN.md §9). Empty (the default) keeps the
	// store purely in-memory. A store opened on an existing DataDir
	// must use the same K/KReverse it was created with.
	DataDir string
	// Fsync forces an fsync of the WAL on every publish, making each
	// committed epoch machine-crash durable; off, a process crash
	// loses nothing but an OS crash may lose recent epochs.
	Fsync bool
	// SnapshotEvery writes a background snapshot (and rotates the WAL)
	// every n published epochs; 0 snapshots only on Close. Ignored
	// without DataDir.
	SnapshotEvery int
}

// Store is a DB2RDF store: the public API of this library.
type Store struct {
	inner   *store.Store
	opts    Options
	plans   *planCache
	metrics *Metrics
}

// Open creates an empty store — or, when Options.DataDir is set,
// recovers the persisted state from that directory and continues
// logging to it.
func Open(opts Options) (*Store, error) {
	s, err := store.New(nil, store.Options{
		K:              opts.K,
		KReverse:       opts.KReverse,
		Mapping:        opts.Mapping,
		ReverseMapping: opts.ReverseMapping,
		Durability: store.Durability{
			Dir:           opts.DataDir,
			Fsync:         opts.Fsync,
			SnapshotEvery: opts.SnapshotEvery,
		},
	})
	if err != nil {
		return nil, err
	}
	plans := newPlanCache(defaultPlanCacheSize)
	return &Store{inner: s, opts: opts, plans: plans, metrics: &Metrics{plans: plans, inner: s}}, nil
}

// Close flushes the durability layer: it waits for any in-flight
// background snapshot, writes a final snapshot of the latest published
// epoch, and closes the write-ahead log. A store without a DataDir
// closes trivially. Close is idempotent; the store remains queryable
// afterwards but further writes fail to persist.
func (s *Store) Close() error { return s.inner.Close() }

// ColorTriples analyzes a sample of triples and returns coloring-based
// predicate mappings (direct, reverse) for budgets k and kRev,
// suitable for Options.Mapping/ReverseMapping (§2.2).
func ColorTriples(triples []rdf.Triple, k, kRev int) (coloring.Mapping, coloring.Mapping) {
	d, r, _, _ := store.BuildMappings(triples, k, kRev)
	return d, r
}

// Insert adds one triple. Writers and readers may run concurrently:
// loads take the store's write lock, queries its read lock.
func (s *Store) Insert(t rdf.Triple) error {
	start := time.Now()
	err := s.inner.Insert(t)
	n := 1
	if err != nil {
		n = 0
	}
	s.metrics.observeLoad(time.Since(start), n)
	return err
}

// LoadReader bulk-loads N-Triples from r, returning the triple count.
func (s *Store) LoadReader(r io.Reader) (int, error) {
	start := time.Now()
	n, err := s.inner.Load(r)
	s.metrics.observeLoad(time.Since(start), n)
	return n, err
}

// LoadTriples bulk-loads a slice of triples.
func (s *Store) LoadTriples(ts []rdf.Triple) error {
	start := time.Now()
	err := s.inner.LoadTriples(ts)
	n := len(ts)
	if err != nil {
		n = 0
	}
	s.metrics.observeLoad(time.Since(start), n)
	return err
}

// LoadParallel bulk-loads N-Triples from r using the parallel pipeline:
// parsing and dictionary encoding fan out over worker goroutines, the
// encoded triples are partitioned by entity id, and the direct
// (subject-sharded) and reverse (object-sharded) relations are filled
// concurrently with batched appends. workers <= 0 means GOMAXPROCS.
// The final store state matches a sequential Load of the same data.
func (s *Store) LoadParallel(r io.Reader, workers int) (int, error) {
	start := time.Now()
	n, err := s.inner.LoadParallel(r, workers)
	s.metrics.observeLoad(time.Since(start), n)
	return n, err
}

// LoadTriplesParallel is LoadParallel over an in-memory triple slice.
func (s *Store) LoadTriplesParallel(ts []rdf.Triple, workers int) error {
	start := time.Now()
	err := s.inner.LoadTriplesParallel(ts, workers)
	n := len(ts)
	if err != nil {
		n = 0
	}
	s.metrics.observeLoad(time.Since(start), n)
	return err
}

// Len returns the number of distinct subjects stored (as of the
// latest published snapshot; never blocks on a running load).
func (s *Store) Len() int {
	return s.inner.Snapshot().EntityCount(false)
}

// StorageBytes returns the resident in-memory size of the store's
// data: the four DB2RDF relations (DPH, DS, RPH, RS) plus the
// dictionary's id→term store. Relation bytes cover vector/row storage,
// null bitmaps, and string contents — the number the columnar layout
// (rel.StorageColumnar, the default) and publish-time chunk sealing
// are designed to shrink; dictionary bytes cover the front-coded term
// blocks.
func (s *Store) StorageBytes() int64 {
	return s.inner.Snapshot().StorageBytes()
}

// TableBytes returns the resident bytes of the four relations alone
// (the table_resident_bytes metric).
func (s *Store) TableBytes() int64 {
	return s.inner.Snapshot().TableBytes()
}

// DictBytes returns the resident bytes of the dictionary's id→term
// store (the dict_resident_bytes metric).
func (s *Store) DictBytes() int64 {
	return s.inner.Snapshot().DictBytes()
}

// Internal exposes the underlying store for the benchmark harness and
// tools; library users should not need it.
func (s *Store) Internal() *store.Store { return s.inner }

// Binding is one variable binding; Bound is false for unbound
// (OPTIONAL) positions.
type Binding struct {
	Bound bool
	Term  rdf.Term
}

// String renders the binding.
func (b Binding) String() string {
	if !b.Bound {
		return "UNBOUND"
	}
	return b.Term.String()
}

// Results is a decoded SPARQL result set.
type Results struct {
	// Vars holds the projected variable names in order.
	Vars []string
	// Rows holds one slice of bindings per solution, parallel to Vars.
	Rows [][]Binding
	// Ask holds the answer for ASK queries.
	Ask bool
	// IsAsk marks ASK results.
	IsAsk bool
}

// Query parses, optimizes, translates and executes a SPARQL query.
// Property-path closures (p+, p*, p?) are materialized into temporary
// relations for the duration of the query. Queries run lock-free
// against the store's atomically published snapshot: any number may
// run concurrently with each other AND with writers — a bulk load on
// another goroutine never blocks a query, which simply sees the last
// published state. The store's governance options
// (Options.QueryTimeout, MaxResultRows, MaxMemoryBytes) apply.
func (s *Store) Query(q string) (*Results, error) {
	return s.QueryContext(context.Background(), q)
}

// QueryContext is Query under a context: cancel ctx (or let its
// deadline, or the store's Options.QueryTimeout, expire) and the
// executor stops within one chunk of work, returning ErrCanceled or
// ErrDeadlineExceeded. Budget trips return a *BudgetError matching
// ErrBudgetExceeded. Any panic during execution — parser, optimizer,
// translator, or a worker goroutine in the executor — is recovered and
// returned as a *PanicError with the query text attached; the store
// stays fully usable (path temporaries dropped, plan cache intact).
func (s *Store) QueryContext(ctx context.Context, q string) (res *Results, err error) {
	start := time.Now()
	var stats *ExecStats
	// Deferred observation runs after guard has normalized panics into
	// the final err, so the metrics see every outcome and the
	// slow-query callback may itself use the store.
	defer func() { s.observeQuery(q, time.Since(start), res, stats, err) }()
	defer guard(q, &res, &err)
	ctx, cancel := s.governCtx(ctx)
	defer cancel()
	// One snapshot load pins the whole query — data, spill/multi state,
	// and the epoch the plan cache keys on — to a single published
	// version; writers publishing meanwhile are invisible.
	snap := s.inner.Snapshot()
	res, stats, _, err = s.queryFull(ctx, snap, q, s.profileQueries())
	err = attachQuery(q, err)
	return res, err
}

// profileQueries reports whether public queries should run with
// operator instrumentation on: only when a slow-query log wants the
// analyzed operator tree of offenders.
func (s *Store) profileQueries() bool {
	return s.opts.SlowQueryThreshold > 0 && s.opts.SlowQueryLog != nil
}

// observeQuery feeds one served query into the metrics registry and
// the slow-query log. Called with the store lock released.
func (s *Store) observeQuery(q string, dur time.Duration, res *Results, stats *ExecStats, err error) {
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	s.metrics.observeQuery(dur, rows, err)
	if t := s.opts.SlowQueryThreshold; t > 0 && dur >= t {
		s.metrics.slowQueries.Add(1)
		if cb := s.opts.SlowQueryLog; cb != nil {
			cb(SlowQuery{Query: q, Duration: dur, Rows: rows, Err: err, Stats: stats})
		}
	}
}

// governCtx applies the store's default query timeout to ctx. An
// earlier deadline already on ctx wins (context.WithTimeout never
// extends a parent deadline).
func (s *Store) governCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.opts.QueryTimeout > 0 {
		return context.WithTimeout(ctx, s.opts.QueryTimeout)
	}
	return ctx, func() {}
}

// limits builds the executor resource budgets from the store options.
func (s *Store) limits() rel.Limits {
	return rel.Limits{MaxRows: s.opts.MaxResultRows, MaxBytes: s.opts.MaxMemoryBytes}
}

// guard converts a panic escaping the compile pipeline (parser,
// optimizer, translator — stages outside the executor's own recovery)
// into the same *PanicError shape, with the query text attached. It
// runs outermost, after the deferred lock release and temp-table
// cleanup, so the store is already consistent when it fires.
func guard(q string, res **Results, err *error) {
	if p := recover(); p != nil {
		if res != nil {
			*res = nil
		}
		*err = attachQuery(q, rel.NewPanicError(p))
	}
}

// attachQuery labels panic-derived errors with the offending query
// text; governance and ordinary errors pass through unchanged.
func attachQuery(q string, err error) error {
	var pe *rel.PanicError
	if errors.As(err, &pe) {
		return fmt.Errorf("db2rdf: query %q: %w", q, err)
	}
	return err
}

// queryOn is Query against a specific snapshot. Internal callers that
// run secondary queries while servicing a public call (closure
// materialization, CONSTRUCT, Export) use it so every constituent
// query reads the same published version; the Update path passes a
// live snapshot while holding the write lock.
//
// Repeated query texts skip the whole compile pipeline (SPARQL parse,
// flow optimization, plan building, SQL generation, SQL parse) via the
// store's compiled-plan cache; keying the cache on the snapshot's
// epoch guarantees a cached plan is only reused against the exact
// store state it was compiled for. Queries that materialize
// property-path closures are compiled afresh each time (their SQL
// references per-query temp tables).
func (s *Store) queryOn(ctx context.Context, snap *store.Snapshot, q string) (*Results, error) {
	res, _, _, err := s.queryFull(ctx, snap, q, false)
	return res, err
}

// queryFull is queryOn returning the execution profile (nil unless
// profile is set) and the compiled plan (nil when compilation itself
// failed) alongside the results, for EXPLAIN ANALYZE and the
// slow-query log.
func (s *Store) queryFull(ctx context.Context, snap *store.Snapshot, q string, profile bool) (*Results, *ExecStats, *compiledPlan, error) {
	// A live (write-lock) snapshot sees mid-update content that is
	// newer than the published state of the same epoch, so it must
	// bypass the plan cache in both directions.
	cacheable := !snap.Live()
	epoch := snap.Epoch()
	if cacheable {
		if cp, ok := s.plans.get(q, epoch); ok {
			res, stats, err := s.executeCompiledStats(ctx, snap, cp, profile)
			return res, stats, cp, err
		}
	}
	parsed, err := sparql.Parse(q)
	if err != nil {
		return nil, nil, nil, err
	}
	if s.opts.Inference {
		inferenceRewrite(parsed)
	}
	sparql.UnifyEqualityFilters(parsed)
	virtual, cleanup, err := s.materializeClosures(ctx, snap, parsed)
	if err != nil {
		return nil, nil, nil, err
	}
	defer cleanup()
	tr, err := s.translate(snap, parsed, virtual)
	if err != nil {
		return nil, nil, nil, err
	}
	cp := &compiledPlan{key: q, epoch: epoch, parsed: parsed, tr: tr}
	if tr.SQL != "" {
		if cp.rq, err = rel.ParseQuery(tr.SQL); err != nil {
			return nil, nil, nil, fmt.Errorf("db2rdf: parsing generated SQL: %w", err)
		}
	}
	if cacheable && len(parsed.Closures) == 0 {
		s.plans.put(cp)
	}
	res, stats, err := s.executeCompiledStats(ctx, snap, cp, profile)
	return res, stats, cp, err
}

// Explanation reports how a query would run.
type Explanation struct {
	Flow string // the optimal (or naive) flow tree
	Tree string // the execution tree
	Plan string // the merged query plan
	SQL  string // the generated SQL

	// PlanCached reports whether a compiled plan for this exact query
	// text is currently cached and valid at the store's present epoch
	// (i.e. Query would skip the compile pipeline).
	PlanCached bool
	// PlanCacheHits and PlanCacheMisses are the store-lifetime
	// compiled-plan cache counters.
	PlanCacheHits   uint64
	PlanCacheMisses uint64

	// Governance settings that would apply when this query runs:
	// the effective deadline (zero time = none; the earlier of the
	// caller context's deadline and Options.QueryTimeout) and the row
	// and memory budgets (0 = unlimited).
	Deadline       time.Time
	MaxResultRows  int64
	MaxMemoryBytes int64
}

// Explain returns the optimizer and translator artifacts for a query
// without executing it. Like Query, it runs against the latest
// published snapshot.
func (s *Store) Explain(q string) (*Explanation, error) {
	return s.ExplainContext(context.Background(), q)
}

// ExplainContext is Explain under a context; the reported governance
// fields reflect ctx's deadline combined with the store options.
func (s *Store) ExplainContext(ctx context.Context, q string) (expl *Explanation, err error) {
	defer guard(q, nil, &err)
	ctx, cancel := s.governCtx(ctx)
	defer cancel()
	return s.explainOn(ctx, s.inner.Snapshot(), q)
}

// explainOn is ExplainContext against a specific snapshot (EXPLAIN
// ANALYZE reuses it before executing on the same snapshot).
func (s *Store) explainOn(ctx context.Context, snap *store.Snapshot, q string) (expl *Explanation, err error) {
	parsed, err := sparql.Parse(q)
	if err != nil {
		return nil, err
	}
	if s.opts.Inference {
		inferenceRewrite(parsed)
	}
	sparql.UnifyEqualityFilters(parsed)
	virtual, cleanup, err := s.materializeClosures(ctx, snap, parsed)
	if err != nil {
		return nil, attachQuery(q, err)
	}
	defer cleanup()
	exec, flow, err := s.optimize(parsed)
	if err != nil {
		return nil, err
	}
	backend := translator.NewDB2RDF(snap)
	backend.Virtual = virtual
	planner := translator.NewPlanner(backend)
	planner.SetMerging(!s.opts.DisableMerging)
	plan := planner.BuildPlan(exec)
	tr, err := translator.Translate(parsed, plan, backend)
	if err != nil {
		return nil, err
	}
	expl = &Explanation{Flow: flow.String(), Tree: exec.String(), Plan: plan.String(), SQL: tr.SQL}
	expl.PlanCached = s.plans.contains(q, snap.Epoch())
	expl.PlanCacheHits, expl.PlanCacheMisses = s.plans.stats()
	if d, ok := ctx.Deadline(); ok {
		expl.Deadline = d
	}
	expl.MaxResultRows = s.opts.MaxResultRows
	expl.MaxMemoryBytes = s.opts.MaxMemoryBytes
	return expl, nil
}

// PlanCacheStats returns the lifetime hit and miss counts of the
// compiled-plan cache.
func (s *Store) PlanCacheStats() (hits, misses uint64) { return s.plans.stats() }

// ResetPlanCache drops every cached compiled plan (counters are kept).
// Useful for cold-plan benchmarking; normal invalidation is automatic,
// keyed on the store's write epoch.
func (s *Store) ResetPlanCache() { s.plans.reset() }

func (s *Store) optimize(parsed *sparql.Query) (*optimizer.ExecNode, *optimizer.Flow, error) {
	if s.opts.DisableHybridOptimizer {
		exec, flow := optimizer.OptimizeNaive(parsed, s.inner.StatsView())
		return exec, flow, nil
	}
	return optimizer.Optimize(parsed, s.inner.StatsView())
}

func (s *Store) translate(snap *store.Snapshot, parsed *sparql.Query, virtual map[string]string) (*translator.Result, error) {
	exec, _, err := s.optimize(parsed)
	if err != nil {
		return nil, err
	}
	backend := translator.NewDB2RDF(snap)
	backend.Virtual = virtual
	planner := translator.NewPlanner(backend)
	planner.SetMerging(!s.opts.DisableMerging)
	plan := planner.BuildPlan(exec)
	return translator.Translate(parsed, plan, backend)
}

// execute compiles tr.SQL (when non-empty) and runs it against the
// snapshot. Internal callers that build query ASTs directly
// (CONSTRUCT, DESCRIBE) use it; these one-off plans bypass the cache.
func (s *Store) execute(ctx context.Context, snap *store.Snapshot, parsed *sparql.Query, tr *translator.Result) (*Results, error) {
	cp := &compiledPlan{parsed: parsed, tr: tr}
	if tr.SQL != "" {
		var err error
		if cp.rq, err = rel.ParseQuery(tr.SQL); err != nil {
			return nil, fmt.Errorf("db2rdf: parsing generated SQL: %w", err)
		}
	}
	res, _, err := s.executeCompiledStats(ctx, snap, cp, false)
	return res, err
}

// executeCompiledStats runs a compiled plan against the snapshot's
// database under ctx and the store's resource budgets, with optional
// operator instrumentation; when profile is set the execution profile
// is returned (present even on failure, so aborted queries can be
// diagnosed). The plan's fields are read-only, so concurrent readers
// may execute the same cached plan; an aborted execution leaves the
// cached plan valid.
func (s *Store) executeCompiledStats(ctx context.Context, snap *store.Snapshot, cp *compiledPlan, profile bool) (*Results, *ExecStats, error) {
	tr := cp.tr
	out := &Results{IsAsk: tr.Ask}
	if cp.rq == nil {
		// Empty pattern: ASK {} is true; SELECT over {} yields one
		// empty solution (the SPARQL unit solution mapping), with every
		// projected variable unbound.
		if tr.Ask {
			out.Ask = true
			return out, nil, nil
		}
		out.Vars = cp.parsed.ProjectedVars()
		out.Rows = append(out.Rows, make([]Binding, len(out.Vars)))
		return out, nil, nil
	}
	var rs *rel.ResultSet
	var stats *ExecStats
	var err error
	if profile {
		rs, stats, err = snap.DB().AnalyzeContext(ctx, cp.rq, s.limits())
	} else {
		rs, err = snap.DB().ExecContext(ctx, cp.rq, s.limits())
	}
	if err != nil {
		if isGovernanceErr(err) {
			// Keep governance errors unwrapped beyond errors.Is/As needs:
			// callers match them directly and the SQL is an internal
			// artifact that would only obscure the typed error.
			return nil, stats, err
		}
		return nil, stats, fmt.Errorf("db2rdf: executing generated SQL: %w", err)
	}
	if tr.Ask {
		out.Ask = len(rs.Rows) > 0
		return out, stats, nil
	}
	keep := len(tr.Columns) - tr.Hidden
	out.Vars = tr.Columns[:keep]
	for _, row := range rs.Rows {
		decoded := make([]Binding, keep)
		for i := 0; i < keep; i++ {
			v := row[i]
			if v.IsNull() {
				continue
			}
			t, err := s.inner.Dict.Decode(v.I)
			if err != nil {
				return nil, stats, fmt.Errorf("db2rdf: decoding result id %d: %w", v.I, err)
			}
			decoded[i] = Binding{Bound: true, Term: t}
		}
		out.Rows = append(out.Rows, decoded)
	}
	return out, stats, nil
}

// MustQuery is Query for tests and examples; it panics on error.
func (s *Store) MustQuery(q string) *Results {
	r, err := s.Query(q)
	if err != nil {
		panic(err)
	}
	return r
}
