// Package db2rdf is a Go reproduction of "Building an Efficient RDF
// Store Over a Relational Database" (Bornea et al., SIGMOD 2013), the
// system that became RDF support in IBM DB2 v10.1.
//
// It stores RDF triples in the entity-oriented DB2RDF relational schema
// (DPH/DS/RPH/RS) over an embedded relational engine, optimizes SPARQL
// with the paper's hybrid two-step optimizer (data flow + query plan
// builder), translates plans to SQL, and executes them.
//
// Quick start:
//
//	store, _ := db2rdf.Open(db2rdf.Options{})
//	store.LoadReader(file)                       // N-Triples
//	res, _ := store.Query(`SELECT ?s WHERE { ?s <p> "v" }`)
//	for _, row := range res.Rows { fmt.Println(row) }
package db2rdf

import (
	"fmt"
	"io"

	"db2rdf/internal/coloring"
	"db2rdf/internal/optimizer"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/sparql"
	"db2rdf/internal/store"
	"db2rdf/internal/translator"
)

// Options configures a Store.
type Options struct {
	// K is the number of (predicate, value) column pairs in the
	// primary relations (default 32).
	K int
	// KReverse overrides K for the reverse (object-keyed) relations.
	KReverse int
	// Mapping and ReverseMapping assign predicates to columns; nil
	// means composed hashing. Use ColorTriples to build coloring-based
	// mappings from a data sample.
	Mapping        coloring.Mapping
	ReverseMapping coloring.Mapping
	// DisableHybridOptimizer switches query planning to the naive
	// document-order flow (the paper's sub-optimal comparator, §3.3).
	DisableHybridOptimizer bool
	// DisableMerging turns off star merging in the translator (the
	// ablation of the §2.1 join-elimination claim).
	DisableMerging bool
	// Inference enables RDFS subclass reasoning: type patterns match
	// instances of subclasses via a subClassOf* closure rewrite (the
	// expansion the paper applies by hand to LUBM queries in §4.1).
	Inference bool
}

// Store is a DB2RDF store: the public API of this library.
type Store struct {
	inner *store.Store
	opts  Options
	plans *planCache
}

// Open creates an empty store.
func Open(opts Options) (*Store, error) {
	s, err := store.New(nil, store.Options{
		K:              opts.K,
		KReverse:       opts.KReverse,
		Mapping:        opts.Mapping,
		ReverseMapping: opts.ReverseMapping,
	})
	if err != nil {
		return nil, err
	}
	return &Store{inner: s, opts: opts, plans: newPlanCache(defaultPlanCacheSize)}, nil
}

// ColorTriples analyzes a sample of triples and returns coloring-based
// predicate mappings (direct, reverse) for budgets k and kRev,
// suitable for Options.Mapping/ReverseMapping (§2.2).
func ColorTriples(triples []rdf.Triple, k, kRev int) (coloring.Mapping, coloring.Mapping) {
	d, r, _, _ := store.BuildMappings(triples, k, kRev)
	return d, r
}

// Insert adds one triple. Writers and readers may run concurrently:
// loads take the store's write lock, queries its read lock.
func (s *Store) Insert(t rdf.Triple) error { return s.inner.Insert(t) }

// LoadReader bulk-loads N-Triples from r, returning the triple count.
func (s *Store) LoadReader(r io.Reader) (int, error) { return s.inner.Load(r) }

// LoadTriples bulk-loads a slice of triples.
func (s *Store) LoadTriples(ts []rdf.Triple) error { return s.inner.LoadTriples(ts) }

// LoadParallel bulk-loads N-Triples from r using the parallel pipeline:
// parsing and dictionary encoding fan out over worker goroutines, the
// encoded triples are partitioned by entity id, and the direct
// (subject-sharded) and reverse (object-sharded) relations are filled
// concurrently with batched appends. workers <= 0 means GOMAXPROCS.
// The final store state matches a sequential Load of the same data.
func (s *Store) LoadParallel(r io.Reader, workers int) (int, error) {
	return s.inner.LoadParallel(r, workers)
}

// LoadTriplesParallel is LoadParallel over an in-memory triple slice.
func (s *Store) LoadTriplesParallel(ts []rdf.Triple, workers int) error {
	return s.inner.LoadTriplesParallel(ts, workers)
}

// Len returns the number of distinct subjects stored.
func (s *Store) Len() int {
	s.inner.RLock()
	defer s.inner.RUnlock()
	return s.inner.EntityCount(false)
}

// Internal exposes the underlying store for the benchmark harness and
// tools; library users should not need it.
func (s *Store) Internal() *store.Store { return s.inner }

// Binding is one variable binding; Bound is false for unbound
// (OPTIONAL) positions.
type Binding struct {
	Bound bool
	Term  rdf.Term
}

// String renders the binding.
func (b Binding) String() string {
	if !b.Bound {
		return "UNBOUND"
	}
	return b.Term.String()
}

// Results is a decoded SPARQL result set.
type Results struct {
	// Vars holds the projected variable names in order.
	Vars []string
	// Rows holds one slice of bindings per solution, parallel to Vars.
	Rows [][]Binding
	// Ask holds the answer for ASK queries.
	Ask bool
	// IsAsk marks ASK results.
	IsAsk bool
}

// Query parses, optimizes, translates and executes a SPARQL query.
// Property-path closures (p+, p*, p?) are materialized into temporary
// relations for the duration of the query. Queries hold the store's
// read lock, so any number may run concurrently with each other (and
// are serialized against loads).
func (s *Store) Query(q string) (*Results, error) {
	s.inner.RLock()
	defer s.inner.RUnlock()
	return s.queryLocked(q)
}

// queryLocked is Query under an already-held store read lock. Internal
// callers that run secondary queries while servicing a public call
// (closure materialization, CONSTRUCT, Export) use it to avoid
// re-entrant read locking, which can deadlock against a queued writer.
//
// Repeated query texts skip the whole compile pipeline (SPARQL parse,
// flow optimization, plan building, SQL generation, SQL parse) via the
// store's compiled-plan cache; the epoch check guarantees a cached
// plan is only reused against the exact store state it was compiled
// for. Queries that materialize property-path closures are compiled
// afresh each time (their SQL references per-query temp tables).
func (s *Store) queryLocked(q string) (*Results, error) {
	epoch := s.inner.Epoch()
	if cp, ok := s.plans.get(q, epoch); ok {
		return s.executeCompiled(cp)
	}
	parsed, err := sparql.Parse(q)
	if err != nil {
		return nil, err
	}
	if s.opts.Inference {
		inferenceRewrite(parsed)
	}
	sparql.UnifyEqualityFilters(parsed)
	virtual, cleanup, err := s.materializeClosures(parsed)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	tr, err := s.translate(parsed, virtual)
	if err != nil {
		return nil, err
	}
	cp := &compiledPlan{key: q, epoch: epoch, parsed: parsed, tr: tr}
	if tr.SQL != "" {
		if cp.rq, err = rel.ParseQuery(tr.SQL); err != nil {
			return nil, fmt.Errorf("db2rdf: parsing generated SQL: %w", err)
		}
	}
	if len(parsed.Closures) == 0 {
		s.plans.put(cp)
	}
	return s.executeCompiled(cp)
}

// Explanation reports how a query would run.
type Explanation struct {
	Flow string // the optimal (or naive) flow tree
	Tree string // the execution tree
	Plan string // the merged query plan
	SQL  string // the generated SQL

	// PlanCached reports whether a compiled plan for this exact query
	// text is currently cached and valid at the store's present epoch
	// (i.e. Query would skip the compile pipeline).
	PlanCached bool
	// PlanCacheHits and PlanCacheMisses are the store-lifetime
	// compiled-plan cache counters.
	PlanCacheHits   uint64
	PlanCacheMisses uint64
}

// Explain returns the optimizer and translator artifacts for a query
// without executing it. Like Query, it holds the store read lock.
func (s *Store) Explain(q string) (*Explanation, error) {
	s.inner.RLock()
	defer s.inner.RUnlock()
	parsed, err := sparql.Parse(q)
	if err != nil {
		return nil, err
	}
	if s.opts.Inference {
		inferenceRewrite(parsed)
	}
	sparql.UnifyEqualityFilters(parsed)
	virtual, cleanup, err := s.materializeClosures(parsed)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	exec, flow, err := s.optimize(parsed)
	if err != nil {
		return nil, err
	}
	backend := translator.NewDB2RDF(s.inner)
	backend.Virtual = virtual
	planner := translator.NewPlanner(backend)
	planner.SetMerging(!s.opts.DisableMerging)
	plan := planner.BuildPlan(exec)
	tr, err := translator.Translate(parsed, plan, backend)
	if err != nil {
		return nil, err
	}
	expl := &Explanation{Flow: flow.String(), Tree: exec.String(), Plan: plan.String(), SQL: tr.SQL}
	expl.PlanCached = s.plans.contains(q, s.inner.Epoch())
	expl.PlanCacheHits, expl.PlanCacheMisses = s.plans.stats()
	return expl, nil
}

// PlanCacheStats returns the lifetime hit and miss counts of the
// compiled-plan cache.
func (s *Store) PlanCacheStats() (hits, misses uint64) { return s.plans.stats() }

// ResetPlanCache drops every cached compiled plan (counters are kept).
// Useful for cold-plan benchmarking; normal invalidation is automatic,
// keyed on the store's write epoch.
func (s *Store) ResetPlanCache() { s.plans.reset() }

func (s *Store) optimize(parsed *sparql.Query) (*optimizer.ExecNode, *optimizer.Flow, error) {
	if s.opts.DisableHybridOptimizer {
		exec, flow := optimizer.OptimizeNaive(parsed, s.inner.StatsView())
		return exec, flow, nil
	}
	return optimizer.Optimize(parsed, s.inner.StatsView())
}

func (s *Store) translate(parsed *sparql.Query, virtual map[string]string) (*translator.Result, error) {
	exec, _, err := s.optimize(parsed)
	if err != nil {
		return nil, err
	}
	backend := translator.NewDB2RDF(s.inner)
	backend.Virtual = virtual
	planner := translator.NewPlanner(backend)
	planner.SetMerging(!s.opts.DisableMerging)
	plan := planner.BuildPlan(exec)
	return translator.Translate(parsed, plan, backend)
}

// execute compiles tr.SQL (when non-empty) and runs it. Internal
// callers that build query ASTs directly (CONSTRUCT, DESCRIBE) use it;
// these one-off plans bypass the cache.
func (s *Store) execute(parsed *sparql.Query, tr *translator.Result) (*Results, error) {
	cp := &compiledPlan{parsed: parsed, tr: tr}
	if tr.SQL != "" {
		var err error
		if cp.rq, err = rel.ParseQuery(tr.SQL); err != nil {
			return nil, fmt.Errorf("db2rdf: parsing generated SQL: %w", err)
		}
	}
	return s.executeCompiled(cp)
}

// executeCompiled runs a compiled plan. The plan's fields are
// read-only, so concurrent readers may execute the same cached plan.
func (s *Store) executeCompiled(cp *compiledPlan) (*Results, error) {
	tr := cp.tr
	out := &Results{IsAsk: tr.Ask}
	if cp.rq == nil {
		// Empty pattern: ASK {} is true; SELECT over {} yields one
		// empty solution (the SPARQL unit solution mapping), with every
		// projected variable unbound.
		if tr.Ask {
			out.Ask = true
			return out, nil
		}
		out.Vars = cp.parsed.ProjectedVars()
		out.Rows = append(out.Rows, make([]Binding, len(out.Vars)))
		return out, nil
	}
	rs, err := s.inner.DB.Exec(cp.rq)
	if err != nil {
		return nil, fmt.Errorf("db2rdf: executing generated SQL: %w", err)
	}
	if tr.Ask {
		out.Ask = len(rs.Rows) > 0
		return out, nil
	}
	keep := len(tr.Columns) - tr.Hidden
	out.Vars = tr.Columns[:keep]
	for _, row := range rs.Rows {
		decoded := make([]Binding, keep)
		for i := 0; i < keep; i++ {
			v := row[i]
			if v.IsNull() {
				continue
			}
			t, err := s.inner.Dict.Decode(v.I)
			if err != nil {
				return nil, fmt.Errorf("db2rdf: decoding result id %d: %w", v.I, err)
			}
			decoded[i] = Binding{Bound: true, Term: t}
		}
		out.Rows = append(out.Rows, decoded)
	}
	return out, nil
}

// MustQuery is Query for tests and examples; it panics on error.
func (s *Store) MustQuery(q string) *Results {
	r, err := s.Query(q)
	if err != nil {
		panic(err)
	}
	return r
}
