package db2rdf

// Accounting test for the compiled-plan cache: hit/miss/eviction
// counters must be exact under concurrent get/put with stale-epoch
// eviction (run under -race by ci.sh). The conservation law asserted:
//
//	inserts == size + capEvictions + staleEvictions + resetDrops
//	gets    == hits + misses
//	misses  >= staleEvictions (every stale hit is a miss + an eviction)

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPlanCacheAccountingConcurrent(t *testing.T) {
	c := newPlanCache(16) // small capacity to force LRU evictions
	const workers = 8
	const opsPerWorker = 2000
	var gets, puts atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				key := fmt.Sprintf("q%d", (seed*31+i*7)%40) // 40 keys over 16 slots
				epoch := uint64(i % 3)                      // rotating epochs force stale evictions
				if cp, ok := c.get(key, epoch); ok && cp.epoch != epoch {
					t.Errorf("get returned a stale plan: key %s epoch %d vs %d", key, cp.epoch, epoch)
				}
				gets.Add(1)
				if i%2 == 0 {
					c.put(&compiledPlan{key: key, epoch: epoch})
					puts.Add(1)
				}
				if i%500 == 250 {
					c.reset()
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.statsFull()
	if st.Hits+st.Misses != gets.Load() {
		t.Fatalf("hits(%d) + misses(%d) != gets(%d)", st.Hits, st.Misses, gets.Load())
	}
	if st.Inserts+st.Replacements != puts.Load() {
		t.Fatalf("inserts(%d) + replacements(%d) != puts(%d)", st.Inserts, st.Replacements, puts.Load())
	}
	if got := st.Inserts; got != uint64(st.Size)+st.CapEvictions+st.StaleEvictions+st.ResetDrops {
		t.Fatalf("conservation violated: inserts=%d size=%d cap=%d stale=%d reset=%d",
			st.Inserts, st.Size, st.CapEvictions, st.StaleEvictions, st.ResetDrops)
	}
	if st.Misses < st.StaleEvictions {
		t.Fatalf("every stale eviction must also count a miss: misses=%d stale=%d", st.Misses, st.StaleEvictions)
	}
	if st.CapEvictions == 0 || st.StaleEvictions == 0 {
		t.Fatalf("workload must exercise both eviction kinds: %+v", st)
	}
	if st.Size > 16 {
		t.Fatalf("cache over capacity: %d", st.Size)
	}
}

// TestPlanCacheStaleGetAccounting pins the exact single-threaded
// semantics: a stale entry found by get counts one miss and one stale
// eviction, never a hit.
func TestPlanCacheStaleGetAccounting(t *testing.T) {
	c := newPlanCache(4)
	c.put(&compiledPlan{key: "q", epoch: 1})
	if _, ok := c.get("q", 1); !ok {
		t.Fatal("fresh entry must hit")
	}
	if _, ok := c.get("q", 2); ok {
		t.Fatal("stale entry must miss")
	}
	st := c.statsFull()
	want := planCacheStats{Hits: 1, Misses: 1, Inserts: 1, StaleEvictions: 1, Size: 0}
	if st != want {
		t.Fatalf("got %+v, want %+v", st, want)
	}
}
