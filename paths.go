package db2rdf

import (
	"context"
	"fmt"
	"sync/atomic"

	"db2rdf/internal/rel"
	"db2rdf/internal/sparql"
	"db2rdf/internal/store"
)

// Property-path closures (p+, p*, p?) — the paper's stated future work
// (§6, "extend our system to support the SPARQL 1.1 standard (including
// property paths)"). Sequences, alternatives and inverses are desugared
// by the parser; closures are materialized here: the engine computes
// the transitive closure of the step relation and loads the pairs into
// a temporary indexed (entry, val) relation that the translator
// accesses through the closure's marker predicate.
//
// Zero-length path semantics (for p* and p?) are restricted to the
// nodes incident to the base relation's edges, rather than every term
// in the graph; this is the usual engine-friendly approximation and is
// documented in DESIGN.md.

// pathTableN numbers the temporary closure relations. It is advanced
// atomically so concurrent queries materializing closures each get
// unique PATHTMP_n names and cannot clobber one another's temp tables.
var pathTableN int64

// materializeClosures computes and loads each closure of the query,
// returning the marker->table map and a cleanup function that drops
// the temporary relations. The temporaries live in the snapshot's
// database — a frozen snapshot DB accepts per-query table creation
// under its own mutex, and the unique names keep concurrent queries on
// the same snapshot apart — so the generated SQL finds them in the
// very database it executes against. An abort (cancellation, deadline,
// budget) between closures drops any temporaries already created
// before the error is returned, so governance failures never leak
// PATHTMP tables.
func (s *Store) materializeClosures(ctx context.Context, snap *store.Snapshot, parsed *sparql.Query) (map[string]string, func(), error) {
	if len(parsed.Closures) == 0 {
		return nil, func() {}, nil
	}
	db := snap.DB()
	virtual := map[string]string{}
	var created []string
	cleanup := func() {
		for _, n := range created {
			db.DropTable(n)
		}
	}
	for _, cl := range parsed.Closures {
		pairs, err := s.closurePairs(ctx, snap, cl)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		name := fmt.Sprintf("PATHTMP_%d", atomic.AddInt64(&pathTableN, 1))
		tbl, err := db.CreateTable(name, rel.Schema{
			{Name: "entry", Type: rel.TInt},
			{Name: "val", Type: rel.TInt},
		})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		created = append(created, name)
		if err := tbl.CreateIndex("entry"); err != nil {
			cleanup()
			return nil, nil, err
		}
		if err := tbl.CreateIndex("val"); err != nil {
			cleanup()
			return nil, nil, err
		}
		for _, p := range pairs {
			if err := tbl.Insert(rel.Row{rel.Int(p[0]), rel.Int(p[1])}); err != nil {
				cleanup()
				return nil, nil, err
			}
		}
		virtual[cl.Marker] = name
	}
	return virtual, cleanup, nil
}

// closurePairs evaluates the closure's base steps through ordinary
// (closure-free) queries and computes the reachability pairs. The step
// queries run under ctx and the store budgets like any other query,
// and the BFS itself polls cancellation at chunk granularity, so a
// pathological closure (quadratic reachability) can be aborted too.
func (s *Store) closurePairs(ctx context.Context, snap *store.Snapshot, cl sparql.Closure) ([][2]int64, error) {
	adj := map[int64][]int64{}
	nodes := map[int64]bool{}
	for _, step := range cl.Steps {
		// queryOn, not Query: the step queries must read the same
		// snapshot as the outer query, not whatever was published last.
		res, err := s.queryOn(ctx, snap, fmt.Sprintf("SELECT ?a ?b WHERE { ?a <%s> ?b }", step.IRI))
		if err != nil {
			return nil, fmt.Errorf("db2rdf: evaluating path step <%s>: %w", step.IRI, err)
		}
		for _, row := range res.Rows {
			if !row[0].Bound || !row[1].Bound {
				continue
			}
			aid, aok := s.inner.Dict.Lookup(row[0].Term)
			bid, bok := s.inner.Dict.Lookup(row[1].Term)
			if !aok || !bok {
				continue
			}
			if step.Inverse {
				aid, bid = bid, aid
			}
			adj[aid] = append(adj[aid], bid)
			nodes[aid] = true
			nodes[bid] = true
		}
	}
	pairSet := map[[2]int64]bool{}
	if cl.Max == 1 {
		// Zero-or-one: just the single-step edges.
		for a, bs := range adj {
			for _, b := range bs {
				pairSet[[2]int64{a, b}] = true
			}
		}
	} else {
		// Transitive closure: BFS from every source node, checking
		// cancellation every 1024 pops (the executor's chunk granularity).
		popped := 0
		for start := range adj {
			visited := map[int64]bool{}
			queue := append([]int64(nil), adj[start]...)
			for len(queue) > 0 {
				if popped++; popped&1023 == 0 {
					if err := ctxErr(ctx); err != nil {
						return nil, err
					}
				}
				n := queue[0]
				queue = queue[1:]
				if visited[n] {
					continue
				}
				visited[n] = true
				pairSet[[2]int64{start, n}] = true
				queue = append(queue, adj[n]...)
			}
		}
	}
	if cl.Min == 0 {
		for n := range nodes {
			pairSet[[2]int64{n, n}] = true
		}
	}
	out := make([][2]int64, 0, len(pairSet))
	for p := range pairSet {
		out = append(out, p)
	}
	return out, nil
}
