package db2rdf_test

// Regression tests for the delete-staleness of the spill/multi
// predicate markers (ISSUE 10 satellite): the live store keeps
// spillPreds/multiPreds/spillCount conservatively stale across deletes,
// but a publish that compacts chunks must recompute them exactly, so a
// long-running server converges to the same translator inputs (and
// therefore the same EXPLAIN plans and SQL) as a store restarted from
// its durable snapshot.

import (
	"fmt"
	"strings"
	"testing"

	"db2rdf"
	"db2rdf/internal/rdf"
)

// markerChurn builds a store exhibiting every stale-marker shape, then
// deletes enough rows in one chunk to trigger publish-time compaction:
//   - a spilled subject (more predicates than one K=4 row holds) whose
//     triples are all deleted — its predicates must leave spillPreds;
//   - a multi-valued (s,p) pair collapsed back to a single value — p
//     must leave multiPreds on the direct side;
//   - 300 single-triple filler subjects, deleted to cross the per-chunk
//     dead-row compaction threshold (chunkRows/4 = 256).
func markerChurn(t *testing.T, opts db2rdf.Options) (*db2rdf.Store, []rdf.Triple, []rdf.Triple) {
	t.Helper()
	s, err := db2rdf.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	var load, del []rdf.Triple
	// Spilled subject: 12 distinct predicates over K=4 (8 pairs per row
	// at most across candidate columns) guarantees at least one spill
	// row regardless of the hash mapping.
	for i := 0; i < 12; i++ {
		tr := rdf.NewTriple(
			rdf.NewIRI("http://marker/spilled"),
			rdf.NewIRI(fmt.Sprintf("http://marker/sp%d", i)),
			rdf.NewLiteral(fmt.Sprintf("sv%d", i)))
		load = append(load, tr)
		del = append(del, tr)
	}
	// Multi-valued pair: two objects for one (s, p); deleting one
	// collapses the DS list back to a direct value.
	keepMulti := rdf.NewTriple(rdf.NewIRI("http://marker/ms"), rdf.NewIRI("http://marker/mp"), rdf.NewLiteral("kept"))
	dropMulti := rdf.NewTriple(rdf.NewIRI("http://marker/ms"), rdf.NewIRI("http://marker/mp"), rdf.NewLiteral("dropped"))
	load = append(load, keepMulti, dropMulti)
	del = append(del, dropMulti)
	// Filler subjects whose deletion tombstones whole rows in the first
	// DPH/RPH chunks, crossing the compaction threshold.
	for i := 0; i < 300; i++ {
		tr := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://marker/f%d", i)),
			rdf.NewIRI("http://marker/fp"),
			rdf.NewLiteral(fmt.Sprintf("fv%d", i)))
		load = append(load, tr)
		del = append(del, tr)
	}
	if err := s.LoadTriples(load); err != nil {
		t.Fatal(err)
	}
	return s, load, del
}

func TestMarkersRecomputedAtCompaction(t *testing.T) {
	s, _, del := markerChurn(t, db2rdf.Options{K: 4})
	inner := s.Internal()
	inner.RLock()
	mpid, ok := inner.LookupID(rdf.NewIRI("http://marker/mp"))
	if !ok {
		t.Fatal("multi predicate not interned")
	}
	if !inner.MultiValued(mpid, false) {
		t.Fatal("mp must be multi-valued before the delete")
	}
	if len(inner.SpillPredicates(false)) == 0 {
		t.Fatal("expected direct-side spill predicates before the delete")
	}
	inner.RUnlock()

	n, err := s.DeleteTriples(del)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(del) {
		t.Fatalf("deleted %d, want %d", n, len(del))
	}

	// The delete's publish compacted the filler-heavy chunks, so the
	// markers must now be exact: the collapsed pair is single-valued
	// again and the fully removed spilled subject left spillPreds.
	inner.RLock()
	defer inner.RUnlock()
	if inner.Compactions() == 0 {
		t.Fatal("test did not trigger publish-time compaction; threshold assumptions broken")
	}
	if inner.MultiValued(mpid, false) {
		t.Fatal("mp still marked multi-valued after collapse + compaction")
	}
	for pid := range inner.SpillPredicates(false) {
		term, err := inner.Dict.Decode(pid)
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(term.Value, "http://marker/sp") {
			t.Fatalf("deleted spill predicate %s still marked", term.Value)
		}
	}
	if got := inner.SpillCount(false); got != 0 {
		t.Fatalf("direct spill count = %d, want 0 after deleting the spilled subject", got)
	}
}

// TestMarkerExplainMatchesRecovery asserts the headline property: after
// delete-heavy churn and a compacting publish, the live store's EXPLAIN
// output (plan and generated SQL, both functions of the spill/multi
// markers) is identical to that of a store recovered from the same data
// directory — a long-running server no longer degrades relative to a
// restarted one.
func TestMarkerExplainMatchesRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _, del := markerChurn(t, db2rdf.Options{K: 4, DataDir: dir})
	if _, err := s.DeleteTriples(del); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT ?o WHERE { <http://marker/ms> <http://marker/mp> ?o }`,
		`SELECT ?s ?o WHERE { ?s <http://marker/mp> ?o . ?s <http://marker/sp1> ?x }`,
		`SELECT ?s WHERE { ?s <http://marker/fp> ?o }`,
	}
	type shape struct{ flow, tree, plan, sql string }
	live := make([]shape, len(queries))
	for i, q := range queries {
		ex, err := s.Explain(q)
		if err != nil {
			t.Fatalf("live explain %q: %v", q, err)
		}
		live[i] = shape{ex.Flow, ex.Tree, ex.Plan, ex.SQL}
	}
	liveResults := make([]*db2rdf.Results, len(queries))
	for i, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		liveResults[i] = res
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := db2rdf.Open(db2rdf.Options{K: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	for i, q := range queries {
		ex, err := rec.Explain(q)
		if err != nil {
			t.Fatalf("recovered explain %q: %v", q, err)
		}
		got := shape{ex.Flow, ex.Tree, ex.Plan, ex.SQL}
		if got != live[i] {
			t.Errorf("explain diverges for %q:\nlive: %+v\nrecovered: %+v", q, live[i], got)
		}
		res, err := rec.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(liveResults[i].Rows) {
			t.Errorf("row count diverges for %q: live %d, recovered %d", q, len(liveResults[i].Rows), len(res.Rows))
		}
	}
	// Marker-level agreement on both sides.
	li, ri := s.Internal(), rec.Internal()
	for _, reverse := range []bool{false, true} {
		if l, r := li.SpillCount(reverse), ri.SpillCount(reverse); l != r {
			t.Errorf("spill count (reverse=%v): live %d, recovered %d", reverse, l, r)
		}
		ls, rs := li.SpillPredicates(reverse), ri.SpillPredicates(reverse)
		if len(ls) != len(rs) {
			t.Errorf("spill predicate set size (reverse=%v): live %d, recovered %d", reverse, len(ls), len(rs))
		}
		for pid := range ls {
			if !rs[pid] {
				t.Errorf("spill predicate %d (reverse=%v) live-only", pid, reverse)
			}
		}
	}
}
