package db2rdf_test

import (
	"fmt"
	"testing"

	"db2rdf"
	"db2rdf/internal/baselines"
	"db2rdf/internal/gen"
	"db2rdf/internal/rdf"
)

// datasetsUnderTest returns each workload at laptop-test scale.
func datasetsUnderTest() []*gen.Dataset {
	return []*gen.Dataset{
		gen.Micro(4000),
		gen.MicroFlowData(2000),
		gen.LUBM(2),
		gen.SP2B(5000),
		gen.DBpedia(5000),
		gen.PRBench(5000),
	}
}

// TestAllWorkloadQueriesAgreeWithTripleStore is the central
// correctness check of the reproduction: every benchmark query must
// produce the same number of solutions through the DB2RDF pipeline
// (entity-oriented schema + hybrid optimizer + star-merging
// translation) as through the independent triple-store baseline
// (different schema, different SQL shape).
func TestAllWorkloadQueriesAgreeWithTripleStore(t *testing.T) {
	for _, ds := range datasetsUnderTest() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			main, err := db2rdf.Open(db2rdf.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := main.LoadTriples(ds.Triples); err != nil {
				t.Fatal(err)
			}
			ref, err := baselines.NewTripleStore(baselines.TripleOptions{IndexSubject: true, IndexObject: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.LoadTriples(ds.Triples); err != nil {
				t.Fatal(err)
			}
			empties := 0
			for _, q := range ds.Queries {
				got, err := main.Query(q.SPARQL)
				if err != nil {
					t.Errorf("%s: db2rdf failed: %v", q.Name, err)
					continue
				}
				want, err := ref.Query(q.SPARQL)
				if err != nil {
					t.Errorf("%s: triple-store failed: %v", q.Name, err)
					continue
				}
				if got.IsAsk {
					if got.Ask != want.Ask {
						t.Errorf("%s: ASK disagreement: db2rdf=%v triple=%v", q.Name, got.Ask, want.Ask)
					}
					continue
				}
				if len(got.Rows) != len(want.Rows) {
					t.Errorf("%s: row count disagreement: db2rdf=%d triple=%d", q.Name, len(got.Rows), len(want.Rows))
				}
				if len(got.Rows) == 0 {
					empties++
				}
			}
			// The workloads are designed to return data; allow a few
			// intentionally empty or scale-sensitive queries only.
			if empties > len(ds.Queries)/3 {
				t.Errorf("%d of %d queries returned no rows — workload generation is off", empties, len(ds.Queries))
			}
		})
	}
}

// TestWorkloadsAgreeWithVerticalStore cross-checks a subset of each
// workload against the predicate-oriented baseline too.
func TestWorkloadsAgreeWithVerticalStore(t *testing.T) {
	for _, ds := range []*gen.Dataset{gen.Micro(3000), gen.LUBM(1), gen.PRBench(3000)} {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			main, err := db2rdf.Open(db2rdf.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := main.LoadTriples(ds.Triples); err != nil {
				t.Fatal(err)
			}
			vert, err := baselines.NewVerticalStore(baselines.VerticalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := vert.LoadTriples(ds.Triples); err != nil {
				t.Fatal(err)
			}
			for _, q := range ds.Queries {
				got, err := main.Query(q.SPARQL)
				if err != nil {
					t.Errorf("%s: db2rdf failed: %v", q.Name, err)
					continue
				}
				want, err := vert.Query(q.SPARQL)
				if err != nil {
					t.Errorf("%s: vertical failed: %v", q.Name, err)
					continue
				}
				if got.IsAsk {
					if got.Ask != want.Ask {
						t.Errorf("%s: ASK disagreement", q.Name)
					}
					continue
				}
				if len(got.Rows) != len(want.Rows) {
					t.Errorf("%s: row count disagreement: db2rdf=%d vertical=%d", q.Name, len(got.Rows), len(want.Rows))
				}
			}
		})
	}
}

// TestNaiveOptimizerAgrees runs every workload query under the naive
// (document-order) flow: plans differ, answers must not.
func TestNaiveOptimizerAgrees(t *testing.T) {
	ds := gen.PRBench(4000)
	hybrid, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := db2rdf.Open(db2rdf.Options{DisableHybridOptimizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := hybrid.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	if err := naive.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries {
		a, err := hybrid.Query(q.SPARQL)
		if err != nil {
			t.Errorf("%s hybrid: %v", q.Name, err)
			continue
		}
		b, err := naive.Query(q.SPARQL)
		if err != nil {
			t.Errorf("%s naive: %v", q.Name, err)
			continue
		}
		if a.IsAsk {
			if a.Ask != b.Ask {
				t.Errorf("%s: ASK disagreement", q.Name)
			}
			continue
		}
		if len(a.Rows) != len(b.Rows) {
			t.Errorf("%s: hybrid=%d naive=%d", q.Name, len(a.Rows), len(b.Rows))
		}
	}
}

// TestColoredMappingAgrees loads LUBM under a coloring-based mapping
// and checks answers match the hash-mapped store.
func TestColoredMappingAgrees(t *testing.T) {
	ds := gen.LUBM(2)
	direct, reverse := db2rdf.ColorTriples(ds.Triples, 16, 16)
	colored, err := db2rdf.Open(db2rdf.Options{K: 16, KReverse: 16, Mapping: direct, ReverseMapping: reverse})
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := db2rdf.Open(db2rdf.Options{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := colored.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	if err := hashed.LoadTriples(ds.Triples); err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries {
		a, err := colored.Query(q.SPARQL)
		if err != nil {
			t.Errorf("%s colored: %v", q.Name, err)
			continue
		}
		b, err := hashed.Query(q.SPARQL)
		if err != nil {
			t.Errorf("%s hashed: %v", q.Name, err)
			continue
		}
		if len(a.Rows) != len(b.Rows) {
			t.Errorf("%s: colored=%d hashed=%d", q.Name, len(a.Rows), len(b.Rows))
		}
	}
}

func ExampleStore_Query() {
	s, _ := db2rdf.Open(db2rdf.Options{})
	_ = s.Insert(parseTriple(`<http://e/alice> <http://e/knows> <http://e/bob> .`))
	res, _ := s.Query(`SELECT ?who WHERE { <http://e/alice> <http://e/knows> ?who }`)
	fmt.Println(res.Rows[0][0])
	// Output: <http://e/bob>
}

// parseTriple is a test helper for single N-Triples lines.
func parseTriple(line string) rdf.Triple {
	t, err := rdf.ParseTripleLine(line)
	if err != nil {
		panic(err)
	}
	return t
}
