package db2rdf_test

// End-to-end columnar/row storage equivalence: the same datasets
// loaded into a columnar-layout store and a legacy row-layout store
// (rel.SetDefaultStorage) must answer the whole benchmark corpus plus
// random BGPs byte-identically, with morsel parallelism forced off
// and on. ci.sh runs this under -race next to the parallel on/off
// gate, which also probes the vectorized scan's chunk partitioning
// for data races.

import (
	"fmt"
	"math/rand"
	"testing"

	"db2rdf"
	"db2rdf/internal/gen"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
)

// openUnder opens an empty store whose tables use the given layout.
func openUnder(t *testing.T, storage rel.Storage) *db2rdf.Store {
	t.Helper()
	rel.SetDefaultStorage(storage)
	defer rel.SetDefaultStorage(rel.StorageColumnar)
	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorageEquivalence(t *testing.T) {
	defer rel.SetDefaultStorage(rel.StorageColumnar)
	defer rel.SetParallelism(0, 0)

	type tcase struct {
		name     string
		triples  []rdf.Triple
		queries  []gen.Query
		parallel bool // load via the parallel bulk loader
	}
	var cases []tcase
	for i, ds := range []*gen.Dataset{gen.Micro(3000), gen.LUBM(1)} {
		// Alternate load paths so both the incremental insert
		// (CellAt/SetCell) and the partitioned bulk append
		// (AppendRows) feed the comparison.
		cases = append(cases, tcase{ds.Name, ds.Triples, ds.Queries, i%2 == 1})
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		triples := randomDataset(r)
		var queries []gen.Query
		for j := 0; j < 6; j++ {
			_, sparqlText := randomBGP(r)
			queries = append(queries, gen.Query{Name: fmt.Sprintf("bgp%d_%d", i, j), SPARQL: sparqlText})
		}
		cases = append(cases, tcase{fmt.Sprintf("random%d", i), triples, queries, i%2 == 0})
	}

	for _, c := range cases {
		load := func(s *db2rdf.Store) error {
			if c.parallel {
				return s.LoadTriplesParallel(c.triples, 4)
			}
			return s.LoadTriples(c.triples)
		}
		colStore := openUnder(t, rel.StorageColumnar)
		if err := load(colStore); err != nil {
			t.Fatalf("%s: columnar load: %v", c.name, err)
		}
		rowStore := openUnder(t, rel.StorageRows)
		if err := load(rowStore); err != nil {
			t.Fatalf("%s: row-layout load: %v", c.name, err)
		}
		for _, q := range c.queries {
			for _, workers := range []int{1, 4} {
				rel.SetParallelism(workers, 1)
				colRes, err := colStore.Query(q.SPARQL)
				if err != nil {
					t.Fatalf("%s/%s (columnar, workers=%d): %v", c.name, q.Name, workers, err)
				}
				rowRes, err := rowStore.Query(q.SPARQL)
				rel.SetParallelism(0, 0)
				if err != nil {
					t.Fatalf("%s/%s (rows, workers=%d): %v", c.name, q.Name, workers, err)
				}
				col := canonical(renderResults(colRes))
				row := canonical(renderResults(rowRes))
				if len(col) != len(row) {
					t.Errorf("%s/%s workers=%d: row count differs: columnar=%d rows=%d",
						c.name, q.Name, workers, len(col), len(row))
					continue
				}
				for i := range col {
					if col[i] != row[i] {
						t.Errorf("%s/%s workers=%d: row %d differs:\ncolumnar: %s\nrows:     %s",
							c.name, q.Name, workers, i, col[i], row[i])
						break
					}
				}
			}
		}
	}
}
