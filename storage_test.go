package db2rdf_test

// End-to-end storage equivalence across all three layouts: the same
// datasets loaded into an encoded-columnar store (the default:
// publish-time chunk sealing on), a raw-columnar store
// (rel.SetChunkEncoding(false)) and a legacy row-layout store
// (rel.SetDefaultStorage) must answer the whole benchmark corpus plus
// random BGPs byte-identically, with morsel parallelism forced off
// and on. ci.sh runs this under -race next to the parallel on/off
// gate, which also probes the vectorized scan's chunk partitioning
// and the sealed chunks' packed fast paths for data races.

import (
	"fmt"
	"math/rand"
	"testing"

	"db2rdf"
	"db2rdf/internal/gen"
	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
)

// openUnder opens an empty store whose tables use the given layout.
func openUnder(t *testing.T, storage rel.Storage) *db2rdf.Store {
	t.Helper()
	rel.SetDefaultStorage(storage)
	defer rel.SetDefaultStorage(rel.StorageColumnar)
	s, err := db2rdf.Open(db2rdf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorageEquivalence(t *testing.T) {
	defer rel.SetDefaultStorage(rel.StorageColumnar)
	defer rel.SetParallelism(0, 0)
	defer rel.SetChunkEncoding(true)

	type tcase struct {
		name     string
		triples  []rdf.Triple
		queries  []gen.Query
		parallel bool // load via the parallel bulk loader
	}
	var cases []tcase
	for i, ds := range []*gen.Dataset{gen.Micro(3000), gen.LUBM(1)} {
		// Alternate load paths so both the incremental insert
		// (CellAt/SetCell) and the partitioned bulk append
		// (AppendRows) feed the comparison.
		cases = append(cases, tcase{ds.Name, ds.Triples, ds.Queries, i%2 == 1})
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		triples := randomDataset(r)
		var queries []gen.Query
		for j := 0; j < 6; j++ {
			_, sparqlText := randomBGP(r)
			queries = append(queries, gen.Query{Name: fmt.Sprintf("bgp%d_%d", i, j), SPARQL: sparqlText})
		}
		cases = append(cases, tcase{fmt.Sprintf("random%d", i), triples, queries, i%2 == 0})
	}

	for _, c := range cases {
		load := func(s *db2rdf.Store) error {
			if c.parallel {
				return s.LoadTriplesParallel(c.triples, 4)
			}
			return s.LoadTriples(c.triples)
		}
		// Encoded columnar (the default): chunks seal at publish.
		encStore := openUnder(t, rel.StorageColumnar)
		if err := load(encStore); err != nil {
			t.Fatalf("%s: encoded-columnar load: %v", c.name, err)
		}
		// Raw columnar: sealing suppressed, chunks stay as typed slices.
		// The knob matters only while loads publish, so it is restored
		// before the comparison queries run.
		rel.SetChunkEncoding(false)
		rawStore := openUnder(t, rel.StorageColumnar)
		rawErr := load(rawStore)
		rel.SetChunkEncoding(true)
		if rawErr != nil {
			t.Fatalf("%s: raw-columnar load: %v", c.name, rawErr)
		}
		rowStore := openUnder(t, rel.StorageRows)
		if err := load(rowStore); err != nil {
			t.Fatalf("%s: row-layout load: %v", c.name, err)
		}
		for _, q := range c.queries {
			for _, workers := range []int{1, 4} {
				rel.SetParallelism(workers, 1)
				encRes, err := encStore.Query(q.SPARQL)
				if err != nil {
					t.Fatalf("%s/%s (encoded, workers=%d): %v", c.name, q.Name, workers, err)
				}
				rawRes, err := rawStore.Query(q.SPARQL)
				if err != nil {
					t.Fatalf("%s/%s (raw columnar, workers=%d): %v", c.name, q.Name, workers, err)
				}
				rowRes, err := rowStore.Query(q.SPARQL)
				rel.SetParallelism(0, 0)
				if err != nil {
					t.Fatalf("%s/%s (rows, workers=%d): %v", c.name, q.Name, workers, err)
				}
				row := canonical(renderResults(rowRes))
				for _, alt := range []struct {
					layout string
					rows   []string
				}{
					{"encoded", canonical(renderResults(encRes))},
					{"raw-columnar", canonical(renderResults(rawRes))},
				} {
					if len(alt.rows) != len(row) {
						t.Errorf("%s/%s workers=%d: row count differs: %s=%d rows=%d",
							c.name, q.Name, workers, alt.layout, len(alt.rows), len(row))
						continue
					}
					for i := range alt.rows {
						if alt.rows[i] != row[i] {
							t.Errorf("%s/%s workers=%d: row %d differs:\n%s: %s\nrows: %s",
								c.name, q.Name, workers, i, alt.layout, alt.rows[i], row[i])
							break
						}
					}
				}
			}
		}
	}
}
