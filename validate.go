package db2rdf

import "db2rdf/internal/sparql"

// Syntax validation without execution. The HTTP endpoint uses these to
// classify a request as malformed (400) before running it, keeping the
// status mapping independent of execution-time governance errors. The
// parse is cheap relative to execution and repeated parses of a cached
// query never reach the planner (the plan cache keys on query text).

// ValidateQuery parses q as a SPARQL query, returning the syntax error
// if it is malformed.
func ValidateQuery(q string) error {
	_, err := sparql.Parse(q)
	return err
}

// ValidateUpdate parses u as a SPARQL update request, returning the
// syntax error if it is malformed.
func ValidateUpdate(u string) error {
	_, err := sparql.ParseUpdate(u)
	return err
}

// IsGovernanceError reports whether err is one of the typed query
// lifecycle errors — cancellation, deadline, row/memory budget, or a
// contained panic. The HTTP endpoint maps governance aborts to 503
// (the store is healthy; the request exceeded its resources) and
// contained panics to 500.
func IsGovernanceError(err error) bool { return isGovernanceErr(err) }
