package db2rdf

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"db2rdf/internal/rdf"
)

func TestUpdateInsertData(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Update(`INSERT DATA {
		<Alice> <knows> <Bob> .
		<Alice> <knows> <Carol> .
		<Bob> <age> "42" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 3 || res.Deleted != 0 {
		t.Fatalf("got %+v, want 3 inserted", res)
	}
	rs := s.MustQuery(`SELECT ?o WHERE { <Alice> <knows> ?o }`)
	if got := bindings(rs, "o"); len(got) != 2 {
		t.Fatalf("knows = %v, want 2 objects", got)
	}
}

func TestUpdateDeleteData(t *testing.T) {
	s := fig1(t, Options{})
	res, err := s.Update(`DELETE DATA {
		<Larry_Page> <home> "Palo Alto" .
		<Nobody> <nothing> "absent" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("deleted = %d, want 1 (absent triple must not count)", res.Deleted)
	}
	rs := s.MustQuery(`SELECT ?o WHERE { <Larry_Page> <home> ?o }`)
	if len(rs.Rows) != 0 {
		t.Fatalf("home still present after delete: %v", bindings(rs, "o"))
	}
	// The rest of the entity's predicates survive.
	rs = s.MustQuery(`SELECT ?p ?o WHERE { <Larry_Page> ?p ?o }`)
	if len(rs.Rows) != 3 {
		t.Fatalf("Larry_Page has %d triples, want 3", len(rs.Rows))
	}
}

func TestUpdateDeleteMultiValued(t *testing.T) {
	s := fig1(t, Options{})
	// IBM industry is a 3-element multi-valued list; deleting one member
	// keeps the list, deleting the second collapses it to a direct value.
	for i, want := range []int{2, 1} {
		member := []string{"Hardware", "Services"}[i]
		if _, err := s.Update(fmt.Sprintf(`DELETE DATA { <IBM> <industry> %q }`, member)); err != nil {
			t.Fatal(err)
		}
		rs := s.MustQuery(`SELECT ?o WHERE { <IBM> <industry> ?o }`)
		if len(rs.Rows) != want {
			t.Fatalf("after deleting %s: %d members, want %d", member, len(rs.Rows), want)
		}
	}
	if got := bindings(s.MustQuery(`SELECT ?o WHERE { <IBM> <industry> ?o }`), "o"); len(got) != 1 || got[0] != "Software" {
		t.Fatalf("surviving member = %v, want Software", got)
	}
}

func TestUpdateModify(t *testing.T) {
	s := fig1(t, Options{})
	// Rename the founder predicate via DELETE/INSERT WHERE.
	res, err := s.Update(`
		DELETE { ?s <founder> ?o }
		INSERT { ?s <founded> ?o }
		WHERE { ?s <founder> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 2 || res.Inserted != 2 {
		t.Fatalf("got %+v, want 2 deleted, 2 inserted", res)
	}
	if rs := s.MustQuery(`SELECT ?s WHERE { ?s <founder> ?o }`); len(rs.Rows) != 0 {
		t.Fatalf("founder triples survived the rename")
	}
	got := bindings(s.MustQuery(`SELECT ?s WHERE { ?s <founded> ?o }`), "s")
	if len(got) != 2 {
		t.Fatalf("founded = %v, want 2 subjects", got)
	}
}

func TestUpdateDeleteWhereShorthand(t *testing.T) {
	s := fig1(t, Options{})
	res, err := s.Update(`DELETE WHERE { <Android> ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 5 {
		t.Fatalf("deleted = %d, want all 5 Android triples", res.Deleted)
	}
	if rs := s.MustQuery(`SELECT ?p WHERE { <Android> ?p ?o }`); len(rs.Rows) != 0 {
		t.Fatalf("Android triples survived DELETE WHERE")
	}
}

func TestUpdateInsertWhereEmptyPattern(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// WHERE {} yields one unit solution, so a ground template fires once.
	res, err := s.Update(`INSERT { <a> <b> <c> } WHERE {}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 {
		t.Fatalf("inserted = %d, want 1", res.Inserted)
	}
}

func TestUpdateClear(t *testing.T) {
	s := fig1(t, Options{})
	res, err := s.Update(`CLEAR ALL`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 22 {
		t.Fatalf("cleared %d triples, want 22", res.Deleted)
	}
	if rs := s.MustQuery(`SELECT ?s WHERE { ?s ?p ?o }`); len(rs.Rows) != 0 {
		t.Fatalf("store not empty after CLEAR")
	}
	// The store stays usable: reload and query.
	if _, err := s.Update(`INSERT DATA { <x> <y> <z> }`); err != nil {
		t.Fatal(err)
	}
	if rs := s.MustQuery(`SELECT ?s WHERE { ?s <y> <z> }`); len(rs.Rows) != 1 {
		t.Fatalf("insert after CLEAR not visible")
	}
}

func TestUpdateOperationSequence(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Later operations see the effects of earlier ones.
	res, err := s.Update(`
		PREFIX ex: <http://example.org/>
		INSERT DATA { ex:a ex:p "1" } ;
		INSERT { ex:a ex:q ?o } WHERE { ex:a ex:p ?o } ;
		DELETE DATA { ex:a ex:p "1" } ;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 || res.Deleted != 1 {
		t.Fatalf("got %+v, want 2 inserted / 1 deleted", res)
	}
	rs := s.MustQuery(`PREFIX ex: <http://example.org/> SELECT ?o WHERE { ex:a ex:q ?o }`)
	if got := bindings(rs, "o"); len(got) != 1 || got[0] != "1" {
		t.Fatalf("sequence result = %v", got)
	}
}

// TestUpdateNoOpKeepsPlanCache asserts that updates which change
// nothing — duplicate inserts, deletes of absent triples, CLEAR of an
// already-empty store — do not advance the epoch, via the plan cache:
// a cached plan keyed on the old epoch must still hit afterwards.
func TestUpdateNoOpKeepsPlanCache(t *testing.T) {
	s := fig1(t, Options{})
	const q = `SELECT ?o WHERE { <Google> <industry> ?o }`
	s.MustQuery(q) // compile (miss)
	s.MustQuery(q) // hit
	hits0, misses0 := s.PlanCacheStats()
	if hits0 == 0 {
		t.Fatalf("warm-up query did not hit the plan cache")
	}

	noops := []string{
		`INSERT DATA { <Google> <industry> "Software" }`, // duplicate triple
		`DELETE DATA { <Google> <industry> "Steel" }`,    // absent triple
		`DELETE DATA { <NoSuchEntity> <p> "x" }`,         // absent entity
		`DELETE { ?s <noSuchPred> ?o } WHERE { ?s <noSuchPred> ?o }`,
	}
	for _, u := range noops {
		res, err := s.Update(u)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		if res.Inserted != 0 || res.Deleted != 0 {
			t.Fatalf("%s: reported changes %+v, want none", u, res)
		}
		s.MustQuery(q)
		hits, misses := s.PlanCacheStats()
		if misses != misses0 {
			t.Fatalf("%s: plan cache missed (epoch bumped by a no-op update)", u)
		}
		hits0 = hits
	}

	// A real change must invalidate: the next query recompiles.
	if _, err := s.Update(`DELETE DATA { <Google> <industry> "Internet" }`); err != nil {
		t.Fatal(err)
	}
	s.MustQuery(q)
	if _, misses := s.PlanCacheStats(); misses == misses0 {
		t.Fatalf("effective update did not invalidate the plan cache")
	}
	// And CLEAR on the now-nonempty store bumps; on an empty store not.
	s2, _ := Open(Options{})
	e0 := s2.Internal().Epoch()
	if _, err := s2.Update(`CLEAR DEFAULT`); err != nil {
		t.Fatal(err)
	}
	if e := s2.Internal().Epoch(); e != e0 {
		t.Fatalf("CLEAR of empty store bumped epoch %d -> %d", e0, e)
	}
}

func TestUpdateErrorsAndStoreUsable(t *testing.T) {
	s := fig1(t, Options{})
	bad := []string{
		``,
		`SELECT ?s WHERE { ?s ?p ?o }`,
		`INSERT DATA { ?s <p> <o> }`,  // variable in ground block
		`DELETE DATA { _:b <p> <o> }`, // blank node in delete data
		`DELETE { _:b <p> ?o } WHERE { ?s <p> ?o }`, // blank in delete template
		`CLEAR NAMED`,
		`CLEAR GRAPH <g>`,
		`WITH <g> DELETE { ?s ?p ?o } WHERE { ?s ?p ?o }`,
		`INSERT DATA { <a> <b> <c> } garbage`,
		`DELETE WHERE { ?s <p> ?o FILTER(?o > 1) }`, // non-plain pattern
	}
	for _, u := range bad {
		if _, err := s.Update(u); err == nil {
			t.Errorf("Update(%q) succeeded, want error", u)
		}
	}
	// Store unchanged and fully usable after every failed update.
	rs := s.MustQuery(`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if len(rs.Rows) != 22 {
		t.Fatalf("store has %d triples after failed updates, want 22", len(rs.Rows))
	}
}

func TestUpdateMetrics(t *testing.T) {
	s := fig1(t, Options{})
	if _, err := s.Update(`DELETE DATA { <Google> <HQ> "Mountain View" }`); err != nil {
		t.Fatal(err)
	}
	_, _ = s.Update(`CLEAR NAMED`) // error
	snap := s.Metrics().Snapshot()
	if snap.UpdatesServed != 2 || snap.UpdateErrors != 1 || snap.DeletedTriples != 1 {
		t.Fatalf("snapshot = served %d, errors %d, deleted %d; want 2/1/1",
			snap.UpdatesServed, snap.UpdateErrors, snap.DeletedTriples)
	}
	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"db2rdf_updates_total 2", "db2rdf_deleted_triples_total 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// exportString canonically serializes a store.
func exportString(t *testing.T, s *Store) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestUpdateInterleavingEquivalence drives a randomized interleaving of
// inserts and deletes and checks the surviving state is byte-identical
// (canonical export) to a store built from only the surviving triples.
// This exercises multi-value list growth/collapse, row tombstoning and
// re-insertion after delete in one sweep.
func TestUpdateInterleavingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	universe := make([]rdf.Triple, 0, 240)
	for e := 0; e < 12; e++ {
		for p := 0; p < 5; p++ {
			for v := 0; v < 4; v++ {
				universe = append(universe, rdf.NewTriple(
					rdf.NewIRI(fmt.Sprintf("e%d", e)),
					rdf.NewIRI(fmt.Sprintf("p%d", p)),
					rdf.NewLiteral(fmt.Sprintf("v%d", v)),
				))
			}
		}
	}

	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	alive := map[rdf.Triple]bool{}
	ntFor := func(tr rdf.Triple) string {
		return fmt.Sprintf("<%s> <%s> %q", tr.S.Value, tr.P.Value, tr.O.Value)
	}
	for step := 0; step < 600; step++ {
		tr := universe[rng.Intn(len(universe))]
		if rng.Intn(3) == 0 { // delete twice as rarely as insert
			res, err := s.Update(`DELETE DATA { ` + ntFor(tr) + ` }`)
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			if want := alive[tr]; (res.Deleted == 1) != want {
				t.Fatalf("step %d: delete reported %d, alive=%v", step, res.Deleted, want)
			}
			delete(alive, tr)
		} else {
			res, err := s.Update(`INSERT DATA { ` + ntFor(tr) + ` }`)
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			if want := !alive[tr]; (res.Inserted == 1) != want {
				t.Fatalf("step %d: insert reported %d, fresh=%v", step, res.Inserted, want)
			}
			alive[tr] = true
		}
	}

	survivors := make([]rdf.Triple, 0, len(alive))
	for tr := range alive {
		survivors = append(survivors, tr)
	}
	ref, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.LoadTriples(survivors); err != nil {
		t.Fatal(err)
	}
	got, want := exportString(t, s), exportString(t, ref)
	if got != want {
		t.Fatalf("export diverges after interleaving:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	// Statistics agree with the survivor count too.
	if n := s.Internal().Stats().TotalTriples(); int(n) != len(survivors) {
		t.Fatalf("stats report %v triples, want %d", n, len(survivors))
	}
}

// TestUpdateConcurrentReaders runs readers against a store while a bulk
// DELETE executes. Every read must observe either the full pre-delete
// state or the full post-delete state (the update holds the write lock
// end to end), never a partially applied delta.
func TestUpdateConcurrentReaders(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ts []rdf.Triple
	const n = 400
	for i := 0; i < n; i++ {
		ts = append(ts, rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("s%d", i)), rdf.NewIRI("p"), rdf.NewLiteral(fmt.Sprintf("%d", i))))
	}
	if err := s.LoadTriples(ts); err != nil {
		t.Fatal(err)
	}

	const q = `SELECT ?s ?o WHERE { ?s <p> ?o }`
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 30; i++ {
				rs, err := s.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if got := len(rs.Rows); got != n && got != n/2 {
					errs <- fmt.Errorf("reader saw %d rows, want %d or %d (torn snapshot)", got, n, n/2)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		// Delete every even-numbered subject in one update.
		var b strings.Builder
		b.WriteString("DELETE DATA {\n")
		for i := 0; i < n; i += 2 {
			fmt.Fprintf(&b, "<s%d> <p> \"%d\" .\n", i, i)
		}
		b.WriteString("}")
		res, err := s.Update(b.String())
		if err != nil {
			errs <- err
			return
		}
		if res.Deleted != n/2 {
			errs <- fmt.Errorf("bulk delete removed %d, want %d", res.Deleted, n/2)
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if rs := s.MustQuery(q); len(rs.Rows) != n/2 {
		t.Fatalf("final state has %d rows, want %d", len(rs.Rows), n/2)
	}
}

// TestDatatypeFunction covers SPARQL 1.1 §17.4.2.7 across the three
// literal shapes: plain -> xsd:string, language-tagged ->
// rdf:langString, typed -> the declared datatype.
func TestDatatypeFunction(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	iri := rdf.NewIRI
	if err := s.LoadTriples([]rdf.Triple{
		rdf.NewTriple(iri("a"), iri("plain"), rdf.NewLiteral("x")),
		rdf.NewTriple(iri("a"), iri("tagged"), rdf.NewLangLiteral("x", "en")),
		rdf.NewTriple(iri("a"), iri("typed"), rdf.NewTypedLiteral("5", rdf.XSDInteger)),
	}); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ pred, dt string }{
		{"plain", rdf.XSDString},
		{"tagged", rdf.RDFLangString},
		{"typed", rdf.XSDInteger},
	}
	for _, c := range cases {
		q := fmt.Sprintf(`SELECT ?o WHERE { <a> <%s> ?o FILTER(datatype(?o) = <%s>) }`, c.pred, c.dt)
		if rs := s.MustQuery(q); len(rs.Rows) != 1 {
			t.Errorf("datatype(%s literal) != <%s> (got %d rows)", c.pred, c.dt, len(rs.Rows))
		}
		// And it matches nothing else: a wrong datatype filters the row out.
		wrong := fmt.Sprintf(`SELECT ?o WHERE { <a> <%s> ?o FILTER(datatype(?o) = <http://example.org/no>) }`, c.pred)
		if rs := s.MustQuery(wrong); len(rs.Rows) != 0 {
			t.Errorf("datatype(%s literal) matched a wrong IRI", c.pred)
		}
	}
}
