package db2rdf

import (
	"fmt"
	"io"

	"db2rdf/internal/rdf"
	"db2rdf/internal/sparql"
)

// QueryGraph executes a CONSTRUCT or DESCRIBE query, returning the
// resulting triples (deduplicated, in deterministic first-seen order).
func (s *Store) QueryGraph(q string) ([]rdf.Triple, error) {
	parsed, err := sparql.Parse(q)
	if err != nil {
		return nil, err
	}
	switch {
	case parsed.Construct != nil:
		return s.construct(parsed, q)
	case len(parsed.Describe) > 0:
		return s.describe(parsed)
	}
	return nil, fmt.Errorf("db2rdf: QueryGraph wants a CONSTRUCT or DESCRIBE query; use Query for SELECT/ASK")
}

// construct runs the WHERE clause and instantiates the template once
// per solution. Instantiations with unbound variables, literal
// subjects or non-IRI predicates are skipped, per the SPARQL spec.
func (s *Store) construct(parsed *sparql.Query, original string) ([]rdf.Triple, error) {
	res, err := s.Query(original) // reparsed internally; keeps one code path
	if err != nil {
		return nil, err
	}
	varIdx := map[string]int{}
	for i, v := range res.Vars {
		varIdx[v] = i
	}
	resolve := func(tv sparql.TermOrVar, row []Binding) (rdf.Term, bool) {
		if !tv.IsVar {
			return tv.Term, true
		}
		i, ok := varIdx[tv.Var]
		if !ok || !row[i].Bound {
			return rdf.Term{}, false
		}
		return row[i].Term, true
	}
	var out []rdf.Triple
	seen := map[rdf.Triple]bool{}
	for _, row := range res.Rows {
		for _, tmpl := range parsed.Construct {
			sub, ok := resolve(tmpl.S, row)
			if !ok || sub.IsLiteral() {
				continue
			}
			pred, ok := resolve(tmpl.P, row)
			if !ok || !pred.IsIRI() {
				continue
			}
			obj, ok := resolve(tmpl.O, row)
			if !ok {
				continue
			}
			tr := rdf.NewTriple(sub, pred, obj)
			if !seen[tr] {
				seen[tr] = true
				out = append(out, tr)
			}
		}
	}
	return out, nil
}

// describe returns every triple in which each described resource
// appears as subject or object. Variable resources are resolved
// through the WHERE clause first.
func (s *Store) describe(parsed *sparql.Query) ([]rdf.Triple, error) {
	var resources []rdf.Term
	needWhere := false
	for _, tv := range parsed.Describe {
		if tv.IsVar {
			needWhere = true
		} else {
			resources = append(resources, tv.Term)
		}
	}
	if needWhere {
		if len(parsed.Where.AllTriples()) == 0 {
			return nil, fmt.Errorf("db2rdf: DESCRIBE with variables requires a WHERE clause")
		}
		// Re-render is avoidable: run the pattern via the normal
		// pipeline using the parsed query (Star projection).
		tr, err := s.translate(parsed, nil)
		if err != nil {
			return nil, err
		}
		res, err := s.execute(parsed, tr)
		if err != nil {
			return nil, err
		}
		varIdx := map[string]int{}
		for i, v := range res.Vars {
			varIdx[v] = i
		}
		seen := map[rdf.Term]bool{}
		for _, tv := range parsed.Describe {
			if !tv.IsVar {
				continue
			}
			i, ok := varIdx[tv.Var]
			if !ok {
				continue
			}
			for _, row := range res.Rows {
				if row[i].Bound && !seen[row[i].Term] {
					seen[row[i].Term] = true
					resources = append(resources, row[i].Term)
				}
			}
		}
	}
	var out []rdf.Triple
	seen := map[rdf.Triple]bool{}
	add := func(tr rdf.Triple) {
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	for _, r := range resources {
		if r.IsLiteral() {
			continue
		}
		// Outgoing edges.
		res, err := s.Query(fmt.Sprintf(`SELECT ?p ?o WHERE { %s ?p ?o }`, r))
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			if row[0].Bound && row[1].Bound {
				add(rdf.NewTriple(r, row[0].Term, row[1].Term))
			}
		}
		// Incoming edges.
		res, err = s.Query(fmt.Sprintf(`SELECT ?s ?p WHERE { ?s ?p %s }`, r))
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			if row[0].Bound && row[1].Bound {
				add(rdf.NewTriple(row[0].Term, row[1].Term, r))
			}
		}
	}
	return out, nil
}

// Export writes the whole store back out as N-Triples (reconstructed
// from the relational representation through the query pipeline).
func (s *Store) Export(w io.Writer) (int, error) {
	res, err := s.Query(`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		return 0, err
	}
	out := rdf.NewWriter(w)
	n := 0
	for _, row := range res.Rows {
		if !row[0].Bound || !row[1].Bound || !row[2].Bound {
			continue
		}
		if err := out.Write(rdf.NewTriple(row[0].Term, row[1].Term, row[2].Term)); err != nil {
			return n, err
		}
		n++
	}
	return n, out.Flush()
}
