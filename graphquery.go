package db2rdf

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"db2rdf/internal/rdf"
	"db2rdf/internal/rel"
	"db2rdf/internal/sparql"
	"db2rdf/internal/store"
)

// QueryGraph executes a CONSTRUCT or DESCRIBE query, returning the
// resulting triples (deduplicated, in deterministic first-seen order).
// The whole operation — including the fan-out queries a DESCRIBE runs
// per resource — reads one published snapshot.
func (s *Store) QueryGraph(q string) ([]rdf.Triple, error) {
	return s.QueryGraphContext(context.Background(), q)
}

// QueryGraphContext is QueryGraph under a context, with the same
// governance semantics as QueryContext: typed abort errors, the
// store's deadline and budgets applied (to every constituent query —
// a DESCRIBE fans out into one query per resource), panics contained.
func (s *Store) QueryGraphContext(ctx context.Context, q string) (out []rdf.Triple, err error) {
	start := time.Now()
	// One metrics observation for the whole graph query (the secondary
	// queries it runs internally are not counted separately); rows
	// emitted counts the returned triples.
	defer func() {
		s.metrics.observeQuery(time.Since(start), len(out), err)
		if t := s.opts.SlowQueryThreshold; t > 0 && time.Since(start) >= t {
			s.metrics.slowQueries.Add(1)
			if cb := s.opts.SlowQueryLog; cb != nil {
				cb(SlowQuery{Query: q, Duration: time.Since(start), Rows: len(out), Err: err})
			}
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, attachQuery(q, rel.NewPanicError(p))
		}
	}()
	ctx, cancel := s.governCtx(ctx)
	defer cancel()
	parsed, err := sparql.Parse(q)
	if err != nil {
		return nil, err
	}
	snap := s.inner.Snapshot()
	switch {
	case parsed.Construct != nil:
		out, err = s.construct(ctx, snap, parsed, q)
	case len(parsed.Describe) > 0:
		out, err = s.describe(ctx, snap, parsed)
	default:
		return nil, fmt.Errorf("db2rdf: QueryGraph wants a CONSTRUCT or DESCRIBE query; use Query for SELECT/ASK")
	}
	return out, attachQuery(q, err)
}

// construct runs the WHERE clause and instantiates the template once
// per solution. Instantiations with unbound variables, literal
// subjects or non-IRI predicates are skipped, per the SPARQL spec.
func (s *Store) construct(ctx context.Context, snap *store.Snapshot, parsed *sparql.Query, original string) ([]rdf.Triple, error) {
	res, err := s.queryOn(ctx, snap, original) // reparsed internally; keeps one code path
	if err != nil {
		return nil, err
	}
	varIdx := map[string]int{}
	for i, v := range res.Vars {
		varIdx[v] = i
	}
	resolve := func(tv sparql.TermOrVar, row []Binding) (rdf.Term, bool) {
		if !tv.IsVar {
			return tv.Term, true
		}
		i, ok := varIdx[tv.Var]
		if !ok || !row[i].Bound {
			return rdf.Term{}, false
		}
		return row[i].Term, true
	}
	var out []rdf.Triple
	seen := map[rdf.Triple]bool{}
	for _, row := range res.Rows {
		for _, tmpl := range parsed.Construct {
			sub, ok := resolve(tmpl.S, row)
			if !ok || sub.IsLiteral() {
				continue
			}
			pred, ok := resolve(tmpl.P, row)
			if !ok || !pred.IsIRI() {
				continue
			}
			obj, ok := resolve(tmpl.O, row)
			if !ok {
				continue
			}
			tr := rdf.NewTriple(sub, pred, obj)
			if !seen[tr] {
				seen[tr] = true
				out = append(out, tr)
			}
		}
	}
	return out, nil
}

// queryPattern builds a one-triple-pattern SELECT query directly as an
// AST and runs it through optimize/translate/execute. Constructing the
// AST (rather than rendering terms into a query string and reparsing)
// keeps terms exact — escaped literals and blank nodes do not survive a
// round trip through the SPARQL grammar — and skips a full parse per
// lookup.
func (s *Store) queryPattern(ctx context.Context, snap *store.Snapshot, sub, pred, obj sparql.TermOrVar, vars []string) (*Results, error) {
	where := &sparql.Pattern{Kind: sparql.Simple}
	tp := &sparql.TriplePattern{ID: 1, S: sub, P: pred, O: obj, Parent: where}
	where.Triples = []*sparql.TriplePattern{tp}
	q := &sparql.Query{Vars: vars, Where: where, Limit: -1}
	tr, err := s.translate(snap, q, nil)
	if err != nil {
		return nil, err
	}
	return s.execute(ctx, snap, q, tr)
}

// describe returns every triple in which each described resource
// appears as subject or object. Variable resources are resolved
// through the WHERE clause first.
func (s *Store) describe(ctx context.Context, snap *store.Snapshot, parsed *sparql.Query) ([]rdf.Triple, error) {
	var resources []rdf.Term
	needWhere := false
	for _, tv := range parsed.Describe {
		if tv.IsVar {
			needWhere = true
		} else {
			resources = append(resources, tv.Term)
		}
	}
	if needWhere {
		if len(parsed.Where.AllTriples()) == 0 {
			return nil, fmt.Errorf("db2rdf: DESCRIBE with variables requires a WHERE clause")
		}
		// Re-render is avoidable: run the pattern via the normal
		// pipeline using the parsed query (Star projection).
		tr, err := s.translate(snap, parsed, nil)
		if err != nil {
			return nil, err
		}
		res, err := s.execute(ctx, snap, parsed, tr)
		if err != nil {
			return nil, err
		}
		varIdx := map[string]int{}
		for i, v := range res.Vars {
			varIdx[v] = i
		}
		seen := map[rdf.Term]bool{}
		for _, tv := range parsed.Describe {
			if !tv.IsVar {
				continue
			}
			i, ok := varIdx[tv.Var]
			if !ok {
				continue
			}
			for _, row := range res.Rows {
				if row[i].Bound && !seen[row[i].Term] {
					seen[row[i].Term] = true
					resources = append(resources, row[i].Term)
				}
			}
		}
	}
	var out []rdf.Triple
	seen := map[rdf.Triple]bool{}
	add := func(tr rdf.Triple) {
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	for _, r := range resources {
		if r.IsLiteral() {
			continue
		}
		// Outgoing and incoming edges, via directly built ASTs so blank
		// nodes and exotic literals are handled exactly.
		res, err := s.queryPattern(ctx, snap, sparql.Constant(r), sparql.Variable("p"), sparql.Variable("o"), []string{"p", "o"})
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			if row[0].Bound && row[1].Bound {
				add(rdf.NewTriple(r, row[0].Term, row[1].Term))
			}
		}
		res, err = s.queryPattern(ctx, snap, sparql.Variable("s"), sparql.Variable("p"), sparql.Constant(r), []string{"s", "p"})
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			if row[0].Bound && row[1].Bound {
				add(rdf.NewTriple(row[0].Term, row[1].Term, r))
			}
		}
	}
	return out, nil
}

// Export writes the whole store back out as N-Triples (reconstructed
// from the relational representation through the query pipeline). The
// output is canonically sorted, so two stores holding the same triple
// set export byte-identical documents regardless of load order or
// loader (sequential or parallel).
func (s *Store) Export(w io.Writer) (int, error) {
	// Export runs through the query pipeline, so the store's governance
	// options apply: an Export under MaxResultRows smaller than the
	// store's triple count will (correctly) trip the budget.
	ctx, cancel := s.governCtx(context.Background())
	defer cancel()
	// One snapshot load: the export is the exact content of a single
	// published epoch, even while writers keep publishing.
	res, err := s.queryOn(ctx, s.inner.Snapshot(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		return 0, err
	}
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		if !row[0].Bound || !row[1].Bound || !row[2].Bound {
			continue
		}
		lines = append(lines, rdf.NewTriple(row[0].Term, row[1].Term, row[2].Term).String())
	}
	sort.Strings(lines)
	out := rdf.NewWriter(w)
	n := 0
	for _, line := range lines {
		if err := out.WriteLine(line); err != nil {
			return n, err
		}
		n++
	}
	return n, out.Flush()
}
