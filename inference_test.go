package db2rdf_test

import (
	"strings"
	"testing"

	"db2rdf"
	"db2rdf/internal/rdf"
)

// hierarchyTriples: GraduateStudent ⊑ Student ⊑ Person; instances at
// each level.
func hierarchyTriples() []rdf.Triple {
	iri := rdf.NewIRI
	sub := iri("http://www.w3.org/2000/01/rdf-schema#subClassOf")
	typ := iri(rdf.RDFType)
	x := func(s string) rdf.Term { return iri("http://h/" + s) }
	return []rdf.Triple{
		{S: x("GraduateStudent"), P: sub, O: x("Student")},
		{S: x("Student"), P: sub, O: x("Person")},
		{S: x("gina"), P: typ, O: x("GraduateStudent")},
		{S: x("sam"), P: typ, O: x("Student")},
		{S: x("pat"), P: typ, O: x("Person")},
		{S: x("gina"), P: x("name"), O: rdf.NewLiteral("Gina")},
	}
}

func loadInference(t *testing.T, inference bool) *db2rdf.Store {
	t.Helper()
	s, err := db2rdf.Open(db2rdf.Options{Inference: inference})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTriples(hierarchyTriples()); err != nil {
		t.Fatal(err)
	}
	return s
}

func names(res *db2rdf.Results) []string {
	var out []string
	for _, row := range res.Rows {
		out = append(out, strings.TrimPrefix(row[0].Term.Value, "http://h/"))
	}
	return out
}

func TestInferenceSubclassQuery(t *testing.T) {
	plain := loadInference(t, false)
	inf := loadInference(t, true)
	q := `PREFIX h: <http://h/> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?x WHERE { ?x rdf:type h:Person }`
	// Without inference: only the directly declared Person.
	r, err := plain.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("plain store: want 1 direct Person, got %v", names(r))
	}
	// With inference: the whole hierarchy answers.
	r, err = inf.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("inference: want 3 Persons, got %v", names(r))
	}
}

func TestInferenceMidHierarchy(t *testing.T) {
	inf := loadInference(t, true)
	r, err := inf.Query(`PREFIX h: <http://h/> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?x WHERE { ?x rdf:type h:Student }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 { // gina + sam, not pat
		t.Fatalf("want 2 Students, got %v", names(r))
	}
}

func TestInferenceDirectTypeStillWorks(t *testing.T) {
	inf := loadInference(t, true)
	r, err := inf.Query(`PREFIX h: <http://h/> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?x WHERE { ?x rdf:type h:GraduateStudent . ?x h:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || !strings.HasSuffix(r.Rows[0][0].Term.Value, "gina") {
		t.Fatalf("got %v", names(r))
	}
}

func TestInferenceVariableClass(t *testing.T) {
	// ?x rdf:type ?c under inference: every (instance, superclass) pair.
	inf := loadInference(t, true)
	r, err := inf.Query(`PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?x ?c WHERE { ?x rdf:type ?c }`)
	if err != nil {
		t.Fatal(err)
	}
	// gina: Grad/Student/Person, sam: Student/Person, pat: Person = 6.
	if len(r.Rows) != 6 {
		t.Fatalf("want 6 (instance, class) pairs, got %d", len(r.Rows))
	}
}
